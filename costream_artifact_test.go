package costream

import (
	"path/filepath"
	"testing"
)

// TestModelSaveLoadRoundTrip is the facade-level acceptance check: a
// model trained in-process, saved with Model.Save and reloaded with
// LoadModel must produce bit-identical PredictCosts and identical
// OptimizePlacement results.
func TestModelSaveLoadRoundTrip(t *testing.T) {
	corpus, model := facade(t)
	path := filepath.Join(t.TempDir(), "model.json.gz")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}

	info := back.Info()
	if info.CorpusSize != corpus.Len() || info.EnsembleSize != 1 {
		t.Errorf("provenance %+v does not describe the training run", info)
	}

	for i, tr := range corpus.Traces[:15] {
		want, err := model.PredictCosts(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.PredictCosts(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("trace %d: reloaded PredictCosts %+v != original %+v", i, got, want)
		}
	}

	q := exampleQuery(t)
	c := exampleCluster()
	wantP, wantCosts, err := model.OptimizePlacement(q, c, 12, MinProcLatency, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotP, gotCosts, err := back.OptimizePlacement(q, c, 12, MinProcLatency, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantP) != len(gotP) {
		t.Fatalf("placement lengths differ: %v vs %v", wantP, gotP)
	}
	for i := range wantP {
		if wantP[i] != gotP[i] {
			t.Fatalf("reloaded OptimizePlacement chose %v, original chose %v", gotP, wantP)
		}
	}
	if wantCosts != gotCosts {
		t.Fatalf("reloaded optimize costs %+v != original %+v", gotCosts, wantCosts)
	}

	// Batch predictions agree too.
	cands := []Placement{{0, 1, 2}, {0, 0, 2}, {1, 1, 2}}
	wantB, err := model.PredictCostsBatch(q, c, cands)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := back.PredictCostsBatch(q, c, cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantB {
		if wantB[i] != gotB[i] {
			t.Fatalf("batch candidate %d: reloaded %+v != original %+v", i, gotB[i], wantB[i])
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing artifact loaded")
	}
}

package fleet

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"costream/internal/controlplane"
	"costream/internal/placement"
	"costream/internal/scenario"
	"costream/internal/sim"
	"costream/internal/stream"
)

// RunOptions tunes a scenario run without touching the scenario's
// deterministic surface.
type RunOptions struct {
	// Predictor scores placements during search and drift checks. Nil
	// selects a simulator oracle (placement.SimOracle) over the run's
	// sim config with a prediction-private noise seed, so observed costs
	// genuinely drift from predictions as the fleet degrades.
	Predictor placement.Predictor
	// SimConfig overrides the observation simulator config. Nil selects
	// a short fleet window (30 s + 5 s warm-up) — scenario runs simulate
	// every deployment after every event, so the corpus default would be
	// needlessly slow. Its Seed field is ignored: observation seeds are
	// derived per (event, query) from the scenario seed.
	SimConfig *sim.Config
	// Workers bounds the scoring workers per search (0 = GOMAXPROCS).
	// The report is identical for any value.
	Workers int
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
}

// Report is the JSON run report: the event timeline with per-query
// q-error trajectories and recovery actions, aggregate totals, and the
// assertion outcomes. It contains no wall-clock data, so a fixed
// scenario yields a byte-identical marshaled report.
type Report struct {
	Scenario  string  `json:"scenario"`
	Seed      int64   `json:"seed"`
	Hosts     int     `json:"hosts"`
	Zones     int     `json:"zones"`
	Queries   int     `json:"queries"`
	Strategy  string  `json:"strategy"`
	Objective string  `json:"objective"`
	QErrorMax float64 `json:"qerror_threshold"`

	Timeline   []TimelineEntry   `json:"timeline"`
	Totals     Totals            `json:"totals"`
	Assertions []AssertionResult `json:"assertions"`
	Pass       bool              `json:"pass"`
}

// TimelineEntry is the fleet and deployment state after one script step:
// the synthetic "deploy" step at the clock origin, one entry per script
// event, and the closing "end" observation.
type TimelineEntry struct {
	AtS   float64 `json:"at_s"`
	Event string  `json:"event"`
	Zone  string  `json:"zone,omitempty"`
	// Affected lists the host IDs the event touched (crashed, recovered,
	// degraded).
	Affected []string `json:"affected_hosts,omitempty"`
	// Factor echoes the event's degradation/spike factor when set.
	Factor     float64 `json:"factor,omitempty"`
	AliveHosts int     `json:"alive_hosts"`
	// LoadFactor is the cumulative source-rate multiplier in force.
	LoadFactor float64       `json:"load_factor"`
	Queries    []QueryStatus `json:"queries"`
}

// QueryStatus is one deployment's state after the recovery pass of one
// timeline step.
type QueryStatus struct {
	ID string `json:"id"`
	// Hosts is the placement as host IDs, operator by operator; empty
	// when the query is undeployed.
	Hosts []string `json:"hosts,omitempty"`
	// QErrThroughput/QErrProcLatency are the observed-vs-predicted
	// q-errors measured this step (0 when no observation ran, e.g. a
	// dead placement).
	QErrThroughput  float64 `json:"qerr_throughput,omitempty"`
	QErrProcLatency float64 `json:"qerr_proc_latency,omitempty"`
	// PredLatencyMS is the processing latency predicted when the current
	// placement was activated; ObsLatencyMS the latency observed this
	// step.
	PredLatencyMS float64 `json:"pred_latency_ms,omitempty"`
	ObsLatencyMS  float64 `json:"obs_latency_ms,omitempty"`
	// Violation classifies why the recovery loop engaged: "dead-host",
	// "qerror-drift", "observed-failure" or "undeployed".
	Violation string `json:"violation,omitempty"`
	// Action is what the loop did: "migrated", "replaced",
	// "redeployed", "undeployed" or "suppressed: <reason>".
	Action string `json:"action,omitempty"`
}

// Totals aggregates the run.
type Totals struct {
	Events int `json:"events"`
	// Violations counts query-step states where the recovery loop
	// engaged (drift, observed failure, or a dead placement).
	Violations int `json:"violations"`
	// Migrations counts hysteresis-approved drift migrations.
	Migrations int `json:"migrations"`
	// Replacements counts forced re-placements off dead hosts
	// (including successful redeployments of undeployed queries).
	Replacements int `json:"replacements"`
	// Suppressed counts migrations hysteresis rejected.
	Suppressed int `json:"suppressed"`
}

// AssertionResult is one evaluated end-state assertion.
type AssertionResult struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// deployment is one query's live state.
type deployment struct {
	id    string
	query *stream.Query
	// placement is in stable fleet host indices; nil when undeployed.
	placement []int
	predicted placement.PredCosts
	lastMoveS float64
	deployed  bool
}

// resolveRecovery translates the scenario's recovery spec into the
// control-plane decision kernel the run drives, with the fleet defaults
// applied. All self-healing decisions (violation classification,
// warm-started re-optimization, hysteresis gating) live in
// internal/controlplane; the fleet only scripts events and renders the
// report.
func (sc *Scenario) resolveRecovery() (controlplane.Policy, error) {
	r := sc.Recovery
	pol := controlplane.Policy{
		QErrorThreshold: r.QErrorThreshold,
		Hysteresis:      placement.Hysteresis{MinImprovement: r.MinImprovement, CooldownS: r.CooldownS},
	}
	if pol.QErrorThreshold == 0 {
		pol.QErrorThreshold = defaultQErrorThreshold
	}
	if r.MinImprovement == 0 {
		pol.Hysteresis.MinImprovement = defaultMinImprovement
	}
	budget := r.Budget
	if budget == 0 {
		budget = defaultSearchBudget
	}
	pol.Budget = placement.Budget{MaxCandidates: budget}
	name := r.Strategy
	if name == "" {
		name = "local-search"
	}
	strat, err := placement.ParseStrategy(name)
	if err != nil {
		return controlplane.Policy{}, err
	}
	pol.Strategy = strat
	obj, err := placement.ParseObjective(r.Objective)
	if err != nil {
		return controlplane.Policy{}, err
	}
	pol.Objective = obj
	return pol, nil
}

// scaledQuery returns q with every source's event rate multiplied by
// factor (a deep clone; q is never mutated).
func scaledQuery(q *stream.Query, factor float64) *stream.Query {
	if factor == 1 {
		return q
	}
	c := q.Clone()
	for _, op := range c.Ops {
		if op.Type == stream.OpSource {
			op.EventRate *= factor
		}
	}
	return c
}

func round4(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return -1
	}
	return math.Round(x*1e4) / 1e4
}

// Run executes the scenario: build the fleet, deploy the workload, walk
// the event script with the self-healing recovery loop, evaluate the
// assertions. The returned report is deterministic for a fixed scenario
// (any Workers value); ctx cancels long searches mid-run.
func Run(ctx context.Context, sc *Scenario, opts RunOptions) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	pol, err := sc.resolveRecovery()
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{DurationS: 30, WarmupS: 5, StepS: 0.05, NoiseStd: 0.05}
	if opts.SimConfig != nil {
		simCfg = *opts.SimConfig
	}
	pred := opts.Predictor
	if pred == nil {
		oracleCfg := simCfg
		// The oracle predicts with its own fixed noise stream; observations
		// draw per-event seeds, so predictions do not see observation noise.
		oracleCfg.Seed = controlplane.DeriveSeed(sc.Seed, 0, 0) ^ 0x5DEECE66D
		pred = &placement.SimOracle{Cfg: oracleCfg}
	}
	pol.Predictor = pred

	rng := rand.New(rand.NewSource(sc.Seed))
	fl, err := buildFleet(sc.Fleet, rng)
	if err != nil {
		return nil, err
	}
	wlSeed := sc.Workload.Seed
	if wlSeed == 0 {
		wlSeed = sc.Seed
	}
	recipe := sc.Workload.Recipe
	if recipe == "" {
		recipe = "training"
	}
	sampler, err := scenario.QuerySampler(recipe, wlSeed)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Scenario:  sc.Name,
		Seed:      sc.Seed,
		Hosts:     fl.NumHosts(),
		Zones:     len(sc.Fleet.Zones),
		Queries:   sc.Workload.Queries,
		Strategy:  pol.Strategy.Name(),
		Objective: pol.Objective.String(),
		QErrorMax: pol.QErrorThreshold,
	}
	logf("fleet: %d hosts in %d zones, %d queries (recipe %s)", fl.NumHosts(), rep.Zones, rep.Queries, recipe)

	searchOpts := func(stage, i int) placement.SearchOptions {
		return placement.SearchOptions{Workers: opts.Workers, Seed: controlplane.DeriveSeed(sc.Seed, stage, i)}
	}
	loadFactor := 1.0
	deadAfterRecovery := []string(nil)

	// Deploy: every query searched fresh on the full healthy fleet.
	deps := make([]*deployment, sc.Workload.Queries)
	v := fl.view()
	deploy := TimelineEntry{AtS: 0, Event: "deploy", AliveHosts: fl.aliveCount(), LoadFactor: 1}
	for i := range deps {
		d := &deployment{id: fmt.Sprintf("q%02d", i), query: sampler(i)}
		cd := controlplane.Deployment{ID: d.id, Query: d.query}
		if err := pol.Deploy(ctx, &cd, controlplane.View{Cluster: v.cluster}, searchOpts(0, i)); err != nil {
			return nil, fmt.Errorf("fleet: deploying %s: %w", d.id, err)
		}
		d.placement = v.mapToFleet(cd.Placement)
		d.predicted = cd.Predicted
		d.deployed = true
		deps[i] = d
		deploy.Queries = append(deploy.Queries, QueryStatus{
			ID:            d.id,
			Hosts:         fl.hostIDs(d.placement),
			PredLatencyMS: round4(cd.Predicted.ProcLatencyMS),
			Action:        "deployed",
		})
	}
	rep.Timeline = append(rep.Timeline, deploy)

	// heal runs the control plane's self-healing pass over every
	// deployment at clock nowS; stage seeds searches and observations.
	// The fleet's only job here is translation: fleet host indices to
	// view indices in, the Decision back into report rows and totals.
	heal := func(nowS float64, stage int, entry *TimelineEntry) error {
		v := fl.view()
		view := controlplane.View{Cluster: v.cluster}
		for i, d := range deps {
			st := QueryStatus{ID: d.id}
			effQ := scaledQuery(d.query, loadFactor)
			obsCfg := simCfg
			obsCfg.Seed = controlplane.DeriveSeed(sc.Seed^0x51ED2701, stage, i)

			cd := controlplane.Deployment{
				ID:        d.id,
				Query:     d.query,
				Predicted: d.predicted,
				LastMoveS: d.lastMoveS,
				Deployed:  d.deployed,
			}
			if d.deployed {
				// mapToView leaves -1 entries for dead hosts; the policy
				// classifies those as a dead-host violation.
				vp, _ := v.mapToView(d.placement)
				cd.Placement = vp
			}
			dec, err := pol.Heal(ctx, &cd, view, effQ, controlplane.SimFeed{Cfg: obsCfg}, nowS, searchOpts(stage, i))
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("fleet: healing %s: %w", d.id, err)
			}
			if dec.Observed {
				st.QErrThroughput = round4(dec.QErrThroughput)
				st.QErrProcLatency = round4(dec.QErrProcLatency)
				st.PredLatencyMS = round4(dec.PredLatencyMS)
				st.ObsLatencyMS = round4(dec.ObsLatencyMS)
			}
			st.Violation = dec.Violation
			st.Action = dec.Action
			if dec.Violation != "" {
				rep.Totals.Violations++
				switch {
				case dec.Action == controlplane.ActionMigrated:
					rep.Totals.Migrations++
				case dec.Action == controlplane.ActionReplaced || dec.Action == controlplane.ActionRedeployed:
					rep.Totals.Replacements++
				case dec.Suppressed():
					rep.Totals.Suppressed++
				}
			}
			d.deployed = cd.Deployed
			d.predicted = cd.Predicted
			d.lastMoveS = cd.LastMoveS
			if cd.Deployed {
				d.placement = v.mapToFleet(cd.Placement)
				st.Hosts = fl.hostIDs(d.placement)
			} else {
				d.placement = nil
			}
			entry.Queries = append(entry.Queries, st)
		}
		// The no-dead-placements invariant: after a recovery pass no
		// deployment may still reference a dead host.
		for _, d := range deps {
			if d.deployed {
				deadAfterRecovery = mergeIDs(deadAfterRecovery, fl.deadHosts(d.placement))
			}
		}
		return nil
	}

	events := sc.sortedEvents()
	now := 0.0
	for k, ev := range events {
		if ev.AtS > now {
			now = ev.AtS
		}
		affected, err := fl.apply(ev, rng)
		if err != nil {
			return nil, err
		}
		if ev.Type == EventLoadSpike {
			loadFactor *= ev.Factor
		}
		entry := TimelineEntry{
			AtS:        now,
			Event:      string(ev.Type),
			Zone:       ev.Zone,
			Affected:   affected,
			Factor:     ev.Factor,
			AliveHosts: fl.aliveCount(),
			LoadFactor: round4(loadFactor),
		}
		logf("t=%.0fs %s: %d hosts affected, %d alive", now, ev.Type, len(affected), entry.AliveHosts)
		if err := heal(now, k+1, &entry); err != nil {
			return nil, err
		}
		rep.Timeline = append(rep.Timeline, entry)
		rep.Totals.Events++
	}

	// Closing observation: one settle pass with recovery disabled, so the
	// end-state assertions see the final placements' q-errors.
	end := TimelineEntry{AtS: now, Event: "end", AliveHosts: fl.aliveCount(), LoadFactor: round4(loadFactor)}
	v = fl.view()
	maxQ := 0.0
	for i, d := range deps {
		st := QueryStatus{ID: d.id}
		if d.deployed {
			st.Hosts = fl.hostIDs(d.placement)
			vp, alive := v.mapToView(d.placement)
			if alive {
				obsCfg := simCfg
				obsCfg.Seed = controlplane.DeriveSeed(sc.Seed^0x51ED2701, len(events)+1, i)
				obs, err := sim.Run(scaledQuery(d.query, loadFactor), v.cluster, vp, obsCfg)
				if err != nil {
					return nil, fmt.Errorf("fleet: final observation of %s: %w", d.id, err)
				}
				qT, qL := placement.RecordQErrors(d.predicted, obs)
				st.QErrThroughput = round4(qT)
				st.QErrProcLatency = round4(qL)
				st.PredLatencyMS = round4(d.predicted.ProcLatencyMS)
				st.ObsLatencyMS = round4(obs.ProcLatencyMS)
				maxQ = math.Max(maxQ, math.Max(st.QErrThroughput, st.QErrProcLatency))
			} else {
				st.Violation = "dead-host"
				deadAfterRecovery = mergeIDs(deadAfterRecovery, fl.deadHosts(d.placement))
			}
		} else {
			st.Violation = "undeployed"
		}
		end.Queries = append(end.Queries, st)
	}
	rep.Timeline = append(rep.Timeline, end)

	rep.Assertions = evaluateAssertions(sc.Assertions, rep, deps, deadAfterRecovery, maxQ)
	rep.Pass = true
	for _, a := range rep.Assertions {
		if !a.Pass {
			rep.Pass = false
		}
	}
	logf("done: %d events, %d violations, %d migrations, %d replacements, %d suppressed, pass=%v",
		rep.Totals.Events, rep.Totals.Violations, rep.Totals.Migrations, rep.Totals.Replacements, rep.Totals.Suppressed, rep.Pass)
	return rep, nil
}

// evaluateAssertions grades the end state; no-dead-placements defaults
// to on.
func evaluateAssertions(a Assertions, rep *Report, deps []*deployment, deadAfterRecovery []string, maxQ float64) []AssertionResult {
	var out []AssertionResult
	add := func(name string, pass bool, detail string) {
		out = append(out, AssertionResult{Name: name, Pass: pass, Detail: detail})
	}
	if a.NoDeadPlacements == nil || *a.NoDeadPlacements {
		if len(deadAfterRecovery) == 0 {
			add("no-dead-placements", true, "no placement referenced a dead host after any recovery pass")
		} else {
			add("no-dead-placements", false, fmt.Sprintf("placements referenced dead hosts after recovery: %v", deadAfterRecovery))
		}
	}
	moves := rep.Totals.Migrations + rep.Totals.Replacements
	if a.MaxMigrations != nil {
		add("max-migrations", moves <= *a.MaxMigrations,
			fmt.Sprintf("%d placement changes (migrations %d + replacements %d), limit %d",
				moves, rep.Totals.Migrations, rep.Totals.Replacements, *a.MaxMigrations))
	}
	if a.MinMigrations != nil {
		add("min-migrations", moves >= *a.MinMigrations,
			fmt.Sprintf("%d placement changes, minimum %d", moves, *a.MinMigrations))
	}
	if a.MaxQError > 0 {
		add("max-qerror", maxQ <= a.MaxQError,
			fmt.Sprintf("worst end-state q-error %.4f, limit %v", maxQ, a.MaxQError))
	}
	if a.RequireAllDeployed {
		undeployed := 0
		for _, d := range deps {
			if !d.deployed {
				undeployed++
			}
		}
		add("require-all-deployed", undeployed == 0, fmt.Sprintf("%d of %d queries undeployed", undeployed, len(deps)))
	}
	return out
}

// mergeIDs appends the IDs of b not already in a, keeping order.
func mergeIDs(a, b []string) []string {
	for _, id := range b {
		if !contains(a, id) {
			a = append(a, id)
		}
	}
	return a
}


package fleet

import (
	"encoding/json"
	"strings"
	"testing"
)

// validScenarioJSON is a small but fully-featured scenario document used
// by the parser tests and as the fuzz seed corpus.
const validScenarioJSON = `{
  "name": "parser-fixture",
  "seed": 7,
  "fleet": {
    "templates": [
      {"name": "edge", "weight": 2, "grid": "edge"},
      {"name": "custom", "cpu": [400, 800], "ram_mb": [8000], "bandwidth_mbps": [1600], "latency_ms": [1, 5]}
    ],
    "zones": [
      {"name": "west", "hosts": 4},
      {"name": "core", "hosts": 2, "templates": ["custom"]}
    ]
  },
  "workload": {"queries": 2, "recipe": "training"},
  "events": [
    {"at_s": 10, "type": "zone-outage", "zone": "west"},
    {"at_s": 20, "type": "load-spike", "factor": 1.5},
    {"at_s": 30, "type": "host-recover", "zone": "west", "count": 2},
    {"at_s": 40, "type": "link-degrade", "zone": "core", "factor": 4},
    {"at_s": 50, "type": "link-recover", "zone": "core"},
    {"at_s": 60, "type": "host-crash", "hosts": ["core/host-000"]}
  ],
  "recovery": {"qerror_threshold": 2, "min_improvement": 0.05, "cooldown_s": 5, "budget": 8, "strategy": "local-search"},
  "assertions": {"max_migrations": 10, "max_qerror": 50, "no_dead_placements": true}
}`

func TestParseValidScenario(t *testing.T) {
	sc, err := Parse([]byte(validScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "parser-fixture" || sc.Seed != 7 {
		t.Errorf("header mismatch: %+v", sc)
	}
	if len(sc.Events) != 6 || len(sc.Fleet.Templates) != 2 || len(sc.Fleet.Zones) != 2 {
		t.Errorf("structure mismatch: %+v", sc)
	}
	// Round trip: the parsed scenario re-marshals and re-parses.
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(data); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

// TestParseErrorsNameField drives the parser with malformed documents
// and requires every error to name the offending field.
func TestParseErrorsNameField(t *testing.T) {
	mut := func(f func(*Scenario)) []byte {
		sc, err := Parse([]byte(validScenarioJSON))
		if err != nil {
			t.Fatal(err)
		}
		f(sc)
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		doc  []byte
		want string // substring the error must contain
	}{
		{"not json", []byte("{"), "parsing scenario"},
		{"wrong type", []byte(`{"seed": "seven"}`), "seed"},
		{"unknown field", []byte(`{"seed": 1, "fleeet": {}}`), "fleeet"},
		{"trailing garbage", append([]byte(validScenarioJSON), []byte("{}")...), "trailing data"},
		{"no templates", mut(func(s *Scenario) { s.Fleet.Templates = nil }), "fleet.templates"},
		{"unnamed template", mut(func(s *Scenario) { s.Fleet.Templates[0].Name = "" }), "fleet.templates[0].name"},
		{"duplicate template", mut(func(s *Scenario) { s.Fleet.Templates[1].Name = "edge" }), "fleet.templates[1].name"},
		{"negative weight", mut(func(s *Scenario) { s.Fleet.Templates[0].Weight = -1 }), "fleet.templates[0].weight"},
		{"unknown grid", mut(func(s *Scenario) { s.Fleet.Templates[0].Grid = "quantum" }), "fleet.templates[0]"},
		{"grid plus lists", mut(func(s *Scenario) { s.Fleet.Templates[0].CPU = []float64{100} }), "fleet.templates[0].grid"},
		{"empty grid dimension", mut(func(s *Scenario) { s.Fleet.Templates[1].CPU = nil }), "cpu"},
		{"bad grid value", mut(func(s *Scenario) { s.Fleet.Templates[1].RAMMB = []float64{-4} }), "ram_mb"},
		{"no zones", mut(func(s *Scenario) { s.Fleet.Zones = nil }), "fleet.zones"},
		{"zero hosts", mut(func(s *Scenario) { s.Fleet.Zones[0].Hosts = 0 }), "fleet.zones[0].hosts"},
		{"duplicate zone", mut(func(s *Scenario) { s.Fleet.Zones[1].Name = "west" }), "fleet.zones[1].name"},
		{"unknown zone template", mut(func(s *Scenario) { s.Fleet.Zones[1].Templates = []string{"nope"} }), "fleet.zones[1].templates[0]"},
		{"zero queries", mut(func(s *Scenario) { s.Workload.Queries = 0 }), "workload.queries"},
		{"unknown recipe", mut(func(s *Scenario) { s.Workload.Recipe = "nope" }), "workload.recipe"},
		{"negative event time", mut(func(s *Scenario) { s.Events[0].AtS = -1 }), "events[0].at_s"},
		{"unknown event type", mut(func(s *Scenario) { s.Events[0].Type = "meteor" }), "events[0].type"},
		{"unknown event zone", mut(func(s *Scenario) { s.Events[0].Zone = "east" }), "events[0].zone"},
		{"crash without targets", mut(func(s *Scenario) { s.Events[5].Hosts = nil }), "events[5].count"},
		{"degrade factor", mut(func(s *Scenario) { s.Events[3].Factor = 0.5 }), "events[3].factor"},
		{"spike factor", mut(func(s *Scenario) { s.Events[1].Factor = 0 }), "events[1].factor"},
		{"threshold below one", mut(func(s *Scenario) { s.Recovery.QErrorThreshold = 0.5 }), "recovery.qerror_threshold"},
		{"negative cooldown", mut(func(s *Scenario) { s.Recovery.CooldownS = -1 }), "recovery.cooldown_s"},
		{"unknown strategy", mut(func(s *Scenario) { s.Recovery.Strategy = "warp" }), "recovery.strategy"},
		{"unknown objective", mut(func(s *Scenario) { s.Recovery.Objective = "vibes" }), "recovery.objective"},
		{"qerror assertion below one", mut(func(s *Scenario) { s.Assertions.MaxQError = 0.5 }), "assertions.max_qerror"},
		{"max below min", mut(func(s *Scenario) { n := 1; s.Assertions.MinMigrations = &n; m := 0; s.Assertions.MaxMigrations = &m }), "assertions.max_migrations"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.doc)
		if err == nil {
			t.Errorf("%s: parse succeeded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}

// TestEventsSortedStably: the runner walks events by at_s with ties in
// file order.
func TestEventsSortedStably(t *testing.T) {
	sc := &Scenario{Events: []Event{
		{AtS: 20, Type: EventLoadSpike, Factor: 2},
		{AtS: 10, Type: EventLinkRecover},
		{AtS: 10, Type: EventLinkDegrade, Factor: 3},
	}}
	evs := sc.sortedEvents()
	if evs[0].Type != EventLinkRecover || evs[1].Type != EventLinkDegrade || evs[2].Type != EventLoadSpike {
		t.Errorf("unexpected order: %+v", evs)
	}
}

func TestBuildFleetDeterministic(t *testing.T) {
	sc, err := Parse([]byte(validScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Fleet {
		f, err := buildFleet(sc.Fleet, newTestRng(sc.Seed))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := build(), build()
	if a.NumHosts() != 6 || b.NumHosts() != 6 {
		t.Fatalf("host count: %d / %d, want 6", a.NumHosts(), b.NumHosts())
	}
	for i := range a.hosts {
		if a.hosts[i].host != b.hosts[i].host {
			t.Errorf("host %d differs across identically-seeded builds", i)
		}
	}
	if a.hostID(0) != "west/host-000" || a.hostID(4) != "core/host-000" {
		t.Errorf("unexpected host IDs: %s, %s", a.hostID(0), a.hostID(4))
	}
	// The core zone only draws the custom template: CPU 400 or 800.
	for i := 4; i < 6; i++ {
		if cpu := a.hosts[i].host.CPU; cpu != 400 && cpu != 800 {
			t.Errorf("core host %d drew CPU %v outside its template", i, cpu)
		}
	}
}

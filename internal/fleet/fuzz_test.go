package fleet

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse drives the scenario parser with arbitrary bytes: it must
// never panic, and every rejection must carry a non-empty error message.
func FuzzParse(f *testing.F) {
	f.Add([]byte(validScenarioJSON))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"fleet": {"templates": [{"name": "x"}], "zones": [{"name": "z", "hosts": 1}]}, "workload": {"queries": 1}}`))
	f.Add([]byte(`{"seed": -1, "events": [{"at_s": 1e308, "type": "host-crash", "count": 9999999}]}`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`null`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("rejection with empty error message")
			}
			return
		}
		// Accepted documents must be internally consistent enough to
		// re-validate: Parse already ran Validate, so a second pass on
		// the same value must agree.
		if verr := sc.Validate(); verr != nil {
			t.Fatalf("accepted scenario fails re-validation: %v", verr)
		}
	})
}

// TestParseRejectsBinaryGarbage spot-checks a handful of hostile inputs
// outside the fuzz corpus.
func TestParseRejectsBinaryGarbage(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		[]byte("\x1f\x8b\x08\x00"), // gzip magic
		[]byte(strings.Repeat("[", 10000)),
		[]byte(`{"name": "` + strings.Repeat("\\u0000", 100) + `"}`),
		[]byte(`{"fleet": 12}`),
		[]byte(`{"events": [{"type": ["not", "a", "string"]}]}`),
	}
	for i, in := range inputs {
		if _, err := Parse(in); err == nil {
			t.Errorf("input %d (%d bytes) unexpectedly accepted", i, len(in))
		}
	}
	if !utf8.ValidString(validScenarioJSON) {
		t.Fatal("fixture is not valid UTF-8")
	}
}

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"costream/internal/sim"
)

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// fastSim is the observation window used by tests: short enough to keep
// hundreds of simulator runs per test cheap, long enough to produce
// stable statistics.
func fastSim() *sim.Config {
	return &sim.Config{DurationS: 4, WarmupS: 1, StepS: 0.1, NoiseStd: 0.02}
}

// cascadeScenario is the acceptance scenario: a 220-host fleet across
// three zones and a cascading failure script — full core-zone outage,
// then a load spike, then partial recovery. Placements under
// min-processing-latency concentrate on the strong core zone, so the
// outage forces re-placements onto the surviving fog/edge hosts.
func cascadeScenario(seed int64) *Scenario {
	return &Scenario{
		Name: "crash-cascade",
		Seed: seed,
		Fleet: FleetSpec{
			Templates: []HostTemplate{
				{Name: "edge", Grid: "edge", Weight: 1},
				{Name: "fog", Grid: "training", Weight: 1},
				{Name: "cloud", Grid: "cloud", Weight: 1},
			},
			Zones: []ZoneSpec{
				{Name: "edge-a", Hosts: 120, Templates: []string{"edge"}},
				{Name: "fog-b", Hosts: 60, Templates: []string{"fog"}},
				{Name: "core", Hosts: 40, Templates: []string{"cloud"}},
			},
		},
		Workload: WorkloadSpec{Queries: 3, Recipe: "training"},
		Events: []Event{
			{AtS: 10, Type: EventZoneOutage, Zone: "core"},
			{AtS: 20, Type: EventLoadSpike, Factor: 1.5},
			{AtS: 30, Type: EventHostRecover, Zone: "core", Count: 10},
		},
		Recovery: RecoverySpec{QErrorThreshold: 2, MinImprovement: 0.02, Budget: 8},
		Assertions: Assertions{
			MinMigrations: intp(1),
			MaxQError:     1e6, // bounded but loose: the tiny test window is noisy
		},
	}
}

func intp(n int) *int { return &n }

func runScenario(t *testing.T, sc *Scenario, workers int) *Report {
	t.Helper()
	rep, err := Run(context.Background(), sc, RunOptions{SimConfig: fastSim(), Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCascadeDeterministicReport is the acceptance check: a >= 200-host
// cascading-failure scenario completes, the recovery loop re-places the
// queries hit by the outage, no placement ever references a crashed
// host, and the marshaled report is byte-identical across runs and
// worker counts.
func TestCascadeDeterministicReport(t *testing.T) {
	sc := cascadeScenario(42)
	rep := runScenario(t, sc, 1)
	if rep.Hosts < 200 {
		t.Fatalf("fleet has %d hosts, acceptance needs >= 200", rep.Hosts)
	}
	if !rep.Pass {
		t.Errorf("report failed assertions: %+v", rep.Assertions)
	}
	if rep.Totals.Replacements == 0 {
		t.Error("core outage forced no re-placements; the cascade did not bite")
	}
	if rep.Totals.Violations == 0 {
		t.Error("no violations recorded across a zone outage")
	}
	assertionPassed(t, rep, "no-dead-placements")

	base, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		again, err := json.MarshalIndent(runScenario(t, sc, workers), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, again) {
			t.Errorf("report not byte-identical at workers=%d", workers)
		}
	}
}

// TestNoPlacementOnDeadHosts walks the report timeline, tracking host
// aliveness from the event stream, and asserts no post-recovery
// placement ever references a host that is down at that point.
func TestNoPlacementOnDeadHosts(t *testing.T) {
	rep := runScenario(t, cascadeScenario(42), 1)
	dead := map[string]bool{}
	for _, entry := range rep.Timeline {
		switch entry.Event {
		case string(EventZoneOutage), string(EventHostCrash):
			for _, id := range entry.Affected {
				dead[id] = true
			}
		case string(EventZoneRecover), string(EventHostRecover):
			for _, id := range entry.Affected {
				delete(dead, id)
			}
		}
		for _, q := range entry.Queries {
			for _, id := range q.Hosts {
				if dead[id] {
					t.Errorf("t=%.0fs %s: query %s placed on dead host %s", entry.AtS, entry.Event, q.ID, id)
				}
			}
		}
	}
	if len(dead) == 0 {
		t.Error("timeline recorded no dead hosts; the scenario exercised nothing")
	}
}

// TestHysteresisSuppressesMigrations measures the hysteresis contract:
// load spikes make the drift detector fire, and the random recovery
// strategy keeps proposing challengers that beat the re-scored incumbent
// by real margins — yet with an unreachable improvement threshold every
// migration is suppressed (zero placement changes), while the permissive
// run of the identical scenario does migrate.
func TestHysteresisSuppressesMigrations(t *testing.T) {
	mk := func(minImprovement float64) *Scenario {
		return &Scenario{
			Name: "hysteresis",
			Seed: 9,
			Fleet: FleetSpec{
				Templates: []HostTemplate{{Name: "mix", Grid: "training"}},
				Zones: []ZoneSpec{
					{Name: "a", Hosts: 6},
					{Name: "b", Hosts: 6},
				},
			},
			Workload: WorkloadSpec{Queries: 4, Recipe: "training"},
			Events: []Event{
				{AtS: 10, Type: EventLoadSpike, Factor: 4},
				{AtS: 20, Type: EventLoadSpike, Factor: 4},
			},
			Recovery: RecoverySpec{QErrorThreshold: 1.5, MinImprovement: minImprovement, Budget: 32, Strategy: "random"},
		}
	}
	strict := runScenario(t, mk(1e9), 1)
	if strict.Totals.Violations == 0 {
		t.Fatal("load spikes produced no drift violations; hysteresis untested")
	}
	if strict.Totals.Migrations != 0 || strict.Totals.Replacements != 0 {
		t.Errorf("unreachable improvement threshold still moved placements: %+v", strict.Totals)
	}
	if strict.Totals.Suppressed == 0 {
		t.Error("no suppressed migrations recorded")
	}
	// At least one suppression must be hysteresis proper (a better
	// challenger rejected for insufficient improvement), not just the
	// search re-finding the incumbent.
	belowThreshold := false
	for _, e := range strict.Timeline {
		for _, q := range e.Queries {
			if strings.Contains(q.Action, "below threshold") {
				belowThreshold = true
			}
		}
	}
	if !belowThreshold {
		t.Error("no suppression cited the improvement threshold; hysteresis never gated a real challenger")
	}
	loose := runScenario(t, mk(0.001), 1)
	if loose.Totals.Migrations == 0 {
		t.Errorf("permissive threshold migrated nothing: %+v", loose.Totals)
	}
}

// TestCooldownBlocksBackToBackMigrations: with an effectively infinite
// cooldown, at most the first drift migration per query is accepted.
func TestCooldownBlocksBackToBackMigrations(t *testing.T) {
	sc := &Scenario{
		Name: "cooldown",
		Seed: 5,
		Fleet: FleetSpec{
			Templates: []HostTemplate{{Name: "mix", Grid: "training"}},
			Zones:     []ZoneSpec{{Name: "a", Hosts: 5}, {Name: "b", Hosts: 5}},
		},
		Workload: WorkloadSpec{Queries: 2, Recipe: "training"},
		Events: []Event{
			{AtS: 10, Type: EventLinkDegrade, Zone: "a", Factor: 8},
			{AtS: 20, Type: EventLinkDegrade, Zone: "b", Factor: 8},
			{AtS: 30, Type: EventLinkDegrade, Zone: "a", Factor: 8},
		},
		Recovery: RecoverySpec{QErrorThreshold: 1.2, MinImprovement: 0.001, CooldownS: 1e9, Budget: 16},
	}
	rep := runScenario(t, sc, 1)
	if rep.Totals.Migrations > sc.Workload.Queries {
		t.Errorf("cooldown 1e9s allowed %d migrations for %d queries", rep.Totals.Migrations, sc.Workload.Queries)
	}
	cooldownSuppressed := false
	for _, entry := range rep.Timeline {
		for _, q := range entry.Queries {
			if strings.Contains(q.Action, "cooldown") {
				cooldownSuppressed = true
			}
		}
	}
	if rep.Totals.Migrations > 0 && !cooldownSuppressed && rep.Totals.Suppressed == 0 {
		t.Error("no suppression recorded despite repeated drift under an infinite cooldown")
	}
}

// TestAssertionFailureFailsReport: an impossible assertion flips
// Pass=false without erroring the run.
func TestAssertionFailureFailsReport(t *testing.T) {
	sc := cascadeScenario(42)
	sc.Assertions = Assertions{MaxMigrations: intp(0)}
	rep := runScenario(t, sc, 1)
	if rep.Pass {
		t.Error("report passed despite max_migrations=0 and a forced cascade")
	}
	found := false
	for _, a := range rep.Assertions {
		if a.Name == "max-migrations" && !a.Pass && a.Detail != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing failing max-migrations assertion: %+v", rep.Assertions)
	}
}

// TestRunContextCancellation: a pre-cancelled context aborts the run.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, cascadeScenario(1), RunOptions{SimConfig: fastSim()})
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
}

func assertionPassed(t *testing.T, rep *Report, name string) {
	t.Helper()
	for _, a := range rep.Assertions {
		if a.Name == name {
			if !a.Pass {
				t.Errorf("assertion %s failed: %s", name, a.Detail)
			}
			return
		}
	}
	t.Errorf("assertion %s not evaluated", name)
}

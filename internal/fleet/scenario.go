// Package fleet is the fault-injecting fleet simulator: a
// seeded-deterministic model of an edge-cloud host fleet under a timed
// failure-event script, with a self-healing placement loop on top. A
// scenario file declares the fleet (weighted host templates over
// internal/hardware grids, grouped into zones), the deployed query
// workload (a scenario-registry recipe name), the event script (host
// crashes and recoveries, zone outages, link degradation, load spikes)
// and end-state assertions. Run advances an event-driven clock through
// the script; after every event the recovery loop compares observed
// costs (simulated via internal/sim) against the costs predicted when
// each placement was activated — the OnlineMonitoring q-error machinery —
// and on violation re-optimizes with the placement search engine
// warm-started from the incumbent, gated by migration hysteresis.
// Everything is deterministic for a fixed seed: the JSON report is
// byte-identical across runs.
package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/scenario"
)

// Scenario is one fleet-simulation scenario: fleet, workload, event
// script, recovery policy and end-state assertions.
type Scenario struct {
	// Name labels the run in reports.
	Name string `json:"name,omitempty"`
	// Seed drives every random draw (fleet sampling, workload, search,
	// event targeting, simulator noise). Fixed seed, identical report.
	Seed int64 `json:"seed"`
	// Fleet declares the host fleet.
	Fleet FleetSpec `json:"fleet"`
	// Workload declares the deployed queries.
	Workload WorkloadSpec `json:"workload"`
	// Events is the timed failure script, ordered by at_s.
	Events []Event `json:"events,omitempty"`
	// Recovery tunes the self-healing loop.
	Recovery RecoverySpec `json:"recovery,omitempty"`
	// Assertions are checked against the finished run.
	Assertions Assertions `json:"assertions,omitempty"`
}

// FleetSpec declares the simulated host fleet: weighted host templates
// and the zones instantiating them.
type FleetSpec struct {
	Templates []HostTemplate `json:"templates"`
	Zones     []ZoneSpec     `json:"zones"`
}

// HostTemplate is a weighted recipe for sampling hosts. Either Grid
// names a built-in hardware grid ("training", "interpolation",
// "extrapolation", "edge", "cloud") or the four feature-value lists
// spell out a custom grid.
type HostTemplate struct {
	Name string `json:"name"`
	// Weight is the template's relative draw weight within a zone
	// (default 1).
	Weight float64 `json:"weight,omitempty"`
	// Grid names a built-in hardware grid; empty means the explicit
	// lists below are used.
	Grid          string    `json:"grid,omitempty"`
	CPU           []float64 `json:"cpu,omitempty"`
	RAMMB         []float64 `json:"ram_mb,omitempty"`
	BandwidthMbps []float64 `json:"bandwidth_mbps,omitempty"`
	LatencyMS     []float64 `json:"latency_ms,omitempty"`
}

// grid resolves the template to a concrete hardware grid.
func (t *HostTemplate) grid() (hardware.Grid, error) {
	if t.Grid != "" {
		switch t.Grid {
		case "training":
			return hardware.TrainingGrid(), nil
		case "interpolation":
			return hardware.InterpolationGrid(), nil
		case "extrapolation":
			return scenario.ExtrapolationGrid(), nil
		case "edge":
			return scenario.EdgeGrid(), nil
		case "cloud":
			return scenario.CloudGrid(), nil
		default:
			return hardware.Grid{}, fmt.Errorf("grid: unknown built-in grid %q (want training, interpolation, extrapolation, edge or cloud)", t.Grid)
		}
	}
	g := hardware.Grid{CPU: t.CPU, RAMMB: t.RAMMB, Bandwidth: t.BandwidthMbps, LatencyMS: t.LatencyMS}
	if err := g.Validate(); err != nil {
		return hardware.Grid{}, err
	}
	return g, nil
}

// ZoneSpec instantiates hosts in one failure domain. Host IDs are
// "<zone>/host-<i>".
type ZoneSpec struct {
	Name  string `json:"name"`
	Hosts int    `json:"hosts"`
	// Templates restricts the zone to a subset of template names; empty
	// draws from all templates.
	Templates []string `json:"templates,omitempty"`
}

// WorkloadSpec declares the deployed queries: Queries independent query
// plans drawn from the named scenario-registry recipe.
type WorkloadSpec struct {
	Queries int `json:"queries"`
	// Recipe is a scenario-registry name (costream-datagen -list);
	// default "training".
	Recipe string `json:"recipe,omitempty"`
	// Seed overrides the query-workload seed; 0 derives it from the
	// scenario seed.
	Seed int64 `json:"seed,omitempty"`
}

// EventType enumerates the failure-script event kinds.
type EventType string

// Event kinds.
const (
	EventHostCrash   EventType = "host-crash"
	EventHostRecover EventType = "host-recover"
	EventZoneOutage  EventType = "zone-outage"
	EventZoneRecover EventType = "zone-recover"
	EventLinkDegrade EventType = "link-degrade"
	EventLinkRecover EventType = "link-recover"
	EventLoadSpike   EventType = "load-spike"
)

// Event is one entry of the timed failure script.
type Event struct {
	// AtS is the event's simulated-clock time in seconds.
	AtS  float64   `json:"at_s"`
	Type EventType `json:"type"`
	// Zone scopes the event to one zone (required for zone-outage and
	// zone-recover; optional scoping for the host and link events).
	Zone string `json:"zone,omitempty"`
	// Hosts names explicit target hosts for host-crash/host-recover.
	Hosts []string `json:"hosts,omitempty"`
	// Count picks that many random eligible hosts when Hosts is empty
	// (host-crash/host-recover).
	Count int `json:"count,omitempty"`
	// Factor is the link degradation multiplier (latency x factor,
	// bandwidth / factor; must be >= 1) or the load-spike rate
	// multiplier (> 0).
	Factor float64 `json:"factor,omitempty"`
}

// RecoverySpec tunes the self-healing loop. Zero values select the
// documented defaults.
type RecoverySpec struct {
	// QErrorThreshold is the observed-vs-predicted q-error above which a
	// placement counts as violated (default 2: off by more than 2x).
	QErrorThreshold float64 `json:"qerror_threshold,omitempty"`
	// MinImprovement is the relative cost improvement a challenger must
	// deliver before a migration is accepted (default 0.05).
	MinImprovement float64 `json:"min_improvement,omitempty"`
	// CooldownS is the minimum clock gap between accepted migrations of
	// one query (default 0: disabled).
	CooldownS float64 `json:"cooldown_s,omitempty"`
	// Budget is the per-search candidate budget (default 32).
	Budget int `json:"budget,omitempty"`
	// Strategy is the placement search strategy re-optimization runs,
	// warm-started from the incumbent (default "local-search").
	Strategy string `json:"strategy,omitempty"`
	// Objective is the placement objective (default
	// "min-processing-latency").
	Objective string `json:"objective,omitempty"`
}

const (
	defaultQErrorThreshold = 2.0
	defaultMinImprovement  = 0.05
	defaultSearchBudget    = 32
)

// Assertions are end-state checks evaluated against the finished run;
// any failure makes the report fail (costream-sim exits non-zero).
type Assertions struct {
	// MaxMigrations bounds the total number of placement changes
	// (hysteresis-approved migrations plus forced replacements).
	MaxMigrations *int `json:"max_migrations,omitempty"`
	// MinMigrations requires at least this many placement changes.
	MinMigrations *int `json:"min_migrations,omitempty"`
	// MaxQError bounds the end-state observed-vs-predicted q-error of
	// every deployed query on both tracked metrics (e.g. 2 = "latency
	// and throughput within 2x predicted"). 0 disables the check.
	MaxQError float64 `json:"max_qerror,omitempty"`
	// NoDeadPlacements asserts no placement references a dead host after
	// any recovery pass. Defaults to true.
	NoDeadPlacements *bool `json:"no_dead_placements,omitempty"`
	// RequireAllDeployed asserts every query still holds a placement at
	// the end of the run.
	RequireAllDeployed bool `json:"require_all_deployed,omitempty"`
}

// Parse decodes and validates a scenario document. Unknown fields,
// trailing garbage and semantically invalid values are errors naming the
// offending field.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("fleet: parsing scenario: %w", describeJSONError(err))
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("fleet: parsing scenario: trailing data after the scenario document")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// describeJSONError rewrites a json decode error so it names the
// offending field where the encoding/json error carries one.
func describeJSONError(err error) error {
	var typeErr *json.UnmarshalTypeError
	if errors.As(err, &typeErr) && typeErr.Field != "" {
		return fmt.Errorf("field %q: cannot decode %s into %s", typeErr.Field, typeErr.Value, typeErr.Type)
	}
	return err
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Validate checks the scenario's semantic invariants; errors name the
// offending field in JSON-path notation.
func (sc *Scenario) Validate() error {
	if len(sc.Fleet.Templates) == 0 {
		return fmt.Errorf("fleet: field fleet.templates: at least one host template is required")
	}
	templates := map[string]bool{}
	for i := range sc.Fleet.Templates {
		t := &sc.Fleet.Templates[i]
		if t.Name == "" {
			return fmt.Errorf("fleet: field fleet.templates[%d].name: must be non-empty", i)
		}
		if templates[t.Name] {
			return fmt.Errorf("fleet: field fleet.templates[%d].name: duplicate template %q", i, t.Name)
		}
		templates[t.Name] = true
		if t.Weight < 0 {
			return fmt.Errorf("fleet: field fleet.templates[%d].weight: must be non-negative, got %v", i, t.Weight)
		}
		if t.Grid != "" && (len(t.CPU) > 0 || len(t.RAMMB) > 0 || len(t.BandwidthMbps) > 0 || len(t.LatencyMS) > 0) {
			return fmt.Errorf("fleet: field fleet.templates[%d].grid: a built-in grid excludes explicit cpu/ram_mb/bandwidth_mbps/latency_ms lists", i)
		}
		if _, err := t.grid(); err != nil {
			return fmt.Errorf("fleet: field fleet.templates[%d]: %w", i, err)
		}
	}
	if len(sc.Fleet.Zones) == 0 {
		return fmt.Errorf("fleet: field fleet.zones: at least one zone is required")
	}
	zones := map[string]bool{}
	for i := range sc.Fleet.Zones {
		z := &sc.Fleet.Zones[i]
		if z.Name == "" {
			return fmt.Errorf("fleet: field fleet.zones[%d].name: must be non-empty", i)
		}
		if zones[z.Name] {
			return fmt.Errorf("fleet: field fleet.zones[%d].name: duplicate zone %q", i, z.Name)
		}
		zones[z.Name] = true
		if z.Hosts <= 0 {
			return fmt.Errorf("fleet: field fleet.zones[%d].hosts: must be positive, got %d", i, z.Hosts)
		}
		weight := 0.0
		for j, name := range z.Templates {
			if !templates[name] {
				return fmt.Errorf("fleet: field fleet.zones[%d].templates[%d]: unknown template %q", i, j, name)
			}
		}
		for ti := range sc.Fleet.Templates {
			t := &sc.Fleet.Templates[ti]
			if len(z.Templates) == 0 || contains(z.Templates, t.Name) {
				w := t.Weight
				if w == 0 {
					w = 1
				}
				weight += w
			}
		}
		if weight <= 0 {
			return fmt.Errorf("fleet: field fleet.zones[%d].templates: total template weight is zero", i)
		}
	}
	if sc.Workload.Queries <= 0 {
		return fmt.Errorf("fleet: field workload.queries: must be positive, got %d", sc.Workload.Queries)
	}
	recipe := sc.Workload.Recipe
	if recipe == "" {
		recipe = "training"
	}
	if _, err := scenario.Get(recipe); err != nil {
		return fmt.Errorf("fleet: field workload.recipe: %w", err)
	}
	for i := range sc.Events {
		if err := sc.Events[i].validate(zones); err != nil {
			return fmt.Errorf("fleet: field events[%d]%s", i, err)
		}
	}
	r := sc.Recovery
	if r.QErrorThreshold < 0 {
		return fmt.Errorf("fleet: field recovery.qerror_threshold: must be non-negative, got %v", r.QErrorThreshold)
	}
	if r.QErrorThreshold > 0 && r.QErrorThreshold < 1 {
		return fmt.Errorf("fleet: field recovery.qerror_threshold: q-errors are >= 1, a threshold of %v would always fire", r.QErrorThreshold)
	}
	if r.MinImprovement < 0 {
		return fmt.Errorf("fleet: field recovery.min_improvement: must be non-negative, got %v", r.MinImprovement)
	}
	if r.CooldownS < 0 {
		return fmt.Errorf("fleet: field recovery.cooldown_s: must be non-negative, got %v", r.CooldownS)
	}
	if r.Budget < 0 {
		return fmt.Errorf("fleet: field recovery.budget: must be non-negative, got %d", r.Budget)
	}
	if r.Strategy != "" {
		if _, err := placement.ParseStrategy(r.Strategy); err != nil {
			return fmt.Errorf("fleet: field recovery.strategy: %w", err)
		}
	}
	if _, err := placement.ParseObjective(r.Objective); err != nil {
		return fmt.Errorf("fleet: field recovery.objective: %w", err)
	}
	a := sc.Assertions
	if a.MaxMigrations != nil && *a.MaxMigrations < 0 {
		return fmt.Errorf("fleet: field assertions.max_migrations: must be non-negative, got %d", *a.MaxMigrations)
	}
	if a.MinMigrations != nil && *a.MinMigrations < 0 {
		return fmt.Errorf("fleet: field assertions.min_migrations: must be non-negative, got %d", *a.MinMigrations)
	}
	if a.MaxMigrations != nil && a.MinMigrations != nil && *a.MaxMigrations < *a.MinMigrations {
		return fmt.Errorf("fleet: field assertions.max_migrations: %d is below min_migrations %d", *a.MaxMigrations, *a.MinMigrations)
	}
	if a.MaxQError != 0 && a.MaxQError < 1 {
		return fmt.Errorf("fleet: field assertions.max_qerror: q-errors are >= 1, got %v", a.MaxQError)
	}
	return nil
}

func (e *Event) validate(zones map[string]bool) error {
	if e.AtS < 0 {
		return fmt.Errorf(".at_s: must be non-negative, got %v", e.AtS)
	}
	if e.Zone != "" && !zones[e.Zone] {
		return fmt.Errorf(".zone: unknown zone %q", e.Zone)
	}
	switch e.Type {
	case EventHostCrash, EventHostRecover:
		if len(e.Hosts) == 0 && e.Count <= 0 {
			return fmt.Errorf(".count: %s needs explicit hosts or a positive count", e.Type)
		}
		if len(e.Hosts) > 0 && e.Count > 0 {
			return fmt.Errorf(".count: explicit hosts and a count are mutually exclusive")
		}
	case EventZoneOutage, EventZoneRecover:
		if e.Zone == "" {
			return fmt.Errorf(".zone: %s needs a zone", e.Type)
		}
	case EventLinkDegrade:
		if e.Factor < 1 {
			return fmt.Errorf(".factor: link-degrade needs a factor >= 1, got %v", e.Factor)
		}
	case EventLinkRecover:
		// No parameters beyond the optional zone scope.
	case EventLoadSpike:
		if e.Factor <= 0 {
			return fmt.Errorf(".factor: load-spike needs a positive rate factor, got %v", e.Factor)
		}
	case "":
		return fmt.Errorf(".type: must be set")
	default:
		return fmt.Errorf(".type: unknown event type %q", e.Type)
	}
	return nil
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// sortedEvents returns the event script stably ordered by at_s (stable:
// same-time events keep file order).
func (sc *Scenario) sortedEvents() []Event {
	evs := append([]Event(nil), sc.Events...)
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].AtS < evs[b].AtS })
	return evs
}

package fleet

import (
	"fmt"
	"math/rand"
	"sort"

	"costream/internal/hardware"
	"costream/internal/sim"
)

// hostState is one fleet host plus its mutable failure state.
type hostState struct {
	host hardware.Host // pristine features, never mutated
	zone int           // index into Fleet.zones
	// alive is flipped by crash/outage/recovery events.
	alive bool
	// degrade >= 1 multiplies the host's outgoing latency and divides
	// its bandwidth (tc-netem style link degradation).
	degrade float64
}

// Fleet is the instantiated host fleet with per-host failure state.
// Placements held by the runner are indexed in stable fleet host order;
// the placement engine and the simulator only ever see a view of the
// alive hosts.
type Fleet struct {
	zones []string
	hosts []hostState
	byID  map[string]int
}

// buildFleet samples the declared fleet: zone by zone, each host drawn
// from a weighted template choice, with IDs "<zone>/host-<i>". All
// randomness comes from rng, so the fleet is a pure function of the
// scenario seed.
func buildFleet(spec FleetSpec, rng *rand.Rand) (*Fleet, error) {
	grids := make([]hardware.Grid, len(spec.Templates))
	weights := make([]float64, len(spec.Templates))
	for i := range spec.Templates {
		g, err := spec.Templates[i].grid()
		if err != nil {
			return nil, fmt.Errorf("fleet: template %q: %w", spec.Templates[i].Name, err)
		}
		grids[i] = g
		weights[i] = spec.Templates[i].Weight
		if weights[i] == 0 {
			weights[i] = 1
		}
	}
	f := &Fleet{byID: map[string]int{}}
	for zi, z := range spec.Zones {
		f.zones = append(f.zones, z.Name)
		var pool []int // template indices eligible in this zone
		total := 0.0
		for ti := range spec.Templates {
			if len(z.Templates) == 0 || contains(z.Templates, spec.Templates[ti].Name) {
				pool = append(pool, ti)
				total += weights[ti]
			}
		}
		for i := 0; i < z.Hosts; i++ {
			pick := pool[len(pool)-1]
			r := rng.Float64() * total
			for _, ti := range pool {
				if r -= weights[ti]; r < 0 {
					pick = ti
					break
				}
			}
			id := fmt.Sprintf("%s/host-%03d", z.Name, i)
			h := grids[pick].Sample(rng, id)
			f.byID[id] = len(f.hosts)
			f.hosts = append(f.hosts, hostState{host: *h, zone: zi, alive: true, degrade: 1})
		}
	}
	return f, nil
}

// NumHosts returns the fleet size (alive or not).
func (f *Fleet) NumHosts() int { return len(f.hosts) }

// aliveCount returns the number of alive hosts.
func (f *Fleet) aliveCount() int {
	n := 0
	for i := range f.hosts {
		if f.hosts[i].alive {
			n++
		}
	}
	return n
}

// hostID returns the ID of fleet host fi.
func (f *Fleet) hostID(fi int) string { return f.hosts[fi].host.ID }

// view is the cluster the placement engine and the simulator see: the
// alive hosts in fleet order, with link degradation applied to their
// features, plus the index mappings between view and fleet space.
type view struct {
	cluster   *hardware.Cluster
	toFleet   []int // view host index -> fleet host index
	fromFleet []int // fleet host index -> view host index, -1 when dead
}

// view materializes the current alive-host cluster.
func (f *Fleet) view() *view {
	v := &view{
		cluster:   &hardware.Cluster{},
		fromFleet: make([]int, len(f.hosts)),
	}
	for i := range f.hosts {
		hs := &f.hosts[i]
		if !hs.alive {
			v.fromFleet[i] = -1
			continue
		}
		h := hs.host // copy
		if hs.degrade > 1 {
			h.NetLatencyMS *= hs.degrade
			h.NetBandwidthMbps /= hs.degrade
		}
		v.fromFleet[i] = len(v.cluster.Hosts)
		v.cluster.Hosts = append(v.cluster.Hosts, &h)
		v.toFleet = append(v.toFleet, i)
	}
	return v
}

// mapToView translates a fleet-indexed placement into view indices; ok
// is false when any host is dead (the placement cannot run).
func (v *view) mapToView(p []int) (sim.Placement, bool) {
	out := make(sim.Placement, len(p))
	ok := true
	for i, fi := range p {
		vi := v.fromFleet[fi]
		if vi < 0 {
			ok = false
		}
		out[i] = vi
	}
	return out, ok
}

// mapToFleet translates a view-indexed placement back to stable fleet
// indices.
func (v *view) mapToFleet(p sim.Placement) []int {
	out := make([]int, len(p))
	for i, vi := range p {
		out[i] = v.toFleet[vi]
	}
	return out
}

// hostIDs renders a fleet-indexed placement as host IDs.
func (f *Fleet) hostIDs(p []int) []string {
	out := make([]string, len(p))
	for i, fi := range p {
		out[i] = f.hostID(fi)
	}
	return out
}

// deadHosts returns the IDs of dead hosts referenced by a fleet-indexed
// placement, deduplicated, in placement order.
func (f *Fleet) deadHosts(p []int) []string {
	var out []string
	seen := map[int]bool{}
	for _, fi := range p {
		if !f.hosts[fi].alive && !seen[fi] {
			seen[fi] = true
			out = append(out, f.hostID(fi))
		}
	}
	return out
}

// apply mutates the fleet per one event and returns the affected host
// IDs, sorted. Load spikes do not touch the fleet (the runner scales the
// query rates) and return nil.
func (f *Fleet) apply(ev Event, rng *rand.Rand) ([]string, error) {
	switch ev.Type {
	case EventHostCrash:
		return f.setAlive(ev, rng, false)
	case EventHostRecover:
		return f.setAlive(ev, rng, true)
	case EventZoneOutage:
		return f.zoneAlive(ev.Zone, false), nil
	case EventZoneRecover:
		return f.zoneAlive(ev.Zone, true), nil
	case EventLinkDegrade:
		return f.degradeLinks(ev.Zone, ev.Factor), nil
	case EventLinkRecover:
		return f.recoverLinks(ev.Zone), nil
	case EventLoadSpike:
		return nil, nil
	}
	return nil, fmt.Errorf("fleet: unhandled event type %q", ev.Type)
}

// setAlive flips the aliveness of the event's targets: explicit host IDs
// or Count random eligible hosts (scoped to the event's zone when set).
// Random targets are drawn with rng, so they are seed-deterministic.
func (f *Fleet) setAlive(ev Event, rng *rand.Rand, alive bool) ([]string, error) {
	var targets []int
	if len(ev.Hosts) > 0 {
		for _, id := range ev.Hosts {
			fi, ok := f.byID[id]
			if !ok {
				return nil, fmt.Errorf("fleet: %s targets unknown host %q", ev.Type, id)
			}
			targets = append(targets, fi)
		}
	} else {
		var eligible []int
		for i := range f.hosts {
			if f.hosts[i].alive != alive && (ev.Zone == "" || f.zones[f.hosts[i].zone] == ev.Zone) {
				eligible = append(eligible, i)
			}
		}
		count := ev.Count
		if count > len(eligible) {
			count = len(eligible)
		}
		for _, k := range rng.Perm(len(eligible))[:count] {
			targets = append(targets, eligible[k])
		}
		sort.Ints(targets)
	}
	var ids []string
	for _, fi := range targets {
		f.hosts[fi].alive = alive
		ids = append(ids, f.hostID(fi))
	}
	sort.Strings(ids)
	return ids, nil
}

// zoneAlive sets the aliveness of every host in the zone that is not
// already in the target state.
func (f *Fleet) zoneAlive(zone string, alive bool) []string {
	var ids []string
	for i := range f.hosts {
		if f.zones[f.hosts[i].zone] == zone && f.hosts[i].alive != alive {
			f.hosts[i].alive = alive
			ids = append(ids, f.hostID(i))
		}
	}
	return ids
}

// degradeLinks multiplies the degradation factor of every host in scope
// (one zone, or the whole fleet when zone is empty).
func (f *Fleet) degradeLinks(zone string, factor float64) []string {
	var ids []string
	for i := range f.hosts {
		if zone == "" || f.zones[f.hosts[i].zone] == zone {
			f.hosts[i].degrade *= factor
			ids = append(ids, f.hostID(i))
		}
	}
	return ids
}

// recoverLinks resets the degradation factor of every host in scope.
func (f *Fleet) recoverLinks(zone string) []string {
	var ids []string
	for i := range f.hosts {
		if (zone == "" || f.zones[f.hosts[i].zone] == zone) && f.hosts[i].degrade != 1 {
			f.hosts[i].degrade = 1
			ids = append(ids, f.hostID(i))
		}
	}
	return ids
}

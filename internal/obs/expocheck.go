package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks that data is well-formed Prometheus text
// exposition format (version 0.0.4): every sample line parses, every
// sample's family has a preceding # TYPE line it conforms to, no series
// appears twice, and histograms are internally consistent (bucket
// counts cumulative and non-decreasing in le, a +Inf bucket present and
// equal to _count). It exists so the /metrics endpoint and the CI smoke
// can assert scrapeability without a Prometheus dependency.
func ValidateExposition(data []byte) error {
	types := map[string]string{}
	seen := map[string]bool{}
	type bucketPoint struct {
		le  float64
		cum int64
	}
	// histogram series key (name + labels sans le) -> observed buckets.
	buckets := map[string][]bucketPoint{}
	counts := map[string]int64{}

	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				name := fields[2]
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				types[name] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		serKey := name + labels
		if seen[serKey] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, serKey)
		}
		seen[serKey] = true

		base, sub := name, ""
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := types[strings.TrimSuffix(name, suffix)]; ok && t == "histogram" && strings.HasSuffix(name, suffix) {
				base, sub = strings.TrimSuffix(name, suffix), suffix
				break
			}
		}
		typ, ok := types[base]
		if !ok {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		switch typ {
		case "histogram":
			if sub == "" {
				return fmt.Errorf("line %d: histogram %s exposes bare sample %s", lineNo, base, name)
			}
			key := base + stripLE(labels)
			switch sub {
			case "_bucket":
				le, lerr := leValue(labels)
				if lerr != nil {
					return fmt.Errorf("line %d: %v", lineNo, lerr)
				}
				buckets[key] = append(buckets[key], bucketPoint{le: le, cum: int64(value)})
			case "_count":
				counts[key] = int64(value)
			}
		case "counter":
			if value < 0 {
				return fmt.Errorf("line %d: counter %s is negative (%g)", lineNo, name, value)
			}
		}
	}

	for key, pts := range buckets {
		sort.Slice(pts, func(i, j int) bool { return pts[i].le < pts[j].le })
		last := pts[len(pts)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("histogram %s: no +Inf bucket", key)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].cum < pts[i-1].cum {
				return fmt.Errorf("histogram %s: bucket counts not cumulative at le=%g", key, pts[i].le)
			}
		}
		cnt, ok := counts[key]
		if !ok {
			return fmt.Errorf("histogram %s: missing _count", key)
		}
		if cnt != last.cum {
			return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", key, cnt, last.cum)
		}
	}
	return nil
}

// parseSample splits a sample line into metric name, rendered label
// block (or "") and value. Timestamps are not produced by this package
// and are rejected.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", "", 0, fmt.Errorf("unterminated label block in %q", line)
		}
		labels = rest[:end+1]
		if err := checkLabels(labels); err != nil {
			return "", "", 0, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	if strings.ContainsAny(rest, " \t") {
		return "", "", 0, fmt.Errorf("unexpected timestamp or trailing data in %q", line)
	}
	v, perr := strconv.ParseFloat(rest, 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q", rest)
	}
	return name, labels, v, nil
}

// checkLabels validates a rendered `{k="v",...}` block.
func checkLabels(block string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return nil
	}
	for _, pair := range splitLabelPairs(inner) {
		eq := strings.Index(pair, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		if !validName(pair[:eq]) {
			return fmt.Errorf("invalid label name %q", pair[:eq])
		}
		v := pair[eq+1:]
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted label value in %q", pair)
		}
	}
	return nil
}

// splitLabelPairs splits `k="v",k2="v2"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// stripLE removes the le label from a rendered label block, yielding the
// histogram series key shared by its _bucket/_sum/_count samples.
func stripLE(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, pair := range splitLabelPairs(inner) {
		if !strings.HasPrefix(pair, "le=") {
			kept = append(kept, pair)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// leValue extracts the le bound from a bucket label block.
func leValue(labels string) (float64, error) {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	for _, pair := range splitLabelPairs(inner) {
		if strings.HasPrefix(pair, `le="`) {
			v := strings.TrimSuffix(strings.TrimPrefix(pair, `le="`), `"`)
			if v == "+Inf" {
				return math.Inf(1), nil
			}
			return strconv.ParseFloat(v, 64)
		}
	}
	return 0, fmt.Errorf("bucket sample without le label: %s", labels)
}

// Package obs is the repo's zero-dependency observability core: a named
// metrics registry (atomic counters, float gauges, log-bucketed
// histograms with sharded, allocation-free hot-path recording),
// Prometheus text-format exposition, lightweight pipeline spans with
// request-scoped trace IDs, structured logging helpers, a JSONL run-log
// writer for training telemetry, and a shared pprof listener.
//
// The paper's premise is that predicted costs must track observed costs;
// this package is where "observed" comes from in production. Every layer
// records into a Registry — the serving HTTP layer, the placement search
// engine, the online monitor and the training loop — and one
// GET /metrics endpoint (Registry.Handler) exposes the lot.
//
// Design constraints, in order:
//
//  1. Near-free on hot paths. Counter.Inc and Histogram.Record are a
//     handful of atomic operations with zero allocations (test-enforced),
//     so instrumentation can live inside inference and search loops.
//  2. No dependencies. Exposition is hand-rolled Prometheus text format,
//     validated by ValidateExposition.
//  3. Get-or-create registration. Components ask for their instruments by
//     (name, labels) and share them naturally; tests isolate with
//     NewRegistry, binaries use the process-wide Default registry.
package obs

import (
	"fmt"
	"sync"
)

// defaultRegistry is the process-wide registry behind Default.
var (
	defaultOnce     sync.Once
	defaultRegistry *Registry
)

// Default returns the process-wide registry. Library code (the placement
// search engine, the training loop, the online monitor) records here;
// the serving layer exposes it on /metrics. Tests that assert on exact
// values should use NewRegistry instead — Default accumulates for the
// process lifetime.
func Default() *Registry {
	defaultOnce.Do(func() { defaultRegistry = NewRegistry() })
	return defaultRegistry
}

// validName reports whether s is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally may not contain
// ':', but we keep one rule — none of our names use colons).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func mustValidName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

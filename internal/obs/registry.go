package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must not be negative (counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instrument inside a family. Exactly one of the
// value sources is used, matching the family kind; fn, when non-nil,
// overrides the stored value at scrape time (CounterFunc / GaugeFunc).
type series struct {
	labels string // rendered {k="v",...}, or ""
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     atomic.Pointer[func() float64]
}

// family groups every series sharing one metric name.
type family struct {
	name string
	help string
	kind kind

	mu     sync.Mutex
	series map[string]*series
}

// Registry is a named collection of metric families. All methods are
// safe for concurrent use; instrument lookups are get-or-create, so
// independent components asking for the same (name, labels) share one
// instrument.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels turns alternating key-value pairs into a canonical
// `{k="v",...}` string (Prometheus escaping for values). It panics on an
// odd pair count or an invalid label name — instrument registration is
// programmer-controlled, so these are bugs, not runtime conditions.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label key-value list %q", kv))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if !validName(kv[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", kv[i]))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		v := kv[i+1]
		for j := 0; j < len(v); j++ {
			switch v[j] {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteByte(v[j])
			}
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// getFamily returns the family for name, creating it with the given kind
// and help on first use. Asking for an existing name with a different
// kind panics: one name means one metric type.
func (r *Registry) getFamily(name, help string, k kind) *family {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, k))
	}
	return f
}

func (f *family) getSeries(labels string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[labels]
	if !ok {
		s = &series{labels: labels}
		switch f.kind {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		}
		f.series[labels] = s
	}
	return s
}

// Counter returns the counter named name with the given constant labels
// (alternating key, value), creating it on first use.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	return r.getFamily(name, help, kindCounter).getSeries(renderLabels(kv)).ctr
}

// Gauge returns the gauge named name with the given constant labels,
// creating it on first use.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	return r.getFamily(name, help, kindGauge).getSeries(renderLabels(kv)).gauge
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for sources that already keep their own monotonic counters
// (cache hit counts, inference path stats). Re-registering the same
// (name, labels) replaces the callback, so short-lived owners (e.g. a
// rebuilt server sharing the default registry) always expose the live
// instance.
func (r *Registry) CounterFunc(name, help string, fn func() float64, kv ...string) {
	s := r.getFamily(name, help, kindCounter).getSeries(renderLabels(kv))
	s.fn.Store(&fn)
}

// GaugeFunc registers a gauge read from fn at scrape time; like
// CounterFunc, re-registration replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	s := r.getFamily(name, help, kindGauge).getSeries(renderLabels(kv))
	s.fn.Store(&fn)
}

// Histogram returns the histogram named name with the given constant
// labels, creating it on first use. Values are recorded as int64 in
// whatever unit the caller chooses; scale is the factor applied at
// exposition time to convert recorded units into the exposed base unit
// (e.g. record nanoseconds into a *_seconds histogram with scale 1e-9).
// The scale of an existing histogram is not changed by later calls.
func (r *Registry) Histogram(name, help string, scale float64, kv ...string) *Histogram {
	f := r.getFamily(name, help, kindHistogram)
	s := f.getSeries(renderLabels(kv))
	f.mu.Lock()
	if s.hist == nil {
		s.hist = newHistogram(scale)
	}
	h := s.hist
	f.mu.Unlock()
	return h
}

// value returns the series' scalar value for exposition (counter and
// gauge kinds).
func (s *series) value(k kind) float64 {
	if fp := s.fn.Load(); fp != nil {
		return (*fp)()
	}
	if k == kindCounter {
		return float64(s.ctr.Value())
	}
	return s.gauge.Value()
}

// formatValue renders a sample value the way Prometheus expects:
// integers without exponent, everything else shortest-form float.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every family in the text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// string, histograms as cumulative _bucket/_sum/_count triples with
// power-of-two le bounds (empty buckets are elided; +Inf always
// present).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		sers := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			sers = append(sers, s)
		}
		f.mu.Unlock()
		sort.Slice(sers, func(i, j int) bool { return sers[i].labels < sers[j].labels })

		b.Reset()
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(f.help, "\n", " "))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range sers {
			if f.kind == kindHistogram {
				writeHistogram(&b, f.name, s)
				continue
			}
			b.WriteString(f.name)
			b.WriteString(s.labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value(f.kind)))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series as cumulative buckets plus
// sum and count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	snap := s.hist.Snapshot()
	scale := s.hist.scale
	// Label strings for sub-samples: splice le into existing labels.
	withLE := func(le string) string {
		if s.labels == "" {
			return `{le="` + le + `"}`
		}
		return s.labels[:len(s.labels)-1] + `,le="` + le + `"}`
	}
	cum := int64(0)
	for i := 0; i < histBuckets-1; i++ {
		if snap.Counts[i] == 0 {
			continue
		}
		cum += snap.Counts[i]
		le := formatValue(bucketUpper(i) * scale)
		b.WriteString(name)
		b.WriteString("_bucket")
		b.WriteString(withLE(le))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_bucket")
	b.WriteString(withLE("+Inf"))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(snap.Count, 10))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(s.labels)
	b.WriteByte(' ')
	b.WriteString(formatValue(float64(snap.Sum) * scale))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(s.labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(snap.Count, 10))
	b.WriteByte('\n')
}

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format — mount it on GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

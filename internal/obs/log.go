package obs

import (
	"io"
	"log/slog"
	"os"
)

// NewLogger returns a structured text logger tagged with the component
// name, at the given level, writing to w (nil selects stderr). The
// binaries build one per process and hand it to their serving/training
// layers; libraries accept a *slog.Logger rather than calling this, so
// tests can pass a silent logger.
func NewLogger(component string, level slog.Level, w io.Writer) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With("component", component)
}

package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: bucket i holds values v with
// bits.Len64(v) == i, i.e. v in (2^(i-1)-1, 2^i-1] — log2-spaced bounds
// computed with one bit-length instruction, no search and no float math
// on the record path. Bucket 0 holds exactly zero (negatives clamp to
// it); the 64 finite buckets cover the full non-negative int64 range
// (nanosecond latencies up to ~292 years), so nothing ever overflows
// past the last bucket, which exposition labels le="+Inf".
const (
	histBuckets = 65 // bits.Len64 yields 0..64
	histShards  = 8
)

// histShard is one shard of a histogram's counters. Shards are recorded
// into independently and summed at snapshot time, so concurrent
// recorders on different Ps rarely contend on the same cache lines.
type histShard struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
}

// Histogram is a log2-bucketed histogram engineered for hot paths:
// Record is a shard checkout plus two atomic adds — no locks, no
// allocations (test-enforced), no time lookups. Aggregation (Snapshot,
// quantiles, exposition) walks all shards and is the slow path.
type Histogram struct {
	scale  float64 // exposition multiplier (recorded unit -> base unit)
	shards [histShards]histShard
	next   atomic.Uint32
	pool   sync.Pool
}

func newHistogram(scale float64) *Histogram {
	if scale == 0 {
		scale = 1
	}
	h := &Histogram{scale: scale}
	// The pool hands out pointers into the fixed shard array,
	// round-robin on first issue and per-P cached afterwards: recording
	// goroutines on the same P reuse the same shard without contention,
	// and Get/Put never allocate (pointer-shaped values fit an interface
	// word).
	h.pool.New = func() any {
		return &h.shards[(h.next.Add(1)-1)%histShards]
	}
	return h
}

// bucketIndex maps a recorded value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	return bits.Len64(uint64(v))
}

// bucketUpper is the inclusive upper bound of finite bucket i in
// recorded units.
func bucketUpper(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.Inf(1)
	}
	return float64((uint64(1) << i) - 1)
}

// Record adds one observation. Negative values clamp to zero. Safe for
// any number of concurrent recorders; zero allocations.
func (h *Histogram) Record(v int64) {
	sh := h.pool.Get().(*histShard)
	sh.counts[bucketIndex(v)].Add(1)
	if v > 0 {
		sh.sum.Add(v)
	}
	h.pool.Put(sh)
}

// Since records the elapsed time from start until now, in nanoseconds.
func (h *Histogram) Since(start time.Time) {
	h.Record(int64(time.Since(start)))
}

// HistSnapshot is a point-in-time aggregation of a histogram.
type HistSnapshot struct {
	Counts [histBuckets]int64
	Sum    int64
	Count  int64
}

// Snapshot sums all shards. Concurrent Records may or may not be
// included; the result is internally consistent enough for monitoring
// (each bucket count is exact at some instant during the call).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < histBuckets; b++ {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.Sum += sh.sum.Load()
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.Snapshot().Count }

// Quantile estimates the q-quantile (0 <= q <= 1) in recorded units by
// linear interpolation inside the target log2 bucket. With power-of-two
// bounds the estimate is within a factor of two of the true value, which
// is what bucketed latency monitoring can promise.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := 0.0
			if i > 0 {
				lo = bucketUpper(i-1) + 1
			}
			hi := bucketUpper(i)
			if math.IsInf(hi, 1) {
				return lo
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return bucketUpper(histBuckets - 1)
}

// Mean returns the mean observation in recorded units.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

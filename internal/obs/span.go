package obs

import (
	"strings"
	"sync/atomic"
	"time"
)

// spanSeed decorrelates trace IDs across process restarts; spanCtr makes
// them unique within a process. Neither is cryptographic — trace IDs are
// correlation handles, not secrets.
var (
	spanSeed = uint64(time.Now().UnixNano()) * 0x9E3779B97F4A7C15
	spanCtr  atomic.Uint64
)

// Stage is one timed segment of a span.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Span is a lightweight request-scoped trace: a generated trace ID, a
// start time, and an ordered list of named stage timings. It models one
// pipeline pass (decode -> cache -> predict -> encode, or one search
// run) rather than a distributed trace tree; stages are appended by the
// single goroutine driving the request.
type Span struct {
	id     uint64
	name   string
	start  time.Time
	mark   time.Time
	total  time.Duration
	stages []Stage
}

// StartSpan begins a span named name with a fresh trace ID.
func StartSpan(name string) *Span {
	now := time.Now()
	n := spanCtr.Add(1)
	id := (spanSeed + n) * 0xBF58476D1CE4E5B9 // splitmix64-style mix
	id ^= id >> 31
	return &Span{id: id, name: name, start: now, mark: now}
}

// ID returns the span's trace ID as 16 hex digits.
func (s *Span) ID() string {
	var b [16]byte
	const hexdigits = "0123456789abcdef"
	v := s.id
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Name returns the span name.
func (s *Span) Name() string { return s.name }

// Stage closes the current stage as name, returning its duration. The
// next stage starts immediately.
func (s *Span) Stage(name string) time.Duration {
	now := time.Now()
	d := now.Sub(s.mark)
	s.mark = now
	s.stages = append(s.stages, Stage{Name: name, Dur: d})
	return d
}

// End finishes the span and returns its total duration. Time between
// the last Stage call and End is not attributed to any stage.
func (s *Span) End() time.Duration {
	s.total = time.Since(s.start)
	return s.total
}

// Total returns the duration recorded by End (zero before End).
func (s *Span) Total() time.Duration { return s.total }

// Stages returns the recorded stages in order. The slice is owned by
// the span; callers must not mutate it.
func (s *Span) Stages() []Stage { return s.stages }

// String renders "name id=... total stage=dur ..." for logs and debug
// output.
func (s *Span) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteString(" id=")
	b.WriteString(s.ID())
	if s.total > 0 {
		b.WriteString(" total=")
		b.WriteString(s.total.String())
	}
	for _, st := range s.stages {
		b.WriteByte(' ')
		b.WriteString(st.Name)
		b.WriteByte('=')
		b.WriteString(st.Dur.String())
	}
	return b.String()
}

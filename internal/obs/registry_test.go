package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests", "route", "predict")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create: same (name, labels) returns the same instrument.
	if again := r.Counter("test_requests_total", "", "route", "predict"); again != c {
		t.Fatal("same name+labels returned a different counter")
	}
	if other := r.Counter("test_requests_total", "", "route", "optimize"); other == c {
		t.Fatal("different labels returned the same counter")
	}

	g := r.Gauge("test_inflight", "in-flight work")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestFuncMetricsReplaceOnReregister(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_cache_entries", "", func() float64 { return 1 })
	r.GaugeFunc("test_cache_entries", "", func() float64 { return 42 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test_cache_entries 42") {
		t.Fatalf("re-registered GaugeFunc not live:\n%s", buf.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic registering one name as two kinds")
		}
	}()
	r.Gauge("test_x_total", "")
}

func TestExpositionIsValidPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "total requests", "route", "predict").Add(7)
	r.Counter("test_requests_total", "total requests", "route", "optimize").Add(2)
	r.Gauge("test_inflight", "current in-flight").Set(1)
	r.GaugeFunc("test_capacity", "configured capacity", func() float64 { return 4096 })
	h := r.Histogram("test_latency_seconds", "request latency", 1e-9, "route", "predict")
	for _, v := range []int64{0, 1, 999, 1023, 1024, 1 << 20, 1 << 30} {
		h.Record(v)
	}
	// A labeled value with characters needing escapes.
	r.Counter("test_escapes_total", "", "msg", "a\"b\\c\nd").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		`test_requests_total{route="predict"} 7`,
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{route="predict",le="+Inf"} 7`,
		`test_latency_seconds_count{route="predict"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
}

func TestValidateExpositionCatchesBadOutput(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "test_a_total 1\n",
		"dup series":       "# TYPE test_a_total counter\ntest_a_total 1\ntest_a_total 2\n",
		"bad value":        "# TYPE test_a_total counter\ntest_a_total one\n",
		"no inf bucket":    "# TYPE test_h histogram\ntest_h_bucket{le=\"1\"} 1\ntest_h_sum 1\ntest_h_count 1\n",
		"non-cumulative":   "# TYPE test_h histogram\ntest_h_bucket{le=\"1\"} 5\ntest_h_bucket{le=\"2\"} 3\ntest_h_bucket{le=\"+Inf\"} 5\ntest_h_sum 1\ntest_h_count 5\n",
		"count mismatch":   "# TYPE test_h histogram\ntest_h_bucket{le=\"+Inf\"} 5\ntest_h_sum 1\ntest_h_count 4\n",
		"negative counter": "# TYPE test_a_total counter\ntest_a_total -1\n",
	}
	for name, data := range cases {
		if err := ValidateExposition([]byte(data)); err == nil {
			t.Errorf("%s: invalid exposition accepted:\n%s", name, data)
		}
	}
}

// TestRegistryConcurrentScrape hammers instruments from many goroutines
// while scraping; it is the registry's data-race check (runs under
// -race in CI).
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("test_races_total", "", "worker", string(rune('a'+g)))
			h := r.Histogram("test_race_seconds", "", 1e-9)
			ga := r.Gauge("test_race_gauge", "")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Record(int64(i % (1 << 20)))
				ga.Set(float64(i))
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if err := ValidateExposition(buf.Bytes()); err != nil {
			t.Fatalf("scrape %d invalid under concurrency: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestCounterZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hot_total", "")
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Fatalf("Counter.Inc allocates %.1f/op, want 0", allocs)
	}
}

package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSpanStagesAndID(t *testing.T) {
	sp := StartSpan("predict")
	if len(sp.ID()) != 16 {
		t.Fatalf("trace ID %q, want 16 hex digits", sp.ID())
	}
	sp.Stage("decode")
	time.Sleep(2 * time.Millisecond)
	d := sp.Stage("infer")
	if d < 2*time.Millisecond {
		t.Fatalf("infer stage %v, want >= 2ms", d)
	}
	total := sp.End()
	if total < d {
		t.Fatalf("total %v < stage %v", total, d)
	}
	st := sp.Stages()
	if len(st) != 2 || st[0].Name != "decode" || st[1].Name != "infer" {
		t.Fatalf("stages = %+v", st)
	}
	str := sp.String()
	for _, want := range []string{"predict", "id=", "decode=", "infer=", "total="} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestSpanIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := StartSpan("x").ID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}

func TestRunLogAppendsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := OpenRunLog(path)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Epoch int     `json:"epoch"`
		Loss  float64 `json:"loss"`
	}
	if err := l.Write(rec{Epoch: 0, Loss: 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := l.Write(rec{Epoch: 1, Loss: 0.7}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-open appends rather than truncating.
	l2, err := OpenRunLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Write(rec{Epoch: 2, Loss: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), data)
	}
	for i, line := range lines {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if r.Epoch != i {
			t.Fatalf("line %d epoch = %d", i, r.Epoch)
		}
	}
}

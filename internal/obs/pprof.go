package obs

import (
	"net/http"
	"net/http/pprof"
)

// StartPprof serves net/http/pprof on addr in a background goroutine,
// on a private mux so the profiling endpoints never share a public
// listener. An empty addr is a no-op. logf (may be nil) receives the
// listen notice and any listener error — profiling is best-effort, so
// failures never abort the host process. Shared by costream-serve,
// costream-train and costream-optimize behind their -pprof-addr flags.
func StartPprof(addr string, logf func(format string, args ...any)) {
	if addr == "" {
		return
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		logf("pprof listening on %s (keep it private)", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			logf("pprof listener: %v", err)
		}
	}()
}

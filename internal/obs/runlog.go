package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// RunLog is an append-only JSONL telemetry sink: one JSON object per
// line, flushed on Close. Training emits per-epoch records here
// (costream-train -runlog); anything JSON-marshalable can ride along.
// Write is safe for concurrent use — ensemble members train in parallel
// and log through one RunLog.
type RunLog struct {
	mu  sync.Mutex
	f   *os.File
	bw  *bufio.Writer
	enc *json.Encoder
}

// OpenRunLog opens path for appending, creating it if needed.
func OpenRunLog(path string) (*RunLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening run log: %w", err)
	}
	bw := bufio.NewWriter(f)
	return &RunLog{f: f, bw: bw, enc: json.NewEncoder(bw)}, nil
}

// Write appends one record as a JSON line.
func (l *RunLog) Write(rec any) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.enc.Encode(rec)
}

// Close flushes and closes the underlying file.
func (l *RunLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.bw.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

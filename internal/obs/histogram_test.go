package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramCountsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h", "", 1)
	vals := []int64{0, 1, 2, 3, 100, 1000, -5, 1 << 40}
	var wantSum int64
	for _, v := range vals {
		h.Record(v)
		if v > 0 {
			wantSum += v
		}
	}
	s := h.Snapshot()
	if s.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	// 0 and the clamped -5 land in bucket 0; 1 in bucket 1; 2,3 in bucket 2.
	if s.Counts[0] != 2 || s.Counts[1] != 1 || s.Counts[2] != 2 {
		t.Fatalf("low buckets = %v", s.Counts[:3])
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q", "", 1)
	// 1000 observations uniform on [0, 8191]: the median estimate must
	// land within its log2 bucket's factor-of-two guarantee.
	for i := int64(0); i < 1000; i++ {
		h.Record(i * 8191 / 999)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 2048 || p50 > 8191 {
		t.Fatalf("p50 = %g, want within a factor of two of 4096", p50)
	}
	p100 := s.Quantile(1)
	if p100 < 4096 || p100 > 8191 {
		t.Fatalf("p100 = %g, want in top bucket", p100)
	}
	if got := s.Quantile(0); got < 0 {
		t.Fatalf("p0 = %g", got)
	}
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

func TestBucketBounds(t *testing.T) {
	if bucketIndex(0) != 0 || bucketIndex(1) != 1 || bucketIndex(1023) != 10 || bucketIndex(1024) != 11 {
		t.Fatal("bucketIndex boundaries off")
	}
	if bucketUpper(10) != 1023 {
		t.Fatalf("bucketUpper(10) = %g", bucketUpper(10))
	}
	if !math.IsInf(bucketUpper(64), 1) {
		t.Fatal("bucketUpper(64) not +Inf")
	}
}

// TestHistogramRecordZeroAllocs pins the hot-path contract: recording
// into a histogram performs no heap allocations, so instrumentation may
// sit inside inference and search loops.
func TestHistogramRecordZeroAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hot_seconds", "", 1e-9)
	h.Record(1) // warm the shard pool
	if allocs := testing.AllocsPerRun(1000, func() { h.Record(12345) }); allocs != 0 {
		t.Fatalf("Histogram.Record allocates %.1f/op, want 0", allocs)
	}
	start := time.Now()
	if allocs := testing.AllocsPerRun(1000, func() { h.Since(start) }); allocs != 0 {
		t.Fatalf("Histogram.Since allocates %.1f/op, want 0", allocs)
	}
}

// TestHistogramConcurrentRecord checks shard aggregation: N goroutines
// recording concurrently lose nothing.
func TestHistogramConcurrentRecord(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc", "", 1)
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d (lost records under concurrency)", got, goroutines*perG)
	}
}

package artifact

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/sim"
	"costream/internal/workload"
)

// Shared tiny fixture: a small corpus and a full 5-metric, 2-member
// predictor trained once per test process.
var (
	fixOnce sync.Once
	fixErr  error
	fixCorp *dataset.Corpus
	fixPred *core.Predictor
)

func fixture(t *testing.T) (*dataset.Corpus, *core.Predictor) {
	t.Helper()
	fixOnce.Do(func() {
		simCfg := sim.DefaultConfig()
		simCfg.DurationS, simCfg.WarmupS = 30, 5
		fixCorp, fixErr = dataset.Build(dataset.BuildConfig{
			N: 120, Seed: 77, Gen: workload.DefaultConfig(77), Sim: simCfg,
		})
		if fixErr != nil {
			return
		}
		train, val, _ := fixCorp.Split(0.7, 0.1, 77)
		cfg := core.DefaultTrainConfig(77)
		cfg.Epochs, cfg.Patience, cfg.Hidden = 2, 0, 8
		fixPred, fixErr = core.TrainPredictor(train, val, core.PredictorConfig{
			Train: cfg, EnsembleSize: 2,
		})
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixCorp, fixPred
}

func testProvenance() Provenance {
	return Provenance{
		CreatedAt:    time.Date(2026, 7, 29, 12, 0, 0, 0, time.UTC),
		TrainSeed:    77,
		CorpusSize:   120,
		Epochs:       2,
		EnsembleSize: 2,
		Hidden:       8,
		Note:         "test fixture",
	}
}

// TestRoundTripBitIdentical is the core guarantee: Save -> Load produces
// a predictor whose per-placement and batched predictions are bit-equal
// to the in-memory original, across all five metrics and both ensemble
// members (any weight perturbation would shift the float64 outputs).
func TestRoundTripBitIdentical(t *testing.T) {
	corp, pred := fixture(t)
	for _, ext := range []string{"model.json", "model.json.gz"} {
		t.Run(ext, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), ext)
			if err := Save(path, pred, testProvenance()); err != nil {
				t.Fatal(err)
			}
			back, prov, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if prov != testProvenance() {
				t.Errorf("provenance changed: %+v", prov)
			}
			if st, err := os.Stat(path); err != nil || st.Mode().Perm() != 0o644 {
				t.Errorf("artifact mode %v (err %v), want 0644", st.Mode().Perm(), err)
			}
			for i, tr := range corp.Traces[:20] {
				want, err := pred.PredictPlacement(tr.Query, tr.Cluster, tr.Placement)
				if err != nil {
					t.Fatal(err)
				}
				got, err := back.PredictPlacement(tr.Query, tr.Cluster, tr.Placement)
				if err != nil {
					t.Fatal(err)
				}
				if want != got {
					t.Fatalf("trace %d: reloaded %+v != original %+v", i, got, want)
				}
			}
			// Batched predictions must agree too: batch several placements
			// of one trace's query drawn from other traces is not valid, so
			// batch the same placement thrice (exercises the batch path).
			tr := corp.Traces[0]
			cands := []sim.Placement{tr.Placement, tr.Placement, tr.Placement}
			want, err := pred.PredictBatch(tr.Query, tr.Cluster, cands)
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.PredictBatch(tr.Query, tr.Cluster, cands)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("batch %d: reloaded %+v != original %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestGzipOutputIsCompressed(t *testing.T) {
	_, pred := fixture(t)
	dir := t.TempDir()
	plain := filepath.Join(dir, "m.json")
	packed := filepath.Join(dir, "m.json.gz")
	if err := Save(plain, pred, testProvenance()); err != nil {
		t.Fatal(err)
	}
	if err := Save(packed, pred, testProvenance()); err != nil {
		t.Fatal(err)
	}
	sp, _ := os.Stat(plain)
	sg, _ := os.Stat(packed)
	if sg.Size() >= sp.Size() {
		t.Errorf("gzip artifact (%d bytes) not smaller than plain (%d bytes)", sg.Size(), sp.Size())
	}
	head, err := os.ReadFile(packed)
	if err != nil {
		t.Fatal(err)
	}
	if head[0] != 0x1f || head[1] != 0x8b {
		t.Error("gz path did not produce a gzip stream")
	}
}

func TestLoadErrors(t *testing.T) {
	_, pred := fixture(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json.gz")
	if err := Save(good, pred, testProvenance()); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("missing file", func(t *testing.T) {
		if _, _, err := Load(filepath.Join(dir, "nope.json")); err == nil {
			t.Error("missing file loaded")
		}
	})
	t.Run("truncated gzip", func(t *testing.T) {
		p := write("trunc.json.gz", goodBytes[:len(goodBytes)/2])
		if _, _, err := Load(p); err == nil {
			t.Error("truncated gzip loaded")
		}
	})
	t.Run("corrupt json", func(t *testing.T) {
		p := write("corrupt.json", []byte(`{"magic":"costream-model","version":1,"predictor":{`))
		if _, _, err := Load(p); err == nil {
			t.Error("corrupt JSON loaded")
		}
	})
	t.Run("wrong magic", func(t *testing.T) {
		p := write("magic.json", []byte(`{"magic":"not-a-model","version":1}`))
		_, _, err := Load(p)
		if err == nil || !strings.Contains(err.Error(), "not a costream model artifact") {
			t.Errorf("wrong-magic error = %v", err)
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		p := write("future.json", []byte(`{"magic":"costream-model","version":99,"predictor":{}}`))
		_, _, err := Load(p)
		if err == nil || !strings.Contains(err.Error(), "version 99") {
			t.Errorf("version-mismatch error = %v", err)
		}
	})
	t.Run("missing predictor", func(t *testing.T) {
		p := write("empty.json", []byte(`{"magic":"costream-model","version":1}`))
		if _, _, err := Load(p); err == nil {
			t.Error("artifact without predictor loaded")
		}
	})
	t.Run("corrupt weights", func(t *testing.T) {
		// Surgically corrupt a layer inside an otherwise valid artifact.
		zr, err := gzip.NewReader(bytes.NewReader(goodBytes))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(zr); err != nil {
			t.Fatal(err)
		}
		mangled := bytes.Replace(buf.Bytes(), []byte(`"w":[`), []byte(`"w":[1e9,`), 1)
		p := write("mangled.json", mangled)
		if _, _, err := Load(p); err == nil {
			t.Error("artifact with corrupted weight shapes loaded")
		}
	})
}

// TestLegacyFormatDetected covers the pre-artifact costream-train output:
// a bare gnn.Model JSON dump must be reported as ErrLegacyFormat, not as
// generic corruption.
func TestLegacyFormatDetected(t *testing.T) {
	_, pred := fixture(t)
	legacy, err := json.Marshal(pred.Throughput.Models[0].Net)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(p, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Load(p)
	if !errors.Is(err, ErrLegacyFormat) {
		t.Errorf("legacy file error = %v, want ErrLegacyFormat", err)
	}
}

func TestWriteNilPredictor(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil, Provenance{}, false); err == nil {
		t.Error("nil predictor written")
	}
}

// TestSaveAtomic checks that a failed save cannot clobber an existing
// artifact (Save writes a temp file and renames).
func TestSaveAtomic(t *testing.T) {
	_, pred := fixture(t)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := Save(path, pred, testProvenance()); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(path, nil, testProvenance()); err == nil {
		t.Fatal("nil predictor saved")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed save modified the existing artifact")
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp files left behind: %v", entries)
	}
}

// Package artifact defines the durable on-disk format for trained
// COSTREAM predictors. A model artifact is a single versioned JSON
// document (optionally gzip-compressed) holding every trained ensemble —
// up to 5 metrics x k members, each with its GNN weights and featurizer
// configuration — plus provenance metadata describing how it was trained.
//
// The format exists to make the paper's zero-shot workflow real: train
// once, save, and answer placement queries for unseen workloads and
// hardware from the saved file. Loading an artifact reconstructs a
// predictor whose PredictPlacement / PredictBatch outputs are
// bit-identical to the in-memory model that was saved (weights are
// float64 and encoding/json emits the shortest representation that
// round-trips exactly).
package artifact

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"costream/internal/core"
)

// Magic identifies a COSTREAM model artifact.
const Magic = "costream-model"

// Version is the current artifact format version. Readers reject other
// versions rather than guessing at layouts.
const Version = 1

// ErrLegacyFormat reports a pre-artifact model file: a bare gnn.Model
// JSON dump as written by old costream-train builds, which lacks the
// featurizer and metric state needed to reconstruct a predictor.
var ErrLegacyFormat = errors.New("artifact: legacy bare-network model file (no featurizer/metric state); re-train with costream-train to produce a full artifact")

// Provenance records how an artifact's predictor was trained.
type Provenance struct {
	CreatedAt    time.Time `json:"created_at"`
	TrainSeed    int64     `json:"train_seed,omitempty"`
	CorpusSize   int       `json:"corpus_size,omitempty"`
	Epochs       int       `json:"epochs,omitempty"`
	EnsembleSize int       `json:"ensemble_size,omitempty"`
	Hidden       int       `json:"hidden,omitempty"`
	Note         string    `json:"note,omitempty"`
}

// fileJSON is the top-level artifact document.
type fileJSON struct {
	Magic      string          `json:"magic"`
	Version    int             `json:"version"`
	Provenance Provenance      `json:"provenance"`
	Predictor  *core.Predictor `json:"predictor"`
}

// Write serializes the predictor and provenance to w, gzip-compressing
// when compress is set.
func Write(w io.Writer, pred *core.Predictor, prov Provenance, compress bool) error {
	if pred == nil {
		return fmt.Errorf("artifact: nil predictor")
	}
	out := w
	var zw *gzip.Writer
	if compress {
		zw = gzip.NewWriter(w)
		out = zw
	}
	enc := json.NewEncoder(out)
	if err := enc.Encode(fileJSON{
		Magic:      Magic,
		Version:    Version,
		Provenance: prov,
		Predictor:  pred,
	}); err != nil {
		return fmt.Errorf("artifact: encoding model: %w", err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return fmt.Errorf("artifact: compressing model: %w", err)
		}
	}
	return nil
}

// Read deserializes an artifact from r, transparently handling gzip
// (detected by its magic bytes). Legacy bare-network files are reported
// as ErrLegacyFormat; other malformed inputs return descriptive errors,
// never panics.
func Read(r io.Reader) (*core.Predictor, Provenance, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, Provenance{}, fmt.Errorf("artifact: reading model: %w", err)
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, Provenance{}, fmt.Errorf("artifact: opening gzip stream: %w", err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, Provenance{}, fmt.Errorf("artifact: decompressing model: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, Provenance{}, fmt.Errorf("artifact: decompressing model: %w", err)
		}
	}

	// Check the header before touching the predictor payload, so version
	// mismatches surface as such instead of as decode errors against a
	// future layout.
	var hdr struct {
		Magic   string `json:"magic"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(data, &hdr); err != nil {
		return nil, Provenance{}, fmt.Errorf("artifact: not a costream model artifact: %w", err)
	}
	if hdr.Magic != Magic {
		if looksLegacy(data) {
			return nil, Provenance{}, ErrLegacyFormat
		}
		return nil, Provenance{}, fmt.Errorf("artifact: not a costream model artifact (magic %q, want %q)", hdr.Magic, Magic)
	}
	if hdr.Version != Version {
		return nil, Provenance{}, fmt.Errorf("artifact: unsupported format version %d (this build reads version %d)", hdr.Version, Version)
	}
	var f fileJSON
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, Provenance{}, fmt.Errorf("artifact: decoding model: %w", err)
	}
	if f.Predictor == nil {
		return nil, Provenance{}, fmt.Errorf("artifact: model artifact has no predictor payload")
	}
	return f.Predictor, f.Provenance, nil
}

// looksLegacy reports whether data appears to be a bare gnn.Model dump
// (the pre-artifact costream-train output).
func looksLegacy(data []byte) bool {
	var probe struct {
		Encoders json.RawMessage `json:"encoders"`
		Out      json.RawMessage `json:"out"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.Encoders != nil && probe.Out != nil
}

// Save writes the artifact to path atomically (temp file + rename).
// Paths ending in ".gz" are gzip-compressed.
func Save(path string, pred *core.Predictor, prov Provenance) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".costream-artifact-*")
	if err != nil {
		return fmt.Errorf("artifact: creating %s: %w", path, err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, pred, prov, strings.HasSuffix(path, ".gz")); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp opens 0600; artifacts are shareable data files, so widen
	// to the conventional 0644 before publishing.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("artifact: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("artifact: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("artifact: writing %s: %w", path, err)
	}
	return nil
}

// Load reads an artifact written by Save.
func Load(path string) (*core.Predictor, Provenance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Provenance{}, fmt.Errorf("artifact: %w", err)
	}
	defer f.Close()
	pred, prov, err := Read(f)
	if err != nil {
		return nil, Provenance{}, fmt.Errorf("%w (file %s)", err, path)
	}
	return pred, prov, nil
}

package placement

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkSearch measures one full search run per strategy on a 12-host
// cluster with a 64-candidate budget, using the deterministic landscape
// predictor so the numbers isolate engine overhead (generation, dedup,
// streaming rounds) from model inference.
func BenchmarkSearch(b *testing.B) {
	q := testQuery()
	c := cluster12()
	pred := landscapePredictor{}
	budget := Budget{MaxCandidates: 64}
	for _, name := range StrategyNames() {
		strat, err := ParseStrategy(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Search(pred, q, c, strat, MinProcLatency, budget,
					SearchOptions{Seed: int64(i), Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlacementKey compares the compact binary dedup key against the
// fmt.Sprint encoding it replaced.
func BenchmarkPlacementKey(b *testing.B) {
	q := testQuery()
	c := cluster12()
	cands := Enumerate(rand.New(rand.NewSource(1)), q, c, 32)
	if len(cands) == 0 {
		b.Fatal("no candidates")
	}
	b.Run("compact", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			seen := make(map[string]bool, len(cands))
			for _, p := range cands {
				buf = appendPlacementKey(buf[:0], p)
				seen[string(buf)] = true
			}
		}
	})
	b.Run("sprint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seen := make(map[string]bool, len(cands))
			for _, p := range cands {
				seen[fmt.Sprint([]int(p))] = true
			}
		}
	})
}

package placement

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// landscapePredictor is a deterministic BatchPredictor with a structured
// cost surface: processing latency is the sum of network latency over the
// query's edges plus a per-operator compute penalty on weak hosts. It
// rewards co-location and strong hosts, so real search strategies can be
// compared against random sampling on exact, reproducible numbers.
type landscapePredictor struct{}

func landscapeCosts(q *stream.Query, c *hardware.Cluster, p sim.Placement) PredCosts {
	lat := 0.0
	for _, e := range q.Edges {
		lat += c.LinkLatencyMS(p[e[0]], p[e[1]])
	}
	for _, h := range p {
		lat += 500 / c.Hosts[h].CPU
	}
	return PredCosts{
		ProcLatencyMS: lat,
		E2ELatencyMS:  2 * lat,
		ThroughputTPS: 1e6 / (1 + lat),
		Success:       true,
	}
}

func (landscapePredictor) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (PredCosts, error) {
	return landscapeCosts(q, c, p), nil
}

func (landscapePredictor) PredictBatch(q *stream.Query, c *hardware.Cluster, ps []sim.Placement) ([]PredCosts, error) {
	out := make([]PredCosts, len(ps))
	for i, p := range ps {
		out[i] = landscapeCosts(q, c, p)
	}
	return out, nil
}

// cluster12 is a 12-host heterogeneous edge-cloud landscape: six weak
// high-latency edge nodes, four fog nodes and two strong cloud nodes.
func cluster12() *hardware.Cluster {
	c := &hardware.Cluster{}
	add := func(id string, cpu, ram, lat, bw float64) {
		c.Hosts = append(c.Hosts, &hardware.Host{
			ID: id, CPU: cpu, RAMMB: ram, NetLatencyMS: lat, NetBandwidthMbps: bw,
		})
	}
	add("edge-0", 50, 1000, 80, 50)
	add("edge-1", 60, 1000, 70, 50)
	add("edge-2", 80, 2000, 60, 100)
	add("edge-3", 100, 2000, 40, 100)
	add("edge-4", 100, 1000, 90, 25)
	add("edge-5", 120, 2000, 50, 100)
	add("fog-0", 300, 8000, 20, 400)
	add("fog-1", 400, 8000, 10, 800)
	add("fog-2", 400, 16000, 15, 400)
	add("fog-3", 500, 8000, 10, 800)
	add("cloud-0", 800, 32000, 1, 10000)
	add("cloud-1", 700, 24000, 2, 6400)
	return c
}

// allStrategies returns one default-configured instance per built-in
// strategy name.
func allStrategies(t *testing.T) []Strategy {
	t.Helper()
	var out []Strategy
	for _, name := range StrategyNames() {
		s, err := ParseStrategy(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// TestSearchDeterministicAcrossWorkers is the engine's core guarantee:
// for every strategy, a fixed seed yields the identical SearchResult no
// matter how many scoring workers run. Under -race this doubles as the
// search engine's data-race check.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	q := testQuery()
	c := cluster12()
	pred := landscapePredictor{}
	budget := Budget{MaxCandidates: 48}
	for _, strat := range allStrategies(t) {
		base, err := Search(pred, q, c, strat, MinProcLatency, budget, SearchOptions{Seed: 9, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		for _, workers := range []int{2, 5, 16} {
			got, err := Search(pred, q, c, strat, MinProcLatency, budget, SearchOptions{Seed: 9, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", strat.Name(), workers, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%s: workers=%d result %+v != serial %+v", strat.Name(), workers, got, base)
			}
		}
	}
}

// TestRandomSampleMatchesEnumerateOptimize pins the compatibility
// guarantee: for a given seed and budget, the RandomSample strategy
// examines exactly the candidates of the pre-engine Enumerate+OptimizeOpts
// pipeline and returns the identical selection.
func TestRandomSampleMatchesEnumerateOptimize(t *testing.T) {
	q := testQuery()
	pred := landscapePredictor{}
	for _, c := range []*hardware.Cluster{testCluster(), cluster12()} {
		for seed := int64(1); seed <= 5; seed++ {
			cands := Enumerate(rand.New(rand.NewSource(seed)), q, c, 16)
			if len(cands) == 0 {
				t.Fatalf("seed %d: no candidates", seed)
			}
			want, err := OptimizeOpts(pred, q, c, cands, MinProcLatency, Options{})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			got, err := Search(pred, q, c, RandomSample{}, MinProcLatency,
				Budget{MaxCandidates: 16}, SearchOptions{Seed: seed})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !reflect.DeepEqual(got.Placement, want.Placement) {
				t.Errorf("seed %d: placement %v != %v", seed, got.Placement, want.Placement)
			}
			if got.Costs != want.Costs || got.Index != want.Index {
				t.Errorf("seed %d: costs/index (%+v, %d) != (%+v, %d)",
					seed, got.Costs, got.Index, want.Costs, want.Index)
			}
			if got.Examined != len(cands) || got.Filtered != want.Filtered || got.Errored != want.Errored {
				t.Errorf("seed %d: examined/filtered/errored (%d,%d,%d) != (%d,%d,%d)", seed,
					got.Examined, got.Filtered, got.Errored, len(cands), want.Filtered, want.Errored)
			}
		}
	}
}

// TestGuidedSearchBeatsRandom enforces the engine's reason to exist: on a
// 12-host cluster, Beam and LocalSearch must find an equal-or-better
// predicted objective than RandomSample under the same candidate budget.
func TestGuidedSearchBeatsRandom(t *testing.T) {
	q := testQuery()
	c := cluster12()
	pred := landscapePredictor{}
	budget := Budget{MaxCandidates: 64}
	for _, seed := range []int64{3, 7, 11, 42} {
		randRes, err := Search(pred, q, c, RandomSample{}, MinProcLatency, budget, SearchOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []Strategy{Beam{Width: 4}, LocalSearch{}} {
			res, err := Search(pred, q, c, strat, MinProcLatency, budget, SearchOptions{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", strat.Name(), seed, err)
			}
			if res.Examined > budget.MaxCandidates {
				t.Errorf("%s seed=%d: examined %d > budget %d", strat.Name(), seed, res.Examined, budget.MaxCandidates)
			}
			if res.Costs.ProcLatencyMS > randRes.Costs.ProcLatencyMS {
				t.Errorf("%s seed=%d: predicted Lp %.3f worse than random's %.3f",
					strat.Name(), seed, res.Costs.ProcLatencyMS, randRes.Costs.ProcLatencyMS)
			}
		}
	}
}

// TestExhaustiveCompleteIsOptimal: on a small space, Exhaustive covers
// everything, reports Complete, and no other strategy can beat it.
func TestExhaustiveCompleteIsOptimal(t *testing.T) {
	q := testQuery()
	c := testCluster()
	pred := landscapePredictor{}
	budget := Budget{MaxCandidates: 4096}
	ex, err := Search(pred, q, c, Exhaustive{}, MinProcLatency, budget, SearchOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Complete {
		t.Fatalf("exhaustive did not cover the %d-examined space", ex.Examined)
	}
	if !Valid(q, c, ex.Placement) {
		t.Fatalf("exhaustive returned invalid placement %v", ex.Placement)
	}
	for _, strat := range allStrategies(t) {
		res, err := Search(pred, q, c, strat, MinProcLatency, budget, SearchOptions{Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if res.Costs.ProcLatencyMS < ex.Costs.ProcLatencyMS-1e-9 {
			t.Errorf("%s beat the complete enumeration: %.4f < %.4f",
				strat.Name(), res.Costs.ProcLatencyMS, ex.Costs.ProcLatencyMS)
		}
	}
}

// TestSearchBudgetEnforced: the candidate and round budgets bound every
// strategy, and exhausted exhaustive runs do not claim completeness.
func TestSearchBudgetEnforced(t *testing.T) {
	q := testQuery()
	c := cluster12()
	pred := landscapePredictor{}
	for _, strat := range allStrategies(t) {
		res, err := Search(pred, q, c, strat, MinProcLatency, Budget{MaxCandidates: 5}, SearchOptions{Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if res.Examined > 5 {
			t.Errorf("%s: examined %d > budget 5", strat.Name(), res.Examined)
		}
		if res.Complete {
			t.Errorf("%s: claims complete coverage under a 5-candidate budget", strat.Name())
		}
		res, err = Search(pred, q, c, strat, MinProcLatency,
			Budget{MaxCandidates: 256, MaxRounds: 1}, SearchOptions{Seed: 2})
		if err != nil {
			t.Fatalf("%s rounds=1: %v", strat.Name(), err)
		}
		if res.Rounds > 1 {
			t.Errorf("%s: rounds %d > budget 1", strat.Name(), res.Rounds)
		}
	}
}

// TestSearchValidPlacements: every strategy returns a rule-satisfying
// placement on both small and large clusters.
func TestSearchValidPlacements(t *testing.T) {
	q := testQuery()
	pred := landscapePredictor{}
	for _, c := range []*hardware.Cluster{testCluster(), cluster12()} {
		for _, strat := range allStrategies(t) {
			res, err := Search(pred, q, c, strat, MinProcLatency, Budget{MaxCandidates: 32}, SearchOptions{Seed: 4})
			if err != nil {
				t.Fatalf("%s: %v", strat.Name(), err)
			}
			if !Valid(q, c, res.Placement) {
				t.Errorf("%s: invalid placement %v", strat.Name(), res.Placement)
			}
			if res.Strategy != strat.Name() {
				t.Errorf("result strategy %q != %q", res.Strategy, strat.Name())
			}
		}
	}
}

// insanePredictor predicts failure for every placement, exercising the
// sanity-filter fallback path.
type insanePredictor struct{ landscapePredictor }

func (p insanePredictor) PredictPlacement(q *stream.Query, c *hardware.Cluster, pl sim.Placement) (PredCosts, error) {
	pc := landscapeCosts(q, c, pl)
	pc.Success = false
	return pc, nil
}

func (p insanePredictor) PredictBatch(q *stream.Query, c *hardware.Cluster, ps []sim.Placement) ([]PredCosts, error) {
	out := make([]PredCosts, len(ps))
	for i, pl := range ps {
		out[i], _ = p.PredictPlacement(q, c, pl)
	}
	return out, nil
}

// TestSearchFallbackWhenAllInsane: when every candidate fails the sanity
// check, the search still returns the cheapest scored placement.
func TestSearchFallbackWhenAllInsane(t *testing.T) {
	q := testQuery()
	c := testCluster()
	res, err := Search(insanePredictor{}, q, c, RandomSample{}, MinProcLatency,
		Budget{MaxCandidates: 8}, SearchOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Filtered != res.Examined {
		t.Errorf("Filtered = %d, want %d (all insane)", res.Filtered, res.Examined)
	}
	if res.Placement == nil {
		t.Fatal("no fallback placement")
	}
}

// TestScoreRoundDedupAndCaching drives the core directly: duplicate
// candidates return cached records without consuming budget or rounds.
func TestScoreRoundDedupAndCaching(t *testing.T) {
	q := testQuery()
	c := testCluster()
	co, err := newCore(context.Background(), landscapePredictor{}, q, c, MinProcLatency, Budget{MaxCandidates: 32}, SearchOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cands := Enumerate(rand.New(rand.NewSource(1)), q, c, 4)
	if len(cands) < 2 {
		t.Fatalf("want >= 2 candidates, got %d", len(cands))
	}
	first := co.ScoreRound(cands)
	if co.Examined() != len(cands) || co.Rounds() != 1 {
		t.Fatalf("examined=%d rounds=%d after first round", co.Examined(), co.Rounds())
	}
	// Same batch again, plus an intra-round duplicate.
	again := co.ScoreRound(append(append([]sim.Placement{}, cands...), cands[0]))
	if co.Examined() != len(cands) {
		t.Errorf("duplicates consumed budget: examined=%d", co.Examined())
	}
	if co.Rounds() != 1 {
		t.Errorf("cache-only round counted: rounds=%d", co.Rounds())
	}
	for i := range cands {
		if !reflect.DeepEqual(first[i], again[i]) {
			t.Errorf("cached record %d differs", i)
		}
	}
	if !reflect.DeepEqual(again[len(again)-1], first[0]) {
		t.Error("intra-round duplicate not resolved to the cached record")
	}
}

// TestScoreRoundIntraRoundDuplicate: a batch containing the same fresh
// placement twice scores it once and resolves both entries.
func TestScoreRoundIntraRoundDuplicate(t *testing.T) {
	q := testQuery()
	c := testCluster()
	co, err := newCore(context.Background(), landscapePredictor{}, q, c, MinProcLatency, Budget{MaxCandidates: 32}, SearchOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := sim.Placement{3, 3, 3, 3, 3}
	out := co.ScoreRound([]sim.Placement{p, p})
	if co.Examined() != 1 {
		t.Fatalf("examined=%d, want 1", co.Examined())
	}
	if !reflect.DeepEqual(out[0], out[1]) {
		t.Errorf("duplicate entries differ: %+v vs %+v", out[0], out[1])
	}
}

func TestParseStrategy(t *testing.T) {
	for _, name := range StrategyNames() {
		s, err := ParseStrategy(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ParseStrategy(%q).Name() = %q", name, s.Name())
		}
	}
	if s, err := ParseStrategy(""); err != nil || s.Name() != "random" {
		t.Errorf("empty name: (%v, %v), want default random", s, err)
	}
	if _, err := ParseStrategy("simulated-bogo"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestPlacementKeyInjective: distinct placements of one query produce
// distinct compact keys, including hosts beyond one varint byte.
func TestPlacementKeyInjective(t *testing.T) {
	ps := []sim.Placement{
		{0, 1}, {1, 0}, {0, 0}, {1, 1},
		{130, 5}, {5, 130}, {2, 133}, {133, 2},
		{128, 0}, {0, 128},
	}
	seen := map[string]int{}
	for i, p := range ps {
		key := string(appendPlacementKey(nil, p))
		if j, ok := seen[key]; ok {
			t.Errorf("placements %v and %v collide", ps[j], p)
		}
		seen[key] = i
	}
}

package placement

import (
	"math/rand"
	"testing"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

func TestMonitoringTerminatesAndTracksTime(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := testQuery()
	c := testCluster()
	initial, err := RandomValid(rng, q, c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 15, 3
	mcfg := MonitorConfig{IntervalS: 10, MigrationCostS: 5, MaxSteps: 6, SimCfg: cfg}
	steps, err := OnlineMonitoring(q, c, initial, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) > mcfg.MaxSteps+1 {
		t.Fatalf("%d steps exceed MaxSteps+1", len(steps))
	}
	// Elapsed time accounting: every non-initial step costs at least the
	// monitoring interval plus one migration.
	for i := 1; i < len(steps); i++ {
		minElapsed := steps[i-1].ElapsedS + mcfg.IntervalS + mcfg.MigrationCostS
		if steps[i].ElapsedS < minElapsed-1e-9 {
			t.Errorf("step %d elapsed %v < minimum %v", i, steps[i].ElapsedS, minElapsed)
		}
	}
}

func TestMonitoringRevertedMovesAreNotRepeated(t *testing.T) {
	// With a single host no move is possible: exactly one step.
	q := testQuery()
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "solo", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
	initial := sim.Placement{0, 0, 0, 0, 0}
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 10, 2
	steps, err := OnlineMonitoring(q, c, initial, DefaultMonitorConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 {
		t.Fatalf("single-host monitoring took %d steps, want 1", len(steps))
	}
}

func TestRebalanceProposesValidMove(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := testQuery()
	c := testCluster()
	p, err := RandomValid(rng, q, c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 10, 2
	m, err := sim.Run(q, c, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	next, move, moved := rebalanceOnce(q, c, p, m, map[[2]int]bool{})
	if !moved {
		t.Skip("no move proposed for this placement")
	}
	if !Valid(q, c, next) {
		t.Fatal("proposed move yields invalid placement")
	}
	if next[move[0]] != move[1] {
		t.Fatal("reported move does not match placement change")
	}
	// Banning the move must yield a different proposal (or none).
	banned := map[[2]int]bool{move: true}
	next2, move2, moved2 := rebalanceOnce(q, c, p, m, banned)
	if moved2 && move2 == move {
		t.Fatal("banned move proposed again")
	}
	_ = next2
}

func TestHeuristicInitialIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	gen := testQuery()
	c := testCluster()
	for i := 0; i < 20; i++ {
		p, err := HeuristicInitial(rng, gen, c)
		if err != nil {
			t.Fatal(err)
		}
		if !Valid(gen, c, p) {
			t.Fatalf("heuristic initial placement %v invalid", p)
		}
	}
}

func TestSimOracleMatchesSim(t *testing.T) {
	q := testQuery()
	c := testCluster()
	p := sim.Placement{0, 0, 1, 2, 3}
	if !Valid(q, c, p) {
		// fall back to a generated valid placement
		var err error
		p, err = RandomValid(rand.New(rand.NewSource(15)), q, c)
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 10, 2
	oracle := &SimOracle{Cfg: cfg}
	pc, err := oracle.PredictPlacement(q, c, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run(q, c, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pc.ProcLatencyMS != m.ProcLatencyMS || pc.Success != m.Success {
		t.Error("oracle must match simulator exactly")
	}
}

var _ = stream.Query{}

// TestMonitoringDeterministic: OnlineMonitoring draws no randomness of its
// own (the rng parameter it once took was unused) — the trajectory is a
// pure function of the query, cluster, initial placement and sim seed.
func TestMonitoringDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := testQuery()
	c := testCluster()
	initial, err := RandomValid(rng, q, c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 10, 2
	mcfg := MonitorConfig{IntervalS: 10, MigrationCostS: 5, MaxSteps: 4, SimCfg: cfg}
	a, err := OnlineMonitoring(q, c, initial, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OnlineMonitoring(q, c, initial, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ElapsedS != b[i].ElapsedS {
			t.Fatalf("step %d elapsed differs", i)
		}
		for j := range a[i].Placement {
			if a[i].Placement[j] != b[i].Placement[j] {
				t.Fatalf("step %d placement differs", i)
			}
		}
	}
}

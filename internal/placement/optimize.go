package placement

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// PredCosts is a predicted cost vector for one placement candidate,
// mirroring the paper's five cost metrics.
type PredCosts struct {
	ThroughputTPS float64
	ProcLatencyMS float64
	E2ELatencyMS  float64
	Success       bool
	Backpressured bool
}

// Predictor estimates the execution costs of a query under a placement.
// COSTREAM's ensemble satisfies this, as does the flat-vector baseline and
// an oracle wrapping the simulator.
type Predictor interface {
	PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (PredCosts, error)
}

// BatchPredictor is a Predictor that can score many candidates in one
// call, amortizing the placement-invariant featurization work (the query
// graph and per-host features) across the whole batch. PredictBatch must
// return one PredCosts per candidate, in order, with values identical to
// per-candidate PredictPlacement calls. Optimize detects this interface
// and routes candidate chunks through it.
type BatchPredictor interface {
	Predictor
	PredictBatch(q *stream.Query, c *hardware.Cluster, candidates []sim.Placement) ([]PredCosts, error)
}

// TileScorer scores tiles of candidates for one fixed (query, cluster)
// pair. NewScoreSession hoists the placement-invariant work (featurizing
// the query graph and per-host features, snapshotting the ensemble weight
// stacks) out of the round; ScoreTile then scores a contiguous tile of
// candidates through the packed cross-candidate kernels, writing one
// PredCosts per candidate into out (len(out) == len(cands)). Results
// must be identical to per-candidate PredictPlacement calls and must not
// depend on how a round is split into tiles. ScoreTile is called
// concurrently from multiple workers; implementations keep per-call
// state in private scratch. TileSize is the implementation's preferred
// tile width (cache-footprint bound); callers may use any width.
type TileScorer interface {
	TileSize() int
	ScoreTile(cands []sim.Placement, out []PredCosts) error
}

// SessionPredictor is a Predictor that can open a reusable per-round
// scoring session. Optimize detects this interface and routes candidate
// tiles through it, falling back to the chunked BatchPredictor path when
// the session cannot be built (malformed query, incompatible ensembles).
type SessionPredictor interface {
	Predictor
	NewScoreSession(q *stream.Query, c *hardware.Cluster) (TileScorer, error)
}

// InferencePathStats counts which inference path served a predictor's
// full-ensemble evaluations and the total wall time spent in each: the
// stacked one-pass matrix kernels, or the per-member fallback (ablation
// architectures, mixed featurizations). Serving layers surface it so
// kernel regressions show up in production stats, not just benchmarks.
type InferencePathStats struct {
	StackedCalls  int64 `json:"stacked_calls"`
	StackedNanos  int64 `json:"stacked_nanos"`
	FallbackCalls int64 `json:"fallback_calls"`
	FallbackNanos int64 `json:"fallback_nanos"`
}

// PathStatsReporter is optionally implemented by predictors that track
// their inference paths (COSTREAM's ensemble predictor does); consumers
// type-assert for it.
type PathStatsReporter interface {
	InferencePathStats() InferencePathStats
}

// Objective selects the target cost metric for placement optimization.
type Objective int

// Optimization objectives.
const (
	MinProcLatency Objective = iota
	MinE2ELatency
	MaxThroughput
)

func (o Objective) String() string {
	switch o {
	case MinProcLatency:
		return "min-processing-latency"
	case MinE2ELatency:
		return "min-e2e-latency"
	case MaxThroughput:
		return "max-throughput"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Score maps predicted costs onto the objective's scalar score; lower is
// better for every objective (MaxThroughput negates the throughput).
func (o Objective) Score(costs PredCosts) float64 { return objectiveScore(o, costs) }

// ParseObjective resolves an objective name (as used by the CLI
// -objective flags and the serve API "objective" field). The empty
// string selects MinProcLatency.
func ParseObjective(name string) (Objective, error) {
	switch name {
	case "", "min-processing-latency", "proc-latency", "latency":
		return MinProcLatency, nil
	case "min-e2e-latency", "e2e-latency", "e2e":
		return MinE2ELatency, nil
	case "max-throughput", "throughput":
		return MaxThroughput, nil
	}
	return 0, fmt.Errorf("placement: unknown objective %q (want min-processing-latency, min-e2e-latency or max-throughput)", name)
}

// Result is the outcome of an Optimize call.
type Result struct {
	Placement sim.Placement
	Index     int // index into the candidate slice
	Costs     PredCosts
	// Filtered reports how many candidates were removed before selection:
	// by the sanity check (predicted failure or backpressure) or because
	// their prediction errored.
	Filtered int
	// Errored reports how many candidates failed to score at all (a
	// subset of Filtered).
	Errored int
}

// Options tunes the candidate-scoring engine behind Optimize.
type Options struct {
	// Workers bounds the number of concurrent scoring workers. Zero or
	// negative selects GOMAXPROCS. The chosen placement is independent of
	// the worker count: candidate scores are merged by candidate index,
	// and ties break toward the lower index.
	Workers int
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Optimize scores every candidate with the predictor, removes candidates
// predicted to fail or be backpressured (the paper's sanity check), and
// returns the remaining candidate optimizing the objective. If the filter
// removes everything, the best candidate overall is returned, preferring
// lower predicted cost. Candidates whose prediction errors are skipped
// (counted in Result.Filtered and Result.Errored); Optimize only fails if
// every candidate does.
//
// Optimize uses default Options; use OptimizeOpts to bound the worker
// pool explicitly.
func Optimize(pred Predictor, q *stream.Query, c *hardware.Cluster, candidates []sim.Placement, obj Objective) (*Result, error) {
	return OptimizeOpts(pred, q, c, candidates, obj, Options{})
}

// scoreCandidates scores every candidate with the predictor through a
// bounded pool of workers, merging results into slices indexed by
// candidate so the output is identical for every worker count.
//
// A SessionPredictor scores through a shared per-round session: workers
// claim fixed-boundary candidate tiles (the session's preferred width)
// from an atomic counter, so a fast worker takes more tiles instead of
// idling behind a static partition, and each tile runs one packed
// cross-candidate kernel pass. A failing tile falls back to
// per-candidate scoring to isolate the failing candidates.
//
// Other predictors are partitioned into contiguous chunks; a
// BatchPredictor receives whole chunks so it can featurize the shared
// query/cluster state once per chunk, with the same per-candidate
// fallback on chunk failure. A cancelled ctx (nil means background)
// stops each worker at its next tile or candidate boundary; unscored
// candidates carry ctx.Err().
func scoreCandidates(ctx context.Context, pred Predictor, q *stream.Query, c *hardware.Cluster, candidates []sim.Placement, opts Options) ([]PredCosts, []error) {
	n := len(candidates)
	costs := make([]PredCosts, n)
	errs := make([]error, n)
	if n == 0 {
		return costs, errs
	}
	cancelled := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	if sp, ok := pred.(SessionPredictor); ok {
		if sess, err := sp.NewScoreSession(q, c); err == nil {
			scoreTiled(ctx, sess, pred, q, c, candidates, costs, errs, opts)
			return costs, errs
		}
		// The session could not be built (malformed query, cluster
		// mismatch): the chunked path below reproduces the per-candidate
		// errors the caller expects.
	}
	scoreChunk := func(lo, hi int) {
		if err := cancelled(); err != nil {
			for i := lo; i < hi; i++ {
				errs[i] = err
			}
			return
		}
		if bp, ok := pred.(BatchPredictor); ok {
			out, err := bp.PredictBatch(q, c, candidates[lo:hi])
			if err == nil && len(out) == hi-lo {
				copy(costs[lo:hi], out)
				return
			}
			// The batch call failed as a whole; fall through to
			// per-candidate scoring to isolate the failing candidates.
		}
		for i := lo; i < hi; i++ {
			if err := cancelled(); err != nil {
				errs[i] = err
				continue
			}
			costs[i], errs[i] = pred.PredictPlacement(q, c, candidates[i])
		}
	}
	if workers := opts.workers(n); workers == 1 {
		scoreChunk(0, n)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*n/workers, (w+1)*n/workers
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				scoreChunk(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	return costs, errs
}

// scoreTiled drives one scoring session: the candidate list is cut into
// fixed-boundary tiles of the session's preferred width, and workers
// claim tiles from a shared atomic counter. Tile boundaries depend only
// on the candidate count and tile width — never on worker scheduling —
// and ScoreTile results must not depend on tiling, so the merged output
// is identical for every worker count. A failing tile is re-scored per
// candidate with PredictPlacement to isolate the failure; a cancelled
// ctx stops claiming and marks unscored candidates with ctx.Err().
func scoreTiled(ctx context.Context, sess TileScorer, pred Predictor, q *stream.Query, c *hardware.Cluster, candidates []sim.Placement, costs []PredCosts, errs []error, opts Options) {
	n := len(candidates)
	tile := sess.TileSize()
	if tile < 1 {
		tile = 1
	}
	nTiles := (n + tile - 1) / tile
	cancelled := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	scoreTile := func(t int) {
		lo := t * tile
		hi := min(lo+tile, n)
		if err := cancelled(); err != nil {
			for i := lo; i < hi; i++ {
				errs[i] = err
			}
			return
		}
		if err := sess.ScoreTile(candidates[lo:hi], costs[lo:hi]); err == nil {
			return
		}
		// The tile failed as a whole; reset any partial results and score
		// per candidate to isolate the failing ones.
		for i := lo; i < hi; i++ {
			costs[i] = PredCosts{}
			if err := cancelled(); err != nil {
				errs[i] = err
				continue
			}
			costs[i], errs[i] = pred.PredictPlacement(q, c, candidates[i])
		}
	}
	if workers := opts.workers(nTiles); workers == 1 {
		for t := 0; t < nTiles; t++ {
			scoreTile(t)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					t := int(next.Add(1)) - 1
					if t >= nTiles {
						return
					}
					scoreTile(t)
				}
			}()
		}
		wg.Wait()
	}
}

// objectiveScore maps predicted costs onto the objective's scalar score;
// lower is better for every objective.
func objectiveScore(obj Objective, costs PredCosts) float64 {
	switch obj {
	case MaxThroughput:
		return -costs.ThroughputTPS
	case MinE2ELatency:
		return costs.E2ELatencyMS
	default:
		return costs.ProcLatencyMS
	}
}

// OptimizeOpts is Optimize with explicit engine options. Candidate scores
// are merged by candidate index, so the same candidate list yields the
// same Result regardless of Workers.
func OptimizeOpts(pred Predictor, q *stream.Query, c *hardware.Cluster, candidates []sim.Placement, obj Objective, opts Options) (*Result, error) {
	n := len(candidates)
	if n == 0 {
		return nil, fmt.Errorf("placement: no candidates to optimize over")
	}
	costs, errs := scoreCandidates(context.Background(), pred, q, c, candidates, opts)

	score := func(costs PredCosts) float64 { return objectiveScore(obj, costs) }
	filtered, errored := 0, 0
	var firstErr error
	best, bestFallback := -1, -1
	bestScore, fallbackScore := math.Inf(1), math.Inf(1)
	for i := range candidates {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("placement: predicting candidate %d: %w", i, errs[i])
			}
			filtered++
			errored++
			continue
		}
		s := score(costs[i])
		if s < fallbackScore {
			fallbackScore = s
			bestFallback = i
		}
		if costs[i].Success && !costs[i].Backpressured {
			if s < bestScore {
				bestScore = s
				best = i
			}
		} else {
			filtered++
		}
	}
	if best < 0 {
		// Everything filtered: fall back to the cheapest scored prediction.
		best = bestFallback
	}
	if best < 0 {
		return nil, fmt.Errorf("placement: all %d candidates failed to score: %w", n, firstErr)
	}
	return &Result{
		Placement: candidates[best],
		Index:     best,
		Costs:     costs[best],
		Filtered:  filtered,
		Errored:   errored,
	}, nil
}

// SimOracle is a Predictor that runs the execution simulator: it provides
// perfect cost knowledge and is used by tests and as an upper bound.
type SimOracle struct {
	Cfg sim.Config
}

// PredictPlacement implements Predictor by simulating the placement.
func (o *SimOracle) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (PredCosts, error) {
	m, err := sim.Run(q, c, p, o.Cfg)
	if err != nil {
		return PredCosts{}, err
	}
	return PredCosts{
		ThroughputTPS: m.ThroughputTPS,
		ProcLatencyMS: m.ProcLatencyMS,
		E2ELatencyMS:  m.E2ELatencyMS,
		Success:       m.Success,
		Backpressured: m.Backpressured,
	}, nil
}

// SimOracle deliberately does not implement BatchPredictor: each
// candidate needs its own simulator run, so there is no shared work to
// amortize, and the per-candidate path already gives both the chunked
// worker pool and per-candidate error isolation.

// HeuristicInitial returns the plain heuristic initial placement used as
// the Exp 2a baseline denominator: the first valid random draw under the
// Figure 5 rules, without any cost-based selection (following [32]).
func HeuristicInitial(rng *rand.Rand, q *stream.Query, c *hardware.Cluster) (sim.Placement, error) {
	return RandomValid(rng, q, c)
}

package placement

import (
	"fmt"
	"math"
	"math/rand"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// PredCosts is a predicted cost vector for one placement candidate,
// mirroring the paper's five cost metrics.
type PredCosts struct {
	ThroughputTPS float64
	ProcLatencyMS float64
	E2ELatencyMS  float64
	Success       bool
	Backpressured bool
}

// Predictor estimates the execution costs of a query under a placement.
// COSTREAM's ensemble satisfies this, as does the flat-vector baseline and
// an oracle wrapping the simulator.
type Predictor interface {
	PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (PredCosts, error)
}

// Objective selects the target cost metric for placement optimization.
type Objective int

// Optimization objectives.
const (
	MinProcLatency Objective = iota
	MinE2ELatency
	MaxThroughput
)

func (o Objective) String() string {
	switch o {
	case MinProcLatency:
		return "min-processing-latency"
	case MinE2ELatency:
		return "min-e2e-latency"
	case MaxThroughput:
		return "max-throughput"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Result is the outcome of an Optimize call.
type Result struct {
	Placement sim.Placement
	Index     int // index into the candidate slice
	Costs     PredCosts
	// Filtered reports how many candidates the sanity check (predicted
	// failure or backpressure) removed.
	Filtered int
}

// Optimize scores every candidate with the predictor, removes candidates
// predicted to fail or be backpressured (the paper's sanity check), and
// returns the remaining candidate optimizing the objective. If the filter
// removes everything, the best candidate overall is returned, preferring
// lower predicted cost.
func Optimize(pred Predictor, q *stream.Query, c *hardware.Cluster, candidates []sim.Placement, obj Objective) (*Result, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("placement: no candidates to optimize over")
	}
	type scored struct {
		idx   int
		costs PredCosts
		ok    bool
	}
	all := make([]scored, 0, len(candidates))
	filtered := 0
	for i, p := range candidates {
		costs, err := pred.PredictPlacement(q, c, p)
		if err != nil {
			return nil, fmt.Errorf("placement: predicting candidate %d: %w", i, err)
		}
		ok := costs.Success && !costs.Backpressured
		if !ok {
			filtered++
		}
		all = append(all, scored{idx: i, costs: costs, ok: ok})
	}
	score := func(costs PredCosts) float64 {
		switch obj {
		case MaxThroughput:
			return -costs.ThroughputTPS
		case MinE2ELatency:
			return costs.E2ELatencyMS
		default:
			return costs.ProcLatencyMS
		}
	}
	best := -1
	bestScore := math.Inf(1)
	// First pass: only sane candidates.
	for _, s := range all {
		if s.ok && score(s.costs) < bestScore {
			bestScore = score(s.costs)
			best = s.idx
		}
	}
	if best < 0 {
		// Everything filtered: fall back to the cheapest prediction.
		for _, s := range all {
			if score(s.costs) < bestScore {
				bestScore = score(s.costs)
				best = s.idx
			}
		}
	}
	return &Result{
		Placement: candidates[best],
		Index:     best,
		Costs:     all[best].costs,
		Filtered:  filtered,
	}, nil
}

// SimOracle is a Predictor that runs the execution simulator: it provides
// perfect cost knowledge and is used by tests and as an upper bound.
type SimOracle struct {
	Cfg sim.Config
}

// PredictPlacement implements Predictor by simulating the placement.
func (o *SimOracle) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (PredCosts, error) {
	m, err := sim.Run(q, c, p, o.Cfg)
	if err != nil {
		return PredCosts{}, err
	}
	return PredCosts{
		ThroughputTPS: m.ThroughputTPS,
		ProcLatencyMS: m.ProcLatencyMS,
		E2ELatencyMS:  m.E2ELatencyMS,
		Success:       m.Success,
		Backpressured: m.Backpressured,
	}, nil
}

// HeuristicInitial returns the plain heuristic initial placement used as
// the Exp 2a baseline denominator: the first valid random draw under the
// Figure 5 rules, without any cost-based selection (following [32]).
func HeuristicInitial(rng *rand.Rand, q *stream.Query, c *hardware.Cluster) (sim.Placement, error) {
	return RandomValid(rng, q, c)
}

package placement

import (
	"encoding/json"
	"math/rand"
	"testing"

	"costream/internal/obs"
	"costream/internal/sim"
)

// TestSearchTelemetryPerRound checks the opt-in RoundStats collection:
// one entry per scoring round, candidate dispositions adding up to the
// run totals, and a non-increasing incumbent (anytime) curve.
func TestSearchTelemetryPerRound(t *testing.T) {
	q := testQuery()
	c := cluster12()
	pred := landscapePredictor{}
	budget := Budget{MaxCandidates: 48}
	for _, strat := range allStrategies(t) {
		res, err := Search(pred, q, c, strat, MinProcLatency, budget, SearchOptions{Seed: 9, Telemetry: true})
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if len(res.Telemetry) != res.Rounds {
			t.Fatalf("%s: %d telemetry rounds, want %d", strat.Name(), len(res.Telemetry), res.Rounds)
		}
		fresh, filtered, errored := 0, 0, 0
		lastBest := 0.0
		for i, rs := range res.Telemetry {
			if rs.Round != i+1 {
				t.Errorf("%s: round ordinal %d at position %d", strat.Name(), rs.Round, i)
			}
			if rs.Fresh+rs.Duplicates+rs.Skipped != rs.Submitted {
				t.Errorf("%s round %d: fresh %d + dup %d + skipped %d != submitted %d",
					strat.Name(), rs.Round, rs.Fresh, rs.Duplicates, rs.Skipped, rs.Submitted)
			}
			if rs.ElapsedNS < 0 {
				t.Errorf("%s round %d: negative elapsed %d", strat.Name(), rs.Round, rs.ElapsedNS)
			}
			fresh += rs.Fresh
			filtered += rs.Filtered
			errored += rs.Errored
			if rs.BestIndex < 0 {
				t.Errorf("%s round %d: no incumbent after a scored round", strat.Name(), rs.Round)
				continue
			}
			if i > 0 && rs.BestScore > lastBest {
				t.Errorf("%s round %d: anytime curve increased %g -> %g",
					strat.Name(), rs.Round, lastBest, rs.BestScore)
			}
			lastBest = rs.BestScore
		}
		if fresh != res.Examined {
			t.Errorf("%s: telemetry fresh sum %d != examined %d", strat.Name(), fresh, res.Examined)
		}
		if filtered != res.Filtered || errored != res.Errored {
			t.Errorf("%s: telemetry filtered/errored %d/%d != result %d/%d",
				strat.Name(), filtered, errored, res.Filtered, res.Errored)
		}
		final := res.Telemetry[len(res.Telemetry)-1]
		if final.BestIndex != res.Index || final.BestScore != objectiveScore(MinProcLatency, res.Costs) {
			t.Errorf("%s: final round incumbent (%d, %g) != result (%d, %g)",
				strat.Name(), final.BestIndex, final.BestScore,
				res.Index, objectiveScore(MinProcLatency, res.Costs))
		}
	}
}

// TestSearchTelemetryOffByDefault pins that plain runs pay nothing for
// per-round collection and keep the result JSON-marshalable.
func TestSearchTelemetryOffByDefault(t *testing.T) {
	res, err := Search(landscapePredictor{}, testQuery(), cluster12(), RandomSample{}, MinProcLatency,
		Budget{MaxCandidates: 16}, SearchOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Fatalf("Telemetry = %v without opting in", res.Telemetry)
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("SearchResult not JSON-marshalable: %v", err)
	}
}

// TestSearchTelemetryDoesNotChangeSelection: collection is observational.
func TestSearchTelemetryDoesNotChangeSelection(t *testing.T) {
	q, c := testQuery(), cluster12()
	for _, strat := range allStrategies(t) {
		plain, err := Search(landscapePredictor{}, q, c, strat, MinProcLatency, Budget{MaxCandidates: 32}, SearchOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		traced, err := Search(landscapePredictor{}, q, c, strat, MinProcLatency, Budget{MaxCandidates: 32}, SearchOptions{Seed: 7, Telemetry: true})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Index != traced.Index || plain.Costs != traced.Costs {
			t.Errorf("%s: telemetry changed selection: %d/%v vs %d/%v",
				strat.Name(), plain.Index, plain.Costs, traced.Index, traced.Costs)
		}
	}
}

// TestSearchMetricsRecorded checks the always-on aggregates in the
// default registry move when a search runs (deltas, since other tests
// share the process-wide registry).
func TestSearchMetricsRecorded(t *testing.T) {
	m := searchMet()
	rounds0, scored0 := m.rounds.Value(), m.scored.Value()
	runs := obs.Default().Counter("costream_search_runs_total",
		"completed placement search runs, by strategy", "strategy", "random")
	runs0 := runs.Value()
	res, err := Search(landscapePredictor{}, testQuery(), cluster12(), RandomSample{}, MinProcLatency,
		Budget{MaxCandidates: 16}, SearchOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.rounds.Value() - rounds0; got < int64(res.Rounds) {
		t.Errorf("rounds counter moved %d, want >= %d", got, res.Rounds)
	}
	if got := m.scored.Value() - scored0; got < int64(res.Examined) {
		t.Errorf("scored counter moved %d, want >= %d", got, res.Examined)
	}
	if got := runs.Value() - runs0; got != 1 {
		t.Errorf("runs{strategy=random} moved %d, want 1", got)
	}
}

// TestMonitorRecordsPredictions checks the observed-vs-predicted hook:
// with a Predictor configured every activated placement carries its
// predicted costs and the q-error histograms in the default registry
// accumulate samples.
func TestMonitorRecordsPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := testQuery()
	c := testCluster()
	initial, err := RandomValid(rng, q, c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 15, 3
	mcfg := MonitorConfig{IntervalS: 10, MigrationCostS: 5, MaxSteps: 4, SimCfg: cfg, Predictor: landscapePredictor{}}
	lat0 := monitorMet().qerrLatency.Count()
	steps, err := OnlineMonitoring(q, c, initial, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range steps {
		if st.Predicted == nil {
			t.Fatalf("step %d has no prediction", i)
		}
		if st.Predicted.ProcLatencyMS <= 0 {
			t.Fatalf("step %d predicted latency %g", i, st.Predicted.ProcLatencyMS)
		}
	}
	if got := monitorMet().qerrLatency.Count() - lat0; got < 1 {
		t.Errorf("q-error histogram did not accumulate (delta %d)", got)
	}

	// Without a predictor the steps carry no prediction.
	mcfg.Predictor = nil
	steps, err = OnlineMonitoring(q, c, initial, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range steps {
		if st.Predicted != nil {
			t.Fatalf("step %d has a prediction without a predictor", i)
		}
	}
}

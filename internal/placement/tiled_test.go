package placement

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// tileFake is a SessionPredictor whose session scores tiles from a
// deterministic cost function, poisons whole tiles containing a marked
// candidate, and counts ScoreTile calls — enough to exercise the tiled
// scoring engine without real ensembles.
type tileFake struct {
	tile      int
	poison    int // candidate host value that fails the tile / the candidate
	tileCalls atomic.Int64
	predCalls atomic.Int64
}

func fakeCosts(p sim.Placement) PredCosts {
	cost := 0.0
	for _, h := range p {
		cost += float64(h + 1)
	}
	return PredCosts{ProcLatencyMS: cost, E2ELatencyMS: 2 * cost, ThroughputTPS: 1000 - cost, Success: true}
}

func (f *tileFake) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (PredCosts, error) {
	f.predCalls.Add(1)
	if len(p) > 0 && p[0] == f.poison {
		return PredCosts{}, fmt.Errorf("poisoned candidate")
	}
	return fakeCosts(p), nil
}

type tileFakeSession struct{ f *tileFake }

func (s *tileFakeSession) TileSize() int { return s.f.tile }

func (s *tileFakeSession) ScoreTile(cands []sim.Placement, out []PredCosts) error {
	s.f.tileCalls.Add(1)
	for i, p := range cands {
		if len(p) > 0 && p[0] == s.f.poison {
			return fmt.Errorf("poisoned tile")
		}
		out[i] = fakeCosts(p)
	}
	return nil
}

func (f *tileFake) NewScoreSession(q *stream.Query, c *hardware.Cluster) (TileScorer, error) {
	return &tileFakeSession{f: f}, nil
}

func tiledCandidates(n int) []sim.Placement {
	cands := make([]sim.Placement, n)
	for i := range cands {
		cands[i] = sim.Placement{i % 5, (i * 3) % 5}
	}
	return cands
}

// TestScoreTiledDeterministicAcrossWorkers: tile boundaries are fixed by
// the candidate count and tile width, and workers only claim tiles — so
// the merged costs are identical for every worker count.
func TestScoreTiledDeterministicAcrossWorkers(t *testing.T) {
	cands := tiledCandidates(53)
	var want []PredCosts
	for _, workers := range []int{1, 2, 3, 8, 16} {
		f := &tileFake{tile: 7, poison: -1}
		costs, errs := scoreCandidates(context.Background(), f, nil, nil, cands, Options{Workers: workers})
		for i, err := range errs {
			if err != nil {
				t.Fatalf("workers=%d candidate %d: %v", workers, i, err)
			}
		}
		if f.predCalls.Load() != 0 {
			t.Fatalf("workers=%d: %d per-candidate calls on the clean tiled path", workers, f.predCalls.Load())
		}
		if got, min := f.tileCalls.Load(), int64((len(cands)+6)/7); got != min {
			t.Fatalf("workers=%d: %d tiles scored, want %d", workers, got, min)
		}
		if want == nil {
			want = costs
			continue
		}
		for i := range cands {
			if costs[i] != want[i] {
				t.Fatalf("workers=%d candidate %d: %+v != %+v", workers, i, costs[i], want[i])
			}
		}
	}
}

// TestScoreTiledFallbackIsolatesFailure: a failing tile is re-scored per
// candidate, so only the poisoned candidate errors and its tile-mates
// keep their exact scores.
func TestScoreTiledFallbackIsolatesFailure(t *testing.T) {
	cands := tiledCandidates(20)
	f := &tileFake{tile: 8, poison: 2}
	costs, errs := scoreCandidates(context.Background(), f, nil, nil, cands, Options{Workers: 3})
	for i, p := range cands {
		if p[0] == f.poison {
			if errs[i] == nil {
				t.Fatalf("poisoned candidate %d scored without error", i)
			}
			if costs[i] != (PredCosts{}) {
				t.Fatalf("poisoned candidate %d kept partial costs %+v", i, costs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("candidate %d: %v", i, errs[i])
		}
		if costs[i] != fakeCosts(p) {
			t.Fatalf("candidate %d: %+v != %+v", i, costs[i], fakeCosts(p))
		}
	}
	if f.predCalls.Load() == 0 {
		t.Fatal("no per-candidate fallback calls for the failing tiles")
	}
}

// TestScoreTiledCancelled: a pre-cancelled context marks every candidate
// with ctx.Err() without calling the session.
func TestScoreTiledCancelled(t *testing.T) {
	cands := tiledCandidates(15)
	f := &tileFake{tile: 4, poison: -1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs := scoreCandidates(ctx, f, nil, nil, cands, Options{Workers: 4})
	for i, err := range errs {
		if err != context.Canceled {
			t.Fatalf("candidate %d: err=%v, want context.Canceled", i, err)
		}
	}
	if f.tileCalls.Load() != 0 {
		t.Fatalf("%d tiles scored under a cancelled context", f.tileCalls.Load())
	}
}

// TestScoreTiledDegenerateTileSize: a session reporting a nonsensical
// tile width still scores every candidate (width clamps to 1).
func TestScoreTiledDegenerateTileSize(t *testing.T) {
	cands := tiledCandidates(5)
	f := &tileFake{tile: 0, poison: -1}
	costs, errs := scoreCandidates(context.Background(), f, nil, nil, cands, Options{Workers: 2})
	for i, p := range cands {
		if errs[i] != nil {
			t.Fatalf("candidate %d: %v", i, errs[i])
		}
		if costs[i] != fakeCosts(p) {
			t.Fatalf("candidate %d: %+v != %+v", i, costs[i], fakeCosts(p))
		}
	}
}

package placement

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// indexCosts derives a deterministic fake cost vector from a candidate's
// first host assignment so tests can stage arbitrary score landscapes.
type indexedPredictor struct {
	costs []PredCosts
	// failAt marks candidate indices whose prediction errors.
	failAt map[int]bool
	// batchErr makes whole-chunk PredictBatch calls fail, forcing the
	// per-candidate fallback.
	batchErr bool
	// batch counts PredictBatch calls, serial counts PredictPlacement calls.
	batch, serial atomic.Int64
}

func (f *indexedPredictor) idx(p sim.Placement) int { return int(p[0]) }

func (f *indexedPredictor) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (PredCosts, error) {
	f.serial.Add(1)
	i := f.idx(p)
	if f.failAt[i] {
		return PredCosts{}, fmt.Errorf("fake failure at candidate %d", i)
	}
	return f.costs[i], nil
}

func (f *indexedPredictor) PredictBatch(q *stream.Query, c *hardware.Cluster, candidates []sim.Placement) ([]PredCosts, error) {
	f.batch.Add(1)
	if f.batchErr {
		return nil, fmt.Errorf("fake batch failure")
	}
	out := make([]PredCosts, len(candidates))
	for i, p := range candidates {
		pc, err := f.PredictPlacement(q, c, p)
		if err != nil {
			return nil, err
		}
		out[i] = pc
	}
	return out, nil
}

// fakeCandidates returns n placements whose first entry encodes their
// index (the test predictors key off it).
func fakeCandidates(n int) []sim.Placement {
	out := make([]sim.Placement, n)
	for i := range out {
		out[i] = sim.Placement{i, 0, 0, 0, 0}
	}
	return out
}

func sanely(lat float64) PredCosts {
	return PredCosts{ProcLatencyMS: lat, ThroughputTPS: 1 / lat, E2ELatencyMS: lat * 2, Success: true}
}

// TestOptimizeDeterministicAcrossWorkers is the core determinism
// guarantee: the same candidates yield the identical Result no matter how
// many workers score them.
func TestOptimizeDeterministicAcrossWorkers(t *testing.T) {
	q := testQuery()
	c := testCluster()
	const n = 37
	pred := &indexedPredictor{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		pc := sanely(1 + rng.Float64()*100)
		if i%5 == 0 {
			pc.Backpressured = true
		}
		if i%7 == 0 {
			pc.Success = false
		}
		pred.costs = append(pred.costs, pc)
	}
	// A couple of duplicated best scores exercise the lowest-index
	// tie-break.
	pred.costs[20] = pred.costs[8]
	cands := fakeCandidates(n)

	for _, obj := range []Objective{MinProcLatency, MinE2ELatency, MaxThroughput} {
		base, err := OptimizeOpts(pred, q, c, cands, obj, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			got, err := OptimizeOpts(pred, q, c, cands, obj, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", obj, workers, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%v: workers=%d result %+v != serial %+v", obj, workers, got, base)
			}
		}
	}
}

// TestOptimizeDeterministicWithOracle repeats the determinism check with
// the real simulator oracle end to end.
func TestOptimizeDeterministicWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	q := testQuery()
	c := testCluster()
	cands := Enumerate(rng, q, c, 12)
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 10, 2
	oracle := &SimOracle{Cfg: cfg}
	base, err := OptimizeOpts(oracle, q, c, cands, MinProcLatency, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, len(cands)} {
		got, err := OptimizeOpts(oracle, q, c, cands, MinProcLatency, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: %+v != %+v", workers, got, base)
		}
	}
}

// TestOptimizeSkipsFailingCandidates verifies the bugfix: one failing
// candidate no longer aborts the search; it is skipped and counted.
func TestOptimizeSkipsFailingCandidates(t *testing.T) {
	q := testQuery()
	c := testCluster()
	pred := &indexedPredictor{
		costs:  []PredCosts{sanely(5), sanely(3), sanely(9)},
		failAt: map[int]bool{1: true},
		// Disable the batch fast path so PredictPlacement's per-candidate
		// errors are what Optimize sees directly.
		batchErr: true,
	}
	res, err := OptimizeOpts(pred, q, c, fakeCandidates(3), MinProcLatency, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 0 {
		t.Errorf("chose %d, want 0 (best scorable)", res.Index)
	}
	if res.Filtered != 1 || res.Errored != 1 {
		t.Errorf("Filtered=%d Errored=%d, want 1/1", res.Filtered, res.Errored)
	}
}

// TestOptimizeAllCandidatesFail: only when every candidate errors does
// Optimize return an error.
func TestOptimizeAllCandidatesFail(t *testing.T) {
	q := testQuery()
	c := testCluster()
	pred := &indexedPredictor{
		costs:    []PredCosts{sanely(1), sanely(2)},
		failAt:   map[int]bool{0: true, 1: true},
		batchErr: true,
	}
	if _, err := OptimizeOpts(pred, q, c, fakeCandidates(2), MinProcLatency, Options{Workers: 2}); err == nil {
		t.Fatal("expected error when every candidate fails")
	}
}

// TestOptimizeBatchFallback: a failing PredictBatch chunk falls back to
// per-candidate scoring instead of losing the whole chunk.
func TestOptimizeBatchFallback(t *testing.T) {
	q := testQuery()
	c := testCluster()
	pred := &indexedPredictor{
		costs:    []PredCosts{sanely(5), sanely(3), sanely(9), sanely(4)},
		batchErr: true,
	}
	res, err := OptimizeOpts(pred, q, c, fakeCandidates(4), MinProcLatency, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 1 {
		t.Errorf("chose %d, want 1", res.Index)
	}
	if pred.batch.Load() == 0 {
		t.Error("PredictBatch was never attempted")
	}
	if pred.serial.Load() != 4 {
		t.Errorf("fallback scored %d candidates serially, want 4", pred.serial.Load())
	}
}

// TestOptimizeUsesBatchPath: a healthy BatchPredictor serves the whole
// search without per-candidate calls.
func TestOptimizeUsesBatchPath(t *testing.T) {
	q := testQuery()
	c := testCluster()
	pred := &indexedPredictor{costs: []PredCosts{sanely(5), sanely(3), sanely(9), sanely(4)}}
	res, err := OptimizeOpts(pred, q, c, fakeCandidates(4), MinProcLatency, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 1 {
		t.Errorf("chose %d, want 1", res.Index)
	}
	if pred.batch.Load() == 0 {
		t.Error("batch path not used")
	}
}

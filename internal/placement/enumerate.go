// Package placement solves the initial operator placement problem with
// COSTREAM-style cost estimates (Section V of the paper): a family of
// search strategies generates candidate placements obeying the
// IoT-scenario rules of Figure 5 (operator co-location allowed, increasing
// computing capability along the data flow, acyclic placements), a
// cost-model-driven budgeted search core selects the best candidate, and
// an online monitoring baseline (after Aniello et al. [1]) provides the
// Exp 2b comparison.
package placement

import (
	"fmt"
	"math/rand"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// generator is the shared candidate-generation substrate: the topological
// order, capability bins and upstream adjacency of one (query, cluster)
// pair plus reusable bitset scratch for the visited/banned host sets. One
// generator serves an entire search run (thousands of draws, validity
// checks and partial-placement expansions) without per-draw allocations;
// it must not be shared across goroutines.
type generator struct {
	q      *stream.Query
	c      *hardware.Cluster
	bins   []hardware.Bin
	caps   []float64 // CapabilityScore per host, for greedy completion
	order  []int     // topological order of the data flow
	ups    [][]int   // upstream operator indices, per operator
	nHosts int

	// visited[v] is the set of hosts op v's output has passed through
	// (valid only for ops placed since the enclosing replay/draw).
	visited []bitset
	// banned marks hosts excluded from every emitted or accepted
	// candidate (cordoned hosts); nil when nothing is banned.
	banned  bitset
	choices []int
	scratch sim.Placement // draw scratch
	comp    sim.Placement // completion scratch
}

func newGenerator(q *stream.Query, c *hardware.Cluster) (*generator, error) {
	order, err := q.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := len(q.Ops)
	g := &generator{
		q:       q,
		c:       c,
		bins:    c.Bins(),
		order:   order,
		ups:     make([][]int, n),
		nHosts:  len(c.Hosts),
		visited: make([]bitset, n),
		scratch: make(sim.Placement, n),
		comp:    make(sim.Placement, n),
	}
	for i := 0; i < n; i++ {
		g.ups[i] = q.Upstream(i)
		g.visited[i] = newBitset(len(c.Hosts))
	}
	g.caps = make([]float64, len(c.Hosts))
	for h, host := range c.Hosts {
		g.caps[h] = host.CapabilityScore()
	}
	return g, nil
}

// ban excludes the given host indices from every candidate the generator
// emits (choicesFor) or accepts (validate). Out-of-range indices are
// ignored; an empty list leaves the generator untouched.
func (g *generator) ban(hosts []int) {
	if len(hosts) == 0 {
		return
	}
	b := newBitset(g.nHosts)
	any := false
	for _, h := range hosts {
		if h >= 0 && h < g.nHosts {
			b.set(h)
			any = true
		}
	}
	if any {
		g.banned = b
	}
}

// choicesFor fills g.choices with the hosts operator v may be placed on,
// in increasing host order, given that every upstream of v is placed in p
// and has a current g.visited set. The three Figure 5 rules:
//
//  1. co-location of multiple operators on one host is allowed,
//  2. along the data flow, host capability bins never decrease,
//  3. once the data flow leaves a host, it never returns to it.
//
// The revisit rule is applied per upstream, exactly as Valid checks it:
// staying on an immediate upstream's host is fine for that branch
// (the flow never left it), but a host any *other* inbound branch has
// already left is banned even when one branch still sits on it. The
// original map-based draw code exempted such hosts globally and could
// emit placements Valid rejects on fan-in (join) operators.
func (g *generator) choicesFor(p sim.Placement, v int) []int {
	minBin := hardware.BinEdge
	for _, u := range g.ups[v] {
		if b := g.bins[p[u]]; b > minBin {
			minBin = b
		}
	}
	g.choices = g.choices[:0]
	for h := 0; h < g.nHosts; h++ {
		if g.bins[h] < minBin {
			continue
		}
		if g.banned != nil && g.banned.has(h) {
			continue
		}
		ok := true
		for _, u := range g.ups[v] {
			if p[u] != h && g.visited[u].has(h) {
				ok = false
				break
			}
		}
		if ok {
			g.choices = append(g.choices, h)
		}
	}
	return g.choices
}

// place assigns host h to operator v and refreshes v's visited set from
// its upstreams (which must be current).
func (g *generator) place(p sim.Placement, v, h int) {
	p[v] = h
	vis := g.visited[v]
	vis.clear()
	vis.set(h)
	for _, u := range g.ups[v] {
		vis.orWith(g.visited[u])
	}
}

// replay refreshes the visited scratch for the placement prefix covering
// the first d topological positions of p.
func (g *generator) replay(p sim.Placement, d int) {
	for t := 0; t < d; t++ {
		v := g.order[t]
		g.place(p, v, p[v])
	}
}

// tryDraw attempts one random placement draw. The returned slice is
// generator scratch: copy before retaining. The host-choice scan order and
// rng consumption are identical to the original map-based implementation,
// so draws are bit-for-bit reproducible against it for any seed.
func (g *generator) tryDraw(rng *rand.Rand) (sim.Placement, bool) {
	p := g.scratch
	for i := range p {
		p[i] = -1
	}
	for _, v := range g.order {
		choices := g.choicesFor(p, v)
		if len(choices) == 0 {
			return nil, false
		}
		g.place(p, v, choices[rng.Intn(len(choices))])
	}
	return p, true
}

// randomValidAttempts bounds the dead-end retries of one random draw.
const randomValidAttempts = 64

// randomValid draws one valid placement, retrying dead ends. The returned
// slice is generator scratch: copy before retaining.
func (g *generator) randomValid(rng *rand.Rand) (sim.Placement, bool) {
	for a := 0; a < randomValidAttempts; a++ {
		if p, ok := g.tryDraw(rng); ok {
			return p, true
		}
	}
	return nil, false
}

// validate reports whether p satisfies the Figure 5 rules and avoids
// every banned host.
func (g *generator) validate(p sim.Placement) bool {
	if p.Validate(g.q, g.c) != nil {
		return false
	}
	if g.banned != nil {
		for _, h := range p {
			if h >= 0 && h < g.nHosts && g.banned.has(h) {
				return false
			}
		}
	}
	for _, v := range g.order {
		h := p[v]
		for _, u := range g.ups[v] {
			if g.bins[p[u]] > g.bins[h] {
				return false // capability decreased along the flow
			}
			if p[u] != h && g.visited[u].has(h) {
				return false // returned to a previously visited host
			}
		}
		g.place(p, v, h)
	}
	return true
}

// completeGreedy extends the placement prefix covering the first d
// topological positions of p into a full valid placement: each remaining
// operator stays on its most capable immediate-upstream host (co-location,
// zero network cost), and operators without upstreams (later sources) take
// the most capable valid host. The input is not modified; the result is
// freshly allocated. Completion fails only when the prefix has painted the
// remaining flow into a corner (every admissible host already visited).
func (g *generator) completeGreedy(p sim.Placement, d int) (sim.Placement, bool) {
	copy(g.comp, p)
	g.replay(g.comp, d)
	for t := d; t < len(g.order); t++ {
		v := g.order[t]
		choices := g.choicesFor(g.comp, v)
		if len(choices) == 0 {
			return nil, false
		}
		g.place(g.comp, v, g.greedyPick(g.comp, v, choices))
	}
	return append(sim.Placement(nil), g.comp...), true
}

// greedyPick selects the completion host for v: the most capable
// immediate-upstream host still admissible (co-location), else the most
// capable valid choice. Ties break toward the lower host index, keeping
// completion fully deterministic.
func (g *generator) greedyPick(p sim.Placement, v int, choices []int) int {
	best := -1
	for _, u := range g.ups[v] {
		h := p[u]
		if best < 0 || g.caps[h] > g.caps[best] || (g.caps[h] == g.caps[best] && h < best) {
			best = h
		}
	}
	if best >= 0 {
		for _, h := range choices {
			if h == best {
				return h
			}
		}
	}
	best = choices[0]
	for _, h := range choices[1:] {
		if g.caps[h] > g.caps[best] {
			best = h
		}
	}
	return best
}

// RandomValid draws one placement satisfying the three heuristic rules of
// Figure 5 (see generator.choicesFor). It retries on dead ends and reports
// an error when the cluster cannot satisfy the rules for this query.
func RandomValid(rng *rand.Rand, q *stream.Query, c *hardware.Cluster) (sim.Placement, error) {
	g, err := newGenerator(q, c)
	if err != nil {
		return nil, err
	}
	if p, ok := g.randomValid(rng); ok {
		return append(sim.Placement(nil), p...), nil
	}
	return nil, fmt.Errorf("placement: no valid placement found for %d ops on %d hosts",
		len(q.Ops), len(c.Hosts))
}

// Valid reports whether a placement satisfies the Figure 5 rules.
func Valid(q *stream.Query, c *hardware.Cluster, p sim.Placement) bool {
	g, err := newGenerator(q, c)
	if err != nil {
		return false
	}
	return g.validate(p)
}

// Enumerate draws up to k distinct valid placement candidates. Fewer than
// k are returned when the space is smaller or repeatedly sampled: both
// duplicate draws and failed draws (no valid placement found within the
// retry bound) consume the shared miss budget, so a cluster that only
// rarely admits valid placements cannot stall enumeration.
func Enumerate(rng *rand.Rand, q *stream.Query, c *hardware.Cluster, k int) []sim.Placement {
	g, err := newGenerator(q, c)
	if err != nil {
		return nil
	}
	seen := make(map[string]bool, k)
	var key []byte
	var out []sim.Placement
	misses := 0
	for len(out) < k && misses < 8*k+64 {
		p, ok := g.randomValid(rng)
		if !ok {
			misses++
			continue
		}
		key = appendPlacementKey(key[:0], p)
		if seen[string(key)] {
			misses++
			continue
		}
		seen[string(key)] = true
		out = append(out, append(sim.Placement(nil), p...))
	}
	return out
}

// Package placement solves the initial operator placement problem with
// COSTREAM-style cost estimates (Section V of the paper): a heuristic
// enumeration strategy generates candidate placements obeying the
// IoT-scenario rules of Figure 5 (operator co-location allowed, increasing
// computing capability along the data flow, acyclic placements), a
// cost-model-driven optimizer selects the best candidate, and an online
// monitoring baseline (after Aniello et al. [1]) provides the Exp 2b
// comparison.
package placement

import (
	"fmt"
	"math/rand"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// RandomValid draws one placement satisfying the three heuristic rules of
// Figure 5:
//
//  1. co-location of multiple operators on one host is allowed,
//  2. along the data flow, host capability bins never decrease,
//  3. once the data flow leaves a host, it never returns to it.
//
// It retries on dead ends and reports an error when the cluster cannot
// satisfy the rules for this query.
func RandomValid(rng *rand.Rand, q *stream.Query, c *hardware.Cluster) (sim.Placement, error) {
	const attempts = 64
	bins := c.Bins()
	order, err := q.TopoOrder()
	if err != nil {
		return nil, err
	}
	for a := 0; a < attempts; a++ {
		p, ok := tryPlacement(rng, q, c, bins, order)
		if ok {
			return p, nil
		}
	}
	return nil, fmt.Errorf("placement: no valid placement found for %d ops on %d hosts",
		len(q.Ops), len(c.Hosts))
}

func tryPlacement(rng *rand.Rand, q *stream.Query, c *hardware.Cluster, bins []hardware.Bin, order []int) (sim.Placement, bool) {
	n := len(q.Ops)
	p := make(sim.Placement, n)
	for i := range p {
		p[i] = -1
	}
	// visited[i] is the set of hosts the data of op i's output has passed
	// through, for the acyclicity rule.
	visited := make([]map[int]bool, n)
	for _, v := range order {
		ups := q.Upstream(v)
		minBin := hardware.BinEdge
		banned := map[int]bool{}
		allowedSame := map[int]bool{}
		for _, u := range ups {
			h := p[u]
			if bins[h] > minBin {
				minBin = bins[h]
			}
			allowedSame[h] = true
			for hv := range visited[u] {
				banned[hv] = true
			}
		}
		var choices []int
		for h := range c.Hosts {
			if bins[h] < minBin {
				continue
			}
			// Staying on an immediate upstream host is always fine
			// (co-location); revisiting an earlier host is not.
			if banned[h] && !allowedSame[h] {
				continue
			}
			choices = append(choices, h)
		}
		if len(choices) == 0 {
			return nil, false
		}
		h := choices[rng.Intn(len(choices))]
		p[v] = h
		vis := map[int]bool{h: true}
		for _, u := range ups {
			for hv := range visited[u] {
				vis[hv] = true
			}
		}
		visited[v] = vis
	}
	return p, true
}

// Valid reports whether a placement satisfies the Figure 5 rules.
func Valid(q *stream.Query, c *hardware.Cluster, p sim.Placement) bool {
	if p.Validate(q, c) != nil {
		return false
	}
	bins := c.Bins()
	order, err := q.TopoOrder()
	if err != nil {
		return false
	}
	visited := make([]map[int]bool, len(q.Ops))
	for _, v := range order {
		h := p[v]
		vis := map[int]bool{h: true}
		for _, u := range q.Upstream(v) {
			if bins[p[u]] > bins[h] {
				return false // capability decreased along the flow
			}
			if p[u] != h && visited[u][h] {
				return false // returned to a previously visited host
			}
			for hv := range visited[u] {
				vis[hv] = true
			}
		}
		visited[v] = vis
	}
	return true
}

// Enumerate draws up to k distinct valid placement candidates. Fewer than
// k are returned when the space is smaller or repeatedly sampled.
func Enumerate(rng *rand.Rand, q *stream.Query, c *hardware.Cluster, k int) []sim.Placement {
	seen := make(map[string]bool, k)
	var out []sim.Placement
	misses := 0
	for len(out) < k && misses < 8*k+64 {
		p, err := RandomValid(rng, q, c)
		if err != nil {
			break
		}
		key := fmt.Sprint([]int(p))
		if seen[key] {
			misses++
			continue
		}
		seen[key] = true
		out = append(out, p)
	}
	return out
}

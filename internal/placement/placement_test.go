package placement

import (
	"math/rand"
	"testing"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

func testQuery() *stream.Query {
	b := stream.NewBuilder()
	s1 := b.AddSource(500, []stream.DataType{stream.TypeInt, stream.TypeDouble})
	f1 := b.AddFilter(stream.FilterGT, stream.TypeInt, 0.5)
	s2 := b.AddSource(500, []stream.DataType{stream.TypeInt, stream.TypeInt})
	j := b.AddJoin(stream.TypeInt, stream.Window{Type: stream.WindowTumbling, Policy: stream.WindowCountBased, Size: 40, Slide: 40}, 0.001)
	k := b.AddSink()
	b.Connect(s1, f1).Connect(f1, j).Connect(s2, j).Connect(j, k)
	return b.MustBuild()
}

func testCluster() *hardware.Cluster {
	return &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "edge-0", CPU: 50, RAMMB: 1000, NetLatencyMS: 80, NetBandwidthMbps: 50},
		{ID: "edge-1", CPU: 100, RAMMB: 2000, NetLatencyMS: 40, NetBandwidthMbps: 100},
		{ID: "fog-0", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
		{ID: "cloud-0", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
}

func TestRandomValidSatisfiesRules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := testQuery()
	c := testCluster()
	for i := 0; i < 100; i++ {
		p, err := RandomValid(rng, q, c)
		if err != nil {
			t.Fatal(err)
		}
		if !Valid(q, c, p) {
			t.Fatalf("RandomValid produced invalid placement %v", p)
		}
	}
}

func TestValidRejectsCapabilityDecrease(t *testing.T) {
	q := testQuery()
	c := testCluster()
	// Sink (cloud-capable data end) on edge after fog: source chain
	// cloud -> edge violates increasing capability.
	p := sim.Placement{3, 3, 3, 3, 0} // everything on cloud, sink on weakest edge
	if Valid(q, c, p) {
		t.Error("placement with capability decrease accepted")
	}
}

func TestValidRejectsRevisit(t *testing.T) {
	b := stream.NewBuilder()
	s := b.AddSource(100, []stream.DataType{stream.TypeInt})
	f1 := b.AddFilter(stream.FilterGT, stream.TypeInt, 0.5)
	f2 := b.AddFilter(stream.FilterLT, stream.TypeInt, 0.5)
	k := b.AddSink()
	b.Chain(s, f1, f2, k)
	q := b.MustBuild()
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "fog-a", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
		{ID: "fog-b", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
	}}
	// a -> b -> a: returns to a previously visited host.
	if Valid(q, c, sim.Placement{0, 1, 0, 0}) {
		t.Error("cyclic host sequence accepted")
	}
	// a -> a -> b -> b is fine (co-location + forward move).
	if !Valid(q, c, sim.Placement{0, 0, 1, 1}) {
		t.Error("valid forward placement rejected")
	}
}

func TestValidAllowsCoLocation(t *testing.T) {
	q := testQuery()
	c := testCluster()
	p := sim.Placement{3, 3, 3, 3, 3}
	if !Valid(q, c, p) {
		t.Error("all-on-cloud co-location should be valid")
	}
}

func TestEnumerateDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := testQuery()
	c := testCluster()
	cands := Enumerate(rng, q, c, 20)
	if len(cands) < 5 {
		t.Fatalf("only %d candidates enumerated", len(cands))
	}
	seen := map[string]bool{}
	for _, p := range cands {
		key := ""
		for _, h := range p {
			key += string(rune('a' + h))
		}
		if seen[key] {
			t.Fatalf("duplicate candidate %v", p)
		}
		seen[key] = true
		if !Valid(q, c, p) {
			t.Fatalf("invalid candidate %v", p)
		}
	}
}

func TestEnumerateImpossible(t *testing.T) {
	q := testQuery()
	// All hosts in the edge bin but data must flow upward: still legal
	// (same-bin transitions allowed), so use an empty-ish failing case:
	// no hosts at all cannot happen (cluster validation), so check that a
	// 1-host cluster still yields the all-on-one placement.
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "only", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
	cands := Enumerate(rand.New(rand.NewSource(3)), q, c, 10)
	if len(cands) != 1 {
		t.Fatalf("single-host cluster should have exactly 1 candidate, got %d", len(cands))
	}
}

func TestOptimizeWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := testQuery()
	c := testCluster()
	cands := Enumerate(rng, q, c, 16)
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 20, 4
	oracle := &SimOracle{Cfg: cfg}
	res, err := Optimize(oracle, q, c, cands, MinProcLatency)
	if err != nil {
		t.Fatal(err)
	}
	// The oracle-chosen placement must be at least as good as every sane
	// candidate it scored.
	for _, p := range cands {
		pc, err := oracle.PredictPlacement(q, c, p)
		if err != nil {
			t.Fatal(err)
		}
		if pc.Success && !pc.Backpressured && pc.ProcLatencyMS < res.Costs.ProcLatencyMS-1e-9 {
			t.Errorf("candidate %v beats chosen placement: %v < %v", p, pc.ProcLatencyMS, res.Costs.ProcLatencyMS)
		}
	}
}

func TestOptimizeObjectives(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := testQuery()
	c := testCluster()
	cands := Enumerate(rng, q, c, 8)
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 10, 2
	oracle := &SimOracle{Cfg: cfg}
	for _, obj := range []Objective{MinProcLatency, MinE2ELatency, MaxThroughput} {
		res, err := Optimize(oracle, q, c, cands, obj)
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		if res.Placement == nil {
			t.Fatalf("%v: nil placement", obj)
		}
	}
	if _, err := Optimize(oracle, q, c, nil, MinProcLatency); err == nil {
		t.Error("empty candidate list accepted")
	}
}

type fixedPredictor struct{ costs []PredCosts }

func (f *fixedPredictor) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (PredCosts, error) {
	idx := int(p[0])
	return f.costs[idx], nil
}

func TestOptimizeSanityFilter(t *testing.T) {
	q := testQuery()
	c := testCluster()
	// Fake candidates distinguished by first entry.
	cands := []sim.Placement{
		{0, 0, 0, 0, 0},
		{1, 1, 1, 1, 1},
		{2, 2, 2, 2, 2},
	}
	pred := &fixedPredictor{costs: []PredCosts{
		{ProcLatencyMS: 1, Success: false, Backpressured: false}, // cheapest but fails
		{ProcLatencyMS: 5, Success: true, Backpressured: true},   // backpressured
		{ProcLatencyMS: 9, Success: true, Backpressured: false},  // sane
	}}
	res, err := Optimize(pred, q, c, cands, MinProcLatency)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 2 {
		t.Errorf("chose candidate %d, want 2 (only sane one)", res.Index)
	}
	if res.Filtered != 2 {
		t.Errorf("Filtered = %d, want 2", res.Filtered)
	}
	// All candidates insane: fall back to cheapest.
	pred.costs[2].Success = false
	res, err = Optimize(pred, q, c, cands, MinProcLatency)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 0 {
		t.Errorf("fallback chose %d, want 0 (cheapest)", res.Index)
	}
}

func TestOnlineMonitoringImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := testQuery()
	c := testCluster()
	// Deliberately poor but valid initial placement: everything on the
	// weakest fog-capable chain start.
	var initial sim.Placement
	for i := 0; i < 50; i++ {
		p, err := RandomValid(rng, q, c)
		if err != nil {
			t.Fatal(err)
		}
		initial = p
		break
	}
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 20, 4
	mcfg := DefaultMonitorConfig(cfg)
	steps, err := OnlineMonitoring(q, c, initial, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no monitoring steps")
	}
	if steps[0].ElapsedS != 0 {
		t.Error("first step must be at time 0")
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].ElapsedS <= steps[i-1].ElapsedS {
			t.Error("elapsed time must increase")
		}
		if !Valid(q, c, steps[i].Placement) {
			t.Errorf("step %d placement invalid", i)
		}
	}
	last := steps[len(steps)-1].Metrics
	first := steps[0].Metrics
	if last.Success && first.Success && last.ProcLatencyMS > first.ProcLatencyMS*1.001 {
		t.Errorf("monitoring made latency worse: %v -> %v", first.ProcLatencyMS, last.ProcLatencyMS)
	}
}

func TestObjectiveString(t *testing.T) {
	if MinProcLatency.String() == "" || MaxThroughput.String() == "" || Objective(99).String() == "" {
		t.Error("objective strings must be non-empty")
	}
}

// TestValidSingleHostCluster: with one host everything co-locates; all
// three rules hold trivially and the generator finds the placement.
func TestValidSingleHostCluster(t *testing.T) {
	q := testQuery()
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "only", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
	if !Valid(q, c, sim.Placement{0, 0, 0, 0, 0}) {
		t.Error("all-on-single-host placement rejected")
	}
	p, err := RandomValid(rand.New(rand.NewSource(1)), q, c)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range p {
		if h != 0 {
			t.Fatalf("op %d placed on host %d in a single-host cluster", i, h)
		}
	}
}

// diamondQuery builds the fan-out/fan-in placement-graph shape: two source
// branches (one with an intermediate filter) converging on a join.
func diamondQuery() *stream.Query {
	b := stream.NewBuilder()
	s1 := b.AddSource(100, []stream.DataType{stream.TypeInt})
	f1 := b.AddFilter(stream.FilterGT, stream.TypeInt, 0.5)
	s2 := b.AddSource(100, []stream.DataType{stream.TypeInt})
	j := b.AddJoin(stream.TypeInt, stream.Window{Type: stream.WindowTumbling, Policy: stream.WindowCountBased, Size: 10, Slide: 10}, 0.01)
	k := b.AddSink()
	b.Connect(s1, f1).Connect(f1, j).Connect(s2, j).Connect(j, k)
	return b.MustBuild()
}

// TestValidDiamondRevisit pins the per-upstream acyclicity semantics on
// fan-in: a join may co-locate with an upstream whose flow still sits on
// the host, but not on a host another inbound branch has already left —
// even if a different upstream currently occupies it.
func TestValidDiamondRevisit(t *testing.T) {
	q := diamondQuery() // ops: s1=0 f1=1 s2=2 j=3 k=4
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "fog-a", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
		{ID: "fog-b", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
		{ID: "fog-c", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
	}}
	// Branch s1->f1 leaves host 0; s2 sits on host 0. Joining on host 0
	// returns s1's flow to a host it already left: invalid, even though
	// the join would co-locate with its immediate upstream s2.
	if Valid(q, c, sim.Placement{0, 1, 0, 0, 0}) {
		t.Error("join revisiting a host one branch already left was accepted")
	}
	// Joining on f1's host is plain co-location for that branch and a
	// first visit for s2's branch: valid.
	if !Valid(q, c, sim.Placement{0, 1, 2, 1, 1}) {
		t.Error("valid fan-in co-location rejected")
	}
	// Joining on a fresh host is always fine.
	if !Valid(q, c, sim.Placement{0, 1, 0, 2, 2}) {
		t.Error("fan-in onto a fresh host rejected")
	}
	// The generator must never emit placements Valid rejects (regression:
	// the original draw code allowed the first case above).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		p, err := RandomValid(rng, q, c)
		if err != nil {
			t.Fatal(err)
		}
		if !Valid(q, c, p) {
			t.Fatalf("draw %d: RandomValid produced invalid placement %v", i, p)
		}
	}
}

// TestValidCapabilityBinBoundaries: the monotonicity rule compares bins,
// not raw capability. A strong edge host (more CPU than a weak fog host,
// capability score just under the bin threshold) may feed the weak fog
// host, but never the reverse; within one bin both directions are fine.
func TestValidCapabilityBinBoundaries(t *testing.T) {
	strongEdge := &hardware.Host{ID: "strong-edge", CPU: 400, RAMMB: 1000, NetLatencyMS: 40, NetBandwidthMbps: 100}
	weakFog := &hardware.Host{ID: "weak-fog", CPU: 200, RAMMB: 8000, NetLatencyMS: 20, NetBandwidthMbps: 200}
	weakFog2 := &hardware.Host{ID: "weak-fog-2", CPU: 200, RAMMB: 8000, NetLatencyMS: 20, NetBandwidthMbps: 200}
	if got := hardware.Classify(strongEdge); got != hardware.BinEdge {
		t.Fatalf("strong-edge classified as %v (score %.3f), want edge", got, strongEdge.CapabilityScore())
	}
	if got := hardware.Classify(weakFog); got != hardware.BinFog {
		t.Fatalf("weak-fog classified as %v (score %.3f), want fog", got, weakFog.CapabilityScore())
	}
	b := stream.NewBuilder()
	s := b.AddSource(100, []stream.DataType{stream.TypeInt})
	f := b.AddFilter(stream.FilterGT, stream.TypeInt, 0.5)
	k := b.AddSink()
	b.Chain(s, f, k)
	q := b.MustBuild()

	c := &hardware.Cluster{Hosts: []*hardware.Host{strongEdge, weakFog, weakFog2}}
	if !Valid(q, c, sim.Placement{0, 1, 1}) {
		t.Error("edge -> fog transition rejected at the bin boundary")
	}
	if Valid(q, c, sim.Placement{1, 0, 0}) {
		t.Error("fog -> edge transition accepted despite the bin decrease")
	}
	// Same bin both ways: capability within a bin may go "down".
	if !Valid(q, c, sim.Placement{1, 2, 2}) || !Valid(q, c, sim.Placement{2, 1, 1}) {
		t.Error("same-bin transitions must be allowed in both directions")
	}
}

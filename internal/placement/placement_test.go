package placement

import (
	"math/rand"
	"testing"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

func testQuery() *stream.Query {
	b := stream.NewBuilder()
	s1 := b.AddSource(500, []stream.DataType{stream.TypeInt, stream.TypeDouble})
	f1 := b.AddFilter(stream.FilterGT, stream.TypeInt, 0.5)
	s2 := b.AddSource(500, []stream.DataType{stream.TypeInt, stream.TypeInt})
	j := b.AddJoin(stream.TypeInt, stream.Window{Type: stream.WindowTumbling, Policy: stream.WindowCountBased, Size: 40, Slide: 40}, 0.001)
	k := b.AddSink()
	b.Connect(s1, f1).Connect(f1, j).Connect(s2, j).Connect(j, k)
	return b.MustBuild()
}

func testCluster() *hardware.Cluster {
	return &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "edge-0", CPU: 50, RAMMB: 1000, NetLatencyMS: 80, NetBandwidthMbps: 50},
		{ID: "edge-1", CPU: 100, RAMMB: 2000, NetLatencyMS: 40, NetBandwidthMbps: 100},
		{ID: "fog-0", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
		{ID: "cloud-0", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
}

func TestRandomValidSatisfiesRules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := testQuery()
	c := testCluster()
	for i := 0; i < 100; i++ {
		p, err := RandomValid(rng, q, c)
		if err != nil {
			t.Fatal(err)
		}
		if !Valid(q, c, p) {
			t.Fatalf("RandomValid produced invalid placement %v", p)
		}
	}
}

func TestValidRejectsCapabilityDecrease(t *testing.T) {
	q := testQuery()
	c := testCluster()
	// Sink (cloud-capable data end) on edge after fog: source chain
	// cloud -> edge violates increasing capability.
	p := sim.Placement{3, 3, 3, 3, 0} // everything on cloud, sink on weakest edge
	if Valid(q, c, p) {
		t.Error("placement with capability decrease accepted")
	}
}

func TestValidRejectsRevisit(t *testing.T) {
	b := stream.NewBuilder()
	s := b.AddSource(100, []stream.DataType{stream.TypeInt})
	f1 := b.AddFilter(stream.FilterGT, stream.TypeInt, 0.5)
	f2 := b.AddFilter(stream.FilterLT, stream.TypeInt, 0.5)
	k := b.AddSink()
	b.Chain(s, f1, f2, k)
	q := b.MustBuild()
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "fog-a", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
		{ID: "fog-b", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
	}}
	// a -> b -> a: returns to a previously visited host.
	if Valid(q, c, sim.Placement{0, 1, 0, 0}) {
		t.Error("cyclic host sequence accepted")
	}
	// a -> a -> b -> b is fine (co-location + forward move).
	if !Valid(q, c, sim.Placement{0, 0, 1, 1}) {
		t.Error("valid forward placement rejected")
	}
}

func TestValidAllowsCoLocation(t *testing.T) {
	q := testQuery()
	c := testCluster()
	p := sim.Placement{3, 3, 3, 3, 3}
	if !Valid(q, c, p) {
		t.Error("all-on-cloud co-location should be valid")
	}
}

func TestEnumerateDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := testQuery()
	c := testCluster()
	cands := Enumerate(rng, q, c, 20)
	if len(cands) < 5 {
		t.Fatalf("only %d candidates enumerated", len(cands))
	}
	seen := map[string]bool{}
	for _, p := range cands {
		key := ""
		for _, h := range p {
			key += string(rune('a' + h))
		}
		if seen[key] {
			t.Fatalf("duplicate candidate %v", p)
		}
		seen[key] = true
		if !Valid(q, c, p) {
			t.Fatalf("invalid candidate %v", p)
		}
	}
}

func TestEnumerateImpossible(t *testing.T) {
	q := testQuery()
	// All hosts in the edge bin but data must flow upward: still legal
	// (same-bin transitions allowed), so use an empty-ish failing case:
	// no hosts at all cannot happen (cluster validation), so check that a
	// 1-host cluster still yields the all-on-one placement.
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "only", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
	cands := Enumerate(rand.New(rand.NewSource(3)), q, c, 10)
	if len(cands) != 1 {
		t.Fatalf("single-host cluster should have exactly 1 candidate, got %d", len(cands))
	}
}

func TestOptimizeWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := testQuery()
	c := testCluster()
	cands := Enumerate(rng, q, c, 16)
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 20, 4
	oracle := &SimOracle{Cfg: cfg}
	res, err := Optimize(oracle, q, c, cands, MinProcLatency)
	if err != nil {
		t.Fatal(err)
	}
	// The oracle-chosen placement must be at least as good as every sane
	// candidate it scored.
	for _, p := range cands {
		pc, err := oracle.PredictPlacement(q, c, p)
		if err != nil {
			t.Fatal(err)
		}
		if pc.Success && !pc.Backpressured && pc.ProcLatencyMS < res.Costs.ProcLatencyMS-1e-9 {
			t.Errorf("candidate %v beats chosen placement: %v < %v", p, pc.ProcLatencyMS, res.Costs.ProcLatencyMS)
		}
	}
}

func TestOptimizeObjectives(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := testQuery()
	c := testCluster()
	cands := Enumerate(rng, q, c, 8)
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 10, 2
	oracle := &SimOracle{Cfg: cfg}
	for _, obj := range []Objective{MinProcLatency, MinE2ELatency, MaxThroughput} {
		res, err := Optimize(oracle, q, c, cands, obj)
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		if res.Placement == nil {
			t.Fatalf("%v: nil placement", obj)
		}
	}
	if _, err := Optimize(oracle, q, c, nil, MinProcLatency); err == nil {
		t.Error("empty candidate list accepted")
	}
}

type fixedPredictor struct{ costs []PredCosts }

func (f *fixedPredictor) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (PredCosts, error) {
	idx := int(p[0])
	return f.costs[idx], nil
}

func TestOptimizeSanityFilter(t *testing.T) {
	q := testQuery()
	c := testCluster()
	// Fake candidates distinguished by first entry.
	cands := []sim.Placement{
		{0, 0, 0, 0, 0},
		{1, 1, 1, 1, 1},
		{2, 2, 2, 2, 2},
	}
	pred := &fixedPredictor{costs: []PredCosts{
		{ProcLatencyMS: 1, Success: false, Backpressured: false}, // cheapest but fails
		{ProcLatencyMS: 5, Success: true, Backpressured: true},   // backpressured
		{ProcLatencyMS: 9, Success: true, Backpressured: false},  // sane
	}}
	res, err := Optimize(pred, q, c, cands, MinProcLatency)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 2 {
		t.Errorf("chose candidate %d, want 2 (only sane one)", res.Index)
	}
	if res.Filtered != 2 {
		t.Errorf("Filtered = %d, want 2", res.Filtered)
	}
	// All candidates insane: fall back to cheapest.
	pred.costs[2].Success = false
	res, err = Optimize(pred, q, c, cands, MinProcLatency)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 0 {
		t.Errorf("fallback chose %d, want 0 (cheapest)", res.Index)
	}
}

func TestOnlineMonitoringImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := testQuery()
	c := testCluster()
	// Deliberately poor but valid initial placement: everything on the
	// weakest fog-capable chain start.
	var initial sim.Placement
	for i := 0; i < 50; i++ {
		p, err := RandomValid(rng, q, c)
		if err != nil {
			t.Fatal(err)
		}
		initial = p
		break
	}
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 20, 4
	mcfg := DefaultMonitorConfig(cfg)
	steps, err := OnlineMonitoring(rng, q, c, initial, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no monitoring steps")
	}
	if steps[0].ElapsedS != 0 {
		t.Error("first step must be at time 0")
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].ElapsedS <= steps[i-1].ElapsedS {
			t.Error("elapsed time must increase")
		}
		if !Valid(q, c, steps[i].Placement) {
			t.Errorf("step %d placement invalid", i)
		}
	}
	last := steps[len(steps)-1].Metrics
	first := steps[0].Metrics
	if last.Success && first.Success && last.ProcLatencyMS > first.ProcLatencyMS*1.001 {
		t.Errorf("monitoring made latency worse: %v -> %v", first.ProcLatencyMS, last.ProcLatencyMS)
	}
}

func TestObjectiveString(t *testing.T) {
	if MinProcLatency.String() == "" || MaxThroughput.String() == "" || Objective(99).String() == "" {
		t.Error("objective strings must be non-empty")
	}
}

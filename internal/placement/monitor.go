package placement

import (
	"context"
	"sort"
	"sync"

	"costream/internal/hardware"
	"costream/internal/obs"
	"costream/internal/qerror"
	"costream/internal/sim"
	"costream/internal/stream"
)

// MonitorConfig parameterizes the online monitoring baseline (Exp 2b,
// following the adaptive Storm scheduler of Aniello et al. [1]).
type MonitorConfig struct {
	// IntervalS is the monitoring window before each rescheduling
	// decision: runtime statistics must stabilize first.
	IntervalS float64
	// MigrationCostS is the downtime cost of moving one operator and its
	// state between hosts.
	MigrationCostS float64
	// MaxSteps bounds the number of rescheduling rounds.
	MaxSteps int
	// SimCfg configures the underlying execution simulator.
	SimCfg sim.Config
	// Predictor, when non-nil, scores every placement the monitor
	// activates so observed-vs-predicted divergence is tracked: each
	// MonitorStep carries the prediction and the q-errors land in the
	// costream_monitor_qerror metric family of the default registry. It
	// never influences the monitor's decisions, which follow observed
	// runtime statistics only.
	Predictor Predictor
}

// DefaultMonitorConfig mirrors the paper's observation that monitoring
// needs tens of seconds per adjustment: 15 s monitoring windows and 8 s
// migration pauses.
func DefaultMonitorConfig(simCfg sim.Config) MonitorConfig {
	return MonitorConfig{IntervalS: 15, MigrationCostS: 8, MaxSteps: 8, SimCfg: simCfg}
}

// MonitorStep is one state of the online monitoring trajectory.
type MonitorStep struct {
	Placement sim.Placement
	Metrics   *sim.Metrics
	// ElapsedS is the wall-clock time since query start at which this
	// placement became active (monitoring intervals plus migrations).
	ElapsedS float64
	// Predicted holds the cost model's estimate for this placement when
	// MonitorConfig.Predictor was set; nil otherwise (including when the
	// prediction errored).
	Predicted *PredCosts
}

// OnlineMonitoring simulates the monitoring-and-rescheduling loop: start
// from an initial heuristic placement, observe runtime statistics, then
// greedily migrate the heaviest operator off the most loaded host onto the
// least loaded feasible host, paying monitoring and migration overhead per
// round. The trajectory of placements and metrics is returned, first entry
// being the initial placement at time 0.
//
// The monitor itself draws no randomness: given the simulator seed in
// cfg.SimCfg the trajectory is fully deterministic (the greedy move
// selection breaks ties by operator/host index).
func OnlineMonitoring(q *stream.Query, c *hardware.Cluster, initial sim.Placement, cfg MonitorConfig) ([]MonitorStep, error) {
	return OnlineMonitoringCtx(context.Background(), q, c, initial, cfg)
}

// OnlineMonitoringCtx is OnlineMonitoring bounded by a context, mirroring
// SearchCtx semantics: cancellation stops the loop at the next monitoring
// window and returns the partial trajectory without error. Only a monitor
// cancelled before its initial observation fails, returning ctx.Err().
func OnlineMonitoringCtx(ctx context.Context, q *stream.Query, c *hardware.Cluster, initial sim.Placement, cfg MonitorConfig) ([]MonitorStep, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cur := append(sim.Placement(nil), initial...)
	m, err := sim.Run(q, c, cur, cfg.SimCfg)
	if err != nil {
		return nil, err
	}
	steps := []MonitorStep{{Placement: cur, Metrics: m, ElapsedS: 0,
		Predicted: predictStep(q, c, cur, m, cfg.Predictor)}}
	elapsed := 0.0
	// Moves that were tried and reverted; the scheduler does not repeat
	// them (it keeps its migration history, as in [1]).
	banned := map[[2]int]bool{}
	for step := 0; step < cfg.MaxSteps; step++ {
		if ctx.Err() != nil {
			break
		}
		elapsed += cfg.IntervalS
		last := steps[len(steps)-1]
		next, move, moved := rebalanceOnce(q, c, last.Placement, last.Metrics, banned)
		if !moved {
			break
		}
		elapsed += cfg.MigrationCostS
		nm, err := sim.Run(q, c, next, cfg.SimCfg)
		if err != nil {
			return nil, err
		}
		// A move is kept only if the runtime statistics improved;
		// otherwise the scheduler reverts it (paying the migration) and
		// tries a different move in the next monitoring window.
		if !better(nm, last.Metrics) {
			banned[move] = true
			monitorMet().reverts.Inc()
			elapsed += cfg.MigrationCostS // migrating back
			steps = append(steps, MonitorStep{Placement: last.Placement, Metrics: last.Metrics, ElapsedS: elapsed, Predicted: last.Predicted})
			continue
		}
		monitorMet().migrations.Inc()
		steps = append(steps, MonitorStep{Placement: next, Metrics: nm, ElapsedS: elapsed,
			Predicted: predictStep(q, c, next, nm, cfg.Predictor)})
	}
	return steps, nil
}

// predictStep scores one activated placement with the optional monitor
// predictor and records the observed-vs-predicted divergence (q-error of
// throughput and processing latency) into the default registry. A nil
// predictor or a prediction error yields nil without failing the monitor.
func predictStep(q *stream.Query, c *hardware.Cluster, p sim.Placement, m *sim.Metrics, pred Predictor) *PredCosts {
	monitorMet().steps.Inc()
	if pred == nil {
		return nil
	}
	costs, err := pred.PredictPlacement(q, c, p)
	if err != nil {
		return nil
	}
	met := monitorMet()
	recordQError(met.qerrLatency, costs.ProcLatencyMS, m.ProcLatencyMS)
	recordQError(met.qerrThroughput, costs.ThroughputTPS, m.ThroughputTPS)
	return &costs
}

// RecordQErrors compares a live placement's observed runtime statistics
// against the costs predicted when it was activated — the same q-error
// machinery OnlineMonitoring feeds — records both divergences into the
// costream_monitor_qerror families of the default registry, and returns
// the throughput and processing-latency q-errors (each >= 1). The fleet
// simulator's drift detector is built on this.
func RecordQErrors(pred PredCosts, observed *sim.Metrics) (qThroughput, qProcLatency float64) {
	met := monitorMet()
	recordQError(met.qerrLatency, pred.ProcLatencyMS, observed.ProcLatencyMS)
	recordQError(met.qerrThroughput, pred.ThroughputTPS, observed.ThroughputTPS)
	return qerror.Q(observed.ThroughputTPS, pred.ThroughputTPS),
		qerror.Q(observed.ProcLatencyMS, pred.ProcLatencyMS)
}

// recordQError records max(pred/obs, obs/pred) in milli-units (the
// histogram exposes base units via scale 1e-3), skipping non-positive
// pairs where the ratio is undefined.
func recordQError(h *obs.Histogram, pred, observed float64) {
	if pred <= 0 || observed <= 0 {
		return
	}
	qerr := pred / observed
	if qerr < 1 {
		qerr = 1 / qerr
	}
	h.Record(int64(qerr * 1e3))
}

// monitorMetrics aggregates online-monitoring activity in the default
// registry.
type monitorMetrics struct {
	steps      *obs.Counter
	migrations *obs.Counter
	reverts    *obs.Counter

	qerrLatency    *obs.Histogram
	qerrThroughput *obs.Histogram
}

var monitorMet = sync.OnceValue(func() *monitorMetrics {
	r := obs.Default()
	qerr := func(metric string) *obs.Histogram {
		return r.Histogram("costream_monitor_qerror",
			"observed-vs-predicted q-error of placements activated by online monitoring",
			1e-3, "metric", metric)
	}
	return &monitorMetrics{
		steps:          r.Counter("costream_monitor_steps_total", "placements activated by the online monitoring loop"),
		migrations:     r.Counter("costream_monitor_migrations_total", "operator migrations kept by online monitoring"),
		reverts:        r.Counter("costream_monitor_reverts_total", "operator migrations reverted by online monitoring"),
		qerrLatency:    qerr("proc_latency"),
		qerrThroughput: qerr("throughput"),
	}
})

func better(a, b *sim.Metrics) bool {
	if a.Success != b.Success {
		return a.Success
	}
	if a.Backpressured != b.Backpressured {
		return !a.Backpressured
	}
	return a.ProcLatencyMS < b.ProcLatencyMS
}

// rebalanceOnce proposes one greedy move in the spirit of [1]: take the
// most CPU-hungry operators on the most loaded hosts and move one to the
// host with the lowest utilization where the resulting placement stays
// valid, skipping moves in banned (already tried and reverted). It returns
// the new placement, the (operator, target host) move, and whether a move
// was found.
func rebalanceOnce(q *stream.Query, c *hardware.Cluster, p sim.Placement, m *sim.Metrics, banned map[[2]int]bool) (sim.Placement, [2]int, bool) {
	nHosts := len(c.Hosts)
	util := make([]float64, nHosts)
	for i := range q.Ops {
		util[p[i]] += m.PerOp[i].CPUUtil
	}
	// Operators ordered by CPU consumption descending (hungriest first);
	// stable sort keeps ties in operator-index order, matching the
	// insertion sort this replaces.
	ops := make([]int, len(q.Ops))
	for i := range ops {
		ops[i] = i
	}
	sort.SliceStable(ops, func(a, b int) bool {
		return m.PerOp[ops[a]].CPUUtil > m.PerOp[ops[b]].CPUUtil
	})
	// Candidate targets ordered by utilization ascending, ties by host
	// index.
	order := make([]int, nHosts)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return util[order[a]] < util[order[b]]
	})
	for _, op := range ops {
		for _, target := range order {
			if target == p[op] || banned[[2]int{op, target}] {
				continue
			}
			next := append(sim.Placement(nil), p...)
			next[op] = target
			if Valid(q, c, next) {
				return next, [2]int{op, target}, true
			}
		}
	}
	return p, [2]int{}, false
}

package placement

import (
	"sync"

	"costream/internal/obs"
)

// RoundStats is the per-round telemetry of one search run: how many
// candidates the strategy streamed into the round, how the budgeted core
// disposed of them, and where the incumbent stood afterwards. The
// sequence of BestScore values over rounds is the search's anytime
// curve. Collected only when SearchOptions.Telemetry is set; the always
// -on aggregate counterparts live in the obs.Default registry
// (costream_search_* families).
type RoundStats struct {
	// Round is the 1-based scoring-round ordinal.
	Round int `json:"round"`
	// Submitted counts candidates the strategy streamed into the round;
	// Fresh of them were scored, Duplicates were already seen (served
	// from the dedup cache), Skipped fell past the candidate budget.
	Submitted  int `json:"submitted"`
	Fresh      int `json:"fresh"`
	Duplicates int `json:"duplicates"`
	Skipped    int `json:"skipped"`
	// Filtered counts this round's scored candidates removed by the
	// sanity check or an error; Errored is the error subset.
	Filtered int `json:"filtered"`
	Errored  int `json:"errored"`
	// BestIndex/BestScore identify the incumbent (best sane candidate,
	// falling back to the cheapest scored one) after the round;
	// BestIndex is -1 while nothing has scored.
	BestIndex int     `json:"best_index"`
	BestScore float64 `json:"best_score"`
	// ElapsedNS is the wall time of the round's scoring pass.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// searchMetrics aggregates every search run in the process into the
// default registry — the families the serving layer exposes on /metrics.
type searchMetrics struct {
	rounds       *obs.Counter
	scored       *obs.Counter
	dups         *obs.Counter
	skipped      *obs.Counter
	filtered     *obs.Counter
	errored      *obs.Counter
	roundSeconds *obs.Histogram
}

var searchMet = sync.OnceValue(func() *searchMetrics {
	r := obs.Default()
	cand := func(status string) *obs.Counter {
		return r.Counter("costream_search_candidates_total",
			"placement candidates streamed into search rounds, by disposition",
			"status", status)
	}
	return &searchMetrics{
		rounds:       r.Counter("costream_search_rounds_total", "generate->score->prune search rounds executed"),
		scored:       cand("scored"),
		dups:         cand("duplicate"),
		skipped:      cand("skipped"),
		filtered:     r.Counter("costream_search_filtered_total", "scored candidates removed by the sanity filter or errors"),
		errored:      r.Counter("costream_search_errored_total", "candidates whose prediction errored"),
		roundSeconds: r.Histogram("costream_search_round_seconds", "wall time of one scoring round", 1e-9),
	}
})

// countRun records one completed Search invocation under its strategy.
func countRun(strategy string) {
	obs.Default().Counter("costream_search_runs_total",
		"completed placement search runs, by strategy", "strategy", strategy).Inc()
}

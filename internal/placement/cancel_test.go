package placement

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// gatedPredictor scores like landscapePredictor but cancels the attached
// context from inside its limit-th prediction, modeling a client that
// disconnects mid-search. It deliberately does not implement
// BatchPredictor so the scorer walks candidates one by one.
type gatedPredictor struct {
	mu     sync.Mutex
	calls  int
	limit  int
	cancel context.CancelFunc
}

func (g *gatedPredictor) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (PredCosts, error) {
	g.mu.Lock()
	g.calls++
	if g.calls == g.limit {
		g.cancel()
	}
	g.mu.Unlock()
	return landscapeCosts(q, c, p), nil
}

func (g *gatedPredictor) callCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls
}

// TestSearchCtxCancelMidSearch cancels the context from inside the fifth
// prediction and asserts the search returns early with the partial
// incumbent: no predictions happen after the cancellation, the result is
// flagged Cancelled, and the chosen placement is one of the candidates
// scored before the cut.
func TestSearchCtxCancelMidSearch(t *testing.T) {
	q := testQuery()
	c := cluster12()
	for _, strat := range []Strategy{RandomSample{}, LocalSearch{}} {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		pred := &gatedPredictor{limit: 5, cancel: cancel}
		budget := Budget{MaxCandidates: 256}
		res, err := SearchCtx(ctx, pred, q, c, strat, MinProcLatency, budget, SearchOptions{Seed: 3, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if !res.Cancelled {
			t.Errorf("%s: result not flagged Cancelled", strat.Name())
		}
		if got := pred.callCount(); got != pred.limit {
			t.Errorf("%s: %d predictions ran, want exactly %d (none after cancel)", strat.Name(), got, pred.limit)
		}
		if res.Index >= pred.limit {
			t.Errorf("%s: incumbent index %d not among the %d scored before cancellation", strat.Name(), res.Index, pred.limit)
		}
		if len(res.Placement) != q.NumOps() {
			t.Errorf("%s: no partial incumbent returned: %+v", strat.Name(), res)
		}
	}
}

// TestSearchCtxPreCancelled: a context cancelled before the search starts
// yields an error wrapping context.Canceled — there is no incumbent to
// fall back to.
func TestSearchCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range allStrategies(t) {
		_, err := SearchCtx(ctx, landscapePredictor{}, testQuery(), cluster12(), strat, MinProcLatency, Budget{MaxCandidates: 32}, SearchOptions{Seed: 1})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", strat.Name(), err)
		}
	}
}

// TestSearchCtxBackgroundMatchesSearch: SearchCtx with a background
// context is byte-for-byte the plain Search.
func TestSearchCtxBackgroundMatchesSearch(t *testing.T) {
	q := testQuery()
	c := cluster12()
	opts := SearchOptions{Seed: 7, Workers: 2}
	budget := Budget{MaxCandidates: 32}
	a, err := Search(landscapePredictor{}, q, c, Beam{}, MinProcLatency, budget, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchCtx(context.Background(), landscapePredictor{}, q, c, Beam{}, MinProcLatency, budget, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("SearchCtx(background) %+v != Search %+v", b, a)
	}
}

// TestWarmStartScoresIncumbentFirst: with a one-candidate budget the
// warm-started search can only examine the incumbent, so the result must
// be exactly the incumbent.
func TestWarmStartScoresIncumbentFirst(t *testing.T) {
	q := testQuery()
	c := cluster12()
	inc, err := RandomValid(rand.New(rand.NewSource(11)), q, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(landscapePredictor{}, q, c, WarmStart{Incumbent: inc}, MinProcLatency, Budget{MaxCandidates: 1}, SearchOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Placement, inc) {
		t.Errorf("budget-1 warm start chose %v, want incumbent %v", res.Placement, inc)
	}
	if res.Index != 0 {
		t.Errorf("incumbent scored at index %d, want 0", res.Index)
	}
}

// TestWarmStartNeverWorseThanIncumbent: whatever the search finds, its
// score is never worse than the incumbent's own predicted score, and the
// run is deterministic across worker counts.
func TestWarmStartNeverWorseThanIncumbent(t *testing.T) {
	q := testQuery()
	c := cluster12()
	inc, err := RandomValid(rand.New(rand.NewSource(4)), q, c)
	if err != nil {
		t.Fatal(err)
	}
	incScore := MinProcLatency.Score(landscapeCosts(q, c, inc))
	strat := WarmStart{Incumbent: inc, Inner: LocalSearch{}}
	base, err := Search(landscapePredictor{}, q, c, strat, MinProcLatency, Budget{MaxCandidates: 48}, SearchOptions{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := MinProcLatency.Score(base.Costs); got > incScore {
		t.Errorf("warm-started search score %.3f worse than incumbent %.3f", got, incScore)
	}
	for _, workers := range []int{2, 8} {
		got, err := Search(landscapePredictor{}, q, c, strat, MinProcLatency, Budget{MaxCandidates: 48}, SearchOptions{Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d warm-start result %+v != serial %+v", workers, got, base)
		}
	}
}

// TestWarmStartInvalidIncumbent: an incumbent that violates the placement
// rules (or is empty) degrades to the plain inner strategy instead of
// failing.
func TestWarmStartInvalidIncumbent(t *testing.T) {
	q := testQuery()
	c := cluster12()
	bad := make(sim.Placement, q.NumOps())
	for i := range bad {
		bad[i] = -1
	}
	for _, inc := range []sim.Placement{nil, bad} {
		res, err := Search(landscapePredictor{}, q, c, WarmStart{Incumbent: inc}, MinProcLatency, Budget{MaxCandidates: 16}, SearchOptions{Seed: 8})
		if err != nil {
			t.Fatalf("incumbent %v: %v", inc, err)
		}
		if len(res.Placement) != q.NumOps() {
			t.Errorf("incumbent %v: no placement found", inc)
		}
	}
}

func TestHysteresis(t *testing.T) {
	h := Hysteresis{MinImprovement: 0.10, CooldownS: 30}
	cases := []struct {
		name                 string
		inc, chal, now, last float64
		want                 bool
	}{
		{"clear improvement", 100, 80, 100, -1, true},
		{"below threshold", 100, 95, 100, -1, false},
		{"exactly at threshold", 100, 90, 100, -1, true},
		{"no improvement", 100, 100, 100, -1, false},
		{"worse challenger", 100, 120, 100, -1, false},
		{"cooldown active", 100, 50, 100, 80, false},
		{"cooldown elapsed", 100, 50, 100, 60, true},
		{"negative scores (throughput)", -1000, -1200, 100, -1, true},
		{"negative scores below threshold", -1000, -1050, 100, -1, false},
	}
	for _, tc := range cases {
		got, reason := h.ShouldMigrate(tc.inc, tc.chal, tc.now, tc.last)
		if got != tc.want {
			t.Errorf("%s: ShouldMigrate(%v, %v, now=%v, last=%v) = %v (%s), want %v",
				tc.name, tc.inc, tc.chal, tc.now, tc.last, got, reason, tc.want)
		}
		if !got && reason == "" {
			t.Errorf("%s: suppressed migration must carry a reason", tc.name)
		}
	}
	free := Hysteresis{}
	if ok, _ := free.ShouldMigrate(100, 99.9, 0, -1); !ok {
		t.Error("zero-valued hysteresis must accept any strict improvement")
	}
	if ok, reason := free.ShouldMigrate(100, 100, 0, -1); ok {
		t.Errorf("zero-valued hysteresis accepted a non-improvement (%s)", reason)
	}
}

func TestParseObjective(t *testing.T) {
	for name, want := range map[string]Objective{
		"":                       MinProcLatency,
		"min-processing-latency": MinProcLatency,
		"min-e2e-latency":        MinE2ELatency,
		"max-throughput":         MaxThroughput,
		"throughput":             MaxThroughput,
	} {
		got, err := ParseObjective(name)
		if err != nil || got != want {
			t.Errorf("ParseObjective(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseObjective("bogus"); err == nil {
		t.Error("ParseObjective(bogus) succeeded")
	}
}

package placement

import (
	"encoding/binary"

	"costream/internal/sim"
)

// bitset is a fixed-capacity set of small non-negative integers (host
// indices). The candidate generator keeps one bitset per operator as
// reusable scratch, replacing the per-draw map[int]bool allocations of the
// original enumeration code.
type bitset []uint64

// newBitset returns a bitset able to hold values in [0, n).
func newBitset(n int) bitset {
	return make(bitset, (n+63)/64)
}

func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// clear zeroes the whole set.
func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

// orWith unions o into b. Both must have the same capacity.
func (b bitset) orWith(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// appendPlacementKey appends a compact binary encoding of p to dst and
// returns the extended slice. Host indices are varint-encoded, so the key
// is a few bytes per operator (one byte for clusters under 128 hosts)
// instead of the decimal fmt.Sprint rendering previously used for
// candidate dedup. Varints are self-delimiting, so the encoding is
// injective for placements of one query.
func appendPlacementKey(dst []byte, p sim.Placement) []byte {
	for _, h := range p {
		dst = binary.AppendUvarint(dst, uint64(h))
	}
	return dst
}

package placement

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// recordingPredictor wraps the landscape predictor and records every
// placement it is asked to score; the mutex keeps it -race clean under
// parallel scoring workers.
type recordingPredictor struct {
	mu     sync.Mutex
	scored []sim.Placement
}

func (r *recordingPredictor) record(ps ...sim.Placement) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range ps {
		r.scored = append(r.scored, append(sim.Placement(nil), p...))
	}
}

func (r *recordingPredictor) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (PredCosts, error) {
	r.record(p)
	return landscapeCosts(q, c, p), nil
}

func (r *recordingPredictor) PredictBatch(q *stream.Query, c *hardware.Cluster, ps []sim.Placement) ([]PredCosts, error) {
	r.record(ps...)
	out := make([]PredCosts, len(ps))
	for i, p := range ps {
		out[i] = landscapeCosts(q, c, p)
	}
	return out, nil
}

// TestBannedHostsNeverScored is the cordon guarantee: with BannedHosts
// set, no strategy ever scores (let alone returns) a placement touching a
// banned host — the ban is enforced at the candidate-generation
// substrate, not filtered after the fact. Run with -race this also checks
// the banned bitset is safe under parallel scoring.
func TestBannedHostsNeverScored(t *testing.T) {
	q := testQuery()
	c := cluster12()
	banned := []int{0, 3, 6} // an edge, a strong edge, a fog node
	isBanned := map[int]bool{}
	for _, b := range banned {
		isBanned[b] = true
	}
	strategies := allStrategies(t)
	// WarmStart with an incumbent ON a banned host: the incumbent must be
	// rejected by validation, degrading to the inner strategy.
	inc, err := RandomValid(rand.New(rand.NewSource(41)), q, c)
	if err != nil {
		t.Fatal(err)
	}
	inc[0] = 0 // force the incumbent onto banned host 0
	strategies = append(strategies, WarmStart{Incumbent: inc})

	for _, strat := range strategies {
		for _, workers := range []int{1, 4} {
			pred := &recordingPredictor{}
			res, err := Search(pred, q, c, strat, MinProcLatency, Budget{MaxCandidates: 48},
				SearchOptions{Seed: 9, Workers: workers, BannedHosts: banned})
			if err != nil {
				t.Fatalf("%s: %v", strat.Name(), err)
			}
			for _, h := range res.Placement {
				if isBanned[int(h)] {
					t.Errorf("%s: result %v uses banned host %d", strat.Name(), res.Placement, h)
				}
			}
			pred.mu.Lock()
			for _, p := range pred.scored {
				for _, h := range p {
					if isBanned[int(h)] {
						t.Fatalf("%s (workers=%d): scored candidate %v touches banned host %d",
							strat.Name(), workers, p, h)
					}
				}
			}
			n := len(pred.scored)
			pred.mu.Unlock()
			if n == 0 {
				t.Errorf("%s: no candidates scored", strat.Name())
			}
		}
	}
}

// TestBannedHostsAllBannedFails: banning every host leaves no valid
// placement; the search must fail rather than emit a banned candidate.
func TestBannedHostsAllBannedFails(t *testing.T) {
	q := testQuery()
	c := testCluster()
	_, err := Search(landscapePredictor{}, q, c, RandomSample{}, MinProcLatency,
		Budget{MaxCandidates: 16}, SearchOptions{Seed: 2, BannedHosts: []int{0, 1, 2, 3}})
	if err == nil {
		t.Fatal("search over a fully banned cluster succeeded")
	}
}

// TestBannedHostsOutOfRangeIgnored: indices outside the cluster are
// ignored rather than corrupting the bitset.
func TestBannedHostsOutOfRangeIgnored(t *testing.T) {
	q := testQuery()
	c := testCluster()
	res, err := Search(landscapePredictor{}, q, c, RandomSample{}, MinProcLatency,
		Budget{MaxCandidates: 16}, SearchOptions{Seed: 2, BannedHosts: []int{-1, 99}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placement) != q.NumOps() {
		t.Fatalf("no placement found: %+v", res)
	}
}

// TestHysteresisBoundaries pins the gate's edge semantics: an improvement
// exactly at MinImprovement migrates, and a cooldown that expires exactly
// on the deciding tick (elapsed == CooldownS) no longer suppresses.
func TestHysteresisBoundaries(t *testing.T) {
	h := Hysteresis{MinImprovement: 0.20, CooldownS: 30}
	// incumbent 100 -> challenger 80 is exactly 20% improvement.
	if ok, reason := h.ShouldMigrate(100, 80, 100, -1); !ok {
		t.Errorf("improvement exactly at MinImprovement suppressed: %s", reason)
	}
	// A hair below the threshold is suppressed.
	if ok, _ := h.ShouldMigrate(100, 80.01, 100, -1); ok {
		t.Error("improvement just below MinImprovement accepted")
	}
	// now-last == CooldownS: the cooldown expires on this very tick.
	if ok, reason := h.ShouldMigrate(100, 50, 60, 30); !ok {
		t.Errorf("cooldown expiring on the deciding tick still suppressed: %s", reason)
	}
	// One tick earlier it still suppresses.
	if ok, _ := h.ShouldMigrate(100, 50, 59.9, 30); ok {
		t.Error("active cooldown accepted a migration")
	}
}

// cancellingPredictor cancels a context the first time the monitor scores
// an activated placement — i.e. right after the initial observation —
// giving a deterministic mid-run cancellation point.
type cancellingPredictor struct {
	cancel context.CancelFunc
	once   sync.Once
}

func (p *cancellingPredictor) PredictPlacement(q *stream.Query, c *hardware.Cluster, pl sim.Placement) (PredCosts, error) {
	p.once.Do(p.cancel)
	return landscapeCosts(q, c, pl), nil
}

func TestOnlineMonitoringCtxPreCancelled(t *testing.T) {
	q, c := testQuery(), testCluster()
	initial, err := RandomValid(rand.New(rand.NewSource(7)), q, c)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	steps, err := OnlineMonitoringCtx(ctx, q, c, initial, DefaultMonitorConfig(monSimCfg()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if steps != nil {
		t.Fatalf("pre-cancelled monitor returned steps: %v", steps)
	}
}

// TestOnlineMonitoringCtxMidRunPartial mirrors SearchCtx semantics: a
// cancellation after the initial observation stops the loop at the next
// monitoring window and returns the partial trajectory without error.
func TestOnlineMonitoringCtxMidRunPartial(t *testing.T) {
	q, c := testQuery(), testCluster()
	initial, err := RandomValid(rand.New(rand.NewSource(7)), q, c)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := DefaultMonitorConfig(monSimCfg())
	cfg.Predictor = &cancellingPredictor{cancel: cancel}
	steps, err := OnlineMonitoringCtx(ctx, q, c, initial, cfg)
	if err != nil {
		t.Fatalf("mid-run cancellation must not fail the monitor: %v", err)
	}
	if len(steps) != 1 {
		t.Fatalf("got %d steps, want only the initial one", len(steps))
	}
	if steps[0].Predicted == nil {
		t.Fatal("initial step lost its prediction")
	}
	// Sanity: uncancelled, the same run takes more than one step.
	full, err := OnlineMonitoring(q, c, initial, DefaultMonitorConfig(monSimCfg()))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= 1 {
		t.Skip("monitor found nothing to do on this landscape; cancellation test still meaningful")
	}
}

// monSimCfg is a short simulator window keeping monitor tests fast.
func monSimCfg() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.DurationS, cfg.WarmupS = 10, 2
	return cfg
}

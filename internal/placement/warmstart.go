package placement

import (
	"fmt"
	"math"

	"costream/internal/sim"
)

// WarmStart wraps any strategy with an incumbent placement: the incumbent
// is scored first (so it is the baseline every challenger must beat and
// its key is in the dedup cache), then the inner strategy runs with the
// remaining budget. When the inner strategy is a LocalSearch without an
// explicit Start, the first climb starts from the incumbent, so the
// search explores the incumbent's neighborhood before restarting from
// scratch — the re-optimization entry point of the self-healing fleet
// loop. An invalid or empty incumbent (e.g. it references a host that no
// longer exists) degrades to the plain inner strategy. A nil Inner
// selects LocalSearch.
type WarmStart struct {
	Incumbent sim.Placement
	Inner     Strategy
}

// Name implements Strategy.
func (w WarmStart) Name() string {
	inner := w.Inner
	if inner == nil {
		inner = LocalSearch{}
	}
	return "warm-start+" + inner.Name()
}

// Run implements Strategy.
func (w WarmStart) Run(co *Core) error {
	inner := w.Inner
	if inner == nil {
		inner = LocalSearch{}
	}
	if len(w.Incumbent) > 0 && co.ValidPlacement(w.Incumbent) {
		if !co.Exhausted() {
			co.ScoreRound([]sim.Placement{append(sim.Placement(nil), w.Incumbent...)})
		}
		if ls, ok := inner.(LocalSearch); ok && len(ls.Start) == 0 {
			ls.Start = w.Incumbent
			inner = ls
		}
	}
	return inner.Run(co)
}

// Hysteresis gates migrations of a live placement so the recovery loop
// never thrashes: a challenger must beat the incumbent's score by a
// configurable relative margin, and accepted migrations are separated by
// a cooldown.
type Hysteresis struct {
	// MinImprovement is the relative score improvement a challenger must
	// deliver over the incumbent before a migration is worthwhile
	// (0.05 = 5%). Zero accepts any strict improvement.
	MinImprovement float64
	// CooldownS is the minimum simulated-clock gap in seconds between
	// accepted migrations of the same deployment. Zero disables the
	// cooldown.
	CooldownS float64
}

// ShouldMigrate decides whether a challenger scoring challenger (lower
// is better, per Objective.Score) justifies migrating away from an
// incumbent scoring incumbent at clock nowS, given the deployment's last
// accepted migration at lastS (pass a negative value when it never
// migrated). The returned reason explains a false verdict for reports.
func (h Hysteresis) ShouldMigrate(incumbent, challenger, nowS, lastS float64) (bool, string) {
	if math.IsNaN(incumbent) || math.IsNaN(challenger) {
		return false, "non-finite score"
	}
	if h.CooldownS > 0 && lastS >= 0 && nowS-lastS < h.CooldownS {
		return false, fmt.Sprintf("cooldown: %.1fs since last migration < %.1fs", nowS-lastS, h.CooldownS)
	}
	if challenger >= incumbent {
		return false, "challenger does not improve on incumbent"
	}
	impr := improvement(incumbent, challenger)
	if impr < h.MinImprovement {
		return false, fmt.Sprintf("improvement %.1f%% below threshold %.1f%%", impr*100, h.MinImprovement*100)
	}
	return true, ""
}

// improvement is the relative score gain of the challenger over the
// incumbent, normalized by the incumbent's magnitude so it works for
// negative scores (MaxThroughput) too.
func improvement(incumbent, challenger float64) float64 {
	den := math.Abs(incumbent)
	if den == 0 {
		den = 1
	}
	return (incumbent - challenger) / den
}

package placement

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// Budget bounds the work of one placement search run. Every strategy is
// driven by the same budgeted core, so budgets are directly comparable
// across strategies: a Beam run with MaxCandidates 64 scores at most as
// many placements as a RandomSample run with MaxCandidates 64.
type Budget struct {
	// MaxCandidates bounds the number of distinct placements scored by
	// the predictor. Zero or negative selects DefaultMaxCandidates.
	MaxCandidates int
	// MaxRounds bounds the number of generate->score->prune rounds. Zero
	// or negative means unlimited (the candidate budget still applies).
	MaxRounds int
}

// DefaultMaxCandidates is the candidate budget when Budget leaves
// MaxCandidates unset — the paper's k=16 sample size.
const DefaultMaxCandidates = 16

func (b Budget) withDefaults() Budget {
	if b.MaxCandidates <= 0 {
		b.MaxCandidates = DefaultMaxCandidates
	}
	return b
}

// SearchOptions tunes a search run.
type SearchOptions struct {
	// Workers bounds the concurrent scoring workers (zero or negative
	// selects GOMAXPROCS). The chosen placement is independent of the
	// worker count.
	Workers int
	// Seed drives every stochastic strategy decision (random draws,
	// restart points, neighbor subsampling). A fixed seed yields an
	// identical SearchResult for any Workers value.
	Seed int64
	// Telemetry enables per-round RoundStats collection on the
	// SearchResult (candidates generated/deduped/scored/pruned and the
	// incumbent anytime curve). It never affects which placement is
	// chosen; the aggregate costream_search_* metric families in
	// obs.Default are recorded regardless.
	Telemetry bool
	// BannedHosts lists cluster host indices no candidate may use
	// (cordoned hosts). The ban is enforced at the candidate-generation
	// substrate, so every strategy — and any placement validated through
	// the core, including a WarmStart incumbent — respects it. An
	// incumbent touching a banned host fails ValidPlacement and the
	// warm start degrades to its inner strategy. Empty or nil changes
	// nothing, including rng consumption.
	BannedHosts []int
}

// SearchResult is the outcome of a Search run.
type SearchResult struct {
	Placement sim.Placement
	Costs     PredCosts
	// Index is the ordinal of the chosen placement in the stream of
	// scored candidates (0 = first candidate examined).
	Index int
	// Strategy is the name of the strategy that produced the result.
	Strategy string
	// Rounds is the number of generate->score->prune rounds executed.
	Rounds int
	// Examined is the number of distinct placements scored.
	Examined int
	// Filtered counts examined candidates removed before selection: by
	// the sanity check (predicted failure or backpressure) or because
	// their prediction errored. Errored is the error subset.
	Filtered int
	Errored  int
	// Complete reports that the strategy provably covered the entire
	// valid-placement space within the budget (only Exhaustive sets it).
	Complete bool
	// Cancelled reports that the search context was cancelled before the
	// budget ran out; the result is the best candidate scored so far (the
	// partial incumbent).
	Cancelled bool
	// Telemetry holds per-round stats when SearchOptions.Telemetry was
	// set; nil otherwise.
	Telemetry []RoundStats
}

// Scored is one scored candidate returned by Core.ScoreRound.
type Scored struct {
	Placement sim.Placement
	Costs     PredCosts
	// Err is the prediction error, if any.
	Err error
	// Score is the objective's scalar score (lower is better).
	Score float64
	// Sane reports the paper's sanity check: predicted success without
	// backpressure.
	Sane bool
	// Skipped marks candidates dropped unscored because the budget was
	// exhausted.
	Skipped bool
}

// betterThan ranks scored candidates for pruning decisions: sane
// candidates order by score, non-sane scored ones come after every sane
// one, errored/skipped ones rank last. Ties are not better, so stable
// selection loops keep the earlier candidate.
func (s *Scored) betterThan(t *Scored) bool {
	sc, tc := s.class(), t.class()
	if sc != tc {
		return sc < tc
	}
	if sc == 2 {
		return false
	}
	return s.Score < t.Score
}

func (s *Scored) class() int {
	switch {
	case s.Skipped || s.Err != nil:
		return 2
	case s.Sane:
		return 0
	default:
		return 1
	}
}

// Strategy is a pluggable placement search algorithm. Implementations
// stream candidate batches into the shared budgeted Core and are expected
// to stop once the core is Exhausted. Run must be deterministic given the
// core's rng state; it is invoked on a single goroutine (scoring
// parallelism lives inside the core).
type Strategy interface {
	// Name is the stable identifier used by the CLI, the serve API and
	// search results.
	Name() string
	// Run drives candidate generation against the core. It should return
	// an error only when the search cannot produce any candidate at all.
	Run(co *Core) error
}

// Core is the shared budgeted search core: it dedups streamed candidates
// by a compact binary key, scores fresh ones through the batched worker
// pool, tracks the best placement seen under the objective (with the
// paper's sanity filter and deterministic lowest-index tie-breaks), and
// enforces the candidate/round budget.
type Core struct {
	ctx    context.Context
	pred   Predictor
	q      *stream.Query
	c      *hardware.Cluster
	obj    Objective
	budget Budget
	opts   Options
	rng    *rand.Rand
	gen    *generator

	seen    map[string]int32 // placement key -> index into records
	keyBuf  []byte
	records []Scored

	rounds   int
	filtered int
	errored  int
	firstErr error

	collectRounds bool
	telemetry     []RoundStats

	bestIdx     int
	fallbackIdx int
	complete    bool
}

func newCore(ctx context.Context, pred Predictor, q *stream.Query, c *hardware.Cluster, obj Objective, budget Budget, opts SearchOptions) (*Core, error) {
	gen, err := newGenerator(q, c)
	if err != nil {
		return nil, err
	}
	gen.ban(opts.BannedHosts)
	budget = budget.withDefaults()
	return &Core{
		ctx:           ctx,
		pred:          pred,
		q:             q,
		c:             c,
		obj:           obj,
		budget:        budget,
		opts:          Options{Workers: opts.Workers},
		rng:           rand.New(rand.NewSource(opts.Seed)),
		gen:           gen,
		seen:          make(map[string]int32, budget.MaxCandidates),
		records:       make([]Scored, 0, budget.MaxCandidates),
		bestIdx:       -1,
		fallbackIdx:   -1,
		collectRounds: opts.Telemetry,
	}, nil
}

// Query returns the query under placement.
func (co *Core) Query() *stream.Query { return co.q }

// Cluster returns the hardware landscape.
func (co *Core) Cluster() *hardware.Cluster { return co.c }

// Rng returns the seeded random source shared by the whole search run.
func (co *Core) Rng() *rand.Rand { return co.rng }

// TopoOrder returns the cached topological order of the query.
func (co *Core) TopoOrder() []int { return co.gen.order }

// Remaining returns how many more candidates the budget admits.
func (co *Core) Remaining() int { return co.budget.MaxCandidates - len(co.records) }

// Examined returns the number of distinct candidates scored so far.
func (co *Core) Examined() int { return len(co.records) }

// Rounds returns the number of scoring rounds executed so far.
func (co *Core) Rounds() int { return co.rounds }

// Exhausted reports whether the budget admits no further scoring. A
// cancelled search context counts as exhaustion, so every strategy's
// round loop stops at its next budget check without any strategy-side
// context plumbing.
func (co *Core) Exhausted() bool {
	if co.Cancelled() {
		return true
	}
	if co.Remaining() <= 0 {
		return true
	}
	return co.budget.MaxRounds > 0 && co.rounds >= co.budget.MaxRounds
}

// Cancelled reports whether the search context was cancelled.
func (co *Core) Cancelled() bool {
	return co.ctx != nil && co.ctx.Err() != nil
}

// Seen reports whether p was already streamed into a scoring round.
func (co *Core) Seen(p sim.Placement) bool {
	co.keyBuf = appendPlacementKey(co.keyBuf[:0], p)
	_, ok := co.seen[string(co.keyBuf)]
	return ok
}

// RandomPlacement draws one valid placement with the core's rng. The
// returned slice is scratch shared with the next draw: copy to retain.
func (co *Core) RandomPlacement() (sim.Placement, bool) {
	return co.gen.randomValid(co.rng)
}

// ValidPlacement reports whether p satisfies the Figure 5 rules.
func (co *Core) ValidPlacement(p sim.Placement) bool { return co.gen.validate(p) }

// PrefixChoices appends to dst the valid host choices for the operator at
// topological position d, given the placement of the preceding positions.
func (co *Core) PrefixChoices(dst []int, p sim.Placement, d int) []int {
	co.gen.replay(p, d)
	return append(dst, co.gen.choicesFor(p, co.gen.order[d])...)
}

// CompleteGreedy extends a placement prefix covering the first d
// topological positions into a full valid placement (greedy co-location
// completion); see generator.completeGreedy.
func (co *Core) CompleteGreedy(p sim.Placement, d int) (sim.Placement, bool) {
	return co.gen.completeGreedy(p, d)
}

// MarkComplete records that the strategy covered the entire
// valid-placement space (Exhaustive only).
func (co *Core) MarkComplete() { co.complete = true }

// ScoreRound streams one batch of candidates through the engine:
// duplicates return their cached record without consuming budget, fresh
// candidates are scored together through the batched worker pool (one
// generate->score->prune round), and candidates beyond the budget come
// back with Skipped set. The returned slice is aligned with cands.
func (co *Core) ScoreRound(cands []sim.Placement) []Scored {
	out := make([]Scored, len(cands))
	roundOpen := (co.budget.MaxRounds <= 0 || co.rounds < co.budget.MaxRounds) && !co.Cancelled()
	base := len(co.records)
	nDups, nSkipped := 0, 0
	filteredBefore, erroredBefore := co.filtered, co.errored
	var fresh []sim.Placement
	var freshOut []int
	// dups are duplicates of a fresh candidate earlier in this same
	// round; their records exist only after the batch is scored.
	type pendingDup struct {
		out int
		rec int32
	}
	var dups []pendingDup
	for i, p := range cands {
		co.keyBuf = appendPlacementKey(co.keyBuf[:0], p)
		if ri, ok := co.seen[string(co.keyBuf)]; ok {
			nDups++
			if int(ri) < len(co.records) {
				out[i] = co.records[ri]
			} else {
				dups = append(dups, pendingDup{out: i, rec: ri})
			}
			continue
		}
		if !roundOpen || base+len(fresh) >= co.budget.MaxCandidates {
			nSkipped++
			out[i] = Scored{Placement: append(sim.Placement(nil), p...), Skipped: true}
			continue
		}
		cp := append(sim.Placement(nil), p...)
		co.seen[string(co.keyBuf)] = int32(base + len(fresh))
		freshOut = append(freshOut, i)
		fresh = append(fresh, cp)
	}
	if len(fresh) > 0 {
		roundStart := time.Now()
		costs, errs := scoreCandidates(co.ctx, co.pred, co.q, co.c, fresh, co.opts)
		co.rounds++
		for j, p := range fresh {
			rec := Scored{Placement: p}
			if errs[j] != nil {
				rec.Err = errs[j]
				co.errored++
				co.filtered++
				if co.firstErr == nil {
					co.firstErr = fmt.Errorf("placement: predicting candidate %d: %w", base+j, errs[j])
				}
			} else {
				rec.Costs = costs[j]
				rec.Score = objectiveScore(co.obj, costs[j])
				rec.Sane = costs[j].Success && !costs[j].Backpressured
				if !rec.Sane {
					co.filtered++
				}
				if co.fallbackIdx < 0 || rec.Score < co.records[co.fallbackIdx].Score {
					co.fallbackIdx = base + j
				}
				if rec.Sane && (co.bestIdx < 0 || rec.Score < co.records[co.bestIdx].Score) {
					co.bestIdx = base + j
				}
			}
			co.records = append(co.records, rec)
			out[freshOut[j]] = rec
		}
		elapsed := time.Since(roundStart)
		m := searchMet()
		m.rounds.Inc()
		m.scored.Add(int64(len(fresh)))
		m.roundSeconds.Record(elapsed.Nanoseconds())
		m.filtered.Add(int64(co.filtered - filteredBefore))
		m.errored.Add(int64(co.errored - erroredBefore))
		if co.collectRounds {
			rs := RoundStats{
				Round:      co.rounds,
				Submitted:  len(cands),
				Fresh:      len(fresh),
				Duplicates: nDups,
				Skipped:    nSkipped,
				Filtered:   co.filtered - filteredBefore,
				Errored:    co.errored - erroredBefore,
				BestIndex:  -1,
				ElapsedNS:  elapsed.Nanoseconds(),
			}
			if idx := co.incumbent(); idx >= 0 {
				rs.BestIndex = idx
				rs.BestScore = co.records[idx].Score
			}
			co.telemetry = append(co.telemetry, rs)
		}
	}
	if nDups > 0 || nSkipped > 0 {
		m := searchMet()
		m.dups.Add(int64(nDups))
		m.skipped.Add(int64(nSkipped))
	}
	// Resolve intra-round duplicates now that their records exist.
	for _, d := range dups {
		out[d.out] = co.records[d.rec]
	}
	return out
}

// incumbent returns the index of the current best candidate under the
// selection rule (best sane, else cheapest scored), or -1.
func (co *Core) incumbent() int {
	if co.bestIdx >= 0 {
		return co.bestIdx
	}
	return co.fallbackIdx
}

// result packages the core's state into a SearchResult.
func (co *Core) result(strategy string) (*SearchResult, error) {
	idx := co.bestIdx
	if idx < 0 {
		// Everything filtered: fall back to the cheapest scored prediction.
		idx = co.fallbackIdx
	}
	if idx < 0 {
		err := co.firstErr
		if err == nil && co.Cancelled() {
			err = co.ctx.Err()
		}
		if err == nil {
			err = fmt.Errorf("placement: no valid placement candidates for %d operators on %d hosts",
				co.q.NumOps(), co.c.NumHosts())
		}
		return nil, fmt.Errorf("placement: %s search scored no candidates: %w", strategy, err)
	}
	rec := co.records[idx]
	return &SearchResult{
		Placement: rec.Placement,
		Costs:     rec.Costs,
		Index:     idx,
		Strategy:  strategy,
		Rounds:    co.rounds,
		Examined:  len(co.records),
		Filtered:  co.filtered,
		Errored:   co.errored,
		Complete:  co.complete,
		Cancelled: co.Cancelled(),
		Telemetry: co.telemetry,
	}, nil
}

// Search runs one placement search: the strategy streams candidate
// batches into the budgeted core, the core scores them with the predictor
// (batched, worker-pooled, sanity-filtered) and the best placement under
// the objective is returned. A nil strategy selects RandomSample. The
// result is deterministic for a fixed seed and any Workers value.
func Search(pred Predictor, q *stream.Query, c *hardware.Cluster, strat Strategy, obj Objective, budget Budget, opts SearchOptions) (*SearchResult, error) {
	return SearchCtx(context.Background(), pred, q, c, strat, obj, budget, opts)
}

// SearchCtx is Search bounded by a context: cancellation stops the round
// loop and the batched scorer at the next candidate boundary and returns
// the best candidate scored so far (SearchResult.Cancelled is set). Only
// a search cancelled before scoring any candidate fails, wrapping
// ctx.Err().
func SearchCtx(ctx context.Context, pred Predictor, q *stream.Query, c *hardware.Cluster, strat Strategy, obj Objective, budget Budget, opts SearchOptions) (*SearchResult, error) {
	if strat == nil {
		strat = RandomSample{}
	}
	co, err := newCore(ctx, pred, q, c, obj, budget, opts)
	if err != nil {
		return nil, err
	}
	if err := strat.Run(co); err != nil && len(co.records) == 0 {
		return nil, err
	}
	res, err := co.result(strat.Name())
	if err == nil {
		countRun(strat.Name())
	}
	return res, err
}

// ParseStrategy resolves a strategy name (as used by the CLI -strategy
// flag and the serve API "strategy" field) to its default-configured
// implementation.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "random", "random-sample":
		return RandomSample{}, nil
	case "exhaustive":
		return Exhaustive{}, nil
	case "beam":
		return Beam{}, nil
	case "local-search", "local", "hill-climb":
		return LocalSearch{}, nil
	}
	return nil, fmt.Errorf("placement: unknown strategy %q (want one of %v)", name, StrategyNames())
}

// StrategyNames lists the canonical built-in strategy names.
func StrategyNames() []string {
	return []string{"random", "exhaustive", "beam", "local-search"}
}

package placement

import (
	"sort"

	"costream/internal/sim"
)

// randomChunk is RandomSample's streaming batch size: draws are scored in
// chunks so large budgets do not materialize every candidate up front.
const randomChunk = 64

// RandomSample is the paper's baseline strategy: k distinct random valid
// placements, scored, sanity-filtered, best one kept. For a given seed and
// candidate budget it examines exactly the placements the pre-engine
// Enumerate+Optimize pipeline examined and returns the identical result.
type RandomSample struct{}

// Name implements Strategy.
func (RandomSample) Name() string { return "random" }

// Run implements Strategy.
func (RandomSample) Run(co *Core) error {
	k := co.Remaining()
	pending := make(map[string]bool, randomChunk)
	var key []byte
	chunk := make([]sim.Placement, 0, randomChunk)
	flush := func() {
		if len(chunk) > 0 {
			co.ScoreRound(chunk)
			chunk = chunk[:0]
			clear(pending)
		}
	}
	drawn, misses := 0, 0
	for drawn < k && misses < 8*k+64 && !co.Exhausted() {
		p, ok := co.RandomPlacement()
		if !ok {
			misses++
			continue
		}
		key = appendPlacementKey(key[:0], p)
		if pending[string(key)] || co.Seen(p) {
			misses++
			continue
		}
		pending[string(key)] = true
		chunk = append(chunk, append(sim.Placement(nil), p...))
		drawn++
		if len(chunk) >= randomChunk {
			flush()
		}
	}
	flush()
	// A fruitless run falls through to the core, which reports the
	// no-candidates error.
	return nil
}

// Exhaustive enumerates the complete valid-placement space in depth-first
// topological order with rule-based pruning, streaming chunks into the
// scoring core. Generation stops as soon as the budget is exhausted, so
// the strategy is safe on large spaces (the budget is the hard cap); when
// the whole space fits the budget, the result is provably optimal under
// the predictor and SearchResult.Complete is set.
type Exhaustive struct {
	// ChunkSize is the streaming batch size (default 128).
	ChunkSize int
}

// Name implements Strategy.
func (Exhaustive) Name() string { return "exhaustive" }

// Run implements Strategy.
func (e Exhaustive) Run(co *Core) error {
	chunkSize := e.ChunkSize
	if chunkSize <= 0 {
		chunkSize = 128
	}
	n := co.Query().NumOps()
	order := co.TopoOrder()
	g := co.gen
	p := make(sim.Placement, n)
	for i := range p {
		p[i] = -1
	}
	chunk := make([]sim.Placement, 0, chunkSize)
	emitted := 0
	// choicesFor returns generator scratch reused by deeper levels; one
	// reusable buffer per depth keeps the DFS allocation-free.
	choiceBufs := make([][]int, n)
	var dfs func(d int) bool // false aborts the enumeration
	dfs = func(d int) bool {
		if d == n {
			chunk = append(chunk, append(sim.Placement(nil), p...))
			emitted++
			if len(chunk) >= chunkSize {
				co.ScoreRound(chunk)
				chunk = chunk[:0]
				if co.Exhausted() {
					return false
				}
			}
			return true
		}
		v := order[d]
		choiceBufs[d] = append(choiceBufs[d][:0], g.choicesFor(p, v)...)
		for _, h := range choiceBufs[d] {
			g.place(p, v, h)
			if !dfs(d + 1) {
				return false
			}
		}
		p[v] = -1
		return true
	}
	covered := dfs(0)
	if len(chunk) > 0 {
		co.ScoreRound(chunk)
	}
	if covered && co.Examined() == emitted {
		// Every valid placement was generated and none fell past the
		// budget: the space is fully covered.
		co.MarkComplete()
	}
	return nil
}

// Beam constructs placements operator by operator in topological order,
// keeping the Width best partial placements per step. A partial placement
// is scored by greedily completing it (remaining operators co-locate onto
// their strongest upstream host) and predicting the completion's costs via
// the batched scoring core, so every round is one PredictBatch-sized
// call. Beam is fully deterministic (no randomness).
type Beam struct {
	// Width is the number of partial placements kept per step (default 8).
	Width int
}

// Name implements Strategy.
func (Beam) Name() string { return "beam" }

// Run implements Strategy.
func (b Beam) Run(co *Core) error {
	width := b.Width
	if width <= 0 {
		width = 8
	}
	n := co.Query().NumOps()
	order := co.TopoOrder()
	blank := make(sim.Placement, n)
	for i := range blank {
		blank[i] = -1
	}
	entries := []sim.Placement{blank}
	var choiceBuf []int
	for d := 0; d < n && !co.Exhausted(); d++ {
		// Spread the remaining candidate budget over the remaining
		// depths so early rounds cannot starve the later, more decisive
		// ones. Entries are ranked best-first, so truncating keeps the
		// expansions of the most promising partials.
		quota := co.Remaining() / (n - d)
		if quota < width {
			quota = width
		}
		var partials []sim.Placement
		var comps []sim.Placement
	expand:
		for _, e := range entries {
			choiceBuf = co.PrefixChoices(choiceBuf[:0], e, d)
			for _, h := range choiceBuf {
				if len(comps) >= quota {
					break expand
				}
				child := append(sim.Placement(nil), e...)
				child[order[d]] = h
				comp, ok := co.CompleteGreedy(child, d+1)
				if !ok {
					continue
				}
				partials = append(partials, child)
				comps = append(comps, comp)
			}
		}
		if len(partials) == 0 {
			break
		}
		scored := co.ScoreRound(comps)
		idx := make([]int, len(partials))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return scored[idx[a]].betterThan(&scored[idx[b]])
		})
		if len(idx) > width {
			idx = idx[:width]
		}
		next := make([]sim.Placement, 0, len(idx))
		for _, i := range idx {
			next = append(next, partials[i])
		}
		entries = next
	}
	return nil
}

// LocalSearch hill-climbs from valid starts: each round scores the
// neighborhood of the current placement (all valid single-operator moves
// and operator-pair swaps, subsampled deterministically when large) in one
// batch and moves to the best neighbor. Non-improving rounds exhaust
// Patience, triggering a restart, until the budget runs out. The first
// start is the deterministic greedy completion (co-locate onto the most
// capable hosts); later restarts draw random valid placements.
type LocalSearch struct {
	// Restarts caps the number of random restarts (<= 0: keep restarting
	// until the budget is exhausted).
	Restarts int
	// Patience is the number of consecutive non-improving rounds before
	// a restart (default 2).
	Patience int
	// MaxNeighbors caps the scored neighborhood per round (default 64).
	MaxNeighbors int
	// Start, when valid, replaces the greedy completion as the first
	// climb's starting placement — the warm-start hook used by WarmStart
	// to climb from an incumbent instead of from scratch.
	Start sim.Placement
}

// Name implements Strategy.
func (LocalSearch) Name() string { return "local-search" }

// Run implements Strategy.
func (ls LocalSearch) Run(co *Core) error {
	patience := ls.Patience
	if patience <= 0 {
		patience = 2
	}
	maxN := ls.MaxNeighbors
	if maxN <= 0 {
		maxN = 64
	}
	blank := make(sim.Placement, co.Query().NumOps())
	for i := range blank {
		blank[i] = -1
	}
	for r := 0; !co.Exhausted() && (ls.Restarts <= 0 || r < ls.Restarts); r++ {
		before := co.Examined()
		var start sim.Placement
		if r == 0 {
			if len(ls.Start) > 0 && co.ValidPlacement(ls.Start) {
				start = append(sim.Placement(nil), ls.Start...)
			} else {
				// The first climb starts from the deterministic greedy
				// completion — a strong, budget-free seed.
				start, _ = co.CompleteGreedy(blank, 0)
			}
		}
		if start == nil {
			p, ok := co.RandomPlacement()
			if !ok {
				// No drawable start: stop; an entirely fruitless run
				// surfaces as the core's no-candidates error.
				break
			}
			start = append(sim.Placement(nil), p...)
		}
		cur := co.ScoreRound([]sim.Placement{start})[0]
		if cur.Skipped {
			break
		}
		bad := 0
		for !co.Exhausted() {
			neigh := localNeighbors(co, cur.Placement, maxN)
			if len(neigh) == 0 {
				break
			}
			scored := co.ScoreRound(neigh)
			best := 0
			for i := 1; i < len(scored); i++ {
				if scored[i].betterThan(&scored[best]) {
					best = i
				}
			}
			if scored[best].betterThan(&cur) {
				cur = scored[best]
				bad = 0
			} else {
				bad++
				if bad >= patience {
					break
				}
			}
		}
		if co.Examined() == before {
			// The whole restart hit only cached placements: the reachable
			// space is exhausted and further restarts cannot progress.
			break
		}
	}
	return nil
}

// localNeighbors generates the move/swap neighborhood of p: every valid
// placement differing by one operator's host, and every valid placement
// obtained by swapping the hosts of two operators. Above maxN the
// neighborhood is subsampled with the core rng (deterministic for a fixed
// seed), preserving generation order for stable tie-breaks.
func localNeighbors(co *Core, p sim.Placement, maxN int) []sim.Placement {
	n := len(p)
	hosts := co.Cluster().NumHosts()
	tmp := append(sim.Placement(nil), p...)
	var out []sim.Placement
	for v := 0; v < n; v++ {
		old := tmp[v]
		for h := 0; h < hosts; h++ {
			if h == old {
				continue
			}
			tmp[v] = h
			if co.ValidPlacement(tmp) {
				out = append(out, append(sim.Placement(nil), tmp...))
			}
		}
		tmp[v] = old
	}
	for v := 0; v < n; v++ {
		for w := v + 1; w < n; w++ {
			if tmp[v] == tmp[w] {
				continue
			}
			tmp[v], tmp[w] = tmp[w], tmp[v]
			if co.ValidPlacement(tmp) {
				out = append(out, append(sim.Placement(nil), tmp...))
			}
			tmp[v], tmp[w] = tmp[w], tmp[v]
		}
	}
	if len(out) > maxN {
		idx := co.Rng().Perm(len(out))[:maxN]
		sort.Ints(idx)
		sub := make([]sim.Placement, 0, maxN)
		for _, i := range idx {
			sub = append(sub, out[i])
		}
		out = sub
	}
	return out
}

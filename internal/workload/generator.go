// Package workload generates streaming queries and hardware landscapes for
// training and evaluating COSTREAM, reproducing the benchmark of Section VI:
// the Table II feature grids, the Figure 6 query templates (linear, 2-way
// and 3-way join queries with optional filters, aggregations and group-bys),
// the unseen filter-chain patterns of Exp 5, and the DSPBench-style
// real-world benchmark queries of Exp 6 (Advertisement, Spike Detection,
// Smart Grid).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"costream/internal/hardware"
	"costream/internal/stream"
)

// Event-rate grids of Table II, per query template.
var (
	LinearRates   = []float64{100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600}
	TwoWayRates   = []float64{50, 100, 250, 500, 750, 1000, 1250, 1500, 1750, 2000}
	ThreeWayRates = []float64{20, 50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
)

// Window grids of Table II.
var (
	CountWindowSizes = []float64{5, 10, 20, 40, 80, 160, 320, 640}
	TimeWindowSizes  = []float64{0.25, 0.5, 1, 2, 4, 8, 16}
)

// Tuple width range of Table II ([3..10] attributes).
const (
	MinTupleWidth = 3
	MaxTupleWidth = 10
)

// Config parameterizes a Generator.
type Config struct {
	Seed int64
	// HW is the hardware feature grid clusters are sampled from.
	HW hardware.Grid
	// MinHosts and MaxHosts bound the sampled cluster sizes.
	MinHosts, MaxHosts int
	// Rate grids; default to the Table II grids.
	LinearRates, TwoWayRates, ThreeWayRates []float64
	// Window size grids; default to the Table II grids.
	CountWindows, TimeWindows []float64
}

// DefaultConfig returns the paper's training configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:     seed,
		HW:       hardware.TrainingGrid(),
		MinHosts: 3, MaxHosts: 6,
		LinearRates: LinearRates, TwoWayRates: TwoWayRates, ThreeWayRates: ThreeWayRates,
		CountWindows: CountWindowSizes, TimeWindows: TimeWindowSizes,
	}
}

// Generator draws random queries and clusters. It is deterministic in its
// seed and must not be shared across goroutines.
type Generator struct {
	rng *rand.Rand
	cfg Config
}

// New returns a generator for the configuration.
func New(cfg Config) *Generator {
	if len(cfg.HW.CPU) == 0 || len(cfg.HW.RAMMB) == 0 ||
		len(cfg.HW.Bandwidth) == 0 || len(cfg.HW.LatencyMS) == 0 {
		cfg.HW = hardware.TrainingGrid()
	}
	if cfg.MinHosts <= 0 {
		cfg.MinHosts = 3
	}
	if cfg.MaxHosts < cfg.MinHosts {
		cfg.MaxHosts = cfg.MinHosts
	}
	if len(cfg.LinearRates) == 0 {
		cfg.LinearRates = LinearRates
	}
	if len(cfg.TwoWayRates) == 0 {
		cfg.TwoWayRates = TwoWayRates
	}
	if len(cfg.ThreeWayRates) == 0 {
		cfg.ThreeWayRates = ThreeWayRates
	}
	if len(cfg.CountWindows) == 0 {
		cfg.CountWindows = CountWindowSizes
	}
	if len(cfg.TimeWindows) == 0 {
		cfg.TimeWindows = TimeWindowSizes
	}
	return &Generator{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Cluster samples a hardware landscape from the configured grid.
func (g *Generator) Cluster() *hardware.Cluster {
	n := g.cfg.MinHosts
	if g.cfg.MaxHosts > g.cfg.MinHosts {
		n += g.rng.Intn(g.cfg.MaxHosts - g.cfg.MinHosts + 1)
	}
	return g.cfg.HW.SampleCluster(g.rng, n)
}

func (g *Generator) pick(vals []float64) float64 { return vals[g.rng.Intn(len(vals))] }

func (g *Generator) schema() []stream.DataType {
	width := MinTupleWidth + g.rng.Intn(MaxTupleWidth-MinTupleWidth+1)
	types := stream.AllDataTypes()
	s := make([]stream.DataType, width)
	for i := range s {
		s[i] = types[g.rng.Intn(len(types))]
	}
	return s
}

// filterSelectivity mixes a broad uniform regime with an occasional highly
// selective regime so the corpus contains logically failing executions
// (Definition 5, reason 2).
func (g *Generator) filterSelectivity() float64 {
	if g.rng.Float64() < 0.15 {
		// Log-uniform over [1e-4, 0.1].
		return math.Pow(10, -4+3*g.rng.Float64())
	}
	return 0.1 + 0.9*g.rng.Float64()
}

// joinSelectivity is log-uniform over [1e-5, 1e-2]: per Definition 7 it
// divides the cartesian product of the window contents.
func (g *Generator) joinSelectivity() float64 {
	return math.Pow(10, -5+3*g.rng.Float64())
}

// aggSelectivity is the distinct-groups fraction of Definition 8.
func (g *Generator) aggSelectivity() float64 {
	return 0.01 + 0.99*g.rng.Float64()
}

func (g *Generator) window() stream.Window {
	w := stream.Window{}
	if g.rng.Intn(2) == 0 {
		w.Type = stream.WindowSliding
	} else {
		w.Type = stream.WindowTumbling
	}
	if g.rng.Intn(2) == 0 {
		w.Policy = stream.WindowCountBased
		w.Size = g.pick(g.cfg.CountWindows)
	} else {
		w.Policy = stream.WindowTimeBased
		w.Size = g.pick(g.cfg.TimeWindows)
	}
	if w.Type == stream.WindowTumbling {
		w.Slide = w.Size
	} else {
		// Slide in [0.3, 0.7] x window length (Table II).
		ratio := 0.3 + 0.4*g.rng.Float64()
		w.Slide = w.Size * ratio
		if w.Policy == stream.WindowCountBased {
			w.Slide = math.Max(1, math.Round(w.Slide))
		}
	}
	return w
}

func (g *Generator) addFilter(b *stream.Builder) int {
	fns := stream.AllFilterFns()
	fn := fns[g.rng.Intn(len(fns))]
	lit := stream.AllDataTypes()[g.rng.Intn(3)]
	if fn.StringOnly() {
		lit = stream.TypeString
	}
	return b.AddFilter(fn, lit, g.filterSelectivity())
}

func (g *Generator) addAggregate(b *stream.Builder) int {
	fns := stream.AllAggFns()
	fn := fns[g.rng.Intn(len(fns))]
	value := stream.AllDataTypes()[g.rng.Intn(3)]
	// Group-by data type: int, string, double, or none (Table II).
	gbChoice := g.rng.Intn(4)
	hasGB := gbChoice < 3
	gb := stream.TypeInt
	if hasGB {
		gb = stream.AllDataTypes()[gbChoice]
	}
	return b.AddAggregate(fn, value, gb, hasGB, g.window(), g.aggSelectivity())
}

// filterCount draws the per-query filter count with the paper's corpus
// distribution (35% 1, 34% 2, 24% 3, 6% 4, rest 0) clamped to maxPositions.
func (g *Generator) filterCount(maxPositions int) int {
	r := g.rng.Float64()
	var n int
	switch {
	case r < 0.35:
		n = 1
	case r < 0.69:
		n = 2
	case r < 0.93:
		n = 3
	case r < 0.99:
		n = 4
	default:
		n = 0
	}
	if n > maxPositions {
		n = maxPositions
	}
	return n
}

// Linear builds a linear query: source -> [filter] -> [aggregate ->
// [filter]] -> sink. nFilters is clamped to the available positions.
func (g *Generator) Linear(nFilters int, withAgg bool) *stream.Query {
	b := stream.NewBuilder()
	prev := b.AddSource(g.pick(g.cfg.LinearRates), g.schema())
	maxPos := 1
	if withAgg {
		maxPos = 2
	}
	if nFilters > maxPos {
		nFilters = maxPos
	}
	placed := 0
	if nFilters > placed {
		f := g.addFilter(b)
		b.Connect(prev, f)
		prev = f
		placed++
	}
	if withAgg {
		a := g.addAggregate(b)
		b.Connect(prev, a)
		prev = a
		if nFilters > placed {
			f := g.addFilter(b)
			b.Connect(prev, f)
			prev = f
			placed++
		}
	}
	k := b.AddSink()
	b.Connect(prev, k)
	return b.MustBuild()
}

// branch builds source -> optional filter and returns the open end.
func (g *Generator) branch(b *stream.Builder, rates []float64, withFilter bool) int {
	prev := b.AddSource(g.pick(rates), g.schema())
	if withFilter {
		f := g.addFilter(b)
		b.Connect(prev, f)
		prev = f
	}
	return prev
}

// TwoWay builds a 2-way windowed join query following Figure 6.
func (g *Generator) TwoWay(nFilters int, withAgg bool) *stream.Query {
	maxPos := 3 // two source branches + post-join
	if withAgg {
		maxPos = 4
	}
	if nFilters > maxPos {
		nFilters = maxPos
	}
	b := stream.NewBuilder()
	left := g.branch(b, g.cfg.TwoWayRates, nFilters >= 1)
	right := g.branch(b, g.cfg.TwoWayRates, nFilters >= 2)
	j := b.AddJoin(stream.AllDataTypes()[g.rng.Intn(3)], g.window(), g.joinSelectivity())
	b.Connect(left, j).Connect(right, j)
	prev := j
	if nFilters >= 3 {
		f := g.addFilter(b)
		b.Connect(prev, f)
		prev = f
	}
	if withAgg {
		a := g.addAggregate(b)
		b.Connect(prev, a)
		prev = a
		if nFilters >= 4 {
			f := g.addFilter(b)
			b.Connect(prev, f)
			prev = f
		}
	}
	k := b.AddSink()
	b.Connect(prev, k)
	return b.MustBuild()
}

// ThreeWay builds a 3-way join query: join(join(s1, s2), s3) with optional
// filters per branch, post-join filters and an optional aggregation, as in
// the Figure 6 template.
func (g *Generator) ThreeWay(nFilters int, withAgg bool) *stream.Query {
	maxPos := 5
	if withAgg {
		maxPos = 6
	}
	if nFilters > maxPos {
		nFilters = maxPos
	}
	b := stream.NewBuilder()
	s1 := g.branch(b, g.cfg.ThreeWayRates, nFilters >= 1)
	s2 := g.branch(b, g.cfg.ThreeWayRates, nFilters >= 2)
	j1 := b.AddJoin(stream.AllDataTypes()[g.rng.Intn(3)], g.window(), g.joinSelectivity())
	b.Connect(s1, j1).Connect(s2, j1)
	mid := j1
	if nFilters >= 4 {
		f := g.addFilter(b)
		b.Connect(mid, f)
		mid = f
	}
	s3 := g.branch(b, g.cfg.ThreeWayRates, nFilters >= 3)
	j2 := b.AddJoin(stream.AllDataTypes()[g.rng.Intn(3)], g.window(), g.joinSelectivity())
	b.Connect(mid, j2).Connect(s3, j2)
	prev := j2
	if nFilters >= 5 {
		f := g.addFilter(b)
		b.Connect(prev, f)
		prev = f
	}
	if withAgg {
		a := g.addAggregate(b)
		b.Connect(prev, a)
		prev = a
		if nFilters >= 6 {
			f := g.addFilter(b)
			b.Connect(prev, f)
			prev = f
		}
	}
	k := b.AddSink()
	b.Connect(prev, k)
	return b.MustBuild()
}

// Query draws one query with the corpus mix of Section VI: 35% linear,
// 34% 2-way join, 31% 3-way join; 50% with an aggregation; filter counts
// per the corpus distribution.
func (g *Generator) Query() *stream.Query {
	withAgg := g.rng.Intn(2) == 0
	r := g.rng.Float64()
	switch {
	case r < 0.35:
		maxPos := 1
		if withAgg {
			maxPos = 2
		}
		return g.Linear(g.filterCount(maxPos), withAgg)
	case r < 0.69:
		maxPos := 3
		if withAgg {
			maxPos = 4
		}
		return g.TwoWay(g.filterCount(maxPos), withAgg)
	default:
		maxPos := 5
		if withAgg {
			maxPos = 6
		}
		return g.ThreeWay(g.filterCount(maxPos), withAgg)
	}
}

// QueryOfClass draws a query of the requested Figure 8 class.
func (g *Generator) QueryOfClass(class stream.QueryClass) *stream.Query {
	switch class {
	case stream.ClassLinear:
		return g.Linear(g.filterCount(1), false)
	case stream.ClassLinearAgg:
		return g.Linear(g.filterCount(2), true)
	case stream.ClassTwoWayJoin:
		return g.TwoWay(g.filterCount(3), false)
	case stream.ClassTwoWayJoinAgg:
		return g.TwoWay(g.filterCount(4), true)
	case stream.ClassThreeWayJoin:
		return g.ThreeWay(g.filterCount(5), false)
	case stream.ClassThreeWayJoinAgg:
		return g.ThreeWay(g.filterCount(6), true)
	default:
		panic(fmt.Sprintf("workload: unknown query class %v", class))
	}
}

// FilterChain builds the unseen query pattern of Exp 5: a chain of n
// consecutive filter operators (training queries never chain filters
// directly). n must be at least 2.
func (g *Generator) FilterChain(n int) *stream.Query {
	if n < 2 {
		panic("workload: filter chains start at 2 filters")
	}
	b := stream.NewBuilder()
	prev := b.AddSource(g.pick(g.cfg.LinearRates), g.schema())
	for i := 0; i < n; i++ {
		f := g.addFilter(b)
		b.Connect(prev, f)
		prev = f
	}
	k := b.AddSink()
	b.Connect(prev, k)
	return b.MustBuild()
}

// FilterQuery builds the fixed-shape linear filter query of Exp 2b with an
// explicit event rate and selectivity.
func (g *Generator) FilterQuery(rate, selectivity float64) *stream.Query {
	b := stream.NewBuilder()
	s := b.AddSource(rate, g.schema())
	f := b.AddFilter(stream.FilterGT, stream.TypeInt, selectivity)
	k := b.AddSink()
	b.Chain(s, f, k)
	return b.MustBuild()
}

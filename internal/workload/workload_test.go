package workload

import (
	"math"
	"testing"

	"costream/internal/stream"
)

func newGen(seed int64) *Generator { return New(DefaultConfig(seed)) }

func TestQueryMixMatchesPaper(t *testing.T) {
	g := newGen(1)
	const n = 3000
	classCount := map[int]int{} // join count
	aggCount := 0
	filterHist := map[int]int{}
	for i := 0; i < n; i++ {
		q := g.Query()
		if err := q.Validate(); err != nil {
			t.Fatalf("generated invalid query: %v", err)
		}
		classCount[q.CountType(stream.OpJoin)]++
		if q.CountType(stream.OpAggregate) > 0 {
			aggCount++
		}
		filterHist[q.CountType(stream.OpFilter)]++
	}
	frac := func(c int) float64 { return float64(c) / n }
	if f := frac(classCount[0]); math.Abs(f-0.35) > 0.04 {
		t.Errorf("linear fraction = %v, want ~0.35", f)
	}
	if f := frac(classCount[1]); math.Abs(f-0.34) > 0.04 {
		t.Errorf("2-way fraction = %v, want ~0.34", f)
	}
	if f := frac(classCount[2]); math.Abs(f-0.31) > 0.04 {
		t.Errorf("3-way fraction = %v, want ~0.31", f)
	}
	if f := frac(aggCount); math.Abs(f-0.5) > 0.04 {
		t.Errorf("aggregation fraction = %v, want ~0.5", f)
	}
	// Filter counts are clamped by template positions, so only check the
	// support covers 1..4 and that most queries have at least one filter.
	for _, k := range []int{1, 2, 3, 4} {
		if filterHist[k] == 0 {
			t.Errorf("no queries with %d filters generated", k)
		}
	}
	if frac(filterHist[0]) > 0.05 {
		t.Errorf("zero-filter fraction = %v, want small", frac(filterHist[0]))
	}
}

func TestNoChainedFiltersInTrainingTemplates(t *testing.T) {
	g := newGen(2)
	for i := 0; i < 500; i++ {
		q := g.Query()
		for idx, op := range q.Ops {
			if op.Type != stream.OpFilter {
				continue
			}
			for _, d := range q.Downstream(idx) {
				if q.Ops[d].Type == stream.OpFilter {
					t.Fatalf("training query %d chains filters (ops %d->%d)", i, idx, d)
				}
			}
		}
	}
}

func TestFilterChainShape(t *testing.T) {
	g := newGen(3)
	for _, n := range []int{2, 3, 4} {
		q := g.FilterChain(n)
		if got := q.CountType(stream.OpFilter); got != n {
			t.Errorf("FilterChain(%d) has %d filters", n, got)
		}
		chained := 0
		for idx, op := range q.Ops {
			if op.Type != stream.OpFilter {
				continue
			}
			for _, d := range q.Downstream(idx) {
				if q.Ops[d].Type == stream.OpFilter {
					chained++
				}
			}
		}
		if chained != n-1 {
			t.Errorf("FilterChain(%d) has %d chained pairs, want %d", n, chained, n-1)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("FilterChain(1) must panic")
		}
	}()
	g.FilterChain(1)
}

func TestQueryOfClass(t *testing.T) {
	g := newGen(4)
	for _, class := range []stream.QueryClass{
		stream.ClassLinear, stream.ClassLinearAgg,
		stream.ClassTwoWayJoin, stream.ClassTwoWayJoinAgg,
		stream.ClassThreeWayJoin, stream.ClassThreeWayJoinAgg,
	} {
		for i := 0; i < 20; i++ {
			q := g.QueryOfClass(class)
			if q.Class() != class {
				t.Fatalf("QueryOfClass(%v) produced %v", class, q.Class())
			}
		}
	}
}

func TestRatesComeFromTemplateGrids(t *testing.T) {
	g := newGen(5)
	in := func(v float64, grid []float64) bool {
		for _, x := range grid {
			if x == v {
				return true
			}
		}
		return false
	}
	for i := 0; i < 100; i++ {
		q := g.QueryOfClass(stream.ClassThreeWayJoin)
		for _, idx := range q.Sources() {
			if !in(q.Ops[idx].EventRate, ThreeWayRates) {
				t.Fatalf("3-way source rate %v not in grid", q.Ops[idx].EventRate)
			}
		}
		l := g.QueryOfClass(stream.ClassLinear)
		for _, idx := range l.Sources() {
			if !in(l.Ops[idx].EventRate, LinearRates) {
				t.Fatalf("linear source rate %v not in grid", l.Ops[idx].EventRate)
			}
		}
	}
}

func TestWindowsWithinTableII(t *testing.T) {
	g := newGen(6)
	for i := 0; i < 300; i++ {
		q := g.Query()
		for _, op := range q.Ops {
			if op.Window == nil {
				continue
			}
			w := op.Window
			if err := w.Validate(); err != nil {
				t.Fatalf("invalid window: %v", err)
			}
			if w.Policy == stream.WindowCountBased {
				if w.Size < 5 || w.Size > 640 {
					t.Fatalf("count window size %v off-grid", w.Size)
				}
			} else if w.Size < 0.25 || w.Size > 16 {
				t.Fatalf("time window size %v off-grid", w.Size)
			}
			if w.Type == stream.WindowSliding {
				ratio := w.Slide / w.Size
				if ratio < 0.15 || ratio > 0.75 {
					t.Fatalf("slide ratio %v outside [0.3,0.7] (rounding tolerance)", ratio)
				}
			}
		}
	}
}

func TestSchemaWidths(t *testing.T) {
	g := newGen(7)
	for i := 0; i < 200; i++ {
		q := g.Query()
		for _, idx := range q.Sources() {
			w := len(q.Ops[idx].FieldTypes)
			if w < MinTupleWidth || w > MaxTupleWidth {
				t.Fatalf("schema width %d outside [3,10]", w)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, g2 := newGen(42), newGen(42)
	for i := 0; i < 20; i++ {
		q1, q2 := g1.Query(), g2.Query()
		if len(q1.Ops) != len(q2.Ops) {
			t.Fatalf("iteration %d: op counts differ", i)
		}
		for j := range q1.Ops {
			if q1.Ops[j].Type != q2.Ops[j].Type || q1.Ops[j].Selectivity != q2.Ops[j].Selectivity {
				t.Fatalf("iteration %d op %d differs", i, j)
			}
		}
	}
}

func TestBenchmarkQueries(t *testing.T) {
	g := newGen(8)
	for _, id := range AllBenchmarks() {
		q := g.BenchmarkQuery(id)
		if err := q.Validate(); err != nil {
			t.Fatalf("%v: invalid query: %v", id, err)
		}
		if id.String() == "unknown" {
			t.Fatalf("missing name for %d", id)
		}
	}
	// Advertisement: join present.
	if q := g.BenchmarkQuery(Advertisement); q.CountType(stream.OpJoin) != 1 {
		t.Error("advertisement benchmark must join two streams")
	}
	// Spike detection: contains a 2-filter chain (unseen pattern).
	q := g.BenchmarkQuery(SpikeDetection)
	chain := false
	for idx, op := range q.Ops {
		if op.Type == stream.OpFilter {
			for _, d := range q.Downstream(idx) {
				if q.Ops[d].Type == stream.OpFilter {
					chain = true
				}
			}
		}
	}
	if !chain {
		t.Error("spike detection must contain consecutive filters")
	}
	// Smart grid: 30 s window is outside the training grid.
	for _, id := range []BenchmarkID{SmartGridGlobal, SmartGridLocal} {
		q := g.BenchmarkQuery(id)
		found := false
		for _, op := range q.Ops {
			if op.Window != nil && op.Window.Size == 30 {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: expected unseen 30 s window", id)
		}
	}
	// Global vs local differ in group-by.
	global := g.BenchmarkQuery(SmartGridGlobal)
	local := g.BenchmarkQuery(SmartGridLocal)
	gGB, lGB := false, false
	for _, op := range global.Ops {
		if op.Type == stream.OpAggregate {
			gGB = op.HasGroupBy
		}
	}
	for _, op := range local.Ops {
		if op.Type == stream.OpAggregate {
			lGB = op.HasGroupBy
		}
	}
	if gGB || !lGB {
		t.Errorf("global group-by = %v (want false), local = %v (want true)", gGB, lGB)
	}
}

func TestClusterSampling(t *testing.T) {
	g := newGen(9)
	for i := 0; i < 50; i++ {
		c := g.Cluster()
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.NumHosts() < 3 || c.NumHosts() > 6 {
			t.Fatalf("cluster size %d outside [3,6]", c.NumHosts())
		}
	}
}

func TestFilterQuery(t *testing.T) {
	g := newGen(10)
	q := g.FilterQuery(800, 0.25)
	if q.Class() != stream.ClassLinear {
		t.Error("FilterQuery must be linear")
	}
	if q.Ops[q.Sources()[0]].EventRate != 800 {
		t.Error("rate not honored")
	}
	var sel float64
	for _, op := range q.Ops {
		if op.Type == stream.OpFilter {
			sel = op.Selectivity
		}
	}
	if sel != 0.25 {
		t.Errorf("selectivity = %v, want 0.25", sel)
	}
}

func TestSelectivityRanges(t *testing.T) {
	g := newGen(11)
	for i := 0; i < 500; i++ {
		q := g.Query()
		for _, op := range q.Ops {
			switch op.Type {
			case stream.OpFilter:
				if op.Selectivity <= 0 || op.Selectivity > 1 {
					t.Fatalf("filter selectivity %v out of range", op.Selectivity)
				}
			case stream.OpJoin:
				if op.Selectivity < 1e-5-1e-12 || op.Selectivity > 1e-2+1e-12 {
					t.Fatalf("join selectivity %v outside [1e-5,1e-2]", op.Selectivity)
				}
			case stream.OpAggregate:
				if op.Selectivity < 0.01-1e-12 || op.Selectivity > 1 {
					t.Fatalf("agg selectivity %v outside [0.01,1]", op.Selectivity)
				}
			}
		}
	}
}

package workload

import (
	"math"

	"costream/internal/stream"
)

// BenchmarkID names the unseen real-world benchmark queries of Exp 6,
// derived from DSPBench [36] and the DEBS'14 Grand Challenge [40].
type BenchmarkID int

// Benchmark queries.
const (
	Advertisement BenchmarkID = iota
	SpikeDetection
	SmartGridGlobal
	SmartGridLocal
)

var benchmarkNames = [...]string{"Advertisement", "Spike Detection", "Smart Grid (global)", "Smart Grid (local)"}

func (b BenchmarkID) String() string {
	if b < 0 || int(b) >= len(benchmarkNames) {
		return "unknown"
	}
	return benchmarkNames[b]
}

// AllBenchmarks lists the Exp 6 benchmark queries in paper order.
func AllBenchmarks() []BenchmarkID {
	return []BenchmarkID{Advertisement, SpikeDetection, SmartGridGlobal, SmartGridLocal}
}

// BenchmarkQuery builds the given benchmark with a randomly drawn event
// rate (the paper executes each benchmark 100 times with random event
// rates and placements because the original benchmarks specify none).
// The data-distribution-dependent selectivities are fixed per benchmark to
// their realistic values, which differ from the synthetic training mix.
func (g *Generator) BenchmarkQuery(id BenchmarkID) *stream.Query {
	switch id {
	case Advertisement:
		return g.advertisement()
	case SpikeDetection:
		return g.spikeDetection()
	case SmartGridGlobal:
		return g.smartGrid(false)
	case SmartGridLocal:
		return g.smartGrid(true)
	default:
		panic("workload: unknown benchmark")
	}
}

// advertisement: the DSPBench ad-analytics sub-query of the paper — two
// real-world streams (clicks and impressions), a filter on the click
// stream and a windowed join on the ad identifier.
func (g *Generator) advertisement() *stream.Query {
	rate := g.pick(TwoWayRates)
	b := stream.NewBuilder()
	// Click stream: (query_id, ad_id, ts) - ids are strings in the data.
	clicks := b.AddSource(rate, []stream.DataType{stream.TypeString, stream.TypeString, stream.TypeInt})
	// Impression stream carries more attributes.
	impressions := b.AddSource(rate*4, []stream.DataType{
		stream.TypeString, stream.TypeString, stream.TypeInt, stream.TypeDouble, stream.TypeString})
	// Clicks are a small fraction of impressions; the filter removes bot
	// traffic with low selectivity.
	f := b.AddFilter(stream.FilterNE, stream.TypeString, 0.4)
	b.Connect(clicks, f)
	j := b.AddJoin(stream.TypeString,
		stream.Window{Type: stream.WindowSliding, Policy: stream.WindowTimeBased, Size: 8, Slide: 4},
		clickJoinSelectivity(rate))
	b.Connect(f, j).Connect(impressions, j)
	k := b.AddSink()
	b.Connect(j, k)
	return b.MustBuild()
}

// clickJoinSelectivity models real click/impression matching: each click
// matches its one impression within the window, so the selectivity over
// the cartesian product shrinks with the window volume.
func clickJoinSelectivity(rate float64) float64 {
	vol := rate * 4 * 8 // impressions in one window
	if vol <= 0 {
		return 1e-4
	}
	return math.Min(1.0/vol, 1e-2)
}

// spikeDetection: IoT sensor stream, moving average per device, filter
// keeping only readings far from the average (two consecutive filters
// after the aggregate - the pattern the flat-vector baseline misclassifies
// in the paper).
func (g *Generator) spikeDetection() *stream.Query {
	rate := g.pick(LinearRates)
	b := stream.NewBuilder()
	// (device_id, temperature, humidity, ts)
	s := b.AddSource(rate, []stream.DataType{stream.TypeString, stream.TypeDouble, stream.TypeDouble, stream.TypeInt})
	// Moving average over a count-based sliding window per device.
	a := b.AddAggregate(stream.AggMean, stream.TypeDouble, stream.TypeString, true,
		stream.Window{Type: stream.WindowSliding, Policy: stream.WindowCountBased, Size: 80, Slide: 40}, 0.4)
	// Spike predicate: |value - avg| > threshold, rare by nature...
	f1 := b.AddFilter(stream.FilterGT, stream.TypeDouble, 0.05)
	// ...followed by a sanity filter on the device prefix (2-filter chain).
	f2 := b.AddFilter(stream.FilterStartsWith, stream.TypeString, 0.9)
	k := b.AddSink()
	b.Chain(s, a, f1, f2, k)
	return b.MustBuild()
}

// smartGrid: DEBS'14 energy queries. The global variant computes the
// grid-wide sliding-window load; the local variant groups by household.
// The 30 s window length is outside the Table II training grid, exercising
// window-length extrapolation as in the paper.
func (g *Generator) smartGrid(local bool) *stream.Query {
	rate := g.pick(LinearRates)
	b := stream.NewBuilder()
	// (id, ts, value, property, plug_id, household_id, house_id)
	s := b.AddSource(rate, []stream.DataType{
		stream.TypeInt, stream.TypeInt, stream.TypeDouble, stream.TypeInt,
		stream.TypeInt, stream.TypeInt, stream.TypeInt})
	w := stream.Window{Type: stream.WindowSliding, Policy: stream.WindowTimeBased, Size: 30, Slide: 15}
	var a int
	if local {
		// Household count is much smaller than the window volume.
		a = b.AddAggregate(stream.AggAvg, stream.TypeDouble, stream.TypeInt, true, w, 0.02)
	} else {
		a = b.AddAggregate(stream.AggAvg, stream.TypeDouble, stream.TypeInt, false, w, 1)
	}
	k := b.AddSink()
	b.Chain(s, a, k)
	return b.MustBuild()
}

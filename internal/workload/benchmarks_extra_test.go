package workload

import (
	"testing"

	"costream/internal/stream"
)

func TestBenchmarkQueriesDeterministicPerSeed(t *testing.T) {
	for _, id := range AllBenchmarks() {
		g1, g2 := newGen(77), newGen(77)
		q1, q2 := g1.BenchmarkQuery(id), g2.BenchmarkQuery(id)
		if len(q1.Ops) != len(q2.Ops) {
			t.Fatalf("%v: op counts differ", id)
		}
		for i := range q1.Ops {
			if q1.Ops[i].EventRate != q2.Ops[i].EventRate || q1.Ops[i].Selectivity != q2.Ops[i].Selectivity {
				t.Fatalf("%v: op %d differs across identical seeds", id, i)
			}
		}
	}
}

func TestBenchmarkRatesVary(t *testing.T) {
	g := newGen(78)
	rates := map[float64]bool{}
	for i := 0; i < 40; i++ {
		q := g.BenchmarkQuery(SmartGridGlobal)
		rates[q.Ops[q.Sources()[0]].EventRate] = true
	}
	if len(rates) < 3 {
		t.Errorf("benchmark event rates barely vary: %d distinct values", len(rates))
	}
}

func TestAdvertisementImpressionRatio(t *testing.T) {
	g := newGen(79)
	q := g.BenchmarkQuery(Advertisement)
	srcs := q.Sources()
	if len(srcs) != 2 {
		t.Fatalf("advertisement has %d sources, want 2", len(srcs))
	}
	r0 := q.Ops[srcs[0]].EventRate
	r1 := q.Ops[srcs[1]].EventRate
	hi, lo := r0, r1
	if hi < lo {
		hi, lo = lo, hi
	}
	if hi != 4*lo {
		t.Errorf("impressions/clicks ratio = %v, want 4", hi/lo)
	}
}

func TestClickJoinSelectivityBounds(t *testing.T) {
	for _, rate := range TwoWayRates {
		sel := clickJoinSelectivity(rate)
		if sel <= 0 || sel > 1e-2 {
			t.Errorf("selectivity %v for rate %v out of (0, 1e-2]", sel, rate)
		}
	}
	if s := clickJoinSelectivity(0); s != 1e-4 {
		t.Errorf("degenerate rate selectivity = %v, want 1e-4", s)
	}
}

func TestSpikeDetectionClassifiesAsLinearAgg(t *testing.T) {
	g := newGen(80)
	q := g.BenchmarkQuery(SpikeDetection)
	if q.Class() != stream.ClassLinearAgg {
		t.Errorf("spike detection class = %v, want Linear+Agg", q.Class())
	}
}

func TestUnknownBenchmarkPanics(t *testing.T) {
	g := newGen(81)
	defer func() {
		if recover() == nil {
			t.Error("unknown benchmark id must panic")
		}
	}()
	g.BenchmarkQuery(BenchmarkID(99))
}

func TestConfigDefaultsFilledIn(t *testing.T) {
	g := New(Config{Seed: 1})
	q := g.Query()
	if err := q.Validate(); err != nil {
		t.Fatalf("generator with zero config produced invalid query: %v", err)
	}
	c := g.Cluster()
	if c.NumHosts() < 3 {
		t.Errorf("default cluster too small: %d", c.NumHosts())
	}
}

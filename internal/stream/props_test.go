package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFilterChainRateIsProductOfSelectivities(t *testing.T) {
	f := func(s1, s2, s3 uint8) bool {
		sel := func(v uint8) float64 { return float64(v%100+1) / 100 }
		b := NewBuilder()
		src := b.AddSource(1000, []DataType{TypeInt})
		f1 := b.AddFilter(FilterLT, TypeInt, sel(s1))
		f2 := b.AddFilter(FilterGT, TypeInt, sel(s2))
		f3 := b.AddFilter(FilterNE, TypeInt, sel(s3))
		k := b.AddSink()
		b.Chain(src, f1, f2, f3, k)
		q, err := b.Build()
		if err != nil {
			return false
		}
		r, err := q.DeriveRates()
		if err != nil {
			return false
		}
		want := 1000 * sel(s1) * sel(s2) * sel(s3)
		return math.Abs(r.In[k]-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinOutputGrowsWithWindow(t *testing.T) {
	mk := func(size float64) float64 {
		b := NewBuilder()
		s1 := b.AddSource(500, []DataType{TypeInt})
		s2 := b.AddSource(500, []DataType{TypeInt})
		j := b.AddJoin(TypeInt, Window{Type: WindowTumbling, Policy: WindowCountBased, Size: size, Slide: size}, 1e-3)
		k := b.AddSink()
		b.Connect(s1, j).Connect(s2, j).Connect(j, k)
		q := b.MustBuild()
		r, _ := q.DeriveRates()
		return r.Out[j]
	}
	if mk(200) <= mk(20) {
		t.Error("join output rate must grow with window size")
	}
}

func TestAggregationOutputCappedByFiringRate(t *testing.T) {
	// A global aggregate emits exactly once per fire regardless of
	// selectivity.
	b := NewBuilder()
	s := b.AddSource(10000, []DataType{TypeDouble})
	a := b.AddAggregate(AggAvg, TypeDouble, TypeInt, false,
		Window{Type: WindowSliding, Policy: WindowCountBased, Size: 100, Slide: 50}, 0.99)
	k := b.AddSink()
	b.Chain(s, a, k)
	q := b.MustBuild()
	r, _ := q.DeriveRates()
	fires := 10000.0 / 50
	if math.Abs(r.Out[a]-fires) > 1e-9 {
		t.Errorf("global agg rate %v, want %v (one tuple per fire)", r.Out[a], fires)
	}
}

func TestResidenceSecondsHalfSlide(t *testing.T) {
	tw := Window{Type: WindowSliding, Policy: WindowTimeBased, Size: 8, Slide: 4}
	if got := tw.ResidenceSeconds(123); got != 2 {
		t.Errorf("time-window residence %v, want 2", got)
	}
	cw := Window{Type: WindowSliding, Policy: WindowCountBased, Size: 100, Slide: 50}
	if got := cw.ResidenceSeconds(100); got != 0.25 {
		t.Errorf("count-window residence %v, want 0.25", got)
	}
	if got := cw.ResidenceSeconds(0); got != 0 {
		t.Errorf("zero-rate residence %v, want 0", got)
	}
}

func TestAvgFieldBytes(t *testing.T) {
	if got := AvgFieldBytes([]DataType{TypeInt, TypeString}); got != 20 {
		t.Errorf("avg bytes = %v, want (8+32)/2 = 20", got)
	}
	if got := AvgFieldBytes(nil); got != 8 {
		t.Errorf("empty schema avg = %v, want 8", got)
	}
}

func TestTreeShapedThreeWayJoin(t *testing.T) {
	// join(join(s1,s2), s3): data flow is a tree, not a chain.
	b := NewBuilder()
	s1 := b.AddSource(100, []DataType{TypeInt})
	s2 := b.AddSource(100, []DataType{TypeInt})
	s3 := b.AddSource(100, []DataType{TypeInt})
	j1 := b.AddJoin(TypeInt, Window{Type: WindowTumbling, Policy: WindowCountBased, Size: 10, Slide: 10}, 1e-3)
	j2 := b.AddJoin(TypeInt, Window{Type: WindowTumbling, Policy: WindowCountBased, Size: 10, Slide: 10}, 1e-3)
	k := b.AddSink()
	b.Connect(s1, j1).Connect(s2, j1).Connect(j1, j2).Connect(s3, j2).Connect(j2, k)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if q.Class() != ClassThreeWayJoin {
		t.Errorf("class = %v, want 3-Way-Join", q.Class())
	}
	r, err := q.DeriveRates()
	if err != nil {
		t.Fatal(err)
	}
	// Output width: (1+1)+1 = 3 attributes.
	if r.Width[j2] != 3 {
		t.Errorf("j2 width = %d, want 3", r.Width[j2])
	}
}

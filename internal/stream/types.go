// Package stream defines the streaming query algebra used throughout the
// COSTREAM reproduction: data types, operators (source, filter, windowed
// join, windowed aggregation, sink), window specifications and DAG-shaped
// query plans together with the rate and selectivity propagation rules of
// the paper (Definitions 6-8).
package stream

import "fmt"

// DataType enumerates the attribute types supported by the benchmark
// workloads (Table II of the paper).
type DataType int

// Supported attribute data types.
const (
	TypeInt DataType = iota
	TypeString
	TypeDouble
)

var dataTypeNames = [...]string{"int", "string", "double"}

func (d DataType) String() string {
	if d < 0 || int(d) >= len(dataTypeNames) {
		return fmt.Sprintf("DataType(%d)", int(d))
	}
	return dataTypeNames[d]
}

// AllDataTypes lists every supported data type, useful for generators.
func AllDataTypes() []DataType { return []DataType{TypeInt, TypeString, TypeDouble} }

// Bytes returns the serialized width in bytes of one value of the type,
// used by the simulator to compute tuple sizes and window state.
func (d DataType) Bytes() float64 {
	switch d {
	case TypeInt:
		return 8
	case TypeDouble:
		return 8
	case TypeString:
		return 32 // average payload string
	default:
		return 8
	}
}

// OpType enumerates operator kinds in a query plan.
type OpType int

// Operator kinds. Windows are attached to joins and aggregations, matching
// the paper's algebraic operator set.
const (
	OpSource OpType = iota
	OpFilter
	OpJoin
	OpAggregate
	OpSink
)

var opTypeNames = [...]string{"source", "filter", "join", "aggregate", "sink"}

func (o OpType) String() string {
	if o < 0 || int(o) >= len(opTypeNames) {
		return fmt.Sprintf("OpType(%d)", int(o))
	}
	return opTypeNames[o]
}

// FilterFn enumerates the comparison functions of filter predicates
// (Table II: <, >, <=, >=, !=, startswith, endswith).
type FilterFn int

// Filter comparison functions.
const (
	FilterLT FilterFn = iota
	FilterGT
	FilterLE
	FilterGE
	FilterNE
	FilterStartsWith
	FilterEndsWith
)

var filterFnNames = [...]string{"<", ">", "<=", ">=", "!=", "startswith", "endswith"}

func (f FilterFn) String() string {
	if f < 0 || int(f) >= len(filterFnNames) {
		return fmt.Sprintf("FilterFn(%d)", int(f))
	}
	return filterFnNames[f]
}

// AllFilterFns lists every comparison function.
func AllFilterFns() []FilterFn {
	return []FilterFn{FilterLT, FilterGT, FilterLE, FilterGE, FilterNE, FilterStartsWith, FilterEndsWith}
}

// StringOnly reports whether the function only applies to string operands.
func (f FilterFn) StringOnly() bool { return f == FilterStartsWith || f == FilterEndsWith }

// AggFn enumerates aggregation functions (Table II: min, max, mean, avg).
type AggFn int

// Aggregation functions. The paper lists both "mean" and "avg"; both are
// kept so generated workloads match the published feature grid.
const (
	AggMin AggFn = iota
	AggMax
	AggMean
	AggAvg
)

var aggFnNames = [...]string{"min", "max", "mean", "avg"}

func (a AggFn) String() string {
	if a < 0 || int(a) >= len(aggFnNames) {
		return fmt.Sprintf("AggFn(%d)", int(a))
	}
	return aggFnNames[a]
}

// AllAggFns lists every aggregation function.
func AllAggFns() []AggFn { return []AggFn{AggMin, AggMax, AggMean, AggAvg} }

// WindowType is the shifting strategy of a window.
type WindowType int

// Window shifting strategies.
const (
	WindowSliding WindowType = iota
	WindowTumbling
)

func (w WindowType) String() string {
	if w == WindowSliding {
		return "sliding"
	}
	return "tumbling"
}

// WindowPolicy is the counting mode of a window.
type WindowPolicy int

// Window counting modes.
const (
	WindowCountBased WindowPolicy = iota
	WindowTimeBased
)

func (w WindowPolicy) String() string {
	if w == WindowCountBased {
		return "count"
	}
	return "time"
}

// Window describes a window specification attached to a join or an
// aggregation. Size and Slide are counted in tuples for count-based windows
// and in seconds for time-based windows. Tumbling windows have Slide == Size.
type Window struct {
	Type   WindowType
	Policy WindowPolicy
	Size   float64
	Slide  float64
}

// Validate reports an error if the window specification is inconsistent.
func (w *Window) Validate() error {
	if w.Size <= 0 {
		return fmt.Errorf("window size must be positive, got %v", w.Size)
	}
	if w.Slide <= 0 {
		return fmt.Errorf("window slide must be positive, got %v", w.Slide)
	}
	if w.Slide > w.Size {
		return fmt.Errorf("window slide %v exceeds size %v", w.Slide, w.Size)
	}
	if w.Type == WindowTumbling && w.Slide != w.Size {
		return fmt.Errorf("tumbling window requires slide == size, got slide=%v size=%v", w.Slide, w.Size)
	}
	return nil
}

// ExtentSeconds returns the time span covered by one window instance given
// the tuple arrival rate of the windowed stream.
func (w *Window) ExtentSeconds(arrivalRate float64) float64 {
	if w.Policy == WindowTimeBased {
		return w.Size
	}
	if arrivalRate <= 0 {
		return 0
	}
	return w.Size / arrivalRate
}

// ExtentTuples returns the number of tuples held by one window instance
// given the tuple arrival rate of the windowed stream.
func (w *Window) ExtentTuples(arrivalRate float64) float64 {
	if w.Policy == WindowCountBased {
		return w.Size
	}
	return w.Size * arrivalRate
}

// FiresPerSecond returns how often the window emits results per second
// given the arrival rate; sliding windows fire once per slide.
func (w *Window) FiresPerSecond(arrivalRate float64) float64 {
	if w.Policy == WindowTimeBased {
		if w.Slide <= 0 {
			return 0
		}
		return 1 / w.Slide
	}
	if w.Slide <= 0 || arrivalRate <= 0 {
		return 0
	}
	return arrivalRate / w.Slide
}

// ResidenceSeconds returns the mean extra latency a tuple experiences
// waiting for the window it participates in to fire (half the slide span).
func (w *Window) ResidenceSeconds(arrivalRate float64) float64 {
	if w.Policy == WindowTimeBased {
		return w.Slide / 2
	}
	if arrivalRate <= 0 {
		return 0
	}
	return w.Slide / (2 * arrivalRate)
}

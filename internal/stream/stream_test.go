package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func linearQuery(t *testing.T, rate, sel float64) *Query {
	t.Helper()
	b := NewBuilder()
	s := b.AddSource(rate, []DataType{TypeInt, TypeDouble, TypeString})
	f := b.AddFilter(FilterGT, TypeInt, sel)
	k := b.AddSink()
	b.Chain(s, f, k)
	q, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return q
}

func TestBuilderLinear(t *testing.T) {
	q := linearQuery(t, 1000, 0.5)
	if got := q.NumOps(); got != 3 {
		t.Fatalf("NumOps = %d, want 3", got)
	}
	if q.Class() != ClassLinear {
		t.Fatalf("Class = %v, want Linear", q.Class())
	}
	r, err := q.DeriveRates()
	if err != nil {
		t.Fatalf("DeriveRates: %v", err)
	}
	sink := q.Sink()
	if math.Abs(r.In[sink]-500) > 1e-9 {
		t.Errorf("sink arrival rate = %v, want 500", r.In[sink])
	}
}

func TestFilterRateProportionalToSelectivity(t *testing.T) {
	f := func(rate100 uint16, selP uint8) bool {
		rate := float64(rate100%10000) + 1
		sel := float64(selP%101) / 100
		b := NewBuilder()
		s := b.AddSource(rate, []DataType{TypeInt})
		fl := b.AddFilter(FilterLT, TypeInt, sel)
		k := b.AddSink()
		b.Chain(s, fl, k)
		q, err := b.Build()
		if err != nil {
			return false
		}
		r, err := q.DeriveRates()
		if err != nil {
			return false
		}
		want := rate * sel
		return math.Abs(r.Out[fl]-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinRateFormula(t *testing.T) {
	// Count-based window of 100 tuples per side, selectivity 0.01:
	// out = sel*(r1*W2 + r2*W1) = 0.01*(200*100 + 300*100) = 500.
	b := NewBuilder()
	s1 := b.AddSource(200, []DataType{TypeInt, TypeInt})
	s2 := b.AddSource(300, []DataType{TypeInt, TypeDouble})
	j := b.AddJoin(TypeInt, Window{Type: WindowTumbling, Policy: WindowCountBased, Size: 100, Slide: 100}, 0.01)
	k := b.AddSink()
	b.Connect(s1, j).Connect(s2, j).Connect(j, k)
	q, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	r, err := q.DeriveRates()
	if err != nil {
		t.Fatalf("DeriveRates: %v", err)
	}
	if math.Abs(r.Out[j]-500) > 1e-9 {
		t.Errorf("join out rate = %v, want 500", r.Out[j])
	}
	if r.Width[j] != 4 {
		t.Errorf("join out width = %d, want 4", r.Width[j])
	}
	if q.Class() != ClassTwoWayJoin {
		t.Errorf("Class = %v, want 2-Way-Join", q.Class())
	}
}

func TestAggregationRate(t *testing.T) {
	// Count window size 100, slide 50, sel 0.2, rate 1000:
	// fires = 1000/50 = 20/s; groups = 0.2*100 = 20; out = 400.
	b := NewBuilder()
	s := b.AddSource(1000, []DataType{TypeInt, TypeDouble})
	a := b.AddAggregate(AggMean, TypeDouble, TypeInt, true,
		Window{Type: WindowSliding, Policy: WindowCountBased, Size: 100, Slide: 50}, 0.2)
	k := b.AddSink()
	b.Chain(s, a, k)
	q := b.MustBuild()
	r, err := q.DeriveRates()
	if err != nil {
		t.Fatalf("DeriveRates: %v", err)
	}
	if math.Abs(r.Out[a]-400) > 1e-9 {
		t.Errorf("agg out rate = %v, want 400", r.Out[a])
	}
}

func TestGlobalAggregationEmitsOneGroup(t *testing.T) {
	b := NewBuilder()
	s := b.AddSource(1000, []DataType{TypeDouble})
	a := b.AddAggregate(AggMax, TypeDouble, TypeInt, false,
		Window{Type: WindowTumbling, Policy: WindowTimeBased, Size: 2, Slide: 2}, 0.5)
	k := b.AddSink()
	b.Chain(s, a, k)
	q := b.MustBuild()
	r, _ := q.DeriveRates()
	if math.Abs(r.Out[a]-0.5) > 1e-9 { // fires = 1/2 per sec, 1 group
		t.Errorf("global agg out rate = %v, want 0.5", r.Out[a])
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Builder
	}{
		{"no sink", func() *Builder {
			b := NewBuilder()
			s := b.AddSource(100, []DataType{TypeInt})
			f := b.AddFilter(FilterLT, TypeInt, 0.5)
			b.Connect(s, f)
			return b
		}},
		{"two sinks", func() *Builder {
			b := NewBuilder()
			s := b.AddSource(100, []DataType{TypeInt})
			k1 := b.AddSink()
			k2 := b.AddSink()
			b.Connect(s, k1).Connect(s, k2)
			return b
		}},
		{"join one input", func() *Builder {
			b := NewBuilder()
			s := b.AddSource(100, []DataType{TypeInt})
			j := b.AddJoin(TypeInt, Window{Type: WindowTumbling, Policy: WindowCountBased, Size: 10, Slide: 10}, 0.1)
			k := b.AddSink()
			b.Chain(s, j, k)
			return b
		}},
		{"cycle", func() *Builder {
			b := NewBuilder()
			s := b.AddSource(100, []DataType{TypeInt})
			f1 := b.AddFilter(FilterLT, TypeInt, 0.5)
			f2 := b.AddFilter(FilterGT, TypeInt, 0.5)
			k := b.AddSink()
			b.Chain(s, f1, f2, k)
			b.Connect(f2, f1)
			return b
		}},
		{"zero rate source", func() *Builder {
			b := NewBuilder()
			s := b.AddSource(0, []DataType{TypeInt})
			k := b.AddSink()
			b.Chain(s, k)
			return b
		}},
		{"selectivity > 1", func() *Builder {
			b := NewBuilder()
			s := b.AddSource(100, []DataType{TypeInt})
			f := b.AddFilter(FilterLT, TypeInt, 1.5)
			k := b.AddSink()
			b.Chain(s, f, k)
			return b
		}},
		{"startswith on int literal", func() *Builder {
			b := NewBuilder()
			s := b.AddSource(100, []DataType{TypeString})
			f := b.AddFilter(FilterStartsWith, TypeInt, 0.5)
			k := b.AddSink()
			b.Chain(s, f, k)
			return b
		}},
		{"connect out of range", func() *Builder {
			b := NewBuilder()
			s := b.AddSource(100, []DataType{TypeInt})
			b.Connect(s, 99)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.build().Build(); err == nil {
				t.Errorf("Build succeeded, want error")
			}
		})
	}
}

func TestWindowValidate(t *testing.T) {
	bad := []Window{
		{Type: WindowSliding, Policy: WindowCountBased, Size: 0, Slide: 1},
		{Type: WindowSliding, Policy: WindowCountBased, Size: 10, Slide: 0},
		{Type: WindowSliding, Policy: WindowCountBased, Size: 10, Slide: 20},
		{Type: WindowTumbling, Policy: WindowCountBased, Size: 10, Slide: 5},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid window %+v", i, w)
		}
	}
	good := Window{Type: WindowSliding, Policy: WindowTimeBased, Size: 4, Slide: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v, want nil", good, err)
	}
}

func TestWindowExtents(t *testing.T) {
	cw := Window{Type: WindowSliding, Policy: WindowCountBased, Size: 100, Slide: 50}
	if got := cw.ExtentSeconds(200); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("count window extent seconds = %v, want 0.5", got)
	}
	if got := cw.FiresPerSecond(200); math.Abs(got-4) > 1e-9 {
		t.Errorf("count window fires = %v, want 4", got)
	}
	tw := Window{Type: WindowTumbling, Policy: WindowTimeBased, Size: 2, Slide: 2}
	if got := tw.ExtentTuples(300); math.Abs(got-600) > 1e-9 {
		t.Errorf("time window extent tuples = %v, want 600", got)
	}
	if got := tw.FiresPerSecond(300); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("time window fires = %v, want 0.5", got)
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	b := NewBuilder()
	s1 := b.AddSource(100, []DataType{TypeInt})
	s2 := b.AddSource(100, []DataType{TypeInt})
	j := b.AddJoin(TypeInt, Window{Type: WindowTumbling, Policy: WindowCountBased, Size: 10, Slide: 10}, 0.1)
	k := b.AddSink()
	b.Connect(s1, j).Connect(s2, j).Connect(j, k)
	q := b.MustBuild()
	o1, err := q.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := q.TopoOrder()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("TopoOrder not deterministic: %v vs %v", o1, o2)
		}
	}
	pos := make(map[int]int)
	for i, v := range o1 {
		pos[v] = i
	}
	for _, e := range q.Edges {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topo order %v", e, o1)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := linearQuery(t, 500, 0.3)
	c := q.Clone()
	c.Ops[1].Selectivity = 0.9
	if q.Ops[1].Selectivity == 0.9 {
		t.Error("Clone shares operator memory with original")
	}
	j := NewBuilder()
	s1 := j.AddSource(100, []DataType{TypeInt})
	s2 := j.AddSource(100, []DataType{TypeInt})
	jn := j.AddJoin(TypeInt, Window{Type: WindowTumbling, Policy: WindowCountBased, Size: 10, Slide: 10}, 0.1)
	k := j.AddSink()
	j.Connect(s1, jn).Connect(s2, jn).Connect(jn, k)
	qj := j.MustBuild()
	cj := qj.Clone()
	cj.Ops[2].Window.Size = 999
	if qj.Ops[2].Window.Size == 999 {
		t.Error("Clone shares window memory with original")
	}
}

func TestDeriveRatesIdempotent(t *testing.T) {
	q := linearQuery(t, 800, 0.25)
	r1, err := q.DeriveRates()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := q.DeriveRates()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Out {
		if r1.Out[i] != r2.Out[i] {
			t.Fatalf("DeriveRates not idempotent at op %d: %v vs %v", i, r1.Out[i], r2.Out[i])
		}
	}
}

func TestTupleBytesMonotone(t *testing.T) {
	f := func(w uint8) bool {
		a := TupleBytes(int(w), 8)
		b := TupleBytes(int(w)+1, 8)
		return b > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnumStrings(t *testing.T) {
	if TypeString.String() != "string" {
		t.Errorf("TypeString.String() = %q", TypeString.String())
	}
	if OpJoin.String() != "join" {
		t.Errorf("OpJoin.String() = %q", OpJoin.String())
	}
	if FilterStartsWith.String() != "startswith" {
		t.Errorf("FilterStartsWith.String() = %q", FilterStartsWith.String())
	}
	if AggMean.String() != "mean" {
		t.Errorf("AggMean.String() = %q", AggMean.String())
	}
	if WindowTumbling.String() != "tumbling" || WindowCountBased.String() != "count" {
		t.Error("window enum strings wrong")
	}
	if ClassThreeWayJoinAgg.String() != "3-Way-Join+Agg" {
		t.Errorf("class string = %q", ClassThreeWayJoinAgg.String())
	}
	if DataType(99).String() == "" || OpType(99).String() == "" {
		t.Error("out-of-range enums must still format")
	}
}

func TestUpstreamDownstream(t *testing.T) {
	b := NewBuilder()
	s1 := b.AddSource(100, []DataType{TypeInt})
	s2 := b.AddSource(100, []DataType{TypeInt})
	j := b.AddJoin(TypeInt, Window{Type: WindowTumbling, Policy: WindowCountBased, Size: 10, Slide: 10}, 0.1)
	k := b.AddSink()
	b.Connect(s1, j).Connect(s2, j).Connect(j, k)
	q := b.MustBuild()
	ups := q.Upstream(j)
	if len(ups) != 2 || ups[0] != s1 || ups[1] != s2 {
		t.Errorf("Upstream(join) = %v, want [%d %d]", ups, s1, s2)
	}
	if d := q.Downstream(j); len(d) != 1 || d[0] != k {
		t.Errorf("Downstream(join) = %v, want [%d]", d, k)
	}
	if d := q.Downstream(k); len(d) != 0 {
		t.Errorf("Downstream(sink) = %v, want empty", d)
	}
}

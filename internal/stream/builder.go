package stream

import "fmt"

// Builder assembles query plans with a fluent API. Every Add* method
// returns the index of the new operator so edges can be wired explicitly,
// while Then* helpers chain onto the most recently added operator.
//
//	b := stream.NewBuilder()
//	s := b.AddSource(1000, []stream.DataType{stream.TypeInt, stream.TypeDouble})
//	f := b.AddFilter(stream.FilterGT, stream.TypeInt, 0.5)
//	b.Connect(s, f)
//	k := b.AddSink()
//	b.Connect(f, k)
//	q, err := b.Build()
type Builder struct {
	q      Query
	nextID map[OpType]int
	err    error
}

// NewBuilder returns an empty query builder.
func NewBuilder() *Builder {
	return &Builder{nextID: make(map[OpType]int)}
}

func (b *Builder) add(op *Operator) int {
	n := b.nextID[op.Type]
	b.nextID[op.Type] = n + 1
	if op.ID == "" {
		op.ID = fmt.Sprintf("%s-%d", op.Type, n)
	}
	b.q.Ops = append(b.q.Ops, op)
	return len(b.q.Ops) - 1
}

// AddSource appends a source operator emitting tuples with the given schema
// at the given event rate (tuples/s) and returns its index.
func (b *Builder) AddSource(eventRate float64, schema []DataType) int {
	return b.add(&Operator{
		Type:       OpSource,
		EventRate:  eventRate,
		FieldTypes: append([]DataType(nil), schema...),
	})
}

// AddFilter appends a filter operator and returns its index.
func (b *Builder) AddFilter(fn FilterFn, literal DataType, selectivity float64) int {
	return b.add(&Operator{
		Type:        OpFilter,
		FilterFn:    fn,
		LiteralType: literal,
		Selectivity: selectivity,
	})
}

// AddJoin appends a windowed join operator and returns its index. Wire its
// two inputs with Connect.
func (b *Builder) AddJoin(key DataType, w Window, selectivity float64) int {
	return b.add(&Operator{
		Type:        OpJoin,
		JoinKeyType: key,
		Window:      &w,
		Selectivity: selectivity,
	})
}

// AddAggregate appends a windowed aggregation and returns its index. Pass
// hasGroupBy=false for a global aggregate; groupBy is then ignored.
func (b *Builder) AddAggregate(fn AggFn, value DataType, groupBy DataType, hasGroupBy bool, w Window, selectivity float64) int {
	return b.add(&Operator{
		Type:         OpAggregate,
		AggFn:        fn,
		AggValueType: value,
		GroupByType:  groupBy,
		HasGroupBy:   hasGroupBy,
		Window:       &w,
		Selectivity:  selectivity,
	})
}

// AddSink appends the sink operator and returns its index.
func (b *Builder) AddSink() int {
	return b.add(&Operator{Type: OpSink})
}

// Connect adds a data-flow edge from operator index from to index to.
func (b *Builder) Connect(from, to int) *Builder {
	if b.err != nil {
		return b
	}
	n := len(b.q.Ops)
	if from < 0 || from >= n || to < 0 || to >= n {
		b.err = fmt.Errorf("connect(%d,%d): index out of range (n=%d)", from, to, n)
		return b
	}
	b.q.Edges = append(b.q.Edges, [2]int{from, to})
	return b
}

// Chain connects a sequence of operator indices left to right.
func (b *Builder) Chain(idxs ...int) *Builder {
	for i := 0; i+1 < len(idxs); i++ {
		b.Connect(idxs[i], idxs[i+1])
	}
	return b
}

// Build validates the plan, derives output widths, and returns the query.
func (b *Builder) Build() (*Query, error) {
	if b.err != nil {
		return nil, b.err
	}
	q := b.q.Clone()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if _, err := q.DeriveRates(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustBuild is Build for tests and examples with known-good plans; it
// panics on error.
func (b *Builder) MustBuild() *Query {
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}

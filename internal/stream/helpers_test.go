package stream

import "testing"

func TestEnumListsComplete(t *testing.T) {
	if got := len(AllDataTypes()); got != 3 {
		t.Errorf("AllDataTypes = %d entries, want 3", got)
	}
	if got := len(AllFilterFns()); got != 7 {
		t.Errorf("AllFilterFns = %d entries, want 7", got)
	}
	if got := len(AllAggFns()); got != 4 {
		t.Errorf("AllAggFns = %d entries, want 4", got)
	}
}

func TestIsWindowed(t *testing.T) {
	f := &Operator{Type: OpFilter}
	if f.IsWindowed() || f.IsStateful() {
		t.Error("filter must be stateless")
	}
	j := &Operator{Type: OpJoin, Window: &Window{Type: WindowTumbling, Policy: WindowCountBased, Size: 10, Slide: 10}}
	if !j.IsWindowed() || !j.IsStateful() {
		t.Error("windowed join must be stateful")
	}
}

func TestDataTypeBytes(t *testing.T) {
	if TypeInt.Bytes() != 8 || TypeDouble.Bytes() != 8 {
		t.Error("numeric types must be 8 bytes")
	}
	if TypeString.Bytes() <= TypeInt.Bytes() {
		t.Error("strings must serialize larger than ints")
	}
	if DataType(42).Bytes() <= 0 {
		t.Error("unknown type must have positive fallback size")
	}
}

func TestTupleBytesDegenerate(t *testing.T) {
	if got := TupleBytes(0, 8); got != 24 {
		t.Errorf("zero-width tuple = %v, want envelope 24", got)
	}
	if got := TupleBytes(2, 0); got != 24+16 {
		t.Errorf("zero avg bytes must default to 8: got %v", got)
	}
}

func TestSinkMissing(t *testing.T) {
	q := &Query{Ops: []*Operator{{Type: OpSource, EventRate: 1, FieldTypes: []DataType{TypeInt}}}}
	if q.Sink() != -1 {
		t.Error("Sink() on sink-less plan must be -1")
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild on invalid plan must panic")
		}
	}()
	b := NewBuilder()
	b.AddSource(0, []DataType{TypeInt})
	b.MustBuild()
}

func TestValidateOperatorKinds(t *testing.T) {
	bad := &Operator{Type: OpType(77)}
	if err := bad.Validate(); err == nil {
		t.Error("unknown operator type accepted")
	}
	agg := &Operator{Type: OpAggregate}
	if err := agg.Validate(); err == nil {
		t.Error("aggregate without window accepted")
	}
	aggBadWin := &Operator{Type: OpAggregate, Window: &Window{Size: -1, Slide: 1}}
	if err := aggBadWin.Validate(); err == nil {
		t.Error("aggregate with invalid window accepted")
	}
	aggBadSel := &Operator{
		Type:        OpAggregate,
		Window:      &Window{Type: WindowTumbling, Policy: WindowCountBased, Size: 10, Slide: 10},
		Selectivity: 2,
	}
	if err := aggBadSel.Validate(); err == nil {
		t.Error("aggregate selectivity > 1 accepted")
	}
	joinBadSel := &Operator{
		Type:        OpJoin,
		Window:      &Window{Type: WindowTumbling, Policy: WindowCountBased, Size: 10, Slide: 10},
		Selectivity: -0.1,
	}
	if err := joinBadSel.Validate(); err == nil {
		t.Error("join selectivity < 0 accepted")
	}
}

func TestQueryValidateFanouts(t *testing.T) {
	// Source feeding two consumers is rejected (tree-shaped plans only).
	q := &Query{
		Ops: []*Operator{
			{Type: OpSource, EventRate: 1, FieldTypes: []DataType{TypeInt}},
			{Type: OpFilter, Selectivity: 0.5},
			{Type: OpFilter, Selectivity: 0.5},
			{Type: OpSink},
		},
		Edges: [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
	}
	if err := q.Validate(); err == nil {
		t.Error("fan-out plan accepted")
	}
}

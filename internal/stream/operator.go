package stream

import "fmt"

// Operator is a vertex of a streaming query plan. Exactly the fields
// relevant to the operator's Type are populated; the remaining fields are
// zero. The field set corresponds to the transferable features of Table I.
type Operator struct {
	ID   string
	Type OpType

	// Source fields.
	EventRate  float64    // tuples per second emitted by the source
	FieldTypes []DataType // schema of the emitted tuples

	// Filter fields.
	FilterFn    FilterFn
	LiteralType DataType

	// Join fields.
	JoinKeyType DataType

	// Aggregation fields.
	AggFn        AggFn
	AggValueType DataType
	GroupByType  DataType
	HasGroupBy   bool

	// Window specification, set for joins and aggregations.
	Window *Window

	// Selectivity per Definitions 6-8. Used by filter, join and
	// aggregation operators; ignored otherwise.
	Selectivity float64
}

// IsWindowed reports whether the operator keeps window state.
func (o *Operator) IsWindowed() bool { return o.Window != nil }

// IsStateful is an alias for IsWindowed kept for readability at call sites.
func (o *Operator) IsStateful() bool { return o.IsWindowed() }

// Validate checks the per-type field invariants.
func (o *Operator) Validate() error {
	switch o.Type {
	case OpSource:
		if o.EventRate <= 0 {
			return fmt.Errorf("source %s: event rate must be positive, got %v", o.ID, o.EventRate)
		}
		if len(o.FieldTypes) == 0 {
			return fmt.Errorf("source %s: empty schema", o.ID)
		}
	case OpFilter:
		if o.Selectivity < 0 || o.Selectivity > 1 {
			return fmt.Errorf("filter %s: selectivity %v out of [0,1]", o.ID, o.Selectivity)
		}
		if o.FilterFn.StringOnly() && o.LiteralType != TypeString {
			return fmt.Errorf("filter %s: %v requires string literal, got %v", o.ID, o.FilterFn, o.LiteralType)
		}
	case OpJoin:
		if o.Window == nil {
			return fmt.Errorf("join %s: missing window", o.ID)
		}
		if err := o.Window.Validate(); err != nil {
			return fmt.Errorf("join %s: %w", o.ID, err)
		}
		if o.Selectivity < 0 || o.Selectivity > 1 {
			return fmt.Errorf("join %s: selectivity %v out of [0,1]", o.ID, o.Selectivity)
		}
	case OpAggregate:
		if o.Window == nil {
			return fmt.Errorf("aggregate %s: missing window", o.ID)
		}
		if err := o.Window.Validate(); err != nil {
			return fmt.Errorf("aggregate %s: %w", o.ID, err)
		}
		if o.Selectivity < 0 || o.Selectivity > 1 {
			return fmt.Errorf("aggregate %s: selectivity %v out of [0,1]", o.ID, o.Selectivity)
		}
	case OpSink:
		// No operator-specific constraints.
	default:
		return fmt.Errorf("operator %s: unknown type %v", o.ID, o.Type)
	}
	return nil
}

// TupleBytes estimates the serialized size in bytes of one tuple with the
// given attribute count, assuming the average attribute mix of the schema
// types. A fixed per-tuple envelope models serialization headers and
// timestamps carried by the DSPS.
func TupleBytes(width int, avgFieldBytes float64) float64 {
	const envelope = 24
	if width <= 0 {
		return envelope
	}
	if avgFieldBytes <= 0 {
		avgFieldBytes = 8
	}
	return envelope + float64(width)*avgFieldBytes
}

// AvgFieldBytes returns the mean serialized attribute size of a schema.
func AvgFieldBytes(types []DataType) float64 {
	if len(types) == 0 {
		return 8
	}
	var sum float64
	for _, t := range types {
		sum += t.Bytes()
	}
	return sum / float64(len(types))
}

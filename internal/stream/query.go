package stream

import (
	"fmt"
	"sort"
)

// Query is a DAG-shaped streaming query plan. Vertices are operators;
// directed edges describe the logical data flow from sources toward the
// single sink. Joins have two inputs, every other operator has at most one;
// the plan therefore forms a tree rooted at the sink (Section III-A).
type Query struct {
	Ops   []*Operator
	Edges [][2]int // Edges[i] = [from, to] operator indices
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := &Query{
		Ops:   make([]*Operator, len(q.Ops)),
		Edges: make([][2]int, len(q.Edges)),
	}
	for i, op := range q.Ops {
		oc := *op
		if op.Window != nil {
			w := *op.Window
			oc.Window = &w
		}
		oc.FieldTypes = append([]DataType(nil), op.FieldTypes...)
		c.Ops[i] = &oc
	}
	copy(c.Edges, q.Edges)
	return c
}

// NumOps returns the number of operators in the plan.
func (q *Query) NumOps() int { return len(q.Ops) }

// Upstream returns the indices of operators feeding op i, in edge order.
func (q *Query) Upstream(i int) []int {
	var ups []int
	for _, e := range q.Edges {
		if e[1] == i {
			ups = append(ups, e[0])
		}
	}
	return ups
}

// Downstream returns the indices of operators consuming op i's output.
func (q *Query) Downstream(i int) []int {
	var downs []int
	for _, e := range q.Edges {
		if e[0] == i {
			downs = append(downs, e[1])
		}
	}
	return downs
}

// Sources returns the indices of all source operators.
func (q *Query) Sources() []int {
	var srcs []int
	for i, op := range q.Ops {
		if op.Type == OpSource {
			srcs = append(srcs, i)
		}
	}
	return srcs
}

// Sink returns the index of the sink operator, or -1 if absent.
func (q *Query) Sink() int {
	for i, op := range q.Ops {
		if op.Type == OpSink {
			return i
		}
	}
	return -1
}

// CountType returns how many operators of the given type the plan has.
func (q *Query) CountType(t OpType) int {
	n := 0
	for _, op := range q.Ops {
		if op.Type == t {
			n++
		}
	}
	return n
}

// TopoOrder returns the operator indices in a topological order of the data
// flow (sources first, sink last). The order is deterministic: ties are
// broken by operator index.
func (q *Query) TopoOrder() ([]int, error) {
	n := len(q.Ops)
	indeg := make([]int, n)
	adj := make([][]int, n)
	for _, e := range q.Edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, fmt.Errorf("edge %v out of range (n=%d)", e, n)
		}
		indeg[e[1]]++
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	order := make([]int, 0, n)
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		added := false
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
				added = true
			}
		}
		if added {
			sort.Ints(ready)
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("query graph has a cycle")
	}
	return order, nil
}

// Validate checks structural invariants: exactly one sink, at least one
// source, a connected acyclic flow, join fan-in of two, unary fan-in for
// filters/aggregations/sinks, and per-operator field validity.
func (q *Query) Validate() error {
	if len(q.Ops) == 0 {
		return fmt.Errorf("empty query")
	}
	if len(q.Sources()) == 0 {
		return fmt.Errorf("query has no source")
	}
	nSinks := q.CountType(OpSink)
	if nSinks != 1 {
		return fmt.Errorf("query must have exactly one sink, got %d", nSinks)
	}
	if _, err := q.TopoOrder(); err != nil {
		return err
	}
	for i, op := range q.Ops {
		if err := op.Validate(); err != nil {
			return err
		}
		ups := len(q.Upstream(i))
		downs := len(q.Downstream(i))
		switch op.Type {
		case OpSource:
			if ups != 0 {
				return fmt.Errorf("source %s has %d inputs", op.ID, ups)
			}
			if downs != 1 {
				return fmt.Errorf("source %s must have exactly one consumer, got %d", op.ID, downs)
			}
		case OpFilter, OpAggregate:
			if ups != 1 {
				return fmt.Errorf("%v %s must have exactly one input, got %d", op.Type, op.ID, ups)
			}
			if downs != 1 {
				return fmt.Errorf("%v %s must have exactly one consumer, got %d", op.Type, op.ID, downs)
			}
		case OpJoin:
			if ups != 2 {
				return fmt.Errorf("join %s must have exactly two inputs, got %d", op.ID, ups)
			}
			if downs != 1 {
				return fmt.Errorf("join %s must have exactly one consumer, got %d", op.ID, downs)
			}
		case OpSink:
			if ups != 1 {
				return fmt.Errorf("sink %s must have exactly one input, got %d", op.ID, ups)
			}
			if downs != 0 {
				return fmt.Errorf("sink %s has %d consumers", op.ID, downs)
			}
		}
	}
	return nil
}

// Rates holds the derived steady-state logical rates of a plan, ignoring
// resource limits: the arrival and output tuple rates per operator and the
// serialized tuple size of each operator's output stream.
type Rates struct {
	In         []float64 // tuples/s arriving at each operator
	Out        []float64 // tuples/s emitted by each operator
	TupleBytes []float64 // serialized bytes of one output tuple
	Width      []int     // attributes per output tuple
}

// DeriveRates propagates source event rates through the plan using the
// selectivity definitions of the paper:
//
//   - filter:      out = in * sel                          (Definition 6)
//   - join:        out = sel * (r1*|W2| + r2*|W1|)         (Definition 7,
//     symmetric-hash formulation: each arrival probes the opposite window)
//   - aggregation: out = fires/s * groups, groups = sel*|W| (Definition 8)
//
// The returned slices are indexed by operator index. DeriveRates does not
// mutate the query, so concurrent callers (ensemble training, batched
// placement scoring) may share one Query.
func (q *Query) DeriveRates() (*Rates, error) {
	order, err := q.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := len(q.Ops)
	r := &Rates{
		In:         make([]float64, n),
		Out:        make([]float64, n),
		TupleBytes: make([]float64, n),
		Width:      make([]int, n),
	}
	avgBytes := make([]float64, n)
	for _, i := range order {
		op := q.Ops[i]
		ups := q.Upstream(i)
		var in float64
		for _, u := range ups {
			in += r.Out[u]
		}
		r.In[i] = in
		switch op.Type {
		case OpSource:
			r.Out[i] = op.EventRate
			r.Width[i] = len(op.FieldTypes)
			avgBytes[i] = AvgFieldBytes(op.FieldTypes)
		case OpFilter:
			r.Out[i] = in * op.Selectivity
			r.Width[i] = r.Width[ups[0]]
			avgBytes[i] = avgBytes[ups[0]]
		case OpJoin:
			u1, u2 := ups[0], ups[1]
			r1, r2 := r.Out[u1], r.Out[u2]
			w1 := op.Window.ExtentTuples(r1)
			w2 := op.Window.ExtentTuples(r2)
			r.Out[i] = op.Selectivity * (r1*w2 + r2*w1)
			r.Width[i] = r.Width[u1] + r.Width[u2]
			tot := float64(r.Width[u1])*avgBytes[u1] + float64(r.Width[u2])*avgBytes[u2]
			if r.Width[i] > 0 {
				avgBytes[i] = tot / float64(r.Width[i])
			}
		case OpAggregate:
			u := ups[0]
			fires := op.Window.FiresPerSecond(r.Out[u])
			extent := op.Window.ExtentTuples(r.Out[u])
			groups := op.Selectivity * extent
			if groups < 1 {
				groups = 1
			}
			if !op.HasGroupBy {
				groups = 1
			}
			r.Out[i] = fires * groups
			// Aggregation emits (group key, aggregate) style narrow tuples.
			r.Width[i] = 2
			avgBytes[i] = (op.AggValueType.Bytes() + op.GroupByType.Bytes()) / 2
		case OpSink:
			r.Out[i] = in
			r.Width[i] = r.Width[ups[0]]
			avgBytes[i] = avgBytes[ups[0]]
		}
		if r.Out[i] < 0 {
			r.Out[i] = 0
		}
		r.TupleBytes[i] = TupleBytes(r.Width[i], avgBytes[i])
	}
	return r, nil
}

// QueryClass labels a plan by its join arity and aggregation presence,
// mirroring the six query classes of Figure 8.
type QueryClass int

// Query classes used by the evaluation figures.
const (
	ClassLinear QueryClass = iota
	ClassLinearAgg
	ClassTwoWayJoin
	ClassTwoWayJoinAgg
	ClassThreeWayJoin
	ClassThreeWayJoinAgg
)

var queryClassNames = [...]string{
	"Linear", "Linear+Agg", "2-Way-Join", "2-Way-Join+Agg", "3-Way-Join", "3-Way-Join+Agg",
}

func (c QueryClass) String() string {
	if c < 0 || int(c) >= len(queryClassNames) {
		return fmt.Sprintf("QueryClass(%d)", int(c))
	}
	return queryClassNames[c]
}

// Class derives the query class of the plan.
func (q *Query) Class() QueryClass {
	joins := q.CountType(OpJoin)
	agg := q.CountType(OpAggregate) > 0
	switch joins {
	case 0:
		if agg {
			return ClassLinearAgg
		}
		return ClassLinear
	case 1:
		if agg {
			return ClassTwoWayJoinAgg
		}
		return ClassTwoWayJoin
	default:
		if agg {
			return ClassThreeWayJoinAgg
		}
		return ClassThreeWayJoin
	}
}

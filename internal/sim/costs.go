// Package sim is a deterministic execution simulator for distributed
// streaming queries on heterogeneous edge-cloud hardware. It substitutes
// the Apache Storm + Kafka + cgroups/netem testbed of the COSTREAM paper
// and produces the five cost metrics the learned model is trained on:
// throughput, processing latency, end-to-end latency, backpressure
// occurrence and query success.
//
// The engine advances a fluid-flow model in fixed time steps. Operators
// have bounded input queues; hosts share CPU among co-located operators by
// water-filling; network links are capacity-constrained; window state
// consumes memory which induces GC slowdown and, beyond physical RAM,
// query crashes. These mechanisms reproduce the causal structure behind
// the paper's measurements (Sections IV and VI).
package sim

import (
	"costream/internal/stream"
)

// Per-tuple CPU costs in reference-core microseconds. A reference core
// (CPU feature = 100%) executes 1e6 cost units per second. Values are
// loosely calibrated to JVM stream processors: tuple handling dominated by
// (de)serialization plus per-operator logic.
// The resulting single-core capacity of a simple source-filter-sink chain
// is ~3k tuples/s, in line with acked Storm topologies; the strongest
// training-grid host (800% CPU) sustains the top Table II event rates only
// when operators are spread sensibly — placement must matter.
const (
	costSourceBaseUS = 180.0 // broker fetch + deserialize + ack + emit
	costFilterBaseUS = 45.0
	costJoinBaseUS   = 90.0 // window insert + hash probe
	costJoinMatchUS  = 15.0 // per produced join match
	costAggBaseUS    = 60.0 // group lookup + state update
	costAggEmitUS    = 12.0 // per emitted group on window fire
	costSinkBaseUS   = 70.0 // serialize + persist
	costPerByteUS    = 0.12 // serialization cost per payload byte
)

// dataTypeCostFactor captures that string processing (hashing, comparison)
// is more expensive than fixed-width numeric processing.
func dataTypeCostFactor(t stream.DataType) float64 {
	switch t {
	case stream.TypeString:
		return 2.2
	case stream.TypeDouble:
		return 1.15
	default:
		return 1.0
	}
}

// filterFnCostFactor captures predicate complexity: prefix/suffix matching
// walks the string, ordered comparisons on strings are lexicographic.
func filterFnCostFactor(fn stream.FilterFn) float64 {
	switch fn {
	case stream.FilterStartsWith, stream.FilterEndsWith:
		return 1.8
	case stream.FilterNE:
		return 0.9
	default:
		return 1.0
	}
}

// perTupleCostUS returns the CPU cost in reference-core microseconds to
// process one input tuple at operator op, given the derived logical rates
// of the plan. For windowed operators the cost amortizes emission work over
// incoming tuples (matches produced per probe, groups emitted per fire).
func perTupleCostUS(q *stream.Query, r *stream.Rates, i int) float64 {
	op := q.Ops[i]
	inBytes := 0.0
	if ups := q.Upstream(i); len(ups) > 0 {
		for _, u := range ups {
			inBytes += r.TupleBytes[u]
		}
		inBytes /= float64(len(ups))
	} else {
		inBytes = r.TupleBytes[i]
	}
	byteCost := costPerByteUS * inBytes

	switch op.Type {
	case stream.OpSource:
		return costSourceBaseUS + costPerByteUS*r.TupleBytes[i]
	case stream.OpFilter:
		return costFilterBaseUS*filterFnCostFactor(op.FilterFn)*dataTypeCostFactor(op.LiteralType) + byteCost
	case stream.OpJoin:
		// Matches produced per incoming tuple: out/in ratio.
		in := r.In[i]
		matchesPerTuple := 0.0
		if in > 0 {
			matchesPerTuple = r.Out[i] / in
		}
		return costJoinBaseUS*dataTypeCostFactor(op.JoinKeyType) +
			costJoinMatchUS*matchesPerTuple + byteCost
	case stream.OpAggregate:
		in := r.In[i]
		emitsPerTuple := 0.0
		if in > 0 {
			emitsPerTuple = r.Out[i] / in
		}
		f := dataTypeCostFactor(op.AggValueType)
		if op.HasGroupBy {
			f *= dataTypeCostFactor(op.GroupByType) * 1.2
		}
		return costAggBaseUS*f + costAggEmitUS*emitsPerTuple + byteCost
	case stream.OpSink:
		return costSinkBaseUS + byteCost
	default:
		return costFilterBaseUS + byteCost
	}
}

// Window state overhead over serialized tuple payload bytes: JVM object
// headers, boxing, hash-table buckets and eviction bookkeeping inflate
// in-memory state well beyond its wire size.
const stateOverheadFactor = 8.0

// stateBytes returns the window state footprint of operator i in bytes.
// Joins keep one window per input stream; aggregations keep per-group state
// bounded by the window extent. Stateless operators return 0.
func stateBytes(q *stream.Query, r *stream.Rates, i int) float64 {
	op := q.Ops[i]
	if op.Window == nil {
		return 0
	}
	ups := q.Upstream(i)
	switch op.Type {
	case stream.OpJoin:
		var total float64
		for _, u := range ups {
			extent := op.Window.ExtentTuples(r.Out[u])
			total += extent * r.TupleBytes[u]
		}
		return total * stateOverheadFactor
	case stream.OpAggregate:
		u := ups[0]
		extent := op.Window.ExtentTuples(r.Out[u])
		// Grouped state keeps per-group accumulators plus (for sliding
		// windows) the raw tuples needed for eviction.
		raw := extent * r.TupleBytes[u]
		if op.Window.Type == stream.WindowTumbling {
			raw *= 0.5 // tumbling windows can fold incrementally
		}
		return raw * stateOverheadFactor
	default:
		return 0
	}
}

// Host memory model: a JVM-like base footprint plus a per-operator
// executor overhead, in bytes.
const (
	hostBaseMemBytes = 250 * 1024 * 1024
	perOpMemBytes    = 75 * 1024 * 1024
	// heapFraction is the share of machine RAM available to the DSPS
	// worker JVM heap; the rest goes to OS, page cache and off-heap use.
	heapFraction      = 0.65
	gcOnsetPressure   = 0.60 // heap pressure where GC slowdown starts
	gcMaxSlowdown     = 2.8  // cost multiplier at 100% pressure
	crashPressure     = 0.95 // beyond this the query dies (OOM / GC death)
	gcMaxPauseMS      = 120  // extra per-op latency at 100% pressure
	brokerBaseWaitMS  = 12.0 // Kafka fetch round-trip under no backlog
	queueCapTuples    = 4096 // bounded operator input queue
	bitsPerByte       = 8
	mbitToBits        = 1e6
	networkCongestion = 0.75 // utilization where queueing delay kicks in
)

// gcSlowdown maps memory pressure (used/RAM) to a CPU cost multiplier.
func gcSlowdown(pressure float64) float64 {
	if pressure <= gcOnsetPressure {
		return 1
	}
	frac := (pressure - gcOnsetPressure) / (1 - gcOnsetPressure)
	if frac > 1 {
		frac = 1
	}
	return 1 + (gcMaxSlowdown-1)*frac
}

// gcPauseMS maps memory pressure to an additive per-operator latency term.
func gcPauseMS(pressure float64) float64 {
	if pressure <= gcOnsetPressure {
		return 0
	}
	frac := (pressure - gcOnsetPressure) / (1 - gcOnsetPressure)
	if frac > 1 {
		frac = 1
	}
	return gcMaxPauseMS * frac
}

package sim

import "fmt"

// Metrics are the five cost metrics of the paper (Section IV-A) plus
// diagnostic detail used by the placement baselines and the tests.
type Metrics struct {
	// ThroughputTPS is T: output tuples arriving at the sink per second
	// during the measurement window (Definition 1).
	ThroughputTPS float64
	// ProcLatencyMS is Lp: ingestion-to-sink latency of an output tuple,
	// measured from the oldest contributing input tuple (Definition 2).
	ProcLatencyMS float64
	// E2ELatencyMS is Le: Lp plus waiting time in the upstream message
	// broker (Definition 3).
	E2ELatencyMS float64
	// Backpressured is RO: whether tuples queued up in the broker during
	// execution (Definition 4). Note the paper encodes occurrence as
	// RO=0; this implementation uses the natural boolean (true =
	// backpressure occurred) and keeps the encoding at the model layer.
	Backpressured bool
	// BackpressureRate is R: the summed backlog growth rate over all
	// backpressured streams, in tuples/s.
	BackpressureRate float64
	// Success is S: whether at least one tuple reached the sink and the
	// query did not crash (Definition 5).
	Success bool
	// Crashed reports an unsuccessful run caused by memory exhaustion
	// (GC death), as opposed to a logically empty result.
	Crashed bool

	// SinkTuples is the absolute number of tuples that reached the sink
	// during the measurement window.
	SinkTuples float64
	// PerOp holds per-operator runtime statistics (indexed like the
	// query's operators); used by the online-monitoring baseline.
	PerOp []OpStats
	// HostMemPressure is used/available memory per host (indexed like
	// the cluster's hosts).
	HostMemPressure []float64
}

// OpStats are per-operator runtime statistics averaged over the
// measurement window. The online monitoring baseline (Exp 2b) consumes
// these, mirroring the runtime statistics collected in [1].
type OpStats struct {
	Host        int     // host index the operator ran on
	InRate      float64 // tuples/s arriving
	OutRate     float64 // tuples/s emitted
	ServiceRate float64 // tuples/s the operator could process at its CPU share
	CPUUtil     float64 // fraction of its host's cores consumed
	AvgQueue    float64 // time-averaged input queue length (tuples)
	NetOutMbps  float64 // outgoing network traffic created by this operator
}

func (m *Metrics) String() string {
	return fmt.Sprintf("T=%.1f ev/s Lp=%.1f ms Le=%.1f ms backpressure=%v success=%v",
		m.ThroughputTPS, m.ProcLatencyMS, m.E2ELatencyMS, m.Backpressured, m.Success)
}

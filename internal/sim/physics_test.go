package sim

import (
	"math"
	"testing"
	"testing/quick"

	"costream/internal/hardware"
	"costream/internal/stream"
)

// midHost returns a host with configurable RAM for memory-pressure tests.
func midHost(id string, ramMB float64) *hardware.Host {
	return &hardware.Host{ID: id, CPU: 400, RAMMB: ramMB, NetLatencyMS: 5, NetBandwidthMbps: 1600}
}

func TestGCPressureInflatesLatency(t *testing.T) {
	// Same query; host RAM chosen so that pressure lands between GC
	// onset and crash on the small host, and well below onset on the
	// big one. Window state ~ 2000 ev/s * 8 s * bytes.
	w := stream.Window{Type: stream.WindowSliding, Policy: stream.WindowTimeBased, Size: 8, Slide: 4}
	b := stream.NewBuilder()
	s := b.AddSource(2000, []stream.DataType{stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString})
	a := b.AddAggregate(stream.AggMean, stream.TypeDouble, stream.TypeString, true, w, 0.3)
	k := b.AddSink()
	b.Chain(s, a, k)
	q := b.MustBuild()

	cfg := testConfig()
	small, err := Run(q, &hardware.Cluster{Hosts: []*hardware.Host{midHost("s", 1000)}}, Placement{0, 0, 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(q, &hardware.Cluster{Hosts: []*hardware.Host{midHost("b", 32000)}}, Placement{0, 0, 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if small.Crashed {
		t.Skipf("small host crashed (pressure %v); wanted GC regime", small.HostMemPressure)
	}
	if small.HostMemPressure[0] <= big.HostMemPressure[0] {
		t.Fatalf("pressure small=%v big=%v", small.HostMemPressure, big.HostMemPressure)
	}
	if small.HostMemPressure[0] > gcOnsetPressure && small.ProcLatencyMS <= big.ProcLatencyMS {
		t.Errorf("GC pressure %v should inflate latency: small=%v big=%v",
			small.HostMemPressure[0], small.ProcLatencyMS, big.ProcLatencyMS)
	}
}

func TestBackpressureGrowsBrokerWait(t *testing.T) {
	// Increasing overload must increase E2E latency via broker backlog.
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "w", CPU: 100, RAMMB: 8000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
	cfg := testConfig()
	var prevWait float64
	for i, rate := range []float64{6400, 12800, 25600} {
		m, err := Run(linearQuery(rate, 1.0), c, Placement{0, 0, 0}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wait := m.E2ELatencyMS - m.ProcLatencyMS
		if i > 0 && wait+1 < prevWait {
			t.Errorf("broker wait should grow with overload: %v then %v at rate %v", prevWait, wait, rate)
		}
		prevWait = wait
	}
}

func TestSinkTupleAccounting(t *testing.T) {
	cfg := testConfig()
	q := linearQuery(1000, 0.5)
	c := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("a")}}
	m, err := Run(q, c, Placement{0, 0, 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantTuples := m.ThroughputTPS * cfg.DurationS
	if math.Abs(m.SinkTuples-wantTuples) > 1e-6*wantTuples {
		t.Errorf("SinkTuples %v inconsistent with throughput %v x duration %v",
			m.SinkTuples, m.ThroughputTPS, cfg.DurationS)
	}
}

func TestCrashMetricsShape(t *testing.T) {
	// Force a crash via an enormous join window on a small host.
	b := stream.NewBuilder()
	s1 := b.AddSource(2000, []stream.DataType{stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString})
	s2 := b.AddSource(2000, []stream.DataType{stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString})
	j := b.AddJoin(stream.TypeInt, stream.Window{Type: stream.WindowSliding, Policy: stream.WindowTimeBased, Size: 16, Slide: 8}, 1e-4)
	k := b.AddSink()
	b.Connect(s1, j).Connect(s2, j).Connect(j, k)
	q := b.MustBuild()
	c := &hardware.Cluster{Hosts: []*hardware.Host{midHost("tiny", 1000)}}
	m, err := Run(q, c, Placement{0, 0, 0, 0}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Crashed {
		t.Skipf("no crash (pressure %v)", m.HostMemPressure)
	}
	if m.Success {
		t.Error("crashed run cannot be successful")
	}
	if m.ThroughputTPS != 0 {
		t.Error("crashed run must have zero throughput")
	}
	if m.BackpressureRate <= 0 {
		t.Error("crashed run should report backpressure (pipeline stops consuming)")
	}
	if len(m.PerOp) != len(q.Ops) {
		t.Error("crashed run must still report per-op host assignment")
	}
}

func TestLatencyIncludesNetworkPropagation(t *testing.T) {
	// Three hosts in a chain; total latency must include at least the sum
	// of the traversed outgoing latencies.
	q := linearQuery(200, 0.5)
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "a", CPU: 400, RAMMB: 8000, NetLatencyMS: 40, NetBandwidthMbps: 1600},
		{ID: "b", CPU: 400, RAMMB: 8000, NetLatencyMS: 20, NetBandwidthMbps: 1600},
		{ID: "c", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
	m, err := Run(q, c, Placement{0, 1, 2}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.ProcLatencyMS < 60 {
		t.Errorf("Lp=%v must include 40+20 ms of propagation", m.ProcLatencyMS)
	}
}

func TestThroughputNeverExceedsLogicalRate(t *testing.T) {
	f := func(rateIdx, selPct uint8) bool {
		rates := []float64{100, 400, 1600, 6400}
		rate := rates[int(rateIdx)%len(rates)]
		sel := float64(selPct%100+1) / 100
		q := linearQuery(rate, sel)
		c := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("x")}}
		m, err := Run(q, c, Placement{0, 0, 0}, testConfig())
		if err != nil {
			return false
		}
		return m.ThroughputTPS <= rate*sel*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWaterFillingConservesCapacity(t *testing.T) {
	// Co-located ops' CPU utilization must sum to <= 1 (of host cores).
	b := stream.NewBuilder()
	s1 := b.AddSource(6400, []stream.DataType{stream.TypeInt, stream.TypeInt})
	s2 := b.AddSource(6400, []stream.DataType{stream.TypeInt, stream.TypeInt})
	j := b.AddJoin(stream.TypeInt, stream.Window{Type: stream.WindowTumbling, Policy: stream.WindowCountBased, Size: 40, Slide: 40}, 0.001)
	k := b.AddSink()
	b.Connect(s1, j).Connect(s2, j).Connect(j, k)
	q := b.MustBuild()
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "one", CPU: 100, RAMMB: 8000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
	m, err := Run(q, c, Placement{0, 0, 0, 0}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, op := range m.PerOp {
		total += op.CPUUtil
	}
	if total > 1.02 {
		t.Errorf("co-located CPU utilization sums to %v of host capacity", total)
	}
	if total < 0.9 {
		t.Errorf("overloaded host should be ~fully utilized, got %v", total)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.DurationS <= 0 || cfg.WarmupS < 0 || cfg.StepS <= 0 {
		t.Fatalf("bad default config: %+v", cfg)
	}
	if cfg.StepS > cfg.DurationS {
		t.Fatal("step exceeds duration")
	}
}

func TestMetricsString(t *testing.T) {
	m := &Metrics{ThroughputTPS: 1, ProcLatencyMS: 2, E2ELatencyMS: 3, Success: true}
	if m.String() == "" {
		t.Error("empty Metrics string")
	}
}

func TestFilterFnCostOrdering(t *testing.T) {
	if filterFnCostFactor(stream.FilterStartsWith) <= filterFnCostFactor(stream.FilterLT) {
		t.Error("prefix matching must cost more than numeric compare")
	}
	if dataTypeCostFactor(stream.TypeString) <= dataTypeCostFactor(stream.TypeInt) {
		t.Error("string processing must cost more than int processing")
	}
}

func TestGCPauseMonotone(t *testing.T) {
	prev := gcPauseMS(0)
	for p := 0.0; p <= 1.3; p += 0.05 {
		cur := gcPauseMS(p)
		if cur < prev {
			t.Fatalf("gcPauseMS not monotone at %v", p)
		}
		prev = cur
	}
	if gcPauseMS(0.5) != 0 {
		t.Error("no pause expected below onset")
	}
}

func TestPlacementValidate(t *testing.T) {
	q := linearQuery(100, 0.5)
	c := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("a")}}
	if err := (Placement{0, 0, 0}).Validate(q, c); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
	if err := (Placement{0, 0}).Validate(q, c); err == nil {
		t.Error("short placement accepted")
	}
	if err := (Placement{0, 0, -1}).Validate(q, c); err == nil {
		t.Error("negative host accepted")
	}
}

package sim

import (
	"math"
	"testing"

	"costream/internal/hardware"
	"costream/internal/stream"
)

func strongHost(id string) *hardware.Host {
	return &hardware.Host{ID: id, CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000}
}

func weakHost(id string) *hardware.Host {
	return &hardware.Host{ID: id, CPU: 50, RAMMB: 1000, NetLatencyMS: 80, NetBandwidthMbps: 25}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.DurationS = 30
	cfg.WarmupS = 5
	return cfg
}

func linearQuery(rate, sel float64) *stream.Query {
	b := stream.NewBuilder()
	s := b.AddSource(rate, []stream.DataType{stream.TypeInt, stream.TypeDouble})
	f := b.AddFilter(stream.FilterGT, stream.TypeInt, sel)
	k := b.AddSink()
	b.Chain(s, f, k)
	return b.MustBuild()
}

func aggQuery(rate float64, w stream.Window, sel float64) *stream.Query {
	b := stream.NewBuilder()
	s := b.AddSource(rate, []stream.DataType{stream.TypeInt, stream.TypeDouble})
	a := b.AddAggregate(stream.AggMean, stream.TypeDouble, stream.TypeInt, true, w, sel)
	k := b.AddSink()
	b.Chain(s, a, k)
	return b.MustBuild()
}

func TestLinearQueryOnStrongHost(t *testing.T) {
	q := linearQuery(1000, 0.5)
	c := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("a")}}
	m, err := Run(q, c, Placement{0, 0, 0}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Success {
		t.Fatal("query should succeed on a strong host")
	}
	if m.Backpressured {
		t.Errorf("unexpected backpressure: rate %v", m.BackpressureRate)
	}
	// Expected sink arrival rate: 1000 * 0.5 = 500 ev/s.
	if math.Abs(m.ThroughputTPS-500) > 25 {
		t.Errorf("throughput = %v, want ~500", m.ThroughputTPS)
	}
	if m.ProcLatencyMS <= 0 || m.ProcLatencyMS > 200 {
		t.Errorf("proc latency = %v ms, want small positive", m.ProcLatencyMS)
	}
	if m.E2ELatencyMS <= m.ProcLatencyMS {
		t.Errorf("E2E latency %v must exceed processing latency %v", m.E2ELatencyMS, m.ProcLatencyMS)
	}
}

func TestWeakCPUCausesBackpressure(t *testing.T) {
	// 25600 ev/s against 0.5 reference cores cannot keep up.
	q := linearQuery(25600, 0.9)
	c := &hardware.Cluster{Hosts: []*hardware.Host{weakHost("w")}}
	m, err := Run(q, c, Placement{0, 0, 0}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Backpressured {
		t.Fatalf("expected backpressure on weak host, metrics: %v", m)
	}
	if m.BackpressureRate <= 0 {
		t.Errorf("backpressure rate = %v, want > 0", m.BackpressureRate)
	}
	// Backpressure inflates the end-to-end latency far beyond processing.
	if m.E2ELatencyMS < 5*m.ProcLatencyMS {
		t.Errorf("E2E %v should dwarf Lp %v under backpressure", m.E2ELatencyMS, m.ProcLatencyMS)
	}
}

func TestThroughputCappedByCPU(t *testing.T) {
	q := linearQuery(25600, 0.9)
	weak := &hardware.Cluster{Hosts: []*hardware.Host{weakHost("w")}}
	strong := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("s")}}
	mw, err := Run(q, weak, Placement{0, 0, 0}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Run(q, strong, Placement{0, 0, 0}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mw.ThroughputTPS >= ms.ThroughputTPS {
		t.Errorf("weak host throughput %v should be below strong host %v", mw.ThroughputTPS, ms.ThroughputTPS)
	}
	if !ms.Success {
		t.Error("strong host run should succeed")
	}
}

func TestLargeWindowOnSmallRAMCrashes(t *testing.T) {
	// Time window of 16 s over 25600 ev/s wide tuples -> hundreds of MB of
	// join state; a 1 GB host dies, a 32 GB host survives.
	b := stream.NewBuilder()
	s1 := b.AddSource(25600, []stream.DataType{stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString})
	s2 := b.AddSource(25600, []stream.DataType{stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString})
	j := b.AddJoin(stream.TypeString, stream.Window{Type: stream.WindowSliding, Policy: stream.WindowTimeBased, Size: 16, Slide: 8}, 0.0001)
	k := b.AddSink()
	b.Connect(s1, j).Connect(s2, j).Connect(j, k)
	q := b.MustBuild()

	small := &hardware.Cluster{Hosts: []*hardware.Host{weakHost("w")}}
	ms, err := Run(q, small, Placement{0, 0, 0, 0}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !ms.Crashed || ms.Success {
		t.Errorf("expected crash on 1 GB host, got crashed=%v success=%v pressure=%v",
			ms.Crashed, ms.Success, ms.HostMemPressure)
	}
	big := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("s")}}
	mb, err := Run(q, big, Placement{0, 0, 0, 0}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mb.Crashed {
		t.Errorf("32 GB host should not crash, pressure=%v", mb.HostMemPressure)
	}
}

func TestZeroOutputMeansFailure(t *testing.T) {
	// Selectivity 0: nothing ever reaches the sink (Definition 5).
	q := linearQuery(100, 0)
	c := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("a")}}
	m, err := Run(q, c, Placement{0, 0, 0}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Success {
		t.Error("query with zero selectivity should be unsuccessful")
	}
	if m.Crashed {
		t.Error("logical failure must not be reported as crash")
	}
	if m.ThroughputTPS != 0 {
		t.Errorf("throughput = %v, want 0", m.ThroughputTPS)
	}
}

func TestNetworkLatencyAddsUp(t *testing.T) {
	q := linearQuery(500, 0.5)
	mk := func(lat float64) *hardware.Cluster {
		return &hardware.Cluster{Hosts: []*hardware.Host{
			{ID: "edge", CPU: 400, RAMMB: 8000, NetLatencyMS: lat, NetBandwidthMbps: 800},
			{ID: "cloud", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
		}}
	}
	// Co-located on cloud vs split across a slow link.
	cfg := testConfig()
	colo, err := Run(q, mk(160), Placement{1, 1, 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	split, err := Run(q, mk(160), Placement{0, 0, 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if split.ProcLatencyMS < colo.ProcLatencyMS+100 {
		t.Errorf("split across 160 ms link: Lp=%v, co-located: Lp=%v; want >= +100ms",
			split.ProcLatencyMS, colo.ProcLatencyMS)
	}
	// A fast link should cost far less.
	fast, err := Run(q, mk(1), Placement{0, 0, 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.ProcLatencyMS >= split.ProcLatencyMS {
		t.Errorf("1 ms link Lp=%v should beat 160 ms link Lp=%v", fast.ProcLatencyMS, split.ProcLatencyMS)
	}
}

func TestBandwidthBottleneckThrottlesThroughput(t *testing.T) {
	// Wide string tuples at high rate over a 25 Mbit/s uplink:
	// ~25600 ev/s * (24+8*32)*8 bits ~ 57 Mbit/s demand > 25 Mbit/s.
	b := stream.NewBuilder()
	s := b.AddSource(25600, []stream.DataType{
		stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString,
		stream.TypeString, stream.TypeString, stream.TypeString, stream.TypeString})
	f := b.AddFilter(stream.FilterNE, stream.TypeInt, 1.0)
	k := b.AddSink()
	b.Chain(s, f, k)
	q := b.MustBuild()
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "edge", CPU: 800, RAMMB: 16000, NetLatencyMS: 5, NetBandwidthMbps: 25},
		{ID: "cloud", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
	m, err := Run(q, c, Placement{0, 0, 1}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Backpressured {
		t.Errorf("expected bandwidth-induced backpressure, got %v", m)
	}
	if m.ThroughputTPS > 20000 {
		t.Errorf("throughput %v should be capped by the 25 Mbit/s uplink", m.ThroughputTPS)
	}
}

func TestWindowExtentDominatesLatency(t *testing.T) {
	w1 := stream.Window{Type: stream.WindowTumbling, Policy: stream.WindowTimeBased, Size: 0.25, Slide: 0.25}
	w2 := stream.Window{Type: stream.WindowTumbling, Policy: stream.WindowTimeBased, Size: 8, Slide: 8}
	c := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("a")}}
	cfg := testConfig()
	m1, err := Run(aggQuery(1000, w1, 0.1), c, Placement{0, 0, 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(aggQuery(1000, w2, 0.1), c, Placement{0, 0, 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2.ProcLatencyMS < m1.ProcLatencyMS+7000 {
		t.Errorf("8s window Lp=%v should exceed 0.25s window Lp=%v by ~7.75s", m2.ProcLatencyMS, m1.ProcLatencyMS)
	}
}

func TestCoLocationContention(t *testing.T) {
	// Two heavy filter chains on one small host vs spread over two hosts.
	b := stream.NewBuilder()
	s1 := b.AddSource(6400, []stream.DataType{stream.TypeString, stream.TypeString})
	s2 := b.AddSource(6400, []stream.DataType{stream.TypeString, stream.TypeString})
	j := b.AddJoin(stream.TypeInt, stream.Window{Type: stream.WindowTumbling, Policy: stream.WindowCountBased, Size: 20, Slide: 20}, 0.01)
	k := b.AddSink()
	b.Connect(s1, j).Connect(s2, j).Connect(j, k)
	q := b.MustBuild()

	host := func(id string) *hardware.Host {
		return &hardware.Host{ID: id, CPU: 50, RAMMB: 8000, NetLatencyMS: 1, NetBandwidthMbps: 10000}
	}
	c := &hardware.Cluster{Hosts: []*hardware.Host{host("a"), host("b"), host("c")}}
	all, err := Run(q, c, Placement{0, 0, 0, 0}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	spread, err := Run(q, c, Placement{0, 1, 2, 2}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if spread.ThroughputTPS <= all.ThroughputTPS {
		t.Errorf("spreading should raise throughput: co-located %v vs spread %v",
			all.ThroughputTPS, spread.ThroughputTPS)
	}
}

func TestDeterminism(t *testing.T) {
	q := linearQuery(3200, 0.4)
	c := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("a"), weakHost("b")}}
	cfg := testConfig()
	m1, err := Run(q, c, Placement{1, 0, 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(q, c, Placement{1, 0, 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1.ThroughputTPS != m2.ThroughputTPS || m1.ProcLatencyMS != m2.ProcLatencyMS ||
		m1.E2ELatencyMS != m2.E2ELatencyMS || m1.Backpressured != m2.Backpressured {
		t.Errorf("same seed must reproduce metrics: %v vs %v", m1, m2)
	}
	cfg2 := cfg
	cfg2.Seed = 99
	m3, err := Run(q, c, Placement{1, 0, 0}, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if m3.ThroughputTPS == m1.ThroughputTPS {
		t.Log("different seeds produced identical throughput (possible but unlikely)")
	}
}

func TestRunValidation(t *testing.T) {
	q := linearQuery(100, 0.5)
	c := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("a")}}
	if _, err := Run(q, c, Placement{0, 0}, testConfig()); err == nil {
		t.Error("short placement accepted")
	}
	if _, err := Run(q, c, Placement{0, 0, 5}, testConfig()); err == nil {
		t.Error("out-of-range host accepted")
	}
	bad := testConfig()
	bad.StepS = 0
	if _, err := Run(q, c, Placement{0, 0, 0}, bad); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Run(q, &hardware.Cluster{}, Placement{}, testConfig()); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestPerOpStatsSane(t *testing.T) {
	q := linearQuery(1000, 0.5)
	c := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("a"), strongHost("b")}}
	m, err := Run(q, c, Placement{0, 0, 1}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerOp) != 3 {
		t.Fatalf("PerOp len = %d, want 3", len(m.PerOp))
	}
	src, fil, snk := m.PerOp[0], m.PerOp[1], m.PerOp[2]
	if src.Host != 0 || snk.Host != 1 {
		t.Error("host assignment not recorded")
	}
	if math.Abs(src.OutRate-1000) > 60 {
		t.Errorf("source out rate = %v, want ~1000", src.OutRate)
	}
	if math.Abs(fil.OutRate-500) > 30 {
		t.Errorf("filter out rate = %v, want ~500", fil.OutRate)
	}
	if fil.CPUUtil <= 0 || fil.CPUUtil > 1 {
		t.Errorf("filter CPU util = %v, want (0,1]", fil.CPUUtil)
	}
	if fil.NetOutMbps <= 0 {
		t.Errorf("filter -> sink crosses hosts; NetOutMbps = %v, want > 0", fil.NetOutMbps)
	}
	if src.NetOutMbps != 0 {
		t.Errorf("source -> filter co-located; NetOutMbps = %v, want 0", src.NetOutMbps)
	}
}

func TestGCSlowdownMonotone(t *testing.T) {
	prev := gcSlowdown(0)
	for p := 0.0; p <= 1.2; p += 0.05 {
		cur := gcSlowdown(p)
		if cur < prev {
			t.Fatalf("gcSlowdown not monotone at %v: %v < %v", p, cur, prev)
		}
		prev = cur
	}
	if gcSlowdown(0.5) != 1 {
		t.Error("no slowdown expected below onset")
	}
	if gcSlowdown(1.0) != gcMaxSlowdown {
		t.Errorf("slowdown at pressure 1.0 = %v, want %v", gcSlowdown(1.0), gcMaxSlowdown)
	}
}

func TestPerTupleCostProperties(t *testing.T) {
	q := linearQuery(1000, 0.5)
	r, _ := q.DeriveRates()
	base := perTupleCostUS(q, r, 1)
	// String predicates cost more than int predicates.
	q.Ops[1].LiteralType = stream.TypeString
	q.Ops[1].FilterFn = stream.FilterStartsWith
	costly := perTupleCostUS(q, r, 1)
	if costly <= base {
		t.Errorf("string startswith filter cost %v should exceed int compare %v", costly, base)
	}
	for i := range q.Ops {
		if c := perTupleCostUS(q, r, i); c <= 0 {
			t.Errorf("op %d cost = %v, want positive", i, c)
		}
	}
}

func TestStateBytes(t *testing.T) {
	w := stream.Window{Type: stream.WindowSliding, Policy: stream.WindowCountBased, Size: 640, Slide: 320}
	q := aggQuery(1000, w, 0.5)
	r, _ := q.DeriveRates()
	if sb := stateBytes(q, r, 0); sb != 0 {
		t.Errorf("source state = %v, want 0", sb)
	}
	agg := stateBytes(q, r, 1)
	if agg <= 0 {
		t.Errorf("windowed aggregate state = %v, want positive", agg)
	}
	// Doubling the window size should grow state.
	q2 := aggQuery(1000, stream.Window{Type: stream.WindowSliding, Policy: stream.WindowCountBased, Size: 1280, Slide: 320}, 0.5)
	r2, _ := q2.DeriveRates()
	if agg2 := stateBytes(q2, r2, 1); agg2 <= agg {
		t.Errorf("bigger window state %v should exceed %v", agg2, agg)
	}
}

func TestHigherEventRateRaisesThroughputUntilSaturation(t *testing.T) {
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "m", CPU: 200, RAMMB: 8000, NetLatencyMS: 1, NetBandwidthMbps: 1600},
	}}
	var last float64
	for _, rate := range []float64{100, 400, 1600, 6400} {
		m, err := Run(linearQuery(rate, 0.5), c, Placement{0, 0, 0}, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if m.ThroughputTPS+1 < last {
			t.Errorf("throughput decreased from %v to %v at rate %v", last, m.ThroughputTPS, rate)
		}
		last = m.ThroughputTPS
	}
}

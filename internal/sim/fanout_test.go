package sim

import (
	"math"
	"testing"

	"costream/internal/hardware"
	"costream/internal/stream"
)

// fanOutFrom clones q and gives operator op a second consumer: a copy of
// template appended to the plan. Such plans violate the paper's
// tree-shaped operator contract (Query.Validate rejects them), so these
// tests drive the engine directly to lock in its per-downstream
// accounting for any future DAG support.
func fanOutFrom(q *stream.Query, op int, template int, id string) *stream.Query {
	out := q.Clone()
	cp := *out.Ops[template]
	cp.ID = id
	cp.FieldTypes = append([]stream.DataType(nil), out.Ops[template].FieldTypes...)
	out.Ops = append(out.Ops, &cp)
	out.Edges = append(out.Edges, [2]int{op, len(out.Ops) - 1})
	return out
}

func linearFilterQuery(rate, sel float64) *stream.Query {
	b := stream.NewBuilder()
	s := b.AddSource(rate, []stream.DataType{stream.TypeInt, stream.TypeInt, stream.TypeInt})
	f := b.AddFilter(stream.FilterGT, stream.TypeInt, sel)
	k := b.AddSink()
	b.Chain(s, f, k)
	return b.MustBuild()
}

func runEngine(t *testing.T, q *stream.Query, c *hardware.Cluster, p Placement, cfg Config) *Metrics {
	t.Helper()
	rates, err := q.DeriveRates()
	if err != nil {
		t.Fatal(err)
	}
	return newEngine(q, c, p, rates, cfg).run()
}

// TestValidateRejectsFanOut locks in the public contract: plans where an
// operator feeds more than one consumer never reach the engine through
// sim.Run (user-supplied queries on costream-serve included).
func TestValidateRejectsFanOut(t *testing.T) {
	q := fanOutFrom(linearFilterQuery(800, 0.9), 1, 2, "sink-2")
	if err := q.Validate(); err == nil {
		t.Fatal("fan-out plan passed Query.Validate")
	}
	c := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("a"), strongHost("b")}}
	if _, err := Run(q, c, Placement{0, 0, 1, 1}, testConfig()); err == nil {
		t.Fatal("sim.Run accepted a fan-out plan")
	}
}

// TestFanOutNetworkPerDownstream: each cross-host downstream consumes
// sender bandwidth separately. With two remote consumers the fan-out
// operator must ship two copies of its output stream, not one.
func TestFanOutNetworkPerDownstream(t *testing.T) {
	cfg := testConfig()
	cfg.NoiseStd = 0

	base := linearFilterQuery(800, 0.9)
	q := fanOutFrom(base, 1, 2, "sink-2") // filter now feeds two sinks
	c := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("a"), strongHost("b"), strongHost("c")}}

	// One remote consumer: second sink co-located with the filter.
	oneRemote := runEngine(t, q, c, Placement{0, 0, 1, 0}, cfg)
	// Two remote consumers.
	twoRemote := runEngine(t, q, c, Placement{0, 0, 1, 2}, cfg)

	one := oneRemote.PerOp[1].NetOutMbps
	two := twoRemote.PerOp[1].NetOutMbps
	if one <= 0 {
		t.Fatalf("baseline run shipped no bytes (NetOutMbps=%v)", one)
	}
	if math.Abs(two-2*one) > 1e-6*one {
		t.Fatalf("two remote downstreams shipped %.6f Mbps, want 2x the single-consumer %.6f", two, one)
	}
	// Broadcast semantics: both sinks see the same arrival rate.
	if a, b := twoRemote.PerOp[2].InRate, twoRemote.PerOp[3].InRate; math.Abs(a-b) > 1e-9 {
		t.Fatalf("fan-out consumers see different arrival rates: %v vs %v", a, b)
	}
}

// TestFanOutBlockingTightestQueue: emission is throttled by the slowest
// downstream, wherever it sits in the downstream list. Before the
// per-downstream fix only downs[0] was consulted, so a saturated second
// consumer was silently ignored and backpressure under-reported.
func TestFanOutBlockingTightestQueue(t *testing.T) {
	cfg := testConfig()
	cfg.NoiseStd = 0

	// source fans out to a fast filter chain (downs[0]) and a slow one
	// (downs[1]) placed on a starved host.
	b := stream.NewBuilder()
	s := b.AddSource(25600, []stream.DataType{stream.TypeInt, stream.TypeInt, stream.TypeInt})
	f := b.AddFilter(stream.FilterGT, stream.TypeInt, 0.9)
	k := b.AddSink()
	b.Chain(s, f, k)
	q := b.MustBuild()
	// Add the slow branch: filter copy + its own sink, fed by the source.
	q = fanOutFrom(q, 0, 1, "filter-slow") // op 3
	q.Edges = append(q.Edges, [2]int{3, 4})
	cp := *q.Ops[2]
	cp.ID = "sink-slow"
	q.Ops = append(q.Ops, &cp) // op 4

	c := &hardware.Cluster{Hosts: []*hardware.Host{strongHost("a"), strongHost("b"), weakHost("w")}}
	// Fast branch on strong hosts, slow filter on the weak host.
	m := runEngine(t, q, c, Placement{0, 0, 1, 2, 1}, cfg)

	if !m.Backpressured {
		t.Fatalf("saturated second downstream did not backpressure the source: %+v", m)
	}
	if m.PerOp[3].AvgQueue < queueCapTuples/2 {
		t.Fatalf("slow branch queue %v never filled (cap %v); scenario does not exercise blocking", m.PerOp[3].AvgQueue, float64(queueCapTuples))
	}
}

package sim

import (
	"fmt"
	"math"
	"math/rand"

	"costream/internal/hardware"
	"costream/internal/stream"
)

// Config controls a simulation run.
type Config struct {
	// DurationS is the simulated execution time after warm-up, matching
	// the paper's measured window.
	DurationS float64
	// WarmupS is simulated time excluded from measurement (window fill,
	// producer ramp-up).
	WarmupS float64
	// StepS is the fluid-model step size.
	StepS float64
	// Seed drives the run's noise. Identical configurations with
	// identical seeds produce identical metrics.
	Seed int64
	// NoiseStd is the standard deviation of the per-operator
	// multiplicative log-normal cost noise.
	NoiseStd float64
}

// DefaultConfig returns the configuration used for corpus generation:
// 120 s measured execution (the paper uses ~4 min; the fluid model reaches
// steady state far earlier), 10 s warm-up, 50 ms steps.
func DefaultConfig() Config {
	return Config{DurationS: 120, WarmupS: 10, StepS: 0.05, Seed: 1, NoiseStd: 0.08}
}

// Placement maps operator index -> host index.
type Placement []int

// Validate checks the placement against the plan and cluster sizes.
func (p Placement) Validate(q *stream.Query, c *hardware.Cluster) error {
	if len(p) != len(q.Ops) {
		return fmt.Errorf("placement has %d entries for %d operators", len(p), len(q.Ops))
	}
	for i, h := range p {
		if h < 0 || h >= len(c.Hosts) {
			return fmt.Errorf("operator %d placed on invalid host %d (cluster has %d)", i, h, len(c.Hosts))
		}
	}
	return nil
}

// Run executes the query under the given placement on the cluster and
// returns the measured cost metrics. It is deterministic in (inputs, seed).
func Run(q *stream.Query, c *hardware.Cluster, p Placement, cfg Config) (*Metrics, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("invalid query: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("invalid cluster: %w", err)
	}
	if err := p.Validate(q, c); err != nil {
		return nil, fmt.Errorf("invalid placement: %w", err)
	}
	if cfg.StepS <= 0 || cfg.DurationS <= 0 {
		return nil, fmt.Errorf("invalid config: step=%v duration=%v", cfg.StepS, cfg.DurationS)
	}
	rates, err := q.DeriveRates()
	if err != nil {
		return nil, err
	}
	e := newEngine(q, c, p, rates, cfg)
	return e.run(), nil
}

type engine struct {
	q     *stream.Query
	c     *hardware.Cluster
	p     Placement
	rates *stream.Rates
	cfg   Config
	rng   *rand.Rand

	order    []int     // topological order of operators
	costUS   []float64 // noisy per-tuple cost incl. GC slowdown
	outRatio []float64 // emitted per processed tuple
	queue    []float64 // input queue length (tuples)

	// Broker state, one stream per source operator index.
	sourceIdx []int
	backlog   map[int]float64

	// Memory.
	memPressure []float64 // per host
	crashed     bool

	// Measurement accumulators.
	measTime     float64
	procAcc      []float64 // tuples processed per op
	emitAcc      []float64 // tuples emitted per op
	queueAcc     []float64 // queue length integral
	cpuAcc       []float64 // core-seconds consumed per op
	netBitsAcc   []float64 // outgoing bits per op (cross-host only)
	backlogStart map[int]float64
	backlogAcc   map[int]float64
	sinkArrived  float64
}

func newEngine(q *stream.Query, c *hardware.Cluster, p Placement, r *stream.Rates, cfg Config) *engine {
	n := len(q.Ops)
	order, _ := q.TopoOrder()
	e := &engine{
		q: q, c: c, p: p, rates: r, cfg: cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		order:        order,
		costUS:       make([]float64, n),
		outRatio:     make([]float64, n),
		queue:        make([]float64, n),
		backlog:      make(map[int]float64),
		memPressure:  make([]float64, len(c.Hosts)),
		procAcc:      make([]float64, n),
		emitAcc:      make([]float64, n),
		queueAcc:     make([]float64, n),
		cpuAcc:       make([]float64, n),
		netBitsAcc:   make([]float64, n),
		backlogStart: make(map[int]float64),
		backlogAcc:   make(map[int]float64),
	}
	e.sourceIdx = q.Sources()
	for _, s := range e.sourceIdx {
		e.backlog[s] = 0
	}

	// Memory pressure per host from window state of the operators placed
	// there; determined by logical extents, fixed for the run.
	memUsed := make([]float64, len(c.Hosts))
	for h := range c.Hosts {
		memUsed[h] = hostBaseMemBytes
	}
	for i := range q.Ops {
		memUsed[p[i]] += perOpMemBytes + stateBytes(q, r, i)
	}
	for h, host := range c.Hosts {
		e.memPressure[h] = memUsed[h] / (host.RAMBytes() * heapFraction)
		if e.memPressure[h] > crashPressure {
			e.crashed = true
		}
	}

	// Per-operator noisy costs with GC slowdown baked in.
	for i := range q.Ops {
		noise := math.Exp(e.rng.NormFloat64() * cfg.NoiseStd)
		e.costUS[i] = perTupleCostUS(q, r, i) * noise * gcSlowdown(e.memPressure[p[i]])
		in := r.In[i]
		if q.Ops[i].Type == stream.OpSource {
			in = r.Out[i] // sources "process" their own emission stream
		}
		if in > 0 {
			e.outRatio[i] = r.Out[i] / in
		}
	}
	return e
}

// hostCPUAlloc water-fills the host's cores across the CPU demand of its
// operators. want[i] is the number of tuples op i would like to process
// this step; returns allocated core-seconds per op for this step.
func (e *engine) hostCPUAlloc(ops []int, want []float64, dt float64) []float64 {
	alloc := make([]float64, len(ops))
	need := make([]float64, len(ops))
	active := make([]int, 0, len(ops))
	for k, i := range ops {
		need[k] = want[k] * e.costUS[i] / 1e6 // core-seconds
		if need[k] > 0 {
			active = append(active, k)
		}
	}
	capacity := e.c.Hosts[e.p[ops[0]]].Cores() * dt
	for len(active) > 0 && capacity > 1e-15 {
		fair := capacity / float64(len(active))
		progressed := false
		next := active[:0]
		for _, k := range active {
			if need[k] <= fair {
				alloc[k] += need[k]
				capacity -= need[k]
				need[k] = 0
				progressed = true
			} else {
				next = append(next, k)
			}
		}
		active = next
		if !progressed {
			for _, k := range active {
				alloc[k] += fair
				need[k] -= fair
			}
			capacity = 0
			break
		}
	}
	return alloc
}

func (e *engine) run() *Metrics {
	if e.crashed {
		return e.crashMetrics()
	}
	dt := e.cfg.StepS
	total := e.cfg.WarmupS + e.cfg.DurationS
	steps := int(math.Round(total / dt))
	warmSteps := int(math.Round(e.cfg.WarmupS / dt))

	// Group operators by host once.
	hostOps := make(map[int][]int)
	for i := range e.q.Ops {
		hostOps[e.p[i]] = append(hostOps[e.p[i]], i)
	}

	n := len(e.q.Ops)
	arrivals := make([]float64, n)
	processed := make([]float64, n)
	wantBuf := make(map[int][]float64)
	for h, ops := range hostOps {
		wantBuf[h] = make([]float64, len(ops))
	}
	// Per-host outgoing network budget in bits per step.
	netBudget := make([]float64, len(e.c.Hosts))

	measuring := false
	for s := 0; s < steps; s++ {
		if s == warmSteps {
			measuring = true
			for src, b := range e.backlog {
				e.backlogStart[src] = b
			}
		}
		// Broker receives producer events.
		for _, src := range e.sourceIdx {
			e.backlog[src] += e.q.Ops[src].EventRate * dt
		}
		for i := range arrivals {
			arrivals[i] = 0
		}
		for h := range netBudget {
			netBudget[h] = e.c.Hosts[h].NetBandwidthMbps * mbitToBits * dt
		}

		// CPU allocation per host based on queued + pending work.
		for h, ops := range hostOps {
			want := wantBuf[h]
			for k, i := range ops {
				if e.q.Ops[i].Type == stream.OpSource {
					want[k] = e.backlog[i]
				} else {
					want[k] = e.queue[i]
				}
				// Include expected same-step arrivals so pipelines
				// are not artificially staggered.
				want[k] += e.rates.In[i] * dt
			}
			alloc := e.hostCPUAlloc(ops, want, dt)
			for k, i := range ops {
				cap := alloc[k] * 1e6 / e.costUS[i] // tuples processable
				processed[i] = cap
				if measuring {
					e.cpuAcc[i] += alloc[k]
				}
			}
		}

		// Data movement in topological order.
		for _, i := range e.order {
			op := e.q.Ops[i]
			var avail float64
			if op.Type == stream.OpSource {
				avail = e.backlog[i]
			} else {
				e.queue[i] += arrivals[i]
				if e.queue[i] > queueCapTuples {
					// Bounded queue: excess is refused; refusal
					// propagates as reduced upstream emission next
					// steps via the blocking term below.
					e.queue[i] = queueCapTuples
				}
				avail = e.queue[i]
			}
			proc := math.Min(processed[i], avail)

			// Blocking: emission is broadcast to every downstream, so it
			// is limited by the tightest downstream queue — consulting
			// only the first downstream would under-charge backpressure
			// on fan-out plans.
			downs := e.q.Downstream(i)
			if len(downs) > 0 && e.outRatio[i] > 0 {
				minFree := math.Inf(1)
				for _, d := range downs {
					free := queueCapTuples - e.queue[d]
					if free < 0 {
						free = 0
					}
					if free < minFree {
						minFree = free
					}
				}
				maxProc := minFree / e.outRatio[i]
				if proc > maxProc {
					proc = maxProc
				}
			}
			// Network: every cross-host downstream consumes sender
			// bandwidth separately (one copy of the stream per remote
			// consumer). For the paper's tree-shaped plans (exactly one
			// consumer, enforced by Query.Validate) this reduces exactly
			// to the single-edge charge.
			if len(downs) > 0 {
				src := e.p[i]
				remote := 0
				for _, d := range downs {
					if e.p[d] != src {
						remote++
					}
				}
				if remote > 0 {
					bits := proc * e.outRatio[i] * e.rates.TupleBytes[i] * bitsPerByte * float64(remote)
					if bits > netBudget[src] {
						scale := 0.0
						if bits > 0 {
							scale = netBudget[src] / bits
						}
						proc *= scale
						bits = netBudget[src]
					}
					netBudget[src] -= bits
					if measuring {
						e.netBitsAcc[i] += bits
					}
				}
			}

			out := proc * e.outRatio[i]
			if op.Type == stream.OpSource {
				e.backlog[i] -= proc
			} else {
				e.queue[i] -= proc
			}
			for _, d := range downs {
				arrivals[d] += out
			}
			if op.Type == stream.OpSink && measuring {
				e.sinkArrived += proc
			}
			if measuring {
				e.procAcc[i] += proc
				e.emitAcc[i] += out
			}
		}
		if measuring {
			e.measTime += dt
			for i := range e.queue {
				e.queueAcc[i] += e.queue[i] * dt
			}
			for _, src := range e.sourceIdx {
				e.backlogAcc[src] += e.backlog[src] * dt
			}
		}
	}
	return e.finish()
}

func (e *engine) crashMetrics() *Metrics {
	m := &Metrics{
		Success:         false,
		Crashed:         true,
		Backpressured:   true, // a dying pipeline stops consuming
		HostMemPressure: append([]float64(nil), e.memPressure...),
		PerOp:           make([]OpStats, len(e.q.Ops)),
	}
	for i := range e.q.Ops {
		m.PerOp[i] = OpStats{Host: e.p[i]}
	}
	// Backpressure rate: the full input load queues up.
	for _, src := range e.sourceIdx {
		m.BackpressureRate += e.q.Ops[src].EventRate
	}
	return m
}

func (e *engine) finish() *Metrics {
	n := len(e.q.Ops)
	m := &Metrics{
		HostMemPressure: append([]float64(nil), e.memPressure...),
		PerOp:           make([]OpStats, n),
	}
	mt := e.measTime
	if mt <= 0 {
		mt = 1
	}
	m.SinkTuples = e.sinkArrived
	m.ThroughputTPS = e.sinkArrived / mt

	// Per-op stats.
	for i := range e.q.Ops {
		host := e.p[i]
		cores := e.c.Hosts[host].Cores()
		stats := OpStats{
			Host:        host,
			OutRate:     e.emitAcc[i] / mt,
			AvgQueue:    e.queueAcc[i] / mt,
			NetOutMbps:  e.netBitsAcc[i] / mt / mbitToBits,
			ServiceRate: e.procAcc[i] / mt,
		}
		if cores > 0 {
			stats.CPUUtil = (e.cpuAcc[i] / mt) / cores
		}
		// In-rate: what upstream emitted toward this op (or the source's
		// own consumption).
		if e.q.Ops[i].Type == stream.OpSource {
			stats.InRate = e.procAcc[i] / mt
		} else {
			var in float64
			for _, u := range e.q.Upstream(i) {
				in += e.emitAcc[u] / mt
			}
			stats.InRate = in
		}
		m.PerOp[i] = stats
	}

	// Backpressure: broker backlog growth over the measurement window.
	var rate float64
	for _, src := range e.sourceIdx {
		growth := (e.backlog[src] - e.backlogStart[src]) / mt
		if growth > 0.5 {
			rate += growth
		}
	}
	m.BackpressureRate = rate
	m.Backpressured = rate > 0.5

	// Success: at least one tuple at the sink, no crash.
	m.Success = e.sinkArrived >= 1
	m.Crashed = false

	// Latency: critical path from sources to sink over time-averaged
	// queueing, service, window residence and network terms.
	lp := e.pathLatencyMS(e.q.Sink())
	m.ProcLatencyMS = lp

	// End-to-end latency adds broker wait: time events spend in the
	// broker before the source consumes them (oldest-tuple semantics ->
	// max over sources).
	maxWait := 0.0
	for _, src := range e.sourceIdx {
		avgBacklog := e.backlogAcc[src] / mt
		cons := e.procAcc[src] / mt
		if cons < 1e-9 {
			cons = 1e-9
		}
		w := avgBacklog / cons * 1000
		if w > maxWait {
			maxWait = w
		}
	}
	m.E2ELatencyMS = lp + brokerBaseWaitMS + maxWait
	if !m.Success {
		m.ThroughputTPS = 0
	}
	return m
}

// pathLatencyMS returns the worst-case (oldest contributing tuple) latency
// from any source to operator i, in milliseconds.
func (e *engine) pathLatencyMS(i int) float64 {
	if i < 0 {
		return 0
	}
	mt := e.measTime
	if mt <= 0 {
		mt = 1
	}
	op := e.q.Ops[i]
	host := e.p[i]

	// Queue wait (Little's law) + service time + GC pauses.
	var own float64
	served := e.procAcc[i] / mt
	if served > 1e-9 {
		own += (e.queueAcc[i] / mt) / served * 1000
	} else if e.queueAcc[i]/mt > 1 {
		own += e.cfg.DurationS * 1000 // starved but backlogged: saturated
	}
	own += e.costUS[i] / 1e3 / e.c.Hosts[host].Cores() // service in ms
	own += gcPauseMS(e.memPressure[host])

	// Window residence: the oldest tuple of a firing window is a full
	// window extent old.
	if op.Window != nil {
		inRate := 0.0
		for _, u := range e.q.Upstream(i) {
			r := e.emitAcc[u] / mt
			if r > inRate {
				inRate = r
			}
		}
		if inRate <= 1e-9 {
			inRate = 1e-9
		}
		own += op.Window.ExtentSeconds(inRate) * 1000
	}

	ups := e.q.Upstream(i)
	if len(ups) == 0 {
		return own
	}
	worst := 0.0
	for _, u := range ups {
		l := e.pathLatencyMS(u) + e.netLatencyMS(u, i)
		if l > worst {
			worst = l
		}
	}
	return worst + own
}

// netLatencyMS returns the network latency contribution of edge u->v:
// propagation plus serialization/transfer under the link's achieved
// utilization, with congestion queueing when the link runs hot.
func (e *engine) netLatencyMS(u, v int) float64 {
	src, dst := e.p[u], e.p[v]
	if src == dst {
		return 0
	}
	mt := e.measTime
	if mt <= 0 {
		mt = 1
	}
	prop := e.c.LinkLatencyMS(src, dst)
	bw := e.c.LinkBandwidthMbps(src, dst) * mbitToBits
	if bw <= 0 {
		return prop
	}
	transfer := e.rates.TupleBytes[u] * bitsPerByte / bw * 1000
	// Congestion: total outgoing utilization of the sender host.
	var hostBits float64
	for i := range e.q.Ops {
		if e.p[i] == src {
			hostBits += e.netBitsAcc[i] / mt
		}
	}
	util := hostBits / (e.c.Hosts[src].NetBandwidthMbps * mbitToBits)
	if util > networkCongestion {
		over := math.Min(util, 0.99)
		transfer *= 1 / (1 - over)
		prop *= 1 + 2*(over-networkCongestion)
	}
	return prop + transfer
}

package nn

import "math"

// Adam implements the Adam optimizer over a fixed set of parameter slices.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	WDecay   float64 // decoupled weight decay (AdamW); 0 disables
	ClipNorm float64 // global gradient norm clip; 0 disables

	params [][]float64
	grads  [][]float64
	m      [][]float64
	v      [][]float64
	t      int
}

// NewAdam returns an Adam optimizer for the given parameter/gradient
// pairs (as returned by MLP.Params).
func NewAdam(lr float64, params, grads [][]float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 5,
		params: params, grads: grads,
	}
	for _, p := range params {
		a.m = append(a.m, make([]float64, len(p)))
		a.v = append(a.v, make([]float64, len(p)))
	}
	return a
}

// Register appends additional parameter/gradient pairs (e.g. from several
// MLPs composing one model).
func (a *Adam) Register(params, grads [][]float64) {
	for i, p := range params {
		a.params = append(a.params, p)
		a.grads = append(a.grads, grads[i])
		a.m = append(a.m, make([]float64, len(p)))
		a.v = append(a.v, make([]float64, len(p)))
	}
}

// Step applies one Adam update using the accumulated gradients, then
// leaves the gradients untouched (call ZeroGrad on the layers afterwards).
func (a *Adam) Step() {
	a.t++
	if a.ClipNorm > 0 {
		var norm2 float64
		for _, g := range a.grads {
			for _, x := range g {
				norm2 += x * x
			}
		}
		if norm := math.Sqrt(norm2); norm > a.ClipNorm {
			scale := a.ClipNorm / norm
			for _, g := range a.grads {
				for i := range g {
					g[i] *= scale
				}
			}
		}
	}
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for k, p := range a.params {
		g := a.grads[k]
		m := a.m[k]
		v := a.v[k]
		for i := range p {
			gi := g[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
			mhat := m[i] / c1
			vhat := v[i] / c2
			upd := a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
			if a.WDecay > 0 {
				upd += a.LR * a.WDecay * p[i]
			}
			p[i] -= upd
		}
	}
}

// ZeroGrads clears every registered gradient slice.
func (a *Adam) ZeroGrads() {
	for _, g := range a.grads {
		for i := range g {
			g[i] = 0
		}
	}
}

package nn

import "fmt"

// Dense kernels: tape-free, row-batched matrix-matrix ops for stacked
// ensemble inference. Where Linear/MLP evaluate one activation vector at
// a time (and Tape records one op per call), the kernels here advance a
// whole row batch — all k ensemble members of a node, or all nodes of a
// kind — through one fused affine(+LeakyReLU) pass with zero allocations.
// Strided addressing lets callers keep activations in an interleaved
// node-major, member-block layout without gather/scatter copies between
// layers.
//
// Every kernel accumulates each output element in exactly the order of
// Linear.affineInto (bias first, then inputs in index order), so the
// float64 path is bit-identical to MLP.Infer on the same weights.

// affineRowsStrided computes, for each row r in [0, rows):
//
//	x_r = x[xOff+r*xStride : +in]
//	y_r = dst[dstOff+r*dstStride : +out]
//	y_r[o] = b[o] + Σ_i w[o*in+i]·x_r[i]   (then LeakyReLU when act)
//
// w is row-major out×in. The per-element accumulation order matches
// Linear.affineInto and leakyReLUInPlace exactly.
//
// Outputs are blocked four at a time: each output's sum is a strictly
// sequential float64 dependency chain, so a lone accumulator is bound by
// FP-add latency, not throughput. Four outputs give four independent
// chains over one streamed pass of x_r — the per-output accumulation
// order (and thus the bits) is unchanged.
func affineRowsStrided(dst []float64, dstOff, dstStride int, x []float64, xOff, xStride, rows int, w, b []float64, in, out int, alpha float64, act bool) {
	for r := 0; r < rows; r++ {
		xr := x[xOff+r*xStride : xOff+r*xStride+in]
		yr := dst[dstOff+r*dstStride : dstOff+r*dstStride+out]
		o := 0
		for ; o+8 <= out; o += 8 {
			w0 := w[o*in : o*in+in][:len(xr)]
			w1 := w[(o+1)*in : (o+1)*in+in][:len(xr)]
			w2 := w[(o+2)*in : (o+2)*in+in][:len(xr)]
			w3 := w[(o+3)*in : (o+3)*in+in][:len(xr)]
			w4 := w[(o+4)*in : (o+4)*in+in][:len(xr)]
			w5 := w[(o+5)*in : (o+5)*in+in][:len(xr)]
			w6 := w[(o+6)*in : (o+6)*in+in][:len(xr)]
			w7 := w[(o+7)*in : (o+7)*in+in][:len(xr)]
			s0, s1, s2, s3 := b[o], b[o+1], b[o+2], b[o+3]
			s4, s5, s6, s7 := b[o+4], b[o+5], b[o+6], b[o+7]
			for i, xi := range xr {
				s0 += w0[i] * xi
				s1 += w1[i] * xi
				s2 += w2[i] * xi
				s3 += w3[i] * xi
				s4 += w4[i] * xi
				s5 += w5[i] * xi
				s6 += w6[i] * xi
				s7 += w7[i] * xi
			}
			if act {
				if s0 < 0 {
					s0 = alpha * s0
				}
				if s1 < 0 {
					s1 = alpha * s1
				}
				if s2 < 0 {
					s2 = alpha * s2
				}
				if s3 < 0 {
					s3 = alpha * s3
				}
				if s4 < 0 {
					s4 = alpha * s4
				}
				if s5 < 0 {
					s5 = alpha * s5
				}
				if s6 < 0 {
					s6 = alpha * s6
				}
				if s7 < 0 {
					s7 = alpha * s7
				}
			}
			yr[o], yr[o+1], yr[o+2], yr[o+3] = s0, s1, s2, s3
			yr[o+4], yr[o+5], yr[o+6], yr[o+7] = s4, s5, s6, s7
		}
		for ; o+4 <= out; o += 4 {
			w0 := w[o*in : o*in+in][:len(xr)]
			w1 := w[(o+1)*in : (o+1)*in+in][:len(xr)]
			w2 := w[(o+2)*in : (o+2)*in+in][:len(xr)]
			w3 := w[(o+3)*in : (o+3)*in+in][:len(xr)]
			s0, s1, s2, s3 := b[o], b[o+1], b[o+2], b[o+3]
			for i, xi := range xr {
				s0 += w0[i] * xi
				s1 += w1[i] * xi
				s2 += w2[i] * xi
				s3 += w3[i] * xi
			}
			if act {
				if s0 < 0 {
					s0 = alpha * s0
				}
				if s1 < 0 {
					s1 = alpha * s1
				}
				if s2 < 0 {
					s2 = alpha * s2
				}
				if s3 < 0 {
					s3 = alpha * s3
				}
			}
			yr[o], yr[o+1], yr[o+2], yr[o+3] = s0, s1, s2, s3
		}
		for ; o < out; o++ {
			sum := b[o]
			row := w[o*in : o*in+in][:len(xr)]
			for i, xi := range xr {
				sum += row[i] * xi
			}
			if act && sum < 0 {
				sum = alpha * sum
			}
			yr[o] = sum
		}
	}
}

// affineRowsStrided32 is the float32 twin of affineRowsStrided, used by
// the opt-in fast inference path. Accumulation runs in float32, trading
// ~7 decimal digits of precision for half the memory traffic.
func affineRowsStrided32(dst []float32, dstOff, dstStride int, x []float32, xOff, xStride, rows int, w, b []float32, in, out int, alpha float32, act bool) {
	for r := 0; r < rows; r++ {
		xr := x[xOff+r*xStride : xOff+r*xStride+in]
		yr := dst[dstOff+r*dstStride : dstOff+r*dstStride+out]
		o := 0
		for ; o+8 <= out; o += 8 {
			w0 := w[o*in : o*in+in][:len(xr)]
			w1 := w[(o+1)*in : (o+1)*in+in][:len(xr)]
			w2 := w[(o+2)*in : (o+2)*in+in][:len(xr)]
			w3 := w[(o+3)*in : (o+3)*in+in][:len(xr)]
			w4 := w[(o+4)*in : (o+4)*in+in][:len(xr)]
			w5 := w[(o+5)*in : (o+5)*in+in][:len(xr)]
			w6 := w[(o+6)*in : (o+6)*in+in][:len(xr)]
			w7 := w[(o+7)*in : (o+7)*in+in][:len(xr)]
			s0, s1, s2, s3 := b[o], b[o+1], b[o+2], b[o+3]
			s4, s5, s6, s7 := b[o+4], b[o+5], b[o+6], b[o+7]
			for i, xi := range xr {
				s0 += w0[i] * xi
				s1 += w1[i] * xi
				s2 += w2[i] * xi
				s3 += w3[i] * xi
				s4 += w4[i] * xi
				s5 += w5[i] * xi
				s6 += w6[i] * xi
				s7 += w7[i] * xi
			}
			if act {
				if s0 < 0 {
					s0 = alpha * s0
				}
				if s1 < 0 {
					s1 = alpha * s1
				}
				if s2 < 0 {
					s2 = alpha * s2
				}
				if s3 < 0 {
					s3 = alpha * s3
				}
				if s4 < 0 {
					s4 = alpha * s4
				}
				if s5 < 0 {
					s5 = alpha * s5
				}
				if s6 < 0 {
					s6 = alpha * s6
				}
				if s7 < 0 {
					s7 = alpha * s7
				}
			}
			yr[o], yr[o+1], yr[o+2], yr[o+3] = s0, s1, s2, s3
			yr[o+4], yr[o+5], yr[o+6], yr[o+7] = s4, s5, s6, s7
		}
		for ; o+4 <= out; o += 4 {
			w0 := w[o*in : o*in+in][:len(xr)]
			w1 := w[(o+1)*in : (o+1)*in+in][:len(xr)]
			w2 := w[(o+2)*in : (o+2)*in+in][:len(xr)]
			w3 := w[(o+3)*in : (o+3)*in+in][:len(xr)]
			s0, s1, s2, s3 := b[o], b[o+1], b[o+2], b[o+3]
			for i, xi := range xr {
				s0 += w0[i] * xi
				s1 += w1[i] * xi
				s2 += w2[i] * xi
				s3 += w3[i] * xi
			}
			if act {
				if s0 < 0 {
					s0 = alpha * s0
				}
				if s1 < 0 {
					s1 = alpha * s1
				}
				if s2 < 0 {
					s2 = alpha * s2
				}
				if s3 < 0 {
					s3 = alpha * s3
				}
			}
			yr[o], yr[o+1], yr[o+2], yr[o+3] = s0, s1, s2, s3
		}
		for ; o < out; o++ {
			sum := b[o]
			row := w[o*in : o*in+in][:len(xr)]
			for i, xi := range xr {
				sum += row[i] * xi
			}
			if act && sum < 0 {
				sum = alpha * sum
			}
			yr[o] = sum
		}
	}
}

// StackedLinear is k independently weighted Linear layers of identical
// shape evaluated through one batched kernel: member m's weights occupy
// block m of the member-major weight and bias buffers. The weights are
// copied (in float64 and float32) at stack time — a stack goes stale when
// a member's weights are updated in place and must be rebuilt.
type StackedLinear struct {
	K, In, Out int
	W          []float64 // K blocks of row-major Out×In
	B          []float64 // K blocks of Out
	W32        []float32
	B32        []float32
	WT         []float64 // K blocks of column-major In×Out (for the SIMD kernels)
	WT32       []float32
}

// StackLinears copies k same-shape layers into one stacked layer.
func StackLinears(ls []*Linear) (*StackedLinear, error) {
	if len(ls) == 0 {
		return nil, fmt.Errorf("nn: stacking zero layers")
	}
	in, out := ls[0].In, ls[0].Out
	s := &StackedLinear{
		K: len(ls), In: in, Out: out,
		W:    make([]float64, 0, len(ls)*out*in),
		B:    make([]float64, 0, len(ls)*out),
		W32:  make([]float32, len(ls)*out*in),
		B32:  make([]float32, len(ls)*out),
		WT:   make([]float64, len(ls)*in*out),
		WT32: make([]float32, len(ls)*in*out),
	}
	for m, l := range ls {
		if l.In != in || l.Out != out {
			return nil, fmt.Errorf("nn: layer %d is %dx%d, want %dx%d", m, l.Out, l.In, out, in)
		}
		s.W = append(s.W, l.W...)
		s.B = append(s.B, l.B...)
	}
	for i, v := range s.W {
		s.W32[i] = float32(v)
	}
	for i, v := range s.B {
		s.B32[i] = float32(v)
	}
	// Transpose each member block: WT[m][i*out+o] = W[m][o*in+i]. The
	// vector kernels stream x once and keep outputs in adjacent lanes,
	// which needs unit-stride access to "all outputs for input i".
	for m := 0; m < s.K; m++ {
		wm := s.W[m*out*in:]
		wtm := s.WT[m*in*out:]
		for o := 0; o < out; o++ {
			for i := 0; i < in; i++ {
				wtm[i*out+o] = wm[o*in+i]
			}
		}
	}
	for i, v := range s.WT {
		s.WT32[i] = float32(v)
	}
	return s, nil
}

// wb returns member m's float64 weight and bias blocks.
func (s *StackedLinear) wb(m int) (w, b []float64) {
	return s.W[m*s.Out*s.In : (m+1)*s.Out*s.In], s.B[m*s.Out : (m+1)*s.Out]
}

// wb32 returns member m's float32 weight and bias blocks.
func (s *StackedLinear) wb32(m int) (w, b []float32) {
	return s.W32[m*s.Out*s.In : (m+1)*s.Out*s.In], s.B32[m*s.Out : (m+1)*s.Out]
}

// wtb returns member m's transposed float64 weight and bias blocks.
func (s *StackedLinear) wtb(m int) (wt, b []float64) {
	return s.WT[m*s.In*s.Out : (m+1)*s.In*s.Out], s.B[m*s.Out : (m+1)*s.Out]
}

// wtb32 returns member m's transposed float32 weight and bias blocks.
func (s *StackedLinear) wtb32(m int) (wt, b []float32) {
	return s.WT32[m*s.In*s.Out : (m+1)*s.In*s.Out], s.B32[m*s.Out : (m+1)*s.Out]
}

var (
	f64zero [1]float64
	f32zero [1]float32
)

// affineRowsTrans is affineRowsStrided on the transposed weight layout,
// dispatching each row to the AVX kernel. LeakyReLU runs as a Go
// post-pass over the out outputs — same compare-and-scale per element as
// the fused scalar kernel, so the bits match.
func affineRowsTrans(dst []float64, dstOff, dstStride int, x []float64, xOff, xStride, rows int, wt, b []float64, in, out int, alpha float64, act bool) {
	for r := 0; r < rows; r++ {
		yr := dst[dstOff+r*dstStride : dstOff+r*dstStride+out]
		xp := &f64zero[0]
		if in > 0 {
			xp = &x[xOff+r*xStride]
		}
		affineTransAVX(&yr[0], xp, &wt[0], &b[0], in, out)
		if act {
			for o, v := range yr {
				if v < 0 {
					yr[o] = alpha * v
				}
			}
		}
	}
}

// affineRowsTrans32 is the float32 twin of affineRowsTrans.
func affineRowsTrans32(dst []float32, dstOff, dstStride int, x []float32, xOff, xStride, rows int, wt, b []float32, in, out int, alpha float32, act bool) {
	for r := 0; r < rows; r++ {
		yr := dst[dstOff+r*dstStride : dstOff+r*dstStride+out]
		xp := &f32zero[0]
		if in > 0 {
			xp = &x[xOff+r*xStride]
		}
		affineTransAVX32(&yr[0], xp, &wt[0], &b[0], in, out)
		if act {
			for o, v := range yr {
				if v < 0 {
					yr[o] = alpha * v
				}
			}
		}
	}
}

// SharedRows advances rows shared input rows through every member: x is
// rows×In (one row per item, shared by all members), dst is rows×(K·Out)
// with member m's outputs at column offset m·Out. Per member this is a
// true matrix-matrix product over the whole row batch.
func (s *StackedLinear) SharedRows(dst, x []float64, rows int, alpha float64, act bool) {
	if useAffineAsm {
		for m := 0; m < s.K; m++ {
			wt, b := s.wtb(m)
			affineRowsTrans(dst, m*s.Out, s.K*s.Out, x, 0, s.In, rows, wt, b, s.In, s.Out, alpha, act)
		}
		return
	}
	for m := 0; m < s.K; m++ {
		w, b := s.wb(m)
		affineRowsStrided(dst, m*s.Out, s.K*s.Out, x, 0, s.In, rows, w, b, s.In, s.Out, alpha, act)
	}
}

// BlockRows advances rows interleaved member-block rows: x is rows×(K·In)
// with member m's input at column offset m·In, dst is rows×(K·Out).
// Member m's rows all go through member m's weights.
func (s *StackedLinear) BlockRows(dst, x []float64, rows int, alpha float64, act bool) {
	if useAffineAsm {
		for m := 0; m < s.K; m++ {
			wt, b := s.wtb(m)
			affineRowsTrans(dst, m*s.Out, s.K*s.Out, x, m*s.In, s.K*s.In, rows, wt, b, s.In, s.Out, alpha, act)
		}
		return
	}
	for m := 0; m < s.K; m++ {
		w, b := s.wb(m)
		affineRowsStrided(dst, m*s.Out, s.K*s.Out, x, m*s.In, s.K*s.In, rows, w, b, s.In, s.Out, alpha, act)
	}
}

// SharedRows32 is the float32 twin of SharedRows.
func (s *StackedLinear) SharedRows32(dst, x []float32, rows int, alpha float32, act bool) {
	if useAffineAsm {
		for m := 0; m < s.K; m++ {
			wt, b := s.wtb32(m)
			affineRowsTrans32(dst, m*s.Out, s.K*s.Out, x, 0, s.In, rows, wt, b, s.In, s.Out, alpha, act)
		}
		return
	}
	for m := 0; m < s.K; m++ {
		w, b := s.wb32(m)
		affineRowsStrided32(dst, m*s.Out, s.K*s.Out, x, 0, s.In, rows, w, b, s.In, s.Out, alpha, act)
	}
}

// BlockRows32 is the float32 twin of BlockRows.
func (s *StackedLinear) BlockRows32(dst, x []float32, rows int, alpha float32, act bool) {
	if useAffineAsm {
		for m := 0; m < s.K; m++ {
			wt, b := s.wtb32(m)
			affineRowsTrans32(dst, m*s.Out, s.K*s.Out, x, m*s.In, s.K*s.In, rows, wt, b, s.In, s.Out, alpha, act)
		}
		return
	}
	for m := 0; m < s.K; m++ {
		w, b := s.wb32(m)
		affineRowsStrided32(dst, m*s.Out, s.K*s.Out, x, m*s.In, s.K*s.In, rows, w, b, s.In, s.Out, alpha, act)
	}
}

// DenseScratch holds the ping-pong activation buffers of a StackedMLP
// forward pass. One scratch serves one goroutine; buffers grow on demand
// and are reused across calls, so the steady-state pass allocates nothing.
type DenseScratch struct {
	a, b     []float64
	a32, b32 []float32
}

func grow64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func grow32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// StackedMLP is k same-architecture MLPs evaluated as one row-batched
// kernel stack. Hidden layers run the fused affine+LeakyReLU kernel, the
// final layer stays linear — mirroring MLP.Infer layer for layer.
type StackedMLP struct {
	K      int
	Alpha  float64
	Layers []*StackedLinear
}

// StackMLPs vertically stacks k MLPs of identical architecture (layer
// shapes and activation slope). The weights are copied; rebuild the stack
// after updating any member's weights in place.
func StackMLPs(ms []*MLP) (*StackedMLP, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("nn: stacking zero MLPs")
	}
	depth := len(ms[0].Layers)
	s := &StackedMLP{K: len(ms), Alpha: ms[0].Alpha}
	for _, m := range ms {
		if len(m.Layers) != depth {
			return nil, fmt.Errorf("nn: stacking MLPs of depth %d and %d", depth, len(m.Layers))
		}
		if m.Alpha != s.Alpha {
			return nil, fmt.Errorf("nn: stacking MLPs with alpha %v and %v", s.Alpha, m.Alpha)
		}
	}
	for li := 0; li < depth; li++ {
		layers := make([]*Linear, len(ms))
		for m, mlp := range ms {
			layers[m] = mlp.Layers[li]
		}
		sl, err := StackLinears(layers)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", li, err)
		}
		s.Layers = append(s.Layers, sl)
	}
	return s, nil
}

// InDim returns the per-member input dimension.
func (s *StackedMLP) InDim() int { return s.Layers[0].In }

// OutDim returns the per-member output dimension.
func (s *StackedMLP) OutDim() int { return s.Layers[len(s.Layers)-1].Out }

// maxWidth is the widest per-member activation produced by any layer.
func (s *StackedMLP) maxWidth() int {
	w := 0
	for _, l := range s.Layers {
		w = max(w, l.Out)
	}
	return w
}

// ForwardShared runs the whole stack on rows input rows shared by every
// member: x is rows×InDim, dst is rows×(K·OutDim). Bit-identical per
// member to MLP.Infer on each row.
func (s *StackedMLP) ForwardShared(dst, x []float64, rows int, sc *DenseScratch) {
	last := len(s.Layers) - 1
	if last == 0 {
		s.Layers[0].SharedRows(dst, x, rows, s.Alpha, false)
		return
	}
	n := rows * s.K * s.maxWidth()
	sc.a, sc.b = grow64(sc.a, n), grow64(sc.b, n)
	cur := sc.a
	s.Layers[0].SharedRows(cur, x, rows, s.Alpha, true)
	next := sc.b
	for li := 1; li < last; li++ {
		s.Layers[li].BlockRows(next, cur, rows, s.Alpha, true)
		cur, next = next, cur
	}
	s.Layers[last].BlockRows(dst, cur, rows, s.Alpha, false)
}

// ForwardBlocks runs the stack on rows interleaved member-block rows: x
// is rows×(K·InDim) with member m's input at offset m·InDim, dst is
// rows×(K·OutDim).
func (s *StackedMLP) ForwardBlocks(dst, x []float64, rows int, sc *DenseScratch) {
	last := len(s.Layers) - 1
	if last == 0 {
		s.Layers[0].BlockRows(dst, x, rows, s.Alpha, false)
		return
	}
	n := rows * s.K * s.maxWidth()
	sc.a, sc.b = grow64(sc.a, n), grow64(sc.b, n)
	cur := sc.a
	s.Layers[0].BlockRows(cur, x, rows, s.Alpha, true)
	next := sc.b
	for li := 1; li < last; li++ {
		s.Layers[li].BlockRows(next, cur, rows, s.Alpha, true)
		cur, next = next, cur
	}
	s.Layers[last].BlockRows(dst, cur, rows, s.Alpha, false)
}

// ForwardShared32 is the float32 twin of ForwardShared.
func (s *StackedMLP) ForwardShared32(dst, x []float32, rows int, sc *DenseScratch) {
	alpha := float32(s.Alpha)
	last := len(s.Layers) - 1
	if last == 0 {
		s.Layers[0].SharedRows32(dst, x, rows, alpha, false)
		return
	}
	n := rows * s.K * s.maxWidth()
	sc.a32, sc.b32 = grow32(sc.a32, n), grow32(sc.b32, n)
	cur := sc.a32
	s.Layers[0].SharedRows32(cur, x, rows, alpha, true)
	next := sc.b32
	for li := 1; li < last; li++ {
		s.Layers[li].BlockRows32(next, cur, rows, alpha, true)
		cur, next = next, cur
	}
	s.Layers[last].BlockRows32(dst, cur, rows, alpha, false)
}

// ForwardBlocks32 is the float32 twin of ForwardBlocks.
func (s *StackedMLP) ForwardBlocks32(dst, x []float32, rows int, sc *DenseScratch) {
	alpha := float32(s.Alpha)
	last := len(s.Layers) - 1
	if last == 0 {
		s.Layers[0].BlockRows32(dst, x, rows, alpha, false)
		return
	}
	n := rows * s.K * s.maxWidth()
	sc.a32, sc.b32 = grow32(sc.a32, n), grow32(sc.b32, n)
	cur := sc.a32
	s.Layers[0].BlockRows32(cur, x, rows, alpha, true)
	next := sc.b32
	for li := 1; li < last; li++ {
		s.Layers[li].BlockRows32(next, cur, rows, alpha, true)
		cur, next = next, cur
	}
	s.Layers[last].BlockRows32(dst, cur, rows, alpha, false)
}

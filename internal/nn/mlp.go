package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Linear is a fully connected layer y = W*x + b with gradient buffers.
type Linear struct {
	In, Out int
	W       []float64 // row-major Out x In
	B       []float64
	GW      []float64
	GB      []float64
}

// NewLinear returns a layer with Kaiming/He-uniform initialized weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{
		In: in, Out: out,
		W:  make([]float64, out*in),
		B:  make([]float64, out),
		GW: make([]float64, out*in),
		GB: make([]float64, out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range l.W {
		l.W[i] = (rng.Float64()*2 - 1) * bound
	}
	return l
}

// affineInto computes y = W*x + b into dst. Apply and Infer share this
// exact loop so that tape-based and inference-only forward passes are
// bit-identical.
func (l *Linear) affineInto(dst, x []float64) {
	if len(x) != l.In {
		panic(fmt.Sprintf("nn: Linear input dim %d, want %d", len(x), l.In))
	}
	for o := 0; o < l.Out; o++ {
		sum := l.B[o]
		row := l.W[o*l.In : (o+1)*l.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		dst[o] = sum
	}
}

// forward computes y = W*x + b into a fresh slice.
func (l *Linear) forward(x []float64) []float64 {
	data := make([]float64, l.Out)
	l.affineInto(data, x)
	return data
}

// Infer computes y = W*x + b without recording anything for backprop.
func (l *Linear) Infer(x []float64) []float64 { return l.forward(x) }

// Apply records y = W*x + b on the tape as a single affine op.
func (l *Linear) Apply(t *Tape, x *Node) *Node {
	out := t.alloc(l.Out)
	l.affineInto(out.Data, x.Data)
	out.op, out.a, out.lin = opAffine, x, l
	return out
}

// applyLeaky records the fused affine+LeakyReLU op leaky(W*x + b, alpha):
// the MLP hidden-layer hot path collapses from two recorded nodes (and two
// backward dispatches) into one. The arithmetic — forward and backward —
// is identical to Apply followed by Tape.LeakyReLU. alpha must be > 0:
// the fused backward infers the pre-activation sign from the
// post-activation value, which a zero or negative slope would destroy.
func (l *Linear) applyLeaky(t *Tape, x *Node, alpha float64) *Node {
	out := t.alloc(l.Out)
	l.affineInto(out.Data, x.Data)
	leakyReLUInPlace(out.Data, alpha)
	out.op, out.a, out.lin, out.c = opAffineLReLU, x, l, alpha
	return out
}

// backprop accumulates the affine op's gradients: weight and bias
// gradients into the layer's buffers, input gradients into x. For the
// fused affine+LeakyReLU op, fused is the output node: its post-activation
// sign recovers the pre-activation sign (alpha > 0 preserves it), and its
// c field holds the negative slope.
func (l *Linear) backprop(outGrad []float64, x *Node, fused *Node) {
	for o := 0; o < l.Out; o++ {
		g := outGrad[o]
		if fused != nil && fused.Data[o] < 0 {
			g *= fused.c
		}
		if g == 0 {
			continue
		}
		row := l.W[o*l.In : (o+1)*l.In]
		grow := l.GW[o*l.In : (o+1)*l.In]
		for i, xi := range x.Data {
			grow[i] += g * xi
			x.Grad[i] += g * row[i]
		}
		l.GB[o] += g
	}
}

// GradShadow returns a layer sharing this layer's weight and bias slices
// but owning fresh zeroed gradient buffers. Data-parallel training gives
// each batch slot a shadow so concurrent backward passes never write the
// same accumulator.
func (l *Linear) GradShadow() *Linear {
	return &Linear{
		In: l.In, Out: l.Out,
		W: l.W, B: l.B,
		GW: make([]float64, len(l.GW)),
		GB: make([]float64, len(l.GB)),
	}
}

// Params returns the parameter and gradient slices of the layer, in
// matching order, for use by optimizers.
func (l *Linear) Params() (params, grads [][]float64) {
	return [][]float64{l.W, l.B}, [][]float64{l.GW, l.GB}
}

// ZeroGrad clears the gradient buffers.
func (l *Linear) ZeroGrad() {
	for i := range l.GW {
		l.GW[i] = 0
	}
	for i := range l.GB {
		l.GB[i] = 0
	}
}

// MLP is a multi-layer perceptron with LeakyReLU activations between
// layers and a linear final layer.
type MLP struct {
	Layers []*Linear
	Alpha  float64 // LeakyReLU negative slope
}

// NewMLP builds an MLP with the given layer sizes, e.g. NewMLP(rng, 16,
// 32, 32, 1) has two hidden layers of width 32.
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{Alpha: 0.01}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(rng, sizes[i], sizes[i+1]))
	}
	return m
}

// Apply records the MLP forward pass on the tape. Hidden layers record
// the fused affine+LeakyReLU op; the final layer stays linear. The fused
// backward recovers the pre-activation sign from the post-activation
// value, which requires Alpha > 0 — degenerate slopes (a plain-ReLU
// Alpha of 0 loaded from an artifact) take the unfused ops instead.
func (m *MLP) Apply(t *Tape, x *Node) *Node {
	h := x
	for i, l := range m.Layers {
		switch {
		case i+1 == len(m.Layers):
			h = l.Apply(t, h)
		case m.Alpha > 0:
			h = l.applyLeaky(t, h, m.Alpha)
		default:
			h = t.LeakyReLU(l.Apply(t, h), m.Alpha)
		}
	}
	return h
}

// GradShadow returns an MLP sharing this MLP's weights but owning private
// zeroed gradient buffers (see Linear.GradShadow).
func (m *MLP) GradShadow() *MLP {
	s := &MLP{Alpha: m.Alpha, Layers: make([]*Linear, len(m.Layers))}
	for i, l := range m.Layers {
		s.Layers[i] = l.GradShadow()
	}
	return s
}

// Infer runs the MLP forward pass without a tape: no gradient buffers or
// backward closures are allocated, which makes it several times cheaper
// than Apply for pure prediction. The arithmetic (and therefore the
// result) is bit-identical to Apply.
func (m *MLP) Infer(x []float64) []float64 {
	h := x
	for i, l := range m.Layers {
		h = l.forward(h)
		if i+1 < len(m.Layers) {
			leakyReLUInPlace(h, m.Alpha)
		}
	}
	return h
}

// leakyReLUInPlace applies max(x, alpha*x) elementwise, matching
// Tape.LeakyReLU's forward computation exactly.
func leakyReLUInPlace(xs []float64, alpha float64) {
	for i, x := range xs {
		if x < 0 {
			xs[i] = alpha * x
		}
	}
}

// InDim returns the expected input dimension.
func (m *MLP) InDim() int { return m.Layers[0].In }

// OutDim returns the output dimension.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out }

// ZeroGrad clears all layer gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// Params returns all parameter/gradient slice pairs of the network.
func (m *MLP) Params() (params, grads [][]float64) {
	for _, l := range m.Layers {
		p, g := l.Params()
		params = append(params, p...)
		grads = append(grads, g...)
	}
	return params, grads
}

// NumParams returns the total number of scalar parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W) + len(l.B)
	}
	return n
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

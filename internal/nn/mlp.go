package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Linear is a fully connected layer y = W*x + b with gradient buffers.
type Linear struct {
	In, Out int
	W       []float64 // row-major Out x In
	B       []float64
	GW      []float64
	GB      []float64
}

// NewLinear returns a layer with Kaiming/He-uniform initialized weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{
		In: in, Out: out,
		W:  make([]float64, out*in),
		B:  make([]float64, out),
		GW: make([]float64, out*in),
		GB: make([]float64, out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range l.W {
		l.W[i] = (rng.Float64()*2 - 1) * bound
	}
	return l
}

// forward computes y = W*x + b into a fresh slice. Apply and Infer share
// this exact loop so that tape-based and inference-only forward passes are
// bit-identical.
func (l *Linear) forward(x []float64) []float64 {
	if len(x) != l.In {
		panic(fmt.Sprintf("nn: Linear input dim %d, want %d", len(x), l.In))
	}
	data := make([]float64, l.Out)
	for o := 0; o < l.Out; o++ {
		sum := l.B[o]
		row := l.W[o*l.In : (o+1)*l.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		data[o] = sum
	}
	return data
}

// Infer computes y = W*x + b without recording anything for backprop.
func (l *Linear) Infer(x []float64) []float64 { return l.forward(x) }

// Apply records y = W*x + b on the tape.
func (l *Linear) Apply(t *Tape, x *Node) *Node {
	data := l.forward(x.Data)
	out := t.node(data, nil)
	out.back = func() {
		for o := 0; o < l.Out; o++ {
			g := out.Grad[o]
			if g == 0 {
				continue
			}
			row := l.W[o*l.In : (o+1)*l.In]
			grow := l.GW[o*l.In : (o+1)*l.In]
			for i, xi := range x.Data {
				grow[i] += g * xi
				x.Grad[i] += g * row[i]
			}
			l.GB[o] += g
		}
	}
	return out
}

// Params returns the parameter and gradient slices of the layer, in
// matching order, for use by optimizers.
func (l *Linear) Params() (params, grads [][]float64) {
	return [][]float64{l.W, l.B}, [][]float64{l.GW, l.GB}
}

// ZeroGrad clears the gradient buffers.
func (l *Linear) ZeroGrad() {
	for i := range l.GW {
		l.GW[i] = 0
	}
	for i := range l.GB {
		l.GB[i] = 0
	}
}

// MLP is a multi-layer perceptron with LeakyReLU activations between
// layers and a linear final layer.
type MLP struct {
	Layers []*Linear
	Alpha  float64 // LeakyReLU negative slope
}

// NewMLP builds an MLP with the given layer sizes, e.g. NewMLP(rng, 16,
// 32, 32, 1) has two hidden layers of width 32.
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{Alpha: 0.01}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(rng, sizes[i], sizes[i+1]))
	}
	return m
}

// Apply records the MLP forward pass on the tape.
func (m *MLP) Apply(t *Tape, x *Node) *Node {
	h := x
	for i, l := range m.Layers {
		h = l.Apply(t, h)
		if i+1 < len(m.Layers) {
			h = t.LeakyReLU(h, m.Alpha)
		}
	}
	return h
}

// Infer runs the MLP forward pass without a tape: no gradient buffers or
// backward closures are allocated, which makes it several times cheaper
// than Apply for pure prediction. The arithmetic (and therefore the
// result) is bit-identical to Apply.
func (m *MLP) Infer(x []float64) []float64 {
	h := x
	for i, l := range m.Layers {
		h = l.forward(h)
		if i+1 < len(m.Layers) {
			leakyReLUInPlace(h, m.Alpha)
		}
	}
	return h
}

// leakyReLUInPlace applies max(x, alpha*x) elementwise, matching
// Tape.LeakyReLU's forward computation exactly.
func leakyReLUInPlace(xs []float64, alpha float64) {
	for i, x := range xs {
		if x < 0 {
			xs[i] = alpha * x
		}
	}
}

// InDim returns the expected input dimension.
func (m *MLP) InDim() int { return m.Layers[0].In }

// OutDim returns the output dimension.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out }

// ZeroGrad clears all layer gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// Params returns all parameter/gradient slice pairs of the network.
func (m *MLP) Params() (params, grads [][]float64) {
	for _, l := range m.Layers {
		p, g := l.Params()
		params = append(params, p...)
		grads = append(grads, g...)
	}
	return params, grads
}

// NumParams returns the total number of scalar parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W) + len(l.B)
	}
	return n
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Package nn is a small, dependency-free neural network library built for
// the COSTREAM reproduction: a tape-based reverse-mode automatic
// differentiation engine over float64 vectors, multi-layer perceptrons,
// the Adam optimizer and the losses used by the paper (MSLE for the
// regression cost metrics, binary cross-entropy for backpressure and
// query-success classification).
//
// The design favors dynamic computation graphs: COSTREAM's message-passing
// GNN builds a different graph for every query, so every forward pass
// records its operations on a fresh Tape, and Backward replays the tape in
// reverse.
package nn

// Node is one value (a vector) in the computation graph, together with its
// gradient accumulator and the backward closure that propagates gradients
// to its inputs.
type Node struct {
	Data []float64
	Grad []float64
	back func()
}

// Tape records the operations of one forward pass in execution order.
// The zero value is ready to use.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset discards all recorded nodes so the tape can be reused without
// reallocating.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// Len returns the number of recorded nodes.
func (t *Tape) Len() int { return len(t.nodes) }

func (t *Tape) node(data []float64, back func()) *Node {
	n := &Node{Data: data, Grad: make([]float64, len(data)), back: back}
	t.nodes = append(t.nodes, n)
	return n
}

// Const records a leaf node that requires no gradient propagation (its
// gradient is still accumulated but goes nowhere).
func (t *Tape) Const(data []float64) *Node {
	return t.node(data, nil)
}

// Backward seeds the gradient of the scalar output node with 1 and
// propagates gradients through the tape in reverse recording order.
// Parameter gradients accumulate into the layers' gradient buffers.
func (t *Tape) Backward(out *Node) {
	if len(out.Data) != 1 {
		panic("nn: Backward requires a scalar output node")
	}
	out.Grad[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if n := t.nodes[i]; n.back != nil {
			n.back()
		}
	}
}

// Add records elementwise a+b.
func (t *Tape) Add(a, b *Node) *Node {
	if len(a.Data) != len(b.Data) {
		panic("nn: Add dimension mismatch")
	}
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] + b.Data[i]
	}
	out := t.node(data, nil)
	out.back = func() {
		for i, g := range out.Grad {
			a.Grad[i] += g
			b.Grad[i] += g
		}
	}
	return out
}

// Sum records the elementwise sum of one or more equally sized vectors.
func (t *Tape) Sum(vs ...*Node) *Node {
	if len(vs) == 0 {
		panic("nn: Sum of nothing")
	}
	dim := len(vs[0].Data)
	data := make([]float64, dim)
	for _, v := range vs {
		if len(v.Data) != dim {
			panic("nn: Sum dimension mismatch")
		}
		for i, x := range v.Data {
			data[i] += x
		}
	}
	out := t.node(data, nil)
	out.back = func() {
		for _, v := range vs {
			for i, g := range out.Grad {
				v.Grad[i] += g
			}
		}
	}
	return out
}

// Scale records c*a for a scalar constant c.
func (t *Tape) Scale(a *Node, c float64) *Node {
	data := make([]float64, len(a.Data))
	for i, x := range a.Data {
		data[i] = c * x
	}
	out := t.node(data, nil)
	out.back = func() {
		for i, g := range out.Grad {
			a.Grad[i] += c * g
		}
	}
	return out
}

// Concat records the concatenation of the input vectors.
func (t *Tape) Concat(vs ...*Node) *Node {
	total := 0
	for _, v := range vs {
		total += len(v.Data)
	}
	data := make([]float64, 0, total)
	for _, v := range vs {
		data = append(data, v.Data...)
	}
	out := t.node(data, nil)
	out.back = func() {
		off := 0
		for _, v := range vs {
			for i := range v.Data {
				v.Grad[i] += out.Grad[off+i]
			}
			off += len(v.Data)
		}
	}
	return out
}

// LeakyReLU records max(x, alpha*x) elementwise.
func (t *Tape) LeakyReLU(a *Node, alpha float64) *Node {
	data := make([]float64, len(a.Data))
	for i, x := range a.Data {
		if x >= 0 {
			data[i] = x
		} else {
			data[i] = alpha * x
		}
	}
	out := t.node(data, nil)
	out.back = func() {
		for i, g := range out.Grad {
			if a.Data[i] >= 0 {
				a.Grad[i] += g
			} else {
				a.Grad[i] += alpha * g
			}
		}
	}
	return out
}

// Sigmoid records 1/(1+exp(-x)) elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	data := make([]float64, len(a.Data))
	for i, x := range a.Data {
		data[i] = sigmoid(x)
	}
	out := t.node(data, nil)
	out.back = func() {
		for i, g := range out.Grad {
			s := out.Data[i]
			a.Grad[i] += g * s * (1 - s)
		}
	}
	return out
}

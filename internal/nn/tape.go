// Package nn is a small, dependency-free neural network library built for
// the COSTREAM reproduction: a tape-based reverse-mode automatic
// differentiation engine over float64 vectors, multi-layer perceptrons,
// the Adam optimizer and the losses used by the paper (MSLE for the
// regression cost metrics, binary cross-entropy for backpressure and
// query-success classification).
//
// The design favors dynamic computation graphs: COSTREAM's message-passing
// GNN builds a different graph for every query, so every forward pass
// records its operations on a Tape, and Backward replays the tape in
// reverse.
//
// Tapes are arenas: Reset rewinds a tape without freeing anything, so the
// node structs and their Data/Grad backing stores are reused by the next
// forward pass. Training loops that reset one tape per sample reach zero
// steady-state allocations on the autodiff path. Backward propagation
// dispatches on a per-node opcode instead of captured closures, which is
// what makes the node records reusable (and removes one heap allocation
// per recorded op).
package nn

// opKind identifies the operation a node records; Backward dispatches on
// it instead of invoking captured closures.
type opKind uint8

const (
	opConst opKind = iota
	opAdd
	opSum
	opScale
	opConcat
	opLeakyReLU
	opSigmoid
	opAffine      // Linear layer: W*x + b
	opAffineLReLU // fused Linear + LeakyReLU (the MLP hidden-layer hot path)
	opMSLE
	opBCE
	opCustom // test hook: arbitrary backward closure
)

// Node is one value (a vector) in the computation graph, together with its
// gradient accumulator and the compact operation record Backward replays.
type Node struct {
	Data []float64
	Grad []float64 // nil on inference tapes

	op   opKind
	a, b *Node   // unary/binary inputs
	ins  []*Node // variadic inputs (Sum, Concat)
	lin  *Linear // affine ops
	c    float64 // Scale factor, LeakyReLU slope, or loss target
	back func()  // opCustom only

	buf  []float64 // owned Data backing store, reused across Reset
	gbuf []float64 // owned Grad backing store, reused across Reset
}

// Tape records the operations of one forward pass in execution order.
// The zero value is a ready-to-use training tape.
type Tape struct {
	nodes     []*Node // node pool; the first `used` entries are live
	used      int
	inference bool
}

// NewTape returns an empty training tape.
func NewTape() *Tape { return &Tape{} }

// NewInferenceTape returns a tape that records forward values only: nodes
// carry no gradient buffers and Backward panics. It is the cheap mode for
// validation and evaluation passes that read loss values but never
// backpropagate.
func NewInferenceTape() *Tape { return &Tape{inference: true} }

// Reset rewinds the tape so it can be reused without reallocating: the
// node structs and their backing stores stay pooled and are handed out
// again by subsequent ops.
func (t *Tape) Reset() { t.used = 0 }

// Len returns the number of recorded nodes.
func (t *Tape) Len() int { return t.used }

// take hands out the next pooled node (allocating only when the pool is
// exhausted) without touching its Data. Grad is sized and zeroed on
// training tapes and nil on inference tapes.
func (t *Tape) take(dim int) *Node {
	var n *Node
	if t.used < len(t.nodes) {
		n = t.nodes[t.used]
	} else {
		n = &Node{}
		t.nodes = append(t.nodes, n)
	}
	t.used++
	n.ins = n.ins[:0]
	n.back = nil
	if t.inference {
		n.Grad = nil
		return n
	}
	if cap(n.gbuf) < dim {
		n.gbuf = make([]float64, dim)
	}
	n.Grad = n.gbuf[:dim]
	clear(n.Grad)
	return n
}

// alloc hands out a pooled node whose Data is an owned buffer of length
// dim (contents unspecified; the recording op overwrites every element).
func (t *Tape) alloc(dim int) *Node {
	n := t.take(dim)
	if cap(n.buf) < dim {
		n.buf = make([]float64, dim)
	}
	n.Data = n.buf[:dim]
	return n
}

// Const records a leaf node that requires no gradient propagation (its
// gradient is still accumulated but goes nowhere). The node aliases data;
// it is never written through.
func (t *Tape) Const(data []float64) *Node {
	n := t.take(len(data))
	n.op = opConst
	n.Data = data
	return n
}

// Backward seeds the gradient of the scalar output node with 1 and
// propagates gradients through the tape in reverse recording order.
// Parameter gradients accumulate into the layers' gradient buffers.
func (t *Tape) Backward(out *Node) {
	if t.inference {
		panic("nn: Backward on an inference tape")
	}
	if len(out.Data) != 1 {
		panic("nn: Backward requires a scalar output node")
	}
	out.Grad[0] = 1
	for i := t.used - 1; i >= 0; i-- {
		t.nodes[i].backprop()
	}
}

// backprop propagates the node's accumulated gradient to its inputs.
func (n *Node) backprop() {
	switch n.op {
	case opConst:
	case opAdd:
		for i, g := range n.Grad {
			n.a.Grad[i] += g
			n.b.Grad[i] += g
		}
	case opSum:
		for _, v := range n.ins {
			for i, g := range n.Grad {
				v.Grad[i] += g
			}
		}
	case opScale:
		for i, g := range n.Grad {
			n.a.Grad[i] += n.c * g
		}
	case opConcat:
		off := 0
		for _, v := range n.ins {
			for i := range v.Data {
				v.Grad[i] += n.Grad[off+i]
			}
			off += len(v.Data)
		}
	case opLeakyReLU:
		for i, g := range n.Grad {
			if n.a.Data[i] >= 0 {
				n.a.Grad[i] += g
			} else {
				n.a.Grad[i] += n.c * g
			}
		}
	case opSigmoid:
		for i, g := range n.Grad {
			s := n.Data[i]
			n.a.Grad[i] += g * s * (1 - s)
		}
	case opAffine:
		n.lin.backprop(n.Grad, n.a, nil)
	case opAffineLReLU:
		n.lin.backprop(n.Grad, n.a, n)
	case opMSLE:
		diff := n.a.Data[0] - n.c
		n.a.Grad[0] += n.Grad[0] * 2 * diff
	case opBCE:
		// dL/dx = sigmoid(x) - y
		n.a.Grad[0] += n.Grad[0] * (sigmoid(n.a.Data[0]) - n.c)
	case opCustom:
		if n.back != nil {
			n.back()
		}
	}
}

// Add records elementwise a+b.
func (t *Tape) Add(a, b *Node) *Node {
	if len(a.Data) != len(b.Data) {
		panic("nn: Add dimension mismatch")
	}
	out := t.alloc(len(a.Data))
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	out.op, out.a, out.b = opAdd, a, b
	return out
}

// Sum records the elementwise sum of one or more equally sized vectors.
// The input slice is copied into the tape's own records, so callers may
// pass a reused scratch buffer.
func (t *Tape) Sum(vs ...*Node) *Node {
	if len(vs) == 0 {
		panic("nn: Sum of nothing")
	}
	dim := len(vs[0].Data)
	out := t.alloc(dim)
	clear(out.Data)
	for _, v := range vs {
		if len(v.Data) != dim {
			panic("nn: Sum dimension mismatch")
		}
		for i, x := range v.Data {
			out.Data[i] += x
		}
	}
	out.op = opSum
	out.ins = append(out.ins, vs...)
	return out
}

// Scale records c*a for a scalar constant c.
func (t *Tape) Scale(a *Node, c float64) *Node {
	out := t.alloc(len(a.Data))
	for i, x := range a.Data {
		out.Data[i] = c * x
	}
	out.op, out.a, out.c = opScale, a, c
	return out
}

// Concat records the concatenation of the input vectors. Like Sum, the
// input slice is copied, so scratch buffers may be reused by the caller.
func (t *Tape) Concat(vs ...*Node) *Node {
	total := 0
	for _, v := range vs {
		total += len(v.Data)
	}
	out := t.alloc(total)
	off := 0
	for _, v := range vs {
		off += copy(out.Data[off:], v.Data)
	}
	out.op = opConcat
	out.ins = append(out.ins, vs...)
	return out
}

// Concat2 records the concatenation of exactly two vectors. It is the
// allocation-free form of Concat for the GNN's update-MLP input
// concat(aggregate, own) — a two-element variadic call would heap-allocate
// its argument slice on some call paths.
func (t *Tape) Concat2(a, b *Node) *Node {
	out := t.alloc(len(a.Data) + len(b.Data))
	copy(out.Data, a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	out.op = opConcat
	out.ins = append(out.ins, a, b)
	return out
}

// LeakyReLU records max(x, alpha*x) elementwise.
func (t *Tape) LeakyReLU(a *Node, alpha float64) *Node {
	out := t.alloc(len(a.Data))
	for i, x := range a.Data {
		if x >= 0 {
			out.Data[i] = x
		} else {
			out.Data[i] = alpha * x
		}
	}
	out.op, out.a, out.c = opLeakyReLU, a, alpha
	return out
}

// Sigmoid records 1/(1+exp(-x)) elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	out := t.alloc(len(a.Data))
	for i, x := range a.Data {
		out.Data[i] = sigmoid(x)
	}
	out.op, out.a = opSigmoid, a
	return out
}

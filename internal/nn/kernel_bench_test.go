package nn

import (
	"math/rand"
	"testing"
)

// BenchmarkAffineKernels compares the portable blocked kernel against
// the AVX transposed kernel on the GNN's typical update-layer shape.
func BenchmarkAffineKernels(b *testing.B) {
	const in, out, rows = 48, 24, 3
	rng := rand.New(rand.NewSource(7))
	l := NewLinear(rng, in, out)
	s, err := StackLinears([]*Linear{l})
	if err != nil {
		b.Fatal(err)
	}
	x := randRows(rng, rows, in)
	y := make([]float64, rows*out)
	w, bias := s.wb(0)
	wt, _ := s.wtb(0)
	b.Run("portable", func(b *testing.B) {
		for b.Loop() {
			affineRowsStrided(y, 0, out, x, 0, in, rows, w, bias, in, out, 0.01, true)
		}
	})
	b.Run("avx", func(b *testing.B) {
		if !useAffineAsm {
			b.Skip("no AVX kernels on this machine")
		}
		for b.Loop() {
			affineRowsTrans(y, 0, out, x, 0, in, rows, wt, bias, in, out, 0.01, true)
		}
	})
}

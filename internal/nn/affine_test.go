package nn

import (
	"math/rand"
	"testing"
)

// TestAffineAsmMatchesPortable pins the AVX kernels to the portable Go
// kernels bit for bit, across shapes that exercise every output block
// width (16/8/4 doubles, 32/16/8 floats) and the scalar tails. Lane-wise
// VADDPD/VMULPD are IEEE-identical to the scalar ops and both kernels
// accumulate each output bias-first-then-inputs-in-index-order, so even
// the float32 paths must agree exactly.
func TestAffineAsmMatchesPortable(t *testing.T) {
	if !useAffineAsm {
		t.Skip("no AVX kernels on this machine")
	}
	defer func() { useAffineAsm = true }()
	rng := rand.New(rand.NewSource(6))
	for _, k := range []int{1, 3} {
		for _, in := range []int{1, 2, 7, 24, 48} {
			for _, out := range []int{1, 3, 4, 5, 8, 17, 24, 37} {
				layers := make([]*Linear, k)
				for m := range layers {
					layers[m] = NewLinear(rng, in, out)
				}
				s, err := StackLinears(layers)
				if err != nil {
					t.Fatal(err)
				}
				const rows = 3
				x := randRows(rng, rows, k*in)
				x32 := make([]float32, len(x))
				for i, v := range x {
					x32[i] = float32(v)
				}
				asm := make([]float64, rows*k*out)
				ref := make([]float64, rows*k*out)
				asm32 := make([]float32, rows*k*out)
				ref32 := make([]float32, rows*k*out)

				useAffineAsm = true
				s.BlockRows(asm, x, rows, 0.01, true)
				s.BlockRows32(asm32, x32, rows, 0.01, true)
				useAffineAsm = false
				s.BlockRows(ref, x, rows, 0.01, true)
				s.BlockRows32(ref32, x32, rows, 0.01, true)
				useAffineAsm = true

				for i := range ref {
					if asm[i] != ref[i] {
						t.Fatalf("k=%d in=%d out=%d elem %d: asm %v portable %v", k, in, out, i, asm[i], ref[i])
					}
					if asm32[i] != ref32[i] {
						t.Fatalf("k=%d in=%d out=%d elem %d: asm32 %v portable32 %v", k, in, out, i, asm32[i], ref32[i])
					}
				}
			}
		}
	}
}

//go:build amd64

package nn

// haveAffineAsm reports that this build includes the hand-written AVX
// kernels; useAffineAsm additionally requires CPU+OS support at runtime.
const haveAffineAsm = true

// hasAVX is true when the CPU supports AVX and the OS preserves YMM
// state across context switches (OSXSAVE + XCR0).
var hasAVX = cpuHasAVX()

// useAffineAsm selects the assembly transposed-affine kernels. A
// variable (not const) so tests can force the portable path and compare.
var useAffineAsm = hasAVX

// cpuHasAVX is implemented in affine_amd64.s (CPUID + XGETBV).
func cpuHasAVX() bool

// affineTransAVX computes y[o] = b[o] + Σ_i wt[i*out+o]·x[i] for
// o in [0, out) over the column-major (transposed) weight matrix wt.
// Outputs ride in YMM lanes while i advances sequentially, so every
// output accumulates bias-first-then-inputs-in-index-order — bit-identical
// to Linear.affineInto (VADDPD/VMULPD lanes are IEEE-identical to the
// scalar ops). x must hold in values, wt in·out, y and b out.
//
//go:noescape
func affineTransAVX(y, x, wt, b *float64, in, out int)

// affineTransAVX32 is the float32 twin (8 lanes per YMM register).
//
//go:noescape
func affineTransAVX32(y, x, wt, b *float32, in, out int)

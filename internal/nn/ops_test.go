package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestScaleGradCheck(t *testing.T) {
	a := []float64{0.5, -1.5}
	forward := func() float64 {
		tape := NewTape()
		n := tape.Const(a)
		s := tape.Scale(n, 3)
		return s.Data[0] + 2*s.Data[1]
	}
	tape := NewTape()
	n := tape.Const(a)
	s := tape.Scale(n, 3)
	var out *Node
	out = tape.customOp([]float64{s.Data[0] + 2*s.Data[1]}, func() {
		s.Grad[0] += out.Grad[0]
		s.Grad[1] += 2 * out.Grad[0]
	})
	tape.Backward(out)
	const h = 1e-6
	for i := range a {
		orig := a[i]
		a[i] = orig + h
		lp := forward()
		a[i] = orig - h
		lm := forward()
		a[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(n.Grad[i]-want) > 1e-5 {
			t.Errorf("Scale grad[%d] = %v, want %v", i, n.Grad[i], want)
		}
	}
}

func TestAddGradFlowsToBothInputs(t *testing.T) {
	tape := NewTape()
	a := tape.Const([]float64{1, 2})
	b := tape.Const([]float64{3, 4})
	sum := tape.Add(a, b)
	var out *Node
	out = tape.customOp([]float64{sum.Data[0] + sum.Data[1]}, func() {
		sum.Grad[0] += out.Grad[0]
		sum.Grad[1] += out.Grad[0]
	})
	tape.Backward(out)
	for i := 0; i < 2; i++ {
		if a.Grad[i] != 1 || b.Grad[i] != 1 {
			t.Fatalf("Add gradients = %v / %v, want all 1", a.Grad, b.Grad)
		}
	}
}

func TestAdamWeightDecayShrinksParams(t *testing.T) {
	p := []float64{10}
	g := []float64{0}
	opt := NewAdam(0.1, [][]float64{p}, [][]float64{g})
	opt.WDecay = 0.1
	opt.ClipNorm = 0
	for i := 0; i < 50; i++ {
		opt.Step()
	}
	if math.Abs(p[0]) >= 10 {
		t.Errorf("weight decay did not shrink parameter: %v", p[0])
	}
}

func TestAdamRegister(t *testing.T) {
	p1, g1 := []float64{0}, []float64{1}
	opt := NewAdam(0.1, [][]float64{p1}, [][]float64{g1})
	p2, g2 := []float64{0}, []float64{1}
	opt.Register([][]float64{p2}, [][]float64{g2})
	opt.Step()
	if p1[0] == 0 || p2[0] == 0 {
		t.Errorf("registered params not updated: %v %v", p1[0], p2[0])
	}
	opt.ZeroGrads()
	if g1[0] != 0 || g2[0] != 0 {
		t.Error("ZeroGrads missed a slice")
	}
}

func TestTapeReuseAfterReset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 2, 4, 1)
	tape := NewTape()
	x := []float64{0.5, -0.5}
	out1 := m.Apply(tape, tape.Const(x))
	v1 := out1.Data[0]
	tape.Reset()
	out2 := m.Apply(tape, tape.Const(x))
	if out2.Data[0] != v1 {
		t.Errorf("reused tape changed forward value: %v vs %v", out2.Data[0], v1)
	}
	// Backward on the reused tape must work and produce gradients.
	m.ZeroGrad()
	tape.Backward(MSLELoss(tape, out2, 3))
	_, grads := m.Params()
	nonzero := false
	for _, g := range grads {
		for _, v := range g {
			if v != 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Error("no gradients after backward on reused tape")
	}
}

func TestLeakyReLUNegativeSlope(t *testing.T) {
	tape := NewTape()
	n := tape.Const([]float64{-2, 2})
	r := tape.LeakyReLU(n, 0.1)
	if r.Data[0] != -0.2 || r.Data[1] != 2 {
		t.Errorf("LeakyReLU = %v, want [-0.2 2]", r.Data)
	}
}

func TestBCEExtremeLogitsFinite(t *testing.T) {
	for _, x := range []float64{-500, 0, 500} {
		for _, y := range []float64{0, 1} {
			tape := NewTape()
			logit := tape.Const([]float64{x})
			l := BCEWithLogitsLoss(tape, logit, y)
			if math.IsNaN(l.Data[0]) || math.IsInf(l.Data[0], 0) {
				t.Errorf("BCE(%v, %v) = %v", x, y, l.Data[0])
			}
			if l.Data[0] < 0 {
				t.Errorf("BCE(%v, %v) = %v, want >= 0", x, y, l.Data[0])
			}
		}
	}
}

func TestMSLEZeroAtPerfectPrediction(t *testing.T) {
	tape := NewTape()
	z := tape.Const([]float64{math.Log1p(42)})
	l := MSLELoss(tape, z, 42)
	if l.Data[0] > 1e-12 {
		t.Errorf("loss at perfect prediction = %v", l.Data[0])
	}
}

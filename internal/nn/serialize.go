package nn

import (
	"encoding/json"
	"fmt"
)

// mlpJSON is the serialized form of an MLP.
type mlpJSON struct {
	Alpha  float64      `json:"alpha"`
	Layers []linearJSON `json:"layers"`
}

type linearJSON struct {
	In  int       `json:"in"`
	Out int       `json:"out"`
	W   []float64 `json:"w"`
	B   []float64 `json:"b"`
}

// MarshalJSON encodes the MLP's architecture and weights.
func (m *MLP) MarshalJSON() ([]byte, error) {
	j := mlpJSON{Alpha: m.Alpha}
	for _, l := range m.Layers {
		j.Layers = append(j.Layers, linearJSON{In: l.In, Out: l.Out, W: l.W, B: l.B})
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes an MLP, reconstructing gradient buffers.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var j mlpJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	m.Alpha = j.Alpha
	m.Layers = nil
	for _, lj := range j.Layers {
		if len(lj.W) != lj.In*lj.Out || len(lj.B) != lj.Out {
			return fmt.Errorf("nn: corrupt layer: %dx%d with %d weights %d biases",
				lj.Out, lj.In, len(lj.W), len(lj.B))
		}
		m.Layers = append(m.Layers, &Linear{
			In: lj.In, Out: lj.Out,
			W: lj.W, B: lj.B,
			GW: make([]float64, len(lj.W)),
			GB: make([]float64, len(lj.B)),
		})
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("nn: MLP with no layers")
	}
	return nil
}

package nn

import "math"

// MSLELoss records the Mean Squared Logarithmic Error between a scalar
// prediction node (interpreted in log1p space when logSpace is false) and
// the raw target y:
//
//	L = (log(1+y) - log(1+yhat))^2
//
// COSTREAM's regression heads predict z = log1p(cost) directly, which makes
// MSLE a plain squared error in the model's output space and keeps the
// paper's loss exactly (Section IV-A). Use ExpM1 to map predictions back.
func MSLELoss(t *Tape, zhat *Node, y float64) *Node {
	if len(zhat.Data) != 1 {
		panic("nn: MSLELoss requires scalar prediction")
	}
	z := math.Log1p(y)
	diff := zhat.Data[0] - z
	out := t.alloc(1)
	out.Data[0] = diff * diff
	out.op, out.a, out.c = opMSLE, zhat, z
	return out
}

// BCEWithLogitsLoss records binary cross-entropy between a scalar logit
// node and the binary target y in {0,1}, computed in a numerically stable
// form: L = max(x,0) - x*y + log(1+exp(-|x|)).
func BCEWithLogitsLoss(t *Tape, logit *Node, y float64) *Node {
	if len(logit.Data) != 1 {
		panic("nn: BCEWithLogitsLoss requires scalar logit")
	}
	x := logit.Data[0]
	loss := math.Max(x, 0) - x*y + math.Log1p(math.Exp(-math.Abs(x)))
	out := t.alloc(1)
	out.Data[0] = loss
	out.op, out.a, out.c = opBCE, logit, y
	return out
}

// ExpM1 maps a log1p-space prediction back to the raw cost scale,
// clamping at zero.
func ExpM1(z float64) float64 {
	v := math.Expm1(z)
	if v < 0 {
		return 0
	}
	return v
}

// Log1p is the forward transform of the regression targets.
func Log1p(y float64) float64 { return math.Log1p(y) }

// SigmoidScalar exposes the stable sigmoid for inference-time probability
// computation on classifier logits.
func SigmoidScalar(x float64) float64 { return sigmoid(x) }

//go:build amd64

#include "textflag.h"

// func cpuHasAVX() bool
//
// CPUID leaf 1: ECX bit 28 = AVX, bit 27 = OSXSAVE; then XGETBV(0) must
// show XMM+YMM state enabled (XCR0 bits 1 and 2).
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, BX
	ANDL $0x18000000, BX
	CMPL BX, $0x18000000
	JNE  noavx
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func affineTransAVX(y, x, wt, b *float64, in, out int)
//
// y[o] = b[o] + sum_i wt[i*out+o] * x[i], o in [0, out).
//
// wt is the transposed weight matrix (in rows of out contiguous
// doubles), so outputs sit in adjacent lanes and every load is
// unit-stride. i advances sequentially, keeping each output's
// accumulation order identical to the scalar kernel. Output blocks of
// 16 (4 YMM accumulators = 4 independent FP-add dependency chains),
// then 8, 4, and a scalar tail.
TEXT ·affineTransAVX(SB), NOSPLIT, $0-48
	MOVQ y+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ wt+16(FP), DX
	MOVQ b+24(FP), CX
	MOVQ in+32(FP), R8
	MOVQ out+40(FP), R9

	MOVQ R9, R13
	SHLQ $3, R13              // R13 = out*8 bytes = wt row stride
	XORQ R10, R10             // R10 = o

blk16:
	MOVQ R9, AX
	SUBQ R10, AX
	CMPQ AX, $16
	JLT  blk8
	LEAQ (CX)(R10*8), BX
	VMOVUPD (BX), Y0
	VMOVUPD 32(BX), Y1
	VMOVUPD 64(BX), Y2
	VMOVUPD 96(BX), Y3
	LEAQ (DX)(R10*8), R12     // &wt[o]
	XORQ R11, R11             // i

i16:
	CMPQ R11, R8
	JGE  s16
	VBROADCASTSD (SI)(R11*8), Y4
	VMULPD (R12), Y4, Y5
	VADDPD Y5, Y0, Y0
	VMULPD 32(R12), Y4, Y6
	VADDPD Y6, Y1, Y1
	VMULPD 64(R12), Y4, Y7
	VADDPD Y7, Y2, Y2
	VMULPD 96(R12), Y4, Y8
	VADDPD Y8, Y3, Y3
	ADDQ R13, R12
	INCQ R11
	JMP  i16

s16:
	LEAQ (DI)(R10*8), BX
	VMOVUPD Y0, (BX)
	VMOVUPD Y1, 32(BX)
	VMOVUPD Y2, 64(BX)
	VMOVUPD Y3, 96(BX)
	ADDQ $16, R10
	JMP  blk16

blk8:
	MOVQ R9, AX
	SUBQ R10, AX
	CMPQ AX, $8
	JLT  blk4
	LEAQ (CX)(R10*8), BX
	VMOVUPD (BX), Y0
	VMOVUPD 32(BX), Y1
	LEAQ (DX)(R10*8), R12
	XORQ R11, R11

i8:
	CMPQ R11, R8
	JGE  s8
	VBROADCASTSD (SI)(R11*8), Y4
	VMULPD (R12), Y4, Y5
	VADDPD Y5, Y0, Y0
	VMULPD 32(R12), Y4, Y6
	VADDPD Y6, Y1, Y1
	ADDQ R13, R12
	INCQ R11
	JMP  i8

s8:
	LEAQ (DI)(R10*8), BX
	VMOVUPD Y0, (BX)
	VMOVUPD Y1, 32(BX)
	ADDQ $8, R10
	JMP  blk8

blk4:
	MOVQ R9, AX
	SUBQ R10, AX
	CMPQ AX, $4
	JLT  tail
	VMOVUPD (CX)(R10*8), Y0
	LEAQ (DX)(R10*8), R12
	XORQ R11, R11

i4:
	CMPQ R11, R8
	JGE  s4
	VBROADCASTSD (SI)(R11*8), Y4
	VMULPD (R12), Y4, Y5
	VADDPD Y5, Y0, Y0
	ADDQ R13, R12
	INCQ R11
	JMP  i4

s4:
	VMOVUPD Y0, (DI)(R10*8)
	ADDQ $4, R10
	JMP  blk4

tail:
	CMPQ R10, R9
	JGE  done
	VMOVSD (CX)(R10*8), X0
	LEAQ (DX)(R10*8), R12
	XORQ R11, R11

itail:
	CMPQ R11, R8
	JGE  stail
	VMOVSD (SI)(R11*8), X1
	VMULSD (R12), X1, X1
	VADDSD X1, X0, X0
	ADDQ R13, R12
	INCQ R11
	JMP  itail

stail:
	VMOVSD X0, (DI)(R10*8)
	INCQ R10
	JMP  tail

done:
	VZEROUPPER
	RET

// func affineTransAVX32(y, x, wt, b *float32, in, out int)
//
// float32 twin: 8 lanes per YMM register, blocks of 32/16/8 + scalar
// tail, wt row stride = out*4 bytes.
TEXT ·affineTransAVX32(SB), NOSPLIT, $0-48
	MOVQ y+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ wt+16(FP), DX
	MOVQ b+24(FP), CX
	MOVQ in+32(FP), R8
	MOVQ out+40(FP), R9

	MOVQ R9, R13
	SHLQ $2, R13              // R13 = out*4 bytes = wt row stride
	XORQ R10, R10             // R10 = o

blk32:
	MOVQ R9, AX
	SUBQ R10, AX
	CMPQ AX, $32
	JLT  blk16
	LEAQ (CX)(R10*4), BX
	VMOVUPS (BX), Y0
	VMOVUPS 32(BX), Y1
	VMOVUPS 64(BX), Y2
	VMOVUPS 96(BX), Y3
	LEAQ (DX)(R10*4), R12
	XORQ R11, R11

i32:
	CMPQ R11, R8
	JGE  s32
	VBROADCASTSS (SI)(R11*4), Y4
	VMULPS (R12), Y4, Y5
	VADDPS Y5, Y0, Y0
	VMULPS 32(R12), Y4, Y6
	VADDPS Y6, Y1, Y1
	VMULPS 64(R12), Y4, Y7
	VADDPS Y7, Y2, Y2
	VMULPS 96(R12), Y4, Y8
	VADDPS Y8, Y3, Y3
	ADDQ R13, R12
	INCQ R11
	JMP  i32

s32:
	LEAQ (DI)(R10*4), BX
	VMOVUPS Y0, (BX)
	VMOVUPS Y1, 32(BX)
	VMOVUPS Y2, 64(BX)
	VMOVUPS Y3, 96(BX)
	ADDQ $32, R10
	JMP  blk32

blk16:
	MOVQ R9, AX
	SUBQ R10, AX
	CMPQ AX, $16
	JLT  blk8f
	LEAQ (CX)(R10*4), BX
	VMOVUPS (BX), Y0
	VMOVUPS 32(BX), Y1
	LEAQ (DX)(R10*4), R12
	XORQ R11, R11

i16f:
	CMPQ R11, R8
	JGE  s16f
	VBROADCASTSS (SI)(R11*4), Y4
	VMULPS (R12), Y4, Y5
	VADDPS Y5, Y0, Y0
	VMULPS 32(R12), Y4, Y6
	VADDPS Y6, Y1, Y1
	ADDQ R13, R12
	INCQ R11
	JMP  i16f

s16f:
	LEAQ (DI)(R10*4), BX
	VMOVUPS Y0, (BX)
	VMOVUPS Y1, 32(BX)
	ADDQ $16, R10
	JMP  blk16

blk8f:
	MOVQ R9, AX
	SUBQ R10, AX
	CMPQ AX, $8
	JLT  tailf
	VMOVUPS (CX)(R10*4), Y0
	LEAQ (DX)(R10*4), R12
	XORQ R11, R11

i8f:
	CMPQ R11, R8
	JGE  s8f
	VBROADCASTSS (SI)(R11*4), Y4
	VMULPS (R12), Y4, Y5
	VADDPS Y5, Y0, Y0
	ADDQ R13, R12
	INCQ R11
	JMP  i8f

s8f:
	VMOVUPS Y0, (DI)(R10*4)
	ADDQ $8, R10
	JMP  blk8f

tailf:
	CMPQ R10, R9
	JGE  donef
	VMOVSS (CX)(R10*4), X0
	LEAQ (DX)(R10*4), R12
	XORQ R11, R11

itailf:
	CMPQ R11, R8
	JGE  stailf
	VMOVSS (SI)(R11*4), X1
	VMULSS (R12), X1, X1
	VADDSS X1, X0, X0
	ADDQ R13, R12
	INCQ R11
	JMP  itailf

stailf:
	VMOVSS X0, (DI)(R10*4)
	INCQ R10
	JMP  tailf

donef:
	VZEROUPPER
	RET

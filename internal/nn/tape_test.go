package nn

import (
	"math/rand"
	"testing"
)

// TestFusedAffineMatchesUnfused pins MLP.Apply's fused affine+LeakyReLU
// op to the explicit Linear.Apply + Tape.LeakyReLU composition: identical
// forward values and identical gradients.
func TestFusedAffineMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMLP(rng, 4, 6, 1)
	x := []float64{0.4, -1.2, 0.7, 2.3}

	m.ZeroGrad()
	tf := NewTape()
	fused := m.Apply(tf, tf.Const(x))
	tf.Backward(MSLELoss(tf, fused, 5))
	_, grads := m.Params()
	fusedGrads := make([][]float64, len(grads))
	for k, g := range grads {
		fusedGrads[k] = append([]float64(nil), g...)
	}

	m.ZeroGrad()
	tu := NewTape()
	h := tu.Const(x)
	for i, l := range m.Layers {
		h = l.Apply(tu, h)
		if i+1 < len(m.Layers) {
			h = tu.LeakyReLU(h, m.Alpha)
		}
	}
	if h.Data[0] != fused.Data[0] {
		t.Fatalf("fused forward %v != unfused %v", fused.Data[0], h.Data[0])
	}
	tu.Backward(MSLELoss(tu, h, 5))
	for k, g := range grads {
		for i := range g {
			if g[i] != fusedGrads[k][i] {
				t.Fatalf("grad %d[%d]: fused %v != unfused %v", k, i, fusedGrads[k][i], g[i])
			}
		}
	}
}

// TestZeroAlphaMLPFallsBackToUnfused: with a plain-ReLU slope (Alpha=0,
// possible in artifacts), the fused op cannot recover the pre-activation
// sign from the post-activation value, so Apply must take the unfused
// path — gradients for a negative pre-activation must be exactly 0.
func TestZeroAlphaMLPFallsBackToUnfused(t *testing.T) {
	m := &MLP{Alpha: 0, Layers: []*Linear{
		{In: 1, Out: 1, W: []float64{1}, B: []float64{-2}, GW: make([]float64, 1), GB: make([]float64, 1)},
		{In: 1, Out: 1, W: []float64{1}, B: []float64{0}, GW: make([]float64, 1), GB: make([]float64, 1)},
	}}
	x := []float64{1} // pre-activation 1*1-2 = -1 < 0 -> ReLU output 0
	tape := NewTape()
	out := m.Apply(tape, tape.Const(x))
	if out.Data[0] != 0 {
		t.Fatalf("forward = %v, want 0", out.Data[0])
	}
	tape.Backward(MSLELoss(tape, out, 10))
	if g := m.Layers[0].GW[0]; g != 0 {
		t.Errorf("hidden-layer grad through dead ReLU = %v, want 0", g)
	}
	if g := m.Layers[1].GW[0]; g != 0 {
		// d(out)/dW2 = relu(h) = 0, so this must also be exactly 0.
		t.Errorf("output-layer weight grad = %v, want 0", g)
	}
}

// TestConcat2MatchesConcat pins the two-input fast path to the variadic op.
func TestConcat2MatchesConcat(t *testing.T) {
	tape := NewTape()
	a := tape.Const([]float64{1, 2})
	b := tape.Const([]float64{3})
	c1 := tape.Concat(a, b)
	c2 := tape.Concat2(a, b)
	for i := range c1.Data {
		if c1.Data[i] != c2.Data[i] {
			t.Fatalf("Concat2 = %v, Concat = %v", c2.Data, c1.Data)
		}
	}
}

// TestInferenceTapeSkipsGradAndRejectsBackward covers the gradient-free
// tape mode.
func TestInferenceTapeSkipsGradAndRejectsBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewMLP(rng, 3, 5, 1)
	x := []float64{0.1, -0.5, 0.9}

	it := NewInferenceTape()
	out := m.Apply(it, it.Const(x))
	tt := NewTape()
	want := m.Apply(tt, tt.Const(x))
	if out.Data[0] != want.Data[0] {
		t.Fatalf("inference forward %v != training forward %v", out.Data[0], want.Data[0])
	}
	if out.Grad != nil {
		t.Fatal("inference tape allocated a gradient buffer")
	}
	l := MSLELoss(it, out, 2)
	defer func() {
		if recover() == nil {
			t.Error("Backward on inference tape must panic")
		}
	}()
	it.Backward(l)
}

// TestTapeReuseGradsMatchFreshTape trains the reuse guarantee: backward
// on a reused (Reset) tape accumulates exactly the gradients a fresh tape
// would.
func TestTapeReuseGradsMatchFreshTape(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewMLP(rng, 3, 8, 8, 1)
	xs := [][]float64{{0.2, -0.3, 1.4}, {2.0, 0.1, -0.7}, {-1, -1, -1}}

	fresh := func(x []float64) []float64 {
		m.ZeroGrad()
		tape := NewTape()
		out := m.Apply(tape, tape.Const(x))
		tape.Backward(MSLELoss(tape, out, 7))
		_, grads := m.Params()
		var flat []float64
		for _, g := range grads {
			flat = append(flat, g...)
		}
		return flat
	}
	want := make([][]float64, len(xs))
	for i, x := range xs {
		want[i] = fresh(x)
	}

	reused := NewTape()
	for round := 0; round < 2; round++ {
		for i, x := range xs {
			m.ZeroGrad()
			reused.Reset()
			out := m.Apply(reused, reused.Const(x))
			reused.Backward(MSLELoss(reused, out, 7))
			_, grads := m.Params()
			j := 0
			for _, g := range grads {
				for _, v := range g {
					if v != want[i][j] {
						t.Fatalf("round %d input %d: reused-tape grad[%d] = %v, want %v", round, i, j, v, want[i][j])
					}
					j++
				}
			}
		}
	}
}

// TestTapeSteadyStateAllocs pins the arena guarantee at the nn level: a
// warmed tape records and backpropagates a full MLP forward+loss pass
// with zero heap allocations.
func TestTapeSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := NewMLP(rng, 6, 16, 16, 1)
	x := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	tape := NewTape()
	step := func() {
		tape.Reset()
		out := m.Apply(tape, tape.Const(x))
		tape.Backward(MSLELoss(tape, out, 3))
	}
	for i := 0; i < 3; i++ {
		step() // warm the arena
	}
	if avg := testing.AllocsPerRun(100, step); avg > 0 {
		t.Errorf("steady-state allocs per pass = %v, want 0", avg)
	}
}

package nn

// customOp records a node with an arbitrary backward closure. Tests use
// it to build ad-hoc scalar heads (weighted sums) around the fixed op set
// without widening the production API.
func (t *Tape) customOp(data []float64, back func()) *Node {
	n := t.take(len(data))
	n.op = opCustom
	n.Data = data
	n.back = back
	return n
}

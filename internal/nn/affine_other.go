//go:build !amd64

package nn

// No assembly kernels on this architecture; the portable blocked Go
// kernels in dense.go carry all stacked inference.
const haveAffineAsm = false

var useAffineAsm = false

func affineTransAVX(y, x, wt, b *float64, in, out int)   { panic("nn: no asm kernel") }
func affineTransAVX32(y, x, wt, b *float32, in, out int) { panic("nn: no asm kernel") }

package nn

import (
	"math"
	"math/rand"
	"testing"
)

func randRows(rng *rand.Rand, rows, dim int) []float64 {
	x := make([]float64, rows*dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestStackedMLPSharedMatchesInfer checks that ForwardShared is
// bit-identical, member for member, to running each MLP's Infer on every
// row.
func TestStackedMLPSharedMatchesInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const k, rows, in, hid, out = 3, 7, 11, 16, 5
	mlps := make([]*MLP, k)
	for m := range mlps {
		mlps[m] = NewMLP(rng, in, hid, out)
	}
	s, err := StackMLPs(mlps)
	if err != nil {
		t.Fatal(err)
	}
	x := randRows(rng, rows, in)
	dst := make([]float64, rows*k*out)
	s.ForwardShared(dst, x, rows, &DenseScratch{})
	for r := 0; r < rows; r++ {
		for m := 0; m < k; m++ {
			want := mlps[m].Infer(x[r*in : (r+1)*in])
			got := dst[r*k*out+m*out : r*k*out+(m+1)*out]
			for o := range want {
				if got[o] != want[o] {
					t.Fatalf("row %d member %d out %d: got %v want %v", r, m, o, got[o], want[o])
				}
			}
		}
	}
}

// TestStackedMLPBlocksMatchesInfer checks the interleaved member-block
// path against per-member Infer.
func TestStackedMLPBlocksMatchesInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const k, rows, in, hid, out = 4, 5, 9, 13, 3
	mlps := make([]*MLP, k)
	for m := range mlps {
		mlps[m] = NewMLP(rng, in, hid, out)
	}
	s, err := StackMLPs(mlps)
	if err != nil {
		t.Fatal(err)
	}
	x := randRows(rng, rows, k*in)
	dst := make([]float64, rows*k*out)
	s.ForwardBlocks(dst, x, rows, &DenseScratch{})
	for r := 0; r < rows; r++ {
		for m := 0; m < k; m++ {
			want := mlps[m].Infer(x[r*k*in+m*in : r*k*in+(m+1)*in])
			got := dst[r*k*out+m*out : r*k*out+(m+1)*out]
			for o := range want {
				if got[o] != want[o] {
					t.Fatalf("row %d member %d out %d: got %v want %v", r, m, o, got[o], want[o])
				}
			}
		}
	}
}

// TestStackedMLPFloat32Tolerance checks the float32 fast path stays
// within the documented relative tolerance of the float64 reference.
func TestStackedMLPFloat32Tolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k, rows, in, hid, out = 3, 6, 10, 24, 4
	mlps := make([]*MLP, k)
	for m := range mlps {
		mlps[m] = NewMLP(rng, in, hid, out)
	}
	s, err := StackMLPs(mlps)
	if err != nil {
		t.Fatal(err)
	}
	x := randRows(rng, rows, k*in)
	x32 := make([]float32, len(x))
	for i, v := range x {
		x32[i] = float32(v)
	}
	dst := make([]float64, rows*k*out)
	dst32 := make([]float32, rows*k*out)
	sc := &DenseScratch{}
	s.ForwardBlocks(dst, x, rows, sc)
	s.ForwardBlocks32(dst32, x32, rows, sc)
	for i := range dst {
		got, want := float64(dst32[i]), dst[i]
		if math.Abs(got-want) > 1e-4*math.Max(1, math.Abs(want)) {
			t.Fatalf("elem %d: float32 %v vs float64 %v", i, got, want)
		}
	}
}

// TestStackedMLPRejectsMismatches checks shape and slope validation.
func TestStackedMLPRejectsMismatches(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewMLP(rng, 4, 8, 2)
	bDeep := NewMLP(rng, 4, 8, 8, 2)
	bWide := NewMLP(rng, 4, 9, 2)
	bAlpha := NewMLP(rng, 4, 8, 2)
	bAlpha.Alpha = 0.2
	if _, err := StackMLPs(nil); err == nil {
		t.Fatal("stacking zero MLPs should fail")
	}
	for name, other := range map[string]*MLP{"depth": bDeep, "width": bWide, "alpha": bAlpha} {
		if _, err := StackMLPs([]*MLP{a, other}); err == nil {
			t.Fatalf("stacking mismatched %s should fail", name)
		}
	}
}

// TestStackedForwardAllocs checks the steady-state kernel path allocates
// nothing once the scratch has grown.
func TestStackedForwardAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const k, rows, in, hid, out = 3, 8, 12, 16, 4
	mlps := make([]*MLP, k)
	for m := range mlps {
		mlps[m] = NewMLP(rng, in, hid, out)
	}
	s, err := StackMLPs(mlps)
	if err != nil {
		t.Fatal(err)
	}
	x := randRows(rng, rows, k*in)
	dst := make([]float64, rows*k*out)
	sc := &DenseScratch{}
	s.ForwardBlocks(dst, x, rows, sc) // grow buffers
	allocs := testing.AllocsPerRun(50, func() {
		s.ForwardBlocks(dst, x, rows, sc)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ForwardBlocks allocates %v times per call, want 0", allocs)
	}
}

package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericalGrad estimates d(loss)/d(param) by central differences for an
// arbitrary forward function.
func numericalGrad(param []float64, i int, forward func() float64) float64 {
	const h = 1e-6
	orig := param[i]
	param[i] = orig + h
	lp := forward()
	param[i] = orig - h
	lm := forward()
	param[i] = orig
	return (lp - lm) / (2 * h)
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 3)
	x := []float64{0.3, -0.7, 1.2, 0.05}
	forward := func() float64 {
		tape := NewTape()
		in := tape.Const(x)
		out := l.Apply(tape, in)
		// Reduce to a scalar with a fixed weighting so the loss is smooth.
		s := 0.0
		for i, v := range out.Data {
			s += float64(i+1) * v
		}
		return s
	}
	// Analytic gradients via a weighted-sum output node.
	tape := NewTape()
	in := tape.Const(x)
	out := l.Apply(tape, in)
	w := tape.Const([]float64{1, 2, 3})
	// Build scalar sum_i w_i*out_i manually.
	var prod *Node
	prod = tape.customOp(
		[]float64{out.Data[0]*1 + out.Data[1]*2 + out.Data[2]*3}, func() {
			for i := range out.Data {
				out.Grad[i] += prod.Grad[0] * w.Data[i]
			}
		})
	tape.Backward(prod)

	for i := 0; i < len(l.W); i += 3 {
		want := numericalGrad(l.W, i, forward)
		if got := l.GW[i]; math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("dL/dW[%d] = %v, want %v", i, got, want)
		}
	}
	for i := range l.B {
		want := numericalGrad(l.B, i, forward)
		if got := l.GB[i]; math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("dL/dB[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestMLPGradCheckMSLE(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 5, 8, 8, 1)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	const target = 42.0
	forward := func() float64 {
		tape := NewTape()
		out := m.Apply(tape, tape.Const(x))
		return MSLELoss(tape, out, target).Data[0]
	}
	m.ZeroGrad()
	tape := NewTape()
	out := m.Apply(tape, tape.Const(x))
	loss := MSLELoss(tape, out, target)
	tape.Backward(loss)

	params, grads := m.Params()
	checked := 0
	for k, p := range params {
		step := len(p)/7 + 1
		for i := 0; i < len(p); i += step {
			want := numericalGrad(p, i, forward)
			got := grads[k][i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("param %d[%d]: grad = %v, want %v", k, i, got, want)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d gradients checked", checked)
	}
}

func TestMLPGradCheckBCE(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 3, 6, 1)
	x := []float64{0.5, -1.5, 2.0}
	for _, y := range []float64{0, 1} {
		forward := func() float64 {
			tape := NewTape()
			out := m.Apply(tape, tape.Const(x))
			return BCEWithLogitsLoss(tape, out, y).Data[0]
		}
		m.ZeroGrad()
		tape := NewTape()
		out := m.Apply(tape, tape.Const(x))
		tape.Backward(BCEWithLogitsLoss(tape, out, y))
		params, grads := m.Params()
		for k, p := range params {
			for i := 0; i < len(p); i += 5 {
				want := numericalGrad(p, i, forward)
				got := grads[k][i]
				if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
					t.Errorf("y=%v param %d[%d]: grad = %v, want %v", y, k, i, got, want)
				}
			}
		}
	}
}

func TestGraphOpsGradCheck(t *testing.T) {
	// Composite graph: concat(sum(a,b), scale(a,2)) -> sigmoid -> weighted sum.
	a := []float64{0.2, -0.4}
	b := []float64{1.1, 0.9}
	forward := func() float64 {
		tape := NewTape()
		na, nb := tape.Const(a), tape.Const(b)
		s := tape.Sum(na, nb)
		sc := tape.Scale(na, 2)
		cc := tape.Concat(s, sc)
		sg := tape.Sigmoid(cc)
		r := tape.LeakyReLU(sg, 0.01)
		total := 0.0
		for i, v := range r.Data {
			total += float64(i+1) * v
		}
		return total
	}
	tape := NewTape()
	na, nb := tape.Const(a), tape.Const(b)
	s := tape.Sum(na, nb)
	sc := tape.Scale(na, 2)
	cc := tape.Concat(s, sc)
	sg := tape.Sigmoid(cc)
	r := tape.LeakyReLU(sg, 0.01)
	var outNode *Node
	outNode = tape.customOp([]float64{0}, func() {
		for i := range r.Data {
			r.Grad[i] += outNode.Grad[0] * float64(i+1)
		}
	})
	for i, v := range r.Data {
		outNode.Data[0] += float64(i+1) * v
	}
	tape.Backward(outNode)

	for i := range a {
		want := numericalGrad(a, i, forward)
		if got := na.Grad[i]; math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("da[%d] = %v, want %v", i, got, want)
		}
	}
	for i := range b {
		want := numericalGrad(b, i, forward)
		if got := nb.Grad[i]; math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("db[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestAdamConvergesOnRegression(t *testing.T) {
	// Learn y = 2*x0 - 3*x1 + 1 with a small MLP in raw space via MSLE on
	// shifted positive targets.
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, 2, 16, 1)
	params, grads := m.Params()
	opt := NewAdam(0.01, params, grads)
	target := func(x0, x1 float64) float64 { return math.Abs(2*x0-3*x1+1) + 1 }
	var loss float64
	for epoch := 0; epoch < 400; epoch++ {
		loss = 0
		opt.ZeroGrads()
		for k := 0; k < 32; k++ {
			x0, x1 := rng.Float64(), rng.Float64()
			tape := NewTape()
			out := m.Apply(tape, tape.Const([]float64{x0, x1}))
			l := MSLELoss(tape, out, target(x0, x1))
			loss += l.Data[0]
			tape.Backward(l)
		}
		opt.Step()
		opt.ZeroGrads()
	}
	if loss/32 > 0.01 {
		t.Errorf("final MSLE %v, want < 0.01", loss/32)
	}
}

func TestAdamConvergesOnClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 2, 16, 1)
	params, grads := m.Params()
	opt := NewAdam(0.02, params, grads)
	label := func(x0, x1 float64) float64 {
		if x0+x1 > 1 {
			return 1
		}
		return 0
	}
	for epoch := 0; epoch < 300; epoch++ {
		opt.ZeroGrads()
		for k := 0; k < 32; k++ {
			x0, x1 := rng.Float64(), rng.Float64()
			tape := NewTape()
			out := m.Apply(tape, tape.Const([]float64{x0, x1}))
			tape.Backward(BCEWithLogitsLoss(tape, out, label(x0, x1)))
		}
		opt.Step()
		opt.ZeroGrads()
	}
	correct := 0
	const n = 500
	for k := 0; k < n; k++ {
		x0, x1 := rng.Float64(), rng.Float64()
		tape := NewTape()
		out := m.Apply(tape, tape.Const([]float64{x0, x1}))
		pred := 0.0
		if SigmoidScalar(out.Data[0]) > 0.5 {
			pred = 1
		}
		if pred == label(x0, x1) {
			correct++
		}
	}
	if acc := float64(correct) / n; acc < 0.95 {
		t.Errorf("accuracy = %v, want >= 0.95", acc)
	}
}

func TestMLPSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(rng, 4, 8, 2)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 MLP
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3, 0.4}
	t1, t2 := NewTape(), NewTape()
	o1 := m.Apply(t1, t1.Const(x))
	o2 := m2.Apply(t2, t2.Const(x))
	for i := range o1.Data {
		if o1.Data[i] != o2.Data[i] {
			t.Fatalf("round-trip changed output: %v vs %v", o1.Data, o2.Data)
		}
	}
	if err := json.Unmarshal([]byte(`{"alpha":0.01,"layers":[{"in":2,"out":2,"w":[1],"b":[0,0]}]}`), &m2); err == nil {
		t.Error("corrupt layer accepted")
	}
	if err := json.Unmarshal([]byte(`{"alpha":0.01,"layers":[]}`), &m2); err == nil {
		t.Error("empty MLP accepted")
	}
}

func TestGradientClipping(t *testing.T) {
	p := []float64{0}
	g := []float64{1000}
	opt := NewAdam(0.1, [][]float64{p}, [][]float64{g})
	opt.ClipNorm = 1
	opt.Step()
	// After clipping, |g| = 1, Adam first step = lr * sign ~ 0.1.
	if math.Abs(p[0]) > 0.11 {
		t.Errorf("clipped step moved parameter by %v, want <= ~0.1", math.Abs(p[0]))
	}
}

func TestSigmoidStable(t *testing.T) {
	if s := SigmoidScalar(1000); s != 1 {
		t.Errorf("sigmoid(1000) = %v, want 1", s)
	}
	if s := SigmoidScalar(-1000); s != 0 {
		t.Errorf("sigmoid(-1000) = %v, want 0", s)
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := SigmoidScalar(x)
		return s >= 0 && s <= 1 && !math.IsNaN(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpM1Log1pInverse(t *testing.T) {
	f := func(y float64) bool {
		y = math.Abs(y)
		if math.IsInf(y, 0) || y > 1e12 {
			return true
		}
		back := ExpM1(Log1p(y))
		return math.Abs(back-y) <= 1e-6*(1+y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if ExpM1(-5) != 0 {
		t.Error("ExpM1 must clamp negatives to 0")
	}
}

func TestTapeMisuse(t *testing.T) {
	tape := NewTape()
	defer func() {
		if recover() == nil {
			t.Error("Backward on vector output must panic")
		}
	}()
	v := tape.Const([]float64{1, 2})
	tape.Backward(v)
}

func TestDimensionMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { tape := NewTape(); tape.Add(tape.Const([]float64{1}), tape.Const([]float64{1, 2})) },
		func() { tape := NewTape(); tape.Sum(tape.Const([]float64{1}), tape.Const([]float64{1, 2})) },
		func() { tape := NewTape(); tape.Sum() },
		func() {
			rng := rand.New(rand.NewSource(1))
			l := NewLinear(rng, 3, 2)
			tape := NewTape()
			l.Apply(tape, tape.Const([]float64{1}))
		},
		func() { NewMLP(rand.New(rand.NewSource(1)), 3) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, 4, 8, 1)
	want := 4*8 + 8 + 8*1 + 1
	if got := m.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
	if m.InDim() != 4 || m.OutDim() != 1 {
		t.Error("InDim/OutDim wrong")
	}
}

func TestTapeReset(t *testing.T) {
	tape := NewTape()
	tape.Const([]float64{1})
	if tape.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tape.Len())
	}
	tape.Reset()
	if tape.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", tape.Len())
	}
}

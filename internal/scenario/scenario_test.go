package scenario

import (
	"fmt"
	"strings"
	"testing"

	"costream/internal/dataset"
	"costream/internal/workload"
)

func TestRegistryNames(t *testing.T) {
	want := []string{
		"benchmark", "cloud-only", "edge-heavy", "extrapolation-hw",
		"filter-chains", "interpolation-hw", "large-cluster", "training",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (sorted)", i, got[i], want[i])
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown scenario accepted")
	}
	for _, s := range All() {
		if s.Description == "" {
			t.Errorf("scenario %q has no description", s.Name)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(Scenario{Name: "training", Make: MustGet("training").Make})
}

// fingerprint summarizes the first trace of a scenario corpus: the query
// shape, the sampled cluster, the placement and the headline metrics. Any
// change to a scenario's recipe — grids, query mix, seed derivation —
// shows up here.
func fingerprint(t *testing.T, s Scenario, seed int64) string {
	t.Helper()
	cfg := s.Make(1, seed)
	// Shorter simulation than the recipe default; pinned by this test, not
	// part of the scenario contract (callers override Sim freely).
	cfg.Sim.DurationS, cfg.Sim.WarmupS = 20, 4
	c, err := dataset.Build(cfg)
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	tr := c.Traces[0]
	hosts := make([]string, len(tr.Cluster.Hosts))
	for i, h := range tr.Cluster.Hosts {
		hosts[i] = fmt.Sprintf("%g/%g/%g/%g", h.CPU, h.RAMMB, h.NetBandwidthMbps, h.NetLatencyMS)
	}
	return fmt.Sprintf("%s ops=%d place=%v hosts=[%s] succ=%t tput=%.2f",
		tr.Query.Class(), tr.Query.NumOps(), []int(tr.Placement),
		strings.Join(hosts, " "), tr.Metrics.Success, tr.Metrics.ThroughputTPS)
}

// TestScenarioGolden pins each scenario's first trace for a fixed seed.
// These strings are corpus provenance: if one changes, every corpus built
// from that scenario changes identity, and the manifest scenario names
// stop meaning what they meant — bump them only deliberately.
func TestScenarioGolden(t *testing.T) {
	golden := map[string]string{
		"benchmark":        "2-Way-Join ops=5 place=[0 0 1 2 2] hosts=[50/32000/6400/2 100/2000/6400/80 800/8000/3200/10] succ=true tput=340.06",
		"cloud-only":       "Linear ops=3 place=[2 2 0] hosts=[500/16000/3200/2 400/24000/1600/5 800/32000/6400/1 700/32000/10000/1] succ=true tput=36.28",
		"edge-heavy":       "Linear ops=3 place=[0 0 4] hosts=[50/1000/200/80 100/4000/100/160 50/4000/100/160 200/1000/100/80 200/4000/200/40 200/4000/200/20] succ=true tput=36.28",
		"extrapolation-hw": "Linear ops=3 place=[2 0 0] hosts=[25/40000/12000/320 1000/500/10/200 1200/64000/16000/200 900/64000/20000/320] succ=true tput=36.28",
		"filter-chains":    "Linear ops=4 place=[2 0 0 0] hosts=[500/1000/1600/2 200/24000/100/40 50/24000/50/5 400/4000/1600/10] succ=true tput=60.42",
		"interpolation-hw": "Linear ops=3 place=[2 2 0] hosts=[450/12000/8000/60 650/20000/1200/120 350/28000/250/30 150/28000/1200/3] succ=true tput=36.28",
		"large-cluster":    "Linear ops=3 place=[0 6 7] hosts=[400/4000/3200/80 500/1000/1600/2 200/24000/100/40 50/24000/50/5 400/4000/1600/10 800/16000/1600/5 500/32000/10000/5 400/16000/50/2 600/4000/100/1] succ=true tput=36.28",
		"training":         "Linear ops=3 place=[2 2 0] hosts=[400/4000/3200/80 500/1000/1600/2 200/24000/100/40 50/24000/50/5] succ=true tput=36.28",
	}
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			got := fingerprint(t, s, 42)
			want, ok := golden[s.Name]
			if !ok {
				t.Fatalf("no golden entry for scenario %q; add: %q", s.Name, got)
			}
			if got != want {
				t.Errorf("scenario %q first trace changed:\n got  %s\n want %s", s.Name, got, want)
			}
		})
	}
}

// TestScenarioRecipesDiffer sanity-checks that the families actually
// produce different corpora: the continuum scenarios must not collapse
// into the training recipe.
func TestScenarioRecipesDiffer(t *testing.T) {
	training := MustGet("training").Make(4, 7)
	edge := MustGet("edge-heavy").Make(4, 7)
	cloud := MustGet("cloud-only").Make(4, 7)
	large := MustGet("large-cluster").Make(4, 7)
	if edge.Gen.HW.CPU[len(edge.Gen.HW.CPU)-1] >= cloud.Gen.HW.CPU[0] {
		t.Error("edge-heavy grid overlaps cloud-only CPU range")
	}
	if large.Gen.MinHosts < 8 || large.Gen.MaxHosts > 16 {
		t.Errorf("large-cluster hosts %d-%d, want within 8-16", large.Gen.MinHosts, large.Gen.MaxHosts)
	}
	if training.Gen.MinHosts != 3 || training.Gen.MaxHosts != 6 {
		t.Errorf("training hosts %d-%d, want 3-6 (paper)", training.Gen.MinHosts, training.Gen.MaxHosts)
	}
	// Extrapolation values must lie strictly outside the training grid.
	tg := training.Gen.HW
	for _, cpu := range ExtrapolationGrid().CPU {
		if cpu >= tg.CPU[0] && cpu <= tg.CPU[len(tg.CPU)-1] {
			t.Errorf("extrapolation CPU %g inside the training range", cpu)
		}
	}
}

// TestFilterChainAndBenchmarkHelpers pins the parameterized recipes the
// experiment suite uses directly.
func TestFilterChainAndBenchmarkHelpers(t *testing.T) {
	cfg := FilterChainConfig(2, 6002, 3)
	cfg.Sim.DurationS, cfg.Sim.WarmupS = 10, 2
	c, err := dataset.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range c.Traces {
		if n := len(tr.Query.Ops); n != 5 { // source + 3 filters + sink
			t.Fatalf("filter-chain query has %d ops, want 5", n)
		}
	}
	bcfg := BenchmarkConfig(1, 7000, workload.SpikeDetection)
	bcfg.Sim.DurationS, bcfg.Sim.WarmupS = 10, 2
	bc, err := dataset.Build(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Len() != 1 {
		t.Fatal("benchmark corpus empty")
	}
}

// Package scenario is the registry of named corpus recipes: every way the
// project generates a benchmark corpus — the paper's training grid, the
// Table IV/V evaluation grids, the Exp 5/6 unseen-workload corpora, and
// the edge-cloud continuum families beyond the paper (edge-heavy,
// cloud-only, large clusters) — is a named dataset.BuildConfig factory
// here. costream-datagen, the experiment suite and tests all draw their
// corpora through this registry, so a scenario name in a shard manifest
// fully identifies how the corpus was produced.
package scenario

import (
	"fmt"
	"sort"
	"sync"

	"costream/internal/dataset"
	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
	"costream/internal/workload"
)

// Scenario is one named corpus recipe.
type Scenario struct {
	// Name is the registry key, also recorded in shard manifests.
	Name string
	// Description is a one-line summary for -list output and docs.
	Description string
	// Make returns the build configuration for an n-trace corpus with the
	// given seed. Callers may override Sim or Parallelism afterwards; the
	// workload recipe (generator config, query/cluster samplers) is the
	// scenario's contract.
	Make func(n int, seed int64) dataset.BuildConfig
}

var (
	mu       sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a scenario to the registry. Registering a duplicate name
// panics: scenario names are corpus provenance and must be unambiguous.
func Register(s Scenario) {
	if s.Name == "" || s.Make == nil {
		panic("scenario: Register needs a name and a Make function")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name))
	}
	registry[s.Name] = s
}

// Get returns the named scenario.
func Get(name string) (Scenario, error) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (known: %v)", name, names())
	}
	return s, nil
}

// MustGet returns the named scenario or panics; for scenarios registered
// in this package, which are known to exist.
func MustGet(name string) Scenario {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return names()
}

func names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns the registered scenarios sorted by name.
func All() []Scenario {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Scenario, 0, len(registry))
	for _, n := range names() {
		out = append(out, registry[n])
	}
	return out
}

// QuerySampler resolves the named recipe into a deterministic per-index
// query sampler: sampler(i) is exactly the query of trace i in a corpus
// built from this scenario with the same seed (same per-trace seed
// derivation, same QueryFn override). The fleet simulator draws its
// deployed workloads through this, so a scenario-registry name in a
// fleet-scenario file fully identifies the query mix.
func QuerySampler(name string, seed int64) (func(i int) *stream.Query, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	cfg := s.Make(1, seed)
	return func(i int) *stream.Query {
		genCfg := cfg.Gen
		genCfg.Seed = dataset.TraceSeed(seed, i)
		g := workload.New(genCfg)
		if cfg.QueryFn != nil {
			return cfg.QueryFn(g, i)
		}
		return g.Query()
	}, nil
}

// base returns the common build-config skeleton: the Section VI training
// distribution over a given hardware grid and cluster-size range.
func base(n int, seed int64, hw hardware.Grid, minHosts, maxHosts int) dataset.BuildConfig {
	gen := workload.DefaultConfig(seed)
	gen.HW = hw
	if minHosts > 0 {
		gen.MinHosts = minHosts
	}
	if maxHosts > 0 {
		gen.MaxHosts = maxHosts
	}
	return dataset.BuildConfig{N: n, Seed: seed, Gen: gen, Sim: sim.DefaultConfig()}
}

// ExtrapolationGrid returns a hardware grid strictly outside the Table II
// training ranges in both directions: weaker-than-edge and
// stronger-than-cloud values for every feature. It extends the Table V
// experiment (which restricts one dimension at a time) to a full
// out-of-range landscape.
func ExtrapolationGrid() hardware.Grid {
	return hardware.Grid{
		CPU:       []float64{25, 900, 1000, 1200},
		RAMMB:     []float64{500, 40000, 48000, 64000},
		Bandwidth: []float64{10, 12000, 16000, 20000},
		LatencyMS: []float64{0.5, 200, 320, 640},
	}
}

// EdgeGrid returns the weak end of the Table II ranges: constrained CPU
// and RAM, thin links, high latency — the sensor/gateway side of the
// edge-cloud continuum. Cluster sampling still guarantees at least one
// fog-or-better host so the placement heuristic stays satisfiable.
func EdgeGrid() hardware.Grid {
	return hardware.Grid{
		CPU:       []float64{50, 100, 200},
		RAMMB:     []float64{1000, 2000, 4000},
		Bandwidth: []float64{25, 50, 100, 200},
		LatencyMS: []float64{20, 40, 80, 160},
	}
}

// CloudGrid returns the strong end of the Table II ranges: datacenter
// nodes with fat, low-latency links.
func CloudGrid() hardware.Grid {
	return hardware.Grid{
		CPU:       []float64{400, 500, 600, 700, 800},
		RAMMB:     []float64{16000, 24000, 32000},
		Bandwidth: []float64{1600, 3200, 6400, 10000},
		LatencyMS: []float64{1, 2, 5},
	}
}

// FilterChainConfig is the Exp 5 unseen-pattern recipe with a fixed chain
// length: every query is a source -> n-filter chain -> sink plan, a shape
// absent from the training distribution.
func FilterChainConfig(n int, seed int64, chainLen int) dataset.BuildConfig {
	cfg := base(n, seed, hardware.TrainingGrid(), 0, 0)
	cfg.QueryFn = func(g *workload.Generator, i int) *stream.Query {
		return g.FilterChain(chainLen)
	}
	return cfg
}

// BenchmarkConfig is the Exp 6 recipe for one real-world benchmark query,
// executed with random event rates and placements.
func BenchmarkConfig(n int, seed int64, id workload.BenchmarkID) dataset.BuildConfig {
	cfg := base(n, seed, hardware.TrainingGrid(), 0, 0)
	cfg.QueryFn = func(g *workload.Generator, i int) *stream.Query {
		return g.BenchmarkQuery(id)
	}
	return cfg
}

// QueryClassConfig is the Figure 8 recipe: every query drawn from one
// query class (linear / join arity x aggregation) on the training grids.
func QueryClassConfig(n int, seed int64, class stream.QueryClass) dataset.BuildConfig {
	cfg := base(n, seed, hardware.TrainingGrid(), 0, 0)
	cfg.QueryFn = func(g *workload.Generator, i int) *stream.Query {
		return g.QueryOfClass(class)
	}
	return cfg
}

func init() {
	Register(Scenario{
		Name:        "training",
		Description: "Section VI training distribution: Table II grids, 3-6 hosts, Figure 6 query mix",
		Make: func(n int, seed int64) dataset.BuildConfig {
			return base(n, seed, hardware.TrainingGrid(), 0, 0)
		},
	})
	Register(Scenario{
		Name:        "interpolation-hw",
		Description: "Table IV-A: unseen in-range hardware (Exp 3 interpolation grid)",
		Make: func(n int, seed int64) dataset.BuildConfig {
			return base(n, seed, hardware.InterpolationGrid(), 0, 0)
		},
	})
	Register(Scenario{
		Name:        "extrapolation-hw",
		Description: "hardware strictly outside the Table II ranges in both directions (beyond Table V)",
		Make: func(n int, seed int64) dataset.BuildConfig {
			return base(n, seed, ExtrapolationGrid(), 0, 0)
		},
	})
	Register(Scenario{
		Name:        "filter-chains",
		Description: "Exp 5 unseen query pattern: chains of 2-4 consecutive filters, cycling by trace index",
		Make: func(n int, seed int64) dataset.BuildConfig {
			cfg := base(n, seed, hardware.TrainingGrid(), 0, 0)
			cfg.QueryFn = func(g *workload.Generator, i int) *stream.Query {
				return g.FilterChain(2 + i%3)
			}
			return cfg
		},
	})
	Register(Scenario{
		Name:        "benchmark",
		Description: "Exp 6 real-world benchmark queries (DSPBench/DEBS), cycling by trace index",
		Make: func(n int, seed int64) dataset.BuildConfig {
			cfg := base(n, seed, hardware.TrainingGrid(), 0, 0)
			ids := workload.AllBenchmarks()
			cfg.QueryFn = func(g *workload.Generator, i int) *stream.Query {
				return g.BenchmarkQuery(ids[i%len(ids)])
			}
			return cfg
		},
	})
	Register(Scenario{
		Name:        "edge-heavy",
		Description: "edge-dominated landscapes: weak hosts, thin high-latency links, 4-8 hosts",
		Make: func(n int, seed int64) dataset.BuildConfig {
			return base(n, seed, EdgeGrid(), 4, 8)
		},
	})
	Register(Scenario{
		Name:        "cloud-only",
		Description: "datacenter-only landscapes: strong hosts, fat low-latency links",
		Make: func(n int, seed int64) dataset.BuildConfig {
			return base(n, seed, CloudGrid(), 0, 0)
		},
	})
	Register(Scenario{
		Name:        "large-cluster",
		Description: "Table II hardware on 8-16 host clusters (placement search stress)",
		Make: func(n int, seed int64) dataset.BuildConfig {
			return base(n, seed, hardware.TrainingGrid(), 8, 16)
		},
	})
}

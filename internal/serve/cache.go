package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"costream/internal/placement"
)

// lruCache is a bounded, thread-safe LRU cache mapping request
// fingerprints to predicted costs. Predictions are pure functions of
// (query, cluster, placement) and model weights, so entries never go
// stale while the server runs one model.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key   string
	costs placement.PredCosts
}

// newLRUCache returns a cache holding at most max entries; max <= 0
// returns nil (caching disabled — all lruCache methods tolerate nil).
func newLRUCache(max int) *lruCache {
	if max <= 0 {
		return nil
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached costs for key, marking the entry most recently
// used. The hit/miss counters feed /stats.
func (c *lruCache) get(key string) (placement.PredCosts, bool) {
	if c == nil {
		return placement.PredCosts{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return placement.PredCosts{}, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).costs, true
}

// add stores costs under key, evicting the least recently used entry
// when full.
func (c *lruCache) add(key string, costs placement.PredCosts) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).costs = costs
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, costs: costs})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// len returns the current entry count.
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// capacity returns the configured maximum entry count.
func (c *lruCache) capacity() int {
	if c == nil {
		return 0
	}
	return c.max
}

// counters returns the accumulated hit, miss and eviction counts.
func (c *lruCache) counters() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

package serve

import (
	"errors"
	"sync"
	"sync/atomic"

	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
)

// batchFn scores a slice of placement candidates for one (query, cluster)
// pair in a single call. The server wires this to PredictBatch behind the
// in-flight semaphore.
type batchFn func(q *stream.Query, c *hardware.Cluster, ps []sim.Placement) ([]placement.PredCosts, error)

// singleFn scores one candidate; used to isolate failures when a whole
// batch errors.
type singleFn func(q *stream.Query, c *hardware.Cluster, p sim.Placement) (placement.PredCosts, error)

// coalescer merges concurrent single-placement predict requests for the
// same (query, cluster) fingerprint into shared PredictBatch calls. The
// first request for a group becomes its leader and drains the group's
// queue in batches: requests arriving while a batch is being scored are
// collected and scored together in the next one. Under concurrent load
// this turns N featurize-and-infer passes over the same query graph into
// a handful of batch calls that featurize it once (the PredictBatch
// engine shares the operator graph and host features across the batch).
type coalescer struct {
	runBatch  batchFn
	runSingle singleFn
	// maxBatch caps the placements scored per PredictBatch call, so a
	// burst of queued requests cannot buy one unboundedly large batch;
	// the remainder stays pending for the next drain iteration.
	maxBatch int

	mu     sync.Mutex
	groups map[string]*predictGroup

	// Stats: batches actually issued, requests enqueued, and requests
	// that shared their batch with at least one other request.
	batches   atomic.Int64
	enqueued  atomic.Int64
	coalesced atomic.Int64
}

type predictGroup struct {
	q       *stream.Query
	c       *hardware.Cluster
	pending []pendingPredict
	running bool
}

type pendingPredict struct {
	p  sim.Placement
	ch chan predictResult
}

type predictResult struct {
	costs placement.PredCosts
	err   error
	// batchSize is the number of requests scored in the same
	// PredictBatch call (1 = the request ran alone).
	batchSize int
}

func newCoalescer(runBatch batchFn, runSingle singleFn, maxBatch int) *coalescer {
	if maxBatch <= 0 {
		maxBatch = maxCandidates
	}
	return &coalescer{runBatch: runBatch, runSingle: runSingle, maxBatch: maxBatch, groups: make(map[string]*predictGroup)}
}

// predict enqueues one placement under the group key and blocks until a
// batch containing it has been scored. q and c must be the decoded forms
// of the data the key fingerprints, so every member of a group is
// structurally identical.
func (co *coalescer) predict(key string, q *stream.Query, c *hardware.Cluster, p sim.Placement) predictResult {
	ch := make(chan predictResult, 1)
	co.mu.Lock()
	g := co.groups[key]
	if g == nil {
		g = &predictGroup{q: q, c: c}
		co.groups[key] = g
	}
	g.pending = append(g.pending, pendingPredict{p: p, ch: ch})
	co.enqueued.Add(1)
	if !g.running {
		g.running = true
		go co.drain(key, g)
	}
	co.mu.Unlock()
	return <-ch
}

// drain is the group leader loop: it repeatedly takes everything queued
// for the group, scores it in one PredictBatch call, and delivers the
// results. When the queue empties the group is removed; enqueue and
// removal both happen under co.mu, so a request either joins a live
// group or starts a fresh one — never neither.
func (co *coalescer) drain(key string, g *predictGroup) {
	for {
		co.mu.Lock()
		batch := g.pending
		if len(batch) > co.maxBatch {
			// Writes to the shrunken g.pending append past the kept
			// prefix, so the two slices never alias the same elements.
			g.pending = batch[co.maxBatch:]
			batch = batch[:co.maxBatch]
		} else {
			g.pending = nil
		}
		if len(batch) == 0 {
			g.running = false
			delete(co.groups, key)
			co.mu.Unlock()
			return
		}
		co.mu.Unlock()

		ps := make([]sim.Placement, len(batch))
		for i, pr := range batch {
			ps[i] = pr.p
		}
		co.batches.Add(1)
		if len(batch) > 1 {
			co.coalesced.Add(int64(len(batch)))
		}
		out, err := co.runBatch(g.q, g.c, ps)
		if errors.Is(err, ErrSaturated) {
			// Admission failed: re-scoring each request alone would just
			// queue more work on a saturated server, so fail the whole
			// batch fast and let clients retry.
			for _, pr := range batch {
				pr.ch <- predictResult{err: err, batchSize: len(batch)}
			}
			continue
		}
		if err != nil || len(out) != len(batch) {
			// The batch failed as a whole. Re-score each request alone so
			// one bad request cannot fail the others it was batched with.
			for _, pr := range batch {
				costs, serr := co.runSingle(g.q, g.c, pr.p)
				pr.ch <- predictResult{costs: costs, err: serr, batchSize: len(batch)}
			}
			continue
		}
		for i, pr := range batch {
			pr.ch <- predictResult{costs: out[i], batchSize: len(batch)}
		}
	}
}

package serve

import (
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"costream/internal/obs"
	"costream/internal/sim"
)

// TestMetricsEndpointExposition is the /metrics acceptance check: after
// real traffic across the predict and optimize paths, the exposition
// parses as valid Prometheus text and covers the serve, inference and
// search metric families.
func TestMetricsEndpointExposition(t *testing.T) {
	// The default registry is shared process-wide on purpose: the search
	// families recorded by internal/placement must appear on the same
	// scrape as the server's own series.
	s := newTestServer(t, Config{Registry: obs.Default()})
	q, c := testQuery(t), testCluster()

	body := PredictRequest{Query: q, Cluster: c, Placement: sim.Placement{0, 1, 2}}
	if w := doJSON(t, s, http.MethodPost, "/v1/predict", body); w.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", w.Code, w.Body)
	}
	// Second identical request exercises the cache-hit counter.
	doJSON(t, s, http.MethodPost, "/v1/predict", body)
	if w := doJSON(t, s, http.MethodPost, "/v1/optimize", OptimizeRequest{Query: q, Cluster: c, Candidates: 8}); w.Code != http.StatusOK {
		t.Fatalf("optimize status %d: %s", w.Code, w.Body)
	}

	w := doJSON(t, s, http.MethodGet, "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	text := w.Body.Bytes()
	if err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("invalid Prometheus exposition: %v\n%s", err, text)
	}
	for _, family := range []string{
		"costream_http_requests_total",
		"costream_http_errors_total",
		"costream_http_request_seconds",
		"costream_http_rejected_total",
		"costream_serve_cache_ops_total",
		"costream_serve_cache_entries",
		"costream_serve_coalesce_batches_total",
		"costream_serve_coalesce_batch_size",
		"costream_serve_in_flight",
		"costream_search_rounds_total",
		"costream_search_candidates_total",
		"costream_search_runs_total",
	} {
		if !strings.Contains(string(text), family) {
			t.Errorf("exposition missing family %s", family)
		}
	}
	if !strings.Contains(string(text), `costream_http_requests_total{route="predict"} 2`) {
		t.Errorf("per-route predict counter not at 2:\n%s", text)
	}
}

// TestInferencePathFuncMetrics checks predictors reporting path stats
// get per-path Func counters on the scrape.
func TestInferencePathFuncMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Predictor: &pathStatsPred{}, Registry: reg})
	body := PredictRequest{Query: testQuery(t), Cluster: testCluster(), Placement: sim.Placement{0, 1, 2}}
	if w := doJSON(t, s, http.MethodPost, "/v1/predict", body); w.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", w.Code, w.Body)
	}
	w := doJSON(t, s, http.MethodGet, "/metrics", nil)
	text := w.Body.String()
	if !strings.Contains(text, `costream_inference_path_calls_total{path="stacked"} 8`) {
		t.Errorf("stacked path counter missing or wrong:\n%s", text)
	}
	if !strings.Contains(text, `costream_inference_path_seconds_total{path="fallback"}`) {
		t.Errorf("fallback path seconds missing:\n%s", text)
	}
}

// postOptimize POSTs an optimize request and decodes the response.
func postOptimize(t *testing.T, s *Server, req OptimizeRequest) OptimizeResponse {
	t.Helper()
	w := doJSON(t, s, http.MethodPost, "/v1/optimize", req)
	if w.Code != http.StatusOK {
		t.Fatalf("optimize status %d: %s", w.Code, w.Body)
	}
	var resp OptimizeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestPredictTraceHeader checks every predict response carries the
// request's span ID.
func TestPredictTraceHeader(t *testing.T) {
	s := newTestServer(t, Config{})
	body := PredictRequest{Query: testQuery(t), Cluster: testCluster(), Placement: sim.Placement{0, 1, 2}}
	w := doJSON(t, s, http.MethodPost, "/v1/predict", body)
	id := w.Header().Get("X-Costream-Trace")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Errorf("trace header %q, want 16 hex digits", id)
	}
	w2 := doJSON(t, s, http.MethodPost, "/v1/predict", body)
	if id2 := w2.Header().Get("X-Costream-Trace"); id2 == id {
		t.Errorf("two requests share trace ID %s", id)
	}
}

// TestOptimizeDebugStanza checks the opt-in per-round telemetry in the
// optimize response.
func TestOptimizeDebugStanza(t *testing.T) {
	s := newTestServer(t, Config{})
	q, c := testQuery(t), testCluster()

	plain := postOptimize(t, s, OptimizeRequest{Query: q, Cluster: c, Candidates: 8})
	if plain.Debug != nil {
		t.Fatalf("debug stanza present without opting in: %+v", plain.Debug)
	}

	dbg := postOptimize(t, s, OptimizeRequest{Query: q, Cluster: c, Candidates: 8, Debug: true})
	if dbg.Debug == nil {
		t.Fatal("debug stanza missing")
	}
	if len(dbg.Debug.Rounds) != dbg.Rounds {
		t.Errorf("%d debug rounds, want %d", len(dbg.Debug.Rounds), dbg.Rounds)
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(dbg.Debug.TraceID) {
		t.Errorf("debug trace ID %q", dbg.Debug.TraceID)
	}
	fresh := 0
	for _, rs := range dbg.Debug.Rounds {
		fresh += rs.Fresh
	}
	if fresh != dbg.Examined {
		t.Errorf("debug fresh sum %d != examined %d", fresh, dbg.Examined)
	}
	// Telemetry must not change the selection.
	if plain.Index != dbg.Index || plain.Costs != dbg.Costs {
		t.Errorf("debug changed selection: %d/%v vs %d/%v", plain.Index, plain.Costs, dbg.Index, dbg.Costs)
	}
}

// TestSaturationReturns503 checks the admission path: when the in-flight
// semaphore stays full past the queue timeout, requests are rejected
// with 503 + Retry-After instead of queueing without bound, and the
// rejection is counted.
func TestSaturationReturns503(t *testing.T) {
	s := newTestServer(t, Config{
		Predictor:    &fakePred{delay: 300 * time.Millisecond},
		MaxInFlight:  1,
		QueueTimeout: 20 * time.Millisecond,
		CacheSize:    -1,
	})
	q, c := testQuery(t), testCluster()
	batch := PredictBatchRequest{Query: q, Cluster: c, Placements: []sim.Placement{{0, 1, 2}}}

	var wg sync.WaitGroup
	codes := make([]int, 2)
	retryAfter := make([]string, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := doJSON(t, s, http.MethodPost, "/v1/predict-batch", batch)
			codes[i] = w.Code
			retryAfter[i] = w.Header().Get("Retry-After")
		}(i)
		// Stagger so the first request holds the only slot.
		time.Sleep(50 * time.Millisecond)
	}
	wg.Wait()

	if codes[0] != http.StatusOK {
		t.Errorf("first request status %d, want 200", codes[0])
	}
	if codes[1] != http.StatusServiceUnavailable {
		t.Fatalf("second request status %d, want 503", codes[1])
	}
	if retryAfter[1] == "" {
		t.Error("503 response missing Retry-After header")
	}
	if got := s.snapshotStats().Rejected; got != 1 {
		t.Errorf("stats rejected = %d, want 1", got)
	}
	if got := s.met.rejected.Value(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// A negative QueueTimeout restores unbounded waiting: the same load
	// pattern succeeds on both requests.
	s2 := newTestServer(t, Config{
		Predictor:    &fakePred{delay: 100 * time.Millisecond},
		MaxInFlight:  1,
		QueueTimeout: -1,
		CacheSize:    -1,
	})
	var wg2 sync.WaitGroup
	codes2 := make([]int, 2)
	for i := range codes2 {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			w := doJSON(t, s2, http.MethodPost, "/v1/predict-batch", batch)
			codes2[i] = w.Code
		}(i)
		time.Sleep(20 * time.Millisecond)
	}
	wg2.Wait()
	for i, code := range codes2 {
		if code != http.StatusOK {
			t.Errorf("blocking mode request %d status %d, want 200", i, code)
		}
	}
}

// TestSaturatedCoalescerFailsFast checks the coalescer does not retry
// each member of a saturated batch individually.
func TestSaturatedCoalescerFailsFast(t *testing.T) {
	pred := &fakePred{delay: 300 * time.Millisecond}
	s := newTestServer(t, Config{
		Predictor:    pred,
		MaxInFlight:  1,
		QueueTimeout: 20 * time.Millisecond,
		CacheSize:    -1,
	})
	q, c := testQuery(t), testCluster()

	// Hold the only slot with a batch request, then send a predict that
	// must go through the coalescer and find the server saturated.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		doJSON(t, s, http.MethodPost, "/v1/predict-batch",
			PredictBatchRequest{Query: q, Cluster: c, Placements: []sim.Placement{{0, 1, 2}}})
	}()
	time.Sleep(50 * time.Millisecond)

	calls0 := pred.batchCalls.Load()
	w := doJSON(t, s, http.MethodPost, "/v1/predict",
		PredictRequest{Query: q, Cluster: c, Placement: sim.Placement{0, 0, 1}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("predict status %d, want 503: %s", w.Code, w.Body)
	}
	wg.Wait()
	// The saturated batch must not have been re-driven through the
	// single-prediction fallback (which would queue more work).
	if got := pred.batchCalls.Load() - calls0; got != 0 {
		t.Errorf("saturated coalescer issued %d extra batch calls", got)
	}
}

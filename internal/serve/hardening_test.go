package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
)

// TestOversizedBodyReturns413 enforces the request body cap: a body
// past Config.MaxRequestBytes is answered 413, not 400, and the error
// names the limit.
func TestOversizedBodyReturns413(t *testing.T) {
	s := newTestServer(t, Config{MaxRequestBytes: 1 << 10})
	big := bytes.NewReader(append([]byte(`{"query": "`), bytes.Repeat([]byte("x"), 4<<10)...))
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", big)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413; body %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "1024") {
		t.Errorf("error does not name the limit: %s", w.Body)
	}

	// A request under the cap on the same server still works.
	q, c := testQuery(t), testCluster()
	if w := doJSON(t, s, http.MethodPost, "/v1/predict", PredictRequest{Query: q, Cluster: c, Placement: sim.Placement{0, 1, 2}}); w.Code != http.StatusOK {
		t.Fatalf("in-bounds request after 413: status %d body %s", w.Code, w.Body)
	}
}

// TestBodyCapAppliesToAllPostRoutes: every decoding route shares the cap.
func TestBodyCapAppliesToAllPostRoutes(t *testing.T) {
	s := newTestServer(t, Config{MaxRequestBytes: 512})
	for _, path := range []string{"/v1/predict", "/v1/predict-batch", "/v1/optimize"} {
		// A syntactically valid prefix so the decoder reads past the cap
		// instead of erroring on byte two.
		body := bytes.NewReader(append([]byte(`{"objective": "`), bytes.Repeat([]byte("x"), 2<<10)...))
		req := httptest.NewRequest(http.MethodPost, path, body)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", path, w.Code)
		}
	}
}

func TestDefaultBodyCap(t *testing.T) {
	s := newTestServer(t, Config{})
	if s.maxBody != DefaultMaxRequestBytes {
		t.Fatalf("default cap %d, want %d", s.maxBody, DefaultMaxRequestBytes)
	}
}

// TestOptimizePreCancelledContext: a request whose context is already
// cancelled does no predictor work and reports the cancellation.
func TestOptimizePreCancelledContext(t *testing.T) {
	pred := &fakePred{}
	s := newTestServer(t, Config{Predictor: pred})
	q, c := testQuery(t), testCluster()
	data, err := json.Marshal(OptimizeRequest{Query: q, Cluster: c, Candidates: 64})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/optimize", bytes.NewReader(data)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", w.Code, w.Body)
	}
	if pred.batchCalls.Load() != 0 {
		t.Errorf("pre-cancelled request still scored %d batches", pred.batchCalls.Load())
	}
}

// cancellingPred cancels the request context from inside the first
// batch call, simulating a client that disconnects mid-search.
type cancellingPred struct {
	fakePred
	cancel context.CancelFunc
}

func (p *cancellingPred) PredictBatch(q *stream.Query, c *hardware.Cluster, ps []sim.Placement) ([]placement.PredCosts, error) {
	out, err := p.fakePred.PredictBatch(q, c, ps)
	p.cancel()
	return out, err
}

// TestOptimizeCancelMidSearch: cancelling mid-search aborts remaining
// scoring but still answers with the partial incumbent — the search
// examined strictly fewer candidates than the budget.
func TestOptimizeCancelMidSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pred := &cancellingPred{cancel: cancel}
	s := newTestServer(t, Config{Predictor: pred, OptimizeWorkers: 1})
	q, c := testQuery(t), testCluster()
	const budget = 512
	data, err := json.Marshal(OptimizeRequest{Query: q, Cluster: c, Candidates: budget})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/optimize", bytes.NewReader(data)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 with partial incumbent; body %s", w.Code, w.Body)
	}
	var resp OptimizeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Examined == 0 || resp.Examined >= budget {
		t.Errorf("examined %d candidates, want partial progress in (0, %d)", resp.Examined, budget)
	}
	if len(resp.Placement) != q.NumOps() {
		t.Errorf("partial incumbent has %d ops, want %d", len(resp.Placement), q.NumOps())
	}
}

// Package serve implements costream-serve's HTTP layer: a long-running
// JSON service that answers cost-prediction and placement-optimization
// queries from one loaded model artifact. It is the serving half of the
// zero-shot workflow — train once, save an artifact, then serve placement
// decisions for unseen workloads without retraining.
//
// Endpoints:
//
//	POST /v1/predict        predict the five cost metrics for one placement
//	POST /v1/predict-batch  score many placements of one query in one call
//	POST /v1/optimize       search the placement space for the best placement
//	                        (random / exhaustive / beam / local-search)
//	GET  /v1/example        a ready-to-POST sample predict request
//	GET  /healthz           liveness plus model provenance
//	GET  /stats             request, cache and coalescing counters (JSON)
//	GET  /metrics           Prometheus text exposition (the canonical feed)
//
// Plus the placement control plane (internal/controlplane):
//
//	POST   /v1/deployments        register a query for continuous placement control
//	GET    /v1/deployments        list deployments
//	GET    /v1/deployments/{id}   one deployment's status and decision history
//	DELETE /v1/deployments/{id}   evict a deployment
//	GET    /v1/hosts              aggregated host state (cordons, load)
//	POST   /v1/hosts/cordon       mark a host unschedulable ({"host": "..."})
//	POST   /v1/hosts/uncordon     reverse a cordon
//	POST   /v1/hosts/drain        cordon plus immediate re-placement
//	POST   /v1/control/tick       run one control tick now
//
// The hot path is engineered for concurrent load: responses are served
// from a bounded LRU keyed by a (query, cluster, placement) fingerprint;
// cache misses for the same (query, cluster) are coalesced into shared
// PredictBatch calls that featurize the query graph once for the whole
// batch; and a semaphore bounds the predictor work in flight regardless
// of how many requests are queued.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"costream/internal/controlplane"
	"costream/internal/hardware"
	"costream/internal/obs"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
	"costream/internal/workload"
)

// DefaultMaxRequestBytes bounds request bodies when Config leaves
// MaxRequestBytes zero; query plans and clusters are small, so anything
// larger is abuse or a mistake. Oversized bodies are answered 413.
const DefaultMaxRequestBytes = 16 << 20

// maxCandidates bounds client-requested work per call: the number of
// candidates one /v1/optimize may enumerate and the number of placements
// one /v1/predict-batch may score. Both are clamped before any work (and
// before the in-flight semaphore), so a single request cannot allocate
// or compute unboundedly.
const maxCandidates = 4096

// Config configures a Server.
type Config struct {
	// Predictor answers cost queries; a loaded model artifact satisfies
	// this. Required.
	Predictor placement.BatchPredictor
	// CacheSize is the LRU capacity in entries. 0 selects
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// MaxInFlight bounds concurrent predictor work (batch scoring and
	// optimization runs). <= 0 selects GOMAXPROCS.
	MaxInFlight int
	// OptimizeWorkers bounds the scoring worker pool of one /v1/optimize
	// call; <= 0 selects GOMAXPROCS.
	OptimizeWorkers int
	// ModelInfo is surfaced verbatim under "model" in /healthz —
	// typically the artifact's provenance.
	ModelInfo any
	// Registry receives the server's metric series and backs GET
	// /metrics. Nil selects the process-wide obs.Default() registry (so
	// placement-search and inference families recorded elsewhere in the
	// process appear on the same scrape).
	Registry *obs.Registry
	// Logger, when set, receives structured request traces (one debug
	// record per instrumented request, with per-stage timings).
	Logger *slog.Logger
	// QueueTimeout bounds how long a request may wait for an in-flight
	// slot before being rejected with 503 and a Retry-After header. Zero
	// selects DefaultQueueTimeout; negative waits forever (the pre-503
	// behavior).
	QueueTimeout time.Duration
	// MaxRequestBytes caps request body size; larger bodies are rejected
	// with 413. <= 0 selects DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// ControlPlane backs the /v1/deployments and /v1/hosts surface. Nil
	// builds a default plane over Predictor (simulated metric feed,
	// default policy, OptimizeWorkers scoring workers).
	ControlPlane *controlplane.Plane
}

// DefaultQueueTimeout is the in-flight queue wait bound when Config
// leaves QueueTimeout zero.
const DefaultQueueTimeout = 2 * time.Second

// ErrSaturated is returned by the admission path when the in-flight
// semaphore stays full past the queue timeout; handlers map it to 503.
var ErrSaturated = errors.New("server saturated: too much predictor work in flight")

// DefaultCacheSize is the prediction cache capacity when Config leaves
// CacheSize zero.
const DefaultCacheSize = 4096

// Server is the HTTP handler for one loaded cost model.
type Server struct {
	cfg          Config
	pred         placement.BatchPredictor
	mux          *http.ServeMux
	cache        *lruCache
	co           *coalescer
	sem          chan struct{}
	start        time.Time
	queueTimeout time.Duration
	maxBody      int64
	reg          *obs.Registry
	met          *serveMetrics
	logger       *slog.Logger
	plane        *controlplane.Plane
	// example is the precomputed /v1/example response body: the sample
	// request is deterministic (fixed seed), so it is built once.
	example []byte

	inflight  atomic.Int64
	deploySeq atomic.Int64
}

// New validates the configuration and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.Predictor == nil {
		return nil, fmt.Errorf("serve: config needs a predictor")
	}
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = runtime.GOMAXPROCS(0)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	queueTimeout := cfg.QueueTimeout
	if queueTimeout == 0 {
		queueTimeout = DefaultQueueTimeout
	}
	maxBody := cfg.MaxRequestBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxRequestBytes
	}
	s := &Server{
		cfg:          cfg,
		pred:         cfg.Predictor,
		mux:          http.NewServeMux(),
		cache:        newLRUCache(cacheSize),
		sem:          make(chan struct{}, maxInFlight),
		start:        time.Now(),
		queueTimeout: queueTimeout,
		maxBody:      maxBody,
		reg:          reg,
		met:          newServeMetrics(reg),
		logger:       cfg.Logger,
	}
	s.co = newCoalescer(
		func(q *stream.Query, c *hardware.Cluster, ps []sim.Placement) ([]placement.PredCosts, error) {
			if err := s.acquire(); err != nil {
				return nil, err
			}
			defer s.release()
			s.met.batchSize.Record(int64(len(ps)))
			return s.pred.PredictBatch(q, c, ps)
		},
		func(q *stream.Query, c *hardware.Cluster, p sim.Placement) (placement.PredCosts, error) {
			if err := s.acquire(); err != nil {
				return placement.PredCosts{}, err
			}
			defer s.release()
			return s.pred.PredictPlacement(q, c, p)
		},
		maxCandidates,
	)
	s.plane = cfg.ControlPlane
	if s.plane == nil {
		plane, err := controlplane.New(controlplane.Config{
			Policy:  controlplane.Policy{Predictor: cfg.Predictor},
			Workers: cfg.OptimizeWorkers,
			Seed:    1,
		})
		if err != nil {
			return nil, err
		}
		s.plane = plane
	}
	example, err := buildExample()
	if err != nil {
		return nil, err
	}
	s.example = example
	s.registerFuncs(reg)
	s.mux.HandleFunc("POST /v1/predict", s.route("predict", s.handlePredict))
	s.mux.HandleFunc("POST /v1/predict-batch", s.route("predict_batch", s.handlePredictBatch))
	s.mux.HandleFunc("POST /v1/optimize", s.route("optimize", s.handleOptimize))
	s.mux.HandleFunc("GET /v1/example", s.route("example", s.handleExample))
	s.mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /stats", s.route("stats", s.handleStats))
	s.mux.Handle("GET /metrics", s.route("metrics", reg.Handler().ServeHTTP))
	s.mux.HandleFunc("POST /v1/deployments", s.route("deployments_create", s.handleDeployCreate))
	s.mux.HandleFunc("GET /v1/deployments", s.route("deployments_list", s.handleDeployList))
	s.mux.HandleFunc("GET /v1/deployments/{id}", s.route("deployments_get", s.handleDeployGet))
	s.mux.HandleFunc("DELETE /v1/deployments/{id}", s.route("deployments_delete", s.handleDeployDelete))
	s.mux.HandleFunc("GET /v1/hosts", s.route("hosts", s.handleHosts))
	s.mux.HandleFunc("POST /v1/hosts/cordon", s.route("hosts_cordon", s.handleHostCordon))
	s.mux.HandleFunc("POST /v1/hosts/uncordon", s.route("hosts_uncordon", s.handleHostUncordon))
	s.mux.HandleFunc("POST /v1/hosts/drain", s.route("hosts_drain", s.handleHostDrain))
	s.mux.HandleFunc("POST /v1/control/tick", s.route("control_tick", s.handleControlTick))
	return s, nil
}

// ControlPlane returns the plane backing the deployment surface, so the
// binary can attach a ControlLoop to it.
func (s *Server) ControlPlane() *controlplane.Plane { return s.plane }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	s.mux.ServeHTTP(w, r)
}

// acquire claims an in-flight slot, waiting at most the queue timeout.
// A saturated server answers ErrSaturated instead of queueing without
// bound (negative QueueTimeout restores unbounded waiting).
func (s *Server) acquire() error {
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return nil
	default:
	}
	if s.queueTimeout < 0 {
		s.sem <- struct{}{}
		s.inflight.Add(1)
		return nil
	}
	t := time.NewTimer(s.queueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return nil
	case <-t.C:
		s.met.rejected.Inc()
		return ErrSaturated
	}
}

func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.sem
}

// writeSaturated maps ErrSaturated to 503 with a Retry-After hint.
func (s *Server) writeSaturated(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	s.writeError(w, http.StatusServiceUnavailable, "%v", ErrSaturated)
}

// logSpan emits one structured trace record for a finished span.
func (s *Server) logSpan(sp *obs.Span) {
	if s.logger == nil {
		return
	}
	s.logger.Debug("request trace", "span", sp.String())
}

// Request / response schemas. Query, cluster and placement use the same
// JSON shapes as the trace corpus written by costream-datagen.

// PredictRequest asks for the cost of one placement.
type PredictRequest struct {
	Query     *stream.Query     `json:"query"`
	Cluster   *hardware.Cluster `json:"cluster"`
	Placement sim.Placement     `json:"placement"`
}

// PredictBatchRequest asks for the costs of many placements of one query.
type PredictBatchRequest struct {
	Query      *stream.Query     `json:"query"`
	Cluster    *hardware.Cluster `json:"cluster"`
	Placements []sim.Placement   `json:"placements"`
}

// DefaultOptimizeSeed is the search seed used when an /v1/optimize
// request omits "seed". An explicit zero seed is honored as-is.
const DefaultOptimizeSeed = 1

// OptimizeRequest asks the server to search the placement space and
// return the best candidate found under the budget.
type OptimizeRequest struct {
	Query   *stream.Query     `json:"query"`
	Cluster *hardware.Cluster `json:"cluster"`
	// Candidates is the search budget: the maximum number of distinct
	// placements scored (default 16).
	Candidates int `json:"candidates,omitempty"`
	// Rounds optionally bounds the generate->score->prune rounds
	// (default unlimited; the candidate budget still applies).
	Rounds int `json:"rounds,omitempty"`
	// Objective is one of "min-processing-latency" (default),
	// "min-e2e-latency" or "max-throughput".
	Objective string `json:"objective,omitempty"`
	// Strategy selects the search strategy: "random" (default),
	// "exhaustive", "beam" or "local-search".
	Strategy string `json:"strategy,omitempty"`
	// BeamWidth sets the beam width when Strategy is "beam".
	BeamWidth int `json:"beam_width,omitempty"`
	// Seed drives the search. Omitted: DefaultOptimizeSeed; an explicit
	// 0 is honored (it is a seed like any other).
	Seed *int64 `json:"seed,omitempty"`
	// Debug opts into per-round search telemetry in the response (the
	// "debug" stanza: per-round candidate dispositions and the incumbent
	// anytime curve). It never changes the chosen placement.
	Debug bool `json:"debug,omitempty"`
}

// Costs is the JSON form of the five predicted cost metrics.
type Costs struct {
	ThroughputTPS float64 `json:"throughput_tps"`
	ProcLatencyMS float64 `json:"proc_latency_ms"`
	E2ELatencyMS  float64 `json:"e2e_latency_ms"`
	Success       bool    `json:"success"`
	Backpressured bool    `json:"backpressured"`
}

func toCosts(pc placement.PredCosts) Costs {
	return Costs{
		ThroughputTPS: pc.ThroughputTPS,
		ProcLatencyMS: pc.ProcLatencyMS,
		E2ELatencyMS:  pc.E2ELatencyMS,
		Success:       pc.Success,
		Backpressured: pc.Backpressured,
	}
}

// PredictResponse carries the predicted costs for one placement.
type PredictResponse struct {
	Costs Costs `json:"costs"`
}

// PredictBatchResponse carries per-placement costs, in request order.
type PredictBatchResponse struct {
	Costs []Costs `json:"costs"`
}

// OptimizeResponse carries the chosen placement and its predicted costs.
type OptimizeResponse struct {
	Placement sim.Placement `json:"placement"`
	Costs     Costs         `json:"costs"`
	// Candidates is how many distinct placements were scored (same value
	// as Examined; kept for backward compatibility).
	Candidates int `json:"candidates"`
	// Filtered counts candidates removed by the sanity check (predicted
	// failure/backpressure) or scoring errors; Errored is the error subset.
	Filtered int `json:"filtered"`
	Errored  int `json:"errored"`
	// Strategy is the search strategy that ran; Rounds its
	// generate->score->prune round count; Examined the number of
	// distinct placements it scored.
	Strategy string `json:"strategy"`
	Rounds   int    `json:"rounds"`
	Examined int    `json:"examined"`
	// Index is the chosen placement's ordinal in the stream of scored
	// candidates; Seed is the effective search seed (the request seed,
	// or DefaultOptimizeSeed when omitted).
	Index int   `json:"index"`
	Seed  int64 `json:"seed"`
	// Debug carries per-round search telemetry when the request set
	// "debug": true; omitted otherwise.
	Debug *OptimizeDebug `json:"debug,omitempty"`
}

// OptimizeDebug is the opt-in search telemetry stanza of an optimize
// response.
type OptimizeDebug struct {
	// TraceID is the request's span ID (also in X-Costream-Trace).
	TraceID string `json:"trace_id"`
	// Rounds holds one entry per generate->score->prune round.
	Rounds []placement.RoundStats `json:"rounds"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// fingerprint hashes the JSON encodings of vals into a cache/group key.
// encoding/json is deterministic for these types (no maps), so
// structurally equal requests produce equal keys.
func fingerprint(vals ...any) (string, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, v := range vals {
		if err := enc.Encode(v); err != nil {
			return "", fmt.Errorf("serve: fingerprinting request: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeRequest(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("request body exceeds %d bytes: %w", tooBig.Limit, tooBig)
		}
		return fmt.Errorf("invalid request body: %v", err)
	}
	return nil
}

// writeDecodeError maps a decodeRequest failure to its status: 413 for
// an oversized body, 400 otherwise.
func (s *Server) writeDecodeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		status = http.StatusRequestEntityTooLarge
	}
	s.writeError(w, status, "%v", err)
}

// validatePair checks the parts shared by every request kind.
func validatePair(q *stream.Query, c *hardware.Cluster) error {
	if q == nil {
		return fmt.Errorf("missing query")
	}
	if c == nil {
		return fmt.Errorf("missing cluster")
	}
	if err := q.Validate(); err != nil {
		return fmt.Errorf("invalid query: %v", err)
	}
	if err := c.Validate(); err != nil {
		return fmt.Errorf("invalid cluster: %v", err)
	}
	return nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	sp := obs.StartSpan("predict")
	defer func() { sp.End(); s.logSpan(sp) }()
	w.Header().Set("X-Costream-Trace", sp.ID())
	var req PredictRequest
	if err := decodeRequest(r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if err := validatePair(req.Query, req.Cluster); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := req.Placement.Validate(req.Query, req.Cluster); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid placement: %v", err)
		return
	}
	sp.Stage("decode")

	groupKey, err := fingerprint(req.Query, req.Cluster)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cacheKey, err := fingerprint(req.Placement)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cacheKey = groupKey + "/" + cacheKey

	hit, ok := s.cache.get(cacheKey)
	sp.Stage("cache")
	if ok {
		w.Header().Set("X-Costream-Cache", "hit")
		s.writeJSON(w, http.StatusOK, PredictResponse{Costs: toCosts(hit)})
		return
	}
	res := s.co.predict(groupKey, req.Query, req.Cluster, req.Placement)
	sp.Stage("score")
	if res.err != nil {
		if errors.Is(res.err, ErrSaturated) {
			s.writeSaturated(w)
			return
		}
		s.writeError(w, http.StatusUnprocessableEntity, "prediction failed: %v", res.err)
		return
	}
	s.cache.add(cacheKey, res.costs)
	w.Header().Set("X-Costream-Cache", "miss")
	w.Header().Set("X-Costream-Batch-Size", fmt.Sprint(res.batchSize))
	s.writeJSON(w, http.StatusOK, PredictResponse{Costs: toCosts(res.costs)})
	sp.Stage("merge")
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	var req PredictBatchRequest
	if err := decodeRequest(r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if err := validatePair(req.Query, req.Cluster); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Placements) == 0 {
		s.writeError(w, http.StatusBadRequest, "missing placements")
		return
	}
	if len(req.Placements) > maxCandidates {
		s.writeError(w, http.StatusBadRequest, "%d placements exceeds the per-request limit of %d", len(req.Placements), maxCandidates)
		return
	}
	for i, p := range req.Placements {
		if err := p.Validate(req.Query, req.Cluster); err != nil {
			s.writeError(w, http.StatusBadRequest, "invalid placement %d: %v", i, err)
			return
		}
	}
	if err := s.acquire(); err != nil {
		s.writeSaturated(w)
		return
	}
	out, err := s.pred.PredictBatch(req.Query, req.Cluster, req.Placements)
	s.release()
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "prediction failed: %v", err)
		return
	}
	resp := PredictBatchResponse{Costs: make([]Costs, len(out))}
	for i, pc := range out {
		resp.Costs[i] = toCosts(pc)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	sp := obs.StartSpan("optimize")
	defer func() { sp.End(); s.logSpan(sp) }()
	w.Header().Set("X-Costream-Trace", sp.ID())
	var req OptimizeRequest
	if err := decodeRequest(r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if err := validatePair(req.Query, req.Cluster); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k := req.Candidates
	if k <= 0 {
		k = 16
	}
	if k > maxCandidates {
		s.writeError(w, http.StatusBadRequest, "%d candidates exceeds the per-request limit of %d", k, maxCandidates)
		return
	}
	strat, err := placement.ParseStrategy(req.Strategy)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.BeamWidth != 0 {
		if _, ok := strat.(placement.Beam); !ok {
			s.writeError(w, http.StatusBadRequest, "beam_width requires strategy %q, got %q", "beam", strat.Name())
			return
		}
		if req.BeamWidth < 0 || req.BeamWidth > k {
			s.writeError(w, http.StatusBadRequest, "beam_width %d out of range [1, %d]", req.BeamWidth, k)
			return
		}
		strat = placement.Beam{Width: req.BeamWidth}
	}
	seed := int64(DefaultOptimizeSeed)
	if req.Seed != nil {
		seed = *req.Seed
	}
	sp.Stage("decode")
	if err := s.acquire(); err != nil {
		s.writeSaturated(w)
		return
	}
	// The request context threads into the search: a disconnecting
	// client stops candidate scoring at the next batch instead of
	// burning the full budget.
	res, err := placement.SearchCtx(r.Context(), s.pred, req.Query, req.Cluster, strat, obj,
		placement.Budget{MaxCandidates: k, MaxRounds: req.Rounds},
		placement.SearchOptions{Workers: s.cfg.OptimizeWorkers, Seed: seed, Telemetry: req.Debug})
	s.release()
	sp.Stage("search")
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone; nobody reads this response.
			s.writeError(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
			return
		}
		s.writeError(w, http.StatusUnprocessableEntity, "optimization failed: %v", err)
		return
	}
	resp := OptimizeResponse{
		Placement:  res.Placement,
		Costs:      toCosts(res.Costs),
		Candidates: res.Examined,
		Filtered:   res.Filtered,
		Errored:    res.Errored,
		Strategy:   res.Strategy,
		Rounds:     res.Rounds,
		Examined:   res.Examined,
		Index:      res.Index,
		Seed:       seed,
	}
	if req.Debug {
		resp.Debug = &OptimizeDebug{TraceID: sp.ID(), Rounds: res.Telemetry}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func parseObjective(name string) (placement.Objective, error) {
	switch name {
	case "", placement.MinProcLatency.String():
		return placement.MinProcLatency, nil
	case placement.MinE2ELatency.String():
		return placement.MinE2ELatency, nil
	case placement.MaxThroughput.String():
		return placement.MaxThroughput, nil
	default:
		return 0, fmt.Errorf("unknown objective %q (want %q, %q or %q)", name,
			placement.MinProcLatency, placement.MinE2ELatency, placement.MaxThroughput)
	}
}

// buildExample renders a deterministic, ready-to-POST predict request
// drawn from the benchmark workload generator — live documentation of
// the request schema and the body the CI smoke test POSTs back.
func buildExample() ([]byte, error) {
	gen := workload.New(workload.DefaultConfig(1))
	q := gen.Query()
	c := gen.Cluster()
	p, err := placement.RandomValid(rand.New(rand.NewSource(1)), q, c)
	if err != nil {
		return nil, fmt.Errorf("serve: building example request: %w", err)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(PredictRequest{Query: q, Cluster: c, Placement: p}); err != nil {
		return nil, fmt.Errorf("serve: building example request: %w", err)
	}
	return buf.Bytes(), nil
}

func (s *Server) handleExample(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.example)
}

type healthResponse struct {
	Status  string  `json:"status"`
	UptimeS float64 `json:"uptime_s"`
	Model   any     `json:"model,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, healthResponse{
		Status:  "ok",
		UptimeS: time.Since(s.start).Seconds(),
		Model:   s.cfg.ModelInfo,
	})
}

// Stats is the /stats payload: a JSON snapshot of the same counters the
// Prometheus endpoint exposes. GET /metrics is the canonical feed for
// scraping; /stats remains as the human-friendly summary.
type Stats struct {
	UptimeS  float64        `json:"uptime_s"`
	Requests map[string]int `json:"requests"`
	Errors   int64          `json:"errors"`
	// Rejected counts requests answered 503 because the in-flight limit
	// stayed saturated past the queue timeout.
	Rejected int64         `json:"rejected"`
	Cache    CacheStats    `json:"cache"`
	Coalesce CoalesceStats `json:"coalescing"`
	// InFlight is the predictor work currently executing; MaxInFlight is
	// the semaphore bound.
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`
	// Inference reports per-path inference timings when the predictor
	// tracks them (placement.PathStatsReporter); omitted otherwise.
	Inference *InferenceStats `json:"inference,omitempty"`
}

// InferenceStats breaks predictor work down by inference path: stacked
// one-pass ensemble kernels vs the per-member fallback. Calls count
// full-ensemble evaluations; the averages are per such call.
type InferenceStats struct {
	StackedCalls  int64   `json:"stacked_calls"`
	StackedAvgUS  float64 `json:"stacked_avg_us"`
	FallbackCalls int64   `json:"fallback_calls"`
	FallbackAvgUS float64 `json:"fallback_avg_us"`
}

func newInferenceStats(ps placement.InferencePathStats) *InferenceStats {
	st := &InferenceStats{StackedCalls: ps.StackedCalls, FallbackCalls: ps.FallbackCalls}
	if ps.StackedCalls > 0 {
		st.StackedAvgUS = float64(ps.StackedNanos) / float64(ps.StackedCalls) / 1e3
	}
	if ps.FallbackCalls > 0 {
		st.FallbackAvgUS = float64(ps.FallbackNanos) / float64(ps.FallbackCalls) / 1e3
	}
	return st
}

// CacheStats describes the prediction cache.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// CoalesceStats describes request coalescing on the predict path.
type CoalesceStats struct {
	// Enqueued counts predict requests that reached the coalescer
	// (cache misses); Batches counts PredictBatch calls issued for them;
	// Coalesced counts requests that shared a batch with others.
	Enqueued  int64 `json:"enqueued"`
	Batches   int64 `json:"batches"`
	Coalesced int64 `json:"coalesced"`
}

func (s *Server) snapshotStats() Stats {
	hits, misses, evictions := s.cache.counters()
	var inference *InferenceStats
	if rep, ok := s.pred.(placement.PathStatsReporter); ok {
		inference = newInferenceStats(rep.InferencePathStats())
	}
	requests := make(map[string]int, len(routeNames))
	var errs int64
	for _, route := range routeNames {
		requests[route] = int(s.met.requests[route].Value())
		errs += s.met.errors[route].Value()
	}
	return Stats{
		UptimeS:  time.Since(s.start).Seconds(),
		Requests: requests,
		Errors:   errs,
		Rejected: s.met.rejected.Value(),
		Cache: CacheStats{
			Size:      s.cache.len(),
			Capacity:  s.cache.capacity(),
			Hits:      hits,
			Misses:    misses,
			Evictions: evictions,
		},
		Coalesce: CoalesceStats{
			Enqueued:  s.co.enqueued.Load(),
			Batches:   s.co.batches.Load(),
			Coalesced: s.co.coalesced.Load(),
		},
		InFlight:    s.inflight.Load(),
		MaxInFlight: cap(s.sem),
		Inference:   inference,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.snapshotStats())
}

package serve

import (
	"context"
	"time"

	"costream/internal/controlplane"
)

// ControlLoop drives periodic control-plane ticks against a Plane. It
// exists so costream-serve can wire the loop into graceful shutdown:
// Stop halts the ticker, cancels the in-flight tick's searches and
// waits until that tick has flushed — a migration a cancelled search
// still decided lands fully (Policy.Heal never leaves a deployment
// torn) before the caller proceeds to close the listener.
type ControlLoop struct {
	plane  *controlplane.Plane
	cancel context.CancelFunc
	done   chan struct{}
}

// StartControlLoop ticks the plane every interval until Stop.
func StartControlLoop(p *controlplane.Plane, interval time.Duration, logf func(format string, args ...any)) *ControlLoop {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &ControlLoop{plane: p, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(l.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if _, err := p.Tick(ctx); err != nil && ctx.Err() == nil {
					logf("control tick: %v", err)
				}
			}
		}
	}()
	return l
}

// Stop halts the ticker and waits for any in-flight tick to flush its
// migrations, bounded by ctx. It is idempotent.
func (l *ControlLoop) Stop(ctx context.Context) error {
	l.cancel()
	select {
	case <-l.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

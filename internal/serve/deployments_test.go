package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"costream/internal/controlplane"
	"costream/internal/hardware"
	"costream/internal/obs"
	"costream/internal/sim"
	"costream/internal/stream"
)

// echoFeed observes exactly what fakePred predicts, so q-errors stay at 1
// and deployments look healthy unless a structural violation (cordoned or
// dead host) forces the control plane's hand.
type echoFeed struct{}

func (echoFeed) Observe(q *stream.Query, c *hardware.Cluster, p sim.Placement) (*sim.Metrics, error) {
	pc := fakeCosts(p)
	return &sim.Metrics{
		ThroughputTPS: pc.ThroughputTPS,
		ProcLatencyMS: pc.ProcLatencyMS,
		E2ELatencyMS:  pc.E2ELatencyMS,
		Success:       true,
	}, nil
}

// newControlTestServer builds a server whose plane heals with echoFeed
// observations, keeping control ticks deterministic and fast.
func newControlTestServer(t testing.TB, reg *obs.Registry) *Server {
	t.Helper()
	pred := &fakePred{}
	pl, err := controlplane.New(controlplane.Config{
		Policy: controlplane.Policy{Predictor: pred},
		Feed:   echoFeed{},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return newTestServer(t, Config{Predictor: pred, ControlPlane: pl, Registry: reg})
}

func decodeStatus(t testing.TB, data []byte) controlplane.Status {
	t.Helper()
	var st controlplane.Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding status: %v: %s", err, data)
	}
	return st
}

func TestDeploymentsCRUD(t *testing.T) {
	s := newControlTestServer(t, nil)
	q, c := testQuery(t), testCluster()

	w := doJSON(t, s, http.MethodPost, "/v1/deployments", DeployRequest{ID: "q1", Query: q, Cluster: c})
	if w.Code != http.StatusOK {
		t.Fatalf("create: status %d: %s", w.Code, w.Body)
	}
	st := decodeStatus(t, w.Body.Bytes())
	if st.ID != "q1" || !st.Deployed || len(st.Placement) != q.NumOps() {
		t.Fatalf("create status = %+v", st)
	}

	if w := doJSON(t, s, http.MethodPost, "/v1/deployments", DeployRequest{ID: "q1", Query: q, Cluster: c}); w.Code != http.StatusConflict {
		t.Fatalf("duplicate: status %d, want 409", w.Code)
	}

	// Without an id the server generates one.
	w = doJSON(t, s, http.MethodPost, "/v1/deployments", DeployRequest{Query: q, Cluster: c})
	if w.Code != http.StatusOK {
		t.Fatalf("auto-id create: status %d: %s", w.Code, w.Body)
	}
	auto := decodeStatus(t, w.Body.Bytes()).ID
	if !strings.HasPrefix(auto, "dep-") {
		t.Fatalf("generated id %q", auto)
	}

	// An explicit placement is adopted as-is.
	p := sim.Placement{0, 1, 2}
	w = doJSON(t, s, http.MethodPost, "/v1/deployments", DeployRequest{ID: "pinned", Query: q, Cluster: c, Placement: p})
	if w.Code != http.StatusOK {
		t.Fatalf("adopt: status %d: %s", w.Code, w.Body)
	}
	if st := decodeStatus(t, w.Body.Bytes()); st.Placement[0] != 0 || st.Placement[1] != 1 || st.Placement[2] != 2 {
		t.Fatalf("adopted placement = %v, want %v", st.Placement, p)
	}

	w = doJSON(t, s, http.MethodGet, "/v1/deployments", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("list: status %d", w.Code)
	}
	var list struct {
		Deployments []controlplane.Status `json:"deployments"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Deployments) != 3 {
		t.Fatalf("list has %d deployments, want 3", len(list.Deployments))
	}

	if w := doJSON(t, s, http.MethodGet, "/v1/deployments/q1", nil); w.Code != http.StatusOK {
		t.Fatalf("get: status %d", w.Code)
	}
	if w := doJSON(t, s, http.MethodGet, "/v1/deployments/ghost", nil); w.Code != http.StatusNotFound {
		t.Fatalf("get ghost: status %d, want 404", w.Code)
	}
	if w := doJSON(t, s, http.MethodDelete, "/v1/deployments/q1", nil); w.Code != http.StatusOK {
		t.Fatalf("delete: status %d", w.Code)
	}
	if w := doJSON(t, s, http.MethodDelete, "/v1/deployments/q1", nil); w.Code != http.StatusNotFound {
		t.Fatalf("re-delete: status %d, want 404", w.Code)
	}
}

func TestDeployValidation(t *testing.T) {
	s := newControlTestServer(t, nil)
	q, c := testQuery(t), testCluster()
	if w := doJSON(t, s, http.MethodPost, "/v1/deployments", DeployRequest{ID: "x", Cluster: c}); w.Code != http.StatusBadRequest {
		t.Errorf("missing query: status %d, want 400", w.Code)
	}
	if w := doJSON(t, s, http.MethodPost, "/v1/deployments", DeployRequest{ID: "bad id!", Query: q, Cluster: c}); w.Code != http.StatusBadRequest {
		t.Errorf("bad id: status %d, want 400", w.Code)
	}
	if w := doJSON(t, s, http.MethodPost, "/v1/hosts/cordon", HostRequest{}); w.Code != http.StatusBadRequest {
		t.Errorf("empty host: status %d, want 400", w.Code)
	}
	if w := doJSON(t, s, http.MethodGet, "/v1/deployments/q1", nil); w.Code != http.StatusNotFound {
		t.Errorf("empty registry get: status %d, want 404", w.Code)
	}
}

// TestCordonTickMovesDeployment is the serve-layer end of the issue's
// acceptance scenario: cordoning a host a deployment sits on makes the
// next control tick re-place it off that host, visible in the deployment
// history and the tick report.
func TestCordonTickMovesDeployment(t *testing.T) {
	s := newControlTestServer(t, nil)
	q, c := testQuery(t), testCluster()
	w := doJSON(t, s, http.MethodPost, "/v1/deployments", DeployRequest{ID: "q1", Query: q, Cluster: c})
	if w.Code != http.StatusOK {
		t.Fatalf("create: %d: %s", w.Code, w.Body)
	}
	st := decodeStatus(t, w.Body.Bytes())
	victim := st.Hosts[len(st.Hosts)-1]

	w = doJSON(t, s, http.MethodPost, "/v1/hosts/cordon", HostRequest{Host: victim})
	if w.Code != http.StatusOK {
		t.Fatalf("cordon: %d: %s", w.Code, w.Body)
	}

	w = doJSON(t, s, http.MethodPost, "/v1/control/tick", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("tick: %d: %s", w.Code, w.Body)
	}
	var rep controlplane.TickReport
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 1 || rep.Migrations != 1 {
		t.Fatalf("tick report = %+v, want 1 violation and 1 migration", rep)
	}

	w = doJSON(t, s, http.MethodGet, "/v1/deployments/q1", nil)
	st = decodeStatus(t, w.Body.Bytes())
	for _, h := range st.Hosts {
		if h == victim {
			t.Fatalf("deployment still on cordoned host %s: %v", victim, st.Hosts)
		}
	}
	last := st.History[len(st.History)-1]
	if last.Violation != "cordoned-host" || last.Action != "replaced" {
		t.Fatalf("history tail = %+v, want cordoned-host/replaced", last)
	}

	// Host aggregation reflects the cordon.
	w = doJSON(t, s, http.MethodGet, "/v1/hosts", nil)
	var hosts struct {
		Hosts []controlplane.HostStatus `json:"hosts"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hosts); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hosts.Hosts {
		if h.ID == victim {
			found = true
			if !h.Cordoned || h.Deployments != 0 {
				t.Fatalf("cordoned host state = %+v", h)
			}
		}
	}
	if !found {
		t.Fatalf("host %s missing from aggregation: %+v", victim, hosts.Hosts)
	}

	if w := doJSON(t, s, http.MethodPost, "/v1/hosts/uncordon", HostRequest{Host: victim}); w.Code != http.StatusOK {
		t.Fatalf("uncordon: %d", w.Code)
	}
}

func TestDrainEndpoint(t *testing.T) {
	s := newControlTestServer(t, nil)
	q, c := testQuery(t), testCluster()
	w := doJSON(t, s, http.MethodPost, "/v1/deployments", DeployRequest{ID: "q1", Query: q, Cluster: c})
	st := decodeStatus(t, w.Body.Bytes())
	victim := st.Hosts[len(st.Hosts)-1]
	w = doJSON(t, s, http.MethodPost, "/v1/hosts/drain", HostRequest{Host: victim})
	if w.Code != http.StatusOK {
		t.Fatalf("drain: %d: %s", w.Code, w.Body)
	}
	var out struct {
		Healed []string `json:"healed"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Healed) != 1 || out.Healed[0] != "q1" {
		t.Fatalf("drain healed %v, want [q1]", out.Healed)
	}
}

// TestMetricsExposeControlPlaneFamilies: the control-plane metric
// families ride the process-wide default registry (like production serve
// without a Registry override), so /metrics must surface them.
func TestMetricsExposeControlPlaneFamilies(t *testing.T) {
	s := newControlTestServer(t, obs.Default())
	q, c := testQuery(t), testCluster()
	w := doJSON(t, s, http.MethodPost, "/v1/deployments", DeployRequest{ID: "m1", Query: q, Cluster: c})
	st := decodeStatus(t, w.Body.Bytes())
	doJSON(t, s, http.MethodPost, "/v1/hosts/cordon", HostRequest{Host: st.Hosts[0]})
	if w := doJSON(t, s, http.MethodPost, "/v1/control/tick", nil); w.Code != http.StatusOK {
		t.Fatalf("tick: %d: %s", w.Code, w.Body)
	}
	w = doJSON(t, s, http.MethodGet, "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, family := range []string{
		"costream_controlplane_deployments",
		"costream_controlplane_violations_total",
		"costream_controlplane_migrations_total",
		"costream_controlplane_suppressed_total",
		"costream_controlplane_tick_seconds",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}

// TestControlLoopStopFlushes: Stop halts the ticker before the listener
// would close — after it returns, no further ticks run and a concurrent
// tick has fully flushed (the plane lock is free).
func TestControlLoopStopFlushes(t *testing.T) {
	s := newControlTestServer(t, nil)
	q, c := testQuery(t), testCluster()
	if w := doJSON(t, s, http.MethodPost, "/v1/deployments", DeployRequest{ID: "q1", Query: q, Cluster: c}); w.Code != http.StatusOK {
		t.Fatalf("create: %d: %s", w.Code, w.Body)
	}
	pl := s.ControlPlane()
	loop := StartControlLoop(pl, 2*time.Millisecond, nil)
	deadline := time.Now().Add(5 * time.Second)
	for pl.Ticks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("loop never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := loop.Stop(ctx); err != nil {
		t.Fatalf("stop: %v", err)
	}
	ticks := pl.Ticks()
	time.Sleep(20 * time.Millisecond)
	if got := pl.Ticks(); got != ticks {
		t.Fatalf("loop still ticking after Stop: %d -> %d", ticks, got)
	}
	// The plane is fully flushed: its lock is free and state readable.
	if _, ok := pl.Get("q1"); !ok {
		t.Fatal("deployment lost across shutdown")
	}
	// Stop is idempotent.
	if err := loop.Stop(ctx); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

package serve

import (
	"net/http"
	"time"

	"costream/internal/obs"
	"costream/internal/placement"
)

// routeNames lists the stable route labels of the HTTP surface, used for
// per-route request/error/latency series and the /stats request map.
var routeNames = []string{"predict", "predict_batch", "optimize", "example", "healthz", "stats", "metrics",
	"deployments_create", "deployments_list", "deployments_get", "deployments_delete",
	"hosts", "hosts_cordon", "hosts_uncordon", "hosts_drain", "control_tick"}

// serveMetrics is the server's view into its metrics registry: per-route
// request counters and latency histograms, saturation rejections, and
// the coalescer batch-size distribution. Cache, in-flight and inference
// series are registered as Func instruments reading the live structs
// (see registerFuncs), so they need no fields here.
type serveMetrics struct {
	requests  map[string]*obs.Counter
	errors    map[string]*obs.Counter
	latency   map[string]*obs.Histogram
	rejected  *obs.Counter
	batchSize *obs.Histogram
}

func newServeMetrics(r *obs.Registry) *serveMetrics {
	m := &serveMetrics{
		requests: make(map[string]*obs.Counter, len(routeNames)),
		errors:   make(map[string]*obs.Counter, len(routeNames)),
		latency:  make(map[string]*obs.Histogram, len(routeNames)),
		rejected: r.Counter("costream_http_rejected_total",
			"requests rejected with 503 because the in-flight limit stayed saturated past the queue timeout"),
		batchSize: r.Histogram("costream_serve_coalesce_batch_size",
			"placements scored per coalesced PredictBatch call on the predict path", 1),
	}
	for _, route := range routeNames {
		m.requests[route] = r.Counter("costream_http_requests_total",
			"HTTP requests received, by route", "route", route)
		m.errors[route] = r.Counter("costream_http_errors_total",
			"HTTP responses with status >= 400, by route", "route", route)
		m.latency[route] = r.Histogram("costream_http_request_seconds",
			"HTTP request handling time, by route", 1e-9, "route", route)
	}
	return m
}

// registerFuncs exposes the server's live state through scrape-time
// callbacks. Re-registration replaces the callbacks, so the latest
// server built against a shared registry (e.g. obs.Default) wins.
func (s *Server) registerFuncs(r *obs.Registry) {
	cacheCounter := func(sel func(h, m, e int64) int64, outcome string) {
		r.CounterFunc("costream_serve_cache_ops_total",
			"prediction cache operations, by outcome", func() float64 {
				h, m, e := s.cache.counters()
				return float64(sel(h, m, e))
			}, "outcome", outcome)
	}
	cacheCounter(func(h, _, _ int64) int64 { return h }, "hit")
	cacheCounter(func(_, m, _ int64) int64 { return m }, "miss")
	cacheCounter(func(_, _, e int64) int64 { return e }, "eviction")
	r.GaugeFunc("costream_serve_cache_entries",
		"prediction cache occupancy in entries", func() float64 { return float64(s.cache.len()) })

	r.GaugeFunc("costream_serve_in_flight",
		"predictor calls currently executing", func() float64 { return float64(s.inflight.Load()) })
	r.GaugeFunc("costream_serve_max_in_flight",
		"configured bound on concurrent predictor calls", func() float64 { return float64(cap(s.sem)) })

	coalesce := func(name, help string, v func() int64) {
		r.CounterFunc(name, help, func() float64 { return float64(v()) })
	}
	coalesce("costream_serve_coalesce_enqueued_total",
		"predict requests that reached the coalescer (cache misses)", s.co.enqueued.Load)
	coalesce("costream_serve_coalesce_batches_total",
		"PredictBatch calls issued by the coalescer", s.co.batches.Load)
	coalesce("costream_serve_coalesce_coalesced_total",
		"predict requests that shared a batch with at least one other", s.co.coalesced.Load)

	if rep, ok := s.pred.(placement.PathStatsReporter); ok {
		path := func(path string, calls func(placement.InferencePathStats) int64, nanos func(placement.InferencePathStats) int64) {
			r.CounterFunc("costream_inference_path_calls_total",
				"full-ensemble evaluations, by inference path", func() float64 {
					return float64(calls(rep.InferencePathStats()))
				}, "path", path)
			r.CounterFunc("costream_inference_path_seconds_total",
				"wall time spent in full-ensemble evaluations, by inference path", func() float64 {
					return float64(nanos(rep.InferencePathStats())) * 1e-9
				}, "path", path)
		}
		path("stacked",
			func(ps placement.InferencePathStats) int64 { return ps.StackedCalls },
			func(ps placement.InferencePathStats) int64 { return ps.StackedNanos })
		path("fallback",
			func(ps placement.InferencePathStats) int64 { return ps.FallbackCalls },
			func(ps placement.InferencePathStats) int64 { return ps.FallbackNanos })
	}
}

// statusRecorder captures the response status for per-route error
// counting without changing handler code.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// route wraps a handler with the per-route instrumentation: request
// counter, latency histogram, and error counter on status >= 400.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs, errs, lat := s.met.requests[name], s.met.errors[name], s.met.latency[name]
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sr, r)
		lat.Since(start)
		if sr.status >= 400 {
			errs.Inc()
		}
	}
}

package serve

import (
	"errors"
	"fmt"
	"net/http"

	"costream/internal/controlplane"
	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// Control-plane surface: deployment CRUD, host cordon/drain state and
// the manually triggered control tick. Registry mutations run outside
// the in-flight semaphore — the plane has its own lock and its searches
// are budgeted, so admission control for the prediction hot path does
// not interleave with control decisions.

// DeployRequest registers one query for continuous placement control.
// Query/cluster/placement use the /v1/predict shapes, so a /v1/example
// body plus an id deploys directly. A present placement is adopted
// as-is (validated, priced, no search); an absent one is searched fresh
// under the control plane's policy.
type DeployRequest struct {
	ID        string            `json:"id,omitempty"`
	Query     *stream.Query     `json:"query"`
	Cluster   *hardware.Cluster `json:"cluster"`
	Placement sim.Placement     `json:"placement,omitempty"`
}

// HostRequest names one host for cordon/uncordon/drain. Host IDs may
// contain path separators (e.g. "edge-a/host-001"), so the host rides
// in the body rather than the URL path.
type HostRequest struct {
	Host string `json:"host"`
}

func (s *Server) handleDeployCreate(w http.ResponseWriter, r *http.Request) {
	var req DeployRequest
	if err := decodeRequest(r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if err := validatePair(req.Query, req.Cluster); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := req.ID
	if id == "" {
		id = s.nextDeploymentID()
	}
	st, err := s.plane.Deploy(r.Context(), id, req.Query, req.Cluster, req.Placement)
	if err != nil {
		var dup *controlplane.DuplicateError
		if errors.As(err, &dup) {
			s.writeError(w, http.StatusConflict, "%v", err)
			return
		}
		if r.Context().Err() != nil {
			s.writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDeployList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"deployments": s.plane.List()})
}

func (s *Server) handleDeployGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.plane.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no deployment %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDeployDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.plane.Evict(id) {
		s.writeError(w, http.StatusNotFound, "no deployment %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"evicted": id})
}

func (s *Server) handleHosts(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"hosts": s.plane.Hosts()})
}

func (s *Server) decodeHost(w http.ResponseWriter, r *http.Request) (string, bool) {
	var req HostRequest
	if err := decodeRequest(r, &req); err != nil {
		s.writeDecodeError(w, err)
		return "", false
	}
	if req.Host == "" {
		s.writeError(w, http.StatusBadRequest, `"host" is required`)
		return "", false
	}
	return req.Host, true
}

func (s *Server) handleHostCordon(w http.ResponseWriter, r *http.Request) {
	host, ok := s.decodeHost(w, r)
	if !ok {
		return
	}
	changed := s.plane.Cordon(host)
	s.writeJSON(w, http.StatusOK, map[string]any{"host": host, "cordoned": true, "changed": changed})
}

func (s *Server) handleHostUncordon(w http.ResponseWriter, r *http.Request) {
	host, ok := s.decodeHost(w, r)
	if !ok {
		return
	}
	changed := s.plane.Uncordon(host)
	s.writeJSON(w, http.StatusOK, map[string]any{"host": host, "cordoned": false, "changed": changed})
}

func (s *Server) handleHostDrain(w http.ResponseWriter, r *http.Request) {
	host, ok := s.decodeHost(w, r)
	if !ok {
		return
	}
	healed, err := s.plane.Drain(r.Context(), host)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "drain %s: %v", host, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"host": host, "cordoned": true, "healed": healed})
}

func (s *Server) handleControlTick(w http.ResponseWriter, r *http.Request) {
	rep, err := s.plane.Tick(r.Context())
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, "control tick: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// nextDeploymentID generates a fresh id for DeployRequests without one.
func (s *Server) nextDeploymentID() string {
	for {
		id := fmt.Sprintf("dep-%03d", s.deploySeq.Add(1))
		if _, ok := s.plane.Get(id); !ok {
			return id
		}
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/hardware"
	"costream/internal/obs"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
	"costream/internal/workload"
)

// fakePred is a deterministic BatchPredictor: costs are a pure function
// of the placement, so handler tests can verify exact outputs without
// training a model. It records batch call sizes for coalescing checks.
type fakePred struct {
	delay time.Duration

	mu         sync.Mutex
	batchSizes []int
	batchCalls atomic.Int64
	err        error
}

func fakeCosts(p sim.Placement) placement.PredCosts {
	s := 0.0
	for i, h := range p {
		s += float64((i + 1) * (h + 1))
	}
	return placement.PredCosts{
		ThroughputTPS: 1000 + s,
		ProcLatencyMS: 10 + s,
		E2ELatencyMS:  20 + s,
		Success:       true,
	}
}

func (f *fakePred) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (placement.PredCosts, error) {
	if f.err != nil {
		return placement.PredCosts{}, f.err
	}
	return fakeCosts(p), nil
}

func (f *fakePred) PredictBatch(q *stream.Query, c *hardware.Cluster, ps []sim.Placement) ([]placement.PredCosts, error) {
	f.batchCalls.Add(1)
	f.mu.Lock()
	f.batchSizes = append(f.batchSizes, len(ps))
	f.mu.Unlock()
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.err != nil {
		return nil, f.err
	}
	out := make([]placement.PredCosts, len(ps))
	for i, p := range ps {
		out[i] = fakeCosts(p)
	}
	return out, nil
}

func testQuery(t testing.TB) *stream.Query {
	t.Helper()
	b := stream.NewBuilder()
	src := b.AddSource(1000, []stream.DataType{stream.TypeInt, stream.TypeDouble})
	f := b.AddFilter(stream.FilterGT, stream.TypeInt, 0.5)
	sink := b.AddSink()
	b.Chain(src, f, sink)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func testCluster() *hardware.Cluster {
	return &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "edge", CPU: 100, RAMMB: 2000, NetLatencyMS: 40, NetBandwidthMbps: 100},
		{ID: "fog", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
		{ID: "cloud", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Predictor == nil {
		cfg.Predictor = &fakePred{}
	}
	// Isolate each test server's metrics: the process-wide default
	// registry would accumulate counts across tests that assert exact
	// values.
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func doJSON(t testing.TB, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestPredictHandler(t *testing.T) {
	s := newTestServer(t, Config{})
	q, c := testQuery(t), testCluster()
	p := sim.Placement{0, 1, 2}
	w := doJSON(t, s, http.MethodPost, "/v1/predict", PredictRequest{Query: q, Cluster: c, Placement: p})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := toCosts(fakeCosts(p))
	if resp.Costs != want {
		t.Errorf("costs %+v, want %+v", resp.Costs, want)
	}
	if got := w.Header().Get("X-Costream-Cache"); got != "miss" {
		t.Errorf("cache header %q, want miss", got)
	}
}

func TestPredictValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	q, c := testQuery(t), testCluster()
	cases := map[string]any{
		"missing query":     PredictRequest{Cluster: c, Placement: sim.Placement{0, 1, 2}},
		"missing cluster":   PredictRequest{Query: q, Placement: sim.Placement{0, 1, 2}},
		"short placement":   PredictRequest{Query: q, Cluster: c, Placement: sim.Placement{0}},
		"host out of range": PredictRequest{Query: q, Cluster: c, Placement: sim.Placement{0, 1, 9}},
	}
	for name, body := range cases {
		if w := doJSON(t, s, http.MethodPost, "/v1/predict", body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, w.Code)
		}
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader([]byte("{not json")))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", w.Code)
	}

	req = httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader([]byte(`{"queryy":{}}`)))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", w.Code)
	}

	if w := doJSON(t, s, http.MethodGet, "/v1/predict", nil); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: status %d, want 405", w.Code)
	}
	if w := doJSON(t, s, http.MethodGet, "/nope", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", w.Code)
	}
}

func TestPredictErrorsAreUnprocessable(t *testing.T) {
	s := newTestServer(t, Config{Predictor: &fakePred{err: fmt.Errorf("boom")}})
	body := PredictRequest{Query: testQuery(t), Cluster: testCluster(), Placement: sim.Placement{0, 1, 2}}
	if w := doJSON(t, s, http.MethodPost, "/v1/predict", body); w.Code != http.StatusUnprocessableEntity {
		t.Errorf("status %d, want 422", w.Code)
	}
}

// TestCacheHitEquivalence is the cache acceptance check: the cached
// response must be byte-identical to the cold-path response.
func TestCacheHitEquivalence(t *testing.T) {
	s := newTestServer(t, Config{})
	body := PredictRequest{Query: testQuery(t), Cluster: testCluster(), Placement: sim.Placement{0, 1, 2}}

	cold := doJSON(t, s, http.MethodPost, "/v1/predict", body)
	warm := doJSON(t, s, http.MethodPost, "/v1/predict", body)
	if cold.Code != http.StatusOK || warm.Code != http.StatusOK {
		t.Fatalf("status %d / %d", cold.Code, warm.Code)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Errorf("cached response differs from cold path:\ncold: %s\nwarm: %s", cold.Body, warm.Body)
	}
	if got := cold.Header().Get("X-Costream-Cache"); got != "miss" {
		t.Errorf("first request cache header %q, want miss", got)
	}
	if got := warm.Header().Get("X-Costream-Cache"); got != "hit" {
		t.Errorf("second request cache header %q, want hit", got)
	}
	hits, misses, _ := s.cache.counters()
	if hits != 1 || misses != 1 {
		t.Errorf("cache counters hits=%d misses=%d, want 1/1", hits, misses)
	}

	// A different placement is a different key.
	body.Placement = sim.Placement{0, 0, 1}
	if w := doJSON(t, s, http.MethodPost, "/v1/predict", body); w.Header().Get("X-Costream-Cache") != "miss" {
		t.Error("distinct placement served from cache")
	}
}

func TestCacheDisabled(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: -1})
	body := PredictRequest{Query: testQuery(t), Cluster: testCluster(), Placement: sim.Placement{0, 1, 2}}
	doJSON(t, s, http.MethodPost, "/v1/predict", body)
	if w := doJSON(t, s, http.MethodPost, "/v1/predict", body); w.Header().Get("X-Costream-Cache") != "miss" {
		t.Error("disabled cache returned a hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	c.add("a", placement.PredCosts{ProcLatencyMS: 1})
	c.add("b", placement.PredCosts{ProcLatencyMS: 2})
	if _, ok := c.get("a"); !ok { // touch a -> b becomes LRU
		t.Fatal("a missing")
	}
	c.add("c", placement.PredCosts{ProcLatencyMS: 3})
	if _, ok := c.get("b"); ok {
		t.Error("LRU entry b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently used entry a evicted")
	}
	if c.len() != 2 {
		t.Errorf("len %d, want 2", c.len())
	}
}

func TestPredictBatchHandler(t *testing.T) {
	s := newTestServer(t, Config{})
	q, c := testQuery(t), testCluster()
	ps := []sim.Placement{{0, 1, 2}, {0, 0, 1}, {1, 1, 2}}
	w := doJSON(t, s, http.MethodPost, "/v1/predict-batch", PredictBatchRequest{Query: q, Cluster: c, Placements: ps})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp PredictBatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Costs) != len(ps) {
		t.Fatalf("%d costs, want %d", len(resp.Costs), len(ps))
	}
	for i, p := range ps {
		if resp.Costs[i] != toCosts(fakeCosts(p)) {
			t.Errorf("batch %d: %+v", i, resp.Costs[i])
		}
	}
	if w := doJSON(t, s, http.MethodPost, "/v1/predict-batch",
		PredictBatchRequest{Query: q, Cluster: c}); w.Code != http.StatusBadRequest {
		t.Errorf("empty placements: status %d, want 400", w.Code)
	}
}

func seedPtr(v int64) *int64 { return &v }

func TestOptimizeHandler(t *testing.T) {
	s := newTestServer(t, Config{})
	q, c := testQuery(t), testCluster()
	w := doJSON(t, s, http.MethodPost, "/v1/optimize", OptimizeRequest{
		Query: q, Cluster: c, Candidates: 8, Objective: "min-processing-latency", Seed: seedPtr(3),
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp OptimizeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if err := resp.Placement.Validate(q, c); err != nil {
		t.Errorf("returned placement invalid: %v", err)
	}
	if resp.Candidates <= 0 {
		t.Errorf("candidates %d", resp.Candidates)
	}
	if resp.Costs != toCosts(fakeCosts(resp.Placement)) {
		t.Errorf("costs %+v do not match the returned placement", resp.Costs)
	}
	if resp.Strategy != "random" {
		t.Errorf("strategy %q, want default random", resp.Strategy)
	}
	if resp.Seed != 3 {
		t.Errorf("seed %d, want echoed 3", resp.Seed)
	}
	if resp.Examined != resp.Candidates {
		t.Errorf("examined %d != candidates %d", resp.Examined, resp.Candidates)
	}
	if resp.Index < 0 || resp.Index >= resp.Examined {
		t.Errorf("index %d out of range [0, %d)", resp.Index, resp.Examined)
	}
	if resp.Rounds <= 0 {
		t.Errorf("rounds %d, want positive", resp.Rounds)
	}

	// Determinism: same request, same answer.
	w2 := doJSON(t, s, http.MethodPost, "/v1/optimize", OptimizeRequest{
		Query: q, Cluster: c, Candidates: 8, Objective: "min-processing-latency", Seed: seedPtr(3),
	})
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("same optimize request produced different responses")
	}

	if w := doJSON(t, s, http.MethodPost, "/v1/optimize", OptimizeRequest{
		Query: q, Cluster: c, Objective: "make-it-fast",
	}); w.Code != http.StatusBadRequest {
		t.Errorf("bad objective: status %d, want 400", w.Code)
	}
}

// TestOptimizeStrategies drives each search strategy through the handler
// and checks the new response fields.
func TestOptimizeStrategies(t *testing.T) {
	s := newTestServer(t, Config{})
	q, c := testQuery(t), testCluster()
	for _, strat := range []string{"random", "exhaustive", "beam", "local-search"} {
		req := OptimizeRequest{
			Query: q, Cluster: c, Candidates: 16, Strategy: strat, Seed: seedPtr(5),
		}
		if strat == "beam" {
			req.BeamWidth = 3
		}
		w := doJSON(t, s, http.MethodPost, "/v1/optimize", req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", strat, w.Code, w.Body)
		}
		var resp OptimizeResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Strategy != strat {
			t.Errorf("strategy %q, want %q", resp.Strategy, strat)
		}
		if err := resp.Placement.Validate(q, c); err != nil {
			t.Errorf("%s: invalid placement: %v", strat, err)
		}
		if resp.Examined <= 0 || resp.Examined > 16 {
			t.Errorf("%s: examined %d outside (0, 16]", strat, resp.Examined)
		}
	}

	if w := doJSON(t, s, http.MethodPost, "/v1/optimize", OptimizeRequest{
		Query: q, Cluster: c, Strategy: "quantum-annealing",
	}); w.Code != http.StatusBadRequest {
		t.Errorf("unknown strategy: status %d, want 400", w.Code)
	}
	if w := doJSON(t, s, http.MethodPost, "/v1/optimize", OptimizeRequest{
		Query: q, Cluster: c, Strategy: "random", BeamWidth: 4,
	}); w.Code != http.StatusBadRequest {
		t.Errorf("beam_width with non-beam strategy: status %d, want 400", w.Code)
	}
}

// TestOptimizeSeedHandling: an omitted seed selects the documented
// default, while an explicit zero seed is honored rather than rewritten.
func TestOptimizeSeedHandling(t *testing.T) {
	s := newTestServer(t, Config{})
	q, c := testQuery(t), testCluster()
	run := func(req OptimizeRequest) OptimizeResponse {
		t.Helper()
		w := doJSON(t, s, http.MethodPost, "/v1/optimize", req)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body)
		}
		var resp OptimizeResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	omitted := run(OptimizeRequest{Query: q, Cluster: c, Candidates: 8})
	if omitted.Seed != DefaultOptimizeSeed {
		t.Errorf("omitted seed: effective %d, want default %d", omitted.Seed, DefaultOptimizeSeed)
	}
	zero := run(OptimizeRequest{Query: q, Cluster: c, Candidates: 8, Seed: seedPtr(0)})
	if zero.Seed != 0 {
		t.Errorf("explicit zero seed rewritten to %d", zero.Seed)
	}
	zero2 := run(OptimizeRequest{Query: q, Cluster: c, Candidates: 8, Seed: seedPtr(0)})
	if !jsonEqual(t, zero, zero2) {
		t.Error("zero-seed requests are not deterministic")
	}
}

func jsonEqual(t *testing.T, a, b any) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ja, jb)
}

// TestRequestWorkLimits: a single request cannot buy unbounded
// enumeration or scoring work — oversized candidate counts are rejected
// before any allocation and before the in-flight semaphore.
func TestRequestWorkLimits(t *testing.T) {
	s := newTestServer(t, Config{})
	q, c := testQuery(t), testCluster()
	if w := doJSON(t, s, http.MethodPost, "/v1/optimize", OptimizeRequest{
		Query: q, Cluster: c, Candidates: 2_000_000_000,
	}); w.Code != http.StatusBadRequest {
		t.Errorf("oversized optimize: status %d, want 400", w.Code)
	}
	ps := make([]sim.Placement, maxCandidates+1)
	for i := range ps {
		ps[i] = sim.Placement{0, 1, 2}
	}
	if w := doJSON(t, s, http.MethodPost, "/v1/predict-batch", PredictBatchRequest{
		Query: q, Cluster: c, Placements: ps,
	}); w.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", w.Code)
	}
}

func TestExampleRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	w := doJSON(t, s, http.MethodGet, "/v1/example", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("example status %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(w.Body.Bytes()))
	w2 := httptest.NewRecorder()
	s.ServeHTTP(w2, req)
	if w2.Code != http.StatusOK {
		t.Fatalf("POSTing the example back failed: %d %s", w2.Code, w2.Body)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s := newTestServer(t, Config{ModelInfo: map[string]string{"note": "test"}})
	w := doJSON(t, s, http.MethodGet, "/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz status %d", w.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}

	doJSON(t, s, http.MethodPost, "/v1/predict",
		PredictRequest{Query: testQuery(t), Cluster: testCluster(), Placement: sim.Placement{0, 1, 2}})
	w = doJSON(t, s, http.MethodGet, "/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats status %d", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests["predict"] != 1 || st.Requests["healthz"] != 1 {
		t.Errorf("request counters %+v", st.Requests)
	}
	if st.Coalesce.Enqueued != 1 || st.Coalesce.Batches != 1 {
		t.Errorf("coalesce counters %+v", st.Coalesce)
	}
	if st.MaxInFlight <= 0 {
		t.Errorf("max in-flight %d", st.MaxInFlight)
	}
	if st.Inference != nil {
		t.Errorf("inference stats %+v from a predictor that reports none", st.Inference)
	}
}

// pathStatsPred wraps fakePred with canned inference-path counters, as a
// stacked-ensemble predictor would report them.
type pathStatsPred struct{ fakePred }

func (p *pathStatsPred) InferencePathStats() placement.InferencePathStats {
	return placement.InferencePathStats{
		StackedCalls: 8, StackedNanos: 16_000,
		FallbackCalls: 2, FallbackNanos: 9_000,
	}
}

// TestStatsInferencePaths checks that /stats surfaces per-path inference
// timings when the predictor tracks them.
func TestStatsInferencePaths(t *testing.T) {
	s := newTestServer(t, Config{Predictor: &pathStatsPred{}})
	w := doJSON(t, s, http.MethodGet, "/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats status %d", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Inference == nil {
		t.Fatal("no inference stanza from a PathStatsReporter predictor")
	}
	if st.Inference.StackedCalls != 8 || st.Inference.FallbackCalls != 2 {
		t.Errorf("inference calls %+v", st.Inference)
	}
	if st.Inference.StackedAvgUS != 2 || st.Inference.FallbackAvgUS != 4.5 {
		t.Errorf("inference averages %+v", st.Inference)
	}
}

// TestCoalescerBatchesConcurrentRequests drives the coalescer directly
// with a blocking batch function so the grouping is deterministic: the
// first request becomes leader and blocks in PredictBatch; everything
// arriving meanwhile must be scored together in exactly one second batch.
func TestCoalescerBatchesConcurrentRequests(t *testing.T) {
	const followers = 8
	entered := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	var mu sync.Mutex
	var sizes []int

	co := newCoalescer(
		func(q *stream.Query, c *hardware.Cluster, ps []sim.Placement) ([]placement.PredCosts, error) {
			n := calls.Add(1)
			mu.Lock()
			sizes = append(sizes, len(ps))
			mu.Unlock()
			if n == 1 {
				close(entered)
				<-release
			}
			out := make([]placement.PredCosts, len(ps))
			for i, p := range ps {
				out[i] = fakeCosts(p)
			}
			return out, nil
		},
		func(q *stream.Query, c *hardware.Cluster, p sim.Placement) (placement.PredCosts, error) {
			t.Error("single-candidate fallback should not run")
			return fakeCosts(p), nil
		},
		0,
	)

	var wg sync.WaitGroup
	results := make([]predictResult, followers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0] = co.predict("k", nil, nil, sim.Placement{0, 0, 0})
	}()
	<-entered // leader is now blocked inside PredictBatch

	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = co.predict("k", nil, nil, sim.Placement{0, 0, i})
		}(i)
	}
	// Wait until every follower has enqueued, then unblock the leader.
	for co.enqueued.Load() < followers+1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		want := fakeCosts(sim.Placement{0, 0, i})
		if i == 0 {
			want = fakeCosts(sim.Placement{0, 0, 0})
		}
		if r.costs != want {
			t.Errorf("request %d: costs %+v, want %+v", i, r.costs, want)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("batch calls %d, want 2 (leader alone + one coalesced batch)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != followers {
		t.Errorf("batch sizes %v, want [1 %d]", sizes, followers)
	}
	if co.coalesced.Load() != followers {
		t.Errorf("coalesced %d, want %d", co.coalesced.Load(), followers)
	}
}

// TestCoalescerCapsBatchSize: queued requests beyond maxBatch are not
// drained in one oversized PredictBatch call; they wait for the next
// iteration, keeping per-call work bounded like the HTTP endpoints.
func TestCoalescerCapsBatchSize(t *testing.T) {
	const followers, maxBatch = 9, 4
	entered := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	var mu sync.Mutex
	var sizes []int

	co := newCoalescer(
		func(q *stream.Query, c *hardware.Cluster, ps []sim.Placement) ([]placement.PredCosts, error) {
			if calls.Add(1) == 1 {
				close(entered)
				<-release
			}
			mu.Lock()
			sizes = append(sizes, len(ps))
			mu.Unlock()
			out := make([]placement.PredCosts, len(ps))
			for i, p := range ps {
				out[i] = fakeCosts(p)
			}
			return out, nil
		},
		func(q *stream.Query, c *hardware.Cluster, p sim.Placement) (placement.PredCosts, error) {
			return fakeCosts(p), nil
		},
		maxBatch,
	)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if r := co.predict("k", nil, nil, sim.Placement{0, 0, 0}); r.err != nil {
			t.Error(r.err)
		}
	}()
	<-entered
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if r := co.predict("k", nil, nil, sim.Placement{0, 0, i}); r.err != nil {
				t.Error(r.err)
			} else if want := fakeCosts(sim.Placement{0, 0, i}); r.costs != want {
				t.Errorf("request %d: costs %+v, want %+v", i, r.costs, want)
			}
		}(i)
	}
	for co.enqueued.Load() < followers+1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for i, n := range sizes {
		if n > maxBatch {
			t.Errorf("batch %d scored %d placements, cap is %d (sizes %v)", i, n, maxBatch, sizes)
		}
	}
	total := 0
	for _, n := range sizes {
		total += n
	}
	if total != followers+1 {
		t.Errorf("scored %d placements across %v, want %d", total, sizes, followers+1)
	}
}

// TestCoalescerIsolatesBatchFailure: when a batch errors as a whole, each
// member is re-scored alone so one bad request cannot poison the others.
func TestCoalescerIsolatesBatchFailure(t *testing.T) {
	co := newCoalescer(
		func(q *stream.Query, c *hardware.Cluster, ps []sim.Placement) ([]placement.PredCosts, error) {
			return nil, fmt.Errorf("batch exploded")
		},
		func(q *stream.Query, c *hardware.Cluster, p sim.Placement) (placement.PredCosts, error) {
			if p[0] == 9 {
				return placement.PredCosts{}, fmt.Errorf("bad placement")
			}
			return fakeCosts(p), nil
		},
		0,
	)
	good := co.predict("k", nil, nil, sim.Placement{0, 1, 2})
	if good.err != nil || good.costs != fakeCosts(sim.Placement{0, 1, 2}) {
		t.Errorf("good request after batch failure: %+v", good)
	}
	bad := co.predict("k", nil, nil, sim.Placement{9, 0, 0})
	if bad.err == nil {
		t.Error("bad request succeeded")
	}
}

// TestConcurrentPredictRace hammers the full HTTP path from many
// goroutines (run with -race): every response must match the
// deterministic fake, and coalescing must never issue more batch calls
// than requests.
func TestConcurrentPredictRace(t *testing.T) {
	s := newTestServer(t, Config{Predictor: &fakePred{delay: 2 * time.Millisecond}, CacheSize: 64, MaxInFlight: 4})
	q, c := testQuery(t), testCluster()

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := sim.Placement{i % 3, (i / 3) % 3, 2}
			w := doJSON(t, s, http.MethodPost, "/v1/predict", PredictRequest{Query: q, Cluster: c, Placement: p})
			if w.Code != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %s", i, w.Code, w.Body)
				return
			}
			var resp PredictResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				errs <- err
				return
			}
			if want := toCosts(fakeCosts(p)); resp.Costs != want {
				errs <- fmt.Errorf("client %d: %+v != %+v", i, resp.Costs, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.snapshotStats()
	if st.Requests["predict"] != clients {
		t.Errorf("predict requests %d, want %d", st.Requests["predict"], clients)
	}
	hits, _, _ := s.cache.counters()
	if got := st.Coalesce.Enqueued + hits; got != clients {
		t.Errorf("enqueued(%d) + cache hits(%d) = %d, want %d", st.Coalesce.Enqueued, hits, got, clients)
	}
	if st.Coalesce.Batches > st.Coalesce.Enqueued {
		t.Errorf("more batches (%d) than enqueued requests (%d)", st.Coalesce.Batches, st.Coalesce.Enqueued)
	}
}

// TestServeMatchesDirectPredictions checks the acceptance criterion
// end-to-end with a real trained model: HTTP responses carry exactly the
// library's predictions (float64s survive the JSON round trip bit-for-bit).
func TestServeMatchesDirectPredictions(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	simCfg := sim.DefaultConfig()
	simCfg.DurationS, simCfg.WarmupS = 30, 5
	corpus, err := dataset.Build(dataset.BuildConfig{
		N: 100, Seed: 11, Gen: workload.DefaultConfig(11), Sim: simCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, val, _ := corpus.Split(0.7, 0.1, 11)
	cfg := core.DefaultTrainConfig(11)
	cfg.Epochs, cfg.Patience, cfg.Hidden = 1, 0, 8
	pred, err := core.TrainPredictor(train, val, core.PredictorConfig{Train: cfg, EnsembleSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Predictor: pred})

	for i, tr := range corpus.Traces[:10] {
		want, err := pred.PredictPlacement(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			t.Fatal(err)
		}
		w := doJSON(t, s, http.MethodPost, "/v1/predict",
			PredictRequest{Query: tr.Query, Cluster: tr.Cluster, Placement: tr.Placement})
		if w.Code != http.StatusOK {
			t.Fatalf("trace %d: status %d: %s", i, w.Code, w.Body)
		}
		var resp PredictResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Costs != toCosts(want) {
			t.Errorf("trace %d: served %+v != direct %+v", i, resp.Costs, toCosts(want))
		}
	}
}

func TestNewRequiresPredictor(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil predictor accepted")
	}
}

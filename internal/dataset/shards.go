// Sharded corpus store: a directory of gzip-compressed JSONL shard files
// plus a JSON manifest. The format exists for production-scale corpora
// (hundreds of thousands of traces) where the monolithic .json.gz layout
// makes generation un-resumable and loading the memory ceiling of
// training:
//
//   - StreamBuild writes shards as workers finish them, so a crashed or
//     interrupted generation run resumes by rebuilding only the missing
//     shards (the per-trace seed derivation is identical to Build, so a
//     sharded build of N traces equals Build(N) trace-for-trace no matter
//     how it was interleaved, resumed or parallelized).
//   - Store.Iter streams traces one at a time straight off the gzip
//     readers — O(1) traces of memory regardless of corpus size.
//   - Merge concatenates stores (e.g. per-scenario builds) into one.
package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// ManifestMagic identifies a COSTREAM corpus manifest.
const ManifestMagic = "costream-corpus"

// ManifestVersion is the current manifest format version. Readers reject
// other versions rather than guessing at layouts.
const ManifestVersion = 1

// ManifestName is the manifest's file name inside a store directory.
const ManifestName = "manifest.json"

// ShardMeta describes one completed shard.
type ShardMeta struct {
	// Name is the shard's file name within the store directory.
	Name string `json:"name"`
	// Index is the shard's position: shard k holds the traces
	// [k*ShardSize, min((k+1)*ShardSize, N)).
	Index int `json:"index"`
	// Start is the global index of the shard's first trace.
	Start int `json:"start"`
	// Count is the number of traces in the shard.
	Count int `json:"count"`
	// Stats summarizes the shard's label distribution.
	Stats Stats `json:"stats"`
}

// Manifest is the store's metadata document. It is rewritten atomically
// after every completed shard, so it always describes exactly the shards
// that exist on disk.
type Manifest struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// Seed is the corpus generation seed (BuildConfig.Seed).
	Seed int64 `json:"seed"`
	// Scenario names the corpus recipe (see internal/scenario); empty for
	// ad-hoc builds.
	Scenario string `json:"scenario,omitempty"`
	// SimDurationS is the simulated measurement window per trace
	// (BuildConfig.Sim.DurationS) — part of the recipe, so resumed builds
	// must match it for old and new shards to agree.
	SimDurationS float64 `json:"sim_duration_s,omitempty"`
	// N is the total number of traces the corpus targets. Shards may still
	// be missing (an interrupted build); Store.Complete reports that.
	N int `json:"n"`
	// ShardSize is the number of traces per shard (the last shard may be
	// smaller).
	ShardSize int `json:"shard_size"`
	// Shards lists the completed shards, sorted by Index.
	Shards []ShardMeta `json:"shards"`
}

// NumShards returns the total shard count implied by N and ShardSize.
func (m *Manifest) NumShards() int {
	if m.ShardSize <= 0 {
		return 0
	}
	return (m.N + m.ShardSize - 1) / m.ShardSize
}

// shardName returns the canonical file name of shard k.
func shardName(k int) string { return fmt.Sprintf("shard-%05d.jsonl.gz", k) }

// Store is a sharded corpus directory opened for reading or resuming.
type Store struct {
	// Dir is the store directory.
	Dir string
	// Manifest is the store's metadata as read from disk (or as last
	// written by StreamBuild).
	Manifest Manifest
}

// OpenStore opens a sharded corpus directory by reading its manifest.
func OpenStore(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("dataset: opening corpus store %s: %w", dir, err)
	}
	m, err := ParseManifest(data)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", dir, err)
	}
	return &Store{Dir: dir, Manifest: *m}, nil
}

// ParseManifest parses and validates a manifest document. Arbitrary
// bytes never panic; every rejection names the offending field.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		var typeErr *json.UnmarshalTypeError
		if errors.As(err, &typeErr) && typeErr.Field != "" {
			return nil, fmt.Errorf("malformed manifest field %s: %w", typeErr.Field, err)
		}
		return nil, fmt.Errorf("malformed manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].Index < m.Shards[j].Index })
	return &m, nil
}

// Validate checks the manifest's structural invariants; errors name the
// offending field.
func (m *Manifest) Validate() error {
	if m.Magic != ManifestMagic {
		return fmt.Errorf("manifest field magic: %q is not a costream corpus store (want %q)", m.Magic, ManifestMagic)
	}
	if m.Version != ManifestVersion {
		return fmt.Errorf("manifest field version: %d not readable by this build (want %d)", m.Version, ManifestVersion)
	}
	if m.N < 0 {
		return fmt.Errorf("manifest field n: negative trace count %d", m.N)
	}
	if m.ShardSize < 0 {
		return fmt.Errorf("manifest field shard_size: negative %d", m.ShardSize)
	}
	seenIdx := make(map[int]bool, len(m.Shards))
	seenName := make(map[string]bool, len(m.Shards))
	for i, sh := range m.Shards {
		field := func(f string) string { return fmt.Sprintf("manifest field shards[%d].%s", i, f) }
		if sh.Name == "" {
			return fmt.Errorf("%s: empty shard file name", field("name"))
		}
		// Shard names are joined onto the store directory: reject path
		// separators and traversal so a hostile manifest cannot read or
		// overwrite files outside the store.
		if sh.Name != filepath.Base(sh.Name) || sh.Name == ".." || sh.Name == "." {
			return fmt.Errorf("%s: %q must be a bare file name", field("name"), sh.Name)
		}
		if seenName[sh.Name] {
			return fmt.Errorf("%s: duplicate shard file %q", field("name"), sh.Name)
		}
		seenName[sh.Name] = true
		if sh.Index < 0 {
			return fmt.Errorf("%s: negative shard index %d", field("index"), sh.Index)
		}
		if seenIdx[sh.Index] {
			return fmt.Errorf("%s: duplicate shard index %d", field("index"), sh.Index)
		}
		seenIdx[sh.Index] = true
		if sh.Start < 0 {
			return fmt.Errorf("%s: negative start %d", field("start"), sh.Start)
		}
		if sh.Count < 0 {
			return fmt.Errorf("%s: negative count %d", field("count"), sh.Count)
		}
		if sh.Start > m.N || sh.Start+sh.Count > m.N {
			return fmt.Errorf("%s: traces [%d, %d) exceed the corpus size %d", field("start"), sh.Start, sh.Start+sh.Count, m.N)
		}
	}
	return nil
}

// IsStore reports whether path is a sharded corpus directory (it exists,
// is a directory, and contains a manifest file).
func IsStore(path string) bool {
	if fi, err := os.Stat(path); err != nil || !fi.IsDir() {
		return false
	}
	fi, err := os.Stat(filepath.Join(path, ManifestName))
	return err == nil && !fi.IsDir()
}

// Open sniffs the corpus layout at path and opens it: a directory with a
// manifest loads as a streaming Store, anything else as a legacy
// monolithic corpus file (gzip or plain JSON, materialized in memory).
func Open(path string) (Source, error) {
	if IsStore(path) {
		return OpenStore(path)
	}
	return Load(path)
}

// Count implements Source: the number of traces the corpus targets.
func (s *Store) Count() int { return s.Manifest.N }

// tiles reports whether the manifest's shards cover [0, N) contiguously.
// Stores written by StreamBuild always tile when complete; merged stores
// tile with heterogeneous shard sizes (the nominal ShardSize does not
// describe their geometry).
func (s *Store) tiles() bool {
	next := 0
	for _, sh := range s.Manifest.Shards {
		if sh.Start != next || sh.Count <= 0 {
			return false
		}
		next += sh.Count
	}
	return next == s.Manifest.N
}

// Missing returns the indices of shards an interrupted StreamBuild has
// not written yet; empty means the store is complete. Completeness is
// contiguous coverage of [0, N), so merged stores whose shard sizes vary
// are complete too; the index computation for the incomplete case uses
// the k*ShardSize build geometry, which is the only way an incomplete
// store arises.
func (s *Store) Missing() []int {
	if s.tiles() {
		return nil
	}
	have := make(map[int]bool, len(s.Manifest.Shards))
	for _, sh := range s.Manifest.Shards {
		have[sh.Index] = true
	}
	var missing []int
	for k := 0; k < s.Manifest.NumShards(); k++ {
		if !have[k] {
			missing = append(missing, k)
		}
	}
	return missing
}

// Complete reports whether every shard is present.
func (s *Store) Complete() bool { return len(s.Missing()) == 0 }

// Iter implements Source: it streams every trace in global index order,
// decoding one trace at a time off the shard's gzip stream — memory stays
// O(1) traces regardless of corpus size. It fails if a shard is missing
// (resume the build first) or a shard holds a different trace count than
// its manifest entry claims.
func (s *Store) Iter(fn func(i int, tr *Trace) error) error {
	if missing := s.Missing(); len(missing) > 0 {
		return fmt.Errorf("dataset: corpus store %s is incomplete (%d of %d shards missing; resume the build)",
			s.Dir, len(missing), s.Manifest.NumShards())
	}
	for _, sh := range s.Manifest.Shards {
		if err := s.iterShard(sh, fn); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) iterShard(sh ShardMeta, fn func(i int, tr *Trace) error) error {
	path := filepath.Join(s.Dir, sh.Name)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: opening shard: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return fmt.Errorf("dataset: shard %s is not gzip data: %w", path, err)
	}
	defer zr.Close()
	dec := json.NewDecoder(zr)
	for n := 0; ; n++ {
		tr := &Trace{}
		if err := dec.Decode(tr); err == io.EOF {
			if n != sh.Count {
				return fmt.Errorf("dataset: shard %s holds %d traces, manifest says %d", path, n, sh.Count)
			}
			return nil
		} else if err != nil {
			return fmt.Errorf("dataset: decoding shard %s trace %d: %w", path, n, err)
		}
		if n >= sh.Count {
			return fmt.Errorf("dataset: shard %s holds more traces than the manifest's %d", path, sh.Count)
		}
		if err := fn(sh.Start+n, tr); err != nil {
			return err
		}
	}
}

// Load materializes the whole store into an in-memory Corpus. Prefer Iter
// for large corpora.
func (s *Store) Load() (*Corpus, error) {
	c := &Corpus{Traces: make([]*Trace, 0, s.Count())}
	err := s.Iter(func(i int, tr *Trace) error {
		c.Traces = append(c.Traces, tr)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Summarize aggregates the per-shard label stats recorded in the manifest
// without touching the shard files. Medians are trace-count-weighted means
// of the shard medians (exact medians would need the full value streams).
func (s *Store) Summarize() Stats {
	var out Stats
	var succ float64
	for _, sh := range s.Manifest.Shards {
		n := float64(sh.Count)
		out.N += sh.Count
		out.SuccessRate += sh.Stats.SuccessRate * n
		out.BackpressRate += sh.Stats.BackpressRate * n
		out.CrashRate += sh.Stats.CrashRate * n
		sn := sh.Stats.SuccessRate * n
		succ += sn
		out.MedianT += sh.Stats.MedianT * sn
		out.MedianLpMS += sh.Stats.MedianLpMS * sn
		out.MedianLeMS += sh.Stats.MedianLeMS * sn
	}
	if out.N > 0 {
		n := float64(out.N)
		out.SuccessRate /= n
		out.BackpressRate /= n
		out.CrashRate /= n
	}
	if succ > 0 {
		out.MedianT /= succ
		out.MedianLpMS /= succ
		out.MedianLeMS /= succ
	}
	return out
}

// StreamConfig parameterizes StreamBuild on top of a BuildConfig.
type StreamConfig struct {
	// Dir is the store directory; created if absent.
	Dir string
	// ShardSize is the number of traces per shard. For a fresh build it
	// must be positive; when resuming it defaults to (and must match) the
	// existing manifest's.
	ShardSize int
	// Scenario names the corpus recipe, recorded in the manifest.
	Scenario string
	// Resume keeps shards already listed in the manifest and builds only
	// the missing ones. Growing BuildConfig.N over the manifest's appends
	// new shards; the seed and shard size must match the manifest.
	Resume bool
	// Progress, when set, receives a line per completed shard.
	Progress func(format string, args ...any)
}

// StreamBuild generates a sharded corpus: traces are built in parallel
// (BuildConfig.Parallelism workers) and each shard is written — atomically,
// temp file + rename — as soon as its last trace finishes, followed by a
// manifest update. Every trace derives its generator and simulator seeds
// exactly as Build does, so the resulting corpus is trace-for-trace
// identical to Build(cfg) with the same BuildConfig, and a resumed or
// appended build is indistinguishable from a fresh one.
func StreamBuild(cfg BuildConfig, sc StreamConfig) (*Store, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("dataset: N must be positive")
	}
	if sc.Dir == "" {
		return nil, fmt.Errorf("dataset: StreamConfig.Dir must be set")
	}
	if err := os.MkdirAll(sc.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: creating store %s: %w", sc.Dir, err)
	}
	logf := sc.Progress
	if logf == nil {
		logf = func(string, ...any) {}
	}

	man := Manifest{
		Magic:        ManifestMagic,
		Version:      ManifestVersion,
		Seed:         cfg.Seed,
		Scenario:     sc.Scenario,
		SimDurationS: cfg.Sim.DurationS,
		N:            cfg.N,
		ShardSize:    sc.ShardSize,
	}
	if sc.Resume {
		if prev, err := OpenStore(sc.Dir); err == nil {
			if prev.Manifest.Seed != cfg.Seed {
				return nil, fmt.Errorf("dataset: resume seed mismatch: store %s was built with seed %d, got %d",
					sc.Dir, prev.Manifest.Seed, cfg.Seed)
			}
			if prev.Manifest.SimDurationS != 0 && prev.Manifest.SimDurationS != cfg.Sim.DurationS {
				return nil, fmt.Errorf("dataset: resume sim-duration mismatch: store %s was built with %gs windows, got %gs",
					sc.Dir, prev.Manifest.SimDurationS, cfg.Sim.DurationS)
			}
			if sc.ShardSize != 0 && sc.ShardSize != prev.Manifest.ShardSize {
				return nil, fmt.Errorf("dataset: resume shard-size mismatch: store %s uses %d, got %d",
					sc.Dir, prev.Manifest.ShardSize, sc.ShardSize)
			}
			if sc.Scenario != "" && prev.Manifest.Scenario != "" && sc.Scenario != prev.Manifest.Scenario {
				return nil, fmt.Errorf("dataset: resume scenario mismatch: store %s holds %q, got %q",
					sc.Dir, prev.Manifest.Scenario, sc.Scenario)
			}
			man.ShardSize = prev.Manifest.ShardSize
			if man.Scenario == "" {
				man.Scenario = prev.Manifest.Scenario
			}
			if cfg.N < prev.Manifest.N {
				return nil, fmt.Errorf("dataset: resume cannot shrink the corpus: store %s targets %d traces, got %d",
					sc.Dir, prev.Manifest.N, cfg.N)
			}
			// A resumable store's shards all sit on the k*ShardSize grid
			// of its own manifest (only the final shard of prev.N may be
			// partial). Anything else was produced by Merge: rebuilding
			// its shards would silently overwrite the merged traces with
			// seed-derived ones, so refuse instead.
			for _, sh := range prev.Manifest.Shards {
				start := sh.Index * prev.Manifest.ShardSize
				want := min(start+prev.Manifest.ShardSize, prev.Manifest.N) - start
				if sh.Start != start || sh.Count != want {
					return nil, fmt.Errorf("dataset: store %s shard %s (start %d, %d traces) is off the shard-size-%d grid (a merged store?); it cannot be resumed or appended to",
						sc.Dir, sh.Name, sh.Start, sh.Count, prev.Manifest.ShardSize)
				}
			}
			// Keep only shards whose files still exist, whose trace count
			// matches what their index requires under the (possibly grown)
			// corpus, and whose bytes actually decode to that count —
			// anything else (a previously-final partial shard that
			// appending made interior, or a shard torn by a crash or disk
			// fault mid-write) is logged and rebuilt instead of poisoning
			// later reads.
			for _, sh := range prev.Manifest.Shards {
				start := sh.Index * man.ShardSize
				want := min(start+man.ShardSize, man.N) - start
				if sh.Index >= man.NumShards() || sh.Count != want || sh.Start != start {
					continue
				}
				if err := verifyShard(sc.Dir, sh); err != nil {
					logf("shard %s failed verification (%v); rebuilding it", sh.Name, err)
					continue
				}
				man.Shards = append(man.Shards, sh)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	if man.ShardSize <= 0 {
		return nil, fmt.Errorf("dataset: StreamConfig.ShardSize must be positive for a fresh build")
	}

	st := &Store{Dir: sc.Dir, Manifest: man}
	missing := st.Missing()
	if len(missing) == 0 {
		logf("store %s already complete (%d traces in %d shards)", sc.Dir, man.N, man.NumShards())
		return st, writeManifest(sc.Dir, &st.Manifest)
	}
	logf("building %d of %d shards (%d traces, shard size %d)", len(missing), man.NumShards(), man.N, man.ShardSize)

	// Shard completion tracking: per-shard trace buffers filled by the
	// trace workers; the worker that completes a shard's last trace writes
	// the shard and updates the manifest.
	type pending struct {
		traces    []*Trace
		remaining int
	}
	pend := make(map[int]*pending, len(missing))
	var todo []int // global trace indices to build
	for _, k := range missing {
		start := k * man.ShardSize
		end := min(start+man.ShardSize, man.N)
		pend[k] = &pending{traces: make([]*Trace, end-start), remaining: end - start}
		for i := start; i < end; i++ {
			todo = append(todo, i)
		}
	}

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		mu       sync.Mutex // guards pend, st.Manifest and firstErr
		firstErr error
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
	)
	for _, i := range todo {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			mu.Lock()
			abort := firstErr != nil
			mu.Unlock()
			if abort {
				return
			}
			tr, err := buildOne(cfg, i)
			k := i / man.ShardSize
			mu.Lock()
			if firstErr != nil {
				mu.Unlock()
				return
			}
			if err != nil {
				firstErr = fmt.Errorf("dataset: trace %d: %w", i, err)
				mu.Unlock()
				return
			}
			p := pend[k]
			p.traces[i-k*man.ShardSize] = tr
			p.remaining--
			if p.remaining > 0 {
				mu.Unlock()
				return
			}
			// Shard complete: detach its trace buffer and write it outside
			// the lock so other workers keep generating; only the manifest
			// update is serialized.
			delete(pend, k)
			traces := p.traces
			mu.Unlock()

			meta, err := writeShard(sc.Dir, k, k*man.ShardSize, traces)

			mu.Lock()
			defer mu.Unlock()
			if firstErr != nil {
				return
			}
			if err != nil {
				firstErr = err
				return
			}
			st.Manifest.Shards = append(st.Manifest.Shards, meta)
			sort.Slice(st.Manifest.Shards, func(a, b int) bool {
				return st.Manifest.Shards[a].Index < st.Manifest.Shards[b].Index
			})
			if err := writeManifest(sc.Dir, &st.Manifest); err != nil {
				firstErr = err
				return
			}
			logf("shard %s done (%d/%d shards, %d traces)", meta.Name, len(st.Manifest.Shards), st.Manifest.NumShards(), meta.Count)
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return st, nil
}

// verifyShard checks that a shard's on-disk bytes are a complete gzip
// stream holding exactly the manifest's trace count. Lines decode as
// raw JSON values (no Trace unmarshal), so verification costs little
// more than a gunzip; it catches truncation (a build killed mid-write,
// a torn rename) and byte corruption, both of which gzip's framing and
// CRC surface as decode errors.
func verifyShard(dir string, sh ShardMeta) error {
	f, err := os.Open(filepath.Join(dir, sh.Name))
	if err != nil {
		return err
	}
	defer f.Close()
	zr, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return fmt.Errorf("not gzip data: %w", err)
	}
	defer zr.Close()
	dec := json.NewDecoder(zr)
	n := 0
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("trace %d does not decode: %w", n, err)
		}
		n++
	}
	if n != sh.Count {
		return fmt.Errorf("holds %d traces, manifest says %d", n, sh.Count)
	}
	return nil
}

// writeShard persists one shard as gzip JSONL (one trace per line),
// atomically, and returns its manifest entry.
func writeShard(dir string, index, start int, traces []*Trace) (ShardMeta, error) {
	meta := ShardMeta{
		Name:  shardName(index),
		Index: index,
		Start: start,
		Count: len(traces),
		Stats: (&Corpus{Traces: traces}).Summarize(),
	}
	path := filepath.Join(dir, meta.Name)
	err := atomicWrite(path, func(w io.Writer) error {
		zw := gzip.NewWriter(w)
		enc := json.NewEncoder(zw)
		for _, tr := range traces {
			if err := enc.Encode(tr); err != nil {
				return fmt.Errorf("dataset: encoding shard %s: %w", path, err)
			}
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("dataset: encoding shard %s: %w", path, err)
		}
		return nil
	})
	if err != nil {
		return ShardMeta{}, err
	}
	return meta, nil
}

// writeManifest persists the manifest atomically.
func writeManifest(dir string, m *Manifest) error {
	return atomicWrite(filepath.Join(dir, ManifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m); err != nil {
			return fmt.Errorf("dataset: encoding manifest: %w", err)
		}
		return nil
	})
}

// Merge concatenates complete source stores into a new store at dst, in
// argument order: shard files are copied verbatim and renumbered, global
// trace indices rebased, and per-shard stats preserved. The merged
// manifest keeps the seed and scenario only when all sources agree
// (otherwise 0 / "merged"), and adopts the first source's shard size as
// the nominal one (per-shard counts are authoritative).
func Merge(dst string, srcs ...*Store) (*Store, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("dataset: Merge needs at least one source store")
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: creating store %s: %w", dst, err)
	}
	man := Manifest{
		Magic:        ManifestMagic,
		Version:      ManifestVersion,
		Seed:         srcs[0].Manifest.Seed,
		Scenario:     srcs[0].Manifest.Scenario,
		SimDurationS: srcs[0].Manifest.SimDurationS,
		ShardSize:    srcs[0].Manifest.ShardSize,
	}
	for _, s := range srcs[1:] {
		if s.Manifest.Seed != man.Seed {
			man.Seed = 0
		}
		if s.Manifest.Scenario != man.Scenario {
			man.Scenario = "merged"
		}
		if s.Manifest.SimDurationS != man.SimDurationS {
			man.SimDurationS = 0
		}
	}
	next := 0
	for _, s := range srcs {
		if !s.Complete() {
			return nil, fmt.Errorf("dataset: Merge source %s is incomplete", s.Dir)
		}
		for _, sh := range s.Manifest.Shards {
			meta := sh
			meta.Index = next
			meta.Name = shardName(next)
			meta.Start = man.N
			if err := copyFile(filepath.Join(dst, meta.Name), filepath.Join(s.Dir, sh.Name)); err != nil {
				return nil, err
			}
			man.Shards = append(man.Shards, meta)
			man.N += sh.Count
			next++
		}
	}
	if err := writeManifest(dst, &man); err != nil {
		return nil, err
	}
	return &Store{Dir: dst, Manifest: man}, nil
}

func copyFile(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("dataset: merging shard: %w", err)
	}
	defer in.Close()
	return atomicWrite(dst, func(w io.Writer) error {
		if _, err := io.Copy(w, in); err != nil {
			return fmt.Errorf("dataset: merging shard %s: %w", src, err)
		}
		return nil
	})
}

package dataset

import (
	"path/filepath"
	"testing"

	"costream/internal/sim"
	"costream/internal/stream"
	"costream/internal/workload"
)

func buildCfg(n int, seed int64) BuildConfig {
	simCfg := sim.DefaultConfig()
	simCfg.DurationS, simCfg.WarmupS = 20, 4
	return BuildConfig{
		N:    n,
		Seed: seed,
		Gen:  workload.DefaultConfig(seed),
		Sim:  simCfg,
	}
}

func TestBuildCorpus(t *testing.T) {
	c, err := Build(buildCfg(60, 1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 60 {
		t.Fatalf("Len = %d, want 60", c.Len())
	}
	for i, tr := range c.Traces {
		if tr.Query == nil || tr.Cluster == nil || tr.Metrics == nil {
			t.Fatalf("trace %d incomplete", i)
		}
		if err := tr.Placement.Validate(tr.Query, tr.Cluster); err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
	}
	st := c.Summarize()
	if st.SuccessRate <= 0.3 {
		t.Errorf("success rate %v suspiciously low", st.SuccessRate)
	}
	if st.SuccessRate > 0.999 {
		t.Log("note: no failing traces in this small corpus")
	}
}

func TestBuildDeterministicAcrossParallelism(t *testing.T) {
	cfg1 := buildCfg(20, 7)
	cfg1.Parallelism = 1
	cfg2 := buildCfg(20, 7)
	cfg2.Parallelism = 8
	c1, err := Build(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Build(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1.Traces {
		m1, m2 := c1.Traces[i].Metrics, c2.Traces[i].Metrics
		if m1.ThroughputTPS != m2.ThroughputTPS || m1.ProcLatencyMS != m2.ProcLatencyMS {
			t.Fatalf("trace %d differs across parallelism: %v vs %v", i, m1, m2)
		}
	}
}

func TestSplitFractions(t *testing.T) {
	c, err := Build(buildCfg(100, 2))
	if err != nil {
		t.Fatal(err)
	}
	train, val, test := c.Split(0.8, 0.1, 3)
	if train.Len() != 80 || val.Len() != 10 || test.Len() != 10 {
		t.Fatalf("split sizes %d/%d/%d, want 80/10/10", train.Len(), val.Len(), test.Len())
	}
	// Disjointness by pointer identity.
	seen := map[*Trace]bool{}
	for _, s := range []*Corpus{train, val, test} {
		for _, tr := range s.Traces {
			if seen[tr] {
				t.Fatal("trace appears in two splits")
			}
			seen[tr] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("splits cover %d traces, want 100", len(seen))
	}
}

func TestBalanced(t *testing.T) {
	c, err := Build(buildCfg(80, 3))
	if err != nil {
		t.Fatal(err)
	}
	label := func(tr *Trace) bool { return tr.Metrics.Backpressured }
	b := c.Balanced(label, 4)
	pos, neg := 0, 0
	for _, tr := range b.Traces {
		if label(tr) {
			pos++
		} else {
			neg++
		}
	}
	if pos != neg {
		t.Errorf("balanced subset has %d pos, %d neg", pos, neg)
	}
}

func TestSuccessfulFilter(t *testing.T) {
	c, err := Build(buildCfg(60, 4))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Successful()
	for _, tr := range s.Traces {
		if !tr.Metrics.Success {
			t.Fatal("Successful returned a failed trace")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c, err := Build(buildCfg(15, 5))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.json.gz")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("loaded %d traces, want %d", c2.Len(), c.Len())
	}
	for i := range c.Traces {
		a, b := c.Traces[i], c2.Traces[i]
		if a.Metrics.ThroughputTPS != b.Metrics.ThroughputTPS {
			t.Fatalf("trace %d throughput differs after round trip", i)
		}
		if len(a.Query.Ops) != len(b.Query.Ops) {
			t.Fatalf("trace %d query differs after round trip", i)
		}
		for j := range a.Query.Ops {
			oa, ob := a.Query.Ops[j], b.Query.Ops[j]
			if oa.Type != ob.Type || oa.Selectivity != ob.Selectivity {
				t.Fatalf("trace %d op %d differs", i, j)
			}
			if (oa.Window == nil) != (ob.Window == nil) {
				t.Fatalf("trace %d op %d window presence differs", i, j)
			}
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json.gz")); err == nil {
		t.Error("loading missing file must fail")
	}
}

func TestQueryFnOverride(t *testing.T) {
	cfg := buildCfg(10, 6)
	cfg.QueryFn = func(g *workload.Generator, i int) *stream.Query {
		return g.FilterChain(3)
	}
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range c.Traces {
		if tr.Query.CountType(stream.OpFilter) != 3 {
			t.Fatal("QueryFn not honored")
		}
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(BuildConfig{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var c Corpus
	st := c.Summarize()
	if st.N != 0 || st.SuccessRate != 0 {
		t.Error("empty corpus summary must be zero")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v, want 2", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %v, want 2.5", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median nil = %v, want 0", m)
	}
}

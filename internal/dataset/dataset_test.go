package dataset

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"costream/internal/sim"
	"costream/internal/stream"
	"costream/internal/workload"
)

func buildCfg(n int, seed int64) BuildConfig {
	simCfg := sim.DefaultConfig()
	simCfg.DurationS, simCfg.WarmupS = 20, 4
	return BuildConfig{
		N:    n,
		Seed: seed,
		Gen:  workload.DefaultConfig(seed),
		Sim:  simCfg,
	}
}

func TestBuildCorpus(t *testing.T) {
	c, err := Build(buildCfg(60, 1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 60 {
		t.Fatalf("Len = %d, want 60", c.Len())
	}
	for i, tr := range c.Traces {
		if tr.Query == nil || tr.Cluster == nil || tr.Metrics == nil {
			t.Fatalf("trace %d incomplete", i)
		}
		if err := tr.Placement.Validate(tr.Query, tr.Cluster); err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
	}
	st := c.Summarize()
	if st.SuccessRate <= 0.3 {
		t.Errorf("success rate %v suspiciously low", st.SuccessRate)
	}
	if st.SuccessRate > 0.999 {
		t.Log("note: no failing traces in this small corpus")
	}
}

func TestBuildDeterministicAcrossParallelism(t *testing.T) {
	cfg1 := buildCfg(20, 7)
	cfg1.Parallelism = 1
	cfg2 := buildCfg(20, 7)
	cfg2.Parallelism = 8
	c1, err := Build(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Build(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1.Traces {
		m1, m2 := c1.Traces[i].Metrics, c2.Traces[i].Metrics
		if m1.ThroughputTPS != m2.ThroughputTPS || m1.ProcLatencyMS != m2.ProcLatencyMS {
			t.Fatalf("trace %d differs across parallelism: %v vs %v", i, m1, m2)
		}
	}
}

func TestSplitFractions(t *testing.T) {
	c, err := Build(buildCfg(100, 2))
	if err != nil {
		t.Fatal(err)
	}
	train, val, test := c.Split(0.8, 0.1, 3)
	if train.Len() != 80 || val.Len() != 10 || test.Len() != 10 {
		t.Fatalf("split sizes %d/%d/%d, want 80/10/10", train.Len(), val.Len(), test.Len())
	}
	// Disjointness by pointer identity.
	seen := map[*Trace]bool{}
	for _, s := range []*Corpus{train, val, test} {
		for _, tr := range s.Traces {
			if seen[tr] {
				t.Fatal("trace appears in two splits")
			}
			seen[tr] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("splits cover %d traces, want 100", len(seen))
	}
}

func TestBalanced(t *testing.T) {
	c, err := Build(buildCfg(80, 3))
	if err != nil {
		t.Fatal(err)
	}
	label := func(tr *Trace) bool { return tr.Metrics.Backpressured }
	b := c.Balanced(label, 4)
	pos, neg := 0, 0
	for _, tr := range b.Traces {
		if label(tr) {
			pos++
		} else {
			neg++
		}
	}
	if pos != neg {
		t.Errorf("balanced subset has %d pos, %d neg", pos, neg)
	}
}

// TestBalancedShuffled is the regression test for the label-sorted
// Balanced bug: the subset must not be all positives followed by all
// negatives, so consumers that batch or truncate see mixed labels.
func TestBalancedShuffled(t *testing.T) {
	c := &Corpus{}
	for i := 0; i < 200; i++ {
		c.Traces = append(c.Traces, &Trace{Metrics: &sim.Metrics{Backpressured: i%2 == 0}})
	}
	label := func(tr *Trace) bool { return tr.Metrics.Backpressured }
	b := c.Balanced(label, 4)
	if b.Len() != 200 {
		t.Fatalf("balanced len %d, want 200", b.Len())
	}
	// The first half must not be label-pure: count positives in it.
	pos := 0
	for _, tr := range b.Traces[:b.Len()/2] {
		if label(tr) {
			pos++
		}
	}
	if pos == 0 || pos == b.Len()/2 {
		t.Fatalf("first half of balanced subset is label-pure (%d/%d positive): no final shuffle", pos, b.Len()/2)
	}
	// Determinism in the seed.
	b2 := c.Balanced(label, 4)
	for i := range b.Traces {
		if b.Traces[i] != b2.Traces[i] {
			t.Fatal("Balanced not deterministic for a fixed seed")
		}
	}
}

func TestSplitIndicesMatchesSplit(t *testing.T) {
	c, err := Build(buildCfg(50, 9))
	if err != nil {
		t.Fatal(err)
	}
	train, val, test := c.Split(0.8, 0.1, 12)
	ti, vi, si := SplitIndices(50, 0.8, 0.1, 12)
	check := func(name string, sub *Corpus, idx []int) {
		t.Helper()
		if sub.Len() != len(idx) {
			t.Fatalf("%s: %d traces vs %d indices", name, sub.Len(), len(idx))
		}
		for k, j := range idx {
			if sub.Traces[k] != c.Traces[j] {
				t.Fatalf("%s: position %d is not source trace %d", name, k, j)
			}
		}
	}
	check("train", train, ti)
	check("val", val, vi)
	check("test", test, si)
}

// TestSaveAtomic locks in crash-safe semantics: an existing corpus file is
// never clobbered by a failed write, and Save leaves no temp debris.
func TestSaveAtomic(t *testing.T) {
	c, err := Build(buildCfg(5, 8))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.json.gz")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("Save left %d files in the directory, want 1 (no temp debris)", len(entries))
	}
	// A save into an unwritable location must fail without touching the
	// existing file.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(filepath.Join(dir, "missing-subdir", "x.json.gz")); err == nil {
		t.Fatal("save into a missing directory must fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed save corrupted an unrelated existing file")
	}
}

// TestLoadSniffsPlainJSON verifies Load handles both gzip and uncompressed
// corpus files, like artifact.Load.
func TestLoadSniffsPlainJSON(t *testing.T) {
	c, err := Build(buildCfg(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	gz := filepath.Join(t.TempDir(), "c.json.gz")
	if err := c.Save(gz); err != nil {
		t.Fatal(err)
	}
	// Decompress by loading and re-marshaling through the plain path.
	loaded, err := Load(gz)
	if err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(t.TempDir(), "c.json")
	data := encodeJSON(t, loaded)
	if err := os.WriteFile(plain, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(plain)
	if err != nil {
		t.Fatalf("plain JSON corpus rejected: %v", err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("plain load got %d traces, want %d", c2.Len(), c.Len())
	}
}

func TestSuccessfulFilter(t *testing.T) {
	c, err := Build(buildCfg(60, 4))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Successful()
	for _, tr := range s.Traces {
		if !tr.Metrics.Success {
			t.Fatal("Successful returned a failed trace")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c, err := Build(buildCfg(15, 5))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.json.gz")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("loaded %d traces, want %d", c2.Len(), c.Len())
	}
	for i := range c.Traces {
		a, b := c.Traces[i], c2.Traces[i]
		if a.Metrics.ThroughputTPS != b.Metrics.ThroughputTPS {
			t.Fatalf("trace %d throughput differs after round trip", i)
		}
		if len(a.Query.Ops) != len(b.Query.Ops) {
			t.Fatalf("trace %d query differs after round trip", i)
		}
		for j := range a.Query.Ops {
			oa, ob := a.Query.Ops[j], b.Query.Ops[j]
			if oa.Type != ob.Type || oa.Selectivity != ob.Selectivity {
				t.Fatalf("trace %d op %d differs", i, j)
			}
			if (oa.Window == nil) != (ob.Window == nil) {
				t.Fatalf("trace %d op %d window presence differs", i, j)
			}
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json.gz")); err == nil {
		t.Error("loading missing file must fail")
	}
}

func TestQueryFnOverride(t *testing.T) {
	cfg := buildCfg(10, 6)
	cfg.QueryFn = func(g *workload.Generator, i int) *stream.Query {
		return g.FilterChain(3)
	}
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range c.Traces {
		if tr.Query.CountType(stream.OpFilter) != 3 {
			t.Fatal("QueryFn not honored")
		}
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(BuildConfig{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var c Corpus
	st := c.Summarize()
	if st.N != 0 || st.SuccessRate != 0 {
		t.Error("empty corpus summary must be zero")
	}
}

func encodeJSON(t *testing.T, c *Corpus) []byte {
	t.Helper()
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// syntheticCorpus builds a corpus of n traces with metrics only, enough
// for Summarize/Balanced benchmarks without running the simulator.
func syntheticCorpus(n int, seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{Traces: make([]*Trace, n)}
	for i := range c.Traces {
		c.Traces[i] = &Trace{Metrics: &sim.Metrics{
			Success:       rng.Float64() < 0.8,
			Backpressured: rng.Float64() < 0.3,
			ThroughputTPS: rng.Float64() * 1000,
			ProcLatencyMS: rng.Float64() * 50,
			E2ELatencyMS:  rng.Float64() * 200,
		}}
	}
	return c
}

// BenchmarkSummarize guards the O(n log n) median: the previous insertion
// sort made a 100k-trace summary do ~10^10 comparisons.
func BenchmarkSummarize(b *testing.B) {
	c := syntheticCorpus(100_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Summarize()
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v, want 2", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %v, want 2.5", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median nil = %v, want 0", m)
	}
}

package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveToBadPath(t *testing.T) {
	c := &Corpus{}
	if err := c.Save(filepath.Join(t.TempDir(), "missing-dir", "x.json.gz")); err == nil {
		t.Error("saving into a missing directory must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json.gz")
	if err := os.WriteFile(path, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("garbage file accepted")
	}
}

func TestBalancedSingleClass(t *testing.T) {
	c, err := Build(buildCfg(20, 31))
	if err != nil {
		t.Fatal(err)
	}
	// A label that is constant over the corpus yields an empty balanced
	// subset (no pairs to form).
	b := c.Balanced(func(tr *Trace) bool { return true }, 1)
	if b.Len() != 0 {
		t.Errorf("single-class balanced subset has %d traces, want 0", b.Len())
	}
}

func TestFilterComposes(t *testing.T) {
	c, err := Build(buildCfg(30, 32))
	if err != nil {
		t.Fatal(err)
	}
	joins := c.Filter(func(tr *Trace) bool { return len(tr.Query.Ops) > 4 })
	for _, tr := range joins.Traces {
		if len(tr.Query.Ops) <= 4 {
			t.Fatal("Filter returned non-matching trace")
		}
	}
	none := joins.Filter(func(tr *Trace) bool { return false })
	if none.Len() != 0 {
		t.Error("empty filter must return empty corpus")
	}
}

func TestSplitDegenerateFractions(t *testing.T) {
	c, err := Build(buildCfg(10, 33))
	if err != nil {
		t.Fatal(err)
	}
	train, val, test := c.Split(1.0, 0, 1)
	if train.Len() != 10 || val.Len() != 0 || test.Len() != 0 {
		t.Errorf("all-train split got %d/%d/%d", train.Len(), val.Len(), test.Len())
	}
	train, val, test = c.Split(0, 0, 1)
	if train.Len() != 0 || val.Len() != 0 || test.Len() != 10 {
		t.Errorf("all-test split got %d/%d/%d", train.Len(), val.Len(), test.Len())
	}
}

func TestSplitSeedChangesAssignment(t *testing.T) {
	c, err := Build(buildCfg(40, 34))
	if err != nil {
		t.Fatal(err)
	}
	t1, _, _ := c.Split(0.5, 0.25, 1)
	t2, _, _ := c.Split(0.5, 0.25, 2)
	same := true
	for i := range t1.Traces {
		if t1.Traces[i] != t2.Traces[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different split seeds produced identical train sets")
	}
}

package dataset

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// equalTraces asserts two traces carry the same query shape, placement and
// measured metrics (the fields that define corpus identity).
func equalTraces(t *testing.T, i int, a, b *Trace) {
	t.Helper()
	if len(a.Query.Ops) != len(b.Query.Ops) {
		t.Fatalf("trace %d: op count %d vs %d", i, len(a.Query.Ops), len(b.Query.Ops))
	}
	if len(a.Placement) != len(b.Placement) {
		t.Fatalf("trace %d: placement length differs", i)
	}
	for j := range a.Placement {
		if a.Placement[j] != b.Placement[j] {
			t.Fatalf("trace %d: placement[%d] = %d vs %d", i, j, a.Placement[j], b.Placement[j])
		}
	}
	am, bm := a.Metrics, b.Metrics
	if am.ThroughputTPS != bm.ThroughputTPS || am.ProcLatencyMS != bm.ProcLatencyMS ||
		am.E2ELatencyMS != bm.E2ELatencyMS || am.Success != bm.Success ||
		am.Backpressured != bm.Backpressured || am.Crashed != bm.Crashed {
		t.Fatalf("trace %d: metrics differ: %+v vs %+v", i, am, bm)
	}
}

func TestStreamBuildMatchesBuild(t *testing.T) {
	cfg := buildCfg(23, 11)
	want, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := StreamBuild(cfg, StreamConfig{Dir: dir, ShardSize: 5, Scenario: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Complete() {
		t.Fatal("fresh StreamBuild left missing shards")
	}
	if st.Manifest.NumShards() != 5 {
		t.Fatalf("NumShards = %d, want 5", st.Manifest.NumShards())
	}
	got := 0
	err = st.Iter(func(i int, tr *Trace) error {
		if i != got {
			t.Fatalf("Iter index %d, want %d (global order broken)", i, got)
		}
		equalTraces(t, i, want.Traces[i], tr)
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg.N {
		t.Fatalf("Iter visited %d traces, want %d", got, cfg.N)
	}
	// Reopening reads the same manifest.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Count() != cfg.N || st2.Manifest.Seed != cfg.Seed || st2.Manifest.Scenario != "test" {
		t.Fatalf("reopened manifest differs: %+v", st2.Manifest)
	}
	// Per-shard metadata adds up.
	total := 0
	for k, sh := range st2.Manifest.Shards {
		if sh.Index != k || sh.Start != total {
			t.Fatalf("shard %d: index/start %d/%d, want %d/%d", k, sh.Index, sh.Start, k, total)
		}
		if sh.Stats.N != sh.Count {
			t.Fatalf("shard %d: stats over %d traces, want %d", k, sh.Stats.N, sh.Count)
		}
		total += sh.Count
	}
	if total != cfg.N {
		t.Fatalf("shard counts sum to %d, want %d", total, cfg.N)
	}
}

func TestStreamBuildResumeRebuildsOnlyMissing(t *testing.T) {
	cfg := buildCfg(18, 13)
	dir := t.TempDir()
	st, err := StreamBuild(cfg, StreamConfig{Dir: dir, ShardSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that lost the last shard: delete its file and its
	// manifest entry.
	lost := st.Manifest.Shards[len(st.Manifest.Shards)-1]
	if err := os.Remove(filepath.Join(dir, lost.Name)); err != nil {
		t.Fatal(err)
	}
	st.Manifest.Shards = st.Manifest.Shards[:len(st.Manifest.Shards)-1]
	if err := writeManifest(dir, &st.Manifest); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Missing(); len(got) != 1 || got[0] != lost.Index {
		t.Fatalf("Missing = %v, want [%d]", got, lost.Index)
	}
	if _, err := re.Load(); err == nil {
		t.Fatal("loading an incomplete store must fail")
	}

	// Resume: untouched shard files must not be rewritten (same mtime),
	// the lost one must reappear with identical content.
	kept := filepath.Join(dir, st.Manifest.Shards[0].Name)
	before, err := os.Stat(kept)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := StreamBuild(cfg, StreamConfig{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(kept)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("resume rewrote a shard that was already present")
	}
	got, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Traces {
		equalTraces(t, i, want.Traces[i], got.Traces[i])
	}
}

func TestStreamBuildResumeMismatchRejected(t *testing.T) {
	cfg := buildCfg(8, 3)
	dir := t.TempDir()
	if _, err := StreamBuild(cfg, StreamConfig{Dir: dir, ShardSize: 4, Scenario: "a"}); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Seed = 99
	if _, err := StreamBuild(bad, StreamConfig{Dir: dir, Resume: true}); err == nil {
		t.Error("resume with a different seed accepted")
	}
	if _, err := StreamBuild(cfg, StreamConfig{Dir: dir, ShardSize: 3, Resume: true}); err == nil {
		t.Error("resume with a different shard size accepted")
	}
	if _, err := StreamBuild(cfg, StreamConfig{Dir: dir, Scenario: "b", Resume: true}); err == nil {
		t.Error("resume with a different scenario accepted")
	}
	smaller := cfg
	smaller.N = 4
	if _, err := StreamBuild(smaller, StreamConfig{Dir: dir, Resume: true}); err == nil {
		t.Error("resume that shrinks the corpus accepted")
	}
}

func TestStreamBuildAppendEqualsFreshBuild(t *testing.T) {
	cfg := buildCfg(10, 17)
	dir := t.TempDir()
	if _, err := StreamBuild(cfg, StreamConfig{Dir: dir, ShardSize: 4}); err != nil {
		t.Fatal(err)
	}
	// Append 7 traces: the old final partial shard (2 traces) must be
	// rebuilt to a full one, and the corpus must equal a fresh 17-trace
	// build trace-for-trace.
	grown := cfg
	grown.N = 17
	st, err := StreamBuild(grown, StreamConfig{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Build(grown)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 17 {
		t.Fatalf("appended store holds %d traces, want 17", got.Len())
	}
	for i := range want.Traces {
		equalTraces(t, i, want.Traces[i], got.Traces[i])
	}
}

func TestMergeStores(t *testing.T) {
	cfgA := buildCfg(7, 21)
	cfgB := buildCfg(5, 22)
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := StreamBuild(cfgA, StreamConfig{Dir: dirA, ShardSize: 3, Scenario: "x"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := StreamBuild(cfgB, StreamConfig{Dir: dirB, ShardSize: 2, Scenario: "y"})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(t.TempDir(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Count() != 12 {
		t.Fatalf("merged count %d, want 12", merged.Count())
	}
	if merged.Manifest.Scenario != "merged" || merged.Manifest.Seed != 0 {
		t.Fatalf("merged manifest should clear mixed seed/scenario, got %+v", merged.Manifest)
	}
	ca, err := a.Load()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	wantTraces := append(append([]*Trace{}, ca.Traces...), cb.Traces...)
	got, err := merged.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantTraces {
		equalTraces(t, i, wantTraces[i], got.Traces[i])
	}
}

// TestMergeHeterogeneousShardSizes is the regression test for merged
// stores whose first source has a smaller shard size than the others:
// completeness must follow contiguous trace coverage, not the nominal
// ShardSize geometry, or the merged store reads as incomplete.
func TestMergeHeterogeneousShardSizes(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := StreamBuild(buildCfg(4, 61), StreamConfig{Dir: dirA, ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := StreamBuild(buildCfg(10, 62), StreamConfig{Dir: dirB, ShardSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(t.TempDir(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if missing := merged.Missing(); len(missing) != 0 {
		t.Fatalf("merged store reads as incomplete: Missing = %v", missing)
	}
	got, err := merged.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 14 {
		t.Fatalf("merged store holds %d traces, want 14", got.Len())
	}
	// Reopening from disk must agree.
	re, err := OpenStore(merged.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Complete() {
		t.Fatal("reopened merged store reads as incomplete")
	}
	// Resuming or appending to a merged store must be refused, never
	// silently rebuild (= overwrite) its off-grid shards.
	grow := buildCfg(20, merged.Manifest.Seed)
	if _, err := StreamBuild(grow, StreamConfig{Dir: merged.Dir, Resume: true}); err == nil {
		t.Fatal("resume of a merged store accepted; would overwrite merged shards")
	}
}

func TestOpenSniffsLayout(t *testing.T) {
	cfg := buildCfg(6, 31)
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Legacy monolithic gzip file.
	file := filepath.Join(t.TempDir(), "corpus.json.gz")
	if err := c.Save(file); err != nil {
		t.Fatal(err)
	}
	src, err := Open(file)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*Corpus); !ok || src.Count() != 6 {
		t.Fatalf("Open(file) = %T count %d, want *Corpus count 6", src, src.Count())
	}
	// Sharded directory.
	dir := t.TempDir()
	if _, err := StreamBuild(cfg, StreamConfig{Dir: dir, ShardSize: 2}); err != nil {
		t.Fatal(err)
	}
	src, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := src.(*Store)
	if !ok || st.Count() != 6 {
		t.Fatalf("Open(dir) = %T count %d, want *Store count 6", src, src.Count())
	}
	// Both iterate identically.
	want := c.Traces
	if err := st.Iter(func(i int, tr *Trace) error { equalTraces(t, i, want[i], tr); return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(dir, "nope")); err == nil {
		t.Error("Open of a missing path must fail")
	}
}

func TestStoreSummarizeAggregatesShards(t *testing.T) {
	cfg := buildCfg(20, 41)
	dir := t.TempDir()
	st, err := StreamBuild(cfg, StreamConfig{Dir: dir, ShardSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	c, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	want, got := c.Summarize(), st.Summarize()
	if got.N != want.N {
		t.Fatalf("Summarize N = %d, want %d", got.N, want.N)
	}
	// Rates aggregate exactly (weighted means of exact shard rates).
	if diff := got.SuccessRate - want.SuccessRate; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("SuccessRate %v, want %v", got.SuccessRate, want.SuccessRate)
	}
	if diff := got.CrashRate - want.CrashRate; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("CrashRate %v, want %v", got.CrashRate, want.CrashRate)
	}
}

// TestIterBoundedMemory is the shard store's core promise: streaming a
// corpus retains O(one trace), not O(corpus). It builds a store, measures
// retained heap while holding the fully-materialized corpus, then measures
// retained heap growth during a streaming pass and requires it to be far
// below the materialized footprint.
func TestIterBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-profiled iteration is slow")
	}
	cfg := buildCfg(300, 51)
	dir := t.TempDir()
	st, err := StreamBuild(cfg, StreamConfig{Dir: dir, ShardSize: 25})
	if err != nil {
		t.Fatal(err)
	}

	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	base := heap()
	corpus, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	withCorpus := heap()
	materialized := int64(withCorpus) - int64(base)
	if corpus.Len() != 300 {
		t.Fatal("bad corpus")
	}
	corpus = nil
	_ = corpus

	base = heap()
	var peak int64
	n := 0
	err = st.Iter(func(i int, tr *Trace) error {
		n++
		if n%100 == 0 { // sample retained heap mid-stream
			if d := int64(heap()) - int64(base); d > peak {
				peak = d
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if materialized < 256<<10 {
		t.Skipf("corpus too small to measure (%d bytes)", materialized)
	}
	if peak > materialized/4 {
		t.Errorf("streaming retained %d bytes mid-pass; materialized corpus is %d (want < 1/4)", peak, materialized)
	}
	t.Logf("materialized %d bytes, streaming peak %d bytes", materialized, peak)
}

package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// freshStore builds a small sharded store and returns it with the fresh
// in-memory corpus it must match.
func freshStore(t *testing.T, dir string) (*Store, *Corpus) {
	t.Helper()
	cfg := buildCfg(12, 29)
	want, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := StreamBuild(cfg, StreamConfig{Dir: dir, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	return st, want
}

// corruptResumeCase truncates or mangles one shard file, resumes the
// build, and asserts the shard was detected, logged and rebuilt so the
// store again matches the fresh corpus byte-for-trace.
func corruptResumeCase(t *testing.T, corrupt func(t *testing.T, path string)) {
	t.Helper()
	dir := t.TempDir()
	st, want := freshStore(t, dir)
	victim := st.Manifest.Shards[len(st.Manifest.Shards)-1]
	corrupt(t, filepath.Join(dir, victim.Name))

	// The corrupt shard must fail verification before resume trusts it.
	if err := verifyShard(dir, victim); err == nil {
		t.Fatal("corrupt shard passed verification")
	}

	var logs []string
	cfg := buildCfg(12, 29)
	st2, err := StreamBuild(cfg, StreamConfig{
		Dir: dir, ShardSize: 4, Resume: true,
		Progress: func(format string, args ...any) {
			logs = append(logs, fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	logged := false
	for _, l := range logs {
		if strings.Contains(l, victim.Name) && strings.Contains(l, "rebuilding") {
			logged = true
		}
	}
	if !logged {
		t.Errorf("resume did not log the rebuild of %s; logs: %q", victim.Name, logs)
	}
	n := 0
	err = st2.Iter(func(i int, tr *Trace) error {
		equalTraces(t, i, want.Traces[i], tr)
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != cfg.N {
		t.Fatalf("rebuilt store holds %d traces, want %d", n, cfg.N)
	}
}

// TestResumeRebuildsTruncatedShard simulates a build killed mid-shard
// write (or a torn rename): the trailing shard file is cut short, so its
// gzip stream ends prematurely.
func TestResumeRebuildsTruncatedShard(t *testing.T) {
	corruptResumeCase(t, func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestResumeRebuildsCorruptShard simulates byte rot: flipped bytes in
// the middle of the gzip stream.
func TestResumeRebuildsCorruptShard(t *testing.T) {
	corruptResumeCase(t, func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := len(data) / 2; i < len(data)/2+8 && i < len(data); i++ {
			data[i] ^= 0xA5
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestResumeRebuildsEmptyShard: a zero-byte file left by a crash before
// any bytes were flushed.
func TestResumeRebuildsEmptyShard(t *testing.T) {
	corruptResumeCase(t, func(t *testing.T, path string) {
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestManifestValidateNamesFields drives ParseManifest with structurally
// broken manifests and requires every error to name the offending field.
func TestManifestValidateNamesFields(t *testing.T) {
	base := func() *Manifest {
		return &Manifest{
			Magic: ManifestMagic, Version: ManifestVersion, N: 10, ShardSize: 5,
			Shards: []ShardMeta{
				{Name: "shard-00000.jsonl.gz", Index: 0, Start: 0, Count: 5},
				{Name: "shard-00001.jsonl.gz", Index: 1, Start: 5, Count: 5},
			},
		}
	}
	cases := []struct {
		name string
		mut  func(*Manifest)
		want string
	}{
		{"bad magic", func(m *Manifest) { m.Magic = "nope" }, "magic"},
		{"bad version", func(m *Manifest) { m.Version = 99 }, "version"},
		{"negative n", func(m *Manifest) { m.N = -1 }, "n"},
		{"negative shard size", func(m *Manifest) { m.ShardSize = -4 }, "shard_size"},
		{"empty shard name", func(m *Manifest) { m.Shards[1].Name = "" }, "shards[1].name"},
		{"path traversal", func(m *Manifest) { m.Shards[0].Name = "../../etc/passwd" }, "shards[0].name"},
		{"path separator", func(m *Manifest) { m.Shards[0].Name = "sub/shard.gz" }, "shards[0].name"},
		{"duplicate name", func(m *Manifest) { m.Shards[1].Name = m.Shards[0].Name }, "shards[1].name"},
		{"negative index", func(m *Manifest) { m.Shards[0].Index = -1 }, "shards[0].index"},
		{"duplicate index", func(m *Manifest) { m.Shards[1].Index = 0 }, "shards[1].index"},
		{"negative start", func(m *Manifest) { m.Shards[0].Start = -2 }, "shards[0].start"},
		{"negative count", func(m *Manifest) { m.Shards[1].Count = -5 }, "shards[1].count"},
		{"overflowing shard", func(m *Manifest) { m.Shards[1].Count = 100 }, "shards[1].start"},
	}
	for _, tc := range cases {
		m := base()
		tc.mut(m)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		_, perr := ParseManifest(data)
		if perr == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(perr.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, perr, tc.want)
		}
	}
	if _, err := ParseManifest([]byte(`{"magic": 7}`)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("type error does not name the field: %v", err)
	}
	data, err := json.Marshal(base())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseManifest(data); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}

// FuzzParseManifest: arbitrary bytes never panic the manifest parser,
// and accepted manifests re-validate.
func FuzzParseManifest(f *testing.F) {
	good, err := json.Marshal(&Manifest{
		Magic: ManifestMagic, Version: ManifestVersion, N: 10, ShardSize: 5,
		Shards: []ShardMeta{{Name: "shard-00000.jsonl.gz", Count: 5}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"magic": "costream-corpus", "version": 1, "shards": [{"name": "../x"}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte("\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("rejection with empty error message")
			}
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("accepted manifest fails re-validation: %v", verr)
		}
	})
}

// Package dataset defines the cost-estimation benchmark corpus of the
// paper (Section VI): traces of query executions on heterogeneous hardware
// with their measured cost metrics, train/validation/test splits, balanced
// subsets for the classification metrics and JSON persistence.
package dataset

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"

	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
	"costream/internal/workload"
)

// Trace is one benchmark entry: a query, the hardware landscape, the
// operator placement, and the cost metrics measured by executing it.
type Trace struct {
	Query     *stream.Query     `json:"query"`
	Cluster   *hardware.Cluster `json:"cluster"`
	Placement sim.Placement     `json:"placement"`
	Metrics   *sim.Metrics      `json:"metrics"`
}

// Corpus is an ordered collection of traces.
type Corpus struct {
	Traces []*Trace `json:"traces"`
}

// Len returns the number of traces.
func (c *Corpus) Len() int { return len(c.Traces) }

// Split partitions the corpus into train/validation/test subsets with the
// given fractions (the remainder goes to test), shuffling deterministically
// with the seed. The paper uses 80/10/10.
func (c *Corpus) Split(trainFrac, valFrac float64, seed int64) (train, val, test *Corpus) {
	idx := rand.New(rand.NewSource(seed)).Perm(len(c.Traces))
	nTrain := int(trainFrac * float64(len(idx)))
	nVal := int(valFrac * float64(len(idx)))
	train, val, test = &Corpus{}, &Corpus{}, &Corpus{}
	for i, j := range idx {
		switch {
		case i < nTrain:
			train.Traces = append(train.Traces, c.Traces[j])
		case i < nTrain+nVal:
			val.Traces = append(val.Traces, c.Traces[j])
		default:
			test.Traces = append(test.Traces, c.Traces[j])
		}
	}
	return train, val, test
}

// Filter returns the traces satisfying the predicate.
func (c *Corpus) Filter(keep func(*Trace) bool) *Corpus {
	out := &Corpus{}
	for _, t := range c.Traces {
		if keep(t) {
			out.Traces = append(out.Traces, t)
		}
	}
	return out
}

// Successful returns the traces whose execution succeeded; regression
// models are trained on these (failed runs have no defined latency or
// throughput).
func (c *Corpus) Successful() *Corpus {
	return c.Filter(func(t *Trace) bool { return t.Metrics.Success })
}

// Balanced returns a label-balanced subset for a binary metric, as the
// paper does for the classification test sets: equally many positive and
// negative traces, subsampled deterministically.
func (c *Corpus) Balanced(label func(*Trace) bool, seed int64) *Corpus {
	var pos, neg []*Trace
	for _, t := range c.Traces {
		if label(t) {
			pos = append(pos, t)
		} else {
			neg = append(neg, t)
		}
	}
	n := len(pos)
	if len(neg) < n {
		n = len(neg)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	out := &Corpus{}
	out.Traces = append(out.Traces, pos[:n]...)
	out.Traces = append(out.Traces, neg[:n]...)
	return out
}

// Save writes the corpus as gzip-compressed JSON.
func (c *Corpus) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := json.NewEncoder(zw).Encode(c); err != nil {
		zw.Close()
		return fmt.Errorf("dataset: encoding corpus: %w", err)
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a corpus written by Save.
func Load(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s is not a corpus file: %w", path, err)
	}
	defer zr.Close()
	var c Corpus
	if err := json.NewDecoder(zr).Decode(&c); err != nil {
		return nil, fmt.Errorf("dataset: decoding corpus: %w", err)
	}
	return &c, nil
}

// BuildConfig controls corpus generation.
type BuildConfig struct {
	// N is the number of traces to generate.
	N int
	// Seed drives workload sampling, placements and simulator noise.
	Seed int64
	// Gen configures the workload generator.
	Gen workload.Config
	// Sim configures the execution simulator.
	Sim sim.Config
	// Parallelism bounds worker goroutines; 0 means GOMAXPROCS.
	Parallelism int
	// QueryFn optionally overrides the query sampler (for special
	// corpora such as filter chains or benchmark queries). It is called
	// with a dedicated generator and the trace index.
	QueryFn func(g *workload.Generator, i int) *stream.Query
	// ClusterFn optionally overrides the cluster sampler.
	ClusterFn func(g *workload.Generator, i int) *hardware.Cluster
}

// Build generates a corpus by sampling (query, cluster, placement) triples
// and executing them on the simulator. Generation is deterministic in the
// seed regardless of parallelism: every trace derives its own generator and
// simulator seed.
func Build(cfg BuildConfig) (*Corpus, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("dataset: N must be positive")
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	traces := make([]*Trace, cfg.N)
	errs := make([]error, cfg.N)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < cfg.N; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			traces[i], errs[i] = buildOne(cfg, i)
		}(i)
	}
	wg.Wait()
	out := &Corpus{Traces: make([]*Trace, 0, cfg.N)}
	for i, t := range traces {
		if errs[i] != nil {
			return nil, fmt.Errorf("dataset: trace %d: %w", i, errs[i])
		}
		out.Traces = append(out.Traces, t)
	}
	return out, nil
}

func buildOne(cfg BuildConfig, i int) (*Trace, error) {
	genCfg := cfg.Gen
	genCfg.Seed = cfg.Seed*1_000_003 + int64(i)
	g := workload.New(genCfg)
	var q *stream.Query
	if cfg.QueryFn != nil {
		q = cfg.QueryFn(g, i)
	} else {
		q = g.Query()
	}
	var c *hardware.Cluster
	if cfg.ClusterFn != nil {
		c = cfg.ClusterFn(g, i)
	} else {
		c = g.Cluster()
	}
	rng := rand.New(rand.NewSource(genCfg.Seed ^ 0x9E3779B9))
	p, err := placement.RandomValid(rng, q, c)
	if err != nil {
		return nil, err
	}
	simCfg := cfg.Sim
	simCfg.Seed = genCfg.Seed ^ 0x51ED2701
	m, err := sim.Run(q, c, p, simCfg)
	if err != nil {
		return nil, err
	}
	return &Trace{Query: q, Cluster: c, Placement: p, Metrics: m}, nil
}

// Stats summarizes label distributions of a corpus, useful for sanity
// checks and reports.
type Stats struct {
	N             int
	SuccessRate   float64
	BackpressRate float64
	CrashRate     float64
	MedianT       float64
	MedianLpMS    float64
	MedianLeMS    float64
}

// Summarize computes corpus statistics.
func (c *Corpus) Summarize() Stats {
	s := Stats{N: len(c.Traces)}
	if s.N == 0 {
		return s
	}
	var ts, lps, les []float64
	for _, t := range c.Traces {
		if t.Metrics.Success {
			s.SuccessRate++
			ts = append(ts, t.Metrics.ThroughputTPS)
			lps = append(lps, t.Metrics.ProcLatencyMS)
			les = append(les, t.Metrics.E2ELatencyMS)
		}
		if t.Metrics.Backpressured {
			s.BackpressRate++
		}
		if t.Metrics.Crashed {
			s.CrashRate++
		}
	}
	n := float64(s.N)
	s.SuccessRate /= n
	s.BackpressRate /= n
	s.CrashRate /= n
	s.MedianT = median(ts)
	s.MedianLpMS = median(lps)
	s.MedianLeMS = median(les)
	return s
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}

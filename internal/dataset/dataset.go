// Package dataset defines the cost-estimation benchmark corpus of the
// paper (Section VI): traces of query executions on heterogeneous hardware
// with their measured cost metrics, train/validation/test splits, balanced
// subsets for the classification metrics and JSON persistence.
package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
	"costream/internal/workload"
)

// Trace is one benchmark entry: a query, the hardware landscape, the
// operator placement, and the cost metrics measured by executing it.
type Trace struct {
	Query     *stream.Query     `json:"query"`
	Cluster   *hardware.Cluster `json:"cluster"`
	Placement sim.Placement     `json:"placement"`
	Metrics   *sim.Metrics      `json:"metrics"`
}

// Corpus is an ordered collection of traces.
type Corpus struct {
	Traces []*Trace `json:"traces"`
}

// Len returns the number of traces.
func (c *Corpus) Len() int { return len(c.Traces) }

// Count implements Source.
func (c *Corpus) Count() int { return len(c.Traces) }

// Iter implements Source: it visits every trace in index order. The
// callback's error aborts the iteration and is returned.
func (c *Corpus) Iter(fn func(i int, tr *Trace) error) error {
	for i, tr := range c.Traces {
		if err := fn(i, tr); err != nil {
			return err
		}
	}
	return nil
}

// Source is a streamable supplier of traces: the in-memory Corpus or the
// sharded on-disk Store. Iter visits traces in global index order;
// implementations may release each trace after the callback returns, so
// consumers that need O(1)-trace memory must not retain them.
type Source interface {
	Count() int
	Iter(fn func(i int, tr *Trace) error) error
}

// SplitIndices returns the trace indices of the train/validation/test
// partition produced by Corpus.Split with the same fractions and seed: the
// i-th returned index of each slice is the position (in the source corpus)
// of the i-th trace of the corresponding split corpus. It exists so
// sharded corpora can be split by index while streaming, without
// materializing the traces, and is the single definition of the split.
func SplitIndices(n int, trainFrac, valFrac float64, seed int64) (train, val, test []int) {
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	nTrain := int(trainFrac * float64(n))
	nVal := int(valFrac * float64(n))
	for i, j := range idx {
		switch {
		case i < nTrain:
			train = append(train, j)
		case i < nTrain+nVal:
			val = append(val, j)
		default:
			test = append(test, j)
		}
	}
	return train, val, test
}

// Split partitions the corpus into train/validation/test subsets with the
// given fractions (the remainder goes to test), shuffling deterministically
// with the seed. The paper uses 80/10/10.
func (c *Corpus) Split(trainFrac, valFrac float64, seed int64) (train, val, test *Corpus) {
	trainIdx, valIdx, testIdx := SplitIndices(len(c.Traces), trainFrac, valFrac, seed)
	pick := func(idx []int) *Corpus {
		out := &Corpus{}
		for _, j := range idx {
			out.Traces = append(out.Traces, c.Traces[j])
		}
		return out
	}
	return pick(trainIdx), pick(valIdx), pick(testIdx)
}

// Filter returns the traces satisfying the predicate.
func (c *Corpus) Filter(keep func(*Trace) bool) *Corpus {
	out := &Corpus{}
	for _, t := range c.Traces {
		if keep(t) {
			out.Traces = append(out.Traces, t)
		}
	}
	return out
}

// Successful returns the traces whose execution succeeded; regression
// models are trained on these (failed runs have no defined latency or
// throughput).
func (c *Corpus) Successful() *Corpus {
	return c.Filter(func(t *Trace) bool { return t.Metrics.Success })
}

// BalancedIndices returns the trace indices of a label-balanced subset:
// equally many positive and negative indices, subsampled and shuffled
// deterministically with the seed. The final shuffle matters: without it
// the subset is all positives followed by all negatives, and any consumer
// that batches or truncates sees label-sorted data.
func BalancedIndices(labels []bool, seed int64) []int {
	var pos, neg []int
	for i, l := range labels {
		if l {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	n := len(pos)
	if len(neg) < n {
		n = len(neg)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	out := append(append(make([]int, 0, 2*n), pos[:n]...), neg[:n]...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Balanced returns a label-balanced subset for a binary metric, as the
// paper does for the classification test sets: equally many positive and
// negative traces, subsampled and shuffled deterministically.
func (c *Corpus) Balanced(label func(*Trace) bool, seed int64) *Corpus {
	labels := make([]bool, len(c.Traces))
	for i, t := range c.Traces {
		labels[i] = label(t)
	}
	out := &Corpus{}
	for _, j := range BalancedIndices(labels, seed) {
		out.Traces = append(out.Traces, c.Traces[j])
	}
	return out
}

// atomicWrite writes a file via temp-file-plus-rename so a crash mid-write
// never leaves a truncated file at path (the artifact.Save pattern). Shard
// and manifest writes use the same helper.
func atomicWrite(path string, write func(w io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".costream-corpus-*")
	if err != nil {
		return fmt.Errorf("dataset: creating %s: %w", path, err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp opens 0600; corpora are shareable data files, so widen to
	// the conventional 0644 before publishing.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	return nil
}

// Save writes the corpus as gzip-compressed JSON, atomically: the file is
// written to a temp name and renamed into place, so a crash mid-encode
// never leaves a truncated, unreadable corpus behind.
func (c *Corpus) Save(path string) error {
	return atomicWrite(path, func(w io.Writer) error {
		zw := gzip.NewWriter(w)
		if err := json.NewEncoder(zw).Encode(c); err != nil {
			return fmt.Errorf("dataset: encoding corpus: %w", err)
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("dataset: encoding corpus: %w", err)
		}
		return nil
	})
}

// Load reads a monolithic corpus file written by Save. Compression is
// sniffed from the gzip magic bytes (like artifact.Load), so both
// gzip-compressed and plain JSON corpora load. For sharded corpus
// directories use OpenStore, or Open to sniff between the two layouts.
func Load(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var r io.Reader = br
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s is not a corpus file: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	var c Corpus
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("dataset: decoding corpus %s: %w", path, err)
	}
	return &c, nil
}

// BuildConfig controls corpus generation.
type BuildConfig struct {
	// N is the number of traces to generate.
	N int
	// Seed drives workload sampling, placements and simulator noise.
	Seed int64
	// Gen configures the workload generator.
	Gen workload.Config
	// Sim configures the execution simulator.
	Sim sim.Config
	// Parallelism bounds worker goroutines; 0 means GOMAXPROCS.
	Parallelism int
	// QueryFn optionally overrides the query sampler (for special
	// corpora such as filter chains or benchmark queries). It is called
	// with a dedicated generator and the trace index.
	QueryFn func(g *workload.Generator, i int) *stream.Query
	// ClusterFn optionally overrides the cluster sampler.
	ClusterFn func(g *workload.Generator, i int) *hardware.Cluster
}

// Build generates a corpus by sampling (query, cluster, placement) triples
// and executing them on the simulator. Generation is deterministic in the
// seed regardless of parallelism: every trace derives its own generator and
// simulator seed.
func Build(cfg BuildConfig) (*Corpus, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("dataset: N must be positive")
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	traces := make([]*Trace, cfg.N)
	errs := make([]error, cfg.N)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < cfg.N; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			traces[i], errs[i] = buildOne(cfg, i)
		}(i)
	}
	wg.Wait()
	out := &Corpus{Traces: make([]*Trace, 0, cfg.N)}
	for i, t := range traces {
		if errs[i] != nil {
			return nil, fmt.Errorf("dataset: trace %d: %w", i, errs[i])
		}
		out.Traces = append(out.Traces, t)
	}
	return out, nil
}

// TraceSeed derives the workload-generator seed of trace i in a corpus
// built with the given corpus seed. Exported so other samplers (the
// scenario registry's QuerySampler, the fleet simulator) can reproduce
// exactly the query of trace i without building a corpus.
func TraceSeed(corpusSeed int64, i int) int64 {
	return corpusSeed*1_000_003 + int64(i)
}

func buildOne(cfg BuildConfig, i int) (*Trace, error) {
	genCfg := cfg.Gen
	genCfg.Seed = TraceSeed(cfg.Seed, i)
	g := workload.New(genCfg)
	var q *stream.Query
	if cfg.QueryFn != nil {
		q = cfg.QueryFn(g, i)
	} else {
		q = g.Query()
	}
	var c *hardware.Cluster
	if cfg.ClusterFn != nil {
		c = cfg.ClusterFn(g, i)
	} else {
		c = g.Cluster()
	}
	rng := rand.New(rand.NewSource(genCfg.Seed ^ 0x9E3779B9))
	p, err := placement.RandomValid(rng, q, c)
	if err != nil {
		return nil, err
	}
	simCfg := cfg.Sim
	simCfg.Seed = genCfg.Seed ^ 0x51ED2701
	m, err := sim.Run(q, c, p, simCfg)
	if err != nil {
		return nil, err
	}
	return &Trace{Query: q, Cluster: c, Placement: p, Metrics: m}, nil
}

// Stats summarizes label distributions of a corpus, useful for sanity
// checks and reports. It is JSON-serializable so shard manifests can
// record per-shard label statistics.
type Stats struct {
	N             int     `json:"n"`
	SuccessRate   float64 `json:"success_rate"`
	BackpressRate float64 `json:"backpressure_rate"`
	CrashRate     float64 `json:"crash_rate"`
	MedianT       float64 `json:"median_throughput_tps"`
	MedianLpMS    float64 `json:"median_proc_latency_ms"`
	MedianLeMS    float64 `json:"median_e2e_latency_ms"`
}

// Summarize computes corpus statistics.
func (c *Corpus) Summarize() Stats {
	s := Stats{N: len(c.Traces)}
	if s.N == 0 {
		return s
	}
	var ts, lps, les []float64
	for _, t := range c.Traces {
		if t.Metrics.Success {
			s.SuccessRate++
			ts = append(ts, t.Metrics.ThroughputTPS)
			lps = append(lps, t.Metrics.ProcLatencyMS)
			les = append(les, t.Metrics.E2ELatencyMS)
		}
		if t.Metrics.Backpressured {
			s.BackpressRate++
		}
		if t.Metrics.Crashed {
			s.CrashRate++
		}
	}
	n := float64(s.N)
	s.SuccessRate /= n
	s.BackpressRate /= n
	s.CrashRate /= n
	s.MedianT = median(ts)
	s.MedianLpMS = median(lps)
	s.MedianLeMS = median(les)
	return s
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}

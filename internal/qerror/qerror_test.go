package qerror

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQBasics(t *testing.T) {
	if q := Q(10, 10); q != 1 {
		t.Errorf("perfect estimate q = %v, want 1", q)
	}
	if q := Q(10, 5); q != 2 {
		t.Errorf("Q(10,5) = %v, want 2", q)
	}
	if q := Q(5, 10); q != 2 {
		t.Errorf("Q(5,10) = %v, want 2", q)
	}
	if q := Q(0, 1); q != 1/Epsilon {
		t.Errorf("Q(0,1) = %v, want %v", q, 1/Epsilon)
	}
	if q := Q(math.NaN(), 1); !math.IsInf(q, 1) {
		t.Errorf("Q(NaN,1) = %v, want +Inf", q)
	}
}

func TestQProperties(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsInf(a, 0) || math.IsInf(b, 0) || a > 1e150 || b > 1e150 {
			return true
		}
		q := Q(a, b)
		if q < 1 {
			return false
		}
		// Symmetry.
		return Q(a, b) == Q(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if m := Quantile(vals, 0.5); m != 3 {
		t.Errorf("median = %v, want 3", m)
	}
	if m := Quantile(vals, 0); m != 1 {
		t.Errorf("p0 = %v, want 1", m)
	}
	if m := Quantile(vals, 1); m != 5 {
		t.Errorf("p1 = %v, want 5", m)
	}
	if m := Quantile(vals, 0.75); m != 4 {
		t.Errorf("p75 = %v, want 4", m)
	}
	if m := Quantile([]float64{2, 4}, 0.5); m != 3 {
		t.Errorf("interpolated median = %v, want 3", m)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile must be NaN")
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	truths := []float64{10, 10, 10, 10}
	preds := []float64{10, 20, 5, 10}
	s, err := Summarize(truths, preds)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 {
		t.Errorf("N = %d, want 4", s.N)
	}
	// q-errors: 1, 2, 2, 1 -> median 1.5, max 2.
	if s.Median != 1.5 {
		t.Errorf("median = %v, want 1.5", s.Median)
	}
	if s.Max != 2 {
		t.Errorf("max = %v, want 2", s.Max)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	if _, err := Summarize([]float64{1}, []float64{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Summarize(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestAccuracy(t *testing.T) {
	a, err := Accuracy([]bool{true, false, true, true}, []bool{true, true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if a != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", a)
	}
	if _, err := Accuracy([]bool{true}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

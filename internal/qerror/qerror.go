// Package qerror implements the evaluation metrics of the paper: the
// q-error for regression cost metrics (median and tail quantiles) and
// classification accuracy for the binary metrics.
package qerror

import (
	"fmt"
	"math"
	"sort"
)

// Epsilon guards against division by zero in q-error computation; the
// simulator reports latencies in milliseconds and throughput in tuples/s,
// so values this small are effectively zero.
const Epsilon = 1e-3

// Q computes the q-error q(c, chat) = max(c/chat, chat/c) >= 1 between a
// true cost and its prediction (1 is a perfect estimate). Non-positive
// values are clamped to Epsilon, following common practice.
func Q(truth, pred float64) float64 {
	if math.IsNaN(truth) || math.IsNaN(pred) {
		return math.Inf(1)
	}
	if truth < Epsilon {
		truth = Epsilon
	}
	if pred < Epsilon {
		pred = Epsilon
	}
	q := truth / pred
	if q < 1 {
		q = 1 / q
	}
	return q
}

// Quantile returns the p-quantile (0 <= p <= 1) of the values using
// nearest-rank interpolation. It returns NaN for an empty slice.
func Quantile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), values...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 1 {
		return cp[len(cp)-1]
	}
	pos := p * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Summary holds the q-error quantiles the paper reports.
type Summary struct {
	Median float64 // Q50
	P95    float64 // Q95
	Max    float64
	N      int
}

// Summarize computes Q50/Q95/max over (truth, prediction) pairs.
func Summarize(truths, preds []float64) (Summary, error) {
	if len(truths) != len(preds) {
		return Summary{}, fmt.Errorf("qerror: %d truths vs %d predictions", len(truths), len(preds))
	}
	if len(truths) == 0 {
		return Summary{}, fmt.Errorf("qerror: no samples")
	}
	qs := make([]float64, len(truths))
	for i := range truths {
		qs[i] = Q(truths[i], preds[i])
	}
	s := Summary{
		Median: Quantile(qs, 0.5),
		P95:    Quantile(qs, 0.95),
		Max:    Quantile(qs, 1),
		N:      len(qs),
	}
	return s, nil
}

func (s Summary) String() string {
	return fmt.Sprintf("Q50=%.2f Q95=%.2f (n=%d)", s.Median, s.P95, s.N)
}

// Accuracy returns the fraction of correct binary predictions.
func Accuracy(truths, preds []bool) (float64, error) {
	if len(truths) != len(preds) {
		return 0, fmt.Errorf("qerror: %d truths vs %d predictions", len(truths), len(preds))
	}
	if len(truths) == 0 {
		return 0, fmt.Errorf("qerror: no samples")
	}
	correct := 0
	for i := range truths {
		if truths[i] == preds[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(truths)), nil
}

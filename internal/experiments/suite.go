// Package experiments reproduces every table and figure of the COSTREAM
// paper's evaluation (Section VII): one runner per experiment, shared
// lazily-trained artifacts (corpora, model ensembles, baselines), and
// plain-text report rendering. bench_test.go at the repository root and
// cmd/costream-expts drive these runners.
package experiments

import (
	"fmt"
	"os"
	"strconv"
	"sync"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/flatvec"
	"costream/internal/gbdt"
	"costream/internal/sim"
	"costream/internal/workload"
)

// ScaleFromEnv reads COSTREAM_SCALE (default 1.0). Corpus sizes, query
// counts and training epochs scale with it; 0.25 gives a fast smoke run,
// 1.0 the full reproduction.
func ScaleFromEnv() float64 {
	if v := os.Getenv("COSTREAM_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 1.0
}

// Suite owns the shared artifacts of the experiment runs. All getters are
// lazy, cached and safe for sequential use (experiments run one at a time;
// ensemble members train concurrently inside core).
type Suite struct {
	Scale float64
	// Logf receives progress lines; defaults to a no-op.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	corpora map[string]*dataset.Corpus
	ens     map[string]*core.Ensemble
	flat    map[string]*flatvec.Model
}

// NewSuite returns a Suite at the given scale.
func NewSuite(scale float64) *Suite {
	if scale <= 0 {
		scale = 1
	}
	return &Suite{
		Scale:   scale,
		Logf:    func(string, ...any) {},
		corpora: map[string]*dataset.Corpus{},
		ens:     map[string]*core.Ensemble{},
		flat:    map[string]*flatvec.Model{},
	}
}

func (s *Suite) scaled(n int, min int) int {
	v := int(float64(n) * s.Scale)
	if v < min {
		v = min
	}
	return v
}

// simConfig is the simulator setup used for every experiment.
func (s *Suite) simConfig() sim.Config { return sim.DefaultConfig() }

// baseN is the corpus size standing in for the paper's 43,281 traces.
func (s *Suite) baseN() int { return s.scaled(2400, 300) }

// evalN is the per-scenario evaluation corpus size (the paper uses 100).
func (s *Suite) evalN() int { return s.scaled(100, 40) }

// trainConfig returns the GNN training configuration.
func (s *Suite) trainConfig(seed int64) core.TrainConfig {
	cfg := core.DefaultTrainConfig(seed)
	cfg.Epochs = s.scaled(45, 10)
	cfg.Patience = 8
	cfg.Hidden = 32
	cfg.LR = 3e-3
	return cfg
}

// smallTrainConfig is used where many models must be trained (Exp 4, 7).
func (s *Suite) smallTrainConfig(seed int64) core.TrainConfig {
	cfg := s.trainConfig(seed)
	cfg.Epochs = s.scaled(25, 8)
	cfg.Patience = 6
	return cfg
}

// EnsembleSize is the per-metric ensemble size (the paper uses 3).
const EnsembleSize = 3

// corpus returns (building if needed) a named corpus.
func (s *Suite) corpus(name string, build func() (*dataset.Corpus, error)) (*dataset.Corpus, error) {
	s.mu.Lock()
	c, ok := s.corpora[name]
	s.mu.Unlock()
	if ok {
		return c, nil
	}
	s.Logf("building corpus %q", name)
	c, err := build()
	if err != nil {
		return nil, fmt.Errorf("experiments: corpus %q: %w", name, err)
	}
	s.mu.Lock()
	s.corpora[name] = c
	s.mu.Unlock()
	return c, nil
}

// BaseCorpus is the main training benchmark (Section VI distribution).
func (s *Suite) BaseCorpus() (*dataset.Corpus, error) {
	return s.corpus("base", func() (*dataset.Corpus, error) {
		return dataset.Build(dataset.BuildConfig{
			N:    s.baseN(),
			Seed: 20240313, // arXiv submission date of the paper
			Gen:  workload.DefaultConfig(20240313),
			Sim:  s.simConfig(),
		})
	})
}

// BaseSplit returns the 80/10/10 split of the base corpus.
func (s *Suite) BaseSplit() (train, val, test *dataset.Corpus, err error) {
	c, err := s.BaseCorpus()
	if err != nil {
		return nil, nil, nil, err
	}
	train, val, test = c.Split(0.8, 0.1, 1)
	return train, val, test, nil
}

// Ensemble returns the COSTREAM ensemble for a metric, trained on the base
// split.
func (s *Suite) Ensemble(m core.Metric) (*core.Ensemble, error) {
	key := "base/" + m.String()
	s.mu.Lock()
	e, ok := s.ens[key]
	s.mu.Unlock()
	if ok {
		return e, nil
	}
	train, val, _, err := s.BaseSplit()
	if err != nil {
		return nil, err
	}
	s.Logf("training COSTREAM ensemble for %v (%d models)", m, EnsembleSize)
	e, err = core.TrainEnsemble(train, val, m, s.trainConfig(100+int64(m)), EnsembleSize)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ens[key] = e
	s.mu.Unlock()
	return e, nil
}

// FlatModel returns the flat-vector baseline model for a metric, trained
// on the base split.
func (s *Suite) FlatModel(m core.Metric) (*flatvec.Model, error) {
	key := "base/" + m.String()
	s.mu.Lock()
	f, ok := s.flat[key]
	s.mu.Unlock()
	if ok {
		return f, nil
	}
	train, _, _, err := s.BaseSplit()
	if err != nil {
		return nil, err
	}
	s.Logf("training flat-vector baseline for %v", m)
	f, err = flatvec.Train(train, m, gbdt.DefaultConfig(200+int64(m)))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.flat[key] = f
	s.mu.Unlock()
	return f, nil
}

// Predictor assembles the full five-metric COSTREAM predictor from the
// cached ensembles.
func (s *Suite) Predictor() (*core.Predictor, error) {
	pr := &core.Predictor{}
	for _, m := range core.AllMetrics() {
		e, err := s.Ensemble(m)
		if err != nil {
			return nil, err
		}
		switch m {
		case core.MetricThroughput:
			pr.Throughput = e
		case core.MetricProcLatency:
			pr.ProcLatency = e
		case core.MetricE2ELatency:
			pr.E2ELatency = e
		case core.MetricBackpressure:
			pr.Backpressure = e
		case core.MetricSuccess:
			pr.Success = e
		}
	}
	return pr, nil
}

// FlatPredictor assembles the flat-vector placement predictor.
func (s *Suite) FlatPredictor() (*flatvec.Predictor, error) {
	pr := &flatvec.Predictor{}
	for _, m := range core.AllMetrics() {
		f, err := s.FlatModel(m)
		if err != nil {
			return nil, err
		}
		switch m {
		case core.MetricThroughput:
			pr.Throughput = f
		case core.MetricProcLatency:
			pr.ProcLatency = f
		case core.MetricE2ELatency:
			pr.E2ELatency = f
		case core.MetricBackpressure:
			pr.Backpressure = f
		case core.MetricSuccess:
			pr.Success = f
		}
	}
	return pr, nil
}

// Package experiments reproduces every table and figure of the COSTREAM
// paper's evaluation (Section VII): one runner per experiment, shared
// lazily-trained artifacts (corpora, model ensembles, baselines), and
// plain-text report rendering. bench_test.go at the repository root and
// cmd/costream-expts drive these runners.
package experiments

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/flatvec"
	"costream/internal/gbdt"
	"costream/internal/placement"
	"costream/internal/scenario"
	"costream/internal/sim"
)

// ScaleFromEnv reads COSTREAM_SCALE (default 1.0). Corpus sizes, query
// counts and training epochs scale with it; 0.25 gives a fast smoke run,
// 1.0 the full reproduction.
func ScaleFromEnv() float64 {
	if v := os.Getenv("COSTREAM_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 1.0
}

// cell is a single-flight slot for a lazily built artifact: concurrent
// getters for the same key share one build instead of duplicating it.
type cell[T any] struct {
	once sync.Once
	val  T
	err  error
}

// get returns the cached cell for key (creating an empty one under mu if
// needed) and runs build exactly once across all callers.
func get[T any](mu *sync.Mutex, m map[string]*cell[T], key string, build func() (T, error)) (T, error) {
	mu.Lock()
	cl, ok := m[key]
	if !ok {
		cl = &cell[T]{}
		m[key] = cl
	}
	mu.Unlock()
	cl.once.Do(func() { cl.val, cl.err = build() })
	return cl.val, cl.err
}

// Suite owns the shared artifacts of the experiment runs. All getters are
// lazy, cached and safe for concurrent use: experiments running in
// parallel under RunAll share single-flight artifact builds (ensemble
// members additionally train concurrently inside core).
type Suite struct {
	Scale float64
	// Workers bounds each concurrency level separately: the number of
	// experiments RunAll drives at once, and the number of
	// candidate-scoring workers inside each experiment's placement
	// searches. Up to Workers^2 scoring goroutines can therefore be
	// runnable at once; they are CPU-bound and the Go scheduler
	// multiplexes them onto GOMAXPROCS threads, so this oversubscribes
	// scheduling slots, not cores. Zero or negative selects GOMAXPROCS.
	Workers int
	// Logf receives progress lines; defaults to a no-op.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	corpora map[string]*cell[*dataset.Corpus]
	ens     map[string]*cell[*core.Ensemble]
	flat    map[string]*cell[*flatvec.Model]
}

// NewSuite returns a Suite at the given scale.
func NewSuite(scale float64) *Suite {
	if scale <= 0 {
		scale = 1
	}
	return &Suite{
		Scale:   scale,
		Logf:    func(string, ...any) {},
		corpora: map[string]*cell[*dataset.Corpus]{},
		ens:     map[string]*cell[*core.Ensemble]{},
		flat:    map[string]*cell[*flatvec.Model]{},
	}
}

// optimizeOpts returns the placement engine options honoring s.Workers.
func (s *Suite) optimizeOpts() placement.Options {
	return placement.Options{Workers: s.Workers}
}

// defaultWorkers is the worker-pool bound when Suite.Workers is unset.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

func (s *Suite) scaled(n int, min int) int {
	v := int(float64(n) * s.Scale)
	if v < min {
		v = min
	}
	return v
}

// simConfig is the simulator setup used for every experiment.
func (s *Suite) simConfig() sim.Config { return sim.DefaultConfig() }

// baseN is the corpus size standing in for the paper's 43,281 traces.
func (s *Suite) baseN() int { return s.scaled(2400, 300) }

// evalN is the per-scenario evaluation corpus size (the paper uses 100).
func (s *Suite) evalN() int { return s.scaled(100, 40) }

// trainConfig returns the GNN training configuration.
func (s *Suite) trainConfig(seed int64) core.TrainConfig {
	cfg := core.DefaultTrainConfig(seed)
	cfg.Epochs = s.scaled(45, 10)
	cfg.Patience = 8
	cfg.Hidden = 32
	cfg.LR = 3e-3
	return cfg
}

// smallTrainConfig is used where many models must be trained (Exp 4, 7).
func (s *Suite) smallTrainConfig(seed int64) core.TrainConfig {
	cfg := s.trainConfig(seed)
	cfg.Epochs = s.scaled(25, 8)
	cfg.Patience = 6
	return cfg
}

// EnsembleSize is the per-metric ensemble size (the paper uses 3).
const EnsembleSize = 3

// corpus returns (building if needed) a named corpus. Concurrent callers
// share one build.
func (s *Suite) corpus(name string, build func() (*dataset.Corpus, error)) (*dataset.Corpus, error) {
	return get(&s.mu, s.corpora, name, func() (*dataset.Corpus, error) {
		s.Logf("building corpus %q", name)
		c, err := build()
		if err != nil {
			return nil, fmt.Errorf("experiments: corpus %q: %w", name, err)
		}
		return c, nil
	})
}

// scenarioCorpus builds an n-trace corpus from a named scenario recipe
// with the suite's simulator configuration.
func (s *Suite) scenarioCorpus(name string, n int, seed int64) (*dataset.Corpus, error) {
	sc, err := scenario.Get(name)
	if err != nil {
		return nil, err
	}
	cfg := sc.Make(n, seed)
	cfg.Sim = s.simConfig()
	return dataset.Build(cfg)
}

// BaseCorpus is the main training benchmark (Section VI distribution),
// drawn from the "training" scenario of the registry.
func (s *Suite) BaseCorpus() (*dataset.Corpus, error) {
	return s.corpus("base", func() (*dataset.Corpus, error) {
		// Seed: arXiv submission date of the paper.
		return s.scenarioCorpus("training", s.baseN(), 20240313)
	})
}

// BaseSplit returns the 80/10/10 split of the base corpus.
func (s *Suite) BaseSplit() (train, val, test *dataset.Corpus, err error) {
	c, err := s.BaseCorpus()
	if err != nil {
		return nil, nil, nil, err
	}
	train, val, test = c.Split(0.8, 0.1, 1)
	return train, val, test, nil
}

// Ensemble returns the COSTREAM ensemble for a metric, trained on the base
// split. Concurrent callers share one training run.
func (s *Suite) Ensemble(m core.Metric) (*core.Ensemble, error) {
	return get(&s.mu, s.ens, "base/"+m.String(), func() (*core.Ensemble, error) {
		train, val, _, err := s.BaseSplit()
		if err != nil {
			return nil, err
		}
		s.Logf("training COSTREAM ensemble for %v (%d models)", m, EnsembleSize)
		return core.TrainEnsemble(train, val, m, s.trainConfig(100+int64(m)), EnsembleSize)
	})
}

// FlatModel returns the flat-vector baseline model for a metric, trained
// on the base split. Concurrent callers share one training run.
func (s *Suite) FlatModel(m core.Metric) (*flatvec.Model, error) {
	return get(&s.mu, s.flat, "base/"+m.String(), func() (*flatvec.Model, error) {
		train, _, _, err := s.BaseSplit()
		if err != nil {
			return nil, err
		}
		s.Logf("training flat-vector baseline for %v", m)
		return flatvec.Train(train, m, gbdt.DefaultConfig(200+int64(m)))
	})
}

// Predictor assembles the full five-metric COSTREAM predictor from the
// cached ensembles.
func (s *Suite) Predictor() (*core.Predictor, error) {
	pr := &core.Predictor{}
	for _, m := range core.AllMetrics() {
		e, err := s.Ensemble(m)
		if err != nil {
			return nil, err
		}
		switch m {
		case core.MetricThroughput:
			pr.Throughput = e
		case core.MetricProcLatency:
			pr.ProcLatency = e
		case core.MetricE2ELatency:
			pr.E2ELatency = e
		case core.MetricBackpressure:
			pr.Backpressure = e
		case core.MetricSuccess:
			pr.Success = e
		}
	}
	return pr, nil
}

// FlatPredictor assembles the flat-vector placement predictor.
func (s *Suite) FlatPredictor() (*flatvec.Predictor, error) {
	pr := &flatvec.Predictor{}
	for _, m := range core.AllMetrics() {
		f, err := s.FlatModel(m)
		if err != nil {
			return nil, err
		}
		switch m {
		case core.MetricThroughput:
			pr.Throughput = f
		case core.MetricProcLatency:
			pr.ProcLatency = f
		case core.MetricE2ELatency:
			pr.E2ELatency = f
		case core.MetricBackpressure:
			pr.Backpressure = f
		case core.MetricSuccess:
			pr.Success = f
		}
	}
	return pr, nil
}

package experiments

import (
	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/scenario"
	"costream/internal/workload"
)

// BenchmarkGroup is one column of Table VI-B: prediction quality on one
// unseen real-world benchmark query.
type BenchmarkGroup struct {
	Benchmark string
	Rows      []MetricRow
}

// Exp6Result reproduces Table VI-B.
type Exp6Result struct {
	Groups []BenchmarkGroup
}

// Exp6Benchmarks evaluates the base models on the DSPBench-style benchmark
// queries (Advertisement, Spike Detection, Smart Grid global/local), each
// executed evalN times with random event rates and placements.
func (s *Suite) Exp6Benchmarks() (*Exp6Result, error) {
	res := &Exp6Result{}
	for bi, id := range workload.AllBenchmarks() {
		id := id
		eval, err := s.corpus("benchmark/"+id.String(), func() (*dataset.Corpus, error) {
			cfg := scenario.BenchmarkConfig(s.evalN(), 7000+int64(bi), id)
			cfg.Sim = s.simConfig()
			return dataset.Build(cfg)
		})
		if err != nil {
			return nil, err
		}
		rows, err := s.compareRows(eval, core.AllMetrics(), 70+int64(bi))
		if err != nil {
			return nil, err
		}
		res.Groups = append(res.Groups, BenchmarkGroup{Benchmark: id.String(), Rows: rows})
	}
	return res, nil
}

// Table renders Table VI-B.
func (r *Exp6Result) Table() *Table {
	t := &Table{Title: "[Exp 6 / Table VI-B] Unseen real-world benchmarks"}
	for _, g := range r.Groups {
		t.Lines = append(t.Lines, g.Benchmark+":")
		for _, row := range g.Rows {
			t.Lines = append(t.Lines, "  "+row.format())
		}
	}
	return t
}

var _ = dataset.Corpus{}

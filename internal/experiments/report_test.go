package experiments

import (
	"bytes"
	"strings"
	"testing"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/sim"
)

// constPredictor returns a fixed value for every trace.
type constPredictor struct{ v float64 }

func (c constPredictor) PredictTrace(*dataset.Trace) (float64, error) { return c.v, nil }

func fakeCorpus(n int, throughput float64, backpressured bool) *dataset.Corpus {
	c := &dataset.Corpus{}
	for i := 0; i < n; i++ {
		bp := backpressured
		if i%2 == 0 {
			bp = !bp
		}
		c.Traces = append(c.Traces, &dataset.Trace{
			Metrics: &sim.Metrics{
				ThroughputTPS: throughput,
				ProcLatencyMS: 10,
				E2ELatencyMS:  20,
				Success:       true,
				Backpressured: bp,
			},
		})
	}
	return c
}

func TestCompareOnRegression(t *testing.T) {
	c := fakeCorpus(10, 100, false)
	row, err := compareOn(constPredictor{100}, constPredictor{50}, c, core.MetricThroughput, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.CoQ50 != 1 {
		t.Errorf("perfect predictor Q50 = %v, want 1", row.CoQ50)
	}
	if row.FlQ50 != 2 {
		t.Errorf("half predictor Q50 = %v, want 2", row.FlQ50)
	}
	if !row.IsRegression {
		t.Error("throughput row must be regression")
	}
}

func TestCompareOnClassificationBalances(t *testing.T) {
	c := fakeCorpus(10, 100, false) // alternating backpressure labels
	row, err := compareOn(constPredictor{1}, constPredictor{0}, c, core.MetricBackpressure, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Always-positive and always-negative predictors both score 50% on a
	// balanced set.
	if row.CoAcc != 0.5 || row.FlAcc != 0.5 {
		t.Errorf("accuracies = %v / %v, want 0.5 / 0.5", row.CoAcc, row.FlAcc)
	}
	if row.N != 10 {
		t.Errorf("balanced N = %d, want 10", row.N)
	}
}

func TestMetricRowFormats(t *testing.T) {
	reg := MetricRow{Metric: "throughput", IsRegression: true, CoQ50: 1.2, CoQ95: 3.4, FlQ50: 9.9, FlQ95: 100, N: 5}
	if s := reg.format(); !strings.Contains(s, "Q50") || !strings.Contains(s, "throughput") {
		t.Errorf("bad regression row format: %q", s)
	}
	cls := MetricRow{Metric: "success", CoAcc: 0.9, FlAcc: 0.7, N: 5}
	if s := cls.format(); !strings.Contains(s, "acc") {
		t.Errorf("bad classification row format: %q", s)
	}
}

func TestTableWriteText(t *testing.T) {
	tab := &Table{Title: "Demo", Lines: []string{"a", "b"}}
	var buf bytes.Buffer
	tab.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "a\nb\n") {
		t.Errorf("unexpected rendering: %q", out)
	}
}

func TestScaledFloors(t *testing.T) {
	s := NewSuite(0.0001)
	if got := s.scaled(2400, 300); got != 300 {
		t.Errorf("scaled floor = %d, want 300", got)
	}
	s2 := NewSuite(2)
	if got := s2.scaled(100, 40); got != 200 {
		t.Errorf("scaled 2x = %d, want 200", got)
	}
	if NewSuite(-1).Scale != 1 {
		t.Error("non-positive scale must default to 1")
	}
}

package experiments

import (
	"encoding/json"
	"fmt"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/gnn"
	"costream/internal/scenario"
)

// ChainGroup is one column of Table VI-A: prediction quality on filter
// chains of a given length, a query pattern absent from training data.
type ChainGroup struct {
	Filters int
	Rows    []MetricRow
}

// Exp5aResult reproduces Table VI-A.
type Exp5aResult struct {
	Groups []ChainGroup
}

func (s *Suite) chainCorpus(n int) (*dataset.Corpus, error) {
	return s.corpus(fmt.Sprintf("chains/%d", n), func() (*dataset.Corpus, error) {
		cfg := scenario.FilterChainConfig(s.evalN(), 6000+int64(n), n)
		cfg.Sim = s.simConfig()
		return dataset.Build(cfg)
	})
}

// Exp5aUnseenPatterns evaluates the base models on 2/3/4-filter chains
// (Table VI-A): the structure is unseen, so errors grow with chain length,
// but COSTREAM stays far ahead of the flat-vector baseline.
func (s *Suite) Exp5aUnseenPatterns() (*Exp5aResult, error) {
	res := &Exp5aResult{}
	for _, n := range []int{2, 3, 4} {
		eval, err := s.chainCorpus(n)
		if err != nil {
			return nil, err
		}
		rows, err := s.compareRows(eval, core.AllMetrics(), 60+int64(n))
		if err != nil {
			return nil, err
		}
		res.Groups = append(res.Groups, ChainGroup{Filters: n, Rows: rows})
	}
	return res, nil
}

// Table renders Table VI-A.
func (r *Exp5aResult) Table() *Table {
	t := &Table{Title: "[Exp 5a / Table VI-A] Unseen query patterns (filter chains)"}
	for _, g := range r.Groups {
		t.Lines = append(t.Lines, fmt.Sprintf("%d-filter chain:", g.Filters))
		for _, row := range g.Rows {
			t.Lines = append(t.Lines, "  "+row.format())
		}
	}
	return t
}

// FineTuneRow is one group of Figure 11: throughput q-errors on a chain
// length before and after few-shot fine-tuning.
type FineTuneRow struct {
	Filters              int
	BeforeQ50, BeforeQ95 float64
	AfterQ50, AfterQ95   float64
}

// Exp5bResult reproduces Figure 11.
type Exp5bResult struct {
	Rows []FineTuneRow
	// ExtraQueries is the size of the fine-tuning corpus.
	ExtraQueries int
}

// cloneModel deep-copies a trained cost model via its serialized form so
// fine-tuning does not disturb the cached ensemble member.
func cloneModel(m *core.CostModel) (*core.CostModel, error) {
	data, err := json.Marshal(m.Net)
	if err != nil {
		return nil, err
	}
	var net gnn.Model
	if err := json.Unmarshal(data, &net); err != nil {
		return nil, err
	}
	return &core.CostModel{Metric: m.Metric, Feat: m.Feat, Net: &net}, nil
}

// Exp5bFineTuning applies few-shot learning: the throughput model is
// fine-tuned with a small corpus of filter-chain queries and re-evaluated
// (Figure 11; the paper uses 3000 additional queries, scaled here).
func (s *Suite) Exp5bFineTuning() (*Exp5bResult, error) {
	base, err := s.Ensemble(core.MetricThroughput)
	if err != nil {
		return nil, err
	}
	tuned, err := cloneModel(base.Models[0])
	if err != nil {
		return nil, err
	}
	ftN := s.scaled(300, 60)
	// The "filter-chains" registry scenario cycles chain lengths 2-4 by
	// trace index, exactly the fine-tuning mix of the paper.
	ftCorpus, err := s.corpus("chains/finetune", func() (*dataset.Corpus, error) {
		return s.scenarioCorpus("filter-chains", ftN, 6500)
	})
	if err != nil {
		return nil, err
	}
	res := &Exp5bResult{ExtraQueries: ftCorpus.Len()}

	// Measure "before" with the single member model (the paper fine-tunes
	// its throughput model, not the ensemble).
	before := map[int][2]float64{}
	for _, n := range []int{2, 3, 4} {
		eval, err := s.chainCorpus(n)
		if err != nil {
			return nil, err
		}
		sum, err := core.EvaluateRegression(base.Models[0], eval, core.MetricThroughput)
		if err != nil {
			return nil, err
		}
		before[n] = [2]float64{sum.Median, sum.P95}
	}

	ftCfg := s.trainConfig(650)
	ftCfg.Epochs = s.scaled(20, 6)
	ftCfg.LR = 1e-3
	ftCfg.Patience = 0
	if err := tuned.FineTune(ftCorpus, ftCfg); err != nil {
		return nil, err
	}
	for _, n := range []int{2, 3, 4} {
		eval, err := s.chainCorpus(n)
		if err != nil {
			return nil, err
		}
		sum, err := core.EvaluateRegression(tuned, eval, core.MetricThroughput)
		if err != nil {
			return nil, err
		}
		b := before[n]
		res.Rows = append(res.Rows, FineTuneRow{
			Filters:   n,
			BeforeQ50: b[0], BeforeQ95: b[1],
			AfterQ50: sum.Median, AfterQ95: sum.P95,
		})
	}
	return res, nil
}

// Table renders Figure 11.
func (r *Exp5bResult) Table() *Table {
	t := &Table{Title: fmt.Sprintf("[Exp 5b / Figure 11] Few-shot fine-tuning of the throughput model (%d extra queries)", r.ExtraQueries)}
	for _, row := range r.Rows {
		t.Lines = append(t.Lines, fmt.Sprintf(
			"%d-filter chain: Q50 %6.2f -> %6.2f | Q95 %8.2f -> %8.2f",
			row.Filters, row.BeforeQ50, row.AfterQ50, row.BeforeQ95, row.AfterQ95))
	}
	return t
}

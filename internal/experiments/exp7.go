package experiments

import (
	"fmt"

	"costream/internal/core"
)

// AblationRow is one bar of Figure 12 or 13.
type AblationRow struct {
	Variant string
	Metric  string
	Q50     float64
	Q95     float64
}

// Exp7aResult reproduces Figure 12: featurization ablation for E2E latency.
type Exp7aResult struct {
	Rows []AblationRow
}

// Exp7aFeatureAblation trains the E2E-latency model under the three
// featurization schemes of Figure 12: query nodes only, +placement
// structure (hardware-blind), and the full featurization.
func (s *Suite) Exp7aFeatureAblation() (*Exp7aResult, error) {
	train, val, test, err := s.BaseSplit()
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		mode core.FeatureMode
	}{
		{"query nodes only", core.FeatQueryOnly},
		{"+ placement (hardware-blind)", core.FeatPlacementOnly},
		{"full featurization", core.FeatFull},
	}
	res := &Exp7aResult{}
	for vi, v := range variants {
		cfg := s.smallTrainConfig(7100 + int64(vi))
		cfg.Mode = v.mode
		model, err := core.Train(train, val, core.MetricE2ELatency, cfg)
		if err != nil {
			return nil, err
		}
		sum, err := core.EvaluateRegression(model, test, core.MetricE2ELatency)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant: v.name, Metric: core.MetricE2ELatency.String(),
			Q50: sum.Median, Q95: sum.P95,
		})
		s.Logf("exp7a %s done", v.name)
	}
	return res, nil
}

// Table renders Figure 12.
func (r *Exp7aResult) Table() *Table {
	t := &Table{Title: "[Exp 7a / Figure 12] Featurization ablation (E2E latency)"}
	for _, row := range r.Rows {
		t.Lines = append(t.Lines, fmt.Sprintf("%-30s Q50=%6.2f Q95=%8.2f", row.Variant, row.Q50, row.Q95))
	}
	return t
}

// Exp7bResult reproduces Figure 13: message passing scheme ablation.
type Exp7bResult struct {
	Rows []AblationRow
}

// Exp7bMessagePassing compares the paper's directed three-phase message
// passing against a traditional undirected scheme on the three regression
// metrics (Figure 13).
func (s *Suite) Exp7bMessagePassing() (*Exp7bResult, error) {
	train, val, test, err := s.BaseSplit()
	if err != nil {
		return nil, err
	}
	res := &Exp7bResult{}
	for mi, m := range []core.Metric{core.MetricE2ELatency, core.MetricProcLatency, core.MetricThroughput} {
		for _, trad := range []bool{false, true} {
			cfg := s.smallTrainConfig(7200 + int64(mi)*10)
			cfg.Traditional = trad
			model, err := core.Train(train, val, m, cfg)
			if err != nil {
				return nil, err
			}
			sum, err := core.EvaluateRegression(model, test, m)
			if err != nil {
				return nil, err
			}
			name := "ours"
			if trad {
				name = "traditional"
			}
			res.Rows = append(res.Rows, AblationRow{
				Variant: name, Metric: m.String(),
				Q50: sum.Median, Q95: sum.P95,
			})
		}
		s.Logf("exp7b %v done", m)
	}
	return res, nil
}

// Table renders Figure 13.
func (r *Exp7bResult) Table() *Table {
	t := &Table{Title: "[Exp 7b / Figure 13] Message passing ablation"}
	for _, row := range r.Rows {
		t.Lines = append(t.Lines, fmt.Sprintf("%-13s %-13s Q50=%6.2f Q95=%8.2f",
			row.Metric, row.Variant, row.Q50, row.Q95))
	}
	return t
}

package experiments

import (
	"costream/internal/core"
	"costream/internal/dataset"
)

// Exp3Result reproduces Table IV: interpolation to hardware configurations
// inside the training range but never seen during training.
type Exp3Result struct {
	Rows []MetricRow
}

// Exp3Interpolation evaluates the base models on queries executed on the
// unseen in-range hardware grid of Table IV-A, drawn from the
// "interpolation-hw" scenario of the registry.
func (s *Suite) Exp3Interpolation() (*Exp3Result, error) {
	eval, err := s.corpus("interpolation", func() (*dataset.Corpus, error) {
		return s.scenarioCorpus("interpolation-hw", s.evalN(), 4100)
	})
	if err != nil {
		return nil, err
	}
	rows, err := s.compareRows(eval, core.AllMetrics(), 41)
	if err != nil {
		return nil, err
	}
	return &Exp3Result{Rows: rows}, nil
}

// Table renders the result.
func (r *Exp3Result) Table() *Table {
	t := &Table{Title: "[Exp 3 / Table IV] Hardware interpolation (unseen in-range hardware)"}
	for _, row := range r.Rows {
		t.Lines = append(t.Lines, row.format())
	}
	return t
}

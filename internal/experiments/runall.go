package experiments

import (
	"fmt"
	"io"
	"time"
)

// RunAll executes every experiment in paper order and writes the rendered
// tables to w. It returns the tables for further processing (e.g. the
// EXPERIMENTS.md generator in cmd/costream-expts).
func (s *Suite) RunAll(w io.Writer) ([]*Table, error) {
	var tables []*Table
	emit := func(t *Table) {
		tables = append(tables, t)
		if w != nil {
			t.WriteText(w)
		}
	}
	step := func(name string, f func() (*Table, error)) error {
		start := time.Now()
		t, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		s.Logf("%s finished in %v", name, time.Since(start).Round(time.Second))
		emit(t)
		return nil
	}

	var e1 *Exp1Result
	var e3 *Exp3Result
	var e5 *Exp5aResult
	var e6 *Exp6Result

	if err := step("exp1-overall", func() (*Table, error) {
		r, err := s.Exp1Overall()
		if err != nil {
			return nil, err
		}
		e1 = r
		return r.Table(), nil
	}); err != nil {
		return tables, err
	}
	if err := step("exp1-hardware", func() (*Table, error) {
		r, err := s.Exp1Hardware()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	}); err != nil {
		return tables, err
	}
	if err := step("exp1-querytypes", func() (*Table, error) {
		r, err := s.Exp1QueryTypes()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	}); err != nil {
		return tables, err
	}
	if err := step("exp2a-placement", func() (*Table, error) {
		r, err := s.Exp2aPlacement()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	}); err != nil {
		return tables, err
	}
	if err := step("exp2b-monitoring", func() (*Table, error) {
		r, err := s.Exp2bMonitoring()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	}); err != nil {
		return tables, err
	}
	if err := step("exp3-interpolation", func() (*Table, error) {
		r, err := s.Exp3Interpolation()
		if err != nil {
			return nil, err
		}
		e3 = r
		return r.Table(), nil
	}); err != nil {
		return tables, err
	}
	if err := step("exp4-extrapolation", func() (*Table, error) {
		r, err := s.Exp4Extrapolation()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	}); err != nil {
		return tables, err
	}
	if err := step("exp5a-unseen-patterns", func() (*Table, error) {
		r, err := s.Exp5aUnseenPatterns()
		if err != nil {
			return nil, err
		}
		e5 = r
		return r.Table(), nil
	}); err != nil {
		return tables, err
	}
	if err := step("exp5b-finetuning", func() (*Table, error) {
		r, err := s.Exp5bFineTuning()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	}); err != nil {
		return tables, err
	}
	if err := step("exp6-benchmarks", func() (*Table, error) {
		r, err := s.Exp6Benchmarks()
		if err != nil {
			return nil, err
		}
		e6 = r
		return r.Table(), nil
	}); err != nil {
		return tables, err
	}
	if err := step("exp7a-feature-ablation", func() (*Table, error) {
		r, err := s.Exp7aFeatureAblation()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	}); err != nil {
		return tables, err
	}
	if err := step("exp7b-message-passing", func() (*Table, error) {
		r, err := s.Exp7bMessagePassing()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	}); err != nil {
		return tables, err
	}
	// Figure 1 aggregates already-computed results.
	emit(s.Fig1Summary(e1, e3, e5, e6).Table())
	return tables, nil
}

package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// RunAll executes every experiment of the paper and writes the rendered
// tables to w in paper order. It returns the tables for further
// processing (e.g. the EXPERIMENTS.md generator in cmd/costream-expts).
//
// Experiments run concurrently through a worker pool bounded by
// s.Workers (default GOMAXPROCS): each experiment is internally
// deterministic (fixed seeds, single-flight shared artifacts), so the
// tables are identical to a serial run; only wall-clock time changes.
// Tables are flushed to w incrementally, as soon as every earlier
// experiment has also finished, so the output order is stable too.
func (s *Suite) RunAll(w io.Writer) ([]*Table, error) {
	var e1 *Exp1Result
	var e3 *Exp3Result
	var e5 *Exp5aResult
	var e6 *Exp6Result

	type step struct {
		name string
		run  func() (*Table, error)
	}
	steps := []step{
		{"exp1-overall", func() (*Table, error) {
			r, err := s.Exp1Overall()
			if err != nil {
				return nil, err
			}
			e1 = r
			return r.Table(), nil
		}},
		{"exp1-hardware", func() (*Table, error) {
			r, err := s.Exp1Hardware()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"exp1-querytypes", func() (*Table, error) {
			r, err := s.Exp1QueryTypes()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"exp2a-placement", func() (*Table, error) {
			r, err := s.Exp2aPlacement()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"exp2b-monitoring", func() (*Table, error) {
			r, err := s.Exp2bMonitoring()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"exp2c-search", func() (*Table, error) {
			r, err := s.Exp2cSearchStrategies()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"exp3-interpolation", func() (*Table, error) {
			r, err := s.Exp3Interpolation()
			if err != nil {
				return nil, err
			}
			e3 = r
			return r.Table(), nil
		}},
		{"exp4-extrapolation", func() (*Table, error) {
			r, err := s.Exp4Extrapolation()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"exp5a-unseen-patterns", func() (*Table, error) {
			r, err := s.Exp5aUnseenPatterns()
			if err != nil {
				return nil, err
			}
			e5 = r
			return r.Table(), nil
		}},
		{"exp5b-finetuning", func() (*Table, error) {
			r, err := s.Exp5bFineTuning()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"exp6-benchmarks", func() (*Table, error) {
			r, err := s.Exp6Benchmarks()
			if err != nil {
				return nil, err
			}
			e6 = r
			return r.Table(), nil
		}},
		{"exp7a-feature-ablation", func() (*Table, error) {
			r, err := s.Exp7aFeatureAblation()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"exp7b-message-passing", func() (*Table, error) {
			r, err := s.Exp7bMessagePassing()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
	}

	results := make([]*Table, len(steps))
	stepErrs := make([]error, len(steps))
	var mu sync.Mutex
	var failed atomic.Bool
	done := make([]bool, len(steps))
	flushed := 0
	// flushReady emits every table whose predecessors (in paper order)
	// have all completed, preserving the serial output order. After a
	// failure nothing more is flushed, so the streamed output never has
	// silent gaps.
	flushReady := func() {
		mu.Lock()
		defer mu.Unlock()
		for flushed < len(steps) && done[flushed] && !failed.Load() {
			if w != nil && results[flushed] != nil {
				results[flushed].WriteText(w)
			}
			flushed++
		}
	}

	workers := s.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > len(steps) {
		workers = len(steps)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				// Once any experiment has failed, drain the remaining
				// indices without running them (matching the serial
				// behavior of stopping at the first error).
				if !failed.Load() {
					start := time.Now()
					t, err := steps[idx].run()
					if err != nil {
						stepErrs[idx] = fmt.Errorf("%s: %w", steps[idx].name, err)
						failed.Store(true)
					} else {
						s.Logf("%s finished in %v", steps[idx].name, time.Since(start).Round(time.Second))
					}
					mu.Lock()
					results[idx] = t
					mu.Unlock()
				}
				mu.Lock()
				done[idx] = true
				mu.Unlock()
				flushReady()
			}
		}()
	}
	for idx := range steps {
		next <- idx
	}
	close(next)
	wg.Wait()

	var tables []*Table
	for idx := range steps {
		if stepErrs[idx] != nil {
			return tables, stepErrs[idx]
		}
		tables = append(tables, results[idx])
	}

	// Figure 1 aggregates already-computed results.
	fig := s.Fig1Summary(e1, e3, e5, e6).Table()
	tables = append(tables, fig)
	if w != nil {
		fig.WriteText(w)
	}
	return tables, nil
}

package experiments

import (
	"fmt"

	"costream/internal/qerror"
)

// Fig1Result reproduces Figure 1: median E2E-latency q-errors for queries
// similar to the training data versus entirely unseen hardware, query
// structures and benchmarks, for COSTREAM and the flat-vector baseline.
type Fig1Result struct {
	Scenarios []Fig1Scenario
}

// Fig1Scenario is one bar pair of Figure 1.
type Fig1Scenario struct {
	Name  string
	CoQ50 float64
	FlQ50 float64
}

// Fig1Summary aggregates the E2E-latency rows of Exp 1, 3, 5a and 6 into
// the headline comparison of Figure 1.
func (s *Suite) Fig1Summary(e1 *Exp1Result, e3 *Exp3Result, e5 *Exp5aResult, e6 *Exp6Result) *Fig1Result {
	leRow := func(rows []MetricRow) (co, fl float64) {
		for _, r := range rows {
			if r.Metric == "e2e-latency" {
				return r.CoQ50, r.FlQ50
			}
		}
		return 0, 0
	}
	res := &Fig1Result{}
	co, fl := leRow(e1.Rows)
	res.Scenarios = append(res.Scenarios, Fig1Scenario{"Seen queries", co, fl})
	co, fl = leRow(e3.Rows)
	res.Scenarios = append(res.Scenarios, Fig1Scenario{"Unseen hardware", co, fl})
	var cos, fls []float64
	for _, g := range e5.Groups {
		c, f := leRow(g.Rows)
		cos, fls = append(cos, c), append(fls, f)
	}
	res.Scenarios = append(res.Scenarios, Fig1Scenario{
		"Unseen queries", qerror.Quantile(cos, 0.5), qerror.Quantile(fls, 0.5)})
	cos, fls = nil, nil
	for _, g := range e6.Groups {
		c, f := leRow(g.Rows)
		cos, fls = append(cos, c), append(fls, f)
	}
	res.Scenarios = append(res.Scenarios, Fig1Scenario{
		"Unseen benchmark", qerror.Quantile(cos, 0.5), qerror.Quantile(fls, 0.5)})
	return res
}

// Table renders Figure 1.
func (r *Fig1Result) Table() *Table {
	t := &Table{Title: "[Figure 1] Median E2E-latency q-error: COSTREAM vs Flat Vector"}
	for _, sc := range r.Scenarios {
		t.Lines = append(t.Lines, fmt.Sprintf("%-17s COSTREAM %6.2f | FlatVector %8.2f", sc.Name, sc.CoQ50, sc.FlQ50))
	}
	return t
}

package experiments

import (
	"fmt"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/hardware"
	"costream/internal/workload"
)

// ExtrapolationCell is one column of Table V: one hardware dimension
// restricted during training and evaluated beyond the training range.
type ExtrapolationCell struct {
	Dimension string // RAM | CPU | Bandwidth | Latency
	Direction string // stronger | weaker
	Rows      []MetricRow
}

// Exp4Result reproduces Table V (A: stronger resources, B: weaker).
type Exp4Result struct {
	Cells []ExtrapolationCell
}

// extrapolationSpec mirrors the training/evaluation ranges of Table V.
type extrapolationSpec struct {
	dim       string
	direction string
	train     func(g *hardware.Grid)
	eval      func(g *hardware.Grid)
}

func exp4Specs() []extrapolationSpec {
	return []extrapolationSpec{
		// A: extrapolation towards stronger resources.
		{"RAM", "stronger",
			func(g *hardware.Grid) { g.RAMMB = []float64{1000, 2000, 4000, 8000, 16000} },
			func(g *hardware.Grid) { g.RAMMB = []float64{24000, 32000} }},
		{"CPU", "stronger",
			func(g *hardware.Grid) { g.CPU = []float64{50, 100, 200, 300, 400, 500, 600} },
			func(g *hardware.Grid) { g.CPU = []float64{700, 800} }},
		{"Bandwidth", "stronger",
			func(g *hardware.Grid) { g.Bandwidth = []float64{25, 50, 100, 200, 300, 800, 1600, 3200} },
			func(g *hardware.Grid) { g.Bandwidth = []float64{6400, 10000} }},
		{"Latency", "stronger",
			func(g *hardware.Grid) { g.LatencyMS = []float64{5, 10, 20, 40, 80, 160} },
			func(g *hardware.Grid) { g.LatencyMS = []float64{1, 2} }},
		// B: extrapolation towards weaker resources.
		{"RAM", "weaker",
			func(g *hardware.Grid) { g.RAMMB = []float64{4000, 8000, 16000, 24000, 32000} },
			func(g *hardware.Grid) { g.RAMMB = []float64{1000, 2000} }},
		{"CPU", "weaker",
			func(g *hardware.Grid) { g.CPU = []float64{200, 300, 400, 500, 600, 700, 800} },
			func(g *hardware.Grid) { g.CPU = []float64{50, 100} }},
		{"Bandwidth", "weaker",
			func(g *hardware.Grid) { g.Bandwidth = []float64{100, 200, 300, 800, 1600, 3200, 6400, 10000} },
			func(g *hardware.Grid) { g.Bandwidth = []float64{25, 50} }},
		{"Latency", "weaker",
			func(g *hardware.Grid) { g.LatencyMS = []float64{1, 2, 5, 10, 20, 40} },
			func(g *hardware.Grid) { g.LatencyMS = []float64{80, 160} }},
	}
}

// Exp4Extrapolation retrains COSTREAM per Table V cell on a restricted
// hardware range and evaluates beyond it. Single models (not ensembles)
// keep the 8 cells x 5 metrics tractable; the paper's qualitative claim —
// graceful degradation, worst for slow networks — is preserved.
func (s *Suite) Exp4Extrapolation() (*Exp4Result, error) {
	res := &Exp4Result{}
	trainN := s.scaled(1200, 200)
	for si, spec := range exp4Specs() {
		seed := 5000 + int64(si)*17
		trainCorpus, err := s.corpus(fmt.Sprintf("exp4/train/%s-%s", spec.dim, spec.direction),
			func() (*dataset.Corpus, error) {
				gcfg := workload.DefaultConfig(seed)
				grid := hardware.TrainingGrid()
				spec.train(&grid)
				gcfg.HW = grid
				return dataset.Build(dataset.BuildConfig{N: trainN, Seed: seed, Gen: gcfg, Sim: s.simConfig()})
			})
		if err != nil {
			return nil, err
		}
		evalCorpus, err := s.corpus(fmt.Sprintf("exp4/eval/%s-%s", spec.dim, spec.direction),
			func() (*dataset.Corpus, error) {
				gcfg := workload.DefaultConfig(seed + 1)
				grid := hardware.TrainingGrid()
				spec.eval(&grid)
				gcfg.HW = grid
				return dataset.Build(dataset.BuildConfig{N: s.evalN(), Seed: seed + 1, Gen: gcfg, Sim: s.simConfig()})
			})
		if err != nil {
			return nil, err
		}
		train, val, _ := trainCorpus.Split(0.9, 0.1, seed)
		cell := ExtrapolationCell{Dimension: spec.dim, Direction: spec.direction}
		for _, m := range core.AllMetrics() {
			model, err := core.Train(train, val, m, s.smallTrainConfig(seed+int64(m)))
			if err != nil {
				return nil, err
			}
			row := MetricRow{Metric: m.String(), IsRegression: m.IsRegression()}
			if m.IsRegression() {
				sum, err := core.EvaluateRegression(model, evalCorpus, m)
				if err != nil {
					return nil, err
				}
				row.CoQ50, row.CoQ95, row.N = sum.Median, sum.P95, sum.N
			} else {
				bal := evalCorpus.Balanced(func(tr *dataset.Trace) bool { return m.Label(tr.Metrics) }, seed)
				if bal.Len() == 0 {
					bal = evalCorpus
				}
				acc, err := core.EvaluateClassification(model, bal, m)
				if err != nil {
					return nil, err
				}
				row.CoAcc, row.N = acc, bal.Len()
			}
			cell.Rows = append(cell.Rows, row)
		}
		s.Logf("exp4 %s/%s done", spec.dim, spec.direction)
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Table renders Table V.
func (r *Exp4Result) Table() *Table {
	t := &Table{Title: "[Exp 4 / Table V] Hardware extrapolation beyond the training range"}
	for _, cell := range r.Cells {
		t.Lines = append(t.Lines, fmt.Sprintf("%s towards %s resources:", cell.Dimension, cell.Direction))
		for _, row := range cell.Rows {
			if row.IsRegression {
				t.Lines = append(t.Lines, fmt.Sprintf("  %-14s Q50=%6.2f Q95=%8.2f (n=%d)",
					row.Metric, row.CoQ50, row.CoQ95, row.N))
			} else {
				t.Lines = append(t.Lines, fmt.Sprintf("  %-14s acc=%5.1f%% (n=%d)",
					row.Metric, 100*row.CoAcc, row.N))
			}
		}
	}
	return t
}

var _ = dataset.Corpus{}

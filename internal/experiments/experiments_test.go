package experiments

import (
	"bytes"
	"math"
	"os"
	"strings"
	"sync"
	"testing"

	"costream/internal/core"
)

// smokeSuite returns a tiny-scale suite shared by all tests in this
// package (so base corpora and ensembles train once): the unit tests
// verify wiring and result shapes; the quantitative paper-shape claims are
// exercised by the full-scale bench harness (bench_test.go,
// EXPERIMENTS.md). The shape tests run with t.Parallel(): the suite's
// single-flight artifact caching makes concurrent access safe, and on a
// multi-core runner the experiments overlap instead of queueing.
var sharedSuite = NewSuite(0.08)

func smokeSuite() *Suite {
	return sharedSuite
}

// TestArtifactsSingleFlight hammers the lazy getters concurrently: every
// caller must get the same artifact pointer, proving the suite builds each
// artifact exactly once even under concurrent RunAll scheduling.
func TestArtifactsSingleFlight(t *testing.T) {
	t.Parallel()
	s := smokeSuite()
	const callers = 8
	ensembles := make([]*core.Ensemble, callers)
	corpora := make([]interface{}, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := s.BaseCorpus()
			if err != nil {
				t.Error(err)
				return
			}
			corpora[i] = c
			e, err := s.Ensemble(core.MetricProcLatency)
			if err != nil {
				t.Error(err)
				return
			}
			ensembles[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if corpora[i] != corpora[0] {
			t.Fatal("concurrent BaseCorpus callers got different corpora")
		}
		if ensembles[i] != ensembles[0] {
			t.Fatal("concurrent Ensemble callers got different ensembles")
		}
	}
}

func TestScaleFromEnv(t *testing.T) {
	old := os.Getenv("COSTREAM_SCALE")
	defer os.Setenv("COSTREAM_SCALE", old)
	os.Setenv("COSTREAM_SCALE", "0.5")
	if s := ScaleFromEnv(); s != 0.5 {
		t.Errorf("ScaleFromEnv = %v, want 0.5", s)
	}
	os.Setenv("COSTREAM_SCALE", "bogus")
	if s := ScaleFromEnv(); s != 1.0 {
		t.Errorf("ScaleFromEnv with bogus value = %v, want 1.0", s)
	}
	os.Setenv("COSTREAM_SCALE", "")
	if s := ScaleFromEnv(); s != 1.0 {
		t.Errorf("ScaleFromEnv unset = %v, want 1.0", s)
	}
}

func TestSuiteCachesArtifacts(t *testing.T) {
	t.Parallel()
	s := smokeSuite()
	c1, err := s.BaseCorpus()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.BaseCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("BaseCorpus not cached")
	}
	e1, err := s.Ensemble(core.MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Ensemble(core.MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("Ensemble not cached")
	}
	if len(e1.Models) != EnsembleSize {
		t.Errorf("ensemble size %d, want %d", len(e1.Models), EnsembleSize)
	}
}

func checkRow(t *testing.T, row MetricRow, context string) {
	t.Helper()
	if row.IsRegression {
		if row.CoQ50 < 1 || math.IsNaN(row.CoQ50) {
			t.Errorf("%s %s: COSTREAM Q50 = %v, want >= 1", context, row.Metric, row.CoQ50)
		}
		if row.CoQ95 < row.CoQ50 {
			t.Errorf("%s %s: Q95 %v < Q50 %v", context, row.Metric, row.CoQ95, row.CoQ50)
		}
	} else {
		if row.CoAcc < 0 || row.CoAcc > 1 {
			t.Errorf("%s %s: accuracy %v out of [0,1]", context, row.Metric, row.CoAcc)
		}
	}
	if row.N <= 0 {
		t.Errorf("%s %s: N = %d", context, row.Metric, row.N)
	}
}

func TestExp1OverallShape(t *testing.T) {
	t.Parallel()
	s := smokeSuite()
	r, err := s.Exp1Overall()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("Exp1 has %d rows, want 5", len(r.Rows))
	}
	for _, row := range r.Rows {
		checkRow(t, row, "exp1")
	}
	var buf bytes.Buffer
	r.Table().WriteText(&buf)
	if !strings.Contains(buf.String(), "Table III") {
		t.Error("table rendering missing title")
	}
}

func TestExp1HardwareAndQueryTypes(t *testing.T) {
	t.Parallel()
	s := smokeSuite()
	hw, err := s.Exp1Hardware()
	if err != nil {
		t.Fatal(err)
	}
	if len(hw.Buckets) == 0 {
		t.Fatal("no hardware buckets")
	}
	dims := map[string]bool{}
	for _, b := range hw.Buckets {
		dims[b.Dimension] = true
		if b.N <= 0 {
			t.Errorf("bucket %s/%s empty", b.Dimension, b.Label)
		}
	}
	for _, d := range []string{"cpu", "ram", "bandwidth", "latency"} {
		if !dims[d] {
			t.Errorf("missing dimension %s", d)
		}
	}
	qt, err := s.Exp1QueryTypes()
	if err != nil {
		t.Fatal(err)
	}
	if len(qt.Rows) != 6 {
		t.Fatalf("query types rows = %d, want 6", len(qt.Rows))
	}
	qt.Table().WriteText(&bytes.Buffer{})
	hw.Table().WriteText(&bytes.Buffer{})
}

func TestExp2aShape(t *testing.T) {
	t.Parallel()
	s := smokeSuite()
	r, err := s.Exp2aPlacement()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("exp2a rows = %d, want 6", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.N == 0 {
			t.Errorf("%s: no optimized queries", row.Class)
		}
		if row.CoSpeedup <= 0 || math.IsNaN(row.CoSpeedup) {
			t.Errorf("%s: speedup %v", row.Class, row.CoSpeedup)
		}
	}
	r.Table().WriteText(&bytes.Buffer{})
}

func TestExp2bShape(t *testing.T) {
	t.Parallel()
	s := smokeSuite()
	r, err := s.Exp2bMonitoring()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no monitoring rows")
	}
	for _, row := range r.Rows {
		if row.SlowdownX <= 0 {
			t.Errorf("slow-down %v at rate %v", row.SlowdownX, row.EventRate)
		}
	}
	r.Table().WriteText(&bytes.Buffer{})
}

func TestExp2cShape(t *testing.T) {
	t.Parallel()
	s := smokeSuite()
	r, err := s.Exp2cSearchStrategies()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("exp2c rows = %d, want 4 strategies", len(r.Rows))
	}
	if r.Budget <= 0 {
		t.Errorf("budget %d", r.Budget)
	}
	for _, row := range r.Rows {
		if row.N == 0 {
			t.Errorf("%s: no searched queries", row.Strategy)
		}
		if row.MedSpeedup <= 0 || math.IsNaN(row.MedSpeedup) {
			t.Errorf("%s: speed-up %v", row.Strategy, row.MedSpeedup)
		}
		if row.MeanExamined <= 0 || row.MeanExamined > float64(r.Budget) {
			t.Errorf("%s: mean examined %v outside (0, %d]", row.Strategy, row.MeanExamined, r.Budget)
		}
	}
	r.Table().WriteText(&bytes.Buffer{})
}

func TestExp3Shape(t *testing.T) {
	t.Parallel()
	s := smokeSuite()
	r, err := s.Exp3Interpolation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("exp3 rows = %d, want 5", len(r.Rows))
	}
	for _, row := range r.Rows {
		checkRow(t, row, "exp3")
	}
}

func TestExp5Shape(t *testing.T) {
	t.Parallel()
	s := smokeSuite()
	r, err := s.Exp5aUnseenPatterns()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Groups) != 3 {
		t.Fatalf("chain groups = %d, want 3", len(r.Groups))
	}
	for _, g := range r.Groups {
		for _, row := range g.Rows {
			checkRow(t, row, "exp5a")
		}
	}
	ft, err := s.Exp5bFineTuning()
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Rows) != 3 {
		t.Fatalf("fine-tune rows = %d, want 3", len(ft.Rows))
	}
	for _, row := range ft.Rows {
		if row.BeforeQ50 < 1 || row.AfterQ50 < 1 {
			t.Errorf("q-errors below 1: %+v", row)
		}
	}
	ft.Table().WriteText(&bytes.Buffer{})
}

func TestExp6Shape(t *testing.T) {
	t.Parallel()
	s := smokeSuite()
	r, err := s.Exp6Benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Groups) != 4 {
		t.Fatalf("benchmark groups = %d, want 4", len(r.Groups))
	}
	names := map[string]bool{}
	for _, g := range r.Groups {
		names[g.Benchmark] = true
		for _, row := range g.Rows {
			checkRow(t, row, "exp6/"+g.Benchmark)
		}
	}
	for _, want := range []string{"Advertisement", "Spike Detection", "Smart Grid (global)", "Smart Grid (local)"} {
		if !names[want] {
			t.Errorf("missing benchmark %q", want)
		}
	}
}

func TestExp7Shape(t *testing.T) {
	t.Parallel()
	s := smokeSuite()
	a, err := s.Exp7aFeatureAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("exp7a rows = %d, want 3", len(a.Rows))
	}
	b, err := s.Exp7bMessagePassing()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 6 {
		t.Fatalf("exp7b rows = %d, want 6", len(b.Rows))
	}
	a.Table().WriteText(&bytes.Buffer{})
	b.Table().WriteText(&bytes.Buffer{})
}

func TestFig1Aggregation(t *testing.T) {
	e1 := &Exp1Result{Rows: []MetricRow{{Metric: "e2e-latency", IsRegression: true, CoQ50: 1.4, FlQ50: 13}}}
	e3 := &Exp3Result{Rows: []MetricRow{{Metric: "e2e-latency", IsRegression: true, CoQ50: 1.6, FlQ50: 60}}}
	e5 := &Exp5aResult{Groups: []ChainGroup{
		{Filters: 2, Rows: []MetricRow{{Metric: "e2e-latency", IsRegression: true, CoQ50: 1.7, FlQ50: 260}}},
		{Filters: 3, Rows: []MetricRow{{Metric: "e2e-latency", IsRegression: true, CoQ50: 2.2, FlQ50: 536}}},
		{Filters: 4, Rows: []MetricRow{{Metric: "e2e-latency", IsRegression: true, CoQ50: 2.7, FlQ50: 538}}},
	}}
	e6 := &Exp6Result{Groups: []BenchmarkGroup{
		{Benchmark: "A", Rows: []MetricRow{{Metric: "e2e-latency", IsRegression: true, CoQ50: 2.0, FlQ50: 1.3}}},
		{Benchmark: "B", Rows: []MetricRow{{Metric: "e2e-latency", IsRegression: true, CoQ50: 1.4, FlQ50: 2.3}}},
	}}
	s := NewSuite(1)
	fig := s.Fig1Summary(e1, e3, e5, e6)
	if len(fig.Scenarios) != 4 {
		t.Fatalf("scenarios = %d, want 4", len(fig.Scenarios))
	}
	if fig.Scenarios[0].CoQ50 != 1.4 || fig.Scenarios[1].CoQ50 != 1.6 {
		t.Error("seen/unseen-hardware values wrong")
	}
	if fig.Scenarios[2].CoQ50 != 2.2 {
		t.Errorf("unseen-queries median = %v, want 2.2", fig.Scenarios[2].CoQ50)
	}
	fig.Table().WriteText(&bytes.Buffer{})
}

package experiments

import (
	"fmt"
	"io"
	"strings"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/qerror"
)

// MetricRow is one table row comparing COSTREAM and the flat-vector
// baseline on one cost metric.
type MetricRow struct {
	Metric       string
	IsRegression bool
	// Regression: q-error quantiles.
	CoQ50, CoQ95 float64
	FlQ50, FlQ95 float64
	// Classification: accuracy in [0,1].
	CoAcc, FlAcc float64
	N            int
}

func (r MetricRow) format() string {
	if r.IsRegression {
		return fmt.Sprintf("%-18s COSTREAM Q50=%6.2f Q95=%8.2f | FlatVector Q50=%8.2f Q95=%10.2f  (n=%d)",
			r.Metric, r.CoQ50, r.CoQ95, r.FlQ50, r.FlQ95, r.N)
	}
	return fmt.Sprintf("%-18s COSTREAM acc=%5.1f%%          | FlatVector acc=%5.1f%%              (n=%d)",
		r.Metric, 100*r.CoAcc, 100*r.FlAcc, r.N)
}

// Table is a titled collection of rows with free-form lines.
type Table struct {
	Title string
	Lines []string
}

// WriteText renders the table.
func (t *Table) WriteText(w io.Writer) {
	fmt.Fprintln(w, t.Title)
	fmt.Fprintln(w, strings.Repeat("-", len(t.Title)))
	for _, l := range t.Lines {
		fmt.Fprintln(w, l)
	}
	fmt.Fprintln(w)
}

// compareRows evaluates COSTREAM ensembles and the flat-vector baseline on
// an evaluation corpus over the given metrics, balancing classification
// subsets as the paper does.
func (s *Suite) compareRows(eval *dataset.Corpus, metrics []core.Metric, balanceSeed int64) ([]MetricRow, error) {
	var rows []MetricRow
	for _, m := range metrics {
		e, err := s.Ensemble(m)
		if err != nil {
			return nil, err
		}
		f, err := s.FlatModel(m)
		if err != nil {
			return nil, err
		}
		row, err := compareOn(e, f, eval, m, balanceSeed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// compareOn evaluates one COSTREAM predictor and one baseline predictor on
// a corpus for one metric.
func compareOn(co, fl core.TracePredictor, eval *dataset.Corpus, m core.Metric, balanceSeed int64) (MetricRow, error) {
	row := MetricRow{Metric: m.String(), IsRegression: m.IsRegression()}
	if m.IsRegression() {
		cs, err := core.EvaluateRegression(co, eval, m)
		if err != nil {
			return row, err
		}
		fs, err := core.EvaluateRegression(fl, eval, m)
		if err != nil {
			return row, err
		}
		row.CoQ50, row.CoQ95 = cs.Median, cs.P95
		row.FlQ50, row.FlQ95 = fs.Median, fs.P95
		row.N = cs.N
		return row, nil
	}
	bal := eval.Balanced(func(tr *dataset.Trace) bool { return m.Label(tr.Metrics) }, balanceSeed)
	if bal.Len() == 0 {
		// Single-class evaluation sets fall back to the raw corpus.
		bal = eval
	}
	ca, err := core.EvaluateClassification(co, bal, m)
	if err != nil {
		return row, err
	}
	fa, err := core.EvaluateClassification(fl, bal, m)
	if err != nil {
		return row, err
	}
	row.CoAcc, row.FlAcc = ca, fa
	row.N = bal.Len()
	return row, nil
}

// regressionSummary evaluates a single predictor on one regression metric.
func regressionSummary(p core.TracePredictor, eval *dataset.Corpus, m core.Metric) (qerror.Summary, error) {
	return core.EvaluateRegression(p, eval, m)
}

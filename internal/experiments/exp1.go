package experiments

import (
	"fmt"
	"math"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/qerror"
	"costream/internal/scenario"
	"costream/internal/sim"
	"costream/internal/stream"
)

// Exp1Result reproduces Table III: overall q-errors and accuracies on the
// held-out test split, COSTREAM vs the flat-vector baseline.
type Exp1Result struct {
	Rows []MetricRow
}

// Exp1Overall runs Exp 1 on the base test split (Table III).
func (s *Suite) Exp1Overall() (*Exp1Result, error) {
	_, _, test, err := s.BaseSplit()
	if err != nil {
		return nil, err
	}
	rows, err := s.compareRows(test, core.AllMetrics(), 17)
	if err != nil {
		return nil, err
	}
	return &Exp1Result{Rows: rows}, nil
}

// Table renders the result.
func (r *Exp1Result) Table() *Table {
	t := &Table{Title: "[Exp 1 / Table III] Overall prediction accuracy on the test set"}
	for _, row := range r.Rows {
		t.Lines = append(t.Lines, row.format())
	}
	return t
}

// HardwareBucket is one group of Figure 7: test traces whose mean hardware
// feature falls into one grid bucket.
type HardwareBucket struct {
	Dimension string // cpu | ram | bandwidth | latency
	Label     string // bucket center, e.g. "400"
	N         int
	Q50T      float64 // throughput median q-error
	Q50Lp     float64
	Q50Le     float64
	AccRO     float64
	AccS      float64
}

// Exp1HardwareResult reproduces Figure 7.
type Exp1HardwareResult struct {
	Buckets []HardwareBucket
}

// Exp1Hardware groups test-set predictions by the mean hardware features of
// each trace's cluster (Figure 7).
func (s *Suite) Exp1Hardware() (*Exp1HardwareResult, error) {
	_, _, test, err := s.BaseSplit()
	if err != nil {
		return nil, err
	}
	dims := []struct {
		name    string
		edges   []float64
		extract func(tr *dataset.Trace) float64
	}{
		{"cpu", []float64{200, 400, 600, 900}, func(tr *dataset.Trace) float64 {
			c, _, _, _ := tr.Cluster.MeanFeatures()
			return c
		}},
		{"ram", []float64{4000, 12000, 24000, 40000}, func(tr *dataset.Trace) float64 {
			_, r, _, _ := tr.Cluster.MeanFeatures()
			return r
		}},
		{"bandwidth", []float64{400, 1600, 6400, 12000}, func(tr *dataset.Trace) float64 {
			_, _, b, _ := tr.Cluster.MeanFeatures()
			return b
		}},
		{"latency", []float64{10, 40, 80, 200}, func(tr *dataset.Trace) float64 {
			_, _, _, l := tr.Cluster.MeanFeatures()
			return l
		}},
	}
	res := &Exp1HardwareResult{}
	for _, d := range dims {
		groups := make([][]*dataset.Trace, len(d.edges))
		for _, tr := range test.Traces {
			v := d.extract(tr)
			for b, edge := range d.edges {
				if v <= edge || b == len(d.edges)-1 {
					groups[b] = append(groups[b], tr)
					break
				}
			}
		}
		for b, traces := range groups {
			if len(traces) == 0 {
				continue
			}
			bucket, err := s.evalBucket(traces)
			if err != nil {
				return nil, err
			}
			bucket.Dimension = d.name
			bucket.Label = fmt.Sprintf("<=%.0f", d.edges[b])
			res.Buckets = append(res.Buckets, bucket)
		}
	}
	return res, nil
}

func (s *Suite) evalBucket(traces []*dataset.Trace) (HardwareBucket, error) {
	sub := &dataset.Corpus{Traces: traces}
	bucket := HardwareBucket{N: len(traces)}
	for _, m := range []core.Metric{core.MetricThroughput, core.MetricProcLatency, core.MetricE2ELatency} {
		e, err := s.Ensemble(m)
		if err != nil {
			return bucket, err
		}
		sum, err := regressionSummary(e, sub, m)
		if err != nil {
			// A bucket can lack successful traces; mark as NaN.
			sum = qerror.Summary{Median: math.NaN()}
		}
		switch m {
		case core.MetricThroughput:
			bucket.Q50T = sum.Median
		case core.MetricProcLatency:
			bucket.Q50Lp = sum.Median
		case core.MetricE2ELatency:
			bucket.Q50Le = sum.Median
		}
	}
	for _, m := range []core.Metric{core.MetricBackpressure, core.MetricSuccess} {
		e, err := s.Ensemble(m)
		if err != nil {
			return bucket, err
		}
		acc, err := core.EvaluateClassification(e, sub, m)
		if err != nil {
			acc = math.NaN()
		}
		if m == core.MetricBackpressure {
			bucket.AccRO = acc
		} else {
			bucket.AccS = acc
		}
	}
	return bucket, nil
}

// Table renders Figure 7 as rows.
func (r *Exp1HardwareResult) Table() *Table {
	t := &Table{Title: "[Exp 1 / Figure 7] Prediction quality over hardware feature buckets"}
	for _, b := range r.Buckets {
		t.Lines = append(t.Lines, fmt.Sprintf(
			"%-9s %-8s Q50(T)=%5.2f Q50(Lp)=%5.2f Q50(Le)=%5.2f accRO=%5.1f%% accS=%5.1f%% (n=%d)",
			b.Dimension, b.Label, b.Q50T, b.Q50Lp, b.Q50Le, 100*b.AccRO, 100*b.AccS, b.N))
	}
	return t
}

// QueryTypeRow is one group of Figure 8.
type QueryTypeRow struct {
	Class string
	N     int
	Q50T  float64
	Q50Lp float64
	Q50Le float64
	AccRO float64
	AccS  float64
}

// Exp1QueryTypesResult reproduces Figure 8.
type Exp1QueryTypesResult struct {
	Rows []QueryTypeRow
}

// Exp1QueryTypes evaluates the base models per query class on freshly
// generated in-distribution queries (Figure 8).
func (s *Suite) Exp1QueryTypes() (*Exp1QueryTypesResult, error) {
	res := &Exp1QueryTypesResult{}
	classes := []stream.QueryClass{
		stream.ClassLinear, stream.ClassLinearAgg,
		stream.ClassTwoWayJoin, stream.ClassTwoWayJoinAgg,
		stream.ClassThreeWayJoin, stream.ClassThreeWayJoinAgg,
	}
	for ci, class := range classes {
		class := class
		eval, err := s.corpus("querytype/"+class.String(), func() (*dataset.Corpus, error) {
			cfg := scenario.QueryClassConfig(s.evalN(), 3000+int64(ci), class)
			cfg.Sim = s.simConfig()
			return dataset.Build(cfg)
		})
		if err != nil {
			return nil, err
		}
		row := QueryTypeRow{Class: class.String(), N: eval.Len()}
		bucket, err := s.evalBucket(eval.Traces)
		if err != nil {
			return nil, err
		}
		row.Q50T, row.Q50Lp, row.Q50Le = bucket.Q50T, bucket.Q50Lp, bucket.Q50Le
		row.AccRO, row.AccS = bucket.AccRO, bucket.AccS
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders Figure 8 as rows.
func (r *Exp1QueryTypesResult) Table() *Table {
	t := &Table{Title: "[Exp 1 / Figure 8] Prediction quality over query types"}
	for _, row := range r.Rows {
		t.Lines = append(t.Lines, fmt.Sprintf(
			"%-16s Q50(T)=%5.2f Q50(Lp)=%5.2f Q50(Le)=%5.2f accRO=%5.1f%% accS=%5.1f%% (n=%d)",
			row.Class, row.Q50T, row.Q50Lp, row.Q50Le, 100*row.AccRO, 100*row.AccS, row.N))
	}
	return t
}

// helper used by tests.
var _ = sim.Config{}

package experiments

import (
	"fmt"
	"math/rand"

	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/qerror"
	"costream/internal/sim"
	"costream/internal/stream"
	"costream/internal/workload"
)

// SpeedupRow is one bar pair of Figure 9: median speed-up of the optimized
// initial placement over the plain heuristic placement, for COSTREAM and
// the flat-vector baseline.
type SpeedupRow struct {
	Class     string
	N         int
	CoSpeedup float64 // median Lp(initial) / Lp(COSTREAM-optimized)
	FlSpeedup float64 // median Lp(initial) / Lp(flat-vector-optimized)
}

// Exp2aResult reproduces Figure 9.
type Exp2aResult struct {
	Rows []SpeedupRow
}

// failedLatencySentinelMS stands in for the latency of an unsuccessful or
// crashed execution: the full execution horizon. The paper's failed
// initial placements likewise manifest as extreme latencies.
const failedLatencySentinelMS = 120_000

func measuredLp(m *sim.Metrics) float64 {
	if !m.Success || m.Crashed {
		return failedLatencySentinelMS
	}
	return m.ProcLatencyMS
}

// Exp2aPlacement optimizes the initial placement of n queries per query
// class with COSTREAM and the baseline, and reports median speed-ups over
// the plain heuristic initial placement [32] (Figure 9).
func (s *Suite) Exp2aPlacement() (*Exp2aResult, error) {
	coPred, err := s.Predictor()
	if err != nil {
		return nil, err
	}
	flPred, err := s.FlatPredictor()
	if err != nil {
		return nil, err
	}
	nPerClass := s.scaled(50, 12)
	const candidates = 16
	classes := []stream.QueryClass{
		stream.ClassLinear, stream.ClassLinearAgg,
		stream.ClassTwoWayJoin, stream.ClassTwoWayJoinAgg,
		stream.ClassThreeWayJoin, stream.ClassThreeWayJoinAgg,
	}
	res := &Exp2aResult{}
	simCfg := s.simConfig()
	for ci, class := range classes {
		gen := workload.New(workload.DefaultConfig(8800 + int64(ci)))
		rng := rand.New(rand.NewSource(4400 + int64(ci)))
		var coRatios, flRatios []float64
		for i := 0; i < nPerClass; i++ {
			q := gen.QueryOfClass(class)
			cluster := gen.Cluster()
			initial, err := placement.HeuristicInitial(rng, q, cluster)
			if err != nil {
				continue
			}
			cands := placement.Enumerate(rng, q, cluster, candidates)
			if len(cands) == 0 {
				continue
			}
			runCfg := simCfg
			runCfg.Seed = int64(9000 + ci*1000 + i)
			initM, err := sim.Run(q, cluster, initial, runCfg)
			if err != nil {
				return nil, err
			}
			initLp := measuredLp(initM)

			coRes, err := placement.OptimizeOpts(coPred, q, cluster, cands, placement.MinProcLatency, s.optimizeOpts())
			if err != nil {
				return nil, err
			}
			coM, err := sim.Run(q, cluster, coRes.Placement, runCfg)
			if err != nil {
				return nil, err
			}
			coRatios = append(coRatios, initLp/maxf(measuredLp(coM), 1e-3))

			flRes, err := placement.OptimizeOpts(flPred, q, cluster, cands, placement.MinProcLatency, s.optimizeOpts())
			if err != nil {
				return nil, err
			}
			flM, err := sim.Run(q, cluster, flRes.Placement, runCfg)
			if err != nil {
				return nil, err
			}
			flRatios = append(flRatios, initLp/maxf(measuredLp(flM), 1e-3))
		}
		res.Rows = append(res.Rows, SpeedupRow{
			Class:     class.String(),
			N:         len(coRatios),
			CoSpeedup: qerror.Quantile(coRatios, 0.5),
			FlSpeedup: qerror.Quantile(flRatios, 0.5),
		})
		s.Logf("exp2a %v done (n=%d)", class, len(coRatios))
	}
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Table renders Figure 9 as rows.
func (r *Exp2aResult) Table() *Table {
	t := &Table{Title: "[Exp 2a / Figure 9] Median Lp speed-up of optimized initial placements"}
	for _, row := range r.Rows {
		t.Lines = append(t.Lines, fmt.Sprintf(
			"%-16s COSTREAM %6.2fx | FlatVector %6.2fx (n=%d)",
			row.Class, row.CoSpeedup, row.FlSpeedup, row.N))
	}
	return t
}

// MonitoringRow is one point of Figure 10: for a linear filter query with
// the given event rate and selectivity, the initial slow-down of the
// monitoring baseline relative to COSTREAM's initial placement, and the
// monitoring time it needed to become competitive.
type MonitoringRow struct {
	EventRate   float64
	Selectivity float64
	// SlowdownX is Lp(monitoring initial) / Lp(COSTREAM initial).
	SlowdownX float64
	// OverheadS is the monitoring + migration time until the baseline's
	// placement reached within 5% of COSTREAM's latency; negative means
	// it never did within its budget.
	OverheadS float64
}

// Exp2bResult reproduces Figure 10.
type Exp2bResult struct {
	Rows []MonitoringRow
}

// Exp2bMonitoring compares COSTREAM's initial placement against the online
// monitoring baseline [1] over an event-rate x selectivity grid of linear
// filter queries (Figure 10).
func (s *Suite) Exp2bMonitoring() (*Exp2bResult, error) {
	coPred, err := s.Predictor()
	if err != nil {
		return nil, err
	}
	rates := []float64{100, 200, 400, 800, 1600, 3200, 6400}
	sels := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	if s.Scale < 1 {
		rates = []float64{100, 800, 6400}
		sels = []float64{0.1, 0.5, 1.0}
	}
	gen := workload.New(workload.DefaultConfig(555))
	rng := rand.New(rand.NewSource(556))
	simCfg := s.simConfig()
	mcfg := placement.DefaultMonitorConfig(simCfg)
	res := &Exp2bResult{}
	for _, rate := range rates {
		for _, sel := range sels {
			q := gen.FilterQuery(rate, sel)
			cluster := gen.Cluster()
			cands := placement.Enumerate(rng, q, cluster, 16)
			if len(cands) == 0 {
				continue
			}
			coRes, err := placement.OptimizeOpts(coPred, q, cluster, cands, placement.MinProcLatency, s.optimizeOpts())
			if err != nil {
				return nil, err
			}
			coM, err := sim.Run(q, cluster, coRes.Placement, simCfg)
			if err != nil {
				return nil, err
			}
			coLp := measuredLp(coM)

			initial, err := placement.HeuristicInitial(rng, q, cluster)
			if err != nil {
				continue
			}
			steps, err := placement.OnlineMonitoring(q, cluster, initial, mcfg)
			if err != nil {
				return nil, err
			}
			row := MonitoringRow{
				EventRate:   rate,
				Selectivity: sel,
				SlowdownX:   measuredLp(steps[0].Metrics) / maxf(coLp, 1e-3),
				OverheadS:   -1,
			}
			for _, st := range steps {
				if measuredLp(st.Metrics) <= coLp*1.05 {
					row.OverheadS = st.ElapsedS
					break
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// SearchStrategyRow is one row of the Exp 2c search-strategy comparison:
// for one strategy under the shared candidate budget, the median measured
// Lp speed-up over the plain heuristic initial placement, the median
// predicted Lp of the chosen placements, and the mean candidates scored.
type SearchStrategyRow struct {
	Strategy     string
	N            int
	MedSpeedup   float64
	MedPredLp    float64
	MeanExamined float64
}

// Exp2cResult extends Exp 2 beyond the paper: it compares the placement
// search strategies (random sampling as in the paper, plus exhaustive,
// beam and local search over the same learned cost model) under one
// candidate budget on larger clusters, where blind sampling thins out.
type Exp2cResult struct {
	Budget int
	Rows   []SearchStrategyRow
}

// Exp2cSearchStrategies runs every placement search strategy with the
// COSTREAM predictor over a mixed-class query set on 8-14 host clusters
// and reports per-strategy quality under a shared candidate budget.
func (s *Suite) Exp2cSearchStrategies() (*Exp2cResult, error) {
	coPred, err := s.Predictor()
	if err != nil {
		return nil, err
	}
	n := s.scaled(24, 4)
	const budget = 48
	wcfg := workload.DefaultConfig(7700)
	wcfg.MinHosts, wcfg.MaxHosts = 8, 14
	gen := workload.New(wcfg)
	rng := rand.New(rand.NewSource(7701))
	strategies := []placement.Strategy{
		placement.RandomSample{},
		placement.Exhaustive{},
		placement.Beam{Width: 6},
		placement.LocalSearch{},
	}
	simCfg := s.simConfig()
	ratios := make([][]float64, len(strategies))
	predLp := make([][]float64, len(strategies))
	examined := make([]int, len(strategies))
	counted := make([]int, len(strategies))
	for i := 0; i < n; i++ {
		q := gen.Query()
		cluster := gen.Cluster()
		initial, err := placement.HeuristicInitial(rng, q, cluster)
		if err != nil {
			continue
		}
		runCfg := simCfg
		runCfg.Seed = int64(7800 + i)
		initM, err := sim.Run(q, cluster, initial, runCfg)
		if err != nil {
			return nil, err
		}
		initLp := measuredLp(initM)
		for si, strat := range strategies {
			res, err := placement.Search(coPred, q, cluster, strat, placement.MinProcLatency,
				placement.Budget{MaxCandidates: budget},
				placement.SearchOptions{Seed: int64(7900 + i), Workers: s.Workers})
			if err != nil {
				continue
			}
			m, err := sim.Run(q, cluster, res.Placement, runCfg)
			if err != nil {
				return nil, err
			}
			ratios[si] = append(ratios[si], initLp/maxf(measuredLp(m), 1e-3))
			predLp[si] = append(predLp[si], res.Costs.ProcLatencyMS)
			examined[si] += res.Examined
			counted[si]++
		}
	}
	res := &Exp2cResult{Budget: budget}
	for si, strat := range strategies {
		row := SearchStrategyRow{Strategy: strat.Name(), N: counted[si]}
		if counted[si] > 0 {
			row.MedSpeedup = qerror.Quantile(ratios[si], 0.5)
			row.MedPredLp = qerror.Quantile(predLp[si], 0.5)
			row.MeanExamined = float64(examined[si]) / float64(counted[si])
		}
		res.Rows = append(res.Rows, row)
		s.Logf("exp2c %s done (n=%d)", strat.Name(), counted[si])
	}
	return res, nil
}

// Table renders the strategy comparison as rows.
func (r *Exp2cResult) Table() *Table {
	t := &Table{Title: fmt.Sprintf(
		"[Exp 2c] Placement search strategies on 8-14 host clusters (budget=%d candidates)", r.Budget)}
	for _, row := range r.Rows {
		t.Lines = append(t.Lines, fmt.Sprintf(
			"%-13s median speed-up %6.2fx | median predicted Lp %8.1fms | mean examined %5.1f (n=%d)",
			row.Strategy, row.MedSpeedup, row.MedPredLp, row.MeanExamined, row.N))
	}
	return t
}

// Table renders Figure 10 as rows.
func (r *Exp2bResult) Table() *Table {
	t := &Table{Title: "[Exp 2b / Figure 10] Online monitoring baseline vs COSTREAM initial placement"}
	worst := 0.0
	never := 0
	for _, row := range r.Rows {
		over := fmt.Sprintf("%5.0fs", row.OverheadS)
		if row.OverheadS < 0 {
			over = "never"
			never++
		}
		if row.SlowdownX > worst {
			worst = row.SlowdownX
		}
		t.Lines = append(t.Lines, fmt.Sprintf(
			"rate=%6.0f ev/s sel=%.2f slow-down=%7.2fx monitoring-overhead=%s",
			row.EventRate, row.Selectivity, row.SlowdownX, over))
	}
	t.Lines = append(t.Lines, fmt.Sprintf("max slow-down %.1fx; %d/%d configurations never caught up",
		worst, never, len(r.Rows)))
	return t
}

var _ = hardware.Cluster{}

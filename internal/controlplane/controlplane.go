// Package controlplane is the placement control plane: the
// monitor -> detect -> re-optimize -> migrate loop that keeps operator
// placements good as edge-cloud conditions shift (the dynamic half of
// the COSTREAM workflow; the zero-shot cost model makes continuous
// re-scoring cheap enough to run it in a loop).
//
// The package splits into two layers:
//
//   - Policy is the pure decision kernel: given one Deployment and a
//     cluster View it observes live metrics through a MetricFeed,
//     classifies violations (drift via placement.RecordQErrors q-error
//     divergence, dead or cordoned hosts, observed failures), re-optimizes
//     with the search engine warm-started from the incumbent
//     (placement.WarmStart) and gates migrations through
//     placement.Hysteresis. Cordoned hosts are banned at the
//     candidate-generation substrate (SearchOptions.BannedHosts), so
//     every search strategy respects them.
//   - Plane is the long-running registry around that kernel: deployment
//     CRUD, host cordon/drain/uncordon state, periodic control ticks and
//     bounded per-deployment history. costream-serve exposes it as
//     /v1/deployments and /v1/hosts; costream-ctl speaks to that API.
//
// internal/fleet drives the same Policy from its scenario scripts, so
// the fleet simulator and the serving path heal with identical logic.
package controlplane

import (
	"context"
	"fmt"

	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
)

// Policy defaults, matching the fleet scenario recovery defaults.
const (
	DefaultQErrorThreshold = 2.0
	DefaultSearchBudget    = 32
)

// Violation kinds reported by Policy.Heal (Decision.Violation) and
// counted by the costream_controlplane_violations_total{kind} family.
const (
	ViolationUndeployed      = "undeployed"
	ViolationDeadHost        = "dead-host"
	ViolationCordonedHost    = "cordoned-host"
	ViolationObservedFailure = "observed-failure"
	ViolationQErrorDrift     = "qerror-drift"
)

// Actions reported by Policy decisions. Suppressed decisions carry a
// "suppressed: <reason>" action instead.
const (
	ActionDeployed   = "deployed"
	ActionMigrated   = "migrated"
	ActionReplaced   = "replaced"
	ActionRedeployed = "redeployed"
	ActionUndeployed = "undeployed"

	suppressedPrefix = "suppressed: "
)

// DeriveSeed spreads a base seed over (stage, index) pairs; stage 0 is
// the deploy step, stage k the k-th control tick or script event, so
// every search and observation draws from its own deterministic stream.
func DeriveSeed(base int64, stage, i int) int64 {
	return base*1_000_003 + int64(stage)*8191 + int64(i) + 1
}

// MetricFeed supplies the live runtime statistics one control decision
// observes for an incumbent placement. The production feed is SimFeed
// (the execution simulator standing in for a real cluster); tests plug
// in fakes.
type MetricFeed interface {
	Observe(q *stream.Query, c *hardware.Cluster, p sim.Placement) (*sim.Metrics, error)
}

// SimFeed observes placements by running the execution simulator.
type SimFeed struct {
	Cfg sim.Config
}

// Observe implements MetricFeed.
func (f SimFeed) Observe(q *stream.Query, c *hardware.Cluster, p sim.Placement) (*sim.Metrics, error) {
	return sim.Run(q, c, p, f.Cfg)
}

// View is the cluster one control decision runs against plus the host
// indices cordoned against candidate generation. Cordoned hosts are
// both a violation trigger (an incumbent touching one is force-replaced)
// and a search constraint (no challenger may use one).
type View struct {
	Cluster *hardware.Cluster
	Banned  []int
}

// schedulable returns how many hosts remain available for placement.
func (v View) schedulable() int {
	n := len(v.Cluster.Hosts)
	seen := make(map[int]bool, len(v.Banned))
	for _, h := range v.Banned {
		if h >= 0 && h < n && !seen[h] {
			seen[h] = true
		}
	}
	return n - len(seen)
}

// Deployment is one query's live control-plane state. Placement is in
// View.Cluster host indices; entries < 0 mark hosts that no longer
// exist (dead).
type Deployment struct {
	ID        string
	Query     *stream.Query
	Placement sim.Placement
	Predicted placement.PredCosts
	LastMoveS float64
	Deployed  bool
}

// Decision is the outcome of one Policy.Heal pass over one deployment.
type Decision struct {
	// Violation classifies why the loop engaged ("" when healthy):
	// ViolationUndeployed, ViolationDeadHost, ViolationCordonedHost,
	// ViolationObservedFailure or ViolationQErrorDrift.
	Violation string
	// Action is what the loop did ("" when healthy): ActionMigrated,
	// ActionReplaced, ActionRedeployed, ActionUndeployed or
	// "suppressed: <reason>".
	Action string
	// Observed reports that a metric-feed observation ran; the q-error
	// and latency fields below are only meaningful when set.
	Observed bool
	// QErrThroughput/QErrProcLatency are the observed-vs-predicted
	// q-errors of this pass (each >= 1).
	QErrThroughput  float64
	QErrProcLatency float64
	// PredLatencyMS is the processing latency predicted when the
	// incumbent was activated (captured before any re-basing);
	// ObsLatencyMS the latency observed this pass.
	PredLatencyMS float64
	ObsLatencyMS  float64
}

// Suppressed reports that the pass detected a violation but hysteresis
// (or an unchanged search result) kept the incumbent.
func (d Decision) Suppressed() bool {
	return len(d.Action) >= len(suppressedPrefix) && d.Action[:len(suppressedPrefix)] == suppressedPrefix
}

// Moved reports that the pass activated a new placement.
func (d Decision) Moved() bool {
	switch d.Action {
	case ActionMigrated, ActionReplaced, ActionRedeployed:
		return true
	}
	return false
}

// Policy is the control plane's decision kernel: how to observe, when a
// deployment counts as violated, and how re-optimization and migration
// gating work. The zero value is unusable; Predictor is required, the
// other fields default via withDefaults.
type Policy struct {
	// Predictor scores placements during search, drift checks and
	// incumbent re-scoring.
	Predictor placement.Predictor
	// QErrorThreshold is the q-error above which an observation counts
	// as drift (0 selects DefaultQErrorThreshold).
	QErrorThreshold float64
	// Hysteresis gates drift migrations. The zero value accepts any
	// strict improvement with no cooldown.
	Hysteresis placement.Hysteresis
	// Budget bounds each re-optimization search (unset selects
	// DefaultSearchBudget candidates).
	Budget placement.Budget
	// Strategy is the inner search strategy; re-optimizations wrap it in
	// placement.WarmStart seeded with the incumbent. Nil selects
	// LocalSearch.
	Strategy placement.Strategy
	// Objective ranks placements (zero value: min processing latency).
	Objective placement.Objective
}

func (p Policy) withDefaults() Policy {
	if p.QErrorThreshold == 0 {
		p.QErrorThreshold = DefaultQErrorThreshold
	}
	if p.Budget.MaxCandidates <= 0 {
		p.Budget.MaxCandidates = DefaultSearchBudget
	}
	if p.Strategy == nil {
		p.Strategy = placement.LocalSearch{}
	}
	return p
}

// Deploy runs the initial placement search for d on the view (fresh
// search, no warm start — there is no incumbent) and activates the
// result. On error the deployment is left untouched.
func (p Policy) Deploy(ctx context.Context, d *Deployment, v View, opts placement.SearchOptions) error {
	p = p.withDefaults()
	opts.BannedHosts = v.Banned
	res, err := placement.SearchCtx(ctx, p.Predictor, d.Query, v.Cluster, p.Strategy, p.Objective, p.Budget, opts)
	if err != nil {
		return err
	}
	d.Placement = append(sim.Placement(nil), res.Placement...)
	d.Predicted = res.Costs
	d.Deployed = true
	return nil
}

// Heal runs one monitor -> detect -> re-optimize -> migrate pass over d
// at control clock nowS. effQ is the query under current load (nil uses
// d.Query); observations run against it so drift reflects live
// conditions. The deployment is mutated in place only when the pass
// reaches a decision: a cancelled re-optimization that scored nothing
// returns ctx.Err() with d untouched, so callers never see torn state.
func (p Policy) Heal(ctx context.Context, d *Deployment, v View, effQ *stream.Query, feed MetricFeed, nowS float64, opts placement.SearchOptions) (Decision, error) {
	p = p.withDefaults()
	if effQ == nil {
		effQ = d.Query
	}
	var dec Decision
	forced := false
	var incumbent sim.Placement
	switch {
	case !d.Deployed:
		dec.Violation = ViolationUndeployed
		forced = true
	case !schedulablePlacement(d.Placement, v.Cluster):
		dec.Violation = ViolationDeadHost
		forced = true
	case touchesBanned(d.Placement, v.Banned):
		dec.Violation = ViolationCordonedHost
		forced = true
	default:
		obs, err := feed.Observe(effQ, v.Cluster, d.Placement)
		if err != nil {
			return dec, fmt.Errorf("controlplane: observing %s: %w", d.ID, err)
		}
		qT, qL := placement.RecordQErrors(d.Predicted, obs)
		dec.Observed = true
		dec.QErrThroughput = qT
		dec.QErrProcLatency = qL
		dec.PredLatencyMS = d.Predicted.ProcLatencyMS
		dec.ObsLatencyMS = obs.ProcLatencyMS
		switch {
		case !obs.Success:
			dec.Violation = ViolationObservedFailure
		case qT > p.QErrorThreshold || qL > p.QErrorThreshold:
			dec.Violation = ViolationQErrorDrift
		}
		incumbent = d.Placement
	}
	if dec.Violation == "" {
		return dec, nil
	}
	met().violations(dec.Violation).Inc()

	if v.schedulable() == 0 {
		d.Deployed = false
		d.Placement = nil
		dec.Action = ActionUndeployed
		return dec, nil
	}
	opts.BannedHosts = v.Banned
	strat := placement.Strategy(placement.WarmStart{Incumbent: incumbent, Inner: p.Strategy})
	res, err := placement.SearchCtx(ctx, p.Predictor, effQ, v.Cluster, strat, p.Objective, p.Budget, opts)
	if err != nil {
		if ctx.Err() != nil {
			return dec, ctx.Err()
		}
		// No valid placement on the schedulable hosts: undeploy.
		d.Deployed = false
		d.Placement = nil
		dec.Action = ActionUndeployed
		return dec, nil
	}
	challenger := append(sim.Placement(nil), res.Placement...)
	if forced {
		d.Placement = challenger
		d.Predicted = res.Costs
		d.LastMoveS = nowS
		if d.Deployed {
			dec.Action = ActionReplaced
		} else {
			dec.Action = ActionRedeployed
			d.Deployed = true
		}
		met().migrations.Inc()
		return dec, nil
	}
	incCosts, incErr := p.Predictor.PredictPlacement(effQ, v.Cluster, incumbent)
	switch {
	case equalPlacements(challenger, incumbent):
		dec.Action = suppressedPrefix + "search kept the incumbent"
		if incErr == nil {
			d.Predicted = incCosts
		}
		met().suppressed.Inc()
	case incErr != nil:
		// The incumbent no longer even scores: take the challenger.
		d.Placement = challenger
		d.Predicted = res.Costs
		d.LastMoveS = nowS
		dec.Action = ActionMigrated
		met().migrations.Inc()
	default:
		ok, reason := p.Hysteresis.ShouldMigrate(p.Objective.Score(incCosts), p.Objective.Score(res.Costs), nowS, d.LastMoveS)
		if ok {
			d.Placement = challenger
			d.Predicted = res.Costs
			d.LastMoveS = nowS
			dec.Action = ActionMigrated
			met().migrations.Inc()
		} else {
			dec.Action = suppressedPrefix + reason
			// Re-base the prediction on current conditions so a tolerated
			// drift does not re-fire forever.
			d.Predicted = incCosts
			met().suppressed.Inc()
		}
	}
	return dec, nil
}

// schedulablePlacement reports whether p references only hosts that
// exist in c (a dead host leaves a negative or out-of-range index).
func schedulablePlacement(p sim.Placement, c *hardware.Cluster) bool {
	if len(p) == 0 {
		return false
	}
	for _, h := range p {
		if h < 0 || h >= len(c.Hosts) {
			return false
		}
	}
	return true
}

// touchesBanned reports whether p uses any banned host index.
func touchesBanned(p sim.Placement, banned []int) bool {
	for _, h := range p {
		for _, b := range banned {
			if h == b {
				return true
			}
		}
	}
	return false
}

func equalPlacements(a, b sim.Placement) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package controlplane

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
)

// Plane defaults.
const (
	DefaultTickIntervalS = 15.0
	DefaultHistoryLimit  = 32
)

// defaultObservation is the simulated metric-feed window used when
// Config.Feed is nil: short enough that a control tick over many
// deployments stays cheap, long enough past warm-up for stable
// statistics.
func defaultObservation() sim.Config {
	return sim.Config{DurationS: 5, WarmupS: 1, StepS: 0.1, NoiseStd: 0.05}
}

// Config configures a Plane.
type Config struct {
	// Policy is the decision kernel; Policy.Predictor is required.
	Policy Policy
	// Feed supplies observations. Nil selects SimFeed over a short
	// window with per-(tick, deployment) seeds derived from Seed, so
	// repeated ticks observe genuinely fresh (but reproducible) noise.
	Feed MetricFeed
	// Seed drives search and observation seed derivation.
	Seed int64
	// TickIntervalS is how far the control clock advances per tick
	// (0 selects DefaultTickIntervalS). The clock is logical: it feeds
	// hysteresis cooldowns and history timestamps, independent of how
	// often the wall-clock loop actually fires.
	TickIntervalS float64
	// HistoryLimit bounds each deployment's retained history entries
	// (0 selects DefaultHistoryLimit).
	HistoryLimit int
	// Workers bounds scoring workers per search (0 = GOMAXPROCS).
	Workers int
	// Logf receives control-loop progress lines; nil silences them.
	Logf func(format string, args ...any)
}

// PredictedCosts is a Status's cost estimate in API shape.
type PredictedCosts struct {
	ThroughputTPS float64 `json:"throughput_tps"`
	ProcLatencyMS float64 `json:"proc_latency_ms"`
	E2ELatencyMS  float64 `json:"e2e_latency_ms"`
	Success       bool    `json:"success"`
	Backpressured bool    `json:"backpressured"`
}

func toAPICosts(c placement.PredCosts) PredictedCosts {
	return PredictedCosts{
		ThroughputTPS: c.ThroughputTPS,
		ProcLatencyMS: c.ProcLatencyMS,
		E2ELatencyMS:  c.E2ELatencyMS,
		Success:       c.Success,
		Backpressured: c.Backpressured,
	}
}

// HistoryEntry is one control decision in a deployment's history.
type HistoryEntry struct {
	AtS             float64  `json:"at_s"`
	Tick            int      `json:"tick"`
	Violation       string   `json:"violation,omitempty"`
	Action          string   `json:"action,omitempty"`
	QErrThroughput  float64  `json:"qerr_throughput,omitempty"`
	QErrProcLatency float64  `json:"qerr_proc_latency,omitempty"`
	Hosts           []string `json:"hosts,omitempty"`
}

// Status is one deployment's externally visible state.
type Status struct {
	ID        string         `json:"id"`
	Deployed  bool           `json:"deployed"`
	Hosts     []string       `json:"hosts,omitempty"`
	Placement sim.Placement  `json:"placement,omitempty"`
	Predicted PredictedCosts `json:"predicted"`
	LastMoveS float64        `json:"last_move_s"`
	History   []HistoryEntry `json:"history,omitempty"`
}

// HostStatus is one host's control-plane state, aggregated across every
// deployment's cluster.
type HostStatus struct {
	ID          string `json:"id"`
	Cordoned    bool   `json:"cordoned"`
	Deployments int    `json:"deployments"`
}

// TickReport summarizes one control tick.
type TickReport struct {
	Tick       int     `json:"tick"`
	AtS        float64 `json:"at_s"`
	Healed     int     `json:"deployments"`
	Violations int     `json:"violations"`
	Migrations int     `json:"migrations"`
	Suppressed int     `json:"suppressed"`
}

// planeDep is one registered deployment plus its private cluster and
// bookkeeping.
type planeDep struct {
	d       Deployment
	cluster *hardware.Cluster
	seq     int
	history []HistoryEntry
}

// Plane is the placement control plane: a registry of deployed queries
// (query + cluster + incumbent placement + predicted costs), host
// cordon/drain state, and the periodic control tick that heals every
// registered deployment through the Policy kernel. All methods are safe
// for concurrent use; Tick and Drain serialize against CRUD so callers
// never observe torn registry state.
type Plane struct {
	cfg Config

	mu       sync.Mutex
	deps     map[string]*planeDep
	cordoned map[string]bool
	nowS     float64
	ticks    int
	seq      int
}

// New builds a Plane. Policy.Predictor is required.
func New(cfg Config) (*Plane, error) {
	if cfg.Policy.Predictor == nil {
		return nil, fmt.Errorf("controlplane: Config.Policy.Predictor is required")
	}
	if cfg.TickIntervalS <= 0 {
		cfg.TickIntervalS = DefaultTickIntervalS
	}
	if cfg.HistoryLimit <= 0 {
		cfg.HistoryLimit = DefaultHistoryLimit
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Plane{
		cfg:      cfg,
		deps:     map[string]*planeDep{},
		cordoned: map[string]bool{},
	}, nil
}

// feed returns the metric feed for one (tick, deployment) heal.
func (pl *Plane) feed(stage, seq int) MetricFeed {
	if pl.cfg.Feed != nil {
		return pl.cfg.Feed
	}
	cfg := defaultObservation()
	cfg.Seed = DeriveSeed(pl.cfg.Seed^0x51ED2701, stage, seq)
	return SimFeed{Cfg: cfg}
}

func (pl *Plane) searchOpts(stage, seq int) placement.SearchOptions {
	return placement.SearchOptions{Workers: pl.cfg.Workers, Seed: DeriveSeed(pl.cfg.Seed, stage, seq)}
}

// bannedIdx maps the cordon set onto one deployment's cluster.
func (pl *Plane) bannedIdx(c *hardware.Cluster) []int {
	if len(pl.cordoned) == 0 {
		return nil
	}
	var out []int
	for i, h := range c.Hosts {
		if h.ID != "" && pl.cordoned[h.ID] {
			out = append(out, i)
		}
	}
	return out
}

func hostNames(c *hardware.Cluster, p sim.Placement) []string {
	if len(p) == 0 {
		return nil
	}
	out := make([]string, len(p))
	for i, h := range p {
		if h >= 0 && h < len(c.Hosts) {
			out[i] = c.Hosts[h].ID
		}
	}
	return out
}

// Deploy registers query q on cluster c under id and places it. A
// non-nil placement is adopted as-is (validated and priced, no search) —
// the serve API uses this to round-trip /v1/example bodies; nil runs a
// fresh placement search that respects the current cordon set.
func (pl *Plane) Deploy(ctx context.Context, id string, q *stream.Query, c *hardware.Cluster, p sim.Placement) (Status, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if id == "" {
		return Status{}, fmt.Errorf("controlplane: deployment id is required")
	}
	// Deployment ids travel in URL paths (unlike host IDs), so keep them
	// to a path-safe charset.
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return Status{}, fmt.Errorf("controlplane: invalid deployment id %q (allowed: letters, digits, '.', '_', '-')", id)
		}
	}
	if _, ok := pl.deps[id]; ok {
		return Status{}, &DuplicateError{ID: id}
	}
	pd := &planeDep{
		d:       Deployment{ID: id, Query: q},
		cluster: c,
		seq:     pl.seq,
	}
	v := View{Cluster: c, Banned: pl.bannedIdx(c)}
	if p != nil {
		if err := p.Validate(q, c); err != nil {
			return Status{}, fmt.Errorf("controlplane: adopting placement for %s: %w", id, err)
		}
		if touchesBanned(p, v.Banned) {
			return Status{}, fmt.Errorf("controlplane: adopting placement for %s: placement uses a cordoned host", id)
		}
		costs, err := pl.cfg.Policy.Predictor.PredictPlacement(q, c, p)
		if err != nil {
			return Status{}, fmt.Errorf("controlplane: pricing placement for %s: %w", id, err)
		}
		pd.d.Placement = append(sim.Placement(nil), p...)
		pd.d.Predicted = costs
		pd.d.Deployed = true
	} else {
		if err := pl.cfg.Policy.Deploy(ctx, &pd.d, v, pl.searchOpts(0, pl.seq)); err != nil {
			return Status{}, fmt.Errorf("controlplane: deploying %s: %w", id, err)
		}
	}
	pl.seq++
	pl.deps[id] = pd
	pl.pushHistory(pd, HistoryEntry{
		AtS: pl.nowS, Tick: pl.ticks, Action: ActionDeployed,
		Hosts: hostNames(pd.cluster, pd.d.Placement),
	})
	met().deployments.Set(float64(len(pl.deps)))
	pl.cfg.Logf("controlplane: deployed %s on %v", id, hostNames(pd.cluster, pd.d.Placement))
	return pl.status(pd, true), nil
}

// DuplicateError reports a Deploy against an already registered id.
type DuplicateError struct{ ID string }

func (e *DuplicateError) Error() string {
	return fmt.Sprintf("controlplane: deployment %q already exists", e.ID)
}

// Evict removes a deployment; ok reports whether it existed.
func (pl *Plane) Evict(id string) bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if _, ok := pl.deps[id]; !ok {
		return false
	}
	delete(pl.deps, id)
	met().deployments.Set(float64(len(pl.deps)))
	return true
}

// Get returns one deployment's status including its history.
func (pl *Plane) Get(id string) (Status, bool) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pd, ok := pl.deps[id]
	if !ok {
		return Status{}, false
	}
	return pl.status(pd, true), true
}

// List returns every deployment's status (history elided), sorted by id.
func (pl *Plane) List() []Status {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	out := make([]Status, 0, len(pl.deps))
	for _, id := range pl.sortedIDs() {
		out = append(out, pl.status(pl.deps[id], false))
	}
	return out
}

// Cordon marks a host (by ID) unschedulable: searches stop emitting
// candidates on it and the next tick force-replaces any deployment
// still touching it. Cordoning an unknown host is allowed (it guards
// future deployments); changed reports whether the set changed.
func (pl *Plane) Cordon(host string) bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.cordoned[host] {
		return false
	}
	pl.cordoned[host] = true
	return true
}

// Uncordon reverses Cordon.
func (pl *Plane) Uncordon(host string) bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if !pl.cordoned[host] {
		return false
	}
	delete(pl.cordoned, host)
	return true
}

// Drain cordons the host and immediately heals every deployment whose
// incumbent touches it, instead of waiting for the next tick. It
// returns the ids of the deployments it healed.
func (pl *Plane) Drain(ctx context.Context, host string) ([]string, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.cordoned[host] = true
	var healed []string
	for _, id := range pl.sortedIDs() {
		pd := pl.deps[id]
		banned := pl.bannedIdx(pd.cluster)
		if !pd.d.Deployed || !touchesBanned(pd.d.Placement, banned) {
			continue
		}
		if _, err := pl.healLocked(ctx, pd, banned); err != nil {
			return healed, err
		}
		healed = append(healed, id)
	}
	return healed, nil
}

// Hosts aggregates host state across every deployment's cluster plus
// cordon entries for hosts not (or no longer) backing any deployment.
func (pl *Plane) Hosts() []HostStatus {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	placedOn := map[string]int{}
	known := map[string]bool{}
	for _, pd := range pl.deps {
		for _, h := range pd.cluster.Hosts {
			if h.ID != "" {
				known[h.ID] = true
			}
		}
		if pd.d.Deployed {
			seen := map[string]bool{}
			for _, name := range hostNames(pd.cluster, pd.d.Placement) {
				if name != "" && !seen[name] {
					seen[name] = true
					placedOn[name]++
				}
			}
		}
	}
	for h := range pl.cordoned {
		known[h] = true
	}
	ids := make([]string, 0, len(known))
	for h := range known {
		ids = append(ids, h)
	}
	sort.Strings(ids)
	out := make([]HostStatus, len(ids))
	for i, h := range ids {
		out[i] = HostStatus{ID: h, Cordoned: pl.cordoned[h], Deployments: placedOn[h]}
	}
	return out
}

// Tick advances the control clock one interval and heals every
// registered deployment in deterministic (sorted id) order. A cancelled
// ctx aborts the remaining deployments and returns the partial report
// with ctx's error; the deployment a cancellation interrupted is never
// left torn (see Policy.Heal).
func (pl *Plane) Tick(ctx context.Context) (TickReport, error) {
	start := time.Now()
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.ticks++
	pl.nowS += pl.cfg.TickIntervalS
	rep := TickReport{Tick: pl.ticks, AtS: pl.nowS}
	for _, id := range pl.sortedIDs() {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		pd := pl.deps[id]
		dec, err := pl.healLocked(ctx, pd, pl.bannedIdx(pd.cluster))
		if err != nil {
			return rep, err
		}
		rep.Healed++
		if dec.Violation != "" {
			rep.Violations++
		}
		switch {
		case dec.Moved():
			rep.Migrations++
		case dec.Suppressed():
			rep.Suppressed++
		}
	}
	met().deployments.Set(float64(len(pl.deps)))
	met().tickSeconds.Record(time.Since(start).Nanoseconds())
	if rep.Violations > 0 {
		pl.cfg.Logf("controlplane: tick %d: %d violations, %d migrations, %d suppressed",
			rep.Tick, rep.Violations, rep.Migrations, rep.Suppressed)
	}
	return rep, nil
}

// healLocked runs one Policy.Heal over pd and records the decision in
// its history. Callers hold pl.mu.
func (pl *Plane) healLocked(ctx context.Context, pd *planeDep, banned []int) (Decision, error) {
	v := View{Cluster: pd.cluster, Banned: banned}
	dec, err := pl.cfg.Policy.Heal(ctx, &pd.d, v, nil,
		pl.feed(pl.ticks, pd.seq), pl.nowS, pl.searchOpts(pl.ticks, pd.seq))
	if err != nil {
		return dec, err
	}
	if dec.Violation != "" || dec.Action != "" {
		pl.pushHistory(pd, HistoryEntry{
			AtS: pl.nowS, Tick: pl.ticks,
			Violation:       dec.Violation,
			Action:          dec.Action,
			QErrThroughput:  dec.QErrThroughput,
			QErrProcLatency: dec.QErrProcLatency,
			Hosts:           hostNames(pd.cluster, pd.d.Placement),
		})
		pl.cfg.Logf("controlplane: %s: %s -> %s", pd.d.ID, dec.Violation, dec.Action)
	}
	return dec, nil
}

func (pl *Plane) pushHistory(pd *planeDep, e HistoryEntry) {
	pd.history = append(pd.history, e)
	if n := len(pd.history) - pl.cfg.HistoryLimit; n > 0 {
		pd.history = append(pd.history[:0], pd.history[n:]...)
	}
}

func (pl *Plane) sortedIDs() []string {
	ids := make([]string, 0, len(pl.deps))
	for id := range pl.deps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (pl *Plane) status(pd *planeDep, withHistory bool) Status {
	st := Status{
		ID:        pd.d.ID,
		Deployed:  pd.d.Deployed,
		Hosts:     hostNames(pd.cluster, pd.d.Placement),
		Placement: append(sim.Placement(nil), pd.d.Placement...),
		Predicted: toAPICosts(pd.d.Predicted),
		LastMoveS: pd.d.LastMoveS,
	}
	if withHistory {
		st.History = append([]HistoryEntry(nil), pd.history...)
	}
	return st
}

// Ticks returns how many control ticks have run.
func (pl *Plane) Ticks() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.ticks
}

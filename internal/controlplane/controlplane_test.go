package controlplane

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
)

func testQuery() *stream.Query {
	b := stream.NewBuilder()
	s1 := b.AddSource(500, []stream.DataType{stream.TypeInt, stream.TypeDouble})
	f1 := b.AddFilter(stream.FilterGT, stream.TypeInt, 0.5)
	s2 := b.AddSource(500, []stream.DataType{stream.TypeInt, stream.TypeInt})
	j := b.AddJoin(stream.TypeInt, stream.Window{Type: stream.WindowTumbling, Policy: stream.WindowCountBased, Size: 40, Slide: 40}, 0.001)
	k := b.AddSink()
	b.Connect(s1, f1).Connect(f1, j).Connect(s2, j).Connect(j, k)
	return b.MustBuild()
}

func testCluster() *hardware.Cluster {
	return &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "edge-0", CPU: 50, RAMMB: 1000, NetLatencyMS: 80, NetBandwidthMbps: 50},
		{ID: "edge-1", CPU: 100, RAMMB: 2000, NetLatencyMS: 40, NetBandwidthMbps: 100},
		{ID: "fog-0", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
		{ID: "cloud-0", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
}

// fakePred is a deterministic predictor whose cost surface rewards strong
// hosts, so searches have a reproducible optimum to find.
type fakePred struct{}

func fakeCosts(c *hardware.Cluster, p sim.Placement) placement.PredCosts {
	lat := 0.0
	for i, h := range p {
		lat += float64(i+1) * 500 / c.Hosts[h].CPU
	}
	return placement.PredCosts{
		ProcLatencyMS: lat,
		E2ELatencyMS:  2 * lat,
		ThroughputTPS: 1e6 / (1 + lat),
		Success:       true,
	}
}

func (fakePred) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (placement.PredCosts, error) {
	return fakeCosts(c, p), nil
}

func (fakePred) PredictBatch(q *stream.Query, c *hardware.Cluster, ps []sim.Placement) ([]placement.PredCosts, error) {
	out := make([]placement.PredCosts, len(ps))
	for i, p := range ps {
		out[i] = fakeCosts(c, p)
	}
	return out, nil
}

// stubFeed replays a fixed observation (or error) and records the
// placements it was asked to observe.
type stubFeed struct {
	mu       sync.Mutex
	metrics  sim.Metrics
	err      error
	observed []sim.Placement
}

func (f *stubFeed) Observe(q *stream.Query, c *hardware.Cluster, p sim.Placement) (*sim.Metrics, error) {
	f.mu.Lock()
	f.observed = append(f.observed, append(sim.Placement(nil), p...))
	f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	m := f.metrics
	return &m, nil
}

// matchingFeed echoes the fake predictor's costs back as observations, so
// q-errors stay at 1 and the deployment looks healthy.
func matchingFeed(c *hardware.Cluster, p sim.Placement) *stubFeed {
	pc := fakeCosts(c, p)
	return &stubFeed{metrics: sim.Metrics{
		ThroughputTPS: pc.ThroughputTPS,
		ProcLatencyMS: pc.ProcLatencyMS,
		E2ELatencyMS:  pc.E2ELatencyMS,
		Success:       true,
	}}
}

func testPolicy() Policy {
	return Policy{Predictor: fakePred{}, Strategy: placement.LocalSearch{}}
}

func deployFor(t *testing.T, q *stream.Query, c *hardware.Cluster) *Deployment {
	t.Helper()
	d := &Deployment{ID: "q1", Query: q}
	if err := testPolicy().Deploy(context.Background(), d, View{Cluster: c}, placement.SearchOptions{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if !d.Deployed || len(d.Placement) != q.NumOps() {
		t.Fatalf("deploy left bad state: %+v", d)
	}
	return d
}

func TestHealHealthy(t *testing.T) {
	q, c := testQuery(), testCluster()
	d := deployFor(t, q, c)
	before := *d
	feed := matchingFeed(c, d.Placement)
	dec, err := testPolicy().Heal(context.Background(), d, View{Cluster: c}, nil, feed, 100, placement.SearchOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Violation != "" || dec.Action != "" {
		t.Fatalf("healthy deployment got decision %+v", dec)
	}
	if !dec.Observed || dec.QErrThroughput > 1.01 || dec.QErrProcLatency > 1.01 {
		t.Fatalf("expected observed q-errors ~1, got %+v", dec)
	}
	if !reflect.DeepEqual(before.Placement, d.Placement) || before.LastMoveS != d.LastMoveS {
		t.Fatalf("healthy pass mutated the deployment: %+v -> %+v", before, *d)
	}
}

func TestHealQErrorDriftMigrates(t *testing.T) {
	q, c := testQuery(), testCluster()
	// Start from a deliberately bad incumbent (everything on the weakest
	// host that is still valid) so the search can improve on it.
	d := deployFor(t, q, c)
	bad := append(sim.Placement(nil), d.Placement...)
	for i := range bad {
		bad[i] = 0
	}
	if err := bad.Validate(q, c); err == nil {
		d.Placement = bad
		d.Predicted = fakeCosts(c, bad)
	}
	pc := d.Predicted
	feed := &stubFeed{metrics: sim.Metrics{
		ThroughputTPS: pc.ThroughputTPS / 10, // 10x q-error: clear drift
		ProcLatencyMS: pc.ProcLatencyMS * 10,
		Success:       true,
	}}
	dec, err := testPolicy().Heal(context.Background(), d, View{Cluster: c}, nil, feed, 100, placement.SearchOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Violation != ViolationQErrorDrift {
		t.Fatalf("violation = %q, want %q (decision %+v)", dec.Violation, ViolationQErrorDrift, dec)
	}
	if math.Abs(dec.QErrThroughput-10) > 0.01 || math.Abs(dec.QErrProcLatency-10) > 0.01 {
		t.Fatalf("q-errors = %v/%v, want ~10", dec.QErrThroughput, dec.QErrProcLatency)
	}
	if dec.Action != ActionMigrated {
		t.Fatalf("action = %q, want %q", dec.Action, ActionMigrated)
	}
	if d.LastMoveS != 100 {
		t.Fatalf("LastMoveS = %v, want 100", d.LastMoveS)
	}
}

func TestHealDriftSuppressedByCooldown(t *testing.T) {
	q, c := testQuery(), testCluster()
	d := deployFor(t, q, c)
	d.LastMoveS = 95
	pc := d.Predicted
	feed := &stubFeed{metrics: sim.Metrics{
		ThroughputTPS: pc.ThroughputTPS / 10,
		ProcLatencyMS: pc.ProcLatencyMS * 10,
		Success:       true,
	}}
	pol := testPolicy()
	pol.Hysteresis = placement.Hysteresis{CooldownS: 60}
	before := append(sim.Placement(nil), d.Placement...)
	dec, err := pol.Heal(context.Background(), d, View{Cluster: c}, nil, feed, 100, placement.SearchOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Violation != ViolationQErrorDrift {
		t.Fatalf("violation = %q, want drift", dec.Violation)
	}
	if !dec.Suppressed() {
		t.Fatalf("action = %q, want suppressed (cooldown active)", dec.Action)
	}
	if !reflect.DeepEqual(before, d.Placement) {
		t.Fatal("suppressed decision moved the placement")
	}
	// Suppression re-bases the prediction so a tolerated drift does not
	// re-fire forever.
	if d.Predicted != fakeCosts(c, d.Placement) {
		t.Fatal("suppressed decision did not re-base the prediction")
	}
}

func TestHealObservedFailure(t *testing.T) {
	q, c := testQuery(), testCluster()
	d := deployFor(t, q, c)
	pc := d.Predicted
	feed := &stubFeed{metrics: sim.Metrics{
		ThroughputTPS: pc.ThroughputTPS,
		ProcLatencyMS: pc.ProcLatencyMS,
		Success:       false,
	}}
	dec, err := testPolicy().Heal(context.Background(), d, View{Cluster: c}, nil, feed, 50, placement.SearchOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Violation != ViolationObservedFailure {
		t.Fatalf("violation = %q, want %q", dec.Violation, ViolationObservedFailure)
	}
	if dec.Action == "" {
		t.Fatal("observed failure must produce an action")
	}
}

func TestHealDeadHostForcesReplacement(t *testing.T) {
	q, c := testQuery(), testCluster()
	d := deployFor(t, q, c)
	d.Placement[0] = -1 // host died; fleet maps dead hosts to -1
	feed := &stubFeed{}
	dec, err := testPolicy().Heal(context.Background(), d, View{Cluster: c}, nil, feed, 50, placement.SearchOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Violation != ViolationDeadHost || dec.Action != ActionReplaced {
		t.Fatalf("decision = %+v, want dead-host/replaced", dec)
	}
	if len(feed.observed) != 0 {
		t.Fatal("dead-host violation must not observe the broken placement")
	}
	for i, h := range d.Placement {
		if h < 0 || h >= len(c.Hosts) {
			t.Fatalf("replacement placement still dead at op %d: %v", i, d.Placement)
		}
	}
	if d.LastMoveS != 50 || !d.Deployed {
		t.Fatalf("replacement bookkeeping wrong: %+v", d)
	}
}

func TestHealCordonedHostForcesReplacementOffHost(t *testing.T) {
	q, c := testQuery(), testCluster()
	d := deployFor(t, q, c)
	// Cordon every host the incumbent touches that is not required for
	// validity; cordoning the strongest incumbent host is enough.
	banned := []int{int(d.Placement[len(d.Placement)-1])}
	feed := &stubFeed{}
	dec, err := testPolicy().Heal(context.Background(), d, View{Cluster: c, Banned: banned}, nil, feed, 50, placement.SearchOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Violation != ViolationCordonedHost || dec.Action != ActionReplaced {
		t.Fatalf("decision = %+v, want cordoned-host/replaced", dec)
	}
	if len(feed.observed) != 0 {
		t.Fatal("cordoned-host violation must not run an observation")
	}
	for _, h := range d.Placement {
		for _, b := range banned {
			if int(h) == b {
				t.Fatalf("replacement still touches cordoned host %d: %v", b, d.Placement)
			}
		}
	}
}

func TestHealUndeployedRedeploys(t *testing.T) {
	q, c := testQuery(), testCluster()
	d := &Deployment{ID: "q1", Query: q}
	dec, err := testPolicy().Heal(context.Background(), d, View{Cluster: c}, nil, &stubFeed{}, 25, placement.SearchOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Violation != ViolationUndeployed || dec.Action != ActionRedeployed {
		t.Fatalf("decision = %+v, want undeployed/redeployed", dec)
	}
	if !d.Deployed || len(d.Placement) != q.NumOps() {
		t.Fatalf("redeploy left bad state: %+v", d)
	}
}

func TestHealUndeploysWhenNothingSchedulable(t *testing.T) {
	q, c := testQuery(), testCluster()
	d := deployFor(t, q, c)
	banned := []int{0, 1, 2, 3}
	dec, err := testPolicy().Heal(context.Background(), d, View{Cluster: c, Banned: banned}, nil, &stubFeed{}, 50, placement.SearchOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Action != ActionUndeployed || d.Deployed || d.Placement != nil {
		t.Fatalf("decision = %+v, deployment %+v; want undeployed", dec, d)
	}
}

// TestHealCancelledLeavesNoTornState: a context cancelled before the
// re-optimization scores anything returns ctx.Err() with the deployment
// untouched — callers never observe half-applied migrations.
func TestHealCancelledLeavesNoTornState(t *testing.T) {
	q, c := testQuery(), testCluster()
	d := deployFor(t, q, c)
	d.Placement[0] = -1 // forced violation, so Heal goes straight to search
	before := *d
	before.Placement = append(sim.Placement(nil), d.Placement...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := testPolicy().Heal(ctx, d, View{Cluster: c}, nil, &stubFeed{}, 50, placement.SearchOptions{Seed: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !reflect.DeepEqual(before.Placement, d.Placement) ||
		before.Deployed != d.Deployed || before.LastMoveS != d.LastMoveS ||
		before.Predicted != d.Predicted {
		t.Fatalf("cancelled heal mutated the deployment:\n before %+v\n after  %+v", before, *d)
	}
}

func TestHealObserveErrorPropagates(t *testing.T) {
	q, c := testQuery(), testCluster()
	d := deployFor(t, q, c)
	feed := &stubFeed{err: errors.New("probe down")}
	_, err := testPolicy().Heal(context.Background(), d, View{Cluster: c}, nil, feed, 50, placement.SearchOptions{Seed: 8})
	if err == nil || !strings.Contains(err.Error(), "probe down") {
		t.Fatalf("err = %v, want wrapped probe error", err)
	}
}

func TestPlaneDeployCordonTickHistory(t *testing.T) {
	q, c := testQuery(), testCluster()
	pl, err := New(Config{
		Policy: testPolicy(),
		Feed:   matchingFeed(c, nil), // q-errors 1 only if placement matches; see below
		Seed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The matching feed above was built for a nil placement; rebuild it
	// after the deploy so observations match the actual incumbent.
	st, err := pl.Deploy(context.Background(), "q1", q, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Deployed || len(st.Hosts) != q.NumOps() || len(st.History) != 1 || st.History[0].Action != ActionDeployed {
		t.Fatalf("deploy status = %+v", st)
	}
	pl.cfg.Feed = matchingFeed(c, pl.deps["q1"].d.Placement)

	if _, err := pl.Deploy(context.Background(), "q1", q, c, nil); err == nil {
		t.Fatal("duplicate deploy must fail")
	} else {
		var dup *DuplicateError
		if !errors.As(err, &dup) || dup.ID != "q1" {
			t.Fatalf("duplicate deploy error = %v, want DuplicateError", err)
		}
	}
	if _, err := pl.Deploy(context.Background(), "bad/id", q, c, nil); err == nil {
		t.Fatal("slash in deployment id must be rejected")
	}

	// Healthy tick: no violations, no history growth.
	rep, err := pl.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tick != 1 || rep.Healed != 1 || rep.Violations != 0 || rep.Migrations != 0 {
		t.Fatalf("healthy tick report = %+v", rep)
	}

	// Cordon a host the incumbent uses: the next tick must move off it.
	victim := pl.deps["q1"].d.Placement[len(pl.deps["q1"].d.Placement)-1]
	host := c.Hosts[victim].ID
	if !pl.Cordon(host) {
		t.Fatal("cordon reported no change")
	}
	if pl.Cordon(host) {
		t.Fatal("double cordon reported a change")
	}
	rep, err = pl.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 1 || rep.Migrations != 1 {
		t.Fatalf("cordon tick report = %+v, want 1 violation, 1 migration", rep)
	}
	st, ok := pl.Get("q1")
	if !ok {
		t.Fatal("q1 vanished")
	}
	for _, h := range st.Hosts {
		if h == host {
			t.Fatalf("placement still on cordoned host %s: %v", host, st.Hosts)
		}
	}
	last := st.History[len(st.History)-1]
	if last.Violation != ViolationCordonedHost || last.Action != ActionReplaced {
		t.Fatalf("history tail = %+v, want cordoned-host/replaced", last)
	}
	// The feed now mismatches the new incumbent, but the cordon test is
	// done; re-base observations before checking host aggregation.
	pl.cfg.Feed = matchingFeed(c, pl.deps["q1"].d.Placement)

	hosts := pl.Hosts()
	var sawCordoned, sawPlaced bool
	for _, h := range hosts {
		if h.ID == host && h.Cordoned {
			sawCordoned = true
		}
		if h.Deployments > 0 {
			sawPlaced = true
		}
	}
	if !sawCordoned || !sawPlaced {
		t.Fatalf("host aggregation missing cordon or placement info: %+v", hosts)
	}
	if !pl.Uncordon(host) || pl.Uncordon(host) {
		t.Fatal("uncordon change-tracking wrong")
	}

	if !pl.Evict("q1") || pl.Evict("q1") {
		t.Fatal("evict change-tracking wrong")
	}
	if got := pl.List(); len(got) != 0 {
		t.Fatalf("list after evict = %+v", got)
	}
}

func TestPlaneDrainHealsImmediately(t *testing.T) {
	q, c := testQuery(), testCluster()
	pl, err := New(Config{Policy: testPolicy(), Feed: &stubFeed{}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Deploy(context.Background(), "q1", q, c, nil); err != nil {
		t.Fatal(err)
	}
	victim := pl.deps["q1"].d.Placement[len(pl.deps["q1"].d.Placement)-1]
	host := c.Hosts[victim].ID
	healed, err := pl.Drain(context.Background(), host)
	if err != nil {
		t.Fatal(err)
	}
	if len(healed) != 1 || healed[0] != "q1" {
		t.Fatalf("drain healed %v, want [q1]", healed)
	}
	st, _ := pl.Get("q1")
	for _, h := range st.Hosts {
		if h == host {
			t.Fatalf("drained deployment still on %s: %v", host, st.Hosts)
		}
	}
	// Draining a host nothing uses heals nothing.
	healed, err = pl.Drain(context.Background(), "no-such-host")
	if err != nil || len(healed) != 0 {
		t.Fatalf("idle drain = %v, %v", healed, err)
	}
}

func TestPlaneAdoptedPlacementRejectsCordoned(t *testing.T) {
	q, c := testQuery(), testCluster()
	pl, err := New(Config{Policy: testPolicy(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d := deployFor(t, q, c)
	pl.Cordon(c.Hosts[d.Placement[0]].ID)
	if _, err := pl.Deploy(context.Background(), "q1", q, c, d.Placement); err == nil {
		t.Fatal("adopting a placement on a cordoned host must fail")
	}
	// The same placement deploys fine once the host is uncordoned, and the
	// adopted placement round-trips through the status.
	pl.Uncordon(c.Hosts[d.Placement[0]].ID)
	st, err := pl.Deploy(context.Background(), "q1", q, c, d.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Placement, d.Placement) {
		t.Fatalf("adopted placement %v != requested %v", st.Placement, d.Placement)
	}
}

func TestPlaneHistoryLimit(t *testing.T) {
	q, c := testQuery(), testCluster()
	pl, err := New(Config{Policy: testPolicy(), Feed: &stubFeed{}, Seed: 3, HistoryLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Deploy(context.Background(), "q1", q, c, nil); err != nil {
		t.Fatal(err)
	}
	// The stub feed returns zero metrics, which never match predictions:
	// every tick records a violation entry.
	for i := 0; i < 5; i++ {
		if _, err := pl.Tick(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := pl.Get("q1")
	if len(st.History) != 2 {
		t.Fatalf("history length = %d, want limit 2", len(st.History))
	}
}

func TestPlaneTickCancelledReturnsPartialReport(t *testing.T) {
	q, c := testQuery(), testCluster()
	pl, err := New(Config{Policy: testPolicy(), Feed: &stubFeed{}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Deploy(context.Background(), "q1", q, c, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pl.Tick(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled tick err = %v, want context.Canceled", err)
	}
	// The interrupted deployment is intact and heals fine afterwards.
	if _, err := pl.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for stage := 0; stage < 8; stage++ {
		for i := 0; i < 8; i++ {
			s := DeriveSeed(42, stage, i)
			if seen[s] {
				t.Fatalf("DeriveSeed collision at stage=%d i=%d", stage, i)
			}
			seen[s] = true
		}
	}
}

// BenchmarkControlTick measures one control tick over a small fleet of
// deployments with simulator-backed observations — the steady-state cost
// of the serve control loop per tick.
func BenchmarkControlTick(b *testing.B) {
	q, c := testQuery(), testCluster()
	pl, err := New(Config{
		Policy: Policy{Predictor: fakePred{}, QErrorThreshold: 1e9},
		Feed:   SimFeed{Cfg: sim.Config{DurationS: 2, WarmupS: 0.5, StepS: 0.1, Seed: 1}},
		Seed:   5,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range []string{"q1", "q2", "q3"} {
		if _, err := pl.Deploy(context.Background(), id, q, c, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Tick(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

package controlplane

import (
	"sync"

	"costream/internal/obs"
)

// cpMetrics aggregates control-plane activity in the default registry.
// All families are created eagerly at first use so the CI smoke can
// assert their presence even before a given kind fires.
type cpMetrics struct {
	deployments *obs.Gauge
	migrations  *obs.Counter
	suppressed  *obs.Counter
	tickSeconds *obs.Histogram

	violationsByKind map[string]*obs.Counter
	fallback         func(kind string) *obs.Counter
}

// violations returns the per-kind violation counter, creating a series
// on the fly for kinds outside the known set.
func (m *cpMetrics) violations(kind string) *obs.Counter {
	if c, ok := m.violationsByKind[kind]; ok {
		return c
	}
	return m.fallback(kind)
}

var met = sync.OnceValue(func() *cpMetrics {
	r := obs.Default()
	violation := func(kind string) *obs.Counter {
		return r.Counter("costream_controlplane_violations_total",
			"control-plane violations detected, by kind", "kind", kind)
	}
	m := &cpMetrics{
		deployments: r.Gauge("costream_controlplane_deployments",
			"queries currently registered with the placement control plane"),
		migrations: r.Counter("costream_controlplane_migrations_total",
			"placement changes activated by the control plane (drift migrations plus forced replacements)"),
		suppressed: r.Counter("costream_controlplane_suppressed_total",
			"re-optimizations whose result was suppressed (hysteresis or unchanged incumbent)"),
		tickSeconds: r.Histogram("costream_controlplane_tick_seconds",
			"control-loop tick latency", 1e-9),
		violationsByKind: map[string]*obs.Counter{},
		fallback:         violation,
	}
	for _, kind := range []string{
		ViolationUndeployed, ViolationDeadHost, ViolationCordonedHost,
		ViolationObservedFailure, ViolationQErrorDrift,
	} {
		m.violationsByKind[kind] = violation(kind)
	}
	return m
})

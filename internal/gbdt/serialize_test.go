package gbdt

import (
	"encoding/json"
	"testing"
)

func TestRegressorJSONRoundTrip(t *testing.T) {
	X, y := synthRegression(150, 20)
	r, err := TrainRegressor(X, y, DefaultConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var r2 Regressor
	if err := json.Unmarshal(data, &r2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if r.Predict(X[i]) != r2.Predict(X[i]) {
			t.Fatalf("round trip changed prediction at row %d", i)
		}
	}
}

func TestClassifierJSONRoundTrip(t *testing.T) {
	X, _ := synthRegression(150, 22)
	y := make([]float64, len(X))
	for i := range y {
		if X[i][0] > 0.5 {
			y[i] = 1
		}
	}
	c, err := TrainClassifier(X, y, DefaultConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var c2 Classifier
	if err := json.Unmarshal(data, &c2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if c.Predict(X[i]) != c2.Predict(X[i]) {
			t.Fatalf("round trip changed probability at row %d", i)
		}
	}
}

func TestImbalancedClassifierBaseRate(t *testing.T) {
	// 95/5 imbalance: prior log-odds must reflect it and predictions on
	// uninformative inputs should stay near the base rate.
	X := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range X {
		X[i] = []float64{1} // single constant feature
		if i < 10 {
			y[i] = 1
		}
	}
	c, err := TrainClassifier(X, y, DefaultConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	p := c.Predict([]float64{1})
	if p > 0.2 {
		t.Errorf("constant-feature prediction %v, want near the 5%% base rate", p)
	}
}

func TestSubsamplingStillLearns(t *testing.T) {
	X, y := synthRegression(400, 25)
	cfg := DefaultConfig(26)
	cfg.SubsampleRows = 0.5
	r, err := TrainRegressor(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mse, base float64
	for i := range X {
		d := r.Predict(X[i]) - y[i]
		mse += d * d
		b := r.Base - y[i]
		base += b * b
	}
	if mse >= base/2 {
		t.Errorf("subsampled model MSE %v vs baseline %v", mse, base)
	}
}

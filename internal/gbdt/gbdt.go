// Package gbdt implements gradient-boosted decision trees for regression
// (squared error) and binary classification (logistic loss), substituting
// the LightGBM models [34] that the paper's flat-vector baseline [16] is
// trained with. Trees are grown greedily with exact split search.
package gbdt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config controls boosting.
type Config struct {
	NTrees    int
	LearnRate float64
	MaxDepth  int
	MinLeaf   int
	// SubsampleRows is the per-tree row sampling fraction (stochastic
	// gradient boosting); 1 disables sampling.
	SubsampleRows float64
	Seed          int64
}

// DefaultConfig returns a reasonable boosting setup for a few thousand
// rows with tens of features.
func DefaultConfig(seed int64) Config {
	return Config{NTrees: 120, LearnRate: 0.1, MaxDepth: 4, MinLeaf: 5, SubsampleRows: 0.9, Seed: seed}
}

func (c Config) validate(nRows, nCols int) error {
	if c.NTrees <= 0 || c.LearnRate <= 0 || c.MaxDepth <= 0 || c.MinLeaf <= 0 {
		return fmt.Errorf("gbdt: invalid config %+v", c)
	}
	if nRows == 0 || nCols == 0 {
		return fmt.Errorf("gbdt: empty training matrix (%dx%d)", nRows, nCols)
	}
	return nil
}

// node is one tree vertex in flattened form.
type node struct {
	Feature int     `json:"f"` // -1 for leaf
	Thresh  float64 `json:"t"`
	Left    int     `json:"l"`
	Right   int     `json:"r"`
	Value   float64 `json:"v"`
}

// Tree is a regression tree over dense feature vectors.
type Tree struct {
	Nodes []node `json:"nodes"`
}

// Predict evaluates the tree.
func (t *Tree) Predict(x []float64) float64 {
	i := 0
	for {
		n := t.Nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		if x[n.Feature] <= n.Thresh {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// growTree fits a depth-bounded regression tree to (grad, hess) using
// Newton leaf values: value = -sum(grad)/sum(hess). For squared error,
// grad = pred - y and hess = 1, reducing to the mean residual.
func growTree(X [][]float64, grad, hess []float64, rows []int, cfg Config) *Tree {
	t := &Tree{}
	t.build(X, grad, hess, rows, cfg, 0)
	return t
}

func leafValue(grad, hess []float64, rows []int) float64 {
	var g, h float64
	for _, r := range rows {
		g += grad[r]
		h += hess[r]
	}
	if h < 1e-12 {
		return 0
	}
	return -g / h
}

// build appends a subtree and returns its root index.
func (t *Tree) build(X [][]float64, grad, hess []float64, rows []int, cfg Config, depth int) int {
	idx := len(t.Nodes)
	t.Nodes = append(t.Nodes, node{Feature: -1})
	if depth >= cfg.MaxDepth || len(rows) < 2*cfg.MinLeaf {
		t.Nodes[idx].Value = leafValue(grad, hess, rows)
		return idx
	}
	feat, thresh, gain := bestSplit(X, grad, hess, rows, cfg.MinLeaf)
	if feat < 0 || gain <= 1e-12 {
		t.Nodes[idx].Value = leafValue(grad, hess, rows)
		return idx
	}
	var left, right []int
	for _, r := range rows {
		if X[r][feat] <= thresh {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	t.Nodes[idx].Feature = feat
	t.Nodes[idx].Thresh = thresh
	t.Nodes[idx].Left = t.build(X, grad, hess, left, cfg, depth+1)
	t.Nodes[idx].Right = t.build(X, grad, hess, right, cfg, depth+1)
	return idx
}

// bestSplit scans every feature with exact sorted split search, maximizing
// the standard gradient-boosting gain GL^2/HL + GR^2/HR - G^2/H.
func bestSplit(X [][]float64, grad, hess []float64, rows []int, minLeaf int) (feature int, thresh, gain float64) {
	nf := len(X[rows[0]])
	var gTot, hTot float64
	for _, r := range rows {
		gTot += grad[r]
		hTot += hess[r]
	}
	parent := gTot * gTot / math.Max(hTot, 1e-12)
	feature = -1
	order := make([]int, len(rows))
	for f := 0; f < nf; f++ {
		copy(order, rows)
		sort.Slice(order, func(i, j int) bool { return X[order[i]][f] < X[order[j]][f] })
		var gl, hl float64
		for i := 0; i+1 < len(order); i++ {
			r := order[i]
			gl += grad[r]
			hl += hess[r]
			if i+1 < minLeaf || len(order)-i-1 < minLeaf {
				continue
			}
			x0, x1 := X[r][f], X[order[i+1]][f]
			if x0 == x1 {
				continue
			}
			gr, hr := gTot-gl, hTot-hl
			g := gl*gl/math.Max(hl, 1e-12) + gr*gr/math.Max(hr, 1e-12) - parent
			if g > gain {
				gain = g
				feature = f
				thresh = (x0 + x1) / 2
			}
		}
	}
	return feature, thresh, gain
}

func sampleRows(rng *rand.Rand, n int, frac float64) []int {
	if frac >= 1 {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		return rows
	}
	k := int(frac * float64(n))
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(n)
	rows := append([]int(nil), perm[:k]...)
	sort.Ints(rows)
	return rows
}

// Regressor is a boosted ensemble minimizing squared error.
type Regressor struct {
	Base  float64 `json:"base"`
	LR    float64 `json:"lr"`
	Trees []*Tree `json:"trees"`
}

// TrainRegressor fits a boosted regression model.
func TrainRegressor(X [][]float64, y []float64, cfg Config) (*Regressor, error) {
	if len(X) != len(y) {
		return nil, fmt.Errorf("gbdt: %d rows vs %d targets", len(X), len(y))
	}
	if err := cfg.validate(len(X), colCount(X)); err != nil {
		return nil, err
	}
	var base float64
	for _, v := range y {
		base += v
	}
	base /= float64(len(y))
	r := &Regressor{Base: base, LR: cfg.LearnRate}
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = base
	}
	grad := make([]float64, len(y))
	hess := make([]float64, len(y))
	for i := range hess {
		hess[i] = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for k := 0; k < cfg.NTrees; k++ {
		for i := range y {
			grad[i] = pred[i] - y[i]
		}
		rows := sampleRows(rng, len(y), cfg.SubsampleRows)
		t := growTree(X, grad, hess, rows, cfg)
		r.Trees = append(r.Trees, t)
		for i := range y {
			pred[i] += cfg.LearnRate * t.Predict(X[i])
		}
	}
	return r, nil
}

// Predict returns the regression estimate for one feature vector.
func (r *Regressor) Predict(x []float64) float64 {
	out := r.Base
	for _, t := range r.Trees {
		out += r.LR * t.Predict(x)
	}
	return out
}

// Classifier is a boosted ensemble minimizing logistic loss; Predict
// returns the positive-class probability.
type Classifier struct {
	Base  float64 `json:"base"` // prior log-odds
	LR    float64 `json:"lr"`
	Trees []*Tree `json:"trees"`
}

// TrainClassifier fits a boosted binary classifier; y must contain 0/1.
func TrainClassifier(X [][]float64, y []float64, cfg Config) (*Classifier, error) {
	if len(X) != len(y) {
		return nil, fmt.Errorf("gbdt: %d rows vs %d targets", len(X), len(y))
	}
	if err := cfg.validate(len(X), colCount(X)); err != nil {
		return nil, err
	}
	var pos float64
	for _, v := range y {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("gbdt: classification target %v not in {0,1}", v)
		}
		pos += v
	}
	p := math.Min(math.Max(pos/float64(len(y)), 1e-6), 1-1e-6)
	c := &Classifier{Base: math.Log(p / (1 - p)), LR: cfg.LearnRate}
	f := make([]float64, len(y))
	for i := range f {
		f[i] = c.Base
	}
	grad := make([]float64, len(y))
	hess := make([]float64, len(y))
	rng := rand.New(rand.NewSource(cfg.Seed))
	for k := 0; k < cfg.NTrees; k++ {
		for i := range y {
			pi := sigmoid(f[i])
			grad[i] = pi - y[i]
			hess[i] = math.Max(pi*(1-pi), 1e-6)
		}
		rows := sampleRows(rng, len(y), cfg.SubsampleRows)
		t := growTree(X, grad, hess, rows, cfg)
		c.Trees = append(c.Trees, t)
		for i := range y {
			f[i] += cfg.LearnRate * t.Predict(X[i])
		}
	}
	return c, nil
}

// Predict returns P(y=1 | x).
func (c *Classifier) Predict(x []float64) float64 {
	f := c.Base
	for _, t := range c.Trees {
		f += c.LR * t.Predict(x)
	}
	return sigmoid(f)
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

func colCount(X [][]float64) int {
	if len(X) == 0 {
		return 0
	}
	return len(X[0])
}

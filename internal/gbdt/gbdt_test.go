package gbdt

import (
	"math"
	"math/rand"
	"testing"
)

func synthRegression(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x0, x1, x2 := rng.Float64(), rng.Float64(), rng.Float64()
		X[i] = []float64{x0, x1, x2}
		y[i] = 3*x0 - 2*x1 + 0.5*math.Sin(6*x2) + 0.05*rng.NormFloat64()
	}
	return X, y
}

func TestRegressorFitsNonlinearFunction(t *testing.T) {
	X, y := synthRegression(600, 1)
	Xt, yt := synthRegression(200, 2)
	r, err := TrainRegressor(X, y, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var mse, varY, meanY float64
	for _, v := range yt {
		meanY += v
	}
	meanY /= float64(len(yt))
	for i := range Xt {
		d := r.Predict(Xt[i]) - yt[i]
		mse += d * d
		varY += (yt[i] - meanY) * (yt[i] - meanY)
	}
	mse /= float64(len(yt))
	varY /= float64(len(yt))
	if r2 := 1 - mse/varY; r2 < 0.85 {
		t.Errorf("test R^2 = %v, want >= 0.85", r2)
	}
}

func TestRegressorBeatsConstantBaseline(t *testing.T) {
	X, y := synthRegression(300, 4)
	r, err := TrainRegressor(X, y, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	var mseModel, mseBase float64
	for i := range X {
		dm := r.Predict(X[i]) - y[i]
		db := r.Base - y[i]
		mseModel += dm * dm
		mseBase += db * db
	}
	if mseModel >= mseBase/4 {
		t.Errorf("model MSE %v should be far below constant baseline %v", mseModel, mseBase)
	}
}

func TestClassifierLearnsXORishBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 800
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x0, x1 := rng.Float64(), rng.Float64()
		X[i] = []float64{x0, x1}
		if (x0 > 0.5) != (x1 > 0.5) {
			y[i] = 1
		}
	}
	c, err := TrainClassifier(X, y, DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range X {
		p := c.Predict(X[i])
		if (p > 0.5) == (y[i] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.9 {
		t.Errorf("train accuracy = %v, want >= 0.9", acc)
	}
}

func TestClassifierProbabilityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range X {
		X[i] = []float64{rng.Float64()}
		if X[i][0] > 0.3 {
			y[i] = 1
		}
	}
	c, err := TrainClassifier(X, y, DefaultConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p := c.Predict([]float64{rng.Float64()*3 - 1})
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestInputValidation(t *testing.T) {
	X := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	if _, err := TrainRegressor(X, y[:1], DefaultConfig(1)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := TrainRegressor(nil, nil, DefaultConfig(1)); err == nil {
		t.Error("empty matrix accepted")
	}
	bad := DefaultConfig(1)
	bad.NTrees = 0
	if _, err := TrainRegressor(X, y, bad); err == nil {
		t.Error("zero trees accepted")
	}
	if _, err := TrainClassifier(X, []float64{0.5, 1}, DefaultConfig(1)); err == nil {
		t.Error("non-binary target accepted")
	}
}

func TestConstantTargetYieldsConstantModel(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}, {2, 2}, {4, 4}, {6, 6}, {8, 8}}
	y := make([]float64, len(X))
	for i := range y {
		y[i] = 7
	}
	r, err := TrainRegressor(X, y, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Predict([]float64{100, -100}); math.Abs(got-7) > 1e-6 {
		t.Errorf("constant model predicts %v, want 7", got)
	}
}

func TestDeterministicTraining(t *testing.T) {
	X, y := synthRegression(200, 10)
	r1, err := TrainRegressor(X, y, DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TrainRegressor(X, y, DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := X[i]
		if r1.Predict(x) != r2.Predict(x) {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestMinLeafRespected(t *testing.T) {
	X, y := synthRegression(100, 12)
	cfg := DefaultConfig(13)
	cfg.MinLeaf = 40
	cfg.SubsampleRows = 1
	r, err := TrainRegressor(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With minLeaf 40 of 100 rows, trees have at most one split level.
	for _, tree := range r.Trees {
		depth := treeDepth(tree, 0)
		if depth > 2 {
			t.Fatalf("tree depth %d with MinLeaf=40 on 100 rows", depth)
		}
	}
}

func treeDepth(t *Tree, idx int) int {
	n := t.Nodes[idx]
	if n.Feature < 0 {
		return 1
	}
	l, r := treeDepth(t, n.Left), treeDepth(t, n.Right)
	if l > r {
		return 1 + l
	}
	return 1 + r
}

// Package hardware models the heterogeneous edge-cloud resource landscape
// of the paper: hosts described by the four transferable hardware features
// (CPU, RAM, outgoing network latency, outgoing network bandwidth), clusters
// of such hosts, the capability bins used by the placement heuristic
// (Figure 5), and generators over the training/evaluation feature grids
// (Tables II, IV, V).
//
// The paper realizes heterogeneity with Linux cgroups and tc-netem on
// CloudLab machines; those mechanisms only exist to set these four features,
// which this package represents directly.
package hardware

import (
	"fmt"
	"math/rand"
)

// Host is one compute node of the landscape, described exactly by the
// hardware-related transferable features of Table I.
type Host struct {
	ID string
	// CPU is the available compute resource in percent of a reference
	// core: 200 means two reference cores (or one at double speed).
	CPU float64
	// RAMMB is the available memory in megabytes.
	RAMMB float64
	// NetLatencyMS is the outgoing network latency of the host in
	// milliseconds.
	NetLatencyMS float64
	// NetBandwidthMbps is the outgoing network bandwidth in Mbit/s.
	NetBandwidthMbps float64
}

// Cores returns the host's compute capacity in reference cores.
func (h *Host) Cores() float64 { return h.CPU / 100 }

// RAMBytes returns the host memory in bytes.
func (h *Host) RAMBytes() float64 { return h.RAMMB * 1024 * 1024 }

// Validate reports an error when a feature is non-positive.
func (h *Host) Validate() error {
	if h.CPU <= 0 {
		return fmt.Errorf("host %s: cpu must be positive, got %v", h.ID, h.CPU)
	}
	if h.RAMMB <= 0 {
		return fmt.Errorf("host %s: ram must be positive, got %v", h.ID, h.RAMMB)
	}
	if h.NetLatencyMS < 0 {
		return fmt.Errorf("host %s: latency must be non-negative, got %v", h.ID, h.NetLatencyMS)
	}
	if h.NetBandwidthMbps <= 0 {
		return fmt.Errorf("host %s: bandwidth must be positive, got %v", h.ID, h.NetBandwidthMbps)
	}
	return nil
}

// CapabilityScore is a scalar summary of host strength used to classify
// hosts into bins. It mixes compute, memory and network strength on log
// scales so that no single dimension dominates.
func (h *Host) CapabilityScore() float64 {
	// Normalize against the training grid midpoints: cpu 400%, 8 GB RAM,
	// 800 Mbit/s, 20 ms. Latency counts inversely.
	c := h.CPU / 400
	r := h.RAMMB / 8000
	b := h.NetBandwidthMbps / 800
	l := 20 / maxf(h.NetLatencyMS, 0.5)
	return 0.4*c + 0.3*r + 0.2*b + 0.1*l
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Bin is a capability class for the placement heuristic's "increasing
// computing capability" rule: data may only flow from weaker to equal or
// stronger bins (edge -> fog -> cloud).
type Bin int

// Capability bins.
const (
	BinEdge Bin = iota
	BinFog
	BinCloud
)

func (b Bin) String() string {
	switch b {
	case BinEdge:
		return "edge"
	case BinFog:
		return "fog"
	case BinCloud:
		return "cloud"
	default:
		return fmt.Sprintf("Bin(%d)", int(b))
	}
}

// Classify maps a host to its capability bin. The thresholds intersect in
// feature range, emulating the paper's "bins intersected in their feature
// range" realistic transitions.
func Classify(h *Host) Bin {
	s := h.CapabilityScore()
	switch {
	case s < 0.6:
		return BinEdge
	case s < 1.3:
		return BinFog
	default:
		return BinCloud
	}
}

// Cluster is a set of hosts available for placement.
type Cluster struct {
	Hosts []*Host
}

// NumHosts returns the number of hosts.
func (c *Cluster) NumHosts() int { return len(c.Hosts) }

// Validate checks every host.
func (c *Cluster) Validate() error {
	if len(c.Hosts) == 0 {
		return fmt.Errorf("empty cluster")
	}
	seen := make(map[string]bool, len(c.Hosts))
	for _, h := range c.Hosts {
		if err := h.Validate(); err != nil {
			return err
		}
		if seen[h.ID] {
			return fmt.Errorf("duplicate host id %q", h.ID)
		}
		seen[h.ID] = true
	}
	return nil
}

// Bins returns the capability bin of each host, indexed like Hosts.
func (c *Cluster) Bins() []Bin {
	bins := make([]Bin, len(c.Hosts))
	for i, h := range c.Hosts {
		bins[i] = Classify(h)
	}
	return bins
}

// Clone returns a deep copy of the cluster.
func (c *Cluster) Clone() *Cluster {
	hosts := make([]*Host, len(c.Hosts))
	for i, h := range c.Hosts {
		hc := *h
		hosts[i] = &hc
	}
	return &Cluster{Hosts: hosts}
}

// LinkLatencyMS returns the network latency for shipping data from host
// src to host dst. Co-located operators communicate in-process at zero
// network latency; remote hops pay the sender's outgoing latency, matching
// the paper's "outgoing latency of the host" feature.
func (c *Cluster) LinkLatencyMS(src, dst int) float64 {
	if src == dst {
		return 0
	}
	return c.Hosts[src].NetLatencyMS
}

// LinkBandwidthMbps returns the bandwidth of the path from src to dst:
// infinite for co-location, otherwise the minimum of the sender's outgoing
// and the receiver's incoming (modeled as its outgoing) capacity.
func (c *Cluster) LinkBandwidthMbps(src, dst int) float64 {
	if src == dst {
		return 0 // caller must treat 0 as "no network constraint"
	}
	b := c.Hosts[src].NetBandwidthMbps
	if r := c.Hosts[dst].NetBandwidthMbps; r < b {
		b = r
	}
	return b
}

// Grid holds the value grids hardware features are sampled from. The zero
// value is unusable; use TrainingGrid or a custom grid.
type Grid struct {
	CPU       []float64
	RAMMB     []float64
	Bandwidth []float64
	LatencyMS []float64
}

// Validate reports an error naming the first unusable grid dimension: a
// dimension with no values, or a value a Host would reject (non-positive
// cpu/ram/bandwidth, negative latency). Scenario files that spell out
// custom host-template grids are checked with this before any sampling.
func (g Grid) Validate() error {
	dims := []struct {
		name      string
		vals      []float64
		allowZero bool
	}{
		{"cpu", g.CPU, false},
		{"ram_mb", g.RAMMB, false},
		{"bandwidth_mbps", g.Bandwidth, false},
		{"latency_ms", g.LatencyMS, true},
	}
	for _, d := range dims {
		if len(d.vals) == 0 {
			return fmt.Errorf("hardware: grid dimension %s is empty", d.name)
		}
		for _, v := range d.vals {
			if v < 0 || (v == 0 && !d.allowZero) {
				return fmt.Errorf("hardware: grid dimension %s holds invalid value %v", d.name, v)
			}
		}
	}
	return nil
}

// TrainingGrid returns the training data ranges of Table II.
func TrainingGrid() Grid {
	return Grid{
		CPU:       []float64{50, 100, 200, 300, 400, 500, 600, 700, 800},
		RAMMB:     []float64{1000, 2000, 4000, 8000, 16000, 24000, 32000},
		Bandwidth: []float64{25, 50, 100, 200, 400, 800, 1600, 3200, 6400, 10000},
		LatencyMS: []float64{1, 2, 5, 10, 20, 40, 80, 160},
	}
}

// InterpolationGrid returns the unseen in-range evaluation grid of
// Table IV-A (Exp 3).
func InterpolationGrid() Grid {
	return Grid{
		CPU:       []float64{75, 150, 250, 350, 450, 550, 650, 750},
		RAMMB:     []float64{1500, 3000, 6000, 12000, 20000, 28000},
		Bandwidth: []float64{35, 75, 150, 250, 550, 1200, 1900, 4800, 8000},
		LatencyMS: []float64{3, 7, 15, 30, 60, 120},
	}
}

// Sample draws one host with features drawn independently and uniformly
// from the grid values.
func (g Grid) Sample(rng *rand.Rand, id string) *Host {
	pick := func(vals []float64) float64 { return vals[rng.Intn(len(vals))] }
	return &Host{
		ID:               id,
		CPU:              pick(g.CPU),
		RAMMB:            pick(g.RAMMB),
		NetLatencyMS:     pick(g.LatencyMS),
		NetBandwidthMbps: pick(g.Bandwidth),
	}
}

// SampleCluster draws n hosts from the grid. To guarantee the heuristic
// placement rules are satisfiable it re-draws until the cluster contains at
// least one host of bin >= fog (so data can flow "upward"), falling back to
// boosting the last host after a bounded number of attempts.
func (g Grid) SampleCluster(rng *rand.Rand, n int) *Cluster {
	const attempts = 32
	for a := 0; a < attempts; a++ {
		c := &Cluster{}
		for i := 0; i < n; i++ {
			c.Hosts = append(c.Hosts, g.Sample(rng, fmt.Sprintf("host-%d", i)))
		}
		for _, b := range c.Bins() {
			if b >= BinFog {
				return c
			}
		}
	}
	// Fallback: force a strong final host from the top of the grids.
	c := &Cluster{}
	for i := 0; i < n-1; i++ {
		c.Hosts = append(c.Hosts, g.Sample(rng, fmt.Sprintf("host-%d", i)))
	}
	c.Hosts = append(c.Hosts, &Host{
		ID:               fmt.Sprintf("host-%d", n-1),
		CPU:              g.CPU[len(g.CPU)-1],
		RAMMB:            g.RAMMB[len(g.RAMMB)-1],
		NetLatencyMS:     g.LatencyMS[0],
		NetBandwidthMbps: g.Bandwidth[len(g.Bandwidth)-1],
	})
	return c
}

// MeanFeatures returns the mean CPU, RAM, bandwidth and latency across the
// cluster's hosts, used by the evaluation's hardware bucketing (Figure 7).
func (c *Cluster) MeanFeatures() (cpu, ramMB, bwMbps, latMS float64) {
	n := float64(len(c.Hosts))
	if n == 0 {
		return 0, 0, 0, 0
	}
	for _, h := range c.Hosts {
		cpu += h.CPU
		ramMB += h.RAMMB
		bwMbps += h.NetBandwidthMbps
		latMS += h.NetLatencyMS
	}
	return cpu / n, ramMB / n, bwMbps / n, latMS / n
}

package hardware

import (
	"math/rand"
	"testing"
)

func TestCoresAndRAMBytes(t *testing.T) {
	h := &Host{ID: "x", CPU: 250, RAMMB: 2, NetLatencyMS: 1, NetBandwidthMbps: 10}
	if h.Cores() != 2.5 {
		t.Errorf("Cores = %v, want 2.5", h.Cores())
	}
	if h.RAMBytes() != 2*1024*1024 {
		t.Errorf("RAMBytes = %v", h.RAMBytes())
	}
}

func TestSampleClusterFallbackBoostsLastHost(t *testing.T) {
	// A grid whose every draw is edge-class forces the fallback path: the
	// last host is built from the strongest values the grid can express.
	// (An all-edge cluster is still placeable — the capability rule only
	// forbids *decreasing* bins — so no off-grid host is invented.)
	g := Grid{
		CPU:       []float64{50},
		RAMMB:     []float64{1000},
		Bandwidth: []float64{25},
		LatencyMS: []float64{160},
	}
	rng := rand.New(rand.NewSource(1))
	c := g.SampleCluster(rng, 3)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	last := c.Hosts[len(c.Hosts)-1]
	if last.CPU != 50 || last.RAMMB != 1000 || last.NetBandwidthMbps != 25 || last.NetLatencyMS != 160 {
		t.Errorf("fallback host off-grid: %+v", last)
	}
}

func TestNumHosts(t *testing.T) {
	c := &Cluster{Hosts: []*Host{{ID: "a", CPU: 100, RAMMB: 1000, NetLatencyMS: 1, NetBandwidthMbps: 25}}}
	if c.NumHosts() != 1 {
		t.Errorf("NumHosts = %d", c.NumHosts())
	}
}

func TestMeanFeaturesEmpty(t *testing.T) {
	var c Cluster
	cpu, ram, bw, lat := c.MeanFeatures()
	if cpu != 0 || ram != 0 || bw != 0 || lat != 0 {
		t.Error("empty cluster means must be zero")
	}
}

package hardware

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHostValidate(t *testing.T) {
	good := Host{ID: "h", CPU: 200, RAMMB: 4000, NetLatencyMS: 5, NetBandwidthMbps: 100}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid host rejected: %v", err)
	}
	bad := []Host{
		{ID: "a", CPU: 0, RAMMB: 4000, NetLatencyMS: 5, NetBandwidthMbps: 100},
		{ID: "b", CPU: 200, RAMMB: 0, NetLatencyMS: 5, NetBandwidthMbps: 100},
		{ID: "c", CPU: 200, RAMMB: 4000, NetLatencyMS: -1, NetBandwidthMbps: 100},
		{ID: "d", CPU: 200, RAMMB: 4000, NetLatencyMS: 5, NetBandwidthMbps: 0},
	}
	for _, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("host %s accepted, want error", h.ID)
		}
	}
}

func TestClusterValidateDuplicateIDs(t *testing.T) {
	c := &Cluster{Hosts: []*Host{
		{ID: "x", CPU: 100, RAMMB: 1000, NetLatencyMS: 1, NetBandwidthMbps: 25},
		{ID: "x", CPU: 200, RAMMB: 2000, NetLatencyMS: 1, NetBandwidthMbps: 25},
	}}
	if err := c.Validate(); err == nil {
		t.Error("duplicate ids accepted")
	}
	if err := (&Cluster{}).Validate(); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestClassifyOrdering(t *testing.T) {
	weak := &Host{ID: "w", CPU: 50, RAMMB: 1000, NetLatencyMS: 160, NetBandwidthMbps: 25}
	mid := &Host{ID: "m", CPU: 400, RAMMB: 8000, NetLatencyMS: 20, NetBandwidthMbps: 800}
	strong := &Host{ID: "s", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000}
	if Classify(weak) != BinEdge {
		t.Errorf("weak host bin = %v, want edge", Classify(weak))
	}
	if Classify(mid) != BinFog {
		t.Errorf("mid host bin = %v, want fog (score %v)", Classify(mid), mid.CapabilityScore())
	}
	if Classify(strong) != BinCloud {
		t.Errorf("strong host bin = %v, want cloud", Classify(strong))
	}
	if !(weak.CapabilityScore() < mid.CapabilityScore() && mid.CapabilityScore() < strong.CapabilityScore()) {
		t.Error("capability score not monotone in strength")
	}
}

func TestCapabilityScoreMonotoneInCPU(t *testing.T) {
	f := func(cpuStep uint8) bool {
		c1 := 50 + float64(cpuStep%16)*50
		c2 := c1 + 50
		h1 := &Host{CPU: c1, RAMMB: 8000, NetLatencyMS: 20, NetBandwidthMbps: 800}
		h2 := &Host{CPU: c2, RAMMB: 8000, NetLatencyMS: 20, NetBandwidthMbps: 800}
		return h2.CapabilityScore() > h1.CapabilityScore()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkModel(t *testing.T) {
	c := &Cluster{Hosts: []*Host{
		{ID: "a", CPU: 100, RAMMB: 1000, NetLatencyMS: 40, NetBandwidthMbps: 50},
		{ID: "b", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
	if got := c.LinkLatencyMS(0, 0); got != 0 {
		t.Errorf("co-located latency = %v, want 0", got)
	}
	if got := c.LinkLatencyMS(0, 1); got != 40 {
		t.Errorf("edge->cloud latency = %v, want 40 (sender's outgoing)", got)
	}
	if got := c.LinkLatencyMS(1, 0); got != 1 {
		t.Errorf("cloud->edge latency = %v, want 1", got)
	}
	if got := c.LinkBandwidthMbps(0, 1); got != 50 {
		t.Errorf("bandwidth = %v, want min(50,10000)=50", got)
	}
	if got := c.LinkBandwidthMbps(1, 1); got != 0 {
		t.Errorf("co-located bandwidth sentinel = %v, want 0", got)
	}
}

func TestGridsWithinPaperRanges(t *testing.T) {
	tg := TrainingGrid()
	if len(tg.CPU) != 9 || tg.CPU[0] != 50 || tg.CPU[8] != 800 {
		t.Errorf("training CPU grid mismatch: %v", tg.CPU)
	}
	if len(tg.RAMMB) != 7 || tg.RAMMB[6] != 32000 {
		t.Errorf("training RAM grid mismatch: %v", tg.RAMMB)
	}
	if len(tg.Bandwidth) != 10 || tg.Bandwidth[9] != 10000 {
		t.Errorf("training bandwidth grid mismatch: %v", tg.Bandwidth)
	}
	if len(tg.LatencyMS) != 8 || tg.LatencyMS[7] != 160 {
		t.Errorf("training latency grid mismatch: %v", tg.LatencyMS)
	}
	ig := InterpolationGrid()
	for _, v := range ig.CPU {
		if v < tg.CPU[0] || v > tg.CPU[len(tg.CPU)-1] {
			t.Errorf("interpolation CPU %v outside training range", v)
		}
		for _, tv := range tg.CPU {
			if v == tv {
				t.Errorf("interpolation CPU %v collides with training grid", v)
			}
		}
	}
}

func TestSampleClusterSatisfiesHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := TrainingGrid()
	for i := 0; i < 50; i++ {
		c := g.SampleCluster(rng, 4)
		if err := c.Validate(); err != nil {
			t.Fatalf("sampled cluster invalid: %v", err)
		}
		ok := false
		for _, b := range c.Bins() {
			if b >= BinFog {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("cluster %d has no fog/cloud host", i)
		}
	}
}

func TestSampleDrawsFromGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := TrainingGrid()
	in := func(v float64, vals []float64) bool {
		for _, x := range vals {
			if x == v {
				return true
			}
		}
		return false
	}
	for i := 0; i < 100; i++ {
		h := g.Sample(rng, "h")
		if !in(h.CPU, g.CPU) || !in(h.RAMMB, g.RAMMB) || !in(h.NetBandwidthMbps, g.Bandwidth) || !in(h.NetLatencyMS, g.LatencyMS) {
			t.Fatalf("sampled host off-grid: %+v", h)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := &Cluster{Hosts: []*Host{{ID: "a", CPU: 100, RAMMB: 1000, NetLatencyMS: 1, NetBandwidthMbps: 25}}}
	d := c.Clone()
	d.Hosts[0].CPU = 999
	if c.Hosts[0].CPU == 999 {
		t.Error("Clone shares host memory")
	}
}

func TestMeanFeatures(t *testing.T) {
	c := &Cluster{Hosts: []*Host{
		{ID: "a", CPU: 100, RAMMB: 2000, NetLatencyMS: 10, NetBandwidthMbps: 100},
		{ID: "b", CPU: 300, RAMMB: 6000, NetLatencyMS: 30, NetBandwidthMbps: 300},
	}}
	cpu, ram, bw, lat := c.MeanFeatures()
	if cpu != 200 || ram != 4000 || bw != 200 || lat != 20 {
		t.Errorf("MeanFeatures = %v %v %v %v", cpu, ram, bw, lat)
	}
}

func TestBinString(t *testing.T) {
	if BinEdge.String() != "edge" || BinFog.String() != "fog" || BinCloud.String() != "cloud" {
		t.Error("bin strings wrong")
	}
}

package core

import (
	"runtime"
	"sync/atomic"
)

// trainBudget is the process-wide training-worker budget: a counting
// semaphore bounding how many training/validation worker tasks execute
// concurrently across ALL Train/TrainEnsemble/TrainPredictor calls.
// TrainEnsemble fans out one goroutine per ensemble member and fit fans
// out per-batch workers inside each; gating every worker task on one
// shared budget keeps the multiplied fan-out (5 metrics x k members x
// per-fit workers) from oversubscribing the machine.
var trainBudget atomic.Pointer[chan struct{}]

func init() { SetTrainBudget(0) }

// SetTrainBudget bounds the total number of concurrently executing
// training worker tasks in the process; n <= 0 resets it to GOMAXPROCS.
// Call it before training starts — tasks already holding a token from the
// previous budget drain against that budget.
func SetTrainBudget(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	ch := make(chan struct{}, n)
	trainBudget.Store(&ch)
}

// acquireTrainToken blocks until a budget token is free and returns the
// channel the token must be released to (the budget may be swapped while
// a token is held).
func acquireTrainToken() chan struct{} {
	ch := *trainBudget.Load()
	ch <- struct{}{}
	return ch
}

func releaseTrainToken(ch chan struct{}) { <-ch }

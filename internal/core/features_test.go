package core

import (
	"math"
	"testing"
	"testing/quick"

	"costream/internal/gnn"
	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

func featQuery(t *testing.T) *stream.Query {
	t.Helper()
	b := stream.NewBuilder()
	s1 := b.AddSource(400, []stream.DataType{stream.TypeInt, stream.TypeString})
	s2 := b.AddSource(800, []stream.DataType{stream.TypeDouble, stream.TypeDouble, stream.TypeInt})
	f := b.AddFilter(stream.FilterStartsWith, stream.TypeString, 0.2)
	j := b.AddJoin(stream.TypeString, stream.Window{Type: stream.WindowSliding, Policy: stream.WindowCountBased, Size: 80, Slide: 40}, 0.001)
	a := b.AddAggregate(stream.AggMax, stream.TypeDouble, stream.TypeInt, true,
		stream.Window{Type: stream.WindowTumbling, Policy: stream.WindowTimeBased, Size: 2, Slide: 2}, 0.5)
	k := b.AddSink()
	b.Connect(s1, f).Connect(f, j).Connect(s2, j)
	b.Chain(j, a, k)
	return b.MustBuild()
}

func featCluster() *hardware.Cluster {
	return &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "e", CPU: 100, RAMMB: 2000, NetLatencyMS: 40, NetBandwidthMbps: 100},
		{ID: "c", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
}

func TestFeaturizerDeterministic(t *testing.T) {
	q := featQuery(t)
	c := featCluster()
	p := sim.Placement{0, 0, 0, 1, 1, 1}
	f := Featurizer{}
	g1, err := f.BuildGraph(q, c, p)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := f.BuildGraph(q, c, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatal("node counts differ")
	}
	for i := range g1.Nodes {
		for j := range g1.Nodes[i].Feat {
			if g1.Nodes[i].Feat[j] != g2.Nodes[i].Feat[j] {
				t.Fatalf("node %d feature %d differs", i, j)
			}
		}
	}
}

func TestFeaturizerOneHots(t *testing.T) {
	q := featQuery(t)
	c := featCluster()
	p := sim.Placement{0, 0, 0, 1, 1, 1}
	f := Featurizer{}
	g, err := f.BuildGraph(q, c, p)
	if err != nil {
		t.Fatal(err)
	}
	// Filter node: fn one-hot must select startswith (index 5).
	filt := g.Nodes[2]
	if filt.Kind != gnn.KindFilter {
		t.Fatalf("node 2 kind = %v", filt.Kind)
	}
	for i := 0; i < 7; i++ {
		want := 0.0
		if i == int(stream.FilterStartsWith) {
			want = 1
		}
		if filt.Feat[i] != want {
			t.Errorf("filter fn one-hot[%d] = %v, want %v", i, filt.Feat[i], want)
		}
	}
	// Literal one-hot: string = index 1 within next 3 slots.
	if filt.Feat[7+int(stream.TypeString)] != 1 {
		t.Error("literal one-hot wrong")
	}
	// Join node: key one-hot string.
	join := g.Nodes[3]
	if join.Kind != gnn.KindJoin {
		t.Fatalf("node 3 kind = %v", join.Kind)
	}
	if join.Feat[int(stream.TypeString)] != 1 {
		t.Error("join key one-hot wrong")
	}
}

func TestSelNormMonotone(t *testing.T) {
	f := func(aPct, bPct uint16) bool {
		a := float64(aPct%10000) / 10000
		b := float64(bPct%10000) / 10000
		if a > b {
			a, b = b, a
		}
		return normSel(a) <= normSel(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateNormMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		ra := float64(a%1000000) + 1
		rb := float64(b%1000000) + 1
		if ra > rb {
			ra, rb = rb, ra
		}
		return normRate(ra) <= normRate(rb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowExtentFeaturesScaleWithRate(t *testing.T) {
	w := &stream.Window{Type: stream.WindowSliding, Policy: stream.WindowTimeBased, Size: 4, Slide: 2}
	low := windowExtentFeatures(w, 100)
	high := windowExtentFeatures(w, 10000)
	// Seconds extent identical (time window), tuple extent grows.
	if low[0] != high[0] {
		t.Error("time-window seconds extent should not depend on rate")
	}
	if high[1] <= low[1] {
		t.Error("tuple extent must grow with rate")
	}
	if got := windowExtentFeatures(nil, 100); got[0] != 0 || got[1] != 0 {
		t.Error("nil window must produce zero extents")
	}
}

func TestHostNodeSharing(t *testing.T) {
	// Two operators on the same host must share one host node.
	q := featQuery(t)
	c := featCluster()
	f := Featurizer{}
	all0 := sim.Placement{0, 0, 0, 0, 0, 0}
	g, err := f.BuildGraph(q, c, all0)
	if err != nil {
		t.Fatal(err)
	}
	hosts := 0
	for _, nd := range g.Nodes {
		if nd.Kind == gnn.KindHost {
			hosts++
		}
	}
	if hosts != 1 {
		t.Fatalf("fully co-located placement has %d host nodes, want 1", hosts)
	}
	if len(g.PlaceEdges) != 6 {
		t.Fatalf("placement edges = %d, want 6", len(g.PlaceEdges))
	}
}

func TestBuildGraphRejectsInvalidInputs(t *testing.T) {
	q := featQuery(t)
	c := featCluster()
	f := Featurizer{}
	if _, err := f.BuildGraph(q, c, sim.Placement{0}); err == nil {
		t.Error("short placement accepted")
	}
	bad := &stream.Query{} // invalid: empty
	if _, err := f.BuildGraph(bad, c, nil); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestFeatureModeString(t *testing.T) {
	for _, m := range []FeatureMode{FeatFull, FeatPlacementOnly, FeatQueryOnly} {
		if m.String() == "" {
			t.Error("empty mode name")
		}
	}
	if FeatureMode(9).String() == "" {
		t.Error("out-of-range mode must format")
	}
}

func TestNormLatencyInverseDirection(t *testing.T) {
	// Lower latency = stronger host, but the feature itself is just a
	// monotone transform; check the endpoints used by the grids.
	if normLat(1) >= normLat(160) {
		t.Error("latency norm must grow with latency")
	}
	if math.IsNaN(normLat(0)) {
		t.Error("zero latency must be clamped, not NaN")
	}
}

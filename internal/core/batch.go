package core

import (
	"fmt"
	"sync"
	"time"

	"costream/internal/gnn"
	"costream/internal/hardware"
	"costream/internal/obs"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
)

// inferMetrics times the batched inference path in the default registry:
// the placement-invariant featurization setup per PredictBatch call and
// the full scoring (graph assembly + all ensembles) per candidate.
type inferMetrics struct {
	featurizeSeconds *obs.Histogram
	candidateSeconds *obs.Histogram
	candidates       *obs.Counter
}

var inferMet = sync.OnceValue(func() *inferMetrics {
	r := obs.Default()
	return &inferMetrics{
		featurizeSeconds: r.Histogram("costream_inference_featurize_seconds",
			"placement-invariant featurization setup per PredictBatch call", 1e-9),
		candidateSeconds: r.Histogram("costream_inference_candidate_seconds",
			"full scoring of one placement candidate across all cost-metric ensembles", 1e-9),
		candidates: r.Counter("costream_inference_candidates_total",
			"placement candidates scored through the batched inference path"),
	}
})

// BatchFeaturizer amortizes graph construction over many placement
// candidates for a fixed (query, cluster) pair: the operator nodes, their
// feature vectors and the data-flow edges are placement-invariant and
// computed once, as are the per-host feature vectors. Building the graph
// for one more candidate then only assembles placement edges and host
// node references — no feature arithmetic and no re-validation of the
// query.
type BatchFeaturizer struct {
	mode     FeatureMode
	q        *stream.Query
	c        *hardware.Cluster
	base     *gnn.Graph  // operator nodes + flow edges (shared, read-only)
	plan     *gnn.Plan   // flow structure shared by every candidate graph
	hostFeat [][]float64 // per-host feature vectors (shared, read-only)
}

// Plan returns the message-passing plan shared by all graphs this
// featurizer builds.
func (bf *BatchFeaturizer) Plan() *gnn.Plan { return bf.plan }

// NewBatch prepares a BatchFeaturizer for the query and cluster. The
// returned graphs share node feature slices; they must be treated as
// read-only (Model.Forward and Model.Infer never mutate them).
func (f *Featurizer) NewBatch(q *stream.Query, c *hardware.Cluster) (*BatchFeaturizer, error) {
	base, err := f.opGraph(q)
	if err != nil {
		return nil, err
	}
	plan, err := gnn.NewPlan(base)
	if err != nil {
		return nil, err
	}
	bf := &BatchFeaturizer{mode: f.Mode, q: q, c: c, base: base, plan: plan}
	if f.Mode == FeatQueryOnly {
		return bf, nil
	}
	if c == nil {
		return nil, fmt.Errorf("core: cluster required for %v featurization", f.Mode)
	}
	bf.hostFeat = make([][]float64, len(c.Hosts))
	for h, host := range c.Hosts {
		bf.hostFeat[h] = f.hostFeatures(host)
	}
	return bf, nil
}

// BuildGraph assembles the joint graph for one placement candidate,
// reusing the cached placement-invariant parts. The result is identical
// to Featurizer.BuildGraph for the same triple.
func (bf *BatchFeaturizer) BuildGraph(p sim.Placement) (*gnn.Graph, error) {
	if bf.mode == FeatQueryOnly {
		return bf.base, nil
	}
	if err := p.Validate(bf.q, bf.c); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	nodes := make([]gnn.Node, len(bf.base.Nodes), len(bf.base.Nodes)+len(p))
	copy(nodes, bf.base.Nodes)
	g := &gnn.Graph{Nodes: nodes, FlowEdges: bf.base.FlowEdges}
	attachHosts(g, p, func(h int) []float64 { return bf.hostFeat[h] })
	return g, nil
}

// ensembles lists the predictor's per-metric ensembles in paper order,
// skipping untrained slots.
func (pr *Predictor) ensembles() []*Ensemble {
	var out []*Ensemble
	for _, s := range pr.Ensembles() {
		if s.Ensemble != nil {
			out = append(out, s.Ensemble)
		}
	}
	return out
}

// PredictBatch implements placement.BatchPredictor: it scores every
// candidate with all ensemble members, featurizing each candidate once
// and sharing the resulting graph across the (up to) 5 metrics x k
// ensemble members — instead of rebuilding it 5*k times as per-candidate
// PredictPlacement calls would. Outputs match PredictPlacement exactly.
func (pr *Predictor) PredictBatch(q *stream.Query, c *hardware.Cluster, candidates []sim.Placement) ([]placement.PredCosts, error) {
	met := inferMet()
	featStart := time.Now()
	// One BatchFeaturizer per distinct featurization mode; in practice a
	// predictor uses one mode, but Exp 7a ablations may mix them.
	batches := map[FeatureMode]*BatchFeaturizer{}
	for _, e := range pr.ensembles() {
		for _, m := range e.Models {
			if _, ok := batches[m.Feat.Mode]; !ok {
				bf, err := m.Feat.NewBatch(q, c)
				if err != nil {
					return nil, err
				}
				batches[m.Feat.Mode] = bf
			}
		}
	}

	met.featurizeSeconds.Since(featStart)

	out := make([]placement.PredCosts, len(candidates))
	src := &batchSource{
		batches: batches,
		gcache:  make(map[FeatureMode]*gnn.Graph, len(batches)),
	}
	w := getInferScratch()
	defer putInferScratch(w)
	for i, p := range candidates {
		candStart := time.Now()
		clear(src.gcache)
		src.p = p
		// value and label mirror Ensemble.PredictValue / PredictLabel on
		// the shared graph, keeping the accumulation order identical so
		// results are bit-equal to the per-candidate path; stackable
		// ensembles additionally ride the one-pass stacked kernels.
		value := func(e *Ensemble) (float64, error) {
			vals, err := e.predictWith(src, w)
			if err != nil {
				return 0, err
			}
			return meanOf(vals), nil
		}
		label := func(e *Ensemble) (bool, error) {
			probs, err := e.predictWith(src, w)
			if err != nil {
				return false, err
			}
			return voteOf(probs), nil
		}

		costs := placement.PredCosts{Success: true}
		var err error
		if pr.Throughput != nil {
			if costs.ThroughputTPS, err = value(pr.Throughput); err != nil {
				return nil, fmt.Errorf("core: batch candidate %d: %w", i, err)
			}
		}
		if pr.ProcLatency != nil {
			if costs.ProcLatencyMS, err = value(pr.ProcLatency); err != nil {
				return nil, fmt.Errorf("core: batch candidate %d: %w", i, err)
			}
		}
		if pr.E2ELatency != nil {
			if costs.E2ELatencyMS, err = value(pr.E2ELatency); err != nil {
				return nil, fmt.Errorf("core: batch candidate %d: %w", i, err)
			}
		}
		if pr.Backpressure != nil {
			if costs.Backpressured, err = label(pr.Backpressure); err != nil {
				return nil, fmt.Errorf("core: batch candidate %d: %w", i, err)
			}
		}
		if pr.Success != nil {
			if costs.Success, err = label(pr.Success); err != nil {
				return nil, fmt.Errorf("core: batch candidate %d: %w", i, err)
			}
		}
		out[i] = costs
		met.candidateSeconds.Since(candStart)
		met.candidates.Inc()
	}
	return out, nil
}

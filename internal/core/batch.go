package core

import (
	"fmt"
	"sync"

	"costream/internal/gnn"
	"costream/internal/hardware"
	"costream/internal/obs"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
)

// inferMetrics times the batched inference path in the default registry:
// the placement-invariant featurization setup per scoring session, the
// per-tile fused scoring, and the per-candidate fallback scoring.
type inferMetrics struct {
	featurizeSeconds *obs.Histogram
	candidateSeconds *obs.Histogram
	tileSeconds      *obs.Histogram
	tileSize         *obs.Histogram
	candidates       *obs.Counter
	fusedTiles       *obs.Counter
	fusedCandidates  *obs.Counter
	fallbackCands    *obs.Counter
}

var inferMet = sync.OnceValue(func() *inferMetrics {
	r := obs.Default()
	return &inferMetrics{
		featurizeSeconds: r.Histogram("costream_inference_featurize_seconds",
			"placement-invariant featurization setup per scoring session (TileSession / PredictBatch)", 1e-9),
		candidateSeconds: r.Histogram("costream_inference_candidate_seconds",
			"full scoring of one placement candidate on the per-candidate fallback path", 1e-9),
		tileSeconds: r.Histogram("costream_inference_tile_seconds",
			"full scoring of one candidate tile across all cost-metric ensembles", 1e-9),
		tileSize: r.Histogram("costream_inference_tile_size",
			"candidates per scored tile (fused round scoring)", 1),
		candidates: r.Counter("costream_inference_candidates_total",
			"placement candidates scored through the batched inference path"),
		fusedTiles: r.Counter("costream_inference_fused_tiles_total",
			"candidate tiles scored through the packed cross-candidate kernels"),
		fusedCandidates: r.Counter("costream_inference_fused_candidates_total",
			"placement candidates scored through the packed cross-candidate kernels"),
		fallbackCands: r.Counter("costream_inference_fallback_candidates_total",
			"placement candidates scored per candidate inside a tile (unstackable ensembles)"),
	}
})

// BatchFeaturizer amortizes graph construction over many placement
// candidates for a fixed (query, cluster) pair: the operator nodes, their
// feature vectors and the data-flow edges are placement-invariant and
// computed once, as are the per-host feature vectors. Building the graph
// for one more candidate then only assembles placement edges and host
// node references — no feature arithmetic and no re-validation of the
// query.
type BatchFeaturizer struct {
	mode     FeatureMode
	q        *stream.Query
	c        *hardware.Cluster
	base     *gnn.Graph  // operator nodes + flow edges (shared, read-only)
	plan     *gnn.Plan   // flow structure shared by every candidate graph
	hostFeat [][]float64 // per-host feature vectors (shared, read-only)
}

// Plan returns the message-passing plan shared by all graphs this
// featurizer builds.
func (bf *BatchFeaturizer) Plan() *gnn.Plan { return bf.plan }

// NewBatch prepares a BatchFeaturizer for the query and cluster. The
// returned graphs share node feature slices; they must be treated as
// read-only (Model.Forward and Model.Infer never mutate them).
func (f *Featurizer) NewBatch(q *stream.Query, c *hardware.Cluster) (*BatchFeaturizer, error) {
	base, err := f.opGraph(q)
	if err != nil {
		return nil, err
	}
	plan, err := gnn.NewPlan(base)
	if err != nil {
		return nil, err
	}
	bf := &BatchFeaturizer{mode: f.Mode, q: q, c: c, base: base, plan: plan}
	if f.Mode == FeatQueryOnly {
		return bf, nil
	}
	if c == nil {
		return nil, fmt.Errorf("core: cluster required for %v featurization", f.Mode)
	}
	bf.hostFeat = make([][]float64, len(c.Hosts))
	for h, host := range c.Hosts {
		bf.hostFeat[h] = f.hostFeatures(host)
	}
	return bf, nil
}

// BuildGraph assembles the joint graph for one placement candidate,
// reusing the cached placement-invariant parts. The result is identical
// to Featurizer.BuildGraph for the same triple.
func (bf *BatchFeaturizer) BuildGraph(p sim.Placement) (*gnn.Graph, error) {
	if bf.mode == FeatQueryOnly {
		return bf.base, nil
	}
	if err := p.Validate(bf.q, bf.c); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	nodes := make([]gnn.Node, len(bf.base.Nodes), len(bf.base.Nodes)+len(p))
	copy(nodes, bf.base.Nodes)
	g := &gnn.Graph{Nodes: nodes, FlowEdges: bf.base.FlowEdges}
	attachHosts(g, p, func(h int) []float64 { return bf.hostFeat[h] })
	return g, nil
}

// buildGraphInto is BuildGraph into caller-owned storage: the graph's
// node and placement-edge slices are recycled across calls, and the
// host-node map is replaced by the hostSlot scratch array (grown and
// reset here), so steady-state candidate assembly allocates nothing.
// For FeatQueryOnly the shell aliases the shared base. The result is
// value-identical to BuildGraph — same nodes, same shared feature
// slices, same edge order — and must be treated as read-only.
func (bf *BatchFeaturizer) buildGraphInto(p sim.Placement, g *gnn.Graph, hostSlot *[]int) error {
	if bf.mode == FeatQueryOnly {
		g.Nodes = bf.base.Nodes
		g.FlowEdges = bf.base.FlowEdges
		g.PlaceEdges = nil
		return nil
	}
	if err := p.Validate(bf.q, bf.c); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	nOps := len(bf.base.Nodes)
	if cap(g.Nodes) < nOps+len(p) {
		g.Nodes = make([]gnn.Node, nOps, nOps+len(p))
	} else {
		g.Nodes = g.Nodes[:nOps]
	}
	copy(g.Nodes, bf.base.Nodes)
	g.FlowEdges = bf.base.FlowEdges
	g.PlaceEdges = g.PlaceEdges[:0]
	if cap(*hostSlot) < len(bf.hostFeat) {
		*hostSlot = make([]int, len(bf.hostFeat))
	}
	slots := (*hostSlot)[:len(bf.hostFeat)]
	for i := range slots {
		slots[i] = -1
	}
	for opIdx, h := range p {
		node := slots[h]
		if node < 0 {
			node = len(g.Nodes)
			slots[h] = node
			g.Nodes = append(g.Nodes, gnn.Node{Kind: gnn.KindHost, Feat: bf.hostFeat[h]})
		}
		g.PlaceEdges = append(g.PlaceEdges, [2]int{opIdx, node})
	}
	return nil
}

// ensembles lists the predictor's per-metric ensembles in paper order,
// skipping untrained slots.
func (pr *Predictor) ensembles() []*Ensemble {
	var out []*Ensemble
	for _, s := range pr.Ensembles() {
		if s.Ensemble != nil {
			out = append(out, s.Ensemble)
		}
	}
	return out
}

// PredictBatch implements placement.BatchPredictor: it scores every
// candidate with all ensemble members through a one-off TileSession —
// the placement-invariant featurization runs once for the whole batch,
// and each tile of candidates advances through the packed
// cross-candidate kernels (see TileSession.ScoreTile). Outputs match
// per-candidate PredictPlacement exactly. Callers scoring several
// batches for one (query, cluster) should hold a TileSession instead.
func (pr *Predictor) PredictBatch(q *stream.Query, c *hardware.Cluster, candidates []sim.Placement) ([]placement.PredCosts, error) {
	sess, err := pr.NewTileSession(q, c)
	if err != nil {
		return nil, err
	}
	out := make([]placement.PredCosts, len(candidates))
	tile := sess.TileSize()
	for lo := 0; lo < len(candidates); lo += tile {
		hi := min(lo+tile, len(candidates))
		if err := sess.ScoreTile(candidates[lo:hi], out[lo:hi]); err != nil {
			return nil, fmt.Errorf("core: batch candidates %d-%d: %w", lo, hi-1, err)
		}
	}
	return out, nil
}

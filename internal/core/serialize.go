package core

import (
	"encoding/json"
	"fmt"

	"costream/internal/gnn"
)

// ParseMetric maps a metric name (as produced by Metric.String) back to
// the metric, for CLI flags and serialized model files.
func ParseMetric(name string) (Metric, error) {
	for _, m := range AllMetrics() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown metric %q (want one of throughput, proc-latency, e2e-latency, backpressure, success)", name)
}

// ParseFeatureMode maps a featurization-mode name (as produced by
// FeatureMode.String) back to the mode.
func ParseFeatureMode(name string) (FeatureMode, error) {
	for _, m := range []FeatureMode{FeatFull, FeatPlacementOnly, FeatQueryOnly} {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown feature mode %q (want full, placement-only or query-only)", name)
}

// costModelJSON is the serialized form of a CostModel: the metric it was
// trained for, the featurization that produced its input graphs (the
// normalization constants are fixed, so the mode fully determines the
// featurizer), and the GNN weights.
type costModelJSON struct {
	Metric      string     `json:"metric"`
	FeatureMode string     `json:"feature_mode"`
	Net         *gnn.Model `json:"net"`
}

// MarshalJSON encodes the cost model with its featurizer configuration.
func (cm *CostModel) MarshalJSON() ([]byte, error) {
	if cm.Net == nil {
		return nil, fmt.Errorf("core: cost model for %v has no network", cm.Metric)
	}
	return json.Marshal(costModelJSON{
		Metric:      cm.Metric.String(),
		FeatureMode: cm.Feat.Mode.String(),
		Net:         cm.Net,
	})
}

// UnmarshalJSON decodes a cost model written by MarshalJSON.
func (cm *CostModel) UnmarshalJSON(data []byte) error {
	var j costModelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	metric, err := ParseMetric(j.Metric)
	if err != nil {
		return err
	}
	mode, err := ParseFeatureMode(j.FeatureMode)
	if err != nil {
		return err
	}
	if j.Net == nil {
		return fmt.Errorf("core: cost model for %v is missing its network", metric)
	}
	cm.Metric = metric
	cm.Feat = Featurizer{Mode: mode}
	cm.Net = j.Net
	return nil
}

// ensembleJSON is the serialized form of an Ensemble.
type ensembleJSON struct {
	Metric  string       `json:"metric"`
	Members []*CostModel `json:"members"`
}

// MarshalJSON encodes the ensemble with all member models.
func (e *Ensemble) MarshalJSON() ([]byte, error) {
	return json.Marshal(ensembleJSON{Metric: e.Metric.String(), Members: e.Models})
}

// UnmarshalJSON decodes an ensemble, checking member consistency.
func (e *Ensemble) UnmarshalJSON(data []byte) error {
	var j ensembleJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	metric, err := ParseMetric(j.Metric)
	if err != nil {
		return err
	}
	if len(j.Members) == 0 {
		return fmt.Errorf("core: ensemble for %v has no members", metric)
	}
	for i, m := range j.Members {
		if m == nil {
			return fmt.Errorf("core: ensemble for %v: member %d is null", metric, i)
		}
		if m.Metric != metric {
			return fmt.Errorf("core: ensemble for %v: member %d was trained for %v", metric, i, m.Metric)
		}
	}
	e.Metric = metric
	e.Models = j.Members
	// Any previously cached weight stack refers to the old members;
	// rebuild eagerly so load time, not first-predict latency, pays for
	// stacking.
	e.Invalidate()
	e.stacked()
	return nil
}

// predictorJSON is the serialized form of a Predictor. Slots for untrained
// metrics are omitted, matching in-memory nil ensembles.
type predictorJSON struct {
	Throughput   *Ensemble `json:"throughput,omitempty"`
	ProcLatency  *Ensemble `json:"proc_latency,omitempty"`
	E2ELatency   *Ensemble `json:"e2e_latency,omitempty"`
	Backpressure *Ensemble `json:"backpressure,omitempty"`
	Success      *Ensemble `json:"success,omitempty"`
}

// MarshalJSON encodes all trained ensembles of the predictor.
func (pr *Predictor) MarshalJSON() ([]byte, error) {
	return json.Marshal(predictorJSON{
		Throughput:   pr.Throughput,
		ProcLatency:  pr.ProcLatency,
		E2ELatency:   pr.E2ELatency,
		Backpressure: pr.Backpressure,
		Success:      pr.Success,
	})
}

// UnmarshalJSON decodes a predictor, checking that every present ensemble
// sits in the slot of its own metric and that at least one is present.
func (pr *Predictor) UnmarshalJSON(data []byte) error {
	var j predictorJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	decoded := Predictor{
		Throughput:   j.Throughput,
		ProcLatency:  j.ProcLatency,
		E2ELatency:   j.E2ELatency,
		Backpressure: j.Backpressure,
		Success:      j.Success,
	}
	present := 0
	for _, s := range decoded.Ensembles() {
		if s.Ensemble == nil {
			continue
		}
		present++
		if s.Ensemble.Metric != s.Metric {
			return fmt.Errorf("core: predictor slot %v holds an ensemble trained for %v", s.Metric, s.Ensemble.Metric)
		}
	}
	if present == 0 {
		return fmt.Errorf("core: predictor has no trained ensembles")
	}
	*pr = decoded
	return nil
}

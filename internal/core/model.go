package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"costream/internal/dataset"
	"costream/internal/gnn"
	"costream/internal/hardware"
	"costream/internal/nn"
	"costream/internal/sim"
	"costream/internal/stream"
)

// Metric identifies one of the five cost metrics of Section IV-A.
type Metric int

// Cost metrics.
const (
	MetricThroughput Metric = iota
	MetricProcLatency
	MetricE2ELatency
	MetricBackpressure
	MetricSuccess
)

var metricNames = [...]string{"throughput", "proc-latency", "e2e-latency", "backpressure", "success"}

func (m Metric) String() string {
	if m < 0 || int(m) >= len(metricNames) {
		return fmt.Sprintf("Metric(%d)", int(m))
	}
	return metricNames[m]
}

// AllMetrics lists the five cost metrics in paper order.
func AllMetrics() []Metric {
	return []Metric{MetricThroughput, MetricProcLatency, MetricE2ELatency, MetricBackpressure, MetricSuccess}
}

// IsRegression reports whether the metric is modeled as a regression task
// (true) or binary classification (false).
func (m Metric) IsRegression() bool {
	return m == MetricThroughput || m == MetricProcLatency || m == MetricE2ELatency
}

// Value extracts the raw regression target from measured metrics.
func (m Metric) Value(mt *sim.Metrics) float64 {
	switch m {
	case MetricThroughput:
		return mt.ThroughputTPS
	case MetricProcLatency:
		return mt.ProcLatencyMS
	case MetricE2ELatency:
		return mt.E2ELatencyMS
	default:
		return 0
	}
}

// Label extracts the binary classification target. Following the natural
// encoding, MetricBackpressure is true when backpressure occurred and
// MetricSuccess is true when the query succeeded. (The paper's RO flag is
// inverted — RO=0 on occurrence; we keep booleans meaningful and translate
// at reporting time.)
func (m Metric) Label(mt *sim.Metrics) bool {
	switch m {
	case MetricBackpressure:
		return mt.Backpressured
	case MetricSuccess:
		return mt.Success
	default:
		return false
	}
}

// TrainConfig controls model training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// Patience is the early-stopping patience in epochs on the
	// validation loss; 0 disables early stopping.
	Patience int
	// Workers bounds the data-parallel training workers per model
	// (<= 0 selects GOMAXPROCS). The trained weights are bit-identical
	// for every Workers value: minibatches are partitioned into a fixed
	// set of gradient chunks that are accumulated and reduced in a
	// worker-independent order (see fit). Gradient work tops out at the
	// chunk count (8) per model — ensembles parallelize further across
	// members — while validation passes shard up to the full Workers
	// value. Actual concurrency is additionally capped by the
	// process-wide SetTrainBudget semaphore.
	Workers int
	// Hidden overrides the GNN hidden width (0 = default).
	Hidden int
	// Mode selects the featurization (Exp 7a ablation).
	Mode FeatureMode
	// Traditional selects the ablation message passing (Exp 7b).
	Traditional bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// Observer, when set, receives one EpochStats record per completed
	// training epoch. It is called synchronously from the goroutine
	// driving this model's fit loop; ensemble training invokes it
	// concurrently from the per-member goroutines, so observers must be
	// safe for concurrent use.
	Observer func(EpochStats)
	// Member is the ensemble member ordinal carried into EpochStats;
	// single-model training leaves it 0.
	Member int
}

// EpochStats is the per-epoch training record emitted to
// TrainConfig.Observer — the unit of the costream-train run log.
type EpochStats struct {
	// Metric names the cost metric whose model is training.
	Metric string `json:"metric"`
	// Member is the ensemble member ordinal (0 for single models).
	Member int `json:"member"`
	// Epoch is the 0-based epoch ordinal.
	Epoch int `json:"epoch"`
	// TrainLoss is the mean minibatch training loss of the epoch.
	TrainLoss float64 `json:"train_loss"`
	// ValLoss is the monitored loss: the validation loss when HasVal is
	// set (a validation split existed), otherwise the training loss.
	ValLoss float64 `json:"val_loss"`
	HasVal  bool    `json:"has_val"`
	// DurationNS is the wall time of the epoch (gradient passes plus
	// validation).
	DurationNS int64 `json:"duration_ns"`
	// Allocs is the process-global heap-allocation count delta across the
	// epoch — an upper bound on the epoch's own allocations when other
	// goroutines (e.g. sibling ensemble members) run concurrently.
	Allocs uint64 `json:"allocs"`
	// Best reports that this epoch improved the monitored loss (its
	// weights became the restore point).
	Best bool `json:"best"`
}

// DefaultTrainConfig returns the training setup used by the experiments.
func DefaultTrainConfig(seed int64) TrainConfig {
	return TrainConfig{
		Epochs:    40,
		BatchSize: 16,
		LR:        3e-3,
		Seed:      seed,
		Patience:  8,
	}
}

// CostModel is one trained COSTREAM model for one cost metric.
type CostModel struct {
	Metric Metric
	Feat   Featurizer
	Net    *gnn.Model
}

type sample struct {
	graph *gnn.Graph
	plan  *gnn.Plan // flow structure, derived once at featurization time
	y     float64   // log1p cost for regression, 0/1 for classification
	w     float64   // loss weight (class balancing)
}

// newSample derives the sample's message-passing plan once so the
// training loop never re-validates the graph or re-derives its topo
// order (Forward would otherwise redo both every epoch).
func newSample(g *gnn.Graph, y, w float64) (sample, error) {
	plan, err := gnn.NewPlan(g)
	if err != nil {
		return sample{}, err
	}
	return sample{graph: g, plan: plan, y: y, w: w}, nil
}

// buildSamples featurizes the corpus for the metric. Regression uses only
// successful traces (failed executions have no defined latency or
// throughput); classification uses every trace with inverse-frequency
// class weights.
func buildSamples(f *Featurizer, c *dataset.Corpus, metric Metric) ([]sample, error) {
	var samples []sample
	if metric.IsRegression() {
		for _, tr := range c.Traces {
			if !tr.Metrics.Success {
				continue
			}
			g, err := f.BuildGraph(tr.Query, tr.Cluster, tr.Placement)
			if err != nil {
				return nil, err
			}
			s, err := newSample(g, math.Log1p(metric.Value(tr.Metrics)), 1)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		}
		return samples, nil
	}
	nPos, nNeg := 0, 0
	for _, tr := range c.Traces {
		if metric.Label(tr.Metrics) {
			nPos++
		} else {
			nNeg++
		}
	}
	total := float64(nPos + nNeg)
	wPos, wNeg := 1.0, 1.0
	if nPos > 0 && nNeg > 0 {
		wPos = total / (2 * float64(nPos))
		wNeg = total / (2 * float64(nNeg))
	}
	for _, tr := range c.Traces {
		g, err := f.BuildGraph(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			return nil, err
		}
		y, w := 0.0, wNeg
		if metric.Label(tr.Metrics) {
			y, w = 1, wPos
		}
		s, err := newSample(g, y, w)
		if err != nil {
			return nil, err
		}
		samples = append(samples, s)
	}
	return samples, nil
}

// sampleLoss records the forward pass and loss of one sample on the tape
// through the given net (the model itself, or a gradient shadow of it).
func sampleLoss(net *gnn.Model, metric Metric, t *nn.Tape, sc *gnn.Scratch, s sample) (*nn.Node, error) {
	out, err := net.ForwardPlanned(t, s.graph, s.plan, sc)
	if err != nil {
		return nil, err
	}
	var l *nn.Node
	if metric.IsRegression() {
		// Targets are already in log1p space, so squared error here is
		// exactly the paper's MSLE.
		l = nn.MSLELoss(t, out, math.Expm1(s.y))
	} else {
		l = nn.BCEWithLogitsLoss(t, out, s.y)
	}
	if s.w != 1 {
		l = t.Scale(l, s.w)
	}
	return l, nil
}

// trainWorker owns the reusable per-goroutine state of the data-parallel
// training loop: a training tape arena, an inference tape for validation
// passes (no gradient buffers), and the GNN scratch. Steady-state, a
// worker processes a sample without heap allocations.
type trainWorker struct {
	tape    *nn.Tape
	itape   *nn.Tape
	scratch *gnn.Scratch
}

func newTrainWorker() *trainWorker {
	return &trainWorker{tape: nn.NewTape(), itape: nn.NewInferenceTape(), scratch: gnn.NewScratch()}
}

// maxGradSlots is the fixed number of gradient-reduction chunks a
// minibatch is partitioned into. The partition depends only on the batch
// size — never on the worker count — so the summation tree, and with it
// the trained weights, are identical for any TrainConfig.Workers value.
// Eight chunks bound the per-batch reduction traffic (one pass over the
// parameters per chunk) while still feeding eight-way parallelism per
// model; ensembles parallelize further across members under the shared
// training budget.
const maxGradSlots = 8

// gradSlot is one reduction chunk's private gradient accumulator: a
// weight-sharing shadow of the model whose gradient buffers belong to
// this chunk alone. Chunk c of a batch always holds samples c, c+C,
// c+2C, ... (C = chunk count), processed in that order, and the chunks
// are reduced in index order no matter which worker ran them.
type gradSlot struct {
	net   *gnn.Model
	grads [][]float64
	loss  float64
	err   error
}

// runSlot processes one reduction chunk: for each of the chunk's samples
// it resets the worker's tape arena, records forward + loss, and
// backpropagates into the chunk's gradient buffers (left zeroed by the
// previous reduceSlots). inv is the 1/batch-size averaging factor;
// nSlots the batch's chunk count.
func (w *trainWorker) runSlot(slot *gradSlot, idx, nSlots int, metric Metric, batch []sample, inv float64) {
	tok := acquireTrainToken()
	defer releaseTrainToken(tok)
	slot.loss, slot.err = 0, nil
	for j := idx; j < len(batch); j += nSlots {
		w.tape.Reset()
		l, err := sampleLoss(slot.net, metric, w.tape, w.scratch, batch[j])
		if err != nil {
			slot.err = err
			return
		}
		// Average gradients over the batch.
		l = w.tape.Scale(l, inv)
		slot.loss += l.Data[0]
		w.tape.Backward(l)
	}
}

// shard runs fn(worker index, element index) for indices 0..n-1, strided
// across the workers. With one worker it degenerates to a plain loop.
func shard(workers int, n int, fn func(w, j int)) {
	if workers == 1 || n <= 1 {
		for j := 0; j < n; j++ {
			fn(0, j)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := w; j < n; j += workers {
				fn(w, j)
			}
		}(w)
	}
	wg.Wait()
}

// meanLoss computes the mean loss over the samples on inference tapes (no
// gradient buffers, no backward records), sharded across the workers.
// Per-sample losses are summed in sample-index order, so the result is
// independent of the worker count.
func meanLoss(cm *CostModel, samples []sample, workers []*trainWorker) (float64, error) {
	if len(samples) == 0 {
		return 0, nil
	}
	losses := make([]float64, len(samples))
	errs := make([]error, len(workers))
	shard(len(workers), len(samples), func(w, j int) {
		if errs[w] != nil {
			return
		}
		tok := acquireTrainToken()
		defer releaseTrainToken(tok)
		wk := workers[w]
		wk.itape.Reset()
		l, err := sampleLoss(cm.Net, cm.Metric, wk.itape, wk.scratch, samples[j])
		if err != nil {
			errs[w] = err
			return
		}
		losses[j] = l.Data[0]
	})
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	var sum float64
	for _, l := range losses {
		sum += l
	}
	return sum / float64(len(samples)), nil
}

// reduceSlots folds the slots' gradients into dst in slot (= sample)
// order, consuming them: slot 0 overwrites, later slots accumulate, and
// every slot buffer is left zeroed for the next batch. Because each
// parameter receives contributions strictly in slot order, the reduction
// is bit-identical no matter which workers filled the slots — and the
// overwrite doubles as the single gradient-zeroing point of the training
// loop (dst only ever holds the current batch's reduction).
func reduceSlots(dst [][]float64, slots []*gradSlot) {
	for k := range dst {
		d := dst[k]
		s0 := slots[0].grads[k]
		copy(d, s0)
		clear(s0)
		for _, sl := range slots[1:] {
			s := sl.grads[k]
			for i, v := range s {
				d[i] += v
			}
			clear(s)
		}
	}
}

// Train trains a COSTREAM model for the metric on the training corpus,
// early-stopping on the validation corpus.
func Train(train, val *dataset.Corpus, metric Metric, cfg TrainConfig) (*CostModel, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return nil, fmt.Errorf("core: invalid training config %+v", cfg)
	}
	feat := Featurizer{Mode: cfg.Mode}
	trainSamples, err := buildSamples(&feat, train, metric)
	if err != nil {
		return nil, err
	}
	var valSamples []sample
	if val != nil {
		valSamples, err = buildSamples(&feat, val, metric)
		if err != nil {
			return nil, err
		}
	}
	return trainFromSamples(metric, trainSamples, valSamples, cfg)
}

// trainFromSamples trains a fresh model on pre-featurized samples. It owns
// the sample slices (fit shuffles the training slice in place), so callers
// sharing samples across models must pass copies. This is the single
// training entry under both Train (corpus in memory) and the streaming
// TrainPredictorSource path.
func trainFromSamples(metric Metric, trainSamples, valSamples []sample, cfg TrainConfig) (*CostModel, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return nil, fmt.Errorf("core: invalid training config %+v", cfg)
	}
	if len(trainSamples) == 0 {
		return nil, fmt.Errorf("core: no usable training traces for %v", metric)
	}
	feat := Featurizer{Mode: cfg.Mode}
	gcfg := gnn.DefaultConfig(feat.FeatDims())
	if cfg.Hidden > 0 {
		gcfg.Hidden = cfg.Hidden
	}
	gcfg.Traditional = cfg.Traditional
	net, err := gnn.New(gcfg, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cm := &CostModel{Metric: metric, Feat: feat, Net: net}
	if err := cm.fit(trainSamples, valSamples, cfg); err != nil {
		return nil, err
	}
	return cm, nil
}

// fit runs the minibatch Adam loop with optional early stopping.
//
// Minibatches are data-parallel: each batch is partitioned into a fixed
// number of stride chunks (maxGradSlots), every chunk accumulates its
// samples' gradients into a private shadow buffer in sample order, and
// the chunks are reduced into the optimizer's gradient buffers in chunk
// order before every Adam step. The partition and both orders depend
// only on the batch — never on cfg.Workers — so the trained weights are
// bit-identical for any worker count.
func (cm *CostModel) fit(trainSamples, valSamples []sample, cfg TrainConfig) error {
	params, grads := cm.Net.Params()
	opt := nn.NewAdam(cfg.LR, params, grads)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5EED))

	nSlots := min(maxGradSlots, cfg.BatchSize, len(trainSamples))
	nw := cfg.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	// Gradient workers are capped by the chunk count; validation has no
	// reduction and may use the full worker allowance, so size the pool
	// for whichever is larger.
	nwFit := min(nw, nSlots)
	if len(valSamples) == 0 {
		nw = nwFit
	}
	workers := make([]*trainWorker, nw)
	for i := range workers {
		workers[i] = newTrainWorker()
	}
	slots := make([]*gradSlot, nSlots)
	for i := range slots {
		shadow := cm.Net.GradShadow()
		_, sg := shadow.Params()
		slots[i] = &gradSlot{net: shadow, grads: sg}
	}

	best := math.Inf(1)
	bestParams := snapshot(params)
	badEpochs := 0
	var ms runtime.MemStats
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochStart time.Time
		var allocsStart uint64
		if cfg.Observer != nil {
			runtime.ReadMemStats(&ms)
			allocsStart = ms.Mallocs
			epochStart = time.Now()
		}
		rng.Shuffle(len(trainSamples), func(i, j int) {
			trainSamples[i], trainSamples[j] = trainSamples[j], trainSamples[i]
		})
		var epochLoss float64
		for start := 0; start < len(trainSamples); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(trainSamples))
			batch := trainSamples[start:end]
			inv := 1 / float64(len(batch))
			live := min(nSlots, len(batch))
			shard(nwFit, live, func(w, c int) {
				workers[w].runSlot(slots[c], c, live, cm.Metric, batch, inv)
			})
			for _, slot := range slots[:live] {
				if slot.err != nil {
					return slot.err
				}
				epochLoss += slot.loss
			}
			reduceSlots(grads, slots[:live])
			opt.Step()
		}
		trainLoss := epochLoss / float64((len(trainSamples)+cfg.BatchSize-1)/cfg.BatchSize)
		monitored := trainLoss
		hasVal := len(valSamples) > 0
		if hasVal {
			vl, err := meanLoss(cm, valSamples, workers)
			if err != nil {
				return err
			}
			monitored = vl
		}
		if cfg.Logf != nil {
			cfg.Logf("metric=%v epoch=%d loss=%.4f", cm.Metric, epoch, monitored)
		}
		improved := monitored < best-1e-6
		if cfg.Observer != nil {
			runtime.ReadMemStats(&ms)
			cfg.Observer(EpochStats{
				Metric:     cm.Metric.String(),
				Member:     cfg.Member,
				Epoch:      epoch,
				TrainLoss:  trainLoss,
				ValLoss:    monitored,
				HasVal:     hasVal,
				DurationNS: time.Since(epochStart).Nanoseconds(),
				Allocs:     ms.Mallocs - allocsStart,
				Best:       improved,
			})
		}
		if improved {
			best = monitored
			copyInto(bestParams, params)
			badEpochs = 0
		} else if cfg.Patience > 0 {
			badEpochs++
			if badEpochs >= cfg.Patience {
				break
			}
		}
	}
	restore(params, bestParams)
	return nil
}

// FineTune continues training on additional traces (few-shot learning,
// Exp 5b). The model is updated in place; if the model belongs to an
// Ensemble, call Ensemble.Invalidate afterwards so the cached weight
// stack is rebuilt from the tuned weights.
func (cm *CostModel) FineTune(extra *dataset.Corpus, cfg TrainConfig) error {
	samples, err := buildSamples(&cm.Feat, extra, cm.Metric)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("core: no usable fine-tuning traces for %v", cm.Metric)
	}
	return cm.fit(samples, nil, cfg)
}

func snapshot(params [][]float64) [][]float64 {
	cp := make([][]float64, len(params))
	for i, p := range params {
		cp[i] = append([]float64(nil), p...)
	}
	return cp
}

func copyInto(dst, src [][]float64) {
	for i := range src {
		copy(dst[i], src[i])
	}
}

func restore(params, saved [][]float64) {
	for i := range params {
		copy(params[i], saved[i])
	}
}

// PredictRaw returns the model's raw output for a placement: the predicted
// cost value for regression metrics, or the positive-class probability for
// classification metrics.
func (cm *CostModel) PredictRaw(q *stream.Query, c *hardware.Cluster, p sim.Placement) (float64, error) {
	g, err := cm.Feat.BuildGraph(q, c, p)
	if err != nil {
		return 0, err
	}
	return cm.predictGraph(g)
}

// predictGraph evaluates the model on a prebuilt graph using the
// tape-free inference pass (bit-identical to the training-time Forward,
// but without gradient bookkeeping).
func (cm *CostModel) predictGraph(g *gnn.Graph) (float64, error) {
	out, err := cm.Net.Infer(g)
	if err != nil {
		return 0, err
	}
	return cm.headTransform(out), nil
}

// predictPlanned is predictGraph with a shared message-passing plan,
// skipping the per-call graph validation and flow-structure derivation
// that batch scoring amortizes across candidates.
func (cm *CostModel) predictPlanned(g *gnn.Graph, plan *gnn.Plan) (float64, error) {
	out, err := cm.Net.InferPlanned(g, plan)
	if err != nil {
		return 0, err
	}
	return cm.headTransform(out), nil
}

// headTransform maps the network's raw output into metric space.
func (cm *CostModel) headTransform(out float64) float64 {
	if cm.Metric.IsRegression() {
		return nn.ExpM1(out)
	}
	return nn.SigmoidScalar(out)
}

// PredictTrace predicts the model's metric for a stored trace.
func (cm *CostModel) PredictTrace(tr *dataset.Trace) (float64, error) {
	return cm.PredictRaw(tr.Query, tr.Cluster, tr.Placement)
}

package core

import (
	"fmt"
	"math"
	"math/rand"

	"costream/internal/dataset"
	"costream/internal/gnn"
	"costream/internal/hardware"
	"costream/internal/nn"
	"costream/internal/sim"
	"costream/internal/stream"
)

// Metric identifies one of the five cost metrics of Section IV-A.
type Metric int

// Cost metrics.
const (
	MetricThroughput Metric = iota
	MetricProcLatency
	MetricE2ELatency
	MetricBackpressure
	MetricSuccess
)

var metricNames = [...]string{"throughput", "proc-latency", "e2e-latency", "backpressure", "success"}

func (m Metric) String() string {
	if m < 0 || int(m) >= len(metricNames) {
		return fmt.Sprintf("Metric(%d)", int(m))
	}
	return metricNames[m]
}

// AllMetrics lists the five cost metrics in paper order.
func AllMetrics() []Metric {
	return []Metric{MetricThroughput, MetricProcLatency, MetricE2ELatency, MetricBackpressure, MetricSuccess}
}

// IsRegression reports whether the metric is modeled as a regression task
// (true) or binary classification (false).
func (m Metric) IsRegression() bool {
	return m == MetricThroughput || m == MetricProcLatency || m == MetricE2ELatency
}

// Value extracts the raw regression target from measured metrics.
func (m Metric) Value(mt *sim.Metrics) float64 {
	switch m {
	case MetricThroughput:
		return mt.ThroughputTPS
	case MetricProcLatency:
		return mt.ProcLatencyMS
	case MetricE2ELatency:
		return mt.E2ELatencyMS
	default:
		return 0
	}
}

// Label extracts the binary classification target. Following the natural
// encoding, MetricBackpressure is true when backpressure occurred and
// MetricSuccess is true when the query succeeded. (The paper's RO flag is
// inverted — RO=0 on occurrence; we keep booleans meaningful and translate
// at reporting time.)
func (m Metric) Label(mt *sim.Metrics) bool {
	switch m {
	case MetricBackpressure:
		return mt.Backpressured
	case MetricSuccess:
		return mt.Success
	default:
		return false
	}
}

// TrainConfig controls model training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// Patience is the early-stopping patience in epochs on the
	// validation loss; 0 disables early stopping.
	Patience int
	// Hidden overrides the GNN hidden width (0 = default).
	Hidden int
	// Mode selects the featurization (Exp 7a ablation).
	Mode FeatureMode
	// Traditional selects the ablation message passing (Exp 7b).
	Traditional bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultTrainConfig returns the training setup used by the experiments.
func DefaultTrainConfig(seed int64) TrainConfig {
	return TrainConfig{
		Epochs:    40,
		BatchSize: 16,
		LR:        3e-3,
		Seed:      seed,
		Patience:  8,
	}
}

// CostModel is one trained COSTREAM model for one cost metric.
type CostModel struct {
	Metric Metric
	Feat   Featurizer
	Net    *gnn.Model
}

type sample struct {
	graph *gnn.Graph
	y     float64 // log1p cost for regression, 0/1 for classification
	w     float64 // loss weight (class balancing)
}

// buildSamples featurizes the corpus for the metric. Regression uses only
// successful traces (failed executions have no defined latency or
// throughput); classification uses every trace with inverse-frequency
// class weights.
func buildSamples(f *Featurizer, c *dataset.Corpus, metric Metric) ([]sample, error) {
	var samples []sample
	if metric.IsRegression() {
		for _, tr := range c.Traces {
			if !tr.Metrics.Success {
				continue
			}
			g, err := f.BuildGraph(tr.Query, tr.Cluster, tr.Placement)
			if err != nil {
				return nil, err
			}
			samples = append(samples, sample{graph: g, y: math.Log1p(metric.Value(tr.Metrics)), w: 1})
		}
		return samples, nil
	}
	nPos, nNeg := 0, 0
	for _, tr := range c.Traces {
		if metric.Label(tr.Metrics) {
			nPos++
		} else {
			nNeg++
		}
	}
	total := float64(nPos + nNeg)
	wPos, wNeg := 1.0, 1.0
	if nPos > 0 && nNeg > 0 {
		wPos = total / (2 * float64(nPos))
		wNeg = total / (2 * float64(nNeg))
	}
	for _, tr := range c.Traces {
		g, err := f.BuildGraph(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			return nil, err
		}
		y, w := 0.0, wNeg
		if metric.Label(tr.Metrics) {
			y, w = 1, wPos
		}
		samples = append(samples, sample{graph: g, y: y, w: w})
	}
	return samples, nil
}

func (cm *CostModel) loss(t *nn.Tape, s sample) (*nn.Node, error) {
	out, err := cm.Net.Forward(t, s.graph)
	if err != nil {
		return nil, err
	}
	var l *nn.Node
	if cm.Metric.IsRegression() {
		// Targets are already in log1p space, so squared error here is
		// exactly the paper's MSLE.
		l = nn.MSLELoss(t, out, math.Expm1(s.y))
	} else {
		l = nn.BCEWithLogitsLoss(t, out, s.y)
	}
	if s.w != 1 {
		l = t.Scale(l, s.w)
	}
	return l, nil
}

func meanLoss(cm *CostModel, samples []sample) (float64, error) {
	if len(samples) == 0 {
		return 0, nil
	}
	var sum float64
	for _, s := range samples {
		t := nn.NewTape()
		l, err := cm.loss(t, s)
		if err != nil {
			return 0, err
		}
		sum += l.Data[0]
	}
	return sum / float64(len(samples)), nil
}

// Train trains a COSTREAM model for the metric on the training corpus,
// early-stopping on the validation corpus.
func Train(train, val *dataset.Corpus, metric Metric, cfg TrainConfig) (*CostModel, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return nil, fmt.Errorf("core: invalid training config %+v", cfg)
	}
	feat := Featurizer{Mode: cfg.Mode}
	gcfg := gnn.DefaultConfig(feat.FeatDims())
	if cfg.Hidden > 0 {
		gcfg.Hidden = cfg.Hidden
	}
	gcfg.Traditional = cfg.Traditional
	net, err := gnn.New(gcfg, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cm := &CostModel{Metric: metric, Feat: feat, Net: net}

	trainSamples, err := buildSamples(&feat, train, metric)
	if err != nil {
		return nil, err
	}
	if len(trainSamples) == 0 {
		return nil, fmt.Errorf("core: no usable training traces for %v", metric)
	}
	var valSamples []sample
	if val != nil {
		valSamples, err = buildSamples(&feat, val, metric)
		if err != nil {
			return nil, err
		}
	}
	if err := cm.fit(trainSamples, valSamples, cfg); err != nil {
		return nil, err
	}
	return cm, nil
}

// fit runs the minibatch Adam loop with optional early stopping.
func (cm *CostModel) fit(trainSamples, valSamples []sample, cfg TrainConfig) error {
	params, grads := cm.Net.Params()
	opt := nn.NewAdam(cfg.LR, params, grads)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5EED))

	best := math.Inf(1)
	bestParams := snapshot(params)
	badEpochs := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(trainSamples), func(i, j int) {
			trainSamples[i], trainSamples[j] = trainSamples[j], trainSamples[i]
		})
		var epochLoss float64
		for start := 0; start < len(trainSamples); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(trainSamples) {
				end = len(trainSamples)
			}
			opt.ZeroGrads()
			for _, s := range trainSamples[start:end] {
				t := nn.NewTape()
				l, err := cm.loss(t, s)
				if err != nil {
					return err
				}
				// Average gradients over the batch.
				l = t.Scale(l, 1/float64(end-start))
				epochLoss += l.Data[0]
				t.Backward(l)
			}
			opt.Step()
			opt.ZeroGrads()
		}
		monitored := epochLoss / float64((len(trainSamples)+cfg.BatchSize-1)/cfg.BatchSize)
		if len(valSamples) > 0 {
			vl, err := meanLoss(cm, valSamples)
			if err != nil {
				return err
			}
			monitored = vl
		}
		if cfg.Logf != nil {
			cfg.Logf("metric=%v epoch=%d loss=%.4f", cm.Metric, epoch, monitored)
		}
		if monitored < best-1e-6 {
			best = monitored
			copyInto(bestParams, params)
			badEpochs = 0
		} else if cfg.Patience > 0 {
			badEpochs++
			if badEpochs >= cfg.Patience {
				break
			}
		}
	}
	restore(params, bestParams)
	return nil
}

// FineTune continues training on additional traces (few-shot learning,
// Exp 5b). The model is updated in place.
func (cm *CostModel) FineTune(extra *dataset.Corpus, cfg TrainConfig) error {
	samples, err := buildSamples(&cm.Feat, extra, cm.Metric)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("core: no usable fine-tuning traces for %v", cm.Metric)
	}
	return cm.fit(samples, nil, cfg)
}

func snapshot(params [][]float64) [][]float64 {
	cp := make([][]float64, len(params))
	for i, p := range params {
		cp[i] = append([]float64(nil), p...)
	}
	return cp
}

func copyInto(dst, src [][]float64) {
	for i := range src {
		copy(dst[i], src[i])
	}
}

func restore(params, saved [][]float64) {
	for i := range params {
		copy(params[i], saved[i])
	}
}

// PredictRaw returns the model's raw output for a placement: the predicted
// cost value for regression metrics, or the positive-class probability for
// classification metrics.
func (cm *CostModel) PredictRaw(q *stream.Query, c *hardware.Cluster, p sim.Placement) (float64, error) {
	g, err := cm.Feat.BuildGraph(q, c, p)
	if err != nil {
		return 0, err
	}
	return cm.predictGraph(g)
}

// predictGraph evaluates the model on a prebuilt graph using the
// tape-free inference pass (bit-identical to the training-time Forward,
// but without gradient bookkeeping).
func (cm *CostModel) predictGraph(g *gnn.Graph) (float64, error) {
	out, err := cm.Net.Infer(g)
	if err != nil {
		return 0, err
	}
	return cm.headTransform(out), nil
}

// predictPlanned is predictGraph with a shared message-passing plan,
// skipping the per-call graph validation and flow-structure derivation
// that batch scoring amortizes across candidates.
func (cm *CostModel) predictPlanned(g *gnn.Graph, plan *gnn.Plan) (float64, error) {
	out, err := cm.Net.InferPlanned(g, plan)
	if err != nil {
		return 0, err
	}
	return cm.headTransform(out), nil
}

// headTransform maps the network's raw output into metric space.
func (cm *CostModel) headTransform(out float64) float64 {
	if cm.Metric.IsRegression() {
		return nn.ExpM1(out)
	}
	return nn.SigmoidScalar(out)
}

// PredictTrace predicts the model's metric for a stored trace.
func (cm *CostModel) PredictTrace(tr *dataset.Trace) (float64, error) {
	return cm.PredictRaw(tr.Query, tr.Cluster, tr.Placement)
}

package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"costream/internal/gnn"
	"costream/internal/placement"
	"costream/internal/sim"
)

// randomPredictor builds a full five-metric predictor from seeded GNNs
// (see randomEnsemble): real weights and featurization without the
// minutes of training.
func randomPredictor(t testing.TB, k int) *Predictor {
	return &Predictor{
		Throughput:   randomEnsemble(t, MetricThroughput, k, false),
		ProcLatency:  randomEnsemble(t, MetricProcLatency, k, false),
		E2ELatency:   randomEnsemble(t, MetricE2ELatency, k, false),
		Backpressure: randomEnsemble(t, MetricBackpressure, k, false),
		Success:      randomEnsemble(t, MetricSuccess, k, false),
	}
}

var fusedTileSizes = []int{1, 7, 32}

// TestScoreTileMatchesPredictPlacement is the fused-round equivalence
// guarantee: scoring a whole round through ScoreTile must reproduce the
// per-candidate PredictPlacement float64 outputs bit for bit, at every
// tile size — so how a round is tiled can never change a search result.
func TestScoreTileMatchesPredictPlacement(t *testing.T) {
	pr := randomPredictor(t, 3)
	c := testCorpus(t)
	rng := rand.New(rand.NewSource(91))
	tr := c.Traces[2]
	cands := placement.Enumerate(rng, tr.Query, tr.Cluster, 37)
	if len(cands) < 3 {
		t.Fatalf("only %d candidates", len(cands))
	}
	want := make([]placement.PredCosts, len(cands))
	for i, p := range cands {
		single, err := pr.PredictPlacement(tr.Query, tr.Cluster, p)
		if err != nil {
			t.Fatalf("candidate %d: %v", i, err)
		}
		want[i] = single
	}
	sess, err := pr.NewTileSession(tr.Query, tr.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.fused) != 5 || len(sess.slow) != 0 {
		t.Fatalf("fused=%d slow=%d slots; want all five fused", len(sess.fused), len(sess.slow))
	}
	for _, tile := range append(fusedTileSizes, len(cands)) {
		sess.SetTileSize(tile)
		got := make([]placement.PredCosts, len(cands))
		for lo := 0; lo < len(cands); lo += tile {
			hi := min(lo+tile, len(cands))
			if err := sess.ScoreTile(cands[lo:hi], got[lo:hi]); err != nil {
				t.Fatalf("tile=%d at %d: %v", tile, lo, err)
			}
		}
		for i := range cands {
			if got[i] != want[i] {
				t.Fatalf("tile=%d candidate %d: fused %+v != per-candidate %+v", tile, i, got[i], want[i])
			}
		}
	}
}

// TestScoreTileFast32MatchesPerCandidate pins the fused float32 path to
// the per-candidate float32 path bit for bit at every tile size: the PR 6
// q-error drift gate against float64 (TestFast32QErrorDrift) therefore
// bounds the fused fast path too.
func TestScoreTileFast32MatchesPerCandidate(t *testing.T) {
	pr := randomPredictor(t, 3)
	pr.SetFast32(true)
	c := testCorpus(t)
	rng := rand.New(rand.NewSource(92))
	tr := c.Traces[4]
	cands := placement.Enumerate(rng, tr.Query, tr.Cluster, 33)
	want := make([]placement.PredCosts, len(cands))
	for i, p := range cands {
		single, err := pr.PredictPlacement(tr.Query, tr.Cluster, p)
		if err != nil {
			t.Fatalf("candidate %d: %v", i, err)
		}
		want[i] = single
	}
	sess, err := pr.NewTileSession(tr.Query, tr.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	for _, tile := range append(fusedTileSizes, len(cands)) {
		sess.SetTileSize(tile)
		got := make([]placement.PredCosts, len(cands))
		for lo := 0; lo < len(cands); lo += tile {
			hi := min(lo+tile, len(cands))
			if err := sess.ScoreTile(cands[lo:hi], got[lo:hi]); err != nil {
				t.Fatalf("tile=%d at %d: %v", tile, lo, err)
			}
		}
		for i := range cands {
			if got[i] != want[i] {
				t.Fatalf("tile=%d candidate %d: fused32 %+v != per-candidate32 %+v", tile, i, got[i], want[i])
			}
		}
	}
}

// TestScoreTileUnstackableFallback checks a mixed predictor: traditional
// (unstackable) ensembles score per candidate inside the tile, stackable
// ones fuse, and the merged costs still match PredictPlacement exactly.
func TestScoreTileUnstackableFallback(t *testing.T) {
	pr := randomPredictor(t, 2)
	pr.ProcLatency = randomEnsemble(t, MetricProcLatency, 2, true)
	pr.Success = randomEnsemble(t, MetricSuccess, 2, true)
	c := testCorpus(t)
	rng := rand.New(rand.NewSource(93))
	tr := c.Traces[1]
	cands := placement.Enumerate(rng, tr.Query, tr.Cluster, 9)
	sess, err := pr.NewTileSession(tr.Query, tr.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.fused) != 3 || len(sess.slow) != 2 {
		t.Fatalf("fused=%d slow=%d slots; want 3 fused + 2 slow", len(sess.fused), len(sess.slow))
	}
	got := make([]placement.PredCosts, len(cands))
	if err := sess.ScoreTile(cands, got); err != nil {
		t.Fatal(err)
	}
	for i, p := range cands {
		single, err := pr.PredictPlacement(tr.Query, tr.Cluster, p)
		if err != nil {
			t.Fatalf("candidate %d: %v", i, err)
		}
		if got[i] != single {
			t.Fatalf("candidate %d: mixed tile %+v != per-candidate %+v", i, got[i], single)
		}
	}
}

// TestScoreTileConcurrent hammers one session from many goroutines (the
// search workers' access pattern) — run under -race in CI — and checks
// every worker sees the same bit-identical results.
func TestScoreTileConcurrent(t *testing.T) {
	pr := randomPredictor(t, 2)
	c := testCorpus(t)
	rng := rand.New(rand.NewSource(94))
	tr := c.Traces[0]
	cands := placement.Enumerate(rng, tr.Query, tr.Cluster, 24)
	sess, err := pr.NewTileSession(tr.Query, tr.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]placement.PredCosts, len(cands))
	if err := sess.ScoreTile(cands, want); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	outs := make([][]placement.PredCosts, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]placement.PredCosts, len(cands))
			for iter := 0; iter < 6; iter++ {
				tile := 1 + (w+iter)%8
				for lo := 0; lo < len(cands); lo += tile {
					hi := min(lo+tile, len(cands))
					if err := sess.ScoreTile(cands[lo:hi], out[lo:hi]); err != nil {
						errs[w] = err
						return
					}
				}
			}
			outs[w] = out
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		for i := range cands {
			if outs[w][i] != want[i] {
				t.Fatalf("worker %d candidate %d: %+v != %+v", w, i, outs[w][i], want[i])
			}
		}
	}
}

// TestOptimizeDeterministicAcrossWorkers runs the full tiled search
// round at several worker counts: the chosen placement, its costs and
// the filter counters must not depend on scheduling.
func TestOptimizeDeterministicAcrossWorkers(t *testing.T) {
	pr := randomPredictor(t, 2)
	c := testCorpus(t)
	rng := rand.New(rand.NewSource(95))
	tr := c.Traces[3]
	cands := placement.Enumerate(rng, tr.Query, tr.Cluster, 48)
	var want *placement.Result
	for _, workers := range []int{1, 2, 3, 8} {
		got, err := placement.OptimizeOpts(pr, tr.Query, tr.Cluster, cands, placement.MinProcLatency,
			placement.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		if got.Index != want.Index || got.Costs != want.Costs ||
			got.Filtered != want.Filtered || got.Errored != want.Errored {
			t.Fatalf("workers=%d: result %+v != workers=1 result %+v", workers, got, want)
		}
	}
}

// TestScoreTileIsolatesInvalidCandidate: a tile containing an invalid
// placement errors as a whole, and the placement layer's per-candidate
// fallback isolates it — valid candidates still score, identically to
// the per-candidate path.
func TestScoreTileIsolatesInvalidCandidate(t *testing.T) {
	pr := randomPredictor(t, 2)
	c := testCorpus(t)
	rng := rand.New(rand.NewSource(96))
	tr := c.Traces[5]
	cands := placement.Enumerate(rng, tr.Query, tr.Cluster, 10)
	bad := make(sim.Placement, len(tr.Placement))
	for i := range bad {
		bad[i] = len(tr.Cluster.Hosts) + 7
	}
	cands[4] = bad
	sess, err := pr.NewTileSession(tr.Query, tr.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]placement.PredCosts, len(cands))
	if err := sess.ScoreTile(cands, out); err == nil {
		t.Fatal("tile with invalid candidate scored without error")
	}
	res, err := placement.OptimizeOpts(pr, tr.Query, tr.Cluster, cands, placement.MinProcLatency,
		placement.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errored != 1 {
		t.Fatalf("errored=%d, want exactly the invalid candidate", res.Errored)
	}
	if res.Index == 4 {
		t.Fatal("optimizer chose the invalid candidate")
	}
}

// TestScoreTileRespectsCancellation: a context cancelled before the
// search starts stops tile claiming — the tiled round reports the
// cancellation instead of scoring.
func TestScoreTileRespectsCancellation(t *testing.T) {
	pr := randomPredictor(t, 2)
	c := testCorpus(t)
	tr := c.Traces[6]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := placement.SearchCtx(ctx, pr, tr.Query, tr.Cluster, placement.RandomSample{},
		placement.MinProcLatency, placement.Budget{MaxCandidates: 32},
		placement.SearchOptions{Seed: 1, Workers: 2})
	if err == nil {
		t.Fatal("cancelled search scored successfully")
	}
}

// TestBuildGraphIntoAllocs pins the pooled candidate-graph assembly:
// steady-state buildGraphInto reuses the shell's node and edge storage
// and allocates nothing.
func TestBuildGraphIntoAllocs(t *testing.T) {
	c := testCorpus(t)
	tr := c.Traces[0]
	f := Featurizer{Mode: FeatFull}
	bf, err := f.NewBatch(tr.Query, tr.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(98))
	cands := placement.Enumerate(rng, tr.Query, tr.Cluster, 8)
	var shell gnn.Graph
	var hostSlot []int
	for _, p := range cands {
		if err := bf.buildGraphInto(p, &shell, &hostSlot); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, p := range cands {
			if err := bf.buildGraphInto(p, &shell, &hostSlot); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state buildGraphInto allocates %.1f times per %d candidates, want 0", allocs, len(cands))
	}
}

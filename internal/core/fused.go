package core

import (
	"fmt"
	"sync"
	"time"

	"costream/internal/gnn"
	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
)

// fusedSlot is one stackable metric ensemble of a scoring session: the
// ensemble itself (for head transforms, fast32 and path counters) plus a
// snapshot of its weight stack, pinned for the session's lifetime so a
// concurrent Invalidate cannot swap weights mid-round.
type fusedSlot struct {
	e    *Ensemble
	sm   *gnn.StackedModel
	mode FeatureMode
}

// TileSession implements placement.TileScorer for the ensemble
// predictor: one session per search round hoists the placement-invariant
// featurization (operator graph, per-host features, message-passing
// plan) and the ensemble stack snapshots, and ScoreTile then advances a
// whole candidate tile through the packed cross-candidate kernels — one
// gnn.InferEnsembleBatch pass per metric ensemble instead of one
// per-candidate pass each. Ensembles that cannot be stacked (traditional
// message passing, mixed featurization modes) are scored per candidate
// inside the tile, so mixed predictors still work and still match the
// per-candidate path exactly.
//
// ScoreTile is safe for concurrent use: all mutable state lives in
// pooled per-call scratch.
type TileSession struct {
	pr      *Predictor
	q       *stream.Query
	c       *hardware.Cluster
	batches map[FeatureMode]*BatchFeaturizer
	fused   []fusedSlot // stackable ensembles, paper metric order
	slow    []*Ensemble // unstackable ensembles, paper metric order
	tile    int
}

// NewScoreSession implements placement.SessionPredictor.
func (pr *Predictor) NewScoreSession(q *stream.Query, c *hardware.Cluster) (placement.TileScorer, error) {
	return pr.NewTileSession(q, c)
}

// NewTileSession prepares a scoring session for the (query, cluster)
// pair: per-mode batch featurizers, the stack snapshot per ensemble, and
// the cache-bounded default tile size.
func (pr *Predictor) NewTileSession(q *stream.Query, c *hardware.Cluster) (*TileSession, error) {
	met := inferMet()
	featStart := time.Now()
	s := &TileSession{
		pr:      pr,
		q:       q,
		c:       c,
		batches: map[FeatureMode]*BatchFeaturizer{},
	}
	for _, e := range pr.ensembles() {
		for _, m := range e.Models {
			if _, ok := s.batches[m.Feat.Mode]; !ok {
				bf, err := m.Feat.NewBatch(q, c)
				if err != nil {
					return nil, err
				}
				s.batches[m.Feat.Mode] = bf
			}
		}
		if st := e.stacked(); st.sm != nil {
			s.fused = append(s.fused, fusedSlot{e: e, sm: st.sm, mode: st.mode})
		} else {
			s.slow = append(s.slow, e)
		}
	}
	s.tile = s.tileCap()
	met.featurizeSeconds.Since(featStart)
	return s, nil
}

// maxTile caps the tile width: beyond it the per-candidate kernel rows
// stop improving AVX utilization while the activation planes keep
// growing.
const maxTile = 32

// tileActivationBudget bounds the fused pass's per-tile activation
// footprint so the planes stay cache-resident on typical L2/L3 slices.
const tileActivationBudget = 4 << 20

// tileCap sizes tiles from the widest fused slot's per-candidate
// activation footprint: two nOps-node operator planes (phase-2 and
// final states) plus the host, gather, concat and readout rows, each
// k*Hidden floats wide. No fused slot (pure fallback predictors) keeps
// the cap at maxTile — the tile then only bounds featurization reuse.
func (s *TileSession) tileCap() int {
	maxKH, nOps, maxHosts := 0, 0, 0
	for _, fs := range s.fused {
		if kH := fs.sm.K() * fs.sm.Hidden(); kH > maxKH {
			maxKH = kH
		}
		if bf := s.batches[fs.mode]; bf != nil && len(bf.base.Nodes) > nOps {
			nOps = len(bf.base.Nodes)
		}
	}
	if maxKH == 0 || nOps == 0 {
		return maxTile
	}
	if s.c != nil {
		maxHosts = min(nOps, len(s.c.Hosts))
	}
	perCand := (2*(nOps+maxHosts) + 6) * maxKH * 8
	tile := tileActivationBudget / perCand
	return max(1, min(tile, maxTile))
}

// TileSize implements placement.TileScorer.
func (s *TileSession) TileSize() int { return s.tile }

// SetTileSize overrides the tile-size heuristic (values below 1 restore
// it). Exposed for tests and benchmarks that sweep tile widths;
// equivalence tests rely on results being identical at every width.
func (s *TileSession) SetTileSize(n int) {
	if n < 1 {
		n = s.tileCap()
	}
	s.tile = n
}

// modeShells holds the reusable candidate-graph shells of one
// featurization mode: individually allocated graphs (stable pointers)
// whose node and placement-edge storage is recycled across tiles, plus
// the packed form they are flattened into.
type modeShells struct {
	graphs []*gnn.Graph
	pg     *gnn.PackedGraphs
}

// tileScratch bundles the per-call buffers of one ScoreTile invocation;
// pooled because tiles are scored concurrently by the search workers.
type tileScratch struct {
	modes    map[FeatureMode]*modeShells
	bs       *gnn.BatchScratch
	w        *inferScratch
	gcache   map[FeatureMode]*gnn.Graph
	vals     []float64
	hostSlot []int
}

var tilePool = sync.Pool{New: func() any {
	return &tileScratch{
		modes:  map[FeatureMode]*modeShells{},
		bs:     gnn.NewBatchScratch(),
		w:      &inferScratch{gs: gnn.NewStackedScratch()},
		gcache: map[FeatureMode]*gnn.Graph{},
	}
}}

func (ts *tileScratch) shells(mode FeatureMode, n int) *modeShells {
	ms := ts.modes[mode]
	if ms == nil {
		ms = &modeShells{}
		ts.modes[mode] = ms
	}
	for len(ms.graphs) < n {
		ms.graphs = append(ms.graphs, &gnn.Graph{})
	}
	return ms
}

// ScoreTile implements placement.TileScorer: it scores the candidate
// tile with every metric ensemble, writing one PredCosts per candidate.
// Stackable ensembles run fused — the tile's graphs are packed once per
// featurization mode and each ensemble advances all candidates × members
// in one batched kernel pass; the rest score per candidate. Outputs are
// bit-identical to per-candidate PredictPlacement at any tile size.
func (s *TileSession) ScoreTile(cands []sim.Placement, out []placement.PredCosts) error {
	if len(out) != len(cands) {
		return fmt.Errorf("core: tile output holds %d slots, want %d", len(out), len(cands))
	}
	if len(cands) == 0 {
		return nil
	}
	met := inferMet()
	start := time.Now()
	for i := range out {
		out[i] = placement.PredCosts{Success: true}
	}
	ts := tilePool.Get().(*tileScratch)
	defer tilePool.Put(ts)

	if len(s.fused) > 0 {
		// Pack the tile once per featurization mode used by a fused slot.
		for mi := range s.fused {
			mode := s.fused[mi].mode
			if sameMode(s.fused[:mi], mode) {
				continue // packed for an earlier slot this call
			}
			ms := ts.shells(mode, len(cands))
			bf := s.batches[mode]
			for ci, p := range cands {
				if err := bf.buildGraphInto(p, ms.graphs[ci], &ts.hostSlot); err != nil {
					return fmt.Errorf("core: tile candidate %d: %w", ci, err)
				}
			}
			pg, err := gnn.PackGraphs(ms.graphs[:len(cands)], bf.Plan(), ms.pg)
			if err != nil {
				return fmt.Errorf("core: packing tile: %w", err)
			}
			ms.pg = pg
		}
		for _, fs := range s.fused {
			k := fs.sm.K()
			if cap(ts.vals) < len(cands)*k {
				ts.vals = make([]float64, len(cands)*k)
			}
			vals := ts.vals[:len(cands)*k]
			pg := ts.modes[fs.mode].pg
			fusedStart := time.Now()
			var err error
			if fs.e.fast32.Load() {
				err = fs.sm.InferEnsembleBatch32(pg, ts.bs, vals)
			} else {
				err = fs.sm.InferEnsembleBatch(pg, ts.bs, vals)
			}
			if err != nil {
				return fmt.Errorf("core: scoring tile for %v: %w", fs.e.Metric, err)
			}
			for ci := range cands {
				row := vals[ci*k : (ci+1)*k]
				for m := range row {
					row[m] = fs.e.Models[m].headTransform(row[m])
				}
				applyCost(&out[ci], fs.e.Metric, row)
			}
			fs.e.paths.recordBatch(true, len(cands), time.Since(fusedStart))
		}
		met.fusedTiles.Inc()
		met.fusedCandidates.Add(int64(len(cands)))
	}

	for ci, p := range cands {
		if len(s.slow) == 0 {
			break
		}
		candStart := time.Now()
		clear(ts.gcache)
		src := &batchSource{batches: s.batches, gcache: ts.gcache, p: p}
		for _, e := range s.slow {
			vals, err := e.predictWith(src, ts.w)
			if err != nil {
				return fmt.Errorf("core: tile candidate %d: %w", ci, err)
			}
			applyCost(&out[ci], e.Metric, vals)
		}
		met.candidateSeconds.Since(candStart)
		met.fallbackCands.Inc()
	}

	met.candidates.Add(int64(len(cands)))
	met.tileSize.Record(int64(len(cands)))
	met.tileSeconds.Since(start)
	return nil
}

// sameMode reports whether an earlier fused slot already uses the mode
// (and hence already packed the tile's graphs for it).
func sameMode(slots []fusedSlot, mode FeatureMode) bool {
	for _, fs := range slots {
		if fs.mode == mode {
			return true
		}
	}
	return false
}

// applyCost folds an ensemble's transformed member outputs into the
// candidate's cost vector, using the same member-order mean and majority
// vote as the per-candidate path.
func applyCost(costs *placement.PredCosts, metric Metric, vals []float64) {
	switch metric {
	case MetricThroughput:
		costs.ThroughputTPS = meanOf(vals)
	case MetricProcLatency:
		costs.ProcLatencyMS = meanOf(vals)
	case MetricE2ELatency:
		costs.E2ELatencyMS = meanOf(vals)
	case MetricBackpressure:
		costs.Backpressured = voteOf(vals)
	case MetricSuccess:
		costs.Success = voteOf(vals)
	}
}

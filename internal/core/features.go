// Package core implements the COSTREAM cost model: the transferable
// featurization of Table I, the construction of the joint
// operator-resource graph, training of per-metric GNN models (throughput,
// processing latency, end-to-end latency as regression; backpressure and
// query success as classification), seed ensembles with mean/majority-vote
// aggregation, and few-shot fine-tuning.
package core

import (
	"fmt"
	"math"

	"costream/internal/gnn"
	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// FeatureMode selects the featurization for the Exp 7a ablation.
type FeatureMode int

// Featurization modes.
const (
	// FeatFull is COSTREAM's featurization: host nodes with hardware
	// features plus placement edges.
	FeatFull FeatureMode = iota
	// FeatPlacementOnly keeps host nodes and placement/co-location
	// structure but blinds the model to hardware features.
	FeatPlacementOnly
	// FeatQueryOnly drops host nodes entirely: the model sees only the
	// query logic and data characteristics.
	FeatQueryOnly
)

func (m FeatureMode) String() string {
	switch m {
	case FeatFull:
		return "full"
	case FeatPlacementOnly:
		return "placement-only"
	case FeatQueryOnly:
		return "query-only"
	default:
		return fmt.Sprintf("FeatureMode(%d)", int(m))
	}
}

// Featurizer converts (query, cluster, placement) triples into joint
// operator-resource graphs with transferable feature vectors. The
// normalization constants are fixed (not fitted to a dataset), which is
// what makes the features transferable across workloads and hardware.
type Featurizer struct {
	Mode FeatureMode
}

// Feature vector dimensions per node kind.
const (
	// Common operator features: tuple width in/out, tuple bytes in/out,
	// and the derived logical arrival/output rates. The rates follow
	// from the source event rates and annotated selectivities
	// (Section IV-B: "derive the tuple arrival rates for operators
	// further downstream") and are therefore available before execution.
	commonDim = 6
	sourceDim = 6 + commonDim  // rate, width, type fractions, avg bytes
	filterDim = 12 + commonDim // fn one-hot(7), literal one-hot(3), sel, log-sel
	joinDim   = 12 + commonDim // key one-hot(3), sel, log-sel, window(5), extent(2)
	aggDim    = 20 + commonDim // fn(4), value(3), group-by(4), sel, log-sel, window(5), extent(2)
	sinkDim   = 1 + commonDim
	hostDim   = 4 // cpu, ram, bandwidth, latency
)

// FeatDims returns the per-kind feature dimensions for model construction.
func (f *Featurizer) FeatDims() map[gnn.NodeKind]int {
	return map[gnn.NodeKind]int{
		gnn.KindSource:    sourceDim,
		gnn.KindFilter:    filterDim,
		gnn.KindJoin:      joinDim,
		gnn.KindAggregate: aggDim,
		gnn.KindSink:      sinkDim,
		gnn.KindHost:      hostDim,
	}
}

// Fixed normalization helpers. All are log-scaled against the bottom of
// the Table II training grids so that in-range values map roughly to
// [0, 1] and out-of-range values extrapolate smoothly beyond.
func normRate(rate float64) float64 {
	return math.Log2(math.Max(rate, 1)/20) / 10.32
}

func normSel(sel float64) float64 {
	return math.Log10(sel+1e-6)/6 + 1
}

func normCountSize(size float64) float64 {
	return math.Log2(math.Max(size, 1)) / 9.33
}

func normTimeSize(size float64) float64 {
	return math.Log2(math.Max(size, 0.05)/0.25) / 6
}

func normCPU(cpu float64) float64 {
	return math.Log2(math.Max(cpu, 10)/50) / 4
}

func normRAM(ramMB float64) float64 {
	return math.Log2(math.Max(ramMB, 100)/1000) / 5
}

func normBW(bwMbps float64) float64 {
	return math.Log2(math.Max(bwMbps, 1)/25) / 8.64
}

func normLat(latMS float64) float64 {
	return math.Log2(math.Max(latMS, 0.25)/0.25) / 9.32
}

func normWidth(w int) float64     { return float64(w) / 10 }
func normBytes(b float64) float64 { return b / 400 }

// windowExtentFeatures derives the window extent in seconds and tuples
// from the operator's logical arrival rate; both follow from annotated
// selectivities and source rates, so they are available pre-execution.
// The seconds extent drives latency (a firing window's oldest tuple is a
// full extent old), the tuple extent drives state size and memory.
func windowExtentFeatures(w *stream.Window, arrivalRate float64) []float64 {
	if w == nil {
		return []float64{0, 0}
	}
	return []float64{
		normTimeSize(w.ExtentSeconds(arrivalRate)),
		normCountSize(w.ExtentTuples(arrivalRate)),
	}
}

// windowFeatures encodes a window specification in 5 transferable values.
func windowFeatures(w *stream.Window) []float64 {
	if w == nil {
		return []float64{0, 0, 0, 0, 0}
	}
	isSliding, isCount := 0.0, 0.0
	countSize, timeSize := 0.0, 0.0
	if w.Type == stream.WindowSliding {
		isSliding = 1
	}
	if w.Policy == stream.WindowCountBased {
		isCount = 1
		countSize = normCountSize(w.Size)
	} else {
		timeSize = normTimeSize(w.Size)
	}
	slideRatio := 1.0
	if w.Size > 0 {
		slideRatio = w.Slide / w.Size
	}
	return []float64{isSliding, isCount, countSize, timeSize, slideRatio}
}

func oneHot(n, idx int) []float64 {
	v := make([]float64, n)
	if idx >= 0 && idx < n {
		v[idx] = 1
	}
	return v
}

// opGraph builds the operator-only part of the joint graph: typed
// operator nodes with their feature vectors plus the logical data-flow
// edges. This part is placement-invariant, which is what BatchFeaturizer
// exploits to amortize featurization across many candidates.
func (f *Featurizer) opGraph(q *stream.Query) (*gnn.Graph, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rates, err := q.DeriveRates()
	if err != nil {
		return nil, err
	}
	g := &gnn.Graph{}
	for i, op := range q.Ops {
		feat, kind, err := f.opFeatures(q, rates, i, op)
		if err != nil {
			return nil, err
		}
		g.Nodes = append(g.Nodes, gnn.Node{Kind: kind, Feat: feat})
	}
	for _, e := range q.Edges {
		g.FlowEdges = append(g.FlowEdges, e)
	}
	return g, nil
}

// attachHosts appends one host node per distinct host used by the
// placement (in first-use order) and wires the placement edges. hostFeat
// supplies the feature vector for a host index.
func attachHosts(g *gnn.Graph, p sim.Placement, hostFeat func(int) []float64) {
	hostNode := make(map[int]int)
	for opIdx, h := range p {
		node, ok := hostNode[h]
		if !ok {
			node = len(g.Nodes)
			hostNode[h] = node
			g.Nodes = append(g.Nodes, gnn.Node{Kind: gnn.KindHost, Feat: hostFeat(h)})
		}
		g.PlaceEdges = append(g.PlaceEdges, [2]int{opIdx, node})
	}
}

// BuildGraph constructs the joint operator-resource graph of Section III
// for the given query, cluster and placement. For FeatQueryOnly the
// placement may be nil.
func (f *Featurizer) BuildGraph(q *stream.Query, c *hardware.Cluster, p sim.Placement) (*gnn.Graph, error) {
	g, err := f.opGraph(q)
	if err != nil {
		return nil, err
	}
	if f.Mode == FeatQueryOnly {
		return g, nil
	}
	if c == nil {
		return nil, fmt.Errorf("core: cluster required for %v featurization", f.Mode)
	}
	if err := p.Validate(q, c); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	attachHosts(g, p, func(h int) []float64 { return f.hostFeatures(c.Hosts[h]) })
	return g, nil
}

func (f *Featurizer) hostFeatures(h *hardware.Host) []float64 {
	if f.Mode == FeatPlacementOnly {
		// Placement structure without hardware knowledge: a constant
		// vector. Messages still carry co-location information.
		return []float64{1, 0, 0, 0}
	}
	return []float64{
		normCPU(h.CPU),
		normRAM(h.RAMMB),
		normBW(h.NetBandwidthMbps),
		normLat(h.NetLatencyMS),
	}
}

func (f *Featurizer) opFeatures(q *stream.Query, rates *stream.Rates, i int, op *stream.Operator) ([]float64, gnn.NodeKind, error) {
	// Common features (Table I "all" rows): averaged incoming and
	// outgoing tuple width plus serialized sizes.
	widthIn, bytesIn := 0.0, 0.0
	if ups := q.Upstream(i); len(ups) > 0 {
		for _, u := range ups {
			widthIn += float64(rates.Width[u])
			bytesIn += rates.TupleBytes[u]
		}
		widthIn /= float64(len(ups))
		bytesIn /= float64(len(ups))
	} else {
		widthIn = float64(rates.Width[i])
		bytesIn = rates.TupleBytes[i]
	}
	inRate := rates.In[i]
	if op.Type == stream.OpSource {
		inRate = op.EventRate
	}
	common := []float64{
		widthIn / 10,
		normWidth(rates.Width[i]),
		normBytes(bytesIn),
		normBytes(rates.TupleBytes[i]),
		normRate(inRate),
		normRate(rates.Out[i]),
	}
	switch op.Type {
	case stream.OpSource:
		var nInt, nStr, nDbl float64
		for _, t := range op.FieldTypes {
			switch t {
			case stream.TypeInt:
				nInt++
			case stream.TypeString:
				nStr++
			default:
				nDbl++
			}
		}
		total := float64(len(op.FieldTypes))
		feat := []float64{
			normRate(op.EventRate),
			normWidth(len(op.FieldTypes)),
			nInt / total, nStr / total, nDbl / total,
			stream.AvgFieldBytes(op.FieldTypes) / 32,
		}
		return append(feat, common...), gnn.KindSource, nil
	case stream.OpFilter:
		feat := oneHot(7, int(op.FilterFn))
		feat = append(feat, oneHot(3, int(op.LiteralType))...)
		feat = append(feat, op.Selectivity, normSel(op.Selectivity))
		return append(feat, common...), gnn.KindFilter, nil
	case stream.OpJoin:
		feat := oneHot(3, int(op.JoinKeyType))
		feat = append(feat, op.Selectivity, normSel(op.Selectivity))
		feat = append(feat, windowFeatures(op.Window)...)
		// Joins window each input stream separately; use the mean
		// per-stream rate for the extent.
		feat = append(feat, windowExtentFeatures(op.Window, inRate/2)...)
		return append(feat, common...), gnn.KindJoin, nil
	case stream.OpAggregate:
		feat := oneHot(4, int(op.AggFn))
		feat = append(feat, oneHot(3, int(op.AggValueType))...)
		gb := 3 // "none"
		if op.HasGroupBy {
			gb = int(op.GroupByType)
		}
		feat = append(feat, oneHot(4, gb)...)
		feat = append(feat, op.Selectivity, normSel(op.Selectivity))
		feat = append(feat, windowFeatures(op.Window)...)
		feat = append(feat, windowExtentFeatures(op.Window, inRate)...)
		return append(feat, common...), gnn.KindAggregate, nil
	case stream.OpSink:
		return append([]float64{1}, common...), gnn.KindSink, nil
	default:
		return nil, 0, fmt.Errorf("core: unknown operator type %v", op.Type)
	}
}

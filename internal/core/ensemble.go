package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"costream/internal/dataset"
	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
)

// Ensemble combines several independently seeded models for one metric
// (Section IV-A): predictions are averaged for regression metrics and
// majority-voted for the binary metrics, reducing prediction uncertainty.
//
// Predictions run through a lazily built, cached weight stack
// (gnn.StackedModel) that advances all members in one kernel pass per
// message-passing phase; mutate a member's weights in place only through
// code that calls Invalidate afterwards.
type Ensemble struct {
	Metric Metric
	Models []*CostModel

	stack   atomic.Pointer[ensembleStack]
	stackMu sync.Mutex
	fast32  atomic.Bool
	paths   pathCounters
}

// TrainEnsemble trains k models with different random initialization seeds
// in parallel. Each member's data-parallel fit workers draw from the
// process-wide training budget (SetTrainBudget), so the metric x member x
// worker fan-out never oversubscribes the machine regardless of k.
func TrainEnsemble(train, val *dataset.Corpus, metric Metric, cfg TrainConfig, k int) (*Ensemble, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: ensemble size must be positive")
	}
	models := make([]*CostModel, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.Seed = cfg.Seed + int64(i)*7919
			c.Member = i
			models[i], errs[i] = Train(train, val, metric, c)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	e := &Ensemble{Metric: metric, Models: models}
	e.stacked() // build the weight stack once at train time
	return e, nil
}

// PredictValue returns the ensemble's regression estimate (mean of member
// predictions). It errors for classification metrics. The placement is
// featurized once for the whole ensemble and all members advance through
// the stacked one-pass kernels (bit-identical to per-member inference).
func (e *Ensemble) PredictValue(q *stream.Query, c *hardware.Cluster, p sim.Placement) (float64, error) {
	if !e.Metric.IsRegression() {
		return 0, fmt.Errorf("core: %v is not a regression metric", e.Metric)
	}
	w := getInferScratch()
	defer putInferScratch(w)
	vals, err := e.predictWith(&tripleSource{q: q, c: c, p: p}, w)
	if err != nil {
		return 0, err
	}
	return meanOf(vals), nil
}

// PredictLabel returns the ensemble's majority vote for a binary metric.
func (e *Ensemble) PredictLabel(q *stream.Query, c *hardware.Cluster, p sim.Placement) (bool, error) {
	if e.Metric.IsRegression() {
		return false, fmt.Errorf("core: %v is not a classification metric", e.Metric)
	}
	w := getInferScratch()
	defer putInferScratch(w)
	probs, err := e.predictWith(&tripleSource{q: q, c: c, p: p}, w)
	if err != nil {
		return false, err
	}
	return voteOf(probs), nil
}

// PredictTrace predicts for a stored trace: the mean value for regression
// metrics or the majority-vote probability (vote fraction) for binary ones.
func (e *Ensemble) PredictTrace(tr *dataset.Trace) (float64, error) {
	if e.Metric.IsRegression() {
		return e.PredictValue(tr.Query, tr.Cluster, tr.Placement)
	}
	label, err := e.PredictLabel(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		return 0, err
	}
	if label {
		return 1, nil
	}
	return 0, nil
}

// Predictor bundles the five per-metric ensembles into a full COSTREAM
// cost predictor implementing placement.Predictor (Figure 4).
type Predictor struct {
	Throughput   *Ensemble
	ProcLatency  *Ensemble
	E2ELatency   *Ensemble
	Backpressure *Ensemble
	Success      *Ensemble
}

// MetricEnsemble pairs a cost metric with its predictor slot.
type MetricEnsemble struct {
	Metric   Metric
	Ensemble *Ensemble // nil when the metric was not trained
}

// Ensembles lists the predictor's five slots in paper order, including
// untrained (nil) ones. It is the single source of the slot <-> metric
// correspondence for serialization, CLIs and the serving layer.
func (pr *Predictor) Ensembles() []MetricEnsemble {
	return []MetricEnsemble{
		{MetricThroughput, pr.Throughput},
		{MetricProcLatency, pr.ProcLatency},
		{MetricE2ELatency, pr.E2ELatency},
		{MetricBackpressure, pr.Backpressure},
		{MetricSuccess, pr.Success},
	}
}

// PredictorConfig controls TrainPredictor.
type PredictorConfig struct {
	Train TrainConfig
	// EnsembleSize is the number of models per metric (the paper uses 3).
	EnsembleSize int
	// Metrics restricts training to a subset; nil means all five.
	Metrics []Metric
}

// TrainPredictor trains ensembles for the requested metrics.
func TrainPredictor(train, val *dataset.Corpus, cfg PredictorConfig) (*Predictor, error) {
	if cfg.EnsembleSize <= 0 {
		cfg.EnsembleSize = 3
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = AllMetrics()
	}
	pr := &Predictor{}
	for _, m := range metrics {
		e, err := TrainEnsemble(train, val, m, cfg.Train, cfg.EnsembleSize)
		if err != nil {
			return nil, fmt.Errorf("core: training %v: %w", m, err)
		}
		switch m {
		case MetricThroughput:
			pr.Throughput = e
		case MetricProcLatency:
			pr.ProcLatency = e
		case MetricE2ELatency:
			pr.E2ELatency = e
		case MetricBackpressure:
			pr.Backpressure = e
		case MetricSuccess:
			pr.Success = e
		}
	}
	return pr, nil
}

// PredictPlacement implements placement.Predictor. Missing ensembles
// default to optimistic sanity values (success, no backpressure) so a
// predictor trained for a single target metric still drives optimization.
func (pr *Predictor) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (placement.PredCosts, error) {
	var out placement.PredCosts
	var err error
	out.Success = true
	if pr.Throughput != nil {
		if out.ThroughputTPS, err = pr.Throughput.PredictValue(q, c, p); err != nil {
			return out, err
		}
	}
	if pr.ProcLatency != nil {
		if out.ProcLatencyMS, err = pr.ProcLatency.PredictValue(q, c, p); err != nil {
			return out, err
		}
	}
	if pr.E2ELatency != nil {
		if out.E2ELatencyMS, err = pr.E2ELatency.PredictValue(q, c, p); err != nil {
			return out, err
		}
	}
	if pr.Backpressure != nil {
		if out.Backpressured, err = pr.Backpressure.PredictLabel(q, c, p); err != nil {
			return out, err
		}
	}
	if pr.Success != nil {
		if out.Success, err = pr.Success.PredictLabel(q, c, p); err != nil {
			return out, err
		}
	}
	return out, nil
}

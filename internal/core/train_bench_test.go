package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"costream/internal/gnn"
)

// trainBenchFixture prepares the shared epoch-benchmark state once: the
// featurized sample set (with per-sample plans) and a model architecture.
var (
	tbOnce    sync.Once
	tbErr     error
	tbSamples []sample
	tbFeat    Featurizer
)

func trainBenchSetup(b *testing.B) []sample {
	b.Helper()
	tbOnce.Do(func() {
		c := subCorpus(b, 300)
		tbSamples, tbErr = buildSamples(&tbFeat, c, MetricE2ELatency)
	})
	if tbErr != nil {
		b.Fatal(tbErr)
	}
	if len(tbSamples) == 0 {
		b.Fatal("no usable benchmark samples")
	}
	return tbSamples
}

// BenchmarkTrainEpoch measures one full training epoch (minibatch Adam
// over every sample, forward + backward on the tape arena) of the
// data-parallel fit loop at different worker counts. The trained weights
// are bit-identical across all variants; the wall-clock gap is the value
// of sharding minibatches across cores. allocs/op stays near-flat with
// sample count: the steady-state tape path allocates nothing.
func BenchmarkTrainEpoch(b *testing.B) {
	samples := trainBenchSetup(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := DefaultTrainConfig(42)
			cfg.Epochs = 1
			cfg.Patience = 0
			cfg.Hidden = 24
			cfg.Workers = workers
			gcfg := gnn.DefaultConfig(tbFeat.FeatDims())
			gcfg.Hidden = cfg.Hidden
			net, err := gnn.New(gcfg, cfg.Seed)
			if err != nil {
				b.Fatal(err)
			}
			cm := &CostModel{Metric: MetricE2ELatency, Feat: tbFeat, Net: net}
			// fit shuffles its sample slice in place; give every variant
			// its own copy so the shared fixture (and the cross-variant
			// weight identity) survives.
			local := append([]sample(nil), samples...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cm.fit(local, nil, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMeanLoss measures the validation pass (inference tapes, no
// gradient bookkeeping) serial vs sharded.
func BenchmarkMeanLoss(b *testing.B) {
	samples := trainBenchSetup(b)
	gcfg := gnn.DefaultConfig(tbFeat.FeatDims())
	gcfg.Hidden = 24
	net, err := gnn.New(gcfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	cm := &CostModel{Metric: MetricE2ELatency, Feat: tbFeat, Net: net}
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ws := make([]*trainWorker, workers)
			for i := range ws {
				ws[i] = newTrainWorker()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := meanLoss(cm, samples, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchWorkerCounts compares serial against the machine's parallelism
// (and a fixed 8 for cross-machine comparability when they differ).
func benchWorkerCounts() []int {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		if n != 8 {
			counts = append(counts, n)
		}
		counts = append(counts, 8)
	}
	return counts
}

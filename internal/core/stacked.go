package core

import (
	"sync"
	"sync/atomic"
	"time"

	"costream/internal/gnn"
	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
)

// ensembleStack is the cached one-pass form of an Ensemble: the members'
// GNN weights vertically stacked for gnn.InferEnsemble, plus the
// featurization mode they share. sm is nil when the members cannot be
// stacked — mixed featurization modes (Exp 7a ablations) or traditional
// message passing (Exp 7b) — in which case every prediction takes the
// per-member fallback path.
type ensembleStack struct {
	sm   *gnn.StackedModel
	mode FeatureMode
}

// stacked returns the ensemble's cached stack, building it on first use.
// The build copies the member weights, so the stack must be dropped
// (Invalidate) whenever a member's weights change in place — fine-tuning
// via CostModel.FineTune or artifact reload both do.
func (e *Ensemble) stacked() *ensembleStack {
	if st := e.stack.Load(); st != nil {
		return st
	}
	e.stackMu.Lock()
	defer e.stackMu.Unlock()
	if st := e.stack.Load(); st != nil {
		return st
	}
	st := e.buildStack()
	e.stack.Store(st)
	return st
}

func (e *Ensemble) buildStack() *ensembleStack {
	if len(e.Models) == 0 {
		return &ensembleStack{}
	}
	mode := e.Models[0].Feat.Mode
	nets := make([]*gnn.Model, len(e.Models))
	for i, m := range e.Models {
		if m.Feat.Mode != mode || m.Net == nil {
			return &ensembleStack{}
		}
		nets[i] = m.Net
	}
	sm, err := gnn.Stack(nets)
	if err != nil {
		// Unstackable architectures (traditional passing, mismatched
		// widths) predict correctly through the fallback path.
		return &ensembleStack{}
	}
	return &ensembleStack{sm: sm, mode: mode}
}

// Invalidate drops the cached weight stack; the next prediction rebuilds
// it from the members' current weights. Call it after mutating any
// member in place (e.g. CostModel.FineTune).
func (e *Ensemble) Invalidate() {
	e.stack.Store(nil)
}

// SetFast32 switches the ensemble's stacked inference to the float32
// kernels (see gnn.InferEnsemble32). Predictions then deviate from the
// float64 reference within the tolerance documented there; the fallback
// path is unaffected.
func (e *Ensemble) SetFast32(on bool) {
	e.fast32.Store(on)
}

// SetFast32 switches every trained ensemble to float32 stacked kernels.
func (pr *Predictor) SetFast32(on bool) {
	for _, s := range pr.Ensembles() {
		if s.Ensemble != nil {
			s.Ensemble.SetFast32(on)
		}
	}
}

// pathCounters tracks which inference path served the ensemble's
// predictions and how long the calls took, for the serving layer's
// /stats endpoint. One "call" is one full-ensemble evaluation of one
// graph (all k members).
type pathCounters struct {
	stackedCalls  atomic.Int64
	stackedNanos  atomic.Int64
	fallbackCalls atomic.Int64
	fallbackNanos atomic.Int64
}

// recordBatch accounts one fused kernel pass that evaluated n graphs
// (one "call" per graph, matching the per-candidate accounting).
func (pc *pathCounters) recordBatch(stacked bool, n int, d time.Duration) {
	if n <= 0 {
		return
	}
	if stacked {
		pc.stackedCalls.Add(int64(n))
		pc.stackedNanos.Add(int64(d))
	} else {
		pc.fallbackCalls.Add(int64(n))
		pc.fallbackNanos.Add(int64(d))
	}
}

func (pc *pathCounters) record(stacked bool, d time.Duration) {
	if stacked {
		pc.stackedCalls.Add(1)
		pc.stackedNanos.Add(int64(d))
	} else {
		pc.fallbackCalls.Add(1)
		pc.fallbackNanos.Add(int64(d))
	}
}

func addPaths(ps *placement.InferencePathStats, pc *pathCounters) {
	ps.StackedCalls += pc.stackedCalls.Load()
	ps.StackedNanos += pc.stackedNanos.Load()
	ps.FallbackCalls += pc.fallbackCalls.Load()
	ps.FallbackNanos += pc.fallbackNanos.Load()
}

// InferencePathStats sums the inference-path counters over all trained
// ensembles since process start, implementing placement.PathStatsReporter.
func (pr *Predictor) InferencePathStats() placement.InferencePathStats {
	var ps placement.InferencePathStats
	for _, s := range pr.Ensembles() {
		if s.Ensemble != nil {
			addPaths(&ps, &s.Ensemble.paths)
		}
	}
	return ps
}

// inferScratch bundles the per-call buffers of one stacked ensemble
// evaluation; pooled because predictions run on many goroutines (search
// workers, serve handlers) that each need private scratch.
type inferScratch struct {
	gs  *gnn.StackedScratch
	out []float64
}

var inferPool = sync.Pool{New: func() any {
	return &inferScratch{gs: gnn.NewStackedScratch()}
}}

func getInferScratch() *inferScratch  { return inferPool.Get().(*inferScratch) }
func putInferScratch(w *inferScratch) { inferPool.Put(w) }

// predictWith evaluates the ensemble against the graph source and returns
// the k transformed member outputs (valid until the scratch is reused).
func (e *Ensemble) predictWith(src graphSource, w *inferScratch) ([]float64, error) {
	if cap(w.out) < len(e.Models) {
		w.out = make([]float64, len(e.Models))
	}
	w.out = w.out[:len(e.Models)]
	if err := e.memberOutputs(src, w); err != nil {
		return nil, err
	}
	return w.out, nil
}

// inferStacked runs one full-ensemble evaluation on the stacked kernels
// and writes the k transformed (metric-space) member outputs into out.
func (e *Ensemble) inferStacked(st *ensembleStack, g *gnn.Graph, plan *gnn.Plan, w *inferScratch) error {
	var err error
	if e.fast32.Load() {
		err = st.sm.InferEnsemble32(g, plan, w.gs, w.out)
	} else {
		err = st.sm.InferEnsemble(g, plan, w.gs, w.out)
	}
	if err != nil {
		return err
	}
	for i, m := range e.Models {
		w.out[i] = m.headTransform(w.out[i])
	}
	return nil
}

// memberOutputs evaluates every member on the placement and writes the
// transformed outputs into w.out in member order — through the stacked
// one-pass kernels when the ensemble is stackable (featurizing once for
// the whole ensemble), else through the per-member fallback. Both paths
// produce bit-identical values: stacking shares the featurized graph,
// which is deterministic, and the float64 kernels replicate the exact
// per-member accumulation order.
func (e *Ensemble) memberOutputs(g graphSource, w *inferScratch) error {
	st := e.stacked()
	start := time.Now()
	if st.sm == nil {
		if err := e.fallbackOutputs(g, w); err != nil {
			return err
		}
		e.paths.record(false, time.Since(start))
		return nil
	}
	graph, plan, err := g.graphPlan(st.mode)
	if err != nil {
		return err
	}
	if err := e.inferStacked(st, graph, plan, w); err != nil {
		return err
	}
	e.paths.record(true, time.Since(start))
	return nil
}

func (e *Ensemble) fallbackOutputs(g graphSource, w *inferScratch) error {
	for i, m := range e.Models {
		graph, plan, err := g.graphPlan(m.Feat.Mode)
		if err != nil {
			return err
		}
		v, err := m.predictPlanned(graph, plan)
		if err != nil {
			return err
		}
		w.out[i] = v
	}
	return nil
}

// graphSource abstracts where an evaluation's featurized graph comes
// from: a one-off (query, cluster, placement) triple, or a
// BatchFeaturizer cache shared across candidates.
type graphSource interface {
	graphPlan(mode FeatureMode) (*gnn.Graph, *gnn.Plan, error)
}

// tripleSource featurizes one (query, cluster, placement) triple on
// demand, caching the graph and plan per mode within the call so the k
// members of a stacked — or even fallback — evaluation featurize once
// instead of k times (the featurizer is fully determined by its mode, so
// the result is identical to each member building its own graph).
type tripleSource struct {
	q *stream.Query
	c *hardware.Cluster
	p sim.Placement

	mode  FeatureMode
	graph *gnn.Graph
	plan  *gnn.Plan
	valid bool
}

func (ts *tripleSource) graphPlan(mode FeatureMode) (*gnn.Graph, *gnn.Plan, error) {
	if ts.valid && ts.mode == mode {
		return ts.graph, ts.plan, nil
	}
	f := Featurizer{Mode: mode}
	g, err := f.BuildGraph(ts.q, ts.c, ts.p)
	if err != nil {
		return nil, nil, err
	}
	plan, err := gnn.NewPlan(g)
	if err != nil {
		return nil, nil, err
	}
	ts.mode, ts.graph, ts.plan, ts.valid = mode, g, plan, true
	return g, plan, nil
}

// batchSource serves graphs for one candidate of a PredictBatch call
// from the per-mode BatchFeaturizer caches: the plan is shared by every
// candidate, the graph built at most once per (mode, candidate).
type batchSource struct {
	batches map[FeatureMode]*BatchFeaturizer
	gcache  map[FeatureMode]*gnn.Graph
	p       sim.Placement
}

func (bs *batchSource) graphPlan(mode FeatureMode) (*gnn.Graph, *gnn.Plan, error) {
	bf := bs.batches[mode]
	if g, ok := bs.gcache[mode]; ok {
		return g, bf.Plan(), nil
	}
	g, err := bf.BuildGraph(bs.p)
	if err != nil {
		return nil, nil, err
	}
	bs.gcache[mode] = g
	return g, bf.Plan(), nil
}

// meanOf folds transformed member outputs into the ensemble's regression
// estimate (mean, in member order — matching the historical accumulation
// exactly).
func meanOf(out []float64) float64 {
	var sum float64
	for _, v := range out {
		sum += v
	}
	return sum / float64(len(out))
}

// voteOf folds transformed member outputs into the majority label.
func voteOf(out []float64) bool {
	votes := 0
	for _, v := range out {
		if v > 0.5 {
			votes++
		}
	}
	return votes*2 > len(out)
}

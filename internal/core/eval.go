package core

import (
	"fmt"

	"costream/internal/dataset"
	"costream/internal/qerror"
)

// TracePredictor predicts a scalar for a stored trace: a raw cost value
// for regression metrics or a positive-class score in [0,1] for binary
// metrics. CostModel, Ensemble and the flat-vector baseline satisfy it.
type TracePredictor interface {
	PredictTrace(tr *dataset.Trace) (float64, error)
}

// EvaluateRegressionSource computes q-error quantiles of the predictor
// against the measured metric over the source's successful traces,
// streaming: memory stays O(predictions), never O(traces), so sharded
// corpora evaluate without materializing.
func EvaluateRegressionSource(p TracePredictor, src dataset.Source, metric Metric) (qerror.Summary, error) {
	if !metric.IsRegression() {
		return qerror.Summary{}, fmt.Errorf("core: %v is not a regression metric", metric)
	}
	var truths, preds []float64
	err := src.Iter(func(i int, tr *dataset.Trace) error {
		if !tr.Metrics.Success {
			return nil
		}
		v, err := p.PredictTrace(tr)
		if err != nil {
			return err
		}
		truths = append(truths, metric.Value(tr.Metrics))
		preds = append(preds, v)
		return nil
	})
	if err != nil {
		return qerror.Summary{}, err
	}
	return qerror.Summarize(truths, preds)
}

// EvaluateRegression computes q-error quantiles of the predictor against
// the measured metric over the corpus's successful traces.
func EvaluateRegression(p TracePredictor, c *dataset.Corpus, metric Metric) (qerror.Summary, error) {
	return EvaluateRegressionSource(p, c, metric)
}

// EvaluateClassificationSource computes accuracy of the predictor for a
// binary metric over the source, streaming. Balance first (see
// EvaluateClassificationBalancedSource) to match the paper's reporting.
func EvaluateClassificationSource(p TracePredictor, src dataset.Source, metric Metric) (float64, error) {
	if metric.IsRegression() {
		return 0, fmt.Errorf("core: %v is not a classification metric", metric)
	}
	var truths, preds []bool
	err := src.Iter(func(i int, tr *dataset.Trace) error {
		score, err := p.PredictTrace(tr)
		if err != nil {
			return err
		}
		truths = append(truths, metric.Label(tr.Metrics))
		preds = append(preds, score > 0.5)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return qerror.Accuracy(truths, preds)
}

// EvaluateClassification computes accuracy of the predictor for a binary
// metric over the corpus (balance the corpus first to match the paper's
// reporting).
func EvaluateClassification(p TracePredictor, c *dataset.Corpus, metric Metric) (float64, error) {
	return EvaluateClassificationSource(p, c, metric)
}

// EvaluateClassificationBalancedSource evaluates accuracy on a
// label-balanced subset selected by index, streaming the source twice: a
// cheap first pass collects labels, then only the balanced subset is
// predicted. The subset matches Corpus.Balanced with the same seed. The
// returned count is the balanced subset size; when one class is absent
// the whole source is evaluated unbalanced (count = source size), like
// the corpus-path callers fall back to.
func EvaluateClassificationBalancedSource(p TracePredictor, src dataset.Source, metric Metric, seed int64) (acc float64, n int, err error) {
	if metric.IsRegression() {
		return 0, 0, fmt.Errorf("core: %v is not a classification metric", metric)
	}
	labels := make([]bool, 0, src.Count())
	err = src.Iter(func(i int, tr *dataset.Trace) error {
		labels = append(labels, metric.Label(tr.Metrics))
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	idx := dataset.BalancedIndices(labels, seed)
	if len(idx) == 0 {
		acc, err = EvaluateClassificationSource(p, src, metric)
		return acc, len(labels), err
	}
	keep := make(map[int]bool, len(idx))
	for _, j := range idx {
		keep[j] = true
	}
	var truths, preds []bool
	err = src.Iter(func(i int, tr *dataset.Trace) error {
		if !keep[i] {
			return nil
		}
		score, err := p.PredictTrace(tr)
		if err != nil {
			return err
		}
		truths = append(truths, metric.Label(tr.Metrics))
		preds = append(preds, score > 0.5)
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	acc, err = qerror.Accuracy(truths, preds)
	return acc, len(idx), err
}

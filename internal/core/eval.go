package core

import (
	"fmt"

	"costream/internal/dataset"
	"costream/internal/qerror"
)

// TracePredictor predicts a scalar for a stored trace: a raw cost value
// for regression metrics or a positive-class score in [0,1] for binary
// metrics. CostModel, Ensemble and the flat-vector baseline satisfy it.
type TracePredictor interface {
	PredictTrace(tr *dataset.Trace) (float64, error)
}

// EvaluateRegression computes q-error quantiles of the predictor against
// the measured metric over the corpus's successful traces.
func EvaluateRegression(p TracePredictor, c *dataset.Corpus, metric Metric) (qerror.Summary, error) {
	if !metric.IsRegression() {
		return qerror.Summary{}, fmt.Errorf("core: %v is not a regression metric", metric)
	}
	var truths, preds []float64
	for _, tr := range c.Traces {
		if !tr.Metrics.Success {
			continue
		}
		v, err := p.PredictTrace(tr)
		if err != nil {
			return qerror.Summary{}, err
		}
		truths = append(truths, metric.Value(tr.Metrics))
		preds = append(preds, v)
	}
	return qerror.Summarize(truths, preds)
}

// EvaluateClassification computes accuracy of the predictor for a binary
// metric over the corpus (balance the corpus first to match the paper's
// reporting).
func EvaluateClassification(p TracePredictor, c *dataset.Corpus, metric Metric) (float64, error) {
	if metric.IsRegression() {
		return 0, fmt.Errorf("core: %v is not a classification metric", metric)
	}
	var truths, preds []bool
	for _, tr := range c.Traces {
		score, err := p.PredictTrace(tr)
		if err != nil {
			return 0, err
		}
		truths = append(truths, metric.Label(tr.Metrics))
		preds = append(preds, score > 0.5)
	}
	return qerror.Accuracy(truths, preds)
}

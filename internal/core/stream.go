// Streaming training: build the GNN sample sets directly from a
// dataset.Source (the sharded corpus store, or an in-memory corpus) in a
// single pass, featurizing each trace as it streams by and sharing the
// resulting graphs across all metrics and ensemble members. The raw
// traces are released shard by shard — only the featurized graphs (the
// training working set, which every epoch touches anyway) stay resident,
// so training from a sharded corpus never holds all traces in memory.
//
// The sample order reproduces the corpus path exactly: position r of the
// train set is the trace at trainIdx[r] (dataset.SplitIndices order, the
// same order Corpus.Split produces), so TrainPredictorSource returns
// bit-identical weights to TrainPredictor over the equivalent in-memory
// split — test-enforced in stream_test.go.
package core

import (
	"fmt"
	"math"
	"sync"

	"costream/internal/dataset"
	"costream/internal/gnn"
	"costream/internal/sim"
)

// record is one featurized trace: the joint operator-resource graph, its
// message-passing plan, and the measured metrics the per-metric targets
// are derived from. Graphs are read-only during training and safely
// shared across metrics and concurrently-training ensemble members.
type record struct {
	graph *gnn.Graph
	plan  *gnn.Plan
	met   *sim.Metrics
}

// featurizeSource streams src once and featurizes exactly the traces
// named by the index sets, placing each at its set's rank so ordering
// matches the corresponding materialized split corpora. Indices absent
// from every set (e.g. the held-out test split) are skipped without
// featurization. The sets must be disjoint.
func featurizeSource(feat *Featurizer, src dataset.Source, idxSets ...[]int) ([][]record, error) {
	type loc struct{ set, rank int }
	where := make(map[int]loc)
	out := make([][]record, len(idxSets))
	for s, idx := range idxSets {
		out[s] = make([]record, len(idx))
		for r, j := range idx {
			if prev, dup := where[j]; dup {
				return nil, fmt.Errorf("core: trace %d appears in index sets %d and %d", j, prev.set, s)
			}
			where[j] = loc{set: s, rank: r}
		}
	}
	seen := 0
	err := src.Iter(func(i int, tr *dataset.Trace) error {
		l, ok := where[i]
		if !ok {
			return nil
		}
		g, err := feat.BuildGraph(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			return err
		}
		plan, err := gnn.NewPlan(g)
		if err != nil {
			return err
		}
		out[l.set][l.rank] = record{graph: g, plan: plan, met: tr.Metrics}
		seen++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if seen != len(where) {
		return nil, fmt.Errorf("core: source yielded %d of %d requested traces (index out of range for this corpus?)", seen, len(where))
	}
	return out, nil
}

// samplesFromRecords derives one metric's sample set from featurized
// records, mirroring buildSamples exactly: regression keeps only
// successful traces, classification keeps everything with
// inverse-frequency class weights computed over the record set.
func samplesFromRecords(recs []record, metric Metric) []sample {
	var samples []sample
	if metric.IsRegression() {
		for _, r := range recs {
			if !r.met.Success {
				continue
			}
			samples = append(samples, sample{graph: r.graph, plan: r.plan, y: math.Log1p(metric.Value(r.met)), w: 1})
		}
		return samples
	}
	nPos, nNeg := 0, 0
	for _, r := range recs {
		if metric.Label(r.met) {
			nPos++
		} else {
			nNeg++
		}
	}
	total := float64(nPos + nNeg)
	wPos, wNeg := 1.0, 1.0
	if nPos > 0 && nNeg > 0 {
		wPos = total / (2 * float64(nPos))
		wNeg = total / (2 * float64(nNeg))
	}
	for _, r := range recs {
		y, w := 0.0, wNeg
		if metric.Label(r.met) {
			y, w = 1, wPos
		}
		samples = append(samples, sample{graph: r.graph, plan: r.plan, y: y, w: w})
	}
	return samples
}

// trainEnsembleFromSamples trains k members over shared samples, seeding
// members exactly like TrainEnsemble. Each member gets its own copy of
// the sample slices (fit shuffles in place); the graphs behind them are
// shared, read-only.
func trainEnsembleFromSamples(metric Metric, trainSamples, valSamples []sample, cfg TrainConfig, k int) (*Ensemble, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: ensemble size must be positive")
	}
	models := make([]*CostModel, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.Seed = cfg.Seed + int64(i)*7919
			c.Member = i
			ts := append([]sample(nil), trainSamples...)
			vs := append([]sample(nil), valSamples...)
			models[i], errs[i] = trainFromSamples(metric, ts, vs, c)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Ensemble{Metric: metric, Models: models}, nil
}

// TrainPredictorSource trains like TrainPredictor, but streams the corpus
// from src instead of requiring materialized split corpora: trainIdx and
// valIdx (from dataset.SplitIndices) select and order the training and
// validation traces. Each selected trace is featurized once, during the
// streaming pass, and the graph is shared across every metric and
// ensemble member — where the corpus path featurizes the same trace
// metrics x members times. Weights are bit-identical to
// TrainPredictor(train, val, cfg) over the equivalent materialized split.
func TrainPredictorSource(src dataset.Source, trainIdx, valIdx []int, cfg PredictorConfig) (*Predictor, error) {
	if cfg.EnsembleSize <= 0 {
		cfg.EnsembleSize = 3
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = AllMetrics()
	}
	feat := Featurizer{Mode: cfg.Train.Mode}
	recs, err := featurizeSource(&feat, src, trainIdx, valIdx)
	if err != nil {
		return nil, err
	}
	pr := &Predictor{}
	for _, m := range metrics {
		e, err := trainEnsembleFromSamples(m,
			samplesFromRecords(recs[0], m),
			samplesFromRecords(recs[1], m),
			cfg.Train, cfg.EnsembleSize)
		if err != nil {
			return nil, fmt.Errorf("core: training %v: %w", m, err)
		}
		switch m {
		case MetricThroughput:
			pr.Throughput = e
		case MetricProcLatency:
			pr.ProcLatency = e
		case MetricE2ELatency:
			pr.E2ELatency = e
		case MetricBackpressure:
			pr.Backpressure = e
		case MetricSuccess:
			pr.Success = e
		}
	}
	return pr, nil
}

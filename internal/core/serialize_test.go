package core

import (
	"encoding/json"
	"testing"
)

// trainTinyPredictor trains a minimal full predictor for serialization
// tests: all five metrics, two ensemble members, one epoch.
func trainTinyPredictor(t *testing.T) *Predictor {
	t.Helper()
	c := testCorpus(t)
	train, val, _ := c.Split(0.7, 0.1, 5)
	cfg := fastTrainConfig(5)
	cfg.Epochs = 1
	cfg.Hidden = 8
	pred, err := TrainPredictor(train, val, PredictorConfig{Train: cfg, EnsembleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

func TestPredictorJSONRoundTripBitIdentical(t *testing.T) {
	pred := trainTinyPredictor(t)
	data, err := json.Marshal(pred)
	if err != nil {
		t.Fatal(err)
	}
	var back Predictor
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	c := testCorpus(t)
	checked := 0
	for _, tr := range c.Traces[:25] {
		want, err := pred.PredictPlacement(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.PredictPlacement(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("trace %d: reloaded prediction %+v != original %+v", checked, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no traces checked")
	}
}

func TestCostModelJSONRoundTripPerMember(t *testing.T) {
	pred := trainTinyPredictor(t)
	c := testCorpus(t)
	tr := c.Traces[0]
	for _, e := range []*Ensemble{pred.Throughput, pred.ProcLatency, pred.E2ELatency, pred.Backpressure, pred.Success} {
		for i, m := range e.Models {
			data, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			var back CostModel
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			if back.Metric != m.Metric || back.Feat.Mode != m.Feat.Mode {
				t.Fatalf("%v member %d: metadata changed: %v/%v", e.Metric, i, back.Metric, back.Feat.Mode)
			}
			want, err := m.PredictRaw(tr.Query, tr.Cluster, tr.Placement)
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.PredictRaw(tr.Query, tr.Cluster, tr.Placement)
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Fatalf("%v member %d: reloaded raw prediction %v != %v", e.Metric, i, got, want)
			}
		}
	}
}

func TestSerializePreservesFeatureMode(t *testing.T) {
	c := testCorpus(t)
	train, val, _ := c.Split(0.7, 0.1, 6)
	cfg := fastTrainConfig(6)
	cfg.Epochs = 1
	cfg.Hidden = 8
	cfg.Mode = FeatPlacementOnly
	cm, err := Train(train, val, MetricProcLatency, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(cm)
	if err != nil {
		t.Fatal(err)
	}
	var back CostModel
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Feat.Mode != FeatPlacementOnly {
		t.Fatalf("feature mode %v, want %v", back.Feat.Mode, FeatPlacementOnly)
	}
}

func TestParseMetricAndFeatureMode(t *testing.T) {
	for _, m := range AllMetrics() {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMetric(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMetric("nope"); err == nil {
		t.Error("ParseMetric accepted garbage")
	}
	for _, fm := range []FeatureMode{FeatFull, FeatPlacementOnly, FeatQueryOnly} {
		got, err := ParseFeatureMode(fm.String())
		if err != nil || got != fm {
			t.Errorf("ParseFeatureMode(%q) = %v, %v", fm.String(), got, err)
		}
	}
	if _, err := ParseFeatureMode("nope"); err == nil {
		t.Error("ParseFeatureMode accepted garbage")
	}
}

func TestUnmarshalRejectsCorruptModels(t *testing.T) {
	cases := map[string]struct {
		data string
		into func() json.Unmarshaler
	}{
		"unknown metric": {
			data: `{"metric":"vibes","feature_mode":"full","net":null}`,
			into: func() json.Unmarshaler { return &CostModel{} },
		},
		"unknown feature mode": {
			data: `{"metric":"throughput","feature_mode":"psychic","net":null}`,
			into: func() json.Unmarshaler { return &CostModel{} },
		},
		"missing net": {
			data: `{"metric":"throughput","feature_mode":"full"}`,
			into: func() json.Unmarshaler { return &CostModel{} },
		},
		"empty ensemble": {
			data: `{"metric":"throughput","members":[]}`,
			into: func() json.Unmarshaler { return &Ensemble{} },
		},
		"null member": {
			data: `{"metric":"throughput","members":[null]}`,
			into: func() json.Unmarshaler { return &Ensemble{} },
		},
		"predictor with no ensembles": {
			data: `{}`,
			into: func() json.Unmarshaler { return &Predictor{} },
		},
	}
	for name, tc := range cases {
		if err := tc.into().UnmarshalJSON([]byte(tc.data)); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

func TestUnmarshalRejectsmetricMismatch(t *testing.T) {
	pred := trainTinyPredictor(t)
	member, err := json.Marshal(pred.Throughput.Models[0])
	if err != nil {
		t.Fatal(err)
	}
	// An ensemble claiming proc-latency but holding a throughput member.
	bad := []byte(`{"metric":"proc-latency","members":[` + string(member) + `]}`)
	var e Ensemble
	if err := json.Unmarshal(bad, &e); err == nil {
		t.Error("metric-mismatched ensemble accepted")
	}
	// A predictor with a throughput ensemble in the success slot.
	ens, err := json.Marshal(pred.Throughput)
	if err != nil {
		t.Fatal(err)
	}
	var pr Predictor
	if err := json.Unmarshal([]byte(`{"success":`+string(ens)+`}`), &pr); err == nil {
		t.Error("slot-mismatched predictor accepted")
	}
}

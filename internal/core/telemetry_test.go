package core

import (
	"sync"
	"testing"

	"costream/internal/sim"
)

// TestTrainObserverEpochStats checks the per-epoch telemetry hook: one
// record per epoch per ensemble member, correctly attributed, with
// plausible losses and durations, and with no effect on the trained
// weights.
func TestTrainObserverEpochStats(t *testing.T) {
	c := testCorpus(t)
	train, val, _ := c.Split(0.8, 0.1, 4)
	cfg := fastTrainConfig(8)
	cfg.Epochs = 3

	var mu sync.Mutex
	var recs []EpochStats
	obsCfg := cfg
	obsCfg.Observer = func(s EpochStats) {
		mu.Lock()
		recs = append(recs, s)
		mu.Unlock()
	}
	const k = 2
	observed, err := TrainEnsemble(train, val, MetricThroughput, obsCfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != k*cfg.Epochs {
		t.Fatalf("%d epoch records, want %d", len(recs), k*cfg.Epochs)
	}
	perMember := map[int]int{}
	for _, r := range recs {
		if r.Metric != "throughput" {
			t.Errorf("record metric %q", r.Metric)
		}
		if r.Member < 0 || r.Member >= k {
			t.Errorf("record member %d out of range", r.Member)
		}
		if r.Epoch != perMember[r.Member] {
			t.Errorf("member %d epoch %d out of order (want %d)", r.Member, r.Epoch, perMember[r.Member])
		}
		perMember[r.Member]++
		if !r.HasVal {
			t.Errorf("member %d epoch %d: HasVal false with a validation split", r.Member, r.Epoch)
		}
		if r.TrainLoss <= 0 || r.ValLoss <= 0 {
			t.Errorf("member %d epoch %d: losses %g/%g", r.Member, r.Epoch, r.TrainLoss, r.ValLoss)
		}
		if r.DurationNS <= 0 {
			t.Errorf("member %d epoch %d: duration %d", r.Member, r.Epoch, r.DurationNS)
		}
	}
	for m := 0; m < k; m++ {
		if perMember[m] != cfg.Epochs {
			t.Errorf("member %d has %d records, want %d", m, perMember[m], cfg.Epochs)
		}
	}

	// The observer is purely observational: weights match a plain run.
	plain, err := TrainEnsemble(train, val, MetricThroughput, cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	tr := c.Traces[0]
	want, err := plain.PredictValue(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		t.Fatal(err)
	}
	got, err := observed.PredictValue(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("observer changed training: prediction %g != %g", got, want)
	}
}

// TestPredictBatchRecordsInferenceMetrics checks the batched-inference
// histograms in the default registry accumulate per candidate.
func TestPredictBatchRecordsInferenceMetrics(t *testing.T) {
	c := testCorpus(t)
	train, val, _ := c.Split(0.8, 0.1, 4)
	cfg := fastTrainConfig(8)
	cfg.Epochs = 2
	pr, err := TrainPredictor(train, val, PredictorConfig{Train: cfg, EnsembleSize: 1, Metrics: []Metric{MetricThroughput}})
	if err != nil {
		t.Fatal(err)
	}
	met := inferMet()
	cands0 := met.candidates.Value()
	featN0 := met.featurizeSeconds.Count()
	tr := c.Traces[0]
	placements := []sim.Placement{tr.Placement, tr.Placement}
	if _, err := pr.PredictBatch(tr.Query, tr.Cluster, placements); err != nil {
		t.Fatal(err)
	}
	if got := met.candidates.Value() - cands0; got != int64(len(placements)) {
		t.Errorf("candidate counter moved %d, want %d", got, len(placements))
	}
	if got := met.featurizeSeconds.Count() - featN0; got != 1 {
		t.Errorf("featurize histogram moved %d, want 1", got)
	}
}

package core

import (
	"math"
	"sync"
	"testing"

	"costream/internal/dataset"
	"costream/internal/gnn"
	"costream/internal/sim"
	"costream/internal/stream"
	"costream/internal/workload"
)

// testCorpus builds a small shared corpus once; tests slice it as needed.
var (
	corpusOnce sync.Once
	corpus     *dataset.Corpus
	corpusErr  error
)

func testCorpus(t testing.TB) *dataset.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		simCfg := sim.DefaultConfig()
		simCfg.DurationS, simCfg.WarmupS = 30, 5
		corpus, corpusErr = dataset.Build(dataset.BuildConfig{
			N:    400,
			Seed: 1234,
			Gen:  workload.DefaultConfig(1234),
			Sim:  simCfg,
		})
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpus
}

func fastTrainConfig(seed int64) TrainConfig {
	cfg := DefaultTrainConfig(seed)
	cfg.Epochs = 12
	cfg.Patience = 0
	cfg.Hidden = 24
	return cfg
}

func TestFeaturizerBuildsValidGraphs(t *testing.T) {
	c := testCorpus(t)
	f := Featurizer{}
	dims := f.FeatDims()
	for i, tr := range c.Traces[:100] {
		g, err := f.BuildGraph(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		nHosts := 0
		for _, nd := range g.Nodes {
			if want := dims[nd.Kind]; len(nd.Feat) != want {
				t.Fatalf("trace %d: %v node has %d features, want %d", i, nd.Kind, len(nd.Feat), want)
			}
			for _, v := range nd.Feat {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("trace %d: non-finite feature %v", i, v)
				}
			}
			if nd.Kind == gnn.KindHost {
				nHosts++
			}
		}
		// One host node per distinct placed host.
		distinct := map[int]bool{}
		for _, h := range tr.Placement {
			distinct[h] = true
		}
		if nHosts != len(distinct) {
			t.Fatalf("trace %d: %d host nodes, want %d", i, nHosts, len(distinct))
		}
		if len(g.PlaceEdges) != len(tr.Query.Ops) {
			t.Fatalf("trace %d: %d placement edges, want %d", i, len(g.PlaceEdges), len(tr.Query.Ops))
		}
	}
}

func TestFeatureModes(t *testing.T) {
	c := testCorpus(t)
	tr := c.Traces[0]

	qOnly := Featurizer{Mode: FeatQueryOnly}
	g, err := qOnly.BuildGraph(tr.Query, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range g.Nodes {
		if nd.Kind == gnn.KindHost {
			t.Fatal("query-only graph contains host nodes")
		}
	}
	if len(g.PlaceEdges) != 0 {
		t.Fatal("query-only graph contains placement edges")
	}

	pOnly := Featurizer{Mode: FeatPlacementOnly}
	g2, err := pOnly.BuildGraph(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range g2.Nodes {
		if nd.Kind == gnn.KindHost {
			if nd.Feat[0] != 1 || nd.Feat[1] != 0 || nd.Feat[2] != 0 || nd.Feat[3] != 0 {
				t.Fatalf("placement-only host features = %v, want constant", nd.Feat)
			}
		}
	}
	if _, err := pOnly.BuildGraph(tr.Query, nil, nil); err == nil {
		t.Error("placement featurization without cluster accepted")
	}
}

func TestNormalizationRanges(t *testing.T) {
	// Training-grid extremes map into ~[0, 1].
	checks := []struct {
		name     string
		fn       func(float64) float64
		lo, hi   float64
		loV, hiV float64
	}{
		{"rate", normRate, 20, 25600, 0, 1.01},
		{"cpu", normCPU, 50, 800, 0, 1.01},
		{"ram", normRAM, 1000, 32000, 0, 1.01},
		{"bw", normBW, 25, 10000, 0, 1.01},
		{"lat", normLat, 0.25, 160, 0, 1.01},
	}
	for _, ck := range checks {
		if v := ck.fn(ck.lo); math.Abs(v-ck.loV) > 0.02 {
			t.Errorf("%s(%v) = %v, want ~%v", ck.name, ck.lo, v, ck.loV)
		}
		if v := ck.fn(ck.hi); v < 0.9 || v > ck.hiV+0.12 {
			t.Errorf("%s(%v) = %v, want ~1", ck.name, ck.hi, v)
		}
	}
	if v := normSel(1); math.Abs(v-1) > 0.01 {
		t.Errorf("normSel(1) = %v, want ~1", v)
	}
	if v := normSel(1e-6); math.Abs(v) > 0.06 {
		t.Errorf("normSel(1e-6) = %v, want ~0", v)
	}
}

func TestTrainRegressionLearns(t *testing.T) {
	c := testCorpus(t)
	train, val, test := c.Split(0.7, 0.15, 99)
	cfg := fastTrainConfig(5)
	m, err := Train(train, val, MetricThroughput, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := EvaluateRegression(m, test, MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: with a tiny corpus and few epochs we still must beat a
	// wildly uninformed predictor. Throughput spans ~6 orders of
	// magnitude, so a median q-error below 8 indicates real learning.
	if s.Median > 8 {
		t.Errorf("throughput Q50 = %v, want < 8 (model not learning)", s.Median)
	}
	if s.N == 0 {
		t.Error("no test samples evaluated")
	}
}

func TestTrainClassificationLearns(t *testing.T) {
	c := testCorpus(t)
	train, val, test := c.Split(0.7, 0.15, 77)
	cfg := fastTrainConfig(6)
	m, err := Train(train, val, MetricSuccess, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The held-out split alone has too few failing traces for a stable
	// accuracy estimate at this corpus size; balance over the full corpus
	// (this is a learning sanity check, not a generalization experiment).
	_ = test
	balanced := c.Balanced(func(tr *dataset.Trace) bool { return tr.Metrics.Success }, 1)
	acc, err := EvaluateClassification(m, balanced, MetricSuccess)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.55 {
		t.Errorf("success accuracy on balanced set = %v, want > 0.55", acc)
	}
}

func TestPredictRawRanges(t *testing.T) {
	c := testCorpus(t)
	train, val, _ := c.Split(0.8, 0.1, 3)
	cfg := fastTrainConfig(7)
	cfg.Epochs = 4
	reg, err := Train(train, val, MetricProcLatency, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := Train(train, val, MetricBackpressure, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range c.Traces[:20] {
		v, err := reg.PredictTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("regression prediction %v out of range", v)
		}
		p, err := cls.PredictTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of [0,1]", p)
		}
	}
}

func TestEnsembleAggregation(t *testing.T) {
	c := testCorpus(t)
	train, val, _ := c.Split(0.8, 0.1, 4)
	cfg := fastTrainConfig(8)
	cfg.Epochs = 4
	e, err := TrainEnsemble(train, val, MetricThroughput, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Models) != 3 {
		t.Fatalf("ensemble size %d, want 3", len(e.Models))
	}
	tr := c.Traces[0]
	mean, err := e.PredictValue(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, m := range e.Models {
		v, _ := m.PredictTrace(tr)
		sum += v
	}
	if math.Abs(mean-sum/3) > 1e-9 {
		t.Errorf("ensemble mean %v != member mean %v", mean, sum/3)
	}
	if _, err := e.PredictLabel(tr.Query, tr.Cluster, tr.Placement); err == nil {
		t.Error("PredictLabel on regression ensemble accepted")
	}
	if _, err := TrainEnsemble(train, val, MetricThroughput, cfg, 0); err == nil {
		t.Error("zero ensemble size accepted")
	}
}

func TestEnsembleMajorityVote(t *testing.T) {
	c := testCorpus(t)
	train, val, _ := c.Split(0.8, 0.1, 5)
	cfg := fastTrainConfig(9)
	cfg.Epochs = 4
	e, err := TrainEnsemble(train, val, MetricSuccess, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := c.Traces[0]
	label, err := e.PredictLabel(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		t.Fatal(err)
	}
	votes := 0
	for _, m := range e.Models {
		p, _ := m.PredictTrace(tr)
		if p > 0.5 {
			votes++
		}
	}
	if label != (votes*2 > 3) {
		t.Errorf("majority vote mismatch: label=%v votes=%d", label, votes)
	}
	if _, err := e.PredictValue(tr.Query, tr.Cluster, tr.Placement); err == nil {
		t.Error("PredictValue on classification ensemble accepted")
	}
}

func TestFineTuneImprovesOnNewPattern(t *testing.T) {
	c := testCorpus(t)
	train, val, _ := c.Split(0.8, 0.1, 6)
	cfg := fastTrainConfig(10)
	m, err := Train(train, val, MetricThroughput, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Build a filter-chain corpus (unseen pattern).
	simCfg := sim.DefaultConfig()
	simCfg.DurationS, simCfg.WarmupS = 30, 5
	chains, err := dataset.Build(dataset.BuildConfig{
		N: 120, Seed: 555, Gen: workload.DefaultConfig(555), Sim: simCfg,
		QueryFn: func(g *workload.Generator, i int) *stream.Query {
			return g.FilterChain(2 + i%3)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ftTrain, _, ftTest := chains.Split(0.7, 0, 7)
	before, err := EvaluateRegression(m, ftTest, MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	ftCfg := cfg
	ftCfg.Epochs = 10
	ftCfg.LR = 1e-3
	if err := m.FineTune(ftTrain, ftCfg); err != nil {
		t.Fatal(err)
	}
	after, err := EvaluateRegression(m, ftTest, MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if after.Median > before.Median*1.5 {
		t.Errorf("fine-tuning degraded Q50 badly: %v -> %v", before.Median, after.Median)
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	c := testCorpus(t)
	train, val, _ := c.Split(0.8, 0.1, 8)
	bad := fastTrainConfig(1)
	bad.Epochs = 0
	if _, err := Train(train, val, MetricThroughput, bad); err == nil {
		t.Error("zero epochs accepted")
	}
	empty := &dataset.Corpus{}
	if _, err := Train(empty, nil, MetricThroughput, fastTrainConfig(1)); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestEvaluateMetricKindMismatch(t *testing.T) {
	c := testCorpus(t)
	train, val, _ := c.Split(0.8, 0.1, 9)
	cfg := fastTrainConfig(11)
	cfg.Epochs = 2
	m, err := Train(train, val, MetricThroughput, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateRegression(m, c, MetricSuccess); err == nil {
		t.Error("EvaluateRegression on classification metric accepted")
	}
	if _, err := EvaluateClassification(m, c, MetricThroughput); err == nil {
		t.Error("EvaluateClassification on regression metric accepted")
	}
}

func TestMetricHelpers(t *testing.T) {
	mt := &sim.Metrics{ThroughputTPS: 5, ProcLatencyMS: 7, E2ELatencyMS: 9, Backpressured: true, Success: false}
	if MetricThroughput.Value(mt) != 5 || MetricProcLatency.Value(mt) != 7 || MetricE2ELatency.Value(mt) != 9 {
		t.Error("metric Value extraction wrong")
	}
	if !MetricBackpressure.Label(mt) || MetricSuccess.Label(mt) {
		t.Error("metric Label extraction wrong")
	}
	for _, m := range AllMetrics() {
		if m.String() == "" {
			t.Error("empty metric name")
		}
	}
	if !MetricThroughput.IsRegression() || MetricSuccess.IsRegression() {
		t.Error("IsRegression wrong")
	}
}

func TestPredictorSanityDefaults(t *testing.T) {
	c := testCorpus(t)
	train, val, _ := c.Split(0.8, 0.1, 10)
	cfg := PredictorConfig{
		Train:        fastTrainConfig(12),
		EnsembleSize: 1,
		Metrics:      []Metric{MetricProcLatency},
	}
	cfg.Train.Epochs = 3
	pr, err := TrainPredictor(train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := c.Traces[0]
	pc, err := pr.PredictPlacement(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if !pc.Success || pc.Backpressured {
		t.Error("missing classifiers must default to optimistic sanity values")
	}
	if pc.ProcLatencyMS < 0 {
		t.Error("negative latency prediction")
	}
}

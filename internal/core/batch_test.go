package core

import (
	"math/rand"
	"testing"

	"costream/internal/placement"
	"costream/internal/sim"
)

// trainedBatchPredictor trains a small full predictor once for the batch
// equivalence tests.
func trainedBatchPredictor(t *testing.T) *Predictor {
	t.Helper()
	c := testCorpus(t)
	train, val, _ := c.Split(0.8, 0.1, 21)
	cfg := PredictorConfig{Train: fastTrainConfig(31), EnsembleSize: 2}
	cfg.Train.Epochs = 3
	pr, err := TrainPredictor(train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestPredictBatchMatchesPredictPlacement is the batch-path equivalence
// guarantee: scoring candidates through PredictBatch must reproduce the
// per-candidate PredictPlacement outputs exactly, for all five metrics.
func TestPredictBatchMatchesPredictPlacement(t *testing.T) {
	pr := trainedBatchPredictor(t)
	c := testCorpus(t)

	// Collect (query, cluster) pairs and several candidates each by
	// re-drawing placements from the corpus generator's own clusters.
	rng := rand.New(rand.NewSource(77))
	for ti, tr := range c.Traces[:8] {
		cands := placement.Enumerate(rng, tr.Query, tr.Cluster, 12)
		if len(cands) == 0 {
			t.Fatalf("trace %d: no candidates", ti)
		}
		batch, err := pr.PredictBatch(tr.Query, tr.Cluster, cands)
		if err != nil {
			t.Fatalf("trace %d: %v", ti, err)
		}
		if len(batch) != len(cands) {
			t.Fatalf("trace %d: %d batch results for %d candidates", ti, len(batch), len(cands))
		}
		for i, p := range cands {
			single, err := pr.PredictPlacement(tr.Query, tr.Cluster, p)
			if err != nil {
				t.Fatalf("trace %d candidate %d: %v", ti, i, err)
			}
			if batch[i] != single {
				t.Errorf("trace %d candidate %d: batch %+v != single %+v", ti, i, batch[i], single)
			}
		}
	}
}

// TestBatchFeaturizerMatchesBuildGraph checks graph-level equivalence,
// including host node ordering and shared feature values.
func TestBatchFeaturizerMatchesBuildGraph(t *testing.T) {
	c := testCorpus(t)
	rng := rand.New(rand.NewSource(78))
	for _, mode := range []FeatureMode{FeatFull, FeatPlacementOnly, FeatQueryOnly} {
		f := Featurizer{Mode: mode}
		tr := c.Traces[3]
		bf, err := f.NewBatch(tr.Query, tr.Cluster)
		if err != nil {
			t.Fatal(err)
		}
		cands := placement.Enumerate(rng, tr.Query, tr.Cluster, 6)
		for _, p := range cands {
			want, err := f.BuildGraph(tr.Query, tr.Cluster, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := bf.BuildGraph(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Nodes) != len(want.Nodes) {
				t.Fatalf("mode %v: %d nodes, want %d", mode, len(got.Nodes), len(want.Nodes))
			}
			for i := range want.Nodes {
				if got.Nodes[i].Kind != want.Nodes[i].Kind {
					t.Fatalf("mode %v node %d: kind %v != %v", mode, i, got.Nodes[i].Kind, want.Nodes[i].Kind)
				}
				for j := range want.Nodes[i].Feat {
					if got.Nodes[i].Feat[j] != want.Nodes[i].Feat[j] {
						t.Fatalf("mode %v node %d feat %d: %v != %v",
							mode, i, j, got.Nodes[i].Feat[j], want.Nodes[i].Feat[j])
					}
				}
			}
			if len(got.PlaceEdges) != len(want.PlaceEdges) {
				t.Fatalf("mode %v: place edges %d != %d", mode, len(got.PlaceEdges), len(want.PlaceEdges))
			}
			for i := range want.PlaceEdges {
				if got.PlaceEdges[i] != want.PlaceEdges[i] {
					t.Fatalf("mode %v edge %d: %v != %v", mode, i, got.PlaceEdges[i], want.PlaceEdges[i])
				}
			}
		}
	}
}

// TestPredictBatchRejectsInvalidCandidate: an invalid placement in the
// batch surfaces as an error (Optimize then isolates it via the
// per-candidate fallback).
func TestPredictBatchRejectsInvalidCandidate(t *testing.T) {
	pr := trainedBatchPredictor(t)
	c := testCorpus(t)
	tr := c.Traces[0]
	bad := make(sim.Placement, len(tr.Placement))
	for i := range bad {
		bad[i] = len(tr.Cluster.Hosts) + 5 // out of range
	}
	if _, err := pr.PredictBatch(tr.Query, tr.Cluster, []sim.Placement{tr.Placement, bad}); err == nil {
		t.Fatal("invalid candidate accepted")
	}
}

package core

import (
	"testing"

	"costream/internal/dataset"
	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// fakeTrace builds a minimal valid trace with the given outcome flags.
func fakeTrace(t *testing.T, success, backpressured bool) *dataset.Trace {
	t.Helper()
	b := stream.NewBuilder()
	s := b.AddSource(100, []stream.DataType{stream.TypeInt})
	k := b.AddSink()
	b.Chain(s, k)
	q := b.MustBuild()
	c := &hardware.Cluster{Hosts: []*hardware.Host{
		{ID: "h", CPU: 400, RAMMB: 8000, NetLatencyMS: 5, NetBandwidthMbps: 800},
	}}
	return &dataset.Trace{
		Query:     q,
		Cluster:   c,
		Placement: sim.Placement{0, 0},
		Metrics: &sim.Metrics{
			ThroughputTPS: 100, ProcLatencyMS: 10, E2ELatencyMS: 20,
			Success: success, Backpressured: backpressured,
		},
	}
}

func TestBuildSamplesRegressionSkipsFailures(t *testing.T) {
	c := &dataset.Corpus{Traces: []*dataset.Trace{
		fakeTrace(t, true, false),
		fakeTrace(t, false, true),
		fakeTrace(t, true, true),
	}}
	f := Featurizer{}
	samples, err := buildSamples(&f, c, MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("regression samples = %d, want 2 (failures excluded)", len(samples))
	}
	for _, s := range samples {
		if s.w != 1 {
			t.Error("regression samples must be unweighted")
		}
	}
}

func TestBuildSamplesClassificationWeights(t *testing.T) {
	// 3 successes, 1 failure: weights must be inverse-frequency.
	c := &dataset.Corpus{Traces: []*dataset.Trace{
		fakeTrace(t, true, false),
		fakeTrace(t, true, false),
		fakeTrace(t, true, false),
		fakeTrace(t, false, false),
	}}
	f := Featurizer{}
	samples, err := buildSamples(&f, c, MetricSuccess)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("classification samples = %d, want 4", len(samples))
	}
	var wPos, wNeg float64
	for _, s := range samples {
		if s.y == 1 {
			wPos = s.w
		} else {
			wNeg = s.w
		}
	}
	// wPos = 4/(2*3), wNeg = 4/(2*1).
	if wPos >= wNeg {
		t.Errorf("minority class weight %v must exceed majority %v", wNeg, wPos)
	}
	if wPos*3+wNeg*1 != 4 {
		t.Errorf("weights must preserve total mass: %v", wPos*3+wNeg)
	}
}

func TestTrainNoRegressionTargets(t *testing.T) {
	// Only failed traces: regression training must error out.
	c := &dataset.Corpus{Traces: []*dataset.Trace{fakeTrace(t, false, true)}}
	if _, err := Train(c, nil, MetricProcLatency, DefaultTrainConfig(1)); err == nil {
		t.Error("regression training on failure-only corpus accepted")
	}
}

func TestFineTuneEmptyCorpus(t *testing.T) {
	c := &dataset.Corpus{Traces: []*dataset.Trace{fakeTrace(t, true, false)}}
	cfg := DefaultTrainConfig(2)
	cfg.Epochs = 1
	m, err := Train(c, nil, MetricThroughput, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FineTune(&dataset.Corpus{}, cfg); err == nil {
		t.Error("fine-tuning on empty corpus accepted")
	}
}

func TestSnapshotRestore(t *testing.T) {
	params := [][]float64{{1, 2}, {3}}
	saved := snapshot(params)
	params[0][0] = 99
	restore(params, saved)
	if params[0][0] != 1 {
		t.Errorf("restore failed: %v", params[0][0])
	}
	saved[1][0] = 7
	copyInto(saved, params)
	if saved[1][0] != 3 {
		t.Errorf("copyInto failed: %v", saved[1][0])
	}
}

package core

import (
	"fmt"
	"sync"
	"testing"

	"costream/internal/gnn"
	"costream/internal/hardware"
	"costream/internal/sim"
	"costream/internal/stream"
)

// randomEnsemble builds an untrained ensemble straight from seeded GNNs —
// the stacked-path tests need real weights and real featurization, not a
// trained model, so they skip the minutes of fitting.
func randomEnsemble(t testing.TB, metric Metric, k int, traditional bool) *Ensemble {
	t.Helper()
	feat := Featurizer{}
	gcfg := gnn.DefaultConfig(feat.FeatDims())
	gcfg.Hidden = 16
	gcfg.Traditional = traditional
	models := make([]*CostModel, k)
	for i := range models {
		net, err := gnn.New(gcfg, int64(500+i))
		if err != nil {
			t.Fatal(err)
		}
		models[i] = &CostModel{Metric: metric, Feat: feat, Net: net}
	}
	return &Ensemble{Metric: metric, Models: models}
}

// perMemberValue is the historical PredictValue: each member featurizes
// and infers on its own. The stacked path must reproduce it bit for bit.
func perMemberValue(t *testing.T, e *Ensemble, q *stream.Query, c *hardware.Cluster, p sim.Placement) float64 {
	t.Helper()
	var sum float64
	for _, m := range e.Models {
		v, err := m.PredictRaw(q, c, p)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	return sum / float64(len(e.Models))
}

func perMemberLabel(t *testing.T, e *Ensemble, q *stream.Query, c *hardware.Cluster, p sim.Placement) bool {
	t.Helper()
	votes := 0
	for _, m := range e.Models {
		prob, err := m.PredictRaw(q, c, p)
		if err != nil {
			t.Fatal(err)
		}
		if prob > 0.5 {
			votes++
		}
	}
	return votes*2 > len(e.Models)
}

// TestStackedPredictValueMatchesPerMember pins the stacked ensemble path
// to the historical per-member path: bit-identical means over a slice of
// real corpus traces.
func TestStackedPredictValueMatchesPerMember(t *testing.T) {
	c := testCorpus(t)
	e := randomEnsemble(t, MetricThroughput, 3, false)
	for i, tr := range c.Traces[:40] {
		want := perMemberValue(t, e, tr.Query, tr.Cluster, tr.Placement)
		got, err := e.PredictValue(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trace %d: stacked %v != per-member %v", i, got, want)
		}
	}
	if e.paths.stackedCalls.Load() == 0 || e.paths.fallbackCalls.Load() != 0 {
		t.Fatalf("stacked=%d fallback=%d calls; want all stacked",
			e.paths.stackedCalls.Load(), e.paths.fallbackCalls.Load())
	}
}

// TestStackedPredictLabelMatchesPerMember does the same for a binary
// metric's majority vote.
func TestStackedPredictLabelMatchesPerMember(t *testing.T) {
	c := testCorpus(t)
	e := randomEnsemble(t, MetricSuccess, 3, false)
	for i, tr := range c.Traces[:40] {
		want := perMemberLabel(t, e, tr.Query, tr.Cluster, tr.Placement)
		got, err := e.PredictLabel(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trace %d: stacked %v != per-member %v", i, got, want)
		}
	}
}

// TestTraditionalEnsembleFallsBack checks that the Exp 7b ablation
// (traditional message passing) cannot stack, still predicts correctly,
// and is counted on the fallback path.
func TestTraditionalEnsembleFallsBack(t *testing.T) {
	c := testCorpus(t)
	e := randomEnsemble(t, MetricThroughput, 2, true)
	if st := e.stacked(); st.sm != nil {
		t.Fatal("traditional ensemble produced a weight stack")
	}
	tr := c.Traces[0]
	want := perMemberValue(t, e, tr.Query, tr.Cluster, tr.Placement)
	got, err := e.PredictValue(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fallback %v != per-member %v", got, want)
	}
	if e.paths.fallbackCalls.Load() == 0 {
		t.Fatal("fallback path not counted")
	}
}

// TestPredictBatchStackedMatchesPerMember pins the batched scoring path —
// the serve and search hot path — to the per-member reference.
func TestPredictBatchStackedMatchesPerMember(t *testing.T) {
	c := testCorpus(t)
	pr := &Predictor{
		Throughput: randomEnsemble(t, MetricThroughput, 3, false),
		Success:    randomEnsemble(t, MetricSuccess, 3, false),
	}
	tr := c.Traces[0]
	cands := []sim.Placement{tr.Placement, tr.Placement, tr.Placement}
	out, err := pr.PredictBatch(tr.Query, tr.Cluster, cands)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range cands {
		if want := perMemberValue(t, pr.Throughput, tr.Query, tr.Cluster, p); out[i].ThroughputTPS != want {
			t.Fatalf("candidate %d: batch throughput %v != per-member %v", i, out[i].ThroughputTPS, want)
		}
		if want := perMemberLabel(t, pr.Success, tr.Query, tr.Cluster, p); out[i].Success != want {
			t.Fatalf("candidate %d: batch success %v != per-member %v", i, out[i].Success, want)
		}
	}
}

// TestInvalidateRebuildsStack checks that in-place weight updates become
// visible after Invalidate (and, implicitly, that the stack holds copies).
func TestInvalidateRebuildsStack(t *testing.T) {
	c := testCorpus(t)
	e := randomEnsemble(t, MetricThroughput, 2, false)
	tr := c.Traces[0]
	before, err := e.PredictValue(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		t.Fatal(err)
	}
	params, _ := e.Models[0].Net.Params()
	for _, p := range params {
		for i := range p {
			p[i] *= 1.5
		}
	}
	e.Invalidate()
	after, err := e.PredictValue(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if want := perMemberValue(t, e, tr.Query, tr.Cluster, tr.Placement); after != want {
		t.Fatalf("post-invalidate stacked %v != per-member %v", after, want)
	}
	if after == before {
		t.Fatal("weight update had no effect after Invalidate")
	}
}

// TestPredictValueAllocsHoisted asserts the satellite fix: featurization
// happens once per PredictValue call, not once per member, so allocations
// barely grow with the ensemble size.
func TestPredictValueAllocsHoisted(t *testing.T) {
	c := testCorpus(t)
	tr := c.Traces[0]
	measure := func(e *Ensemble) float64 {
		if _, err := e.PredictValue(tr.Query, tr.Cluster, tr.Placement); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := e.PredictValue(tr.Query, tr.Cluster, tr.Placement); err != nil {
				t.Fatal(err)
			}
		})
	}
	a1 := measure(randomEnsemble(t, MetricThroughput, 1, false))
	a3 := measure(randomEnsemble(t, MetricThroughput, 3, false))
	// Per-member featurization would roughly triple the allocations; the
	// hoisted path shares one graph + plan across members (the stacked
	// kernels themselves are allocation-free steady state).
	if a3 > a1*1.3+4 {
		t.Fatalf("PredictValue allocs grew from %v (k=1) to %v (k=3); featurization not hoisted", a1, a3)
	}
}

// TestFast32QErrorDrift gates the float32 fast path on a golden corpus:
// the multiplicative drift of each prediction — the q-error between the
// float32 and float64 estimates, computed in strictly positive exp space
// (pred+1 = exp(raw) for the ExpM1 regression head) — must stay tiny.
func TestFast32QErrorDrift(t *testing.T) {
	c := testCorpus(t)
	e := randomEnsemble(t, MetricThroughput, 3, false)
	traces := c.Traces[:60]
	base := make([]float64, len(traces))
	for i, tr := range traces {
		v, err := e.PredictValue(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			t.Fatal(err)
		}
		base[i] = v
	}
	e.SetFast32(true)
	defer e.SetFast32(false)
	maxDrift := 1.0
	for i, tr := range traces {
		v, err := e.PredictValue(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			t.Fatal(err)
		}
		q := (v + 1) / (base[i] + 1)
		if q < 1 {
			q = 1 / q
		}
		if q > maxDrift {
			maxDrift = q
		}
	}
	// The raw outputs agree to ~1e-4 relative, so the exp-space q-error
	// drift stays within a fraction of a percent — far below the >=1.2
	// q-error resolution the paper's accuracy tables care about.
	if maxDrift > 1.01 {
		t.Fatalf("float32 q-error drift %v exceeds 1.01", maxDrift)
	}
}

// TestStackedConcurrentPredict exercises the shared weight stack and the
// pooled per-worker scratches from concurrent search/serve-style workers;
// run under -race in the CI race matrix.
func TestStackedConcurrentPredict(t *testing.T) {
	c := testCorpus(t)
	pr := &Predictor{
		Throughput: randomEnsemble(t, MetricThroughput, 3, false),
		Success:    randomEnsemble(t, MetricSuccess, 3, false),
	}
	tr := c.Traces[0]
	cands := []sim.Placement{tr.Placement, tr.Placement, tr.Placement}
	want, err := pr.Throughput.PredictValue(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for wkr := 0; wkr < 8; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for iter := 0; iter < 15; iter++ {
				switch wkr % 3 {
				case 0:
					got, err := pr.Throughput.PredictValue(tr.Query, tr.Cluster, tr.Placement)
					if err == nil && got != want {
						err = fmt.Errorf("concurrent PredictValue diverged: got %v want %v", got, want)
					}
					if err != nil {
						errs[wkr] = err
						return
					}
				case 1:
					if _, err := pr.PredictBatch(tr.Query, tr.Cluster, cands); err != nil {
						errs[wkr] = err
						return
					}
				default:
					if _, err := pr.Success.PredictLabel(tr.Query, tr.Cluster, tr.Placement); err != nil {
						errs[wkr] = err
						return
					}
				}
			}
		}(wkr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	stats := pr.InferencePathStats()
	if stats.StackedCalls == 0 || stats.StackedNanos == 0 {
		t.Fatalf("path stats %+v recorded no stacked work", stats)
	}
}

package core

import (
	"testing"

	"costream/internal/dataset"
	"costream/internal/gnn"
)

// subCorpus slices the shared test corpus so the parallel-training tests
// stay fast (also under -race).
func subCorpus(t testing.TB, n int) *dataset.Corpus {
	c := testCorpus(t)
	if len(c.Traces) < n {
		n = len(c.Traces)
	}
	return &dataset.Corpus{Traces: c.Traces[:n]}
}

func trainedParams(t *testing.T, metric Metric, workers int) [][]float64 {
	t.Helper()
	c := subCorpus(t, 120)
	train, val, _ := c.Split(0.8, 0.2, 7)
	cfg := DefaultTrainConfig(7)
	cfg.Epochs = 3
	cfg.Patience = 0
	cfg.Hidden = 12
	cfg.BatchSize = 8
	cfg.Workers = workers
	cm, err := Train(train, val, metric, cfg)
	if err != nil {
		t.Fatal(err)
	}
	params, _ := cm.Net.Params()
	return snapshot(params)
}

// TestTrainWorkerCountInvariance is the determinism contract of the
// data-parallel training engine: the trained weights must be bit-identical
// for every Workers value, for both loss heads. The CI -race run of this
// test also exercises the concurrent batch path for data races.
func TestTrainWorkerCountInvariance(t *testing.T) {
	for _, metric := range []Metric{MetricE2ELatency, MetricSuccess} {
		ref := trainedParams(t, metric, 1)
		for _, workers := range []int{2, 8} {
			got := trainedParams(t, metric, workers)
			if len(got) != len(ref) {
				t.Fatalf("%v: param group count %d != %d", metric, len(got), len(ref))
			}
			for k := range ref {
				for i := range ref[k] {
					if got[k][i] != ref[k][i] {
						t.Fatalf("%v: workers=%d param %d[%d] = %v, want %v (workers=1)",
							metric, workers, k, i, got[k][i], ref[k][i])
					}
				}
			}
		}
	}
}

// TestTrainEpochSteadyStateAllocs pins the arena guarantee on the real
// training path: once tapes, scratch and slot shadows are warm, processing
// one sample (forward + loss + backward on the full GNN) performs zero
// heap allocations.
func TestTrainEpochSteadyStateAllocs(t *testing.T) {
	c := subCorpus(t, 40)
	feat := Featurizer{}
	samples, err := buildSamples(&feat, c, MetricE2ELatency)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 4 {
		t.Skipf("only %d usable samples", len(samples))
	}
	samples = samples[:4]
	gcfg := gnn.DefaultConfig(feat.FeatDims())
	gcfg.Hidden = 16
	net, err := gnn.New(gcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := newTrainWorker()
	shadow := net.GradShadow()
	_, sg := shadow.Params()
	slot := &gradSlot{net: shadow, grads: sg}

	step := func() {
		// One chunk spanning all samples: forward + loss + backward per
		// sample with no reduction, isolating the tape/scratch path.
		w.runSlot(slot, 0, 1, MetricE2ELatency, samples, 0.25)
		if slot.err != nil {
			t.Fatal(slot.err)
		}
	}
	step() // warm the tape arena and scratch across all graph shapes
	step()
	if avg := testing.AllocsPerRun(20, step); avg > 0 {
		t.Errorf("steady-state allocs per %d-sample batch = %v, want 0", len(samples), avg)
	}
}

// TestMeanLossWorkerCountInvariance checks the parallel validation pass:
// identical result for any worker count, and identical to what the value
// was under the serial implementation (plain mean in sample order).
func TestMeanLossWorkerCountInvariance(t *testing.T) {
	c := subCorpus(t, 80)
	cfg := fastTrainConfig(3)
	cfg.Epochs = 2
	cfg.Workers = 2
	train, val, _ := c.Split(0.7, 0.3, 3)
	cm, err := Train(train, nil, MetricThroughput, cfg)
	if err != nil {
		t.Fatal(err)
	}
	valSamples, err := buildSamples(&cm.Feat, val, cm.Metric)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(n int) []*trainWorker {
		ws := make([]*trainWorker, n)
		for i := range ws {
			ws[i] = newTrainWorker()
		}
		return ws
	}
	ref, err := meanLoss(cm, valSamples, mk(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{3, 8} {
		got, err := meanLoss(cm, valSamples, mk(n))
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("meanLoss with %d workers = %v, want %v", n, got, ref)
		}
	}
}

// TestSetTrainBudget sanity-checks the process-wide budget: training
// still works with a budget of 1 and after resetting to the default.
func TestSetTrainBudget(t *testing.T) {
	SetTrainBudget(1)
	defer SetTrainBudget(0)
	c := subCorpus(t, 60)
	train, _, _ := c.Split(0.9, 0.05, 5)
	cfg := DefaultTrainConfig(5)
	cfg.Epochs = 1
	cfg.Patience = 0
	cfg.Hidden = 8
	cfg.Workers = 4
	if _, err := Train(train, nil, MetricProcLatency, cfg); err != nil {
		t.Fatal(err)
	}
}

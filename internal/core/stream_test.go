package core

import (
	"testing"

	"costream/internal/dataset"
	"costream/internal/sim"
	"costream/internal/workload"
)

func streamTestCorpus(t *testing.T, n int, seed int64) *dataset.Corpus {
	t.Helper()
	simCfg := sim.DefaultConfig()
	simCfg.DurationS, simCfg.WarmupS = 15, 3
	c, err := dataset.Build(dataset.BuildConfig{
		N:    n,
		Seed: seed,
		Gen:  workload.DefaultConfig(seed),
		Sim:  simCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTrainPredictorSourceMatchesCorpusPath is the streaming-training
// contract: training from a Source with SplitIndices yields bit-identical
// weights to the materialize-then-Split corpus path, for every metric
// kind and ensemble member.
func TestTrainPredictorSourceMatchesCorpusPath(t *testing.T) {
	c := streamTestCorpus(t, 40, 77)
	const seed = 5
	cfg := PredictorConfig{
		Train:        DefaultTrainConfig(seed),
		EnsembleSize: 2,
		Metrics:      []Metric{MetricThroughput, MetricSuccess},
	}
	cfg.Train.Epochs = 2
	cfg.Train.Hidden = 8

	train, val, _ := c.Split(0.8, 0.1, seed)
	want, err := TrainPredictor(train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}

	trainIdx, valIdx, _ := dataset.SplitIndices(c.Len(), 0.8, 0.1, seed)
	got, err := TrainPredictorSource(c, trainIdx, valIdx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, slot := range want.Ensembles() {
		if slot.Ensemble == nil {
			continue
		}
		var gotE *Ensemble
		for _, g := range got.Ensembles() {
			if g.Metric == slot.Metric {
				gotE = g.Ensemble
			}
		}
		if gotE == nil {
			t.Fatalf("source path trained no ensemble for %v", slot.Metric)
		}
		if len(gotE.Models) != len(slot.Ensemble.Models) {
			t.Fatalf("%v: %d members vs %d", slot.Metric, len(gotE.Models), len(slot.Ensemble.Models))
		}
		for mi := range slot.Ensemble.Models {
			wp, _ := slot.Ensemble.Models[mi].Net.Params()
			gp, _ := gotE.Models[mi].Net.Params()
			if len(wp) != len(gp) {
				t.Fatalf("%v member %d: param group count differs", slot.Metric, mi)
			}
			for k := range wp {
				for j := range wp[k] {
					if wp[k][j] != gp[k][j] {
						t.Fatalf("%v member %d: weight [%d][%d] differs: %v vs %v",
							slot.Metric, mi, k, j, wp[k][j], gp[k][j])
					}
				}
			}
		}
	}
}

// TestTrainPredictorSourceFromShardStore runs the streaming path against
// an actual on-disk shard store, proving the whole pipeline (StreamBuild
// -> Store.Iter -> featurize -> train) is equivalent to in-memory
// training.
func TestTrainPredictorSourceFromShardStore(t *testing.T) {
	c := streamTestCorpus(t, 24, 78)
	simCfg := sim.DefaultConfig()
	simCfg.DurationS, simCfg.WarmupS = 15, 3
	st, err := dataset.StreamBuild(dataset.BuildConfig{
		N:    24,
		Seed: 78,
		Gen:  workload.DefaultConfig(78),
		Sim:  simCfg,
	}, dataset.StreamConfig{Dir: t.TempDir(), ShardSize: 7})
	if err != nil {
		t.Fatal(err)
	}

	cfg := PredictorConfig{
		Train:        DefaultTrainConfig(3),
		EnsembleSize: 1,
		Metrics:      []Metric{MetricProcLatency},
	}
	cfg.Train.Epochs = 2
	cfg.Train.Hidden = 8

	trainIdx, valIdx, _ := dataset.SplitIndices(24, 0.8, 0.1, 3)
	fromStore, err := TrainPredictorSource(st, trainIdx, valIdx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fromMem, err := TrainPredictorSource(c, trainIdx, valIdx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wp, _ := fromMem.ProcLatency.Models[0].Net.Params()
	gp, _ := fromStore.ProcLatency.Models[0].Net.Params()
	for k := range wp {
		for j := range wp[k] {
			if wp[k][j] != gp[k][j] {
				t.Fatalf("shard-store training diverged from in-memory at [%d][%d]", k, j)
			}
		}
	}
}

// TestFeaturizeSourceRejectsBadIndices: overlapping or out-of-range index
// sets are build bugs and must fail loudly.
func TestFeaturizeSourceRejectsBadIndices(t *testing.T) {
	c := streamTestCorpus(t, 6, 79)
	feat := Featurizer{}
	if _, err := featurizeSource(&feat, c, []int{0, 1}, []int{1, 2}); err == nil {
		t.Error("overlapping index sets accepted")
	}
	if _, err := featurizeSource(&feat, c, []int{0, 99}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// TestEvaluateSourceMatchesCorpus: the streaming eval paths agree with
// the corpus paths they generalize.
func TestEvaluateSourceMatchesCorpus(t *testing.T) {
	c := streamTestCorpus(t, 30, 80)
	cfg := DefaultTrainConfig(1)
	cfg.Epochs = 2
	cfg.Hidden = 8
	train, val, _ := c.Split(0.8, 0.1, 1)
	reg, err := Train(train, val, MetricThroughput, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := Train(train, val, MetricSuccess, cfg)
	if err != nil {
		t.Fatal(err)
	}

	wantSum, err := EvaluateRegression(reg, c, MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	gotSum, err := EvaluateRegressionSource(reg, c, MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if wantSum != gotSum {
		t.Fatalf("regression eval differs: %+v vs %+v", wantSum, gotSum)
	}

	bal := c.Balanced(func(tr *dataset.Trace) bool { return MetricSuccess.Label(tr.Metrics) }, 9)
	if bal.Len() > 0 {
		wantAcc, err := EvaluateClassification(cls, bal, MetricSuccess)
		if err != nil {
			t.Fatal(err)
		}
		gotAcc, n, err := EvaluateClassificationBalancedSource(cls, c, MetricSuccess, 9)
		if err != nil {
			t.Fatal(err)
		}
		if n != bal.Len() || wantAcc != gotAcc {
			t.Fatalf("balanced eval differs: acc %v (n=%d) vs %v (n=%d)", wantAcc, bal.Len(), gotAcc, n)
		}
	}
}

package flatvec

import (
	"math/rand"
	"testing"

	"costream/internal/gbdt"
	"costream/internal/placement"
)

// TestPredictBatchMatchesPredictPlacement: the baseline's batch path must
// reproduce per-candidate PredictPlacement outputs exactly, despite the
// shared query-prefix featurization.
func TestPredictBatchMatchesPredictPlacement(t *testing.T) {
	c := testCorpus(t)
	train, _, _ := c.Split(0.9, 0, 19)
	pr, err := TrainPredictor(train, gbdt.DefaultConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	for ti, tr := range c.Traces[:6] {
		cands := placement.Enumerate(rng, tr.Query, tr.Cluster, 10)
		if len(cands) == 0 {
			t.Fatalf("trace %d: no candidates", ti)
		}
		batch, err := pr.PredictBatch(tr.Query, tr.Cluster, cands)
		if err != nil {
			t.Fatalf("trace %d: %v", ti, err)
		}
		for i, p := range cands {
			single, err := pr.PredictPlacement(tr.Query, tr.Cluster, p)
			if err != nil {
				t.Fatalf("trace %d candidate %d: %v", ti, i, err)
			}
			if batch[i] != single {
				t.Errorf("trace %d candidate %d: batch %+v != single %+v", ti, i, batch[i], single)
			}
		}
	}
}

// TestFeaturizeSplitConsistency: the refactored query-prefix /
// placement-suffix split reassembles into exactly the documented Dim
// entries with the prefix unchanged across candidates.
func TestFeaturizeSplitConsistency(t *testing.T) {
	c := testCorpus(t)
	tr := c.Traces[0]
	prefix, err := queryFeatures(tr.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(prefix) != queryDim {
		t.Fatalf("prefix dim %d, want %d", len(prefix), queryDim)
	}
	full, err := Featurize(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != Dim {
		t.Fatalf("full dim %d, want %d", len(full), Dim)
	}
	for i := range prefix {
		if full[i] != prefix[i] {
			t.Errorf("entry %d: full %v != prefix %v", i, full[i], prefix[i])
		}
	}
}

package flatvec

import (
	"math"
	"sync"
	"testing"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/gbdt"
	"costream/internal/sim"
	"costream/internal/workload"
)

var (
	corpusOnce sync.Once
	corpus     *dataset.Corpus
	corpusErr  error
)

func testCorpus(t *testing.T) *dataset.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		simCfg := sim.DefaultConfig()
		simCfg.DurationS, simCfg.WarmupS = 30, 5
		corpus, corpusErr = dataset.Build(dataset.BuildConfig{
			N: 350, Seed: 42, Gen: workload.DefaultConfig(42), Sim: simCfg,
		})
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpus
}

func TestFeaturizeDimAndFiniteness(t *testing.T) {
	c := testCorpus(t)
	for i, tr := range c.Traces[:80] {
		x, err := Featurize(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		if len(x) != Dim {
			t.Fatalf("trace %d: dim %d, want %d", i, len(x), Dim)
		}
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("trace %d: feature %d is %v", i, j, v)
			}
		}
	}
}

func TestFeaturizeIgnoresMappingStructure(t *testing.T) {
	// The flat vector cannot distinguish two placements that use the same
	// host set with the same co-location histogram - that is the point of
	// the baseline. Build such a pair explicitly.
	c := testCorpus(t)
	var tr *dataset.Trace
	for _, cand := range c.Traces {
		if len(cand.Query.Ops) >= 4 && len(cand.Cluster.Hosts) >= 2 {
			tr = cand
			break
		}
	}
	if tr == nil {
		t.Skip("no suitable trace")
	}
	p1 := append(sim.Placement(nil), tr.Placement...)
	// Swap the hosts of two operators placed on different hosts; if the
	// two ops swap between exactly two hosts, the histogram is identical.
	a, b := -1, -1
	for i := range p1 {
		for j := i + 1; j < len(p1); j++ {
			if p1[i] != p1[j] {
				a, b = i, j
			}
		}
	}
	if a < 0 {
		t.Skip("fully co-located trace")
	}
	p2 := append(sim.Placement(nil), p1...)
	p2[a], p2[b] = p1[b], p1[a]
	x1, err := Featurize(tr.Query, tr.Cluster, p1)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := Featurize(tr.Query, tr.Cluster, p2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("feature %d differs (%v vs %v); flat vector should be mapping-blind here", i, x1[i], x2[i])
		}
	}
}

func TestTrainRegressionAndPredict(t *testing.T) {
	c := testCorpus(t)
	train, _, test := c.Split(0.85, 0, 7)
	m, err := Train(train, core.MetricThroughput, gbdt.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.EvaluateRegression(m, test, core.MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if s.N == 0 {
		t.Fatal("no evaluations")
	}
	// The baseline learns coarse trends: sanity bound only.
	if s.Median > 200 {
		t.Errorf("flat vector Q50 = %v, implausibly bad", s.Median)
	}
	for _, tr := range test.Traces[:10] {
		v, err := m.PredictTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("prediction %v invalid", v)
		}
	}
}

func TestTrainClassification(t *testing.T) {
	c := testCorpus(t)
	m, err := Train(c, core.MetricSuccess, gbdt.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range c.Traces[:20] {
		p, err := m.PredictTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
	bal := c.Balanced(func(tr *dataset.Trace) bool { return tr.Metrics.Success }, 3)
	acc, err := core.EvaluateClassification(m, bal, core.MetricSuccess)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Errorf("baseline accuracy %v below coin flip on its training data", acc)
	}
}

func TestTrainPredictorImplementsInterface(t *testing.T) {
	c := testCorpus(t)
	train, _, _ := c.Split(0.9, 0, 11)
	pr, err := TrainPredictor(train, gbdt.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	tr := c.Traces[0]
	pc, err := pr.PredictPlacement(tr.Query, tr.Cluster, tr.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if pc.ThroughputTPS < 0 || pc.ProcLatencyMS < 0 || pc.E2ELatencyMS < 0 {
		t.Errorf("negative cost predictions: %+v", pc)
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	if _, err := Train(&dataset.Corpus{}, core.MetricThroughput, gbdt.DefaultConfig(1)); err == nil {
		t.Error("empty corpus accepted")
	}
}

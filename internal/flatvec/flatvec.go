// Package flatvec implements the paper's baseline cost model: the
// flat-vector featurization of Ganapathi et al. [16] extended with
// streaming and placement information, trained with gradient-boosted trees
// (substituting LightGBM [34]).
//
// The defining limitation — and the reason COSTREAM beats it — is that the
// feature vector has no structural encoding: operator properties are
// aggregated into fixed slots and hardware is summarized over the cluster,
// so the model cannot reason about which operator runs on which host.
package flatvec

import (
	"fmt"
	"math"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/gbdt"
	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
)

// Dim is the flat vector dimensionality.
const Dim = 33

// queryDim is the number of leading vector entries that depend only on
// the query (not on the cluster or placement).
const queryDim = 19

// Featurize encodes a (query, cluster, placement) triple into the flat
// vector. All aggregations are order-independent, mirroring the baseline's
// lack of structure.
func Featurize(q *stream.Query, c *hardware.Cluster, p sim.Placement) ([]float64, error) {
	prefix, err := queryFeatures(q)
	if err != nil {
		return nil, err
	}
	return placementFeatures(prefix, c, p)
}

// queryFeatures computes the placement-invariant query prefix of the flat
// vector. Batch scoring computes it once and reuses it for every
// candidate.
func queryFeatures(q *stream.Query) ([]float64, error) {
	rates, err := q.DeriveRates()
	if err != nil {
		return nil, err
	}
	v := make([]float64, 0, Dim)

	// Operator counts (5).
	for _, t := range []stream.OpType{stream.OpSource, stream.OpFilter, stream.OpJoin, stream.OpAggregate, stream.OpSink} {
		v = append(v, float64(q.CountType(t)))
	}

	// Source characteristics (4): sum and max event rate (log), mean
	// tuple width, mean field bytes.
	var sumRate, maxRate, width, bytes, nSrc float64
	for _, i := range q.Sources() {
		op := q.Ops[i]
		sumRate += op.EventRate
		if op.EventRate > maxRate {
			maxRate = op.EventRate
		}
		width += float64(len(op.FieldTypes))
		bytes += stream.AvgFieldBytes(op.FieldTypes)
		nSrc++
	}
	v = append(v, math.Log1p(sumRate), math.Log1p(maxRate), width/nSrc/10, bytes/nSrc/32)

	// Filter aggregates (3): product selectivity (log), min selectivity
	// (log), fraction of string-typed predicates.
	prodSel, minSel, strFrac, nFil := 1.0, 1.0, 0.0, 0.0
	for _, op := range q.Ops {
		if op.Type != stream.OpFilter {
			continue
		}
		nFil++
		prodSel *= op.Selectivity
		if op.Selectivity < minSel {
			minSel = op.Selectivity
		}
		if op.LiteralType == stream.TypeString {
			strFrac++
		}
	}
	if nFil > 0 {
		strFrac /= nFil
	}
	v = append(v, logSel(prodSel), logSel(minSel), strFrac)

	// Join aggregates (3): mean selectivity (log), mean window extent in
	// tuples (log, using upstream rates), fraction of string keys.
	var jSel, jWin, jStr, nJoin float64
	for i, op := range q.Ops {
		if op.Type != stream.OpJoin {
			continue
		}
		nJoin++
		jSel += logSel(op.Selectivity)
		var inRate float64
		for _, u := range q.Upstream(i) {
			inRate += rates.Out[u]
		}
		jWin += math.Log1p(op.Window.ExtentTuples(inRate / 2))
		if op.JoinKeyType == stream.TypeString {
			jStr++
		}
	}
	if nJoin > 0 {
		jSel /= nJoin
		jWin /= nJoin
		jStr /= nJoin
	}
	v = append(v, jSel, jWin, jStr)

	// Aggregation aggregates (4): count with group-by, mean selectivity,
	// mean window extent (log), fraction sliding.
	var aGB, aSel, aWin, aSlide, nAgg float64
	for i, op := range q.Ops {
		if op.Type != stream.OpAggregate {
			continue
		}
		nAgg++
		if op.HasGroupBy {
			aGB++
		}
		aSel += op.Selectivity
		var inRate float64
		for _, u := range q.Upstream(i) {
			inRate += rates.Out[u]
		}
		aWin += math.Log1p(op.Window.ExtentTuples(inRate))
		if op.Window.Type == stream.WindowSliding {
			aSlide++
		}
	}
	if nAgg > 0 {
		aSel /= nAgg
		aWin /= nAgg
		aSlide /= nAgg
	}
	v = append(v, aGB, aSel, aWin, aSlide)

	// Note: no derived per-operator or sink rates — the flat vector holds
	// only the query-level aggregates of [16]; composing rates through
	// joins and windows requires the structural encoding COSTREAM has.

	if len(v) != queryDim {
		return nil, fmt.Errorf("flatvec: query prefix has %d entries, want %d", len(v), queryDim)
	}
	return v, nil
}

// placementFeatures appends the cluster/placement summary to a copy of the
// query prefix, completing the flat vector.
func placementFeatures(prefix []float64, c *hardware.Cluster, p sim.Placement) ([]float64, error) {
	v := make([]float64, queryDim, Dim)
	copy(v, prefix)

	// Hardware summary (12): mean/min/max of the four features over the
	// hosts used by the placement — aggregate knowledge without the
	// operator-to-host mapping.
	used := map[int]bool{}
	for _, h := range p {
		used[h] = true
	}
	var cpus, rams, bws, lats []float64
	for h := range used {
		host := c.Hosts[h]
		cpus = append(cpus, host.CPU)
		rams = append(rams, host.RAMMB)
		bws = append(bws, host.NetBandwidthMbps)
		lats = append(lats, host.NetLatencyMS)
	}
	for _, vals := range [][]float64{cpus, rams, bws, lats} {
		mean, minV, maxV := summarize(vals)
		v = append(v, math.Log1p(mean), math.Log1p(minV), math.Log1p(maxV))
	}

	// Placement summary (2): number of distinct hosts, max co-location
	// degree. Structure beyond these scalars is lost.
	coloc := map[int]int{}
	maxColoc := 0
	for _, h := range p {
		coloc[h]++
		if coloc[h] > maxColoc {
			maxColoc = coloc[h]
		}
	}
	v = append(v, float64(len(used)), float64(maxColoc))

	if len(v) != Dim {
		return nil, fmt.Errorf("flatvec: feature vector has %d entries, want %d", len(v), Dim)
	}
	return v, nil
}

func logSel(s float64) float64 {
	return math.Log10(s+1e-6)/6 + 1
}

func summarize(vals []float64) (mean, min, max float64) {
	if len(vals) == 0 {
		return 0, 0, 0
	}
	min, max = vals[0], vals[0]
	for _, x := range vals {
		mean += x
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return mean / float64(len(vals)), min, max
}

// Model is one trained flat-vector baseline model for one metric.
type Model struct {
	Metric core.Metric
	reg    *gbdt.Regressor
	cls    *gbdt.Classifier
}

// Train fits the baseline for a metric on the corpus. Regression metrics
// are fitted in log1p space on successful traces, matching COSTREAM's
// target transform.
func Train(train *dataset.Corpus, metric core.Metric, cfg gbdt.Config) (*Model, error) {
	var X [][]float64
	var y []float64
	for _, tr := range train.Traces {
		if metric.IsRegression() && !tr.Metrics.Success {
			continue
		}
		x, err := Featurize(tr.Query, tr.Cluster, tr.Placement)
		if err != nil {
			return nil, err
		}
		X = append(X, x)
		if metric.IsRegression() {
			y = append(y, math.Log1p(metric.Value(tr.Metrics)))
		} else if metric.Label(tr.Metrics) {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	if len(X) == 0 {
		return nil, fmt.Errorf("flatvec: no usable traces for %v", metric)
	}
	m := &Model{Metric: metric}
	var err error
	if metric.IsRegression() {
		m.reg, err = gbdt.TrainRegressor(X, y, cfg)
	} else {
		m.cls, err = gbdt.TrainClassifier(X, y, cfg)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// PredictRaw returns the predicted cost value (regression) or positive
// probability (classification) for a placement.
func (m *Model) PredictRaw(q *stream.Query, c *hardware.Cluster, p sim.Placement) (float64, error) {
	x, err := Featurize(q, c, p)
	if err != nil {
		return 0, err
	}
	return m.predictVec(x), nil
}

// predictVec predicts from an already-featurized flat vector.
func (m *Model) predictVec(x []float64) float64 {
	if m.Metric.IsRegression() {
		v := math.Expm1(m.reg.Predict(x))
		if v < 0 {
			v = 0
		}
		return v
	}
	return m.cls.Predict(x)
}

// PredictTrace implements core.TracePredictor.
func (m *Model) PredictTrace(tr *dataset.Trace) (float64, error) {
	return m.PredictRaw(tr.Query, tr.Cluster, tr.Placement)
}

// Predictor bundles flat-vector models for all five metrics and implements
// placement.Predictor for the Exp 2a comparison.
type Predictor struct {
	Throughput   *Model
	ProcLatency  *Model
	E2ELatency   *Model
	Backpressure *Model
	Success      *Model
}

// TrainPredictor trains the baseline for all five metrics.
func TrainPredictor(train *dataset.Corpus, cfg gbdt.Config) (*Predictor, error) {
	pr := &Predictor{}
	for _, m := range core.AllMetrics() {
		mod, err := Train(train, m, cfg)
		if err != nil {
			return nil, err
		}
		switch m {
		case core.MetricThroughput:
			pr.Throughput = mod
		case core.MetricProcLatency:
			pr.ProcLatency = mod
		case core.MetricE2ELatency:
			pr.E2ELatency = mod
		case core.MetricBackpressure:
			pr.Backpressure = mod
		case core.MetricSuccess:
			pr.Success = mod
		}
	}
	return pr, nil
}

// PredictPlacement implements placement.Predictor.
func (pr *Predictor) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (placement.PredCosts, error) {
	var out placement.PredCosts
	var err error
	if out.ThroughputTPS, err = pr.Throughput.PredictRaw(q, c, p); err != nil {
		return out, err
	}
	if out.ProcLatencyMS, err = pr.ProcLatency.PredictRaw(q, c, p); err != nil {
		return out, err
	}
	if out.E2ELatencyMS, err = pr.E2ELatency.PredictRaw(q, c, p); err != nil {
		return out, err
	}
	bp, err := pr.Backpressure.PredictRaw(q, c, p)
	if err != nil {
		return out, err
	}
	out.Backpressured = bp > 0.5
	s, err := pr.Success.PredictRaw(q, c, p)
	if err != nil {
		return out, err
	}
	out.Success = s > 0.5
	return out, nil
}

// PredictBatch implements placement.BatchPredictor: the query-level
// feature prefix is computed once and shared across candidates, and each
// candidate is featurized once for all five metric models (instead of the
// five Featurize calls per candidate the per-metric PredictRaw path
// makes). Outputs match PredictPlacement exactly.
func (pr *Predictor) PredictBatch(q *stream.Query, c *hardware.Cluster, candidates []sim.Placement) ([]placement.PredCosts, error) {
	prefix, err := queryFeatures(q)
	if err != nil {
		return nil, err
	}
	out := make([]placement.PredCosts, len(candidates))
	for i, p := range candidates {
		x, err := placementFeatures(prefix, c, p)
		if err != nil {
			return nil, fmt.Errorf("flatvec: batch candidate %d: %w", i, err)
		}
		out[i] = placement.PredCosts{
			ThroughputTPS: pr.Throughput.predictVec(x),
			ProcLatencyMS: pr.ProcLatency.predictVec(x),
			E2ELatencyMS:  pr.E2ELatency.predictVec(x),
			Backpressured: pr.Backpressure.predictVec(x) > 0.5,
			Success:       pr.Success.predictVec(x) > 0.5,
		}
	}
	return out, nil
}

package gnn

import (
	"testing"

	"costream/internal/nn"
)

// TestForwardPlannedMatchesForward pins the planned/scratch pass to the
// plain Forward pass: bit-identical outputs, including when the tape and
// scratch are reused across differently shaped graphs.
func TestForwardPlannedMatchesForward(t *testing.T) {
	m := newTestModel(t, false)
	graphs := []*Graph{testGraph(0.1), testGraph(0.9), diamondGraph()}
	tape := nn.NewTape()
	scratch := NewScratch()
	for round := 0; round < 3; round++ { // reuse across rounds and graphs
		for gi, g := range graphs {
			ref := nn.NewTape()
			want, err := m.Forward(ref, g)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := NewPlan(g)
			if err != nil {
				t.Fatal(err)
			}
			tape.Reset()
			got, err := m.ForwardPlanned(tape, g, plan, scratch)
			if err != nil {
				t.Fatal(err)
			}
			if got.Data[0] != want.Data[0] {
				t.Fatalf("round %d graph %d: planned=%v forward=%v", round, gi, got.Data[0], want.Data[0])
			}
		}
	}
}

// diamondGraph exercises multi-parent phase-3 updates and a host with no
// placements left implicit.
func diamondGraph() *Graph {
	return &Graph{
		Nodes: []Node{
			{Kind: KindSource, Feat: []float64{0.3, 0.6}},
			{Kind: KindSource, Feat: []float64{0.8, 0.2}},
			{Kind: KindJoin, Feat: []float64{0.5, 0.5}},
			{Kind: KindSink, Feat: []float64{1}},
			{Kind: KindHost, Feat: []float64{0.9, 0.1, 0.4, 0.7}},
		},
		FlowEdges:  [][2]int{{0, 2}, {1, 2}, {2, 3}},
		PlaceEdges: [][2]int{{0, 4}, {1, 4}, {2, 4}, {3, 4}},
	}
}

// TestGradShadowSharesWeightsOwnsGrads checks the data-parallel gradient
// shadow: identical forward values (shared weights), private gradient
// accumulation, and parameter order aligned with the original model.
func TestGradShadowSharesWeightsOwnsGrads(t *testing.T) {
	m := newTestModel(t, false)
	shadow := m.GradShadow()
	g := testGraph(0.5)

	t1, t2 := nn.NewTape(), nn.NewTape()
	o1, err := m.Forward(t1, g)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := shadow.Forward(t2, g)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Data[0] != o2.Data[0] {
		t.Fatalf("shadow forward %v != original %v", o2.Data[0], o1.Data[0])
	}

	mp, mg := m.Params()
	sp, sg := shadow.Params()
	if len(mp) != len(sp) {
		t.Fatalf("param count %d != %d", len(sp), len(mp))
	}
	for k := range mp {
		if &mp[k][0] != &sp[k][0] {
			t.Fatalf("param slice %d not shared", k)
		}
		if &mg[k][0] == &sg[k][0] {
			t.Fatalf("grad slice %d shared, want private", k)
		}
	}

	// Backprop through the shadow: its grads fill, the original's stay 0.
	m.ZeroGrad()
	t2.Backward(nn.MSLELoss(t2, o2, 3))
	var shadowNonzero bool
	for k := range sg {
		for i := range sg[k] {
			if sg[k][i] != 0 {
				shadowNonzero = true
			}
			if mg[k][i] != 0 {
				t.Fatalf("original grad %d[%d] = %v, want 0", k, i, mg[k][i])
			}
		}
	}
	if !shadowNonzero {
		t.Fatal("no gradients accumulated in shadow")
	}
}

// TestInferenceTapeMatchesTrainingTape pins the gradient-free tape mode
// to the training tape on a full GNN pass.
func TestInferenceTapeMatchesTrainingTape(t *testing.T) {
	for _, trad := range []bool{false, true} {
		m := newTestModel(t, trad)
		g := testGraph(0.4)
		tt, it := nn.NewTape(), nn.NewInferenceTape()
		o1, err := m.Forward(tt, g)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := m.Forward(it, g)
		if err != nil {
			t.Fatal(err)
		}
		if o1.Data[0] != o2.Data[0] {
			t.Fatalf("traditional=%v: inference tape %v != training tape %v", trad, o2.Data[0], o1.Data[0])
		}
		if o2.Grad != nil {
			t.Fatal("inference tape node carries a gradient buffer")
		}
	}
}

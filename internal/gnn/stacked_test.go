package gnn

import (
	"math"
	"testing"
)

func newTestEnsemble(t *testing.T, k int) []*Model {
	t.Helper()
	cfg := DefaultConfig(testDims())
	cfg.Hidden = 8
	cfg.EncHidden, cfg.UpdHidden, cfg.OutHidden = 8, 8, 8
	models := make([]*Model, k)
	for m := range models {
		mod, err := New(cfg, int64(100+m))
		if err != nil {
			t.Fatal(err)
		}
		models[m] = mod
	}
	return models
}

// TestInferEnsembleMatchesInferPlanned pins the stacked one-pass kernels
// to per-member InferPlanned: bit-identical outputs, member for member,
// including when the scratch is reused across differently shaped graphs.
func TestInferEnsembleMatchesInferPlanned(t *testing.T) {
	models := newTestEnsemble(t, 3)
	sm, err := Stack(models)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*Graph{testGraph(0.1), testGraph(0.9), diamondGraph()}
	s := NewStackedScratch()
	out := make([]float64, sm.K())
	for round := 0; round < 3; round++ { // reuse across rounds and graphs
		for gi, g := range graphs {
			plan, err := NewPlan(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := sm.InferEnsemble(g, plan, s, out); err != nil {
				t.Fatal(err)
			}
			for m, mod := range models {
				want, err := mod.InferPlanned(g, plan)
				if err != nil {
					t.Fatal(err)
				}
				if out[m] != want {
					t.Fatalf("round %d graph %d member %d: stacked=%v planned=%v",
						round, gi, m, out[m], want)
				}
			}
		}
	}
}

// TestInferEnsembleNilScratch checks the convenience path without a
// caller-provided scratch.
func TestInferEnsembleNilScratch(t *testing.T) {
	models := newTestEnsemble(t, 2)
	sm, err := Stack(models)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(0.5)
	plan, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 2)
	if err := sm.InferEnsemble(g, plan, nil, out); err != nil {
		t.Fatal(err)
	}
	want, err := models[0].InferPlanned(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != want {
		t.Fatalf("nil-scratch stacked=%v planned=%v", out[0], want)
	}
}

// TestInferEnsemble32Tolerance checks the float32 fast path stays within
// the documented relative tolerance of the float64 reference on both
// precisions' stacked kernels.
func TestInferEnsemble32Tolerance(t *testing.T) {
	models := newTestEnsemble(t, 3)
	sm, err := Stack(models)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStackedScratch()
	for _, g := range []*Graph{testGraph(0.2), testGraph(0.8), diamondGraph()} {
		plan, err := NewPlan(g)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, sm.K())
		got := make([]float64, sm.K())
		if err := sm.InferEnsemble(g, plan, s, want); err != nil {
			t.Fatal(err)
		}
		if err := sm.InferEnsemble32(g, plan, s, got); err != nil {
			t.Fatal(err)
		}
		for m := range want {
			if math.Abs(got[m]-want[m]) > 1e-4*math.Max(1, math.Abs(want[m])) {
				t.Fatalf("member %d: float32 %v vs float64 %v", m, got[m], want[m])
			}
		}
	}
}

// TestStackRejectsMismatches checks architecture and mode validation.
func TestStackRejectsMismatches(t *testing.T) {
	if _, err := Stack(nil); err == nil {
		t.Fatal("stacking zero models should fail")
	}

	base := newTestEnsemble(t, 1)[0]

	cfgWide := DefaultConfig(testDims())
	cfgWide.Hidden = 16
	cfgWide.EncHidden, cfgWide.UpdHidden, cfgWide.OutHidden = 8, 8, 8
	wide, err := New(cfgWide, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stack([]*Model{base, wide}); err == nil {
		t.Fatal("stacking mismatched hidden sizes should fail")
	}

	cfgTrad := DefaultConfig(testDims())
	cfgTrad.Hidden = 8
	cfgTrad.EncHidden, cfgTrad.UpdHidden, cfgTrad.OutHidden = 8, 8, 8
	cfgTrad.Traditional = true
	trad, err := New(cfgTrad, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stack([]*Model{trad}); err == nil {
		t.Fatal("stacking traditional models should fail")
	}
}

// TestInferEnsembleRejectsBadInputs mirrors InferPlanned's per-node
// encoder checks and validates the output buffer length.
func TestInferEnsembleRejectsBadInputs(t *testing.T) {
	models := newTestEnsemble(t, 2)
	sm, err := Stack(models)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(0.5)
	plan, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.InferEnsemble(g, plan, nil, make([]float64, 1)); err == nil {
		t.Fatal("short output buffer accepted")
	}
	bad := testGraph(0.5)
	bad.Nodes[0].Feat = []float64{1} // encoder expects 2
	if err := sm.InferEnsemble(bad, plan, nil, make([]float64, 2)); err == nil {
		t.Fatal("wrong feature dimension accepted")
	}
}

// TestInferEnsembleAllocs checks the steady-state stacked pass allocates
// nothing once the scratch has grown.
func TestInferEnsembleAllocs(t *testing.T) {
	models := newTestEnsemble(t, 3)
	sm, err := Stack(models)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(0.5)
	plan, err := NewPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStackedScratch()
	out := make([]float64, sm.K())
	if err := sm.InferEnsemble(g, plan, s, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := sm.InferEnsemble(g, plan, s, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state InferEnsemble allocates %v times per call, want 0", allocs)
	}
	if err := sm.InferEnsemble32(g, plan, s, out); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(50, func() {
		if err := sm.InferEnsemble32(g, plan, s, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state InferEnsemble32 allocates %v times per call, want 0", allocs)
	}
}

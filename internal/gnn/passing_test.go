package gnn

import (
	"testing"

	"costream/internal/nn"
)

func TestTraditionalRoundsAffectOutput(t *testing.T) {
	dims := testDims()
	mk := func(rounds int) *Model {
		cfg := DefaultConfig(dims)
		cfg.Hidden, cfg.EncHidden, cfg.UpdHidden, cfg.OutHidden = 8, 8, 8, 8
		cfg.Traditional = true
		cfg.TraditionalRounds = rounds
		m, err := New(cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	g := testGraph(0.5)
	t1, t2 := nn.NewTape(), nn.NewTape()
	o1, err := mk(1).Forward(t1, g)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := mk(3).Forward(t2, g)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Data[0] == o2.Data[0] {
		t.Error("different round counts produced identical outputs")
	}
}

func TestTraditionalRoundsDefaulted(t *testing.T) {
	cfg := DefaultConfig(testDims())
	cfg.TraditionalRounds = 0
	m, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().TraditionalRounds != 3 {
		t.Errorf("rounds defaulted to %d, want 3", m.Config().TraditionalRounds)
	}
}

func TestDirectedPassingUsesAllThreePhases(t *testing.T) {
	// Zeroing the host features must still change the output relative to
	// removing the host entirely, because placement edges carry messages
	// in phases 1-2.
	m := newTestModel(t, false)
	withHosts := testGraph(0.5)
	zeroHostFeat := testGraph(0.5)
	for i := range zeroHostFeat.Nodes {
		if zeroHostFeat.Nodes[i].Kind == KindHost {
			zeroHostFeat.Nodes[i].Feat = []float64{0, 0, 0, 0}
		}
	}
	noHosts := &Graph{
		Nodes:     withHosts.Nodes[:3],
		FlowEdges: withHosts.FlowEdges,
	}
	t1, t2, t3 := nn.NewTape(), nn.NewTape(), nn.NewTape()
	o1, err := m.Forward(t1, withHosts)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := m.Forward(t2, zeroHostFeat)
	if err != nil {
		t.Fatal(err)
	}
	o3, err := m.Forward(t3, noHosts)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Data[0] == o2.Data[0] {
		t.Error("host features do not influence the prediction")
	}
	if o2.Data[0] == o3.Data[0] {
		t.Error("placement structure alone does not influence the prediction")
	}
}

func TestKindStringAndAllKinds(t *testing.T) {
	if len(AllKinds()) != int(numKinds) {
		t.Errorf("AllKinds lists %d kinds, want %d", len(AllKinds()), int(numKinds))
	}
	seen := map[string]bool{}
	for _, k := range AllKinds() {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("bad kind name %q", s)
		}
		seen[s] = true
	}
	if NodeKind(99).String() == "" {
		t.Error("out-of-range kind must format")
	}
}

func TestSerializationRejectsCorruptJSON(t *testing.T) {
	var m Model
	if err := m.UnmarshalJSON([]byte(`{`)); err == nil {
		t.Error("truncated JSON accepted")
	}
	if err := m.UnmarshalJSON([]byte(`{"config":{"feat_dims":{"gremlin":4}},"out":null}`)); err == nil {
		t.Error("unknown node kind accepted")
	}
	if err := m.UnmarshalJSON([]byte(`{"config":{"feat_dims":{}},"encoders":{},"updaters":{},"out":null}`)); err == nil {
		t.Error("missing readout accepted")
	}
}

// Package gnn implements COSTREAM's joint operator-resource graph
// representation and the GNN with the paper's novel directed message
// passing scheme (Section III, Algorithm 1): typed encoders embed
// transferable features into hidden states, messages flow
// operators->hardware, hardware->operators and sources->...->sink, and a
// readout MLP maps the summed states to a scalar cost prediction.
//
// A traditional message passing variant (simultaneous neighbor updates,
// ignoring node types and edge direction) is included for the Exp 7b
// ablation.
package gnn

import "fmt"

// NodeKind is the type of a graph node; each kind has its own encoder and
// update MLPs.
type NodeKind int

// Node kinds of the joint operator-resource graph.
const (
	KindSource NodeKind = iota
	KindFilter
	KindJoin
	KindAggregate
	KindSink
	KindHost
	numKinds
)

var kindNames = [...]string{"source", "filter", "join", "aggregate", "sink", "host"}

func (k NodeKind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
	return kindNames[k]
}

// AllKinds lists every node kind.
func AllKinds() []NodeKind {
	return []NodeKind{KindSource, KindFilter, KindJoin, KindAggregate, KindSink, KindHost}
}

// Node is a vertex of the joint graph: a streaming operator, a data
// source/sink, or a hardware host, with its transferable feature vector.
type Node struct {
	Kind NodeKind
	Feat []float64
}

// Graph is the joint operator-resource representation: operator nodes wired
// by logical data-flow edges, host nodes wired to operators by placement
// edges.
type Graph struct {
	Nodes []Node
	// FlowEdges are directed logical data-flow edges between operator
	// node indices (upstream -> downstream).
	FlowEdges [][2]int
	// PlaceEdges map operator node index -> host node index.
	PlaceEdges [][2]int
}

// Validate checks index ranges and that placement edges connect operators
// to hosts.
func (g *Graph) Validate() error {
	n := len(g.Nodes)
	if n == 0 {
		return fmt.Errorf("gnn: empty graph")
	}
	for _, e := range g.FlowEdges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return fmt.Errorf("gnn: flow edge %v out of range", e)
		}
		if g.Nodes[e[0]].Kind == KindHost || g.Nodes[e[1]].Kind == KindHost {
			return fmt.Errorf("gnn: flow edge %v touches a host node", e)
		}
	}
	for _, e := range g.PlaceEdges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return fmt.Errorf("gnn: placement edge %v out of range", e)
		}
		if g.Nodes[e[0]].Kind == KindHost {
			return fmt.Errorf("gnn: placement edge %v starts at a host", e)
		}
		if g.Nodes[e[1]].Kind != KindHost {
			return fmt.Errorf("gnn: placement edge %v does not end at a host", e)
		}
	}
	return nil
}

// opTopoOrder returns operator node indices in topological data-flow order.
func (g *Graph) opTopoOrder() ([]int, error) {
	n := len(g.Nodes)
	indeg := make([]int, n)
	adj := make([][]int, n)
	isOp := make([]bool, n)
	for i, nd := range g.Nodes {
		isOp[i] = nd.Kind != KindHost
	}
	for _, e := range g.FlowEdges {
		indeg[e[1]]++
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	var ready []int
	for i := 0; i < n; i++ {
		if isOp[i] && indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	var order []int
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	nOps := 0
	for i := range g.Nodes {
		if isOp[i] {
			nOps++
		}
	}
	if len(order) != nOps {
		return nil, fmt.Errorf("gnn: operator flow graph has a cycle")
	}
	return order, nil
}
